// serve_loadgen — NDJSON client and load generator for `rootstore serve`.
//
//   serve_loadgen --port N --oneshot '<json>'
//       Send one request, print the response line, exit 0 (1 on transport
//       failure).  Used by tools/serve_smoke.sh.
//
//   serve_loadgen --port N [--connections C] [--requests M]
//                 [--duration S] [--batch K] [--json-out FILE]
//                 [--request-file FILE]
//       Benchmark mode: C concurrent connections issue M requests total in
//       two phases — a MISS phase of distinct store_at/diff/is_trusted/
//       lineage requests over the paper scenario, then a HIT phase
//       replaying a small working set so the server's LRU answers from
//       cache.  --duration S makes each phase time-bounded instead: the
//       request mix replays cyclically until S seconds elapse.  --batch K
//       wraps every K requests into one {"op":"batch",...} line (the
//       throughput figures stay per-QUERY, so batch vs singleton numbers
//       compare directly).  Reports throughput and p50/p99/p99.9 latency
//       per phase as JSON to FILE (default stdout): the numbers checked in
//       as BENCH_serve.json.
//
// Request mix is generated deterministically from the scenario database,
// so runs are comparable across machines and commits.  --mix SPEC reshapes
// the generated workload: SPEC is comma-separated op:weight pairs, e.g.
// `--mix is_trusted:4,diff:2,agreement_at:1,ct_coverage:1`, and each
// generated request picks its op with probability weight/total.  Ops:
// store_at, diff, is_trusted, lineage, agreement_at, ct_coverage.  The
// default is the four classic ops at equal weight.  --request-file FILE
// substitutes the mix with the NDJSON lines of FILE, cycled to --requests
// total (the hot set is the file's first 64 lines); this is how the verify
// golden corpus (tests/golden/verify/requests.ndjson) drives the server
// with verify_chain/first_rejected_at load.  Lines that are already batch
// envelopes go through verbatim — combine with --batch 1 only.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/store/database.h"
#include "src/synth/paper_scenario.h"
#include "src/util/hex.h"
#include "src/util/stats.h"

namespace {

int die(const std::string& message) {
  std::fprintf(stderr, "serve_loadgen: %s\n", message.c_str());
  return 1;
}

/// A blocking NDJSON connection to the server.
class Connection {
 public:
  bool open(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one line and reads one response line (sans newline).
  bool roundtrip(const std::string& request, std::string& response) {
    std::string line = request;
    line.push_back('\n');
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        response.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

enum class MixOp { kStoreAt, kDiff, kIsTrusted, kLineage, kAgreementAt,
                   kCtCoverage };

/// Parses a `--mix` weights spec ("op:weight,op:weight,...") into a slot
/// table: each op appears `weight` times, so a uniform pick over the table
/// realises the requested ratios.  Returns false on unknown ops or bad
/// weights.  An empty spec yields the classic equal-weight four-op mix.
bool parse_mix(const std::string& spec, std::vector<MixOp>& slots) {
  if (spec.empty()) {
    slots = {MixOp::kStoreAt, MixOp::kDiff, MixOp::kIsTrusted,
             MixOp::kLineage};
    return true;
  }
  slots.clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) return false;
    const std::string op = token.substr(0, colon);
    const char* digits = token.c_str() + colon + 1;
    char* end = nullptr;
    const unsigned long weight = std::strtoul(digits, &end, 10);
    if (end == digits || *end != '\0' || weight == 0 || weight > 100) {
      return false;
    }
    MixOp mix_op;
    if (op == "store_at") mix_op = MixOp::kStoreAt;
    else if (op == "diff") mix_op = MixOp::kDiff;
    else if (op == "is_trusted") mix_op = MixOp::kIsTrusted;
    else if (op == "lineage") mix_op = MixOp::kLineage;
    else if (op == "agreement_at") mix_op = MixOp::kAgreementAt;
    else if (op == "ct_coverage") mix_op = MixOp::kCtCoverage;
    else return false;
    slots.insert(slots.end(), weight, mix_op);
  }
  return !slots.empty();
}

/// Deterministic request mix drawn from the scenario database.
std::vector<std::string> build_requests(const rs::store::StoreDatabase& db,
                                        const std::vector<MixOp>& mix,
                                        std::size_t count,
                                        std::uint64_t salt) {
  std::vector<std::string> providers = db.providers();
  std::vector<std::string> fps;
  const auto roots = db.all_tls_roots_ever();
  for (const auto& fp : roots.items()) {
    fps.push_back(rs::util::hex_encode(fp));
  }
  std::vector<std::string> requests;
  requests.reserve(count);
  std::uint64_t state = salt * 0x9E3779B97F4A7C15ULL + 1;
  const auto next = [&state](std::size_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>((state >> 33) % bound);
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& provider = providers[next(providers.size())];
    const auto* history = db.find(provider);
    const auto first = history->first_date();
    const auto span_days =
        static_cast<std::size_t>(history->last_date() - first) + 1;
    const std::string date = (first + static_cast<std::int64_t>(
                                          next(span_days))).to_string();
    switch (mix[next(mix.size())]) {
      case MixOp::kStoreAt:
        requests.push_back("{\"op\":\"store_at\",\"provider\":\"" + provider +
                           "\",\"date\":\"" + date + "\"}");
        break;
      case MixOp::kDiff: {
        const std::string date_b =
            (first + static_cast<std::int64_t>(next(span_days))).to_string();
        requests.push_back("{\"op\":\"diff\",\"provider\":\"" + provider +
                           "\",\"date_a\":\"" + date + "\",\"date_b\":\"" +
                           date_b + "\"}");
        break;
      }
      case MixOp::kIsTrusted:
        requests.push_back("{\"op\":\"is_trusted\",\"provider\":\"" +
                           provider + "\",\"fp\":\"" + fps[next(fps.size())] +
                           "\",\"date\":\"" + date + "\"}");
        break;
      case MixOp::kLineage:
        requests.push_back("{\"op\":\"lineage\",\"fp\":\"" +
                           fps[next(fps.size())] + "\"}");
        break;
      case MixOp::kAgreementAt:
        requests.push_back("{\"op\":\"agreement_at\",\"date\":\"" + date +
                           "\"}");
        break;
      case MixOp::kCtCoverage:
        requests.push_back("{\"op\":\"ct_coverage\",\"provider\":\"" +
                           provider + "\",\"date\":\"" + date + "\"}");
        break;
    }
  }
  return requests;
}

/// Wraps `requests` into batch envelopes of `batch` items each (the
/// remainder short of a full envelope is dropped so every line carries
/// exactly `batch` queries and per-query math stays exact).
std::vector<std::string> batch_lines(const std::vector<std::string>& requests,
                                     std::size_t batch) {
  std::vector<std::string> lines;
  lines.reserve(requests.size() / batch);
  for (std::size_t i = 0; i + batch <= requests.size(); i += batch) {
    std::string line = "{\"op\":\"batch\",\"requests\":[";
    for (std::size_t j = 0; j < batch; ++j) {
      if (j > 0) line.push_back(',');
      line += requests[i + j];
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

struct PhaseResult {
  double seconds = 0;
  std::size_t lines = 0;       // request lines round-tripped
  std::size_t requests = 0;    // individual queries (lines × batch size)
  double p50_us = 0;           // per-LINE latency percentiles
  double p99_us = 0;
  double p999_us = 0;

  double throughput() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

/// Runs `lines` round-robin across `connections` client threads; each line
/// counts as `queries_per_line` requests.  With `duration_s` > 0 the mix
/// replays cyclically until the deadline instead of stopping after one
/// pass.  Latencies are per-line microseconds.
bool run_phase(std::uint16_t port, std::size_t connections,
               const std::vector<std::string>& lines,
               std::size_t queries_per_line, double duration_s,
               PhaseResult& out) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<bool> failed(connections, false);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline =
      wall_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(duration_s));
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      Connection conn;
      if (!conn.open(port)) {
        failed[c] = true;
        return;
      }
      std::string response;
      std::size_t i = c;
      while (true) {
        if (duration_s > 0) {
          if (std::chrono::steady_clock::now() >= deadline) return;
          if (i >= lines.size()) i %= lines.size();  // replay until deadline
        } else if (i >= lines.size()) {
          return;  // count-bounded: one pass
        }
        const auto t0 = std::chrono::steady_clock::now();
        if (!conn.roundtrip(lines[i], response)) {
          failed[c] = true;
          return;
        }
        const auto t1 = std::chrono::steady_clock::now();
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        i += connections;
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto wall_end = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    if (failed[c]) return false;
  }
  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  out.seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  out.lines = all.size();
  out.requests = all.size() * queries_per_line;
  out.p50_us = rs::util::percentile(all, 50.0);
  out.p99_us = rs::util::percentile(all, 99.0);
  out.p999_us = rs::util::percentile(all, 99.9);
  return true;
}

void append_phase(std::string& out, const char* name, const PhaseResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "  \"%s\": {\"lines\": %zu, \"requests\": %zu, "
                "\"seconds\": %.6f, "
                "\"throughput_rps\": %.1f, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f, \"p999_us\": %.1f}",
                name, r.lines, r.requests, r.seconds, r.throughput(),
                r.p50_us, r.p99_us, r.p999_us);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  unsigned long port = 0;
  std::size_t connections = 4;
  std::size_t request_count = 2000;
  std::size_t batch = 1;
  double duration_s = 0;
  std::string oneshot;
  std::string json_out;
  std::string request_file;
  std::string mix_spec;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--port" && i + 1 < args.size()) {
      port = std::strtoul(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--connections" && i + 1 < args.size()) {
      connections = static_cast<std::size_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--requests" && i + 1 < args.size()) {
      request_count = static_cast<std::size_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      batch = static_cast<std::size_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--duration" && i + 1 < args.size()) {
      duration_s = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--oneshot" && i + 1 < args.size()) {
      oneshot = args[++i];
    } else if (args[i] == "--json-out" && i + 1 < args.size()) {
      json_out = args[++i];
    } else if (args[i] == "--request-file" && i + 1 < args.size()) {
      request_file = args[++i];
    } else if (args[i] == "--mix" && i + 1 < args.size()) {
      mix_spec = args[++i];
    } else {
      return die("usage: serve_loadgen --port N [--connections C] "
                 "[--requests M] [--duration S] [--batch K] "
                 "[--mix op:weight,...] [--json-out FILE] "
                 "[--request-file FILE] [--oneshot '<json>']");
    }
  }
  if (port == 0 || port > 65535) return die("--port is required (1..65535)");
  if (batch == 0 || batch > rs::query::kMaxBatchRequests) {
    return die("--batch must be 1.." +
               std::to_string(rs::query::kMaxBatchRequests));
  }
  const auto port16 = static_cast<std::uint16_t>(port);

  if (!oneshot.empty()) {
    Connection conn;
    if (!conn.open(port16)) return die("cannot connect to 127.0.0.1:" +
                                       std::to_string(port));
    std::string response;
    if (!conn.roundtrip(oneshot, response)) return die("no response");
    std::printf("%s\n", response.c_str());
    return 0;
  }

  if (connections == 0) return die("--connections must be > 0");
  // MISS phase: distinct requests (cold cache).  HIT phase: a small
  // working set replayed until the same request total is reached — after
  // the first lap every answer is an LRU hit.
  std::vector<std::string> miss_requests;
  std::vector<std::string> hot_set;
  if (!request_file.empty()) {
    std::ifstream f(request_file, std::ios::binary);
    if (!f.good()) return die("cannot read " + request_file);
    std::vector<std::string> file_lines;
    std::string line;
    while (std::getline(f, line)) {
      if (!line.empty()) file_lines.push_back(line);
    }
    if (file_lines.empty()) {
      return die("no request lines in " + request_file);
    }
    miss_requests.reserve(request_count);
    for (std::size_t i = 0; i < request_count; ++i) {
      miss_requests.push_back(file_lines[i % file_lines.size()]);
    }
    hot_set.assign(file_lines.begin(),
                   file_lines.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::min<std::size_t>(64, file_lines.size())));
  } else {
    std::vector<MixOp> mix;
    if (!parse_mix(mix_spec, mix)) {
      return die("bad --mix spec '" + mix_spec +
                 "' (want op:weight,... over store_at/diff/is_trusted/"
                 "lineage/agreement_at/ct_coverage, weights 1..100)");
    }
    // The workload derives from the same scenario the server loaded, so
    // the requests below always hit covered providers and real
    // certificates.
    const auto scenario = rs::synth::build_paper_scenario();
    const auto& db = scenario.database();
    miss_requests = build_requests(db, mix, request_count, 1);
    hot_set = build_requests(db, mix,
                             std::max<std::size_t>(
                                 std::min<std::size_t>(64, request_count), 1),
                             2);
  }
  std::vector<std::string> hit_requests;
  hit_requests.reserve(request_count + hot_set.size());
  for (const auto& r : hot_set) hit_requests.push_back(r);  // warm lap
  while (hit_requests.size() < request_count + hot_set.size()) {
    hit_requests.push_back(hot_set[hit_requests.size() % hot_set.size()]);
  }

  // Batch mode folds every K queries into one envelope line; the per-query
  // throughput math stays comparable with singleton runs.
  const auto miss_lines =
      batch > 1 ? batch_lines(miss_requests, batch) : miss_requests;
  const auto hit_lines =
      batch > 1 ? batch_lines(hit_requests, batch) : hit_requests;

  if (miss_lines.empty() || hit_lines.empty()) {
    return die("--requests too small for --batch " + std::to_string(batch));
  }

  PhaseResult miss, hit;
  if (!run_phase(port16, connections, miss_lines, batch, duration_s, miss)) {
    return die("miss phase failed (server down?)");
  }
  if (!run_phase(port16, connections, hit_lines, batch, duration_s, hit)) {
    return die("hit phase failed (server down?)");
  }

  // Ask the server for its own counters so the cache hit rate lands in the
  // bench record.
  std::string stats_line = "(unavailable)";
  {
    Connection conn;
    if (conn.open(port16)) {
      std::string response;
      if (conn.roundtrip("{\"op\":\"server_stats\"}", response)) {
        stats_line = response;
      }
    }
  }

  std::string out = "{\n  \"benchmark\": \"serve\",\n";
  out += "  \"connections\": " + std::to_string(connections) + ",\n";
  out += "  \"batch\": " + std::to_string(batch) + ",\n";
  append_phase(out, "miss_phase", miss);
  out += ",\n";
  append_phase(out, "hit_phase", hit);
  out += ",\n  \"hit_over_miss_p50_speedup\": ";
  char speedup[64];
  std::snprintf(speedup, sizeof speedup, "%.2f",
                hit.p50_us > 0 ? miss.p50_us / hit.p50_us : 0.0);
  out += speedup;
  out += ",\n  \"server_stats\": ";
  out += stats_line;
  out += "\n}\n";

  if (json_out.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    std::ofstream f(json_out, std::ios::binary);
    f << out;
    if (!f) return die("cannot write " + json_out);
    std::printf("wrote %s (miss %.0f rps p50 %.0fus; hit %.0f rps p50 "
                "%.0fus)\n",
                json_out.c_str(), miss.throughput(), miss.p50_us,
                hit.throughput(), hit.p50_us);
  }
  return 0;
}
