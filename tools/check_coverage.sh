#!/bin/sh
# Line-coverage gate for src/.
#
# Builds the tree with ROOTSTORE_COVERAGE=ON (gcov instrumentation), runs
# the full test suite, aggregates line coverage over every file under
# src/, and fails if the percentage drops below the floor recorded in
# tools/coverage_baseline.txt.  Raise the floor when coverage improves;
# never lower it to make a failing change pass.
#
# Usage: tools/check_coverage.sh [build-dir] [jobs]
#   build-dir defaults to build-cov (a dedicated tree: coverage objects
#   must not pollute the normal build).
#
# Exits 0 with a notice when gcov is unavailable, so environments without
# the toolchain's coverage tool skip rather than fail.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build-cov"}"
jobs="${2:-$(nproc 2>/dev/null || echo 4)}"
# The gcov aggregation below runs from a scratch directory, so the .gcda
# list must hold absolute paths.
mkdir -p "$build_dir"
build_dir=$(CDPATH= cd -- "$build_dir" && pwd)
baseline_file="$repo_root/tools/coverage_baseline.txt"

if command -v gcov >/dev/null 2>&1; then
  gcov_tool="gcov"
elif command -v llvm-cov >/dev/null 2>&1; then
  gcov_tool="llvm-cov gcov"
else
  echo "check_coverage: SKIPPED (no gcov or llvm-cov on PATH)"
  exit 0
fi

echo "check_coverage: building with ROOTSTORE_COVERAGE=ON in $build_dir"
cmake -B "$build_dir" -S "$repo_root" -DROOTSTORE_COVERAGE=ON >/dev/null
cmake --build "$build_dir" -j "$jobs"

# Stale .gcda from a previous run would blend two test-suite executions.
find "$build_dir" -name '*.gcda' -exec rm -f {} +
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

# Aggregate with gcov's per-file text summary.  Every .gcda under the
# library object trees is fed through gcov; per-file results are folded
# keeping the best-covered instantiation of each source (headers appear
# once per including TU).
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

find "$build_dir/src" -name '*.gcda' > "$scratch/gcda.list"
if [ ! -s "$scratch/gcda.list" ]; then
  echo "check_coverage: FAILED (no .gcda produced under $build_dir/src)" >&2
  exit 1
fi

(
  cd "$scratch"
  xargs $gcov_tool < gcda.list > gcov.out 2>/dev/null || true
)

percent=$(awk -v prefix="$repo_root/src/" '
  /^File / {
    file = $0
    sub(/^File ./, "", file)   # strip leading File + quote
    sub(/.$/, "", file)        # strip trailing quote
    relevant = index(file, prefix) == 1
  }
  /^Lines executed:/ && relevant {
    line = $0
    sub(/^Lines executed:/, "", line)
    split(line, parts, "% of ")
    pct = parts[1] + 0
    n = parts[2] + 0
    hit = pct * n / 100.0
    if (n > lines[file]) lines[file] = n
    if (hit > covered[file]) covered[file] = hit
    relevant = 0
  }
  END {
    total = 0; hit = 0
    for (f in lines) { total += lines[f]; hit += covered[f] }
    if (total == 0) { print "0.00"; exit }
    printf "%.2f", 100.0 * hit / total
  }
' "$scratch/gcov.out")

if [ ! -f "$baseline_file" ]; then
  echo "check_coverage: measured ${percent}% but $baseline_file is missing" >&2
  echo "check_coverage: record a floor there (see the file format comment)" >&2
  exit 1
fi
baseline=$(grep -v '^#' "$baseline_file" | head -1 | tr -d ' \t')

echo "check_coverage: src/ line coverage ${percent}% (floor ${baseline}%)"
awk -v got="$percent" -v floor="$baseline" 'BEGIN {
  if (got + 0 < floor + 0) {
    printf "check_coverage: FAILED — %.2f%% is below the %.2f%% floor\n",
           got, floor
    exit 1
  }
}' || {
  echo "check_coverage: coverage regressed; add tests or (only with a" >&2
  echo "reviewed justification) adjust tools/coverage_baseline.txt" >&2
  exit 1
}
echo "check_coverage: OK"
