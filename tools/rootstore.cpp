// rootstore — the library's command-line front end.
//
//   rootstore audit <file>                hygiene + BR lint of a store file
//   rootstore lint <file>                 per-root lint findings
//   rootstore convert <in> <out>          translate formats (reports loss)
//   rootstore diff <a> <b>                compare two stores
//   rootstore dataset export <dir>        write the scenario dataset
//   rootstore dataset verify <dir>        reload + verify a dataset
//   rootstore report <name>               table1..table7, fig1..fig4
//   rootstore query '<json>'              one-shot trust query (docs/SERVING.md)
//   rootstore serve                       NDJSON query server on loopback TCP
//   rootstore index build <out>           compile + persist the trust index
//   rootstore index append <file>         absorb new snapshots incrementally
//   rootstore index verify <file>         deep-verify a persisted index
//   rootstore formats                     list supported formats
//
// Every subcommand works on any supported serialization (sniffed from the
// content): certdata.txt, PEM bundle, JKS, RSTS.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "src/exec/thread_pool.h"

#include "src/analysis/hygiene.h"
#include "src/core/export.h"
#include "src/core/study.h"
#include "src/formats/cert_dir.h"
#include "src/formats/dataset_io.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/formats/sniff.h"
#include "src/obs/registry.h"
#include "src/query/engine.h"
#include "src/query/index_io.h"
#include "src/serve/server.h"
#include "src/serve/threaded_server.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/user_agents.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/x509/lint.h"

namespace {

int usage() {
  std::fputs(
      "usage: rootstore <command> [args]\n"
      "  audit <file>              hygiene audit + lint summary\n"
      "  lint <file>               per-root BR-style lint findings\n"
      "  convert <in> <out>        translate between store formats\n"
      "                            (out: .certdata/.rsts/.pem/.crt/.jks/.dir)\n"
      "  diff <a> <b>              compare two stores\n"
      "  dataset export <dir>      write the scenario's 670-snapshot dataset\n"
      "  dataset verify <dir>      reload and verify a dataset directory\n"
      "  report <name> [--csv] [--threads N] [--from DIR]\n"
      "         [--trace-out FILE] [--metrics-out FILE]\n"
      "                            table1..table7, fig1..fig4, agreement,\n"
      "                            exclusivity, ct_landscape; --threads N\n"
      "                            (or env ROOTSTORE_THREADS) runs the\n"
      "                            analysis hot paths on N worker threads\n"
      "                            with bitwise-identical output (0 = serial);\n"
      "                            --from DIR decodes the database from a\n"
      "                            `dataset export` directory through the\n"
      "                            real format parsers (same report bytes);\n"
      "                            --trace-out writes a Chrome trace_event\n"
      "                            JSON (env ROOTSTORE_TRACE works too) and\n"
      "                            --metrics-out a counters/stages JSON\n"
      "  query '<json>' [--threads N] [--from DIR] [--index FILE]\n"
      "                            answer one trust query (is_trusted,\n"
      "                            providers_trusting, store_at, diff,\n"
      "                            agent_store, lineage, stats, verify_chain,\n"
      "                            first_rejected_at, agreement_at,\n"
      "                            ct_coverage) without a\n"
      "                            server; --index FILE answers from a\n"
      "                            persisted index (no rebuild); see\n"
      "                            docs/SERVING.md\n"
      "  index build <out> [--from DIR] [--threads N]\n"
      "                            compile the trust index and persist it\n"
      "                            to <out> (RSIX; see docs/PERSISTENCE.md)\n"
      "  index append <file> [--from DIR]\n"
      "                            absorb snapshots newer than the index's\n"
      "                            coverage — O(delta), byte-identical to a\n"
      "                            full rebuild — and rewrite atomically\n"
      "  index verify <file>       structural + checksum + deep consistency\n"
      "                            verification of a persisted index\n"
      "  serve [--port N] [--threads K] [--cache N] [--port-file FILE]\n"
      "        [--from DIR] [--index FILE] [--transport epoll|threaded]\n"
      "        [--watch-index]\n"
      "                            serve queries as newline-delimited JSON\n"
      "                            over loopback TCP (port 0 = ephemeral;\n"
      "                            the bound port is printed and optionally\n"
      "                            written to FILE after listen succeeds);\n"
      "                            SIGINT drains in-flight requests and\n"
      "                            exits 0; --index FILE cold-starts from a\n"
      "                            persisted index instead of rebuilding\n"
      "                            from snapshots, enables the reload_index\n"
      "                            op, and with --watch-index hot-swaps the\n"
      "                            engine when FILE changes on disk;\n"
      "                            --transport threaded runs the PR 5\n"
      "                            thread-per-connection baseline instead\n"
      "                            of the event-driven default\n"
      "  formats                   list supported serializations\n",
      stderr);
  return 2;
}

int die(const std::string& message) {
  std::fprintf(stderr, "rootstore: %s\n", message.c_str());
  return 1;
}

int cmd_formats() {
  std::puts("certdata.txt  NSS PKCS#11 object grammar (full trust fidelity)");
  std::puts("RSTS          portable trust serialization (full trust fidelity)");
  std::puts("PEM bundle    bare certificates (trust metadata LOST)");
  std::puts("JKS v2        Java keystore (trust metadata LOST)");
  std::puts("cert dir      one PEM/DER file per root (trust metadata LOST)");
  std::puts("authroot.stl  Microsoft CTL, via the library API "
            "(rs::formats::parse_authroot)");
  return 0;
}

int cmd_audit(const std::string& path) {
  auto store = rs::formats::load_any_store(path);
  if (!store.ok()) return die(store.error());
  const auto& entries = store.value().entries;
  const auto now = rs::util::Date::ymd(2021, 5, 1);

  std::size_t tls = 0, expired = 0, weak = 0, md5 = 0;
  int lint_total = 0;
  rs::x509::LintOptions opts;
  opts.now = now;
  for (const auto& e : entries) {
    if (e.is_tls_anchor()) ++tls;
    if (e.certificate->is_expired_at(now)) ++expired;
    if (e.certificate->has_weak_rsa_key()) ++weak;
    if (e.certificate->has_md5_signature()) ++md5;
    lint_total += rs::x509::lint_score(rs::x509::lint_root(*e.certificate, opts));
  }
  rs::util::TextTable t({"Metric", "Value"});
  t.set_align(1, rs::util::Align::kRight);
  t.add_row({"roots", std::to_string(entries.size())});
  t.add_row({"TLS anchors", std::to_string(tls)});
  t.add_row({"expired (at 2021-05-01)", std::to_string(expired)});
  t.add_row({"RSA < 2048", std::to_string(weak)});
  t.add_row({"MD5 signatures", std::to_string(md5)});
  t.add_row({"aggregate lint score", std::to_string(lint_total)});
  t.add_row({"parse warnings", std::to_string(store.value().warnings.size())});
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int cmd_lint(const std::string& path) {
  auto store = rs::formats::load_any_store(path);
  if (!store.ok()) return die(store.error());
  int findings_total = 0;
  for (const auto& e : store.value().entries) {
    const auto findings = rs::x509::lint_root(*e.certificate);
    if (findings.empty()) continue;
    findings_total += static_cast<int>(findings.size());
    std::printf("%s (%s...)\n",
                std::string(
                    e.certificate->subject().common_name().value_or("?"))
                    .c_str(),
                e.certificate->short_id().c_str());
    for (const auto& f : findings) {
      std::printf("  [%s] %s: %s\n", rs::x509::to_string(f.severity),
                  f.check.c_str(), f.message.c_str());
    }
  }
  std::printf("%d finding(s) across %zu root(s)\n", findings_total,
              store.value().entries.size());
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  auto store = rs::formats::load_any_store(in);
  if (!store.ok()) return die(store.error());
  const auto& entries = store.value().entries;

  std::size_t cutoffs = 0;
  for (const auto& e : entries) {
    if (e.is_partially_distrusted_tls()) ++cutoffs;
  }

  namespace fs = std::filesystem;
  bool lossy = false;
  bool ok = false;
  if (rs::util::ends_with(out, ".certdata")) {
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_certdata(entries);
    ok = static_cast<bool>(f);
  } else if (rs::util::ends_with(out, ".rsts")) {
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_rsts(entries);
    ok = static_cast<bool>(f);
  } else if (rs::util::ends_with(out, ".pem") ||
             rs::util::ends_with(out, ".crt")) {
    lossy = true;
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_pem_bundle(entries);
    ok = static_cast<bool>(f);
  } else if (rs::util::ends_with(out, ".jks")) {
    lossy = true;
    const auto blob =
        rs::formats::write_jks(entries, rs::util::Date::ymd(2021, 5, 1));
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    ok = static_cast<bool>(f);
  } else if (rs::util::ends_with(out, ".dir")) {
    lossy = true;
    fs::create_directories(out);
    ok = true;
    for (const auto& file : rs::formats::write_cert_dir(entries)) {
      std::ofstream f(fs::path(out) / file.name, std::ios::binary);
      f << file.content;
      ok = ok && static_cast<bool>(f);
    }
  } else {
    return die("unknown target format: " + out);
  }
  if (!ok) return die("write failed: " + out);
  std::printf("%zu roots -> %s\n", entries.size(), out.c_str());
  if (lossy && cutoffs > 0) {
    std::printf("WARNING: %zu partial-distrust cutoff(s) lost in this "
                "format (see formats/portable.h for one that keeps them)\n",
                cutoffs);
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  auto a = rs::formats::load_any_store(a_path);
  auto b = rs::formats::load_any_store(b_path);
  if (!a.ok()) return die(a.error());
  if (!b.ok()) return die(b.error());
  rs::store::FingerprintSet a_set, b_set;
  for (const auto& e : a.value().entries) a_set.insert(e.certificate->sha256());
  for (const auto& e : b.value().entries) b_set.insert(e.certificate->sha256());
  std::printf("%s: %zu roots\n%s: %zu roots\n", a_path.c_str(), a_set.size(),
              b_path.c_str(), b_set.size());
  std::printf("only in A: %zu   only in B: %zu   shared: %zu   jaccard "
              "distance: %.3f\n",
              a_set.difference(b_set).size(), b_set.difference(a_set).size(),
              a_set.intersection_size(b_set),
              a_set.jaccard_distance(b_set));
  return 0;
}

int cmd_dataset(const std::string& verb, const std::string& dir) {
  if (verb == "export") {
    auto scenario = rs::synth::build_paper_scenario();
    auto written = rs::formats::write_dataset(scenario.database(), dir);
    if (!written.ok()) return die(written.error());
    std::printf("wrote %zu snapshots to %s\n",
                scenario.database().total_snapshots(), dir.c_str());
    return 0;
  }
  if (verb == "verify") {
    auto loaded = rs::formats::load_dataset(dir);
    if (!loaded.ok()) return die(loaded.error());
    std::printf("ok: %zu providers, %zu snapshots\n",
                loaded.value().provider_count(),
                loaded.value().total_snapshots());
    return 0;
  }
  return usage();
}

// Serialize the observability registry to `path` using `serialize`
// (to_chrome_trace or to_json).  Returns false on I/O failure.
bool write_observability(const std::string& path,
                         std::string (rs::obs::Registry::*serialize)() const) {
  std::ofstream f(path, std::ios::binary);
  f << (rs::obs::Registry::global().*serialize)();
  return static_cast<bool>(f);
}

int cmd_report(const std::string& name, bool csv, std::size_t threads,
               const std::string& from_dir, const std::string& trace_out,
               const std::string& metrics_out) {
  // Tracing must be live before the study is built so decoder, interner,
  // and pool spans land in the output.  (ROOTSTORE_TRACE already enabled
  // the registry at first access; this covers the explicit flags.)
  if (!trace_out.empty() || !metrics_out.empty()) {
    rs::obs::Registry::global().enable();
  }
  rs::core::StudyOptions options;
  options.num_threads = threads;
  auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  if (!from_dir.empty()) {
    // Run the paper's actual pipeline shape: decode stored snapshots
    // (rootstore dataset export <dir>) through the real parsers, then
    // analyze the decoded database.  RSTS round-trips the full trust
    // model, so the reports are byte-identical either way — pinned by
    // tests/analysis/golden_report_test.cpp.
    auto loaded = rs::formats::load_dataset(from_dir);
    if (!loaded.ok()) return die(loaded.error());
    scenario.replace_database(std::move(loaded.value()));
  }
  rs::core::EcosystemStudy study(std::move(scenario), options);
  if (csv) {
    if (name == "fig1") {
      std::fputs(rs::core::figure1_csv(study.scenario()).c_str(), stdout);
    } else if (name == "fig3") {
      std::fputs(rs::core::figure3_csv(study.scenario()).c_str(), stdout);
    } else if (name == "fig4") {
      std::fputs(rs::core::figure4_csv(study.scenario()).c_str(), stdout);
    } else if (name == "churn") {
      std::fputs(rs::core::churn_csv(study.scenario()).c_str(), stdout);
    } else {
      return die("no CSV export for '" + name + "'");
    }
  }
  std::string out;
  if (csv) {
    // CSV output already went to stdout above; fall through to the
    // observability flush below.
  } else if (name == "table1") out = study.report_table1();
  else if (name == "table2") out = study.report_table2();
  else if (name == "table3") out = study.report_table3();
  else if (name == "table4") out = study.report_table4();
  else if (name == "table5") out = study.report_table5();
  else if (name == "table6") out = study.report_table6();
  else if (name == "table7") out = study.report_table7();
  else if (name == "fig1") out = study.report_figure1();
  else if (name == "fig2") out = study.report_figure2();
  else if (name == "fig3") out = study.report_figure3();
  else if (name == "fig4") out = study.report_figure4();
  else if (name == "agreement") out = study.report_agreement();
  else if (name == "exclusivity") out = study.report_exclusivity();
  else if (name == "ct_landscape") out = study.report_ct_landscape();
  else return die("unknown report '" + name + "'");
  std::fputs(out.c_str(), stdout);

  if (!trace_out.empty() &&
      !write_observability(trace_out, &rs::obs::Registry::to_chrome_trace)) {
    return die("cannot write trace file: " + trace_out);
  }
  if (!metrics_out.empty() &&
      !write_observability(metrics_out, &rs::obs::Registry::to_json)) {
    return die("cannot write metrics file: " + metrics_out);
  }
  return 0;
}

// Materializes the database the query/serve engines answer from: the
// curated paper scenario, or a `dataset export` directory decoded through
// the real parsers when `from_dir` is given (same bytes either way).
rs::util::Result<rs::store::StoreDatabase> load_query_database(
    const std::string& from_dir) {
  if (!from_dir.empty()) {
    auto loaded = rs::formats::load_dataset(from_dir);
    if (!loaded.ok()) return loaded;
    return std::move(loaded).take();
  }
  auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  rs::store::StoreDatabase db = scenario.database();
  return db;
}

// Builds the engine either the expensive way (decode + intern + index
// build from a database) or the cold-start way (load a persisted index).
rs::util::Result<rs::query::QueryEngine> make_engine(
    const std::string& from_dir, const std::string& index_file,
    std::size_t threads) {
  using R = rs::util::Result<rs::query::QueryEngine>;
  if (!index_file.empty()) {
    auto loaded = rs::query::TrustIndexIO::load_file(index_file);
    if (!loaded.ok()) return R::err(index_file + ": " + loaded.message());
    return rs::query::QueryEngine(std::move(loaded).take(),
                                  rs::synth::user_agent_population());
  }
  auto db = load_query_database(from_dir);
  if (!db.ok()) return db.propagate<rs::query::QueryEngine>();
  rs::exec::ThreadPool build_pool(threads);
  return rs::query::QueryEngine(db.value(), rs::synth::user_agent_population(),
                                &build_pool);
}

int cmd_query(const std::string& request, std::size_t threads,
              const std::string& from_dir, const std::string& index_file) {
  auto engine = make_engine(from_dir, index_file, threads);
  if (!engine.ok()) return die(engine.error());
  const std::string response = engine.value().handle_json(request);
  std::printf("%s\n", response.c_str());
  // Scripting contract: exit 0 for any answered query (including typed
  // not_covered), 1 only for error responses.
  return rs::query::QueryEngine::is_error_response(response) ? 1 : 0;
}

int cmd_index_build(const std::string& out, const std::string& from_dir,
                    std::size_t threads) {
  auto db = load_query_database(from_dir);
  if (!db.ok()) return die(db.error());
  rs::exec::ThreadPool pool(threads);
  const auto index = rs::query::TrustIndex::build(
      db.value(), rs::store::CertInterner::from_database(db.value()), &pool);
  auto written = rs::query::TrustIndexIO::write_file(index, out);
  if (!written.ok()) return die(written.error());
  std::printf("wrote %s: %zu provider(s), %zu certificate(s), "
              "%zu resolution point(s), %llu bytes\n",
              out.c_str(), index.provider_count(), index.interner().size(),
              index.resolution_point_count(),
              static_cast<unsigned long long>(written.value()));
  return 0;
}

int cmd_index_append(const std::string& path, const std::string& from_dir) {
  auto loaded = rs::query::TrustIndexIO::load_file(path);
  if (!loaded.ok()) return die(path + ": " + loaded.message());
  auto index = std::move(loaded).take();
  auto db = load_query_database(from_dir);
  if (!db.ok()) return die(db.error());
  auto appended = rs::query::TrustIndexIO::append_from_database(index,
                                                                db.value());
  if (!appended.ok()) return die(appended.error());
  if (appended.value() == 0) {
    std::printf("%s already covers every snapshot; nothing to do\n",
                path.c_str());
    return 0;
  }
  auto written = rs::query::TrustIndexIO::write_file(index, path);
  if (!written.ok()) return die(written.error());
  std::printf("appended %zu snapshot(s) to %s (%llu bytes)\n",
              appended.value(), path.c_str(),
              static_cast<unsigned long long>(written.value()));
  return 0;
}

int cmd_index_verify(const std::string& path) {
  auto stats = rs::query::TrustIndexIO::verify_file(path);
  if (!stats.ok()) return die(path + ": " + stats.message());
  const auto& s = stats.value();
  std::printf("ok: %llu provider(s), %llu certificate(s), "
              "%llu resolution point(s), %llu interval(s), %llu bytes\n",
              static_cast<unsigned long long>(s.providers),
              static_cast<unsigned long long>(s.certificates),
              static_cast<unsigned long long>(s.resolution_points),
              static_cast<unsigned long long>(s.intervals),
              static_cast<unsigned long long>(s.bytes));
  return 0;
}

// SIGINT/SIGTERM latch for `rootstore serve`: the handler writes one byte
// into a self-pipe; the main thread blocks on the read end and runs the
// graceful drain when it wakes (only async-signal-safe calls in the
// handler itself).
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
  const char byte = 1;
  // Best-effort: a full pipe means a shutdown is already pending.
  [[maybe_unused]] const ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
}

// Writes `port` into `path` atomically: temp file, fsync, rename.  A
// concurrently polling reader either sees no file or the complete port —
// never a partial write — and a crash mid-write leaves no torn file.
bool write_port_file_atomic(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string text = std::to_string(port) + "\n";
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

// Shared serve tail for both transports: install the signal latch, publish
// the port file (only now — listen(2) has already succeeded inside
// start(), so the file never names a dead socket), block until
// SIGINT/SIGTERM, drain, report.
template <typename ServerT>
int serve_until_signal(ServerT& server, std::uint16_t bound_port,
                       const std::string& port_file, std::size_t threads,
                       std::size_t cache, const char* transport) {
  if (pipe(g_shutdown_pipe) != 0) return die("cannot create signal pipe");
  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  if (!port_file.empty() && !write_port_file_atomic(port_file, bound_port)) {
    return die("cannot write port file: " + port_file);
  }
  std::printf("listening 127.0.0.1:%u (transport=%s threads=%zu cache=%zu)\n",
              static_cast<unsigned>(bound_port), transport, threads, cache);
  std::fflush(stdout);

  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.stop();
  const rs::serve::ServerStats stats = server.stats();
  std::printf("drained: %llu request(s) over %llu connection(s), "
              "%llu cache hit(s), %llu error(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.errors));
  return 0;
}

int cmd_serve(std::uint16_t port, std::size_t threads, std::size_t cache,
              const std::string& port_file, const std::string& from_dir,
              const std::string& index_file, const std::string& transport,
              bool watch_index) {
  if (transport != "epoll" && transport != "threaded") {
    return die("--transport must be 'epoll' or 'threaded'");
  }
  if (watch_index && index_file.empty()) {
    return die("--watch-index requires --index FILE");
  }
  if (watch_index && transport == "threaded") {
    return die("--watch-index requires the epoll transport");
  }
  // A stale port file from an earlier run poisons waiting clients: remove
  // it up front so a reader only ever sees the port of THIS process.
  if (!port_file.empty()) ::unlink(port_file.c_str());

  auto made = make_engine(from_dir, index_file, threads);
  if (!made.ok()) return die(made.error());

  rs::serve::ServerOptions options;
  options.port = port;
  options.num_threads = threads;
  options.cache_capacity = cache;

  if (transport == "threaded") {
    const rs::query::QueryEngine engine = std::move(made).take();
    rs::serve::ThreadedServer server(engine, options);
    auto bound = server.start();
    if (!bound.ok()) return die(bound.error());
    return serve_until_signal(server, bound.value(), port_file, threads,
                              cache, "threaded");
  }

  if (!index_file.empty()) {
    // Reloading re-reads the persisted index: cheap relative to a rebuild,
    // and exactly what `--watch-index` watches.
    options.reload_factory = [index_file]()
        -> rs::util::Result<
            std::shared_ptr<const rs::query::QueryEngine>> {
      using R =
          rs::util::Result<std::shared_ptr<const rs::query::QueryEngine>>;
      auto loaded = rs::query::TrustIndexIO::load_file(index_file);
      if (!loaded.ok()) return R::err(index_file + ": " + loaded.message());
      return std::make_shared<const rs::query::QueryEngine>(
          std::move(loaded).take(), rs::synth::user_agent_population());
    };
    if (watch_index) options.watch_path = index_file;
  }
  rs::serve::Server server(
      std::make_shared<const rs::query::QueryEngine>(std::move(made).take()),
      options);
  auto bound = server.start();
  if (!bound.ok()) return die(bound.error());
  return serve_until_signal(server, bound.value(), port_file, threads, cache,
                            "epoll");
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "formats") return cmd_formats();
  if (cmd == "audit" && args.size() == 2) return cmd_audit(args[1]);
  if (cmd == "lint" && args.size() == 2) return cmd_lint(args[1]);
  if (cmd == "convert" && args.size() == 3) return cmd_convert(args[1], args[2]);
  if (cmd == "diff" && args.size() == 3) return cmd_diff(args[1], args[2]);
  if (cmd == "dataset" && args.size() == 3) return cmd_dataset(args[1], args[2]);
  if (cmd == "report" && args.size() >= 2) {
    // Default worker count from the environment; --threads overrides.
    std::size_t threads = 0;
    // Startup-only read on the main thread (CLI flag default): safe.
    if (const char* env = std::getenv("ROOTSTORE_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
    bool csv = false;
    // ROOTSTORE_TRACE doubles as a default trace destination; the registry
    // itself also honours it for enablement at first access.
    std::string from_dir;
    std::string trace_out;
    std::string metrics_out;
    // Startup-only read on the main thread (CLI flag default): safe.
    if (const char* env = std::getenv("ROOTSTORE_TRACE")) {  // NOLINT(concurrency-mt-unsafe)
      if (env[0] != '\0') trace_out = env;
    }
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--csv") {
        csv = true;
      } else if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = static_cast<std::size_t>(
            std::strtoul(args[++i].c_str(), nullptr, 10));
      } else if (args[i] == "--from" && i + 1 < args.size()) {
        from_dir = args[++i];
      } else if (args[i] == "--trace-out" && i + 1 < args.size()) {
        trace_out = args[++i];
      } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
        metrics_out = args[++i];
      } else {
        return usage();
      }
    }
    return cmd_report(args[1], csv, threads, from_dir, trace_out, metrics_out);
  }
  if (cmd == "query" && args.size() >= 2) {
    std::size_t threads = 0;
    std::string from_dir;
    std::string index_file;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = static_cast<std::size_t>(
            std::strtoul(args[++i].c_str(), nullptr, 10));
      } else if (args[i] == "--from" && i + 1 < args.size()) {
        from_dir = args[++i];
      } else if (args[i] == "--index" && i + 1 < args.size()) {
        index_file = args[++i];
      } else {
        return usage();
      }
    }
    return cmd_query(args[1], threads, from_dir, index_file);
  }
  if (cmd == "index" && args.size() >= 3) {
    const std::string& verb = args[1];
    const std::string& path = args[2];
    std::size_t threads = 0;
    std::string from_dir;
    for (std::size_t i = 3; i < args.size(); ++i) {
      if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = static_cast<std::size_t>(
            std::strtoul(args[++i].c_str(), nullptr, 10));
      } else if (args[i] == "--from" && i + 1 < args.size()) {
        from_dir = args[++i];
      } else {
        return usage();
      }
    }
    if (verb == "build") return cmd_index_build(path, from_dir, threads);
    if (verb == "append") return cmd_index_append(path, from_dir);
    if (verb == "verify" && args.size() == 3) return cmd_index_verify(path);
    return usage();
  }
  if (cmd == "serve") {
    unsigned long port = 0;
    std::size_t threads = 4;
    std::size_t cache = 1024;
    std::string port_file;
    std::string from_dir;
    std::string index_file;
    std::string transport = "epoll";
    bool watch_index = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--port" && i + 1 < args.size()) {
        port = std::strtoul(args[++i].c_str(), nullptr, 10);
        if (port > 65535) return die("--port must be 0..65535");
      } else if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = static_cast<std::size_t>(
            std::strtoul(args[++i].c_str(), nullptr, 10));
      } else if (args[i] == "--cache" && i + 1 < args.size()) {
        cache = static_cast<std::size_t>(
            std::strtoul(args[++i].c_str(), nullptr, 10));
      } else if (args[i] == "--port-file" && i + 1 < args.size()) {
        port_file = args[++i];
      } else if (args[i] == "--from" && i + 1 < args.size()) {
        from_dir = args[++i];
      } else if (args[i] == "--index" && i + 1 < args.size()) {
        index_file = args[++i];
      } else if (args[i] == "--transport" && i + 1 < args.size()) {
        transport = args[++i];
      } else if (args[i] == "--watch-index") {
        watch_index = true;
      } else {
        return usage();
      }
    }
    return cmd_serve(static_cast<std::uint16_t>(port), threads, cache,
                     port_file, from_dir, index_file, transport, watch_index);
  }
  return usage();
}
