#!/bin/sh
# Clang static analyzer over src/, gated on a checked-in baseline.
#
# Runs `clang++ --analyze` (the scan-build core checkers: null deref,
# use-after-move, dead stores, uninitialized reads) on every translation
# unit in src/ and diffs the findings against tools/analyzer_baseline.txt.
# The baseline is EMPTY by policy: any new flow-sensitive finding blocks
# merge.  If the analyzer ever false-positives unavoidably, the finding is
# added to the baseline with a justification comment — never silenced in
# code.
#
# Exits 0 with a SKIPPED notice when no clang is installed (gcc has no
# comparable C++ analyzer; the gate is enforced on clang builders), so the
# gate degrades the same way tools/run_lint.sh does.
#
# Usage: tools/run_analyzer.sh [clang++-binary]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

clangxx="${1:-${CLANGXX:-}}"
if [ -z "$clangxx" ]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clangxx="$candidate"
      break
    fi
  done
fi
if [ -z "$clangxx" ]; then
  echo "run_analyzer: clang++ not found; skipping analyzer (install LLVM or set CLANGXX)" >&2
  exit 0
fi

baseline="$repo_root/tools/analyzer_baseline.txt"
findings=$(mktemp)
trap 'rm -f "$findings" "$findings.raw"' EXIT

# src/ is self-contained (only repo-root-relative includes, no gtest), so a
# fixed flag set matches the real build closely enough for the analyzer.
fail=0
for tu in $(find src -name '*.cpp' | sort); do
  "$clangxx" --analyze -Xclang -analyzer-output=text \
    -std=c++20 -I"$repo_root" -o /dev/null "$tu" 2>>"$findings.raw" || fail=1
done
# Keep one line per finding; drop the note:/caret context lines.
grep -E ' (warning|error):' "$findings.raw" 2>/dev/null | sort -u \
  > "$findings" || true
rm -f "$findings.raw"

# Baseline comparison: every finding must appear in the baseline (comments
# and blanks in the baseline are ignored).
known=$(mktemp)
grep -v -e '^#' -e '^$' "$baseline" > "$known" || true
new=$(grep -vxFf "$known" "$findings" || true)
rm -f "$known"
if [ -n "$new" ] || [ "$fail" -ne 0 ]; then
  echo "run_analyzer: new findings not in tools/analyzer_baseline.txt:" >&2
  printf '%s\n' "$new" >&2
  exit 1
fi
echo "run_analyzer: clean ($clangxx, $(find src -name '*.cpp' | wc -l | tr -d ' ') TUs, baseline $(grep -cv '^#' "$baseline" 2>/dev/null || echo 0) entries)"
