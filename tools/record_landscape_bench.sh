#!/bin/sh
# Records the landscape disparity benchmark into BENCH_landscape.json:
#
#   * BM_AgreementMatrixIdSet — the shipped agreement matrix over interned
#     IdSet presence views resolved from the TrustIndex
#   * BM_AgreementMatrixIdSetPooled — the same pass on a 3-worker pool
#   * BM_AgreementMatrixNaive — the same metrics recomputed from sorted
#     32-byte FingerprintSets, the path an implementation without the
#     interner would run per request
#
# Gate: the IdSet matrix must beat the naive FingerprintSet scan by >= 5x
# on the simulated 14-provider ecosystem (see docs/LANDSCAPE.md).  The
# committed BENCH_landscape.json is the record.
#
# Usage: tools/record_landscape_bench.sh [build-dir] [out-file]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_landscape.json"}"

bench_bin="$build_dir/bench/perf_landscape"
if [ ! -x "$bench_bin" ]; then
  echo "record_landscape_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_landscape" >&2
  exit 2
fi

"$bench_bin" \
  --benchmark_filter='BM_AgreementMatrixIdSet$|BM_AgreementMatrixIdSetPooled|BM_AgreementMatrixNaive' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# Summarize and gate the IdSet-vs-naive speedup from the JSON (no jq
# dependency: the google-benchmark JSON layout is stable enough for awk).
awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    times[name] = $2;
  }
  END {
    status = 0;
    if (times["BM_AgreementMatrixIdSet"] > 0) {
      naive = times["BM_AgreementMatrixNaive"];
      speedup = naive / times["BM_AgreementMatrixIdSet"];
      printf "agreement matrix: IdSet %.1fx vs FingerprintSet scan (floor 5x)\n",
             speedup;
      if (speedup < 5) {
        print "record_landscape_bench: IdSet-speedup floor MISSED";
        status = 1;
      }
    } else { print "missing BM_AgreementMatrixIdSet"; status = 1 }
    exit status;
  }
' "$out_file"

echo "record_landscape_bench: wrote $out_file"
