#!/bin/sh
# Regression test for the --port-file startup race, registered as a ctest.
#
# The contract (tools/rootstore.cpp, write_port_file_atomic): a stale port
# file from a previous run is unlinked before the engine build starts, and
# the new file appears atomically (tmp + fsync + rename) only AFTER
# listen() has succeeded.  So a waiter polling for the file can never
# read a stale port, a half-written port, or a port nobody listens on yet.
#
#   1. plant a stale port file; it must be replaced (never appended to,
#      never partially overwritten) by the real port
#   2. the instant the file first holds something other than the stale
#      marker, that content must be a complete valid port and a connect
#      must succeed immediately
#
# Usage: tools/port_file_smoke.sh <build-dir>
set -eu

build_dir="${1:?usage: port_file_smoke.sh <build-dir>}"
rootstore="$build_dir/tools/rootstore"
loadgen="$build_dir/tools/serve_loadgen"
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# A stale file from a "previous run": port 1 is never what we get assigned.
printf '1\n' > "$workdir/port"

"$rootstore" serve --port 0 --threads 2 --cache 64 \
    --port-file "$workdir/port" > "$workdir/serve.log" 2>&1 &
server_pid=$!

# Poll at full speed.  The stale marker may legitimately still be visible
# for the first few observations (the server unlinks it right after
# argument parsing, and it can vanish between our -e test and a cat), so
# each observation must be one of: absent, the stale marker, or — exactly
# once — a complete real port.  If the unlink never happened we keep
# reading "1" until the timeout, which fails the test; anything that is
# neither the marker nor a well-formed port is a torn write and fails
# immediately.
i=0
port=""
while :; do
  content=$(cat "$workdir/port" 2>/dev/null || true)
  if [ -n "$content" ] && [ "$content" != "1" ]; then
    port="$content"
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "port_file_smoke: server exited before writing the port file" >&2
    cat "$workdir/serve.log" >&2
    exit 1
  fi
  i=$((i + 1))
  if [ "$i" -gt 6000 ]; then
    echo "port_file_smoke: stale port file never replaced by a real port" >&2
    cat "$workdir/serve.log" >&2
    exit 1
  fi
  sleep 0.01
done

case "$port" in
  *[!0-9]*|'')
    echo "port_file_smoke: port file held garbage: '$port'" >&2
    exit 1
    ;;
esac
if [ "$port" -lt 1024 ] || [ "$port" -gt 65535 ]; then
  echo "port_file_smoke: implausible ephemeral port '$port'" >&2
  exit 1
fi

# The file only appears after listen(), so this first connect cannot be
# refused.  One query proves the socket is really being served.
response=$("$loadgen" --port "$port" --oneshot '{"op":"stats"}')
case "$response" in
  '{"op":"stats","status":"ok"'*) ;;
  *)
    echo "port_file_smoke: unexpected response on published port: $response" >&2
    exit 1
    ;;
esac

kill -INT "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "port_file_smoke: server exited $status after SIGINT (want 0)" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
echo "port_file_smoke: OK (port $port)"
