#!/bin/sh
# End-to-end smoke test for `rootstore serve`, registered as a ctest:
#
#   1. start the server on an ephemeral port (--port-file handshake)
#   2. answer one query over the socket and sanity-check the bytes; a
#      malformed line and a batch envelope must both answer structured JSON
#   3. send SIGINT and require a graceful drain with exit code 0
#   4. repeat the lifecycle from a persisted index: `rootstore index build`
#      writes an RSIX file, `serve --index` cold-starts from it, and the
#      stats response must be byte-identical to the database-built one
#   5. hot-swap that server via `{"op":"reload_index"}`: the epoch counter
#      in server_stats must flip to 1 and answers must stay byte-identical
#      (the rebuilt index file is identical)
#
# Usage: tools/serve_smoke.sh <build-dir>
set -eu

build_dir="${1:?usage: serve_smoke.sh <build-dir>}"
rootstore="$build_dir/tools/rootstore"
loadgen="$build_dir/tools/serve_loadgen"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

"$rootstore" serve --port 0 --threads 2 --cache 64 \
    --port-file "$workdir/port" > "$workdir/serve.log" 2>&1 &
server_pid=$!

# The engine compiles its index before listening; allow up to 60s.
i=0
while [ ! -s "$workdir/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "serve_smoke: server never wrote the port file" >&2
    cat "$workdir/serve.log" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: server exited before listening" >&2
    cat "$workdir/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$workdir/port")

response=$("$loadgen" --port "$port" --oneshot '{"op":"stats"}')
case "$response" in
  '{"op":"stats","status":"ok"'*) ;;
  *)
    echo "serve_smoke: unexpected stats response: $response" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
    ;;
esac

# Malformed input must answer a structured error, not kill the server.
bad=$("$loadgen" --port "$port" --oneshot 'not json')
case "$bad" in
  '{"status":"error","code":"bad_request"'*) ;;
  *)
    echo "serve_smoke: unexpected error response: $bad" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
    ;;
esac

# A batch envelope answers every sub-request in order inside one line.
batch=$("$loadgen" --port "$port" \
    --oneshot '{"op":"batch","requests":[{"op":"stats"},{"op":"nope"}]}')
case "$batch" in
  '{"op":"batch","status":"ok","count":2,"responses":[{"op":"stats","status":"ok"'*) ;;
  *)
    echo "serve_smoke: unexpected batch response: $batch" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
    ;;
esac

kill -INT "$server_pid"
status=0
wait "$server_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "serve_smoke: server exited $status after SIGINT (want 0)" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
grep -q "^drained:" "$workdir/serve.log" || {
  echo "serve_smoke: no drain summary in server log" >&2
  cat "$workdir/serve.log" >&2
  exit 1
}

# --- phase 2: the same lifecycle served from a persisted index ------------
"$rootstore" index build "$workdir/smoke.rsix" > "$workdir/index.log" 2>&1
"$rootstore" index verify "$workdir/smoke.rsix" >> "$workdir/index.log" 2>&1

"$rootstore" serve --index "$workdir/smoke.rsix" --port 0 --threads 2 \
    --cache 64 --port-file "$workdir/port2" > "$workdir/serve2.log" 2>&1 &
server_pid=$!

i=0
while [ ! -s "$workdir/port2" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "serve_smoke: --index server never wrote the port file" >&2
    cat "$workdir/serve2.log" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: --index server exited before listening" >&2
    cat "$workdir/serve2.log" >&2
    exit 1
  fi
  sleep 0.1
done
port2=$(cat "$workdir/port2")

# The loaded engine must answer byte-identically to the built one.
from_index=$("$loadgen" --port "$port2" --oneshot '{"op":"stats"}')
if [ "$from_index" != "$response" ]; then
  echo "serve_smoke: --index stats differ from database-built stats" >&2
  echo "  built:  $response" >&2
  echo "  loaded: $from_index" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
fi

# --- phase 3: live hot-swap on the --index server -------------------------
# reload_index queues an asynchronous swap; the epoch flip shows up in
# server_stats.  The rebuilt RSIX file is byte-identical, so answers must
# stay identical across the flip — only the epoch counter moves.
"$rootstore" index build "$workdir/smoke.rsix" >> "$workdir/index.log" 2>&1
accepted=$("$loadgen" --port "$port2" --oneshot '{"op":"reload_index"}')
case "$accepted" in
  '{"op":"reload_index","status":"ok","accepted":true'*) ;;
  *)
    echo "serve_smoke: reload_index not accepted: $accepted" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
    ;;
esac
i=0
while :; do
  stats=$("$loadgen" --port "$port2" --oneshot '{"op":"server_stats"}')
  case "$stats" in
    *'"epoch":1'*'"reloads":1'*) break ;;
  esac
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve_smoke: epoch never flipped after reload_index: $stats" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
after_swap=$("$loadgen" --port "$port2" --oneshot '{"op":"stats"}')
if [ "$after_swap" != "$response" ]; then
  echo "serve_smoke: answers changed across an identical-index swap" >&2
  echo "  before: $response" >&2
  echo "  after:  $after_swap" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
fi

kill -INT "$server_pid"
status=0
wait "$server_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "serve_smoke: --index server exited $status after SIGINT (want 0)" >&2
  cat "$workdir/serve2.log" >&2
  exit 1
fi
grep -q "^drained:" "$workdir/serve2.log" || {
  echo "serve_smoke: no drain summary in --index server log" >&2
  cat "$workdir/serve2.log" >&2
  exit 1
}
echo "serve_smoke: OK (port $port, --index port $port2)"
