#!/bin/sh
# Structural lock-discipline lint over src/ and the CLI surface (tools/*.cpp).
#
# Complements clang's -Wthread-safety (cmake/Hardening.cmake): the compiler
# proves that annotated mutexes are used correctly; this lint proves that
# ONLY annotated mutexes exist, and that the deliberate escape hatches are
# justified.  Pure grep/awk — it runs everywhere, needs no toolchain, and
# is a hard CI gate (tools/ci_check.sh).
#
# Rules (docs/STATIC_ANALYSIS.md):
#   R1  no naked std sync primitives (std::mutex, std::lock_guard,
#       std::unique_lock, std::scoped_lock, std::condition_variable,
#       std::shared_mutex, std::recursive_mutex) outside src/util/mutex.h —
#       an unannotated mutex is invisible to the thread-safety analysis,
#       which silently un-proves everything it guards.
#   R2  no std::thread::detach() — a detached thread outlives every
#       shutdown guarantee the drain logic makes.
#   R3  every std::memory_order_relaxed use needs a `// memory-order:`
#       rationale comment on the same line or within the 10 lines above.
#   R4  every RS_NO_THREAD_SAFETY_ANALYSIS use needs a `// safety:`
#       justification comment on the same line or within the 10 lines above.
#   R5  no naked epoll calls (epoll_create1/epoll_ctl/epoll_wait) outside
#       src/serve/event_loop.* — readiness bookkeeping that bypasses
#       EventLoop breaks its edge-triggered re-arm and drain invariants.
#
# Usage: tools/check_concurrency.sh   (exits non-zero on any finding)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

files=$(find src -name '*.h' -o -name '*.cpp' | sort; find tools -maxdepth 1 -name '*.cpp' | sort)

status=0

# R1: naked std sync primitives.  src/util/mutex.h is the one allowed home
# (it wraps them with the annotations); thread_annotations.h documents them.
r1=$(printf '%s\n' "$files" |
  grep -v -e '^src/util/mutex\.h$' |
  xargs grep -nE \
    'std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable(_any)?|shared_mutex|shared_lock|recursive_mutex|timed_mutex)\b' \
    /dev/null | grep -v 'check_concurrency-allow' || true)
if [ -n "$r1" ]; then
  status=1
  echo "check_concurrency: R1 naked std sync primitive (use rs::util::Mutex/MutexLock/CondVar from src/util/mutex.h):" >&2
  printf '%s\n' "$r1" >&2
fi

# R2: detached threads.
r2=$(printf '%s\n' "$files" | xargs grep -nE '\.detach\(\)' /dev/null || true)
if [ -n "$r2" ]; then
  status=1
  echo "check_concurrency: R2 std::thread::detach() is banned (nothing may outlive the drain):" >&2
  printf '%s\n' "$r2" >&2
fi

# R5: epoll syscalls confined to the event loop.  Everything else talks to
# EventLoop through its API so the edge-trigger re-arm logic stays in one
# place.
r5=$(printf '%s\n' "$files" |
  grep -v -e '^src/serve/event_loop\.h$' -e '^src/serve/event_loop\.cpp$' |
  xargs grep -nE 'epoll_(create1|ctl|wait)\s*\(' /dev/null |
  grep -v 'check_concurrency-allow' || true)
if [ -n "$r5" ]; then
  status=1
  echo "check_concurrency: R5 naked epoll call outside src/serve/event_loop.* (route readiness through EventLoop):" >&2
  printf '%s\n' "$r5" >&2
fi

# R3/R4: pattern uses requiring a nearby rationale comment.
check_rationale() {
  pattern="$1"; rationale="$2"; label="$3"; exempt="$4"
  out=$(printf '%s\n' "$files" | grep -v -e "^$exempt\$" | while read -r f; do
    awk -v pat="$pattern" -v rat="$rationale" -v file="$f" '
      { line[NR] = $0 }
      $0 ~ pat {
        ok = 0
        for (i = NR; i >= NR - 10 && i >= 1; i--) {
          if (line[i] ~ rat) { ok = 1; break }
        }
        if (!ok) printf "%s:%d:%s\n", file, NR, $0
      }' "$f"
  done)
  if [ -n "$out" ]; then
    status=1
    echo "check_concurrency: $label" >&2
    printf '%s\n' "$out" >&2
  fi
}

check_rationale 'memory_order_relaxed' 'memory-order:' \
  "R3 relaxed atomic without a '// memory-order:' rationale within 10 lines:" \
  'none'
check_rationale 'RS_NO_THREAD_SAFETY_ANALYSIS' '(safety:|^#define)' \
  "R4 RS_NO_THREAD_SAFETY_ANALYSIS without a '// safety:' justification within 10 lines:" \
  'src/util/thread_annotations.h'

if [ "$status" -ne 0 ]; then
  echo "check_concurrency: FAILED (see docs/STATIC_ANALYSIS.md for the rules)" >&2
  exit 1
fi
echo "check_concurrency: clean ($(printf '%s\n' "$files" | wc -l | tr -d ' ') files)"
