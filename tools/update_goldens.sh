#!/bin/sh
# Regenerates the golden report outputs under tests/golden/ from the
# current build.  Run this ONLY when a report's output has intentionally
# changed, and review the diff before committing — these bytes are the
# contract that tests/analysis/golden_report_test.cpp pins across thread
# counts and instrumentation on/off.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
ROOTSTORE="$BUILD_DIR/tools/rootstore"

if [ ! -x "$ROOTSTORE" ]; then
  echo "update_goldens: $ROOTSTORE not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p tests/golden
for name in table1 table2 table3 table4 table5 table6 table7 \
            fig1 fig2 fig3 fig4 agreement exclusivity ct_landscape; do
  # Serial execution is the reference; the test asserts that threaded and
  # instrumented runs reproduce these bytes exactly.
  "$ROOTSTORE" report "$name" --threads 0 > "tests/golden/report_$name.txt"
  echo "wrote tests/golden/report_$name.txt"
done

# Verify request→response corpus (tests/verify/verify_golden_test.cpp).
MAKE_VERIFY_GOLDENS="$BUILD_DIR/tools/make_verify_goldens"
if [ ! -x "$MAKE_VERIFY_GOLDENS" ]; then
  echo "update_goldens: $MAKE_VERIFY_GOLDENS not found; build first" >&2
  exit 1
fi
"$MAKE_VERIFY_GOLDENS" tests/golden/verify
