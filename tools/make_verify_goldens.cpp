// Regenerates the verify golden corpus: tests/golden/verify/requests.ndjson
// and responses.ndjson, ~a dozen canonical verify_chain / first_rejected_at
// request lines paired with the engine's byte-exact responses.
// tests/verify/verify_golden_test.cpp replays the requests through a fresh
// engine and diffs against the stored responses, so regenerate ONLY for
// intentional response-shape changes (via tools/update_goldens.sh) and
// review the diff.
//
// Usage: make_verify_goldens <output-dir>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/store/database.h"
#include "src/synth/chain_gen.h"
#include "src/synth/incidents.h"
#include "src/synth/paper_scenario.h"
#include "src/util/date.h"

namespace {

using rs::query::Op;
using rs::query::Request;
using rs::query::Scope;
using rs::synth::ChainCase;
using rs::util::Date;

const ChainCase* find_case(const std::vector<ChainCase>& cases,
                           const std::string& prefix) {
  for (const ChainCase& c : cases) {
    if (c.name.rfind(prefix, 0) == 0) return &c;
  }
  return nullptr;
}

std::string request_line(const ChainCase& c, Op op, const std::string& provider,
                         std::optional<Date> date, Scope scope) {
  Request r;
  r.op = op;
  r.provider = provider;
  r.date = date;
  r.scope = scope;
  r.leaf = c.leaf->der();
  for (const auto& cert : c.pool) r.pool.push_back(cert->der());
  std::sort(r.pool.begin(), r.pool.end());
  r.pool.erase(std::unique(r.pool.begin(), r.pool.end()), r.pool.end());
  return rs::query::canonical_request(r);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_verify_goldens <output-dir>\n";
    return 2;
  }
  const std::filesystem::path out_dir = argv[1];
  std::filesystem::create_directories(out_dir);

  auto scenario = rs::synth::build_paper_scenario();
  const rs::store::StoreDatabase& db = scenario.database();
  auto config = rs::synth::default_chain_config(db);
  for (const auto& incident : rs::synth::high_severity_incidents()) {
    for (const auto& root_id : incident.root_ids) {
      if (auto cert = scenario.factory().find(root_id)) {
        config.incident_anchors.emplace_back(incident.name + "/" + root_id,
                                             std::move(cert));
      }
    }
  }
  const auto cases = rs::synth::build_chain_cases(config);
  const rs::query::QueryEngine engine(db, {});

  const std::string provider = db.find("NSS") != nullptr
                                   ? std::string("NSS")
                                   : db.providers().front();
  const auto coverage = engine.index().coverage(provider);
  if (!coverage) {
    std::cerr << "make_verify_goldens: provider '" << provider
              << "' has no coverage\n";
    return 1;
  }
  // A date in the interior of the coverage window where the generic chains
  // (built inside the anchor's validity) are live.
  const Date mid = coverage->first + (coverage->last - coverage->first) / 2;

  std::vector<std::string> requests;
  auto add = [&](const char* name, std::string line) {
    std::cerr << "  [" << requests.size() << "] " << name << "\n";
    requests.push_back(std::move(line));
  };

  const ChainCase* straight = find_case(cases, "straight");
  const ChainCase* deep = find_case(cases, "deep");
  const ChainCase* pathlen = find_case(cases, "pathlen_violation");
  const ChainCase* rogue = find_case(cases, "untrusted_root");
  const ChainCase* non_ca = find_case(cases, "non_ca_intermediate");
  const ChainCase* expired_ica = find_case(cases, "expired_intermediate");
  const ChainCase* email_leaf = find_case(cases, "email_leaf");
  const ChainCase* missing = find_case(cases, "missing_intermediate");
  const ChainCase* mixed = find_case(cases, "mixed_case");
  const ChainCase* incident = find_case(cases, "incident:");
  if (!straight || !deep || !pathlen || !rogue || !non_ca || !expired_ica ||
      !email_leaf || !missing || !mixed || !incident) {
    std::cerr << "make_verify_goldens: chain catalog lost a named case\n";
    return 1;
  }

  add("accepted straight chain",
      request_line(*straight, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("accepted deep chain",
      request_line(*deep, Op::kVerifyChain, provider, mid, Scope::kTls));
  // The chain outlives the provider's snapshot history, so probing past
  // the leaf's expiry is also past coverage: the answer must be the typed
  // not_covered, never a verdict extrapolated beyond the last snapshot.
  add("date past coverage end",
      request_line(*straight, Op::kVerifyChain, provider,
                   straight->leaf->validity().not_after.date + 1, Scope::kTls));
  add("expired intermediate",
      request_line(*expired_ica, Op::kVerifyChain, provider,
                   expired_ica->pool.front()->validity().not_after.date + 1,
                   Scope::kTls));
  add("pathLen violation",
      request_line(*pathlen, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("non-CA intermediate",
      request_line(*non_ca, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("untrusted root",
      request_line(*rogue, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("email-only leaf EKU under tls scope",
      request_line(*email_leaf, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("email-only leaf EKU under email scope",
      request_line(*email_leaf, Op::kVerifyChain, provider, mid,
                   Scope::kEmail));
  add("missing intermediate",
      request_line(*missing, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("case-folded issuer names",
      request_line(*mixed, Op::kVerifyChain, provider, mid, Scope::kTls));
  add("date before coverage",
      request_line(*straight, Op::kVerifyChain, provider, coverage->first - 1,
                   Scope::kTls));
  add("flip scan: stable chain",
      request_line(*straight, Op::kFirstRejectedAt, provider, std::nullopt,
                   Scope::kTls));
  add("flip scan: incident chain",
      request_line(*incident, Op::kFirstRejectedAt, provider, std::nullopt,
                   Scope::kTls));
  // The trust-bit case runs against the provider that actually carries the
  // email-only root, probed on a snapshot date where its email bit is set:
  // the tls verdict must fail on the anchor's trust bits alone.
  if (const ChainCase* email_anchor = find_case(cases, "email_only_anchor")) {
    bool placed = false;
    for (const std::string& p : db.providers()) {
      const rs::store::ProviderHistory* history = db.find(p);
      for (const rs::store::Snapshot& snap : history->snapshots()) {
        const auto* entry = snap.find(email_anchor->root_fp);
        if (entry == nullptr ||
            !entry->trust_for(rs::store::TrustPurpose::kEmailProtection)
                 .is_anchor()) {
          continue;
        }
        add("email-only anchor under tls scope",
            request_line(*email_anchor, Op::kVerifyChain, p, snap.date,
                         Scope::kTls));
        add("email-only anchor under email scope",
            request_line(*email_anchor, Op::kVerifyChain, p, snap.date,
                         Scope::kEmail));
        placed = true;
        break;
      }
      if (placed) break;
    }
    if (!placed) {
      std::cerr << "make_verify_goldens: no provider carries the "
                   "email-only anchor\n";
      return 1;
    }
  }
  // One batch envelope mixing both verify ops: the batch path must answer
  // with the same bytes the per-line path produces for each item.
  add("batch of two verify items",
      "{\"op\":\"batch\",\"requests\":[" + requests[0] + "," + requests[12] +
          "]}");

  std::ofstream req_out(out_dir / "requests.ndjson", std::ios::binary);
  std::ofstream res_out(out_dir / "responses.ndjson", std::ios::binary);
  if (!req_out.good() || !res_out.good()) {
    std::cerr << "make_verify_goldens: cannot write under " << out_dir << "\n";
    return 1;
  }
  for (const std::string& line : requests) {
    req_out << line << "\n";
    res_out << engine.handle_json(line) << "\n";
  }
  req_out.flush();
  res_out.flush();
  if (!req_out.good() || !res_out.good()) {
    std::cerr << "make_verify_goldens: short write under " << out_dir << "\n";
    return 1;
  }
  std::cerr << "wrote " << requests.size() << " request/response pairs under "
            << out_dir << "\n";
  return 0;
}
