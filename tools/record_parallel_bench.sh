#!/bin/sh
# Records the thread-pool scaling sweep (BM_JaccardMatrixParallel and
# BM_MdsSmacofParallel at 0/1/2/4/8 workers) into BENCH_parallel.json at
# the repo root, then prints the 1-vs-N real-time speedup per benchmark.
#
# Usage: tools/record_parallel_bench.sh [build-dir] [out-file]
#
# The build tree must already contain the perf_analysis binary
# (cmake --build <build-dir> --target perf_analysis).  Results depend on
# the machine's core count: on a single-CPU host the parallel variants sit
# at ~1x (the determinism contract, not the speedup, is what tests gate
# on — see docs/PARALLELISM.md).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_parallel.json"}"

bench_bin="$build_dir/bench/perf_analysis"
if [ ! -x "$bench_bin" ]; then
  echo "record_parallel_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_analysis" >&2
  exit 2
fi

"$bench_bin" \
  --benchmark_filter='BM_JaccardMatrixParallel|BM_MdsSmacofParallel' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# Summarize serial-vs-N speedups from the JSON (no jq dependency: the
# google-benchmark JSON layout is stable enough for an awk pass).
awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    t = $2;
    split(name, parts, "/");
    base = parts[1]; arg = parts[2];
    if (arg == "0" || arg ~ /^0\./) serial[base] = t;
    times[base "/" arg] = t;
  }
  END {
    for (key in times) {
      split(key, parts, "/");
      base = parts[1]; arg = parts[2] + 0;
      if (arg > 0 && serial[base] > 0)
        printf "%s: %d worker(s) -> %.2fx vs serial\n",
               base, arg, serial[base] / times[key];
    }
  }
' "$out_file" | sort

echo "record_parallel_bench: wrote $out_file"
