#!/bin/sh
# Pre-merge gate: one command that runs everything reviewers rely on.
#
#   1. strict build      -Wall -Wextra -Wconversion -Wshadow -Werror (the
#                        project default) plus the full test suite
#   2. sanitizer build   ASan+UBSan, replaying the fuzz corpus and the whole
#                        test suite so memory bugs fail CI deterministically
#   3. TSan build        ThreadSanitizer over the concurrency suite
#                        (`ctest -L tsan`: thread-pool stress tests, the
#                        parallel analysis pipeline under contention, the
#                        merge-vs-interned equivalence suite on the pool,
#                        and the serve layer under concurrent socket clients)
#   4. static concurrency gates (skip with ROOTSTORE_SKIP_STATIC=1)
#                        a) tools/check_concurrency.sh — structural
#                           lock-discipline lint (naked std::mutex, detach,
#                           unexplained relaxed atomics); always enforced
#                        b) clang -Wthread-safety -Werror build proving the
#                           RS_GUARDED_BY/RS_REQUIRES annotations, plus the
#                           negative-compile check at configure time
#                           (skipped with a notice when clang is missing)
#                        c) clang static analyzer over src/ against the
#                           empty baseline in tools/analyzer_baseline.txt
#                           (skipped with a notice when clang is missing)
#   5. lint              clang-tidy via tools/run_lint.sh (skipped with a
#                        notice when clang-tidy is not installed)
#   6. benches           records the 1-vs-N worker scaling sweep into
#                        BENCH_parallel.json, the merge-vs-interned
#                        set-algebra sweep into BENCH_intern.json, the
#                        observability-overhead sweep into BENCH_obs.json,
#                        the threaded-vs-epoll serve transport comparison
#                        into BENCH_serve.json — gated same-run: epoll at
#                        64 connections must hold >= 0.7x the threaded
#                        4-connection miss throughput, and batch-16 must
#                        amortize >= 2x the singleton hit throughput —
#                        the persisted-index cold-start/append
#                        speedups into BENCH_incremental.json, gated
#                        against the docs/PERSISTENCE.md floors (load >=
#                        20x rebuild, append-one >= 10x full recompute),
#                        the chain-verification sweep into
#                        BENCH_verify.json, gated on the breakpoint
#                        temporal scan beating the day-by-day scan >= 5x,
#                        and the landscape agreement-matrix comparison
#                        into BENCH_landscape.json, gated on the IdSet
#                        matrix beating the naive FingerprintSet scan
#                        >= 5x (skip with ROOTSTORE_SKIP_BENCH=1)
#   7. coverage          gcov build + full suite, enforcing the src/ line
#                        coverage floor in tools/coverage_baseline.txt
#                        (skip with ROOTSTORE_SKIP_COVERAGE=1)
#
# Usage: tools/ci_check.sh [jobs]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "=== [1/7] strict -Werror build + tests ==="
cmake -B "$repo_root/build" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$repo_root/build" -j "$jobs"
ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"

echo "=== [2/7] ASan/UBSan build + corpus regression ==="
cmake -B "$repo_root/build-asan" -S "$repo_root" \
      -DROOTSTORE_SANITIZE=address,undefined >/dev/null
cmake --build "$repo_root/build-asan" -j "$jobs"
ctest --test-dir "$repo_root/build-asan" --output-on-failure -j "$jobs"

echo "=== [3/7] TSan build + concurrency suite ==="
cmake -B "$repo_root/build-tsan" -S "$repo_root" \
      -DROOTSTORE_SANITIZE=thread >/dev/null
cmake --build "$repo_root/build-tsan" -j "$jobs" \
      --target exec_tests --target intern_equivalence_tests \
      --target obs_tests --target query_property_tests --target serve_tests \
      --target thread_annotations_tests --target verify_property_tests \
      --target landscape_property_tests
ctest --test-dir "$repo_root/build-tsan" --output-on-failure -L tsan

if [ "${ROOTSTORE_SKIP_STATIC:-0}" = "1" ]; then
  echo "=== [4/7] static concurrency gates: SKIPPED (ROOTSTORE_SKIP_STATIC=1) ==="
else
  echo "=== [4/7] static concurrency gates ==="
  "$repo_root/tools/check_concurrency.sh"
  clangxx=""
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clangxx="$candidate"
      break
    fi
  done
  if [ -z "$clangxx" ]; then
    echo "thread-safety build: SKIPPED (clang++ not installed; gcc has no" \
         "thread-safety analysis — the proof runs on clang builders)"
  else
    # -Wthread-safety rides in via rs_harden (cmake/Hardening.cmake); the
    # configure step also runs the negative-compile check asserting that a
    # guarded access without its MutexLock fails the build.
    cmake -B "$repo_root/build-tsa" -S "$repo_root" \
          -DCMAKE_CXX_COMPILER="$clangxx" >/dev/null
    cmake --build "$repo_root/build-tsa" -j "$jobs"
  fi
  "$repo_root/tools/run_analyzer.sh"
fi

echo "=== [5/7] clang-tidy ==="
"$repo_root/tools/run_lint.sh" "$repo_root/build"

if [ "${ROOTSTORE_SKIP_BENCH:-0}" = "1" ]; then
  echo "=== [6/7] benches: SKIPPED (ROOTSTORE_SKIP_BENCH=1) ==="
else
  echo "=== [6/7] benches -> BENCH_parallel/intern/obs/serve/incremental/verify/landscape.json ==="
  cmake --build "$repo_root/build" -j "$jobs" --target perf_analysis \
        --target perf_persist --target perf_verify --target perf_landscape \
        --target rootstore --target serve_loadgen
  "$repo_root/tools/record_parallel_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_intern_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_obs_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_serve_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_incremental_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_verify_bench.sh" "$repo_root/build"
  "$repo_root/tools/record_landscape_bench.sh" "$repo_root/build"
fi

if [ "${ROOTSTORE_SKIP_COVERAGE:-0}" = "1" ]; then
  echo "=== [7/7] coverage: SKIPPED (ROOTSTORE_SKIP_COVERAGE=1) ==="
else
  echo "=== [7/7] coverage gate (tools/coverage_baseline.txt) ==="
  "$repo_root/tools/check_coverage.sh" "$repo_root/build-cov" "$jobs"
fi

echo "ci_check: all gates passed"
