#!/bin/sh
# Pre-merge gate: one command that runs everything reviewers rely on.
#
#   1. strict build      -Wall -Wextra -Wconversion -Wshadow -Werror (the
#                        project default) plus the full test suite
#   2. sanitizer build   ASan+UBSan, replaying the fuzz corpus and the whole
#                        test suite so memory bugs fail CI deterministically
#   3. lint              clang-tidy via tools/run_lint.sh (skipped with a
#                        notice when clang-tidy is not installed)
#
# Usage: tools/ci_check.sh [jobs]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "=== [1/3] strict -Werror build + tests ==="
cmake -B "$repo_root/build" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$repo_root/build" -j "$jobs"
ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"

echo "=== [2/3] ASan/UBSan build + corpus regression ==="
cmake -B "$repo_root/build-asan" -S "$repo_root" \
      -DROOTSTORE_SANITIZE=address,undefined >/dev/null
cmake --build "$repo_root/build-asan" -j "$jobs"
ctest --test-dir "$repo_root/build-asan" --output-on-failure -j "$jobs"

echo "=== [3/3] clang-tidy ==="
"$repo_root/tools/run_lint.sh" "$repo_root/build"

echo "ci_check: all gates passed"
