#!/bin/sh
# Records the serving-layer benchmark into BENCH_serve.json:
#
#   * miss phase — distinct requests, every answer computed by the engine
#   * hit phase  — a small working set replayed, answered from the LRU
#
# serve_loadgen reports per-phase throughput and p50/p99 latency plus the
# server's own cache counters; the committed BENCH_serve.json is the
# record that a cache hit is measurably faster than a miss.
#
# Usage: tools/record_serve_bench.sh [build-dir] [out-file]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_serve.json"}"

rootstore="$build_dir/tools/rootstore"
loadgen="$build_dir/tools/serve_loadgen"
for bin in "$rootstore" "$loadgen"; do
  if [ ! -x "$bin" ]; then
    echo "record_serve_bench: $bin missing; build rootstore and" >&2
    echo "serve_loadgen first" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$rootstore" serve --port 0 --threads 4 --cache 1024 \
    --port-file "$workdir/port" > "$workdir/serve.log" 2>&1 &
server_pid=$!

i=0
while [ ! -s "$workdir/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ] || ! kill -0 "$server_pid" 2>/dev/null; then
    echo "record_serve_bench: server failed to start" >&2
    cat "$workdir/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$workdir/port")

"$loadgen" --port "$port" --connections 4 --requests 2000 \
    --json-out "$out_file"

kill -INT "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "record_serve_bench: server exited $status after SIGINT" >&2
  exit 1
fi

echo "record_serve_bench: wrote $out_file"
