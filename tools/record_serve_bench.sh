#!/bin/sh
# Records the serving-layer benchmark into BENCH_serve.json.
#
# Five runs, every one against a FRESH server so each miss phase is a real
# cold cache, all recorded in the same invocation so the gate below never
# compares numbers from different machines or commits:
#
#   threaded_4   --transport threaded, 4 connections  (the PR 5 baseline at
#                 its native concurrency: one pool worker per connection)
#   threaded_64  --transport threaded, 64 connections (16x the worker count:
#                 connections queue behind the 4-thread pool)
#   epoll_4      event-driven transport, 4 connections
#   epoll_64     event-driven transport, 64 connections (the contention
#                 phase: 64 sockets multiplexed over 4 event loops)
#   epoll_batch16 event-driven transport, 4 connections, 16 queries per
#                 batch envelope (per-QUERY throughput, so the ratio to
#                 epoll_4 is the syscall-amortization win)
#
# Gates (hard failures, so CI catches a serve-layer regression):
#   G1  epoll_64 miss throughput >= 0.7x threaded_4 miss throughput — the
#       event loop at 16x the connection count must stay in the same class
#       as the PR 5 baseline at its native 4.
#   G2  epoll_batch16 hit throughput >= 2.0x epoll_4 hit throughput — the
#       cached path is syscall-bound, so batching must amortize visibly.
#
# NOTE on single-core CI runners: with one hardware thread every
# architecture time-slices the same core, so the multi-core story (64
# threaded connections queueing behind 4 pool workers while 4 event loops
# keep serving) cannot show up as a throughput win here.  What 1 CPU
# *does* measure honestly: epoll pays ~15% per-event syscall overhead vs
# a parked blocking recv when every socket is always-ready (hence a floor,
# not a speedup — 0.7 rather than 0.85 only to absorb the ±8% per-phase
# scheduler noise observed run-to-run), and batch envelopes amortize that
# overhead away (G2 is a real >= 2x on the same hardware).
# docs/SERVING.md records the interpretation; measured ratios land in the
# JSON either way.
#
# Usage: tools/record_serve_bench.sh [build-dir] [out-file]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_serve.json"}"

rootstore="$build_dir/tools/rootstore"
loadgen="$build_dir/tools/serve_loadgen"
for bin in "$rootstore" "$loadgen"; do
  if [ ! -x "$bin" ]; then
    echo "record_serve_bench: $bin missing; build rootstore and" >&2
    echo "serve_loadgen first" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# run_one <name> <transport> <connections> <requests> <batch>
# Starts a fresh server, runs loadgen, stops the server, leaves the
# per-run JSON at $workdir/<name>.json.
run_one() {
  name="$1"; transport="$2"; conns="$3"; reqs="$4"; batch="$5"
  rm -f "$workdir/port"
  "$rootstore" serve --port 0 --threads 4 --cache 1024 \
      --transport "$transport" \
      --port-file "$workdir/port" > "$workdir/$name.serve.log" 2>&1 &
  server_pid=$!
  i=0
  while [ ! -s "$workdir/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ] || ! kill -0 "$server_pid" 2>/dev/null; then
      echo "record_serve_bench: $name server failed to start" >&2
      cat "$workdir/$name.serve.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  port=$(cat "$workdir/port")
  "$loadgen" --port "$port" --connections "$conns" --requests "$reqs" \
      --batch "$batch" --json-out "$workdir/$name.json"
  kill -INT "$server_pid"
  status=0
  wait "$server_pid" || status=$?
  server_pid=""
  if [ "$status" -ne 0 ]; then
    echo "record_serve_bench: $name server exited $status after SIGINT" >&2
    cat "$workdir/$name.serve.log" >&2
    exit 1
  fi
}

# Gate-feeding phases run 25600 requests: short phases (~50 ms) let
# warm-up noise swamp the ratios on a shared CI core.
run_one threaded_4    threaded  4 25600 1
run_one threaded_64   threaded 64  6400 1
run_one epoll_4       epoll     4 25600 1
run_one epoll_64      epoll    64 25600 1
run_one epoll_batch16 epoll     4 25600 16

# phase_rps <file> <phase>: extracts "throughput_rps" from the phase line.
phase_rps() {
  awk -v phase="\"$2\"" -F'"throughput_rps": ' \
    '$0 ~ phase {split($2, a, ","); print a[1]}' "$1"
}

t4_miss=$(phase_rps "$workdir/threaded_4.json" miss_phase)
t64_miss=$(phase_rps "$workdir/threaded_64.json" miss_phase)
e64_miss=$(phase_rps "$workdir/epoll_64.json" miss_phase)
e4_hit=$(phase_rps "$workdir/epoll_4.json" hit_phase)
b16_hit=$(phase_rps "$workdir/epoll_batch16.json" hit_phase)

# Compose the committed record: the five runs plus the gate ratios.
{
  printf '{\n  "benchmark": "serve_transports",\n'
  for name in threaded_4 threaded_64 epoll_4 epoll_64 epoll_batch16; do
    printf '  "%s": ' "$name"
    sed 's/^/  /' "$workdir/$name.json" | sed '1s/^  //'
    printf ',\n'
  done | sed 's/^\(  },\)$/\1/'
  awk -v t4="$t4_miss" -v t64="$t64_miss" -v e64="$e64_miss" \
      -v e4h="$e4_hit" -v b16="$b16_hit" \
    'BEGIN {
       printf "  \"epoll64_over_threaded4_miss\": %.2f,\n", (t4 > 0 ? e64 / t4 : 0)
       printf "  \"epoll64_over_threaded64_miss\": %.2f,\n", (t64 > 0 ? e64 / t64 : 0)
       printf "  \"batch16_over_singleton_hit\": %.2f\n", (e4h > 0 ? b16 / e4h : 0)
     }'
  printf '}\n'
} > "$out_file"

# Gates.
awk -v t4="$t4_miss" -v e64="$e64_miss" 'BEGIN { exit !(e64 >= 0.7 * t4) }' || {
  echo "record_serve_bench: GATE G1 FAILED — epoll@64conns miss ${e64_miss} rps" >&2
  echo "is below 0.7x threaded@4conns miss ${t4_miss} rps (same-run)" >&2
  exit 1
}
awk -v e4h="$e4_hit" -v b16="$b16_hit" 'BEGIN { exit !(b16 >= 2.0 * e4h) }' || {
  echo "record_serve_bench: GATE G2 FAILED — batch-16 hit ${b16_hit} rps/query" >&2
  echo "is below 2.0x singleton hit ${e4_hit} rps (same-run)" >&2
  exit 1
}

echo "record_serve_bench: wrote $out_file (epoll64/threaded4 miss $(awk -v a="$e64_miss" -v b="$t4_miss" 'BEGIN{printf "%.2f", (b>0 ? a/b : 0)}')x, batch16/singleton hit $(awk -v a="$b16_hit" -v b="$e4_hit" 'BEGIN{printf "%.2f", (b>0 ? a/b : 0)}')x)"
