#!/bin/sh
# Records the merge-vs-interned set-algebra sweep (BM_JaccardMatrixMerge /
# BM_JaccardMatrixInterned matrices, the isolated BM_JaccardPairLoop, the
# BM_Staleness/DiffSeries engine pairs, and BM_InternerBuild) into
# BENCH_intern.json at the repo root, then prints the merge-vs-interned
# real-time speedup per benchmark.
#
# Usage: tools/record_intern_bench.sh [build-dir] [out-file]
#
# The build tree must already contain the perf_analysis binary
# (cmake --build <build-dir> --target perf_analysis).  Unlike the
# thread-scaling sweep, this comparison does not depend on core count: the
# interned engine wins on single-CPU hosts too, because it replaces
# per-element 32-byte digest merges with 64-bit popcounts.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_intern.json"}"

bench_bin="$build_dir/bench/perf_analysis"
if [ ! -x "$bench_bin" ]; then
  echo "record_intern_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_analysis" >&2
  exit 2
fi

"$bench_bin" \
  --benchmark_filter='BM_JaccardMatrixMerge|BM_JaccardMatrixInterned|BM_JaccardPairLoop|BM_StalenessEngines|BM_DiffSeriesEngines|BM_InternerBuild' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# Summarize merge-vs-interned speedups from the JSON (no jq dependency:
# the google-benchmark JSON layout is stable enough for an awk pass).
# Engine pairs are matched by benchmark arg: the matrix benchmarks pair
# Merge/Interned by per-provider cap; the */0 vs */1 benchmarks pair
# sorted-merge (0) against interned (1).
awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    times[name] = $2;
  }
  END {
    for (key in times) {
      if (split(key, parts, "/") != 2) continue;
      base = parts[1]; arg = parts[2];
      if (base == "BM_JaccardMatrixMerge") {
        interned = "BM_JaccardMatrixInterned/" arg;
        if (interned in times && times[interned] > 0)
          printf "JaccardMatrix cap=%s: interned %.2fx vs merge\n",
                 arg, times[key] / times[interned];
      } else if (arg == "0") {
        interned = base "/1";
        if (interned in times && times[interned] > 0)
          printf "%s: interned %.2fx vs merge\n",
                 substr(base, 4), times[key] / times[interned];
      }
    }
  }
' "$out_file" | sort

echo "record_intern_bench: wrote $out_file"
