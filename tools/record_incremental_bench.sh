#!/bin/sh
# Records the persisted-index benchmark into BENCH_incremental.json:
#
#   * cold start — BM_ColdStartLoadFile (mmap + validate + deserialize,
#     the `rootstore serve --index` path) vs BM_ColdStartRebuild
#     (interner + index compile from the database)
#   * incremental absorb — BM_AppendOneSnapshot (apply one new snapshot to
#     the existing tables) vs BM_FullRecompute (rebuild over the history)
#
# Both speedups are enforced against the floors the format promises
# (docs/PERSISTENCE.md): load >= 20x rebuild, append-one >= 10x full
# recompute.  The committed BENCH_incremental.json is the record.
#
# Usage: tools/record_incremental_bench.sh [build-dir] [out-file]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_incremental.json"}"

bench_bin="$build_dir/bench/perf_persist"
if [ ! -x "$bench_bin" ]; then
  echo "record_incremental_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_persist" >&2
  exit 2
fi

"$bench_bin" \
  --benchmark_filter='BM_ColdStartRebuild|BM_ColdStartLoad|BM_ColdStartLoadFile|BM_FullRecompute|BM_AppendOneSnapshot' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# Summarize and gate the two speedups from the JSON (no jq dependency:
# the google-benchmark JSON layout is stable enough for an awk pass).
awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    times[name] = $2;
  }
  END {
    status = 0;
    if (times["BM_ColdStartLoadFile"] > 0) {
      cold = times["BM_ColdStartRebuild"] / times["BM_ColdStartLoadFile"];
      printf "cold start:  load-from-file %.1fx vs rebuild (floor 20x)\n",
             cold;
      if (cold < 20) {
        print "record_incremental_bench: cold-start floor MISSED";
        status = 1;
      }
    } else { print "missing BM_ColdStartLoadFile"; status = 1 }
    if (times["BM_AppendOneSnapshot"] > 0) {
      inc = times["BM_FullRecompute"] / times["BM_AppendOneSnapshot"];
      printf "append one:  incremental %.1fx vs full recompute (floor 10x)\n",
             inc;
      if (inc < 10) {
        print "record_incremental_bench: append-one floor MISSED";
        status = 1;
      }
    } else { print "missing BM_AppendOneSnapshot"; status = 1 }
    exit status;
  }
' "$out_file"

echo "record_incremental_bench: wrote $out_file"
