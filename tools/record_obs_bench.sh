#!/bin/sh
# Records the observability-overhead sweep into BENCH_obs.json and prints
# the two numbers the rs_obs cost contract promises (src/obs/registry.h):
#
#   * disabled overhead — BM_JaccardMatrixObs/0 (instrumented build,
#     registry disabled) vs BM_JaccardMatrixInterned/40, the identical
#     workload benchmarked without any obs calls in its own body.  The
#     acceptance gate is <=2%: every probe on this path costs one relaxed
#     atomic load while disabled.
#   * enabled overhead — BM_JaccardMatrixObs/1 (tracing on, steady clock)
#     vs the disabled arm, i.e. what switching tracing on actually costs.
#
# Usage: tools/record_obs_bench.sh [build-dir] [out-file]
#
# The build tree must already contain the perf_analysis binary
# (cmake --build <build-dir> --target perf_analysis).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_obs.json"}"

bench_bin="$build_dir/bench/perf_analysis"
if [ ! -x "$bench_bin" ]; then
  echo "record_obs_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_analysis" >&2
  exit 2
fi

# Three repetitions; the summary below reads the medians, which ride out
# scheduler noise on small shared runners.
"$bench_bin" \
  --benchmark_filter='BM_JaccardMatrixObs|BM_StalenessObs|BM_JaccardMatrixInterned/40|BM_StalenessAllDerivatives' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    if (name ~ /_median$/) {
      short = name; sub(/_median$/, "", short);
      times[short] = $2;
    }
  }
  END {
    base = times["BM_JaccardMatrixInterned/40"];
    off  = times["BM_JaccardMatrixObs/0"];
    on   = times["BM_JaccardMatrixObs/1"];
    if (base > 0 && off > 0)
      printf "jaccard disabled-instrumentation overhead: %+.2f%%\n",
             100.0 * (off / base - 1.0);
    if (off > 0 && on > 0)
      printf "jaccard tracing-enabled overhead:          %+.2f%%\n",
             100.0 * (on / off - 1.0);
    sbase = times["BM_StalenessAllDerivatives"];
    soff  = times["BM_StalenessObs/0"];
    son   = times["BM_StalenessObs/1"];
    if (sbase > 0 && soff > 0)
      printf "staleness disabled-instrumentation overhead: %+.2f%%\n",
             100.0 * (soff / sbase - 1.0);
    if (soff > 0 && son > 0)
      printf "staleness tracing-enabled overhead:          %+.2f%%\n",
             100.0 * (son / soff - 1.0);
  }
' "$out_file"

echo "record_obs_bench: wrote $out_file"
