#!/bin/sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the production
# sources in src/, the CLI surface in tools/ (rootstore.cpp, serve_loadgen.cpp),
# and the fuzz harnesses, using the compile database of an existing CMake
# build tree.
#
# Usage: tools/run_lint.sh [build-dir] [extra clang-tidy args...]
#
# Exits 0 when clang-tidy is not installed (the lint gate is advisory on
# machines without LLVM; tools/ci_check.sh reports it as SKIPPED), exits
# non-zero on any finding because .clang-tidy sets WarningsAsErrors.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
if [ $# -gt 0 ]; then shift; fi

tidy_bin="${CLANG_TIDY:-}"
if [ -z "$tidy_bin" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy_bin" ]; then
  echo "run_lint: clang-tidy not found; skipping lint (install LLVM or set CLANG_TIDY)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_lint: $build_dir/compile_commands.json missing; configure with" >&2
  echo "  cmake -B $build_dir -S $repo_root -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# Every translation unit in src/, the CLI binaries in tools/, and the fuzz
# harnesses; tests and bench are intentionally out of scope (gtest/benchmark
# macros trip style checks).  tools/ was a blind spot until the concurrency
# pass: the serve CLI and loadgen carry real thread code.
{
  find "$repo_root/src" "$repo_root/fuzz" -name '*.cpp' 2>/dev/null
  find "$repo_root/tools" -maxdepth 1 -name '*.cpp' 2>/dev/null
} | sort | xargs "$tidy_bin" -p "$build_dir" --quiet "$@"
echo "run_lint: clean"
