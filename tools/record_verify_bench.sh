#!/bin/sh
# Records the chain-verification benchmark into BENCH_verify.json:
#
#   * point verdicts — BM_VerifyChainStraight/Deep/CrossSign (the verifier
#     alone over a TrustIndex-backed oracle) and BM_EngineVerifyChain (the
#     same verdict through QueryEngine::handle, one serve-cache miss)
#   * temporal scans — BM_FirstRejectedAtBreakpoints (the shipped
#     flip_breakpoints sweep) vs BM_FirstRejectedAtLinearScan (every day
#     of coverage, the naive alternative)
#
# Gate: the breakpoint sweep must beat the day-by-day scan by >= 5x on the
# paper scenario (it visits ~30x fewer dates; see docs/VERIFY.md).  The
# committed BENCH_verify.json is the record.
#
# Usage: tools/record_verify_bench.sh [build-dir] [out-file]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-"$repo_root/build"}"
out_file="${2:-"$repo_root/BENCH_verify.json"}"

bench_bin="$build_dir/bench/perf_verify"
if [ ! -x "$bench_bin" ]; then
  echo "record_verify_bench: $bench_bin missing; build it first:" >&2
  echo "  cmake --build $build_dir --target perf_verify" >&2
  exit 2
fi

"$bench_bin" \
  --benchmark_filter='BM_VerifyChainStraight|BM_VerifyChainDeep|BM_VerifyChainCrossSign|BM_EngineVerifyChain|BM_FirstRejectedAtBreakpoints|BM_FirstRejectedAtLinearScan' \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# Summarize and gate the temporal-scan speedup from the JSON (no jq
# dependency: the google-benchmark JSON layout is stable enough for awk).
awk '
  /"name":/      { gsub(/[",]/, ""); name = $2 }
  /"real_time":/ {
    gsub(/,/, "");
    times[name] = $2;
  }
  END {
    status = 0;
    if (times["BM_FirstRejectedAtBreakpoints"] > 0) {
      linear = times["BM_FirstRejectedAtLinearScan"];
      speedup = linear / times["BM_FirstRejectedAtBreakpoints"];
      printf "temporal scan: breakpoints %.1fx vs day-by-day (floor 5x)\n",
             speedup;
      if (speedup < 5) {
        print "record_verify_bench: breakpoint-speedup floor MISSED";
        status = 1;
      }
    } else { print "missing BM_FirstRejectedAtBreakpoints"; status = 1 }
    exit status;
  }
' "$out_file"

echo "record_verify_bench: wrote $out_file"
