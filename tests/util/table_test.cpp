#include "src/util/table.h"

#include <gtest/gtest.h>

namespace rs::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Store", "Size"});
  t.set_align(1, Align::kRight);
  t.add_row({"NSS", "121.8"});
  t.add_row({"Microsoft", "246.6"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Store"), std::string::npos);
  EXPECT_NE(out.find("NSS"), std::string::npos);
  // Right-aligned numeric column: "121.8" padded to the width of "246.6".
  EXPECT_NE(out.find("121.8"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsPadAndLongRowsTruncate) {
  TextTable t({"a", "b"});
  t.add_row({"only"});
  t.add_row({"x", "y", "dropped"});
  const std::string out = t.render();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(TextTable, SeparatorInsertsRule) {
  TextTable t({"h"});
  t.add_row({"above"});
  t.add_separator();
  t.add_row({"below"});
  const std::string out = t.render();
  // Header rule + explicit separator = at least two dashed lines.
  std::size_t dashes = 0;
  for (std::size_t pos = out.find("-----"); pos != std::string::npos;
       pos = out.find("-----", pos + 1)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"q\"uote", "line\nbreak"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Fmt, DoubleAndPercent) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
  EXPECT_EQ(fmt_percent(0.77), "77.0%");
  EXPECT_EQ(fmt_percent(0.005), "0.5%");
}

}  // namespace
}  // namespace rs::util
