#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace rs::util {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(min_of({}), 0.0);
  EXPECT_EQ(max_of({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd = {3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpointsAndMid) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {2, 3, 4};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson(xs, {}), 0.0);
}

}  // namespace
}  // namespace rs::util
