// Negative-compilation probe for the thread-safety analysis.
//
// A miniature of serve::LruCache::get ("lookup"): a counter field guarded
// by a util::Mutex.  Compiled twice by a configure-time try_compile in
// tests/CMakeLists.txt (clang only):
//
//   -DRS_TSA_TAKE_LOCK=1   the faithful version, MutexLock held
//                          -> MUST compile (positive control)
//   (no define)            the same lookup with the MutexLock deliberately
//                          removed -> MUST FAIL under
//                          -Wthread-safety -Werror=thread-safety-analysis
//
// If the second variant ever compiles, the analysis has stopped enforcing
// the lock discipline (macros expanding to nothing under clang, flag lost
// from rs_harden, ...) and the configure step aborts.
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

struct MiniLruCache {
  rs::util::Mutex mutex;
  int hits RS_GUARDED_BY(mutex) = 0;

  int lookup() RS_EXCLUDES(mutex) {
#if defined(RS_TSA_TAKE_LOCK)
    const rs::util::MutexLock lock(mutex);
#endif
    return ++hits;
  }
};

}  // namespace

int main() {
  MiniLruCache cache;
  return cache.lookup() == 1 ? 0 : 1;
}
