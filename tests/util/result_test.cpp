#include "src/util/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rs::util {
namespace {

TEST(Result, ValueConstruction) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, ImplicitFromValue) {
  auto make = []() -> Result<std::string> { return std::string("hi"); };
  auto r = make();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hi");
}

TEST(Result, ErrorConstruction) {
  auto r = Result<int>::err("it broke");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), "it broke");
}

TEST(Result, TakeMovesOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const auto v = std::move(r).take();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

TEST(Result, PropagateCarriesMessageAcrossTypes) {
  auto source = Result<int>::err("root cause");
  auto propagated = source.propagate<std::string>();
  ASSERT_FALSE(propagated.ok());
  EXPECT_EQ(propagated.error(), "root cause");
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).take();
  EXPECT_EQ(*p, 7);
}

TEST(Result, StringValueIsNotConfusedWithError) {
  // A Result<std::string> holding a value must report ok() even though the
  // error alternative is also string-like.
  Result<std::string> r(std::string("payload"));
  EXPECT_TRUE(r.ok());
  auto e = Result<std::string>::err("failure");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error(), "failure");
}

}  // namespace
}  // namespace rs::util
