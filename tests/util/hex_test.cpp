#include "src/util/hex.h"

#include <gtest/gtest.h>

namespace rs::util {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> v;
  for (int x : xs) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(Hex, EncodeLowercase) {
  EXPECT_EQ(hex_encode(bytes({0xDE, 0xAD, 0xBE, 0xEF})), "deadbeef");
  EXPECT_EQ(hex_encode(bytes({0x00, 0x01, 0x0F})), "00010f");
  EXPECT_EQ(hex_encode({}), "");
}

TEST(Hex, EncodeColonUppercase) {
  EXPECT_EQ(hex_encode_colon(bytes({0xDE, 0xAD})), "DE:AD");
  EXPECT_EQ(hex_encode_colon(bytes({0x5A})), "5A");
  EXPECT_EQ(hex_encode_colon({}), "");
}

TEST(Hex, DecodeBasic) {
  EXPECT_EQ(hex_decode("deadbeef"), bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(hex_decode("DEADBEEF"), bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(hex_decode(""), bytes({}));
}

TEST(Hex, DecodeIgnoresColonsAndWhitespace) {
  EXPECT_EQ(hex_decode("DE:AD:BE:EF"), bytes({0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(hex_decode(" de ad\nbe\tef "), bytes({0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeRejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());     // odd digits
  EXPECT_FALSE(hex_decode("zz").has_value());      // non-hex
  EXPECT_FALSE(hex_decode("0x10").has_value());    // 'x'
  EXPECT_FALSE(hex_decode("a:b:c").has_value());   // odd after strip
}

TEST(HexProperty, RoundTripSweep) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 257; ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 31 + 7));
    const std::string enc = hex_encode(data);
    ASSERT_EQ(enc.size(), data.size() * 2);
    EXPECT_EQ(hex_decode(enc), data);
    EXPECT_EQ(hex_decode(hex_encode_colon(data)), data);
  }
}

}  // namespace
}  // namespace rs::util
