#include "src/util/date.h"

#include <gtest/gtest.h>

namespace rs::util {
namespace {

TEST(Date, EpochIsDayZero) {
  EXPECT_EQ(Date::ymd(1970, 1, 1).days_since_epoch(), 0);
}

TEST(Date, KnownOffsets) {
  EXPECT_EQ(Date::ymd(1970, 1, 2).days_since_epoch(), 1);
  EXPECT_EQ(Date::ymd(1969, 12, 31).days_since_epoch(), -1);
  EXPECT_EQ(Date::ymd(2000, 3, 1).days_since_epoch(), 11017);
  EXPECT_EQ(Date::ymd(2021, 11, 2).days_since_epoch(), 18933);
}

TEST(Date, CivilRoundTripAcrossCenturyBoundaries) {
  for (int year : {1950, 1999, 2000, 2001, 2049, 2050, 2100}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 28}) {
        const Date d = Date::ymd(year, month, day);
        const CivilDate c = d.civil();
        EXPECT_EQ(c.year, year);
        EXPECT_EQ(c.month, month);
        EXPECT_EQ(c.day, day);
      }
    }
  }
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2000));   // divisible by 400
  EXPECT_FALSE(is_leap_year(1900));  // divisible by 100 only
  EXPECT_TRUE(is_leap_year(2004));
  EXPECT_FALSE(is_leap_year(2021));
}

TEST(Date, DaysInMonthHonoursLeapFebruary) {
  EXPECT_EQ(days_in_month(2000, 2), 29);
  EXPECT_EQ(days_in_month(1900, 2), 28);
  EXPECT_EQ(days_in_month(2021, 4), 30);
  EXPECT_EQ(days_in_month(2021, 12), 31);
  EXPECT_EQ(days_in_month(2021, 13), 0);
}

TEST(Date, FromCivilRejectsInvalid) {
  EXPECT_FALSE(Date::from_civil({2021, 2, 29}).has_value());
  EXPECT_FALSE(Date::from_civil({2021, 0, 1}).has_value());
  EXPECT_FALSE(Date::from_civil({2021, 13, 1}).has_value());
  EXPECT_FALSE(Date::from_civil({2021, 4, 31}).has_value());
  EXPECT_TRUE(Date::from_civil({2020, 2, 29}).has_value());
}

TEST(Date, ParseAcceptsIsoOnly) {
  EXPECT_EQ(Date::parse("2021-11-02"), Date::ymd(2021, 11, 2));
  EXPECT_FALSE(Date::parse("2021-11-2").has_value());
  EXPECT_FALSE(Date::parse("2021/11/02").has_value());
  EXPECT_FALSE(Date::parse("21-11-02").has_value());
  EXPECT_FALSE(Date::parse("2021-13-02").has_value());
  EXPECT_FALSE(Date::parse("").has_value());
  EXPECT_FALSE(Date::parse("2021-02-29").has_value());
}

TEST(Date, ToStringPadsFields) {
  EXPECT_EQ(Date::ymd(2005, 5, 9).to_string(), "2005-05-09");
}

TEST(Date, ParseToStringRoundTrip) {
  for (std::int64_t days = -10000; days <= 30000; days += 997) {
    const Date d = Date::from_days(days);
    EXPECT_EQ(Date::parse(d.to_string()), d) << d.to_string();
  }
}

TEST(Date, WeekdayKnownValues) {
  EXPECT_EQ(Date::ymd(1970, 1, 1).weekday(), 4);   // Thursday
  EXPECT_EQ(Date::ymd(2021, 11, 2).weekday(), 2);  // IMC '21 opened a Tuesday
  EXPECT_EQ(Date::ymd(2000, 1, 1).weekday(), 6);   // Saturday
}

TEST(Date, ArithmeticAndDifference) {
  const Date a = Date::ymd(2021, 1, 1);
  EXPECT_EQ(a + 31, Date::ymd(2021, 2, 1));
  EXPECT_EQ(a - 1, Date::ymd(2020, 12, 31));
  EXPECT_EQ(Date::ymd(2021, 12, 31) - a, 364);
}

TEST(Date, AddMonthsClampsDay) {
  EXPECT_EQ(Date::ymd(2021, 1, 31).add_months(1), Date::ymd(2021, 2, 28));
  EXPECT_EQ(Date::ymd(2020, 1, 31).add_months(1), Date::ymd(2020, 2, 29));
  EXPECT_EQ(Date::ymd(2021, 3, 15).add_months(-3), Date::ymd(2020, 12, 15));
  EXPECT_EQ(Date::ymd(2021, 6, 30).add_months(12), Date::ymd(2022, 6, 30));
  EXPECT_EQ(Date::ymd(2021, 6, 30).add_months(0), Date::ymd(2021, 6, 30));
}

TEST(Date, AddMonthsAcrossYearBoundaries) {
  EXPECT_EQ(Date::ymd(2020, 11, 15).add_months(3), Date::ymd(2021, 2, 15));
  EXPECT_EQ(Date::ymd(2021, 2, 15).add_months(-3), Date::ymd(2020, 11, 15));
}

TEST(Date, YearsBetween) {
  EXPECT_NEAR(years_between(Date::ymd(2019, 1, 1), Date::ymd(2021, 1, 1)), 2.0,
              0.01);
  EXPECT_NEAR(years_between(Date::ymd(2021, 1, 1), Date::ymd(2019, 1, 1)),
              -2.0, 0.01);
}

TEST(Date, OrderingIsTotal) {
  EXPECT_LT(Date::ymd(2011, 10, 6), Date::ymd(2017, 7, 27));
  EXPECT_GT(Date::ymd(2021, 5, 1), Date::ymd(2021, 4, 30));
  EXPECT_EQ(Date::ymd(2021, 5, 1), *Date::parse("2021-05-01"));
}

// Property: days_since_epoch is strictly monotone in civil order.
TEST(DateProperty, MonotoneOverSweep) {
  Date prev = Date::ymd(1949, 12, 31);
  for (int year = 1950; year <= 2060; ++year) {
    for (int month = 1; month <= 12; ++month) {
      const Date d = Date::ymd(year, month, 1);
      EXPECT_GT(d, prev);
      prev = d;
    }
  }
}

}  // namespace
}  // namespace rs::util
