#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace rs::util {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyFields) {
  EXPECT_EQ(split(",,", ',').size(), 3u);
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("a,", ',').back(), "");
}

TEST(SplitLines, HandlesLfAndCrlf) {
  const auto lines = split_lines("one\r\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(SplitLines, TrailingNewlineDoesNotAddLine) {
  EXPECT_EQ(split_lines("a\nb\n").size(), 2u);
  EXPECT_EQ(split_lines("\n").size(), 1u);
  EXPECT_EQ(split_lines("").size(), 0u);
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx"), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(SplitWs, NeverYieldsEmpty) {
  const auto t = split_ws("  a \t b\n c  ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("certdata.txt", "certdata"));
  EXPECT_FALSE(starts_with("cert", "certdata"));
  EXPECT_TRUE(ends_with("authroot.stl", ".stl"));
  EXPECT_FALSE(ends_with(".stl", "authroot.stl"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Case, LowerAndIequals) {
  EXPECT_EQ(to_lower("CKA_CLASS"), "cka_class");
  EXPECT_TRUE(iequals("TRUE", "true"));
  EXPECT_FALSE(iequals("TRUE", "TRU"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(IContains, FindsSubstringsCaseInsensitively) {
  EXPECT_TRUE(icontains("Chrome Mobile WebView", "webview"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("abc", "abcd"));
  EXPECT_TRUE(icontains("SAMSUNG internet", "Samsung Internet"));
  EXPECT_FALSE(icontains("Samsung", "Samsung Internet"));
}

}  // namespace
}  // namespace rs::util
