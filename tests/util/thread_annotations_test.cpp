// Runtime semantics of the annotated sync wrappers (src/util/mutex.h).
//
// The compile-time half of this contract lives in
// tests/util/negative_compile/guarded_lookup.cpp: under clang, a guarded
// field access without the MutexLock must FAIL to build (asserted by a
// configure-time try_compile in tests/CMakeLists.txt).  This suite pins the
// runtime half — mutual exclusion, try_lock, condvar wakeups, RAII scope —
// and runs under the `tsan` ctest label so ThreadSanitizer watches the
// wrappers themselves.

#include "src/util/mutex.h"

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_annotations.h"

namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  rs::util::Mutex mutex;
  long counter = 0;  // guarded by `mutex` by convention of this test
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const rs::util::MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  rs::util::Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Same-thread re-try must fail on a non-recursive mutex; probe from
  // another thread to keep the behavior well-defined.
  bool second = true;
  std::thread probe([&] { second = mutex.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mutex.unlock();

  std::thread retaker([&] {
    if (mutex.try_lock()) mutex.unlock();
  });
  retaker.join();
}

TEST(MutexTest, MutexLockReleasesAtScopeExit) {
  rs::util::Mutex mutex;
  {
    const rs::util::MutexLock lock(mutex);
  }
  // Released: another thread can take it immediately.
  bool acquired = false;
  std::thread probe([&] {
    acquired = mutex.try_lock();
    if (acquired) mutex.unlock();
  });
  probe.join();
  EXPECT_TRUE(acquired);
}

// One guarded slot moved producer -> consumer through CondVar wakeups, the
// exact shape every wait loop in the tree uses (pool queue, server drain).
struct HandoffState {
  rs::util::Mutex mutex;
  rs::util::CondVar ready;
  rs::util::CondVar consumed;
  int value RS_GUARDED_BY(mutex) = 0;
  bool has_value RS_GUARDED_BY(mutex) = false;
  bool done RS_GUARDED_BY(mutex) = false;
};

TEST(CondVarTest, HandoffLoopDeliversEveryValueInOrder) {
  HandoffState state;
  constexpr int kValues = 500;
  std::vector<int> received;

  std::thread consumer([&] {
    for (;;) {
      int value = 0;
      {
        rs::util::MutexLock lock(state.mutex);
        while (!state.has_value && !state.done) state.ready.wait(state.mutex);
        if (!state.has_value && state.done) return;
        value = state.value;
        state.has_value = false;
      }
      state.consumed.notify_one();
      received.push_back(value);
    }
  });

  for (int i = 1; i <= kValues; ++i) {
    {
      rs::util::MutexLock lock(state.mutex);
      while (state.has_value) state.consumed.wait(state.mutex);
      state.value = i;
      state.has_value = true;
    }
    state.ready.notify_one();
  }
  {
    rs::util::MutexLock lock(state.mutex);
    while (state.has_value) state.consumed.wait(state.mutex);
    state.done = true;
  }
  state.ready.notify_one();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kValues));
  for (int i = 0; i < kValues; ++i) EXPECT_EQ(received[i], i + 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  rs::util::Mutex mutex;
  rs::util::CondVar go;
  bool released = false;  // guarded by `mutex` (locals can't carry the attr)
  int awake = 0;

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      rs::util::MutexLock lock(mutex);
      while (!released) go.wait(mutex);
      ++awake;
    });
  }
  {
    const rs::util::MutexLock lock(mutex);
    released = true;
  }
  go.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
