#include "src/analysis/exclusive.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Excl Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(const std::string& provider, Date date,
              std::initializer_list<int> tls_ids,
              std::initializer_list<int> email_ids = {}) {
  Snapshot s;
  s.provider = provider;
  s.date = date;
  for (int id : tls_ids) {
    s.entries.push_back(
        rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id))));
  }
  for (int id : email_ids) {
    s.entries.push_back(rs::store::make_anchor_for(
        make_cert(static_cast<std::uint64_t>(id)),
        {rs::store::TrustPurpose::kEmailProtection}));
  }
  return s;
}

TEST(Exclusive, BasicExclusivity) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2020, 1, 1), {1, 2}));
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2020, 1, 1), {1, 3}));
  db.add(std::move(b));

  const auto result = exclusive_roots(db, {"A", "B"});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].program, "A");
  EXPECT_EQ(result[0].roots.size(), 1u);  // root 2
  EXPECT_EQ(result[1].roots.size(), 1u);  // root 3
}

TEST(Exclusive, HistoricalTrustElsewhereKillsExclusivity) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2020, 1, 1), {1}));
  db.add(std::move(a));
  // B trusted root 1 in 2018 but dropped it: still not exclusive to A.
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2018, 1, 1), {1}));
  b.add(snap("B", Date::ymd(2020, 1, 1), {2}));
  db.add(std::move(b));

  const auto result = exclusive_roots(db, {"A", "B"});
  EXPECT_TRUE(result[0].roots.empty());     // A's root 1 was ever-B
  EXPECT_EQ(result[1].roots.size(), 1u);    // B's root 2 is exclusive
}

TEST(Exclusive, EmailTrustElsewhereDoesNotKillTlsExclusivity) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2020, 1, 1), {1}));
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2020, 1, 1), {}, {1}));  // email trust only
  db.add(std::move(b));

  const auto result = exclusive_roots(db, {"A", "B"});
  EXPECT_EQ(result[0].roots.size(), 1u);
}

TEST(Exclusive, OnlyLatestSnapshotCounts) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2019, 1, 1), {1, 5}));
  a.add(snap("A", Date::ymd(2020, 1, 1), {1}));  // 5 removed
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2020, 1, 1), {1}));
  db.add(std::move(b));

  const auto result = exclusive_roots(db, {"A", "B"});
  // Root 5 would be exclusive, but it is gone from the latest snapshot.
  EXPECT_TRUE(result[0].roots.empty());
}

TEST(Exclusive, MissingProvidersSkipped) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2020, 1, 1), {1}));
  db.add(std::move(a));
  const auto result = exclusive_roots(db, {"A", "Ghost"});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].program, "A");
}

}  // namespace
}  // namespace rs::analysis
