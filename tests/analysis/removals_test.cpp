#include "src/analysis/removals.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/synth/paper_scenario.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(
    std::uint64_t seed, Date not_after = Date::ymd(2030, 1, 1)) {
  rs::x509::Name n;
  n.add_common_name("Removal Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder()
          .subject(n)
          .key_seed(seed)
          .not_before(Date::ymd(2000, 1, 1))
          .not_after(not_after)
          .build());
}

Snapshot snap(Date date,
              std::vector<std::shared_ptr<const rs::x509::Certificate>> certs) {
  Snapshot s;
  s.provider = "P";
  s.date = date;
  for (auto& c : certs) s.entries.push_back(rs::store::make_tls_anchor(c));
  return s;
}

TEST(MeasuredRemovals, DetectsPermanentDisappearance) {
  auto keeper = make_cert(1);
  auto removed = make_cert(2);
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2019, 1, 1), {keeper, removed}));
  h.add(snap(Date::ymd(2019, 6, 1), {keeper, removed}));
  h.add(snap(Date::ymd(2020, 1, 1), {keeper}));
  const auto removals = measured_removals(h);
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].root, removed->sha256());
  EXPECT_EQ(removals[0].date, Date::ymd(2020, 1, 1));
  EXPECT_FALSE(removals[0].expired_at_removal);
}

TEST(MeasuredRemovals, ReAddedRootsNotCounted) {
  auto flapper = make_cert(3);
  auto keeper = make_cert(4);
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2019, 1, 1), {keeper, flapper}));
  h.add(snap(Date::ymd(2019, 6, 1), {keeper}));           // gone...
  h.add(snap(Date::ymd(2020, 1, 1), {keeper, flapper}));  // ...and back
  EXPECT_TRUE(measured_removals(h).empty());
}

TEST(MeasuredRemovals, ExpiredFlag) {
  auto expired = make_cert(5, Date::ymd(2019, 3, 1));
  auto keeper = make_cert(6);
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2019, 1, 1), {keeper, expired}));
  h.add(snap(Date::ymd(2019, 6, 1), {keeper, expired}));  // now expired
  h.add(snap(Date::ymd(2020, 1, 1), {keeper}));
  const auto removals = measured_removals(h);
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_TRUE(removals[0].expired_at_removal);
}

TEST(MeasuredRemovals, DegenerateHistories) {
  EXPECT_TRUE(measured_removals(ProviderHistory("P")).empty());
  ProviderHistory one("P");
  one.add(snap(Date::ymd(2020, 1, 1), {make_cert(7)}));
  EXPECT_TRUE(measured_removals(one).empty());
}

TEST(ReportAudit, CountsCoverageAndGaps) {
  auto a = make_cert(10);
  auto b = make_cert(11, Date::ymd(2018, 1, 1));
  std::vector<MeasuredRemoval> measured = {
      {a->sha256(), Date::ymd(2019, 1, 1), false},
      {b->sha256(), Date::ymd(2019, 1, 1), true},
  };
  auto ghost = make_cert(12);
  const auto audit = audit_removal_report(
      measured, {a->sha256(), ghost->sha256()});
  EXPECT_EQ(audit.measured, 2u);
  EXPECT_EQ(audit.reported, 2u);
  EXPECT_EQ(audit.covered, 1u);
  EXPECT_EQ(audit.missing, 1u);
  EXPECT_EQ(audit.missing_expired, 1u);
  EXPECT_EQ(audit.unmatched_report_entries, 1u);
}

TEST(ReportAudit, PaperScenarioReportIsIncomplete) {
  // §5.3's side-finding: the incident report covers only the tracked
  // removals; expiry- and purge-driven removals are invisible to it.
  auto scenario = rs::synth::build_paper_scenario();
  const auto measured =
      measured_removals(*scenario.database().find("NSS"));
  std::vector<rs::crypto::Sha256Digest> reported;
  for (const auto& inc : scenario.incidents()) {
    for (const auto& id : inc.root_ids) {
      if (auto cert = scenario.factory().find(id)) {
        reported.push_back(cert->sha256());
      }
    }
  }
  const auto audit = audit_removal_report(measured, reported);
  EXPECT_GT(audit.measured, 50u);
  EXPECT_GT(audit.covered, 20u);
  EXPECT_GT(audit.missing, 30u);           // the paper found 92
  EXPECT_GT(audit.missing_expired, 10u);   // "mostly expirations"
}

}  // namespace
}  // namespace rs::analysis
