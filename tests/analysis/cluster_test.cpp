#include "src/analysis/cluster.h"

#include <gtest/gtest.h>

namespace rs::analysis {
namespace {

DistanceMatrix matrix_from(const std::vector<std::vector<double>>& rows) {
  DistanceMatrix m;
  const std::size_t n = rows.size();
  m.labels.resize(n);
  m.values.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m.values[i * n + j] = rows[i][j];
  }
  return m;
}

TEST(Cluster, TwoObviousClusters) {
  const auto m = matrix_from({
      {0.0, 0.1, 0.9, 0.9},
      {0.1, 0.0, 0.9, 0.9},
      {0.9, 0.9, 0.0, 0.1},
      {0.9, 0.9, 0.1, 0.0},
  });
  const auto c = cluster_snapshots(m, 0.5);
  EXPECT_EQ(c.cluster_count, 2u);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[2], c.assignment[3]);
  EXPECT_NE(c.assignment[0], c.assignment[2]);
}

TEST(Cluster, SingleLinkageChains) {
  // 0-1 close, 1-2 close, 0-2 far: single linkage still merges all three.
  const auto m = matrix_from({
      {0.0, 0.2, 0.8},
      {0.2, 0.0, 0.2},
      {0.8, 0.2, 0.0},
  });
  const auto c = cluster_snapshots(m, 0.3);
  EXPECT_EQ(c.cluster_count, 1u);
}

TEST(Cluster, CutoffBoundaryIsExclusive) {
  const auto m = matrix_from({{0.0, 0.5}, {0.5, 0.0}});
  EXPECT_EQ(cluster_snapshots(m, 0.5).cluster_count, 2u);   // d < cutoff fails
  EXPECT_EQ(cluster_snapshots(m, 0.51).cluster_count, 1u);
}

TEST(Cluster, EmptyAndSingleton) {
  EXPECT_EQ(cluster_snapshots(matrix_from({}), 0.5).cluster_count, 0u);
  EXPECT_EQ(cluster_snapshots(matrix_from({{0.0}}), 0.5).cluster_count, 1u);
}

TEST(Cluster, MembersPartitionRows) {
  const auto m = matrix_from({
      {0.0, 0.1, 0.9},
      {0.1, 0.0, 0.9},
      {0.9, 0.9, 0.0},
  });
  const auto c = cluster_snapshots(m, 0.5);
  const auto members = cluster_members(c);
  std::size_t total = 0;
  for (const auto& cluster : members) total += cluster.size();
  EXPECT_EQ(total, 3u);
}

TEST(CompleteLinkage, DoesNotChain) {
  // 0-1 close, 1-2 close, 0-2 far: complete linkage must NOT merge all
  // three (contrast with SingleLinkageChains above).
  const auto m = matrix_from({
      {0.0, 0.2, 0.8},
      {0.2, 0.0, 0.2},
      {0.8, 0.2, 0.0},
  });
  const auto c = cluster_snapshots_complete(m, 0.3);
  EXPECT_EQ(c.cluster_count, 2u);
}

TEST(CompleteLinkage, MergesTightClusters) {
  const auto m = matrix_from({
      {0.0, 0.1, 0.9, 0.9},
      {0.1, 0.0, 0.9, 0.9},
      {0.9, 0.9, 0.0, 0.1},
      {0.9, 0.9, 0.1, 0.0},
  });
  const auto c = cluster_snapshots_complete(m, 0.5);
  EXPECT_EQ(c.cluster_count, 2u);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_NE(c.assignment[0], c.assignment[2]);
}

TEST(CompleteLinkage, EmptyMatrix) {
  EXPECT_EQ(cluster_snapshots_complete(matrix_from({}), 0.5).cluster_count, 0u);
}

TEST(Silhouette, PerfectSeparationScoresHigh) {
  const auto m = matrix_from({
      {0.0, 0.05, 0.9, 0.9},
      {0.05, 0.0, 0.9, 0.9},
      {0.9, 0.9, 0.0, 0.05},
      {0.9, 0.9, 0.05, 0.0},
  });
  const auto c = cluster_snapshots(m, 0.5);
  EXPECT_GT(silhouette_score(m, c), 0.9);
}

TEST(Silhouette, BadClusteringScoresLow) {
  const auto m = matrix_from({
      {0.0, 0.05, 0.9, 0.9},
      {0.05, 0.0, 0.9, 0.9},
      {0.9, 0.9, 0.0, 0.05},
      {0.9, 0.9, 0.05, 0.0},
  });
  // Deliberately wrong assignment: split each tight pair across clusters.
  Clustering bad;
  bad.assignment = {0, 1, 0, 1};
  bad.cluster_count = 2;
  EXPECT_LT(silhouette_score(m, bad), 0.0);
}

TEST(Silhouette, DegenerateCasesAreZero) {
  const auto m = matrix_from({{0.0, 0.5}, {0.5, 0.0}});
  Clustering one;
  one.assignment = {0, 0};
  one.cluster_count = 1;
  EXPECT_EQ(silhouette_score(m, one), 0.0);
  EXPECT_EQ(silhouette_score(matrix_from({}), Clustering{}), 0.0);
}

TEST(ClusterQuality, PurityComputation) {
  Clustering c;
  c.assignment = {0, 0, 0, 1, 1};
  c.cluster_count = 2;
  const std::vector<std::string> labels = {"a", "a", "b", "c", "c"};
  const auto q = cluster_quality(c, labels);
  ASSERT_EQ(q.purity.size(), 2u);
  EXPECT_EQ(q.majority_label[0], "a");
  EXPECT_NEAR(q.purity[0], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(q.majority_label[1], "c");
  EXPECT_DOUBLE_EQ(q.purity[1], 1.0);
  EXPECT_NEAR(q.overall_purity, 4.0 / 5.0, 1e-12);
}

}  // namespace
}  // namespace rs::analysis
