#include "src/analysis/churn.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Churn Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(Date date, std::initializer_list<int> ids) {
  Snapshot s;
  s.provider = "P";
  s.date = date;
  for (int id : ids) {
    s.entries.push_back(
        rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id))));
  }
  return s;
}

TEST(Churn, FirstSnapshotHasZeroChange) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1, 2, 3}));
  const auto series = churn_series(h);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].total_change(), 0u);
  EXPECT_EQ(series.points[0].change_fraction, 0.0);
}

TEST(Churn, AddsAndRemovesCounted) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1, 2, 3}));
  h.add(snap(Date::ymd(2020, 2, 1), {2, 3, 4, 5}));
  const auto series = churn_series(h);
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[1].added, 2u);    // 4, 5
  EXPECT_EQ(series.points[1].removed, 1u);  // 1
  // union = {1..5} = 5; change = 3/5.
  EXPECT_DOUBLE_EQ(series.points[1].change_fraction, 0.6);
}

TEST(Churn, UnchangedSnapshotsAreZero) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1, 2}));
  h.add(snap(Date::ymd(2020, 2, 1), {1, 2}));
  const auto series = churn_series(h);
  EXPECT_EQ(series.points[1].total_change(), 0u);
}

TEST(Churn, EmptyHistory) {
  const auto series = churn_series(ProviderHistory("P"));
  EXPECT_TRUE(series.points.empty());
  EXPECT_EQ(series.mean_change_fraction, 0.0);
}

TEST(ChurnOutliers, DetectsBurstAmongQuietSnapshots) {
  ProviderHistory h("P");
  // Mostly stable store of 30 roots with one massive batch change.
  std::vector<int> base;
  for (int i = 0; i < 30; ++i) base.push_back(i);
  auto make = [&](Date d, const std::vector<int>& ids) {
    Snapshot s;
    s.provider = "P";
    s.date = d;
    for (int id : ids) {
      s.entries.push_back(rs::store::make_tls_anchor(
          make_cert(static_cast<std::uint64_t>(id))));
    }
    return s;
  };
  Date d = Date::ymd(2015, 1, 1);
  for (int m = 0; m < 10; ++m) {
    auto ids = base;
    if (m >= 1) ids[29] = 100 + m;  // one root churns per snapshot
    if (m >= 6) {
      // The outlier at m == 6: replace 20 roots in one batch (the
      // "Apple Feb 2014" shape); later snapshots keep the new set.
      for (int k = 0; k < 20; ++k) ids[static_cast<std::size_t>(k)] = 200 + k;
    }
    h.add(make(d, ids));
    d = d.add_months(2);
  }
  const auto outliers = find_outliers({churn_series(h)}, 2.0, 8);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].provider, "P");
  EXPECT_EQ(outliers[0].point.date, Date::ymd(2016, 1, 1));  // m == 6
  EXPECT_GE(outliers[0].point.total_change(), 40u);
  EXPECT_GT(outliers[0].score, 2.0);
}

TEST(ChurnOutliers, MinChangeFiltersTinyStores) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1}));
  h.add(snap(Date::ymd(2020, 2, 1), {2}));  // 100% change but only 2 roots
  h.add(snap(Date::ymd(2020, 3, 1), {2}));
  h.add(snap(Date::ymd(2020, 4, 1), {2}));
  const auto outliers = find_outliers({churn_series(h)}, 1.0, 8);
  EXPECT_TRUE(outliers.empty());
}

TEST(ChurnOutliers, SortedByScore) {
  // Two providers, each with one outlier of different magnitude.
  auto history_with_burst = [&](const std::string& name, int burst,
                                std::uint64_t offset) {
    ProviderHistory h(name);
    Date d = Date::ymd(2016, 1, 1);
    for (int m = 0; m < 8; ++m) {
      std::initializer_list<int> dummy = {};
      (void)dummy;
      Snapshot s;
      s.provider = name;
      s.date = d;
      for (int i = 0; i < 30; ++i) {
        int id = i;
        if (m >= 4 && i < burst) id = 1000 + i;  // burst at snapshot 4
        s.entries.push_back(rs::store::make_tls_anchor(
            make_cert(offset + static_cast<std::uint64_t>(id))));
      }
      h.add(std::move(s));
      d = d.add_months(3);
    }
    return h;
  };
  const auto outliers = find_outliers(
      {churn_series(history_with_burst("Big", 25, 10000)),
       churn_series(history_with_burst("Small", 10, 20000))},
      1.5, 8);
  ASSERT_GE(outliers.size(), 2u);
  for (std::size_t i = 1; i < outliers.size(); ++i) {
    EXPECT_GE(outliers[i - 1].score, outliers[i].score);
  }
}

}  // namespace
}  // namespace rs::analysis
