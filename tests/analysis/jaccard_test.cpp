#include "src/analysis/jaccard.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::store::TrustEntry;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Jac Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(const std::string& provider, Date date,
              std::initializer_list<int> tls_ids,
              std::initializer_list<int> email_ids = {}) {
  Snapshot s;
  s.provider = provider;
  s.date = date;
  for (int id : tls_ids) {
    s.entries.push_back(
        rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id))));
  }
  for (int id : email_ids) {
    s.entries.push_back(rs::store::make_anchor_for(
        make_cert(static_cast<std::uint64_t>(id)),
        {rs::store::TrustPurpose::kEmailProtection}));
  }
  return s;
}

StoreDatabase two_provider_db() {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2019, 1, 1), {1, 2, 3}));
  a.add(snap("A", Date::ymd(2020, 1, 1), {1, 2, 3, 4}));
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2019, 6, 1), {3, 4, 5}));
  db.add(std::move(b));
  return db;
}

TEST(Jaccard, MatrixShapeAndSymmetry) {
  const auto dist = jaccard_matrix(two_provider_db());
  ASSERT_EQ(dist.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(dist.at(i, i), 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(dist.at(i, j), dist.at(j, i));
    }
  }
}

TEST(Jaccard, KnownDistances) {
  const auto dist = jaccard_matrix(two_provider_db());
  // Labels are in provider order (A snapshots first, then B).
  EXPECT_EQ(dist.labels[0].provider, "A");
  EXPECT_EQ(dist.labels[2].provider, "B");
  // A@2019 {1,2,3} vs A@2020 {1,2,3,4}: 1 - 3/4.
  EXPECT_NEAR(dist.at(0, 1), 0.25, 1e-12);
  // A@2019 {1,2,3} vs B {3,4,5}: 1 - 1/5.
  EXPECT_NEAR(dist.at(0, 2), 0.8, 1e-12);
}

TEST(Jaccard, DateWindowFilters) {
  JaccardOptions opts;
  opts.min_date = Date::ymd(2019, 3, 1);
  const auto dist = jaccard_matrix(two_provider_db(), opts);
  EXPECT_EQ(dist.size(), 2u);  // A@2019-01 excluded
  opts.max_date = Date::ymd(2019, 12, 1);
  const auto dist2 = jaccard_matrix(two_provider_db(), opts);
  EXPECT_EQ(dist2.size(), 1u);  // only B@2019-06
}

TEST(Jaccard, SetKindDistinguishesTrustAwareness) {
  StoreDatabase db;
  ProviderHistory a("A");
  a.add(snap("A", Date::ymd(2020, 1, 1), {1}, {9}));
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2020, 1, 1), {1}));
  db.add(std::move(b));

  JaccardOptions all;
  all.set_kind = SetKind::kAllCertificates;
  EXPECT_NEAR(jaccard_matrix(db, all).at(0, 1), 0.5, 1e-12);

  JaccardOptions tls;
  tls.set_kind = SetKind::kTlsAnchors;
  EXPECT_NEAR(jaccard_matrix(db, tls).at(0, 1), 0.0, 1e-12);
}

TEST(Jaccard, SubsamplingCapsPerProvider) {
  StoreDatabase db;
  ProviderHistory a("A");
  for (int m = 0; m < 24; ++m) {
    a.add(snap("A", Date::ymd(2018, 1, 1) + m * 30, {1, 2}));
  }
  db.add(std::move(a));
  JaccardOptions opts;
  opts.max_per_provider = 5;
  const auto dist = jaccard_matrix(db, opts);
  EXPECT_EQ(dist.size(), 5u);
  // Ends are kept.
  EXPECT_EQ(dist.labels.front().provider_index, 0u);
  EXPECT_EQ(dist.labels.back().provider_index, 23u);
}

// Regression: max_per_provider == 1 used to compute stride =
// (idx.size()-1) / (max_per_provider-1), dividing by zero; the inf stride
// then hit UB on the float->size_t cast.  A single slot now keeps the most
// recent in-window snapshot per provider.
TEST(Jaccard, SubsampleToSingleSnapshotKeepsNewest) {
  StoreDatabase db;
  ProviderHistory a("A");
  for (int m = 0; m < 12; ++m) {
    a.add(snap("A", Date::ymd(2018, 1, 1) + m * 30, {1, 2}));
  }
  db.add(std::move(a));
  ProviderHistory b("B");
  b.add(snap("B", Date::ymd(2019, 1, 1), {2, 3}));
  b.add(snap("B", Date::ymd(2019, 6, 1), {3, 4}));
  db.add(std::move(b));

  JaccardOptions opts;
  opts.max_per_provider = 1;
  for (const auto algebra : {SetAlgebra::kInterned, SetAlgebra::kSortedMerge}) {
    opts.algebra = algebra;
    const auto dist = jaccard_matrix(db, opts);
    ASSERT_EQ(dist.size(), 2u);  // one snapshot per provider
    EXPECT_EQ(dist.labels[0].provider, "A");
    EXPECT_EQ(dist.labels[0].provider_index, 11u);  // newest of A's 12
    EXPECT_EQ(dist.labels[1].provider, "B");
    EXPECT_EQ(dist.labels[1].provider_index, 1u);   // newest of B's 2
  }
}

// Both engines agree on a handcrafted matrix (the scenario-scale version
// lives in intern_equivalence_test.cpp).
TEST(Jaccard, MergeAndInternedEnginesMatch) {
  JaccardOptions merge_opts;
  merge_opts.algebra = SetAlgebra::kSortedMerge;
  const auto merge = jaccard_matrix(two_provider_db(), merge_opts);
  const auto interned = jaccard_matrix(two_provider_db());  // default engine
  ASSERT_EQ(interned.size(), merge.size());
  EXPECT_TRUE(interned.values == merge.values);
}

TEST(Jaccard, EmptyDatabase) {
  const auto dist = jaccard_matrix(StoreDatabase{});
  EXPECT_EQ(dist.size(), 0u);
  EXPECT_TRUE(dist.values.empty());
}

// Regression: DistanceMatrix::at used to index `values` unchecked, so an
// out-of-range row/column silently read adjacent memory (or past the end).
// It now carries a debug bounds assert; tests build with assertions enabled
// (-UNDEBUG), so the violation must abort.
TEST(JaccardDeathTest, AtOutOfRangeAssertsInDebug) {
#ifndef NDEBUG
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto dist = jaccard_matrix(two_provider_db());  // 3x3
  EXPECT_DEATH((void)dist.at(3, 0), "out of range");
  EXPECT_DEATH((void)dist.at(0, 3), "out of range");
  EXPECT_DEATH((void)dist.at(17, 17), "out of range");
#else
  GTEST_SKIP() << "assertions disabled (NDEBUG)";
#endif
}

}  // namespace
}  // namespace rs::analysis
