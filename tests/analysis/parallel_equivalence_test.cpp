// Serial-equivalence golden tests (the determinism contract of src/exec):
// on the curated paper scenario, the Jaccard matrix, SMACOF embedding, and
// every EcosystemStudy report must be byte-identical for any worker count.
// num_threads = 0 is the inline serial baseline; 1, 3, and 8 cover
// single-worker, non-power-of-two, and oversubscribed (8 > typical core
// count) configurations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/diffs.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/staleness.h"
#include "src/core/study.h"
#include "src/exec/thread_pool.h"
#include "src/synth/paper_scenario.h"

namespace rs::analysis {
namespace {

const std::size_t kWorkerCounts[] = {1, 3, 8};

const rs::synth::PaperScenario& scenario() {
  static const rs::synth::PaperScenario s = rs::synth::build_paper_scenario();
  return s;
}

JaccardOptions figure1_options() {
  JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 20;
  return opts;
}

TEST(ParallelEquivalence, JaccardMatrixBitwiseIdentical) {
  const auto opts = figure1_options();
  const auto serial = jaccard_matrix(scenario().database(), opts);
  ASSERT_GT(serial.size(), 0u);
  for (std::size_t workers : kWorkerCounts) {
    rs::exec::ThreadPool pool(workers);
    const auto parallel = jaccard_matrix(scenario().database(), opts, &pool);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    EXPECT_TRUE(parallel.values == serial.values) << workers << " workers";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel.labels[i].provider, serial.labels[i].provider);
      EXPECT_EQ(parallel.labels[i].provider_index,
                serial.labels[i].provider_index);
    }
  }
}

TEST(ParallelEquivalence, SmacofMdsBitwiseIdentical) {
  const auto dist = jaccard_matrix(scenario().database(), figure1_options());
  const auto serial = smacof_mds(dist);
  for (std::size_t workers : kWorkerCounts) {
    rs::exec::ThreadPool pool(workers);
    const auto parallel = smacof_mds(dist, {}, &pool);
    EXPECT_EQ(parallel.iterations, serial.iterations) << workers << " workers";
    EXPECT_EQ(parallel.stress, serial.stress) << workers << " workers";
    EXPECT_EQ(parallel.normalized_stress, serial.normalized_stress)
        << workers << " workers";
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].x, serial.points[i].x) << "point " << i;
      EXPECT_EQ(parallel.points[i].y, serial.points[i].y) << "point " << i;
    }
  }
}

TEST(ParallelEquivalence, EmbeddingStressIdenticalForAnyPool) {
  const auto dist = jaccard_matrix(scenario().database(), figure1_options());
  const auto mds = smacof_mds(dist);
  const double serial = embedding_stress(dist, mds.points);
  for (std::size_t workers : kWorkerCounts) {
    rs::exec::ThreadPool pool(workers);
    EXPECT_EQ(embedding_stress(dist, mds.points, &pool), serial)
        << workers << " workers";
  }
}

TEST(ParallelEquivalence, StalenessAndDiffSeriesIdentical) {
  const auto& db = scenario().database();
  const auto* nss = db.find("NSS");
  ASSERT_NE(nss, nullptr);
  const auto index = build_version_index(*nss);
  for (const char* name : {"Alpine", "AmazonLinux", "Android", "NodeJS",
                           "Debian", "Ubuntu"}) {
    const auto* deriv = db.find(name);
    ASSERT_NE(deriv, nullptr) << name;
    const auto stale_serial = derivative_staleness(*deriv, index);
    const auto diffs_serial = derivative_diffs(*deriv, *nss, index);
    for (std::size_t workers : kWorkerCounts) {
      rs::exec::ThreadPool pool(workers);

      const auto stale = derivative_staleness(*deriv, index, &pool);
      EXPECT_EQ(stale.avg_versions_behind, stale_serial.avg_versions_behind)
          << name << " @ " << workers;
      EXPECT_EQ(stale.always_stale, stale_serial.always_stale) << name;
      ASSERT_EQ(stale.points.size(), stale_serial.points.size()) << name;
      for (std::size_t k = 0; k < stale.points.size(); ++k) {
        EXPECT_EQ(stale.points[k].matched_version,
                  stale_serial.points[k].matched_version);
        EXPECT_EQ(stale.points[k].versions_behind,
                  stale_serial.points[k].versions_behind);
      }

      const auto diffs = derivative_diffs(*deriv, *nss, index, &pool);
      EXPECT_EQ(diffs.ever_deviates, diffs_serial.ever_deviates) << name;
      ASSERT_EQ(diffs.points.size(), diffs_serial.points.size()) << name;
      for (std::size_t k = 0; k < diffs.points.size(); ++k) {
        EXPECT_EQ(diffs.points[k].adds, diffs_serial.points[k].adds);
        EXPECT_EQ(diffs.points[k].removes, diffs_serial.points[k].removes);
        EXPECT_EQ(diffs.points[k].matched_version,
                  diffs_serial.points[k].matched_version);
      }
    }
  }
}

// Every report rendered by the façade, as one blob per thread count.
std::string all_reports(rs::core::EcosystemStudy& study) {
  std::string out;
  out += study.report_table1();
  out += study.report_table2();
  out += study.report_table3();
  out += study.report_table4();
  out += study.report_table5();
  out += study.report_table6();
  out += study.report_table7();
  out += study.report_figure1(/*max_per_provider=*/12);
  out += study.report_figure2();
  out += study.report_figure3();
  out += study.report_figure4();
  return out;
}

TEST(ParallelEquivalence, AllStudyReportsByteIdentical) {
  rs::core::EcosystemStudy serial_study =
      rs::core::EcosystemStudy::from_paper_scenario();
  ASSERT_EQ(serial_study.pool(), nullptr);  // num_threads=0 => inline serial
  const std::string serial = all_reports(serial_study);

  for (std::size_t workers : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    rs::core::StudyOptions options;
    options.num_threads = workers;
    rs::core::EcosystemStudy study = rs::core::EcosystemStudy::from_paper_scenario(
        rs::synth::kPaperSeed, options);
    ASSERT_NE(study.pool(), nullptr);
    EXPECT_EQ(study.pool()->worker_count(), workers);
    const std::string parallel = all_reports(study);
    EXPECT_EQ(parallel, serial) << workers << " workers";
  }
}

}  // namespace
}  // namespace rs::analysis
