#include "src/analysis/incident_response.h"

#include <gtest/gtest.h>

#include "src/synth/program_model.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::synth::CertFactory;
using rs::synth::RootSpec;
using rs::util::Date;

RootSpec spec(const std::string& id) {
  RootSpec s;
  s.id = id;
  s.common_name = id;
  s.not_before = Date::ymd(2005, 1, 1);
  s.not_after = Date::ymd(2035, 1, 1);
  return s;
}

Snapshot snap(const std::string& provider, Date date,
              std::vector<std::shared_ptr<const rs::x509::Certificate>> certs) {
  Snapshot s;
  s.provider = provider;
  s.date = date;
  for (auto& c : certs) s.entries.push_back(rs::store::make_tls_anchor(c));
  return s;
}

TEST(IncidentResponse, MeasuresLagAndCounts) {
  CertFactory factory(1);
  auto bad = factory.get(spec("bad-root"));
  auto good = factory.get(spec("good-root"));

  rs::synth::Incident incident;
  incident.name = "TestIncident";
  incident.nss_removal = Date::ymd(2020, 1, 1);
  incident.root_ids = {"bad-root"};

  StoreDatabase db;
  {
    ProviderHistory nss("NSS");  // excluded from measurement
    nss.add(snap("NSS", Date::ymd(2019, 1, 1), {bad, good}));
    nss.add(snap("NSS", Date::ymd(2020, 1, 1), {good}));
    db.add(std::move(nss));
  }
  {
    ProviderHistory slow("Slow");
    slow.add(snap("Slow", Date::ymd(2019, 6, 1), {bad, good}));
    slow.add(snap("Slow", Date::ymd(2020, 4, 10), {bad, good}));
    slow.add(snap("Slow", Date::ymd(2020, 7, 1), {good}));
    db.add(std::move(slow));
  }
  {
    ProviderHistory never("Never");
    never.add(snap("Never", Date::ymd(2019, 6, 1), {good}));
    db.add(std::move(never));
  }
  {
    ProviderHistory still("Still");
    still.add(snap("Still", Date::ymd(2021, 1, 1), {bad, good}));
    db.add(std::move(still));
  }

  const auto m = measure_incident(db, incident, factory);
  EXPECT_EQ(m.incident, "TestIncident");
  ASSERT_EQ(m.responses.size(), 2u);  // "Never" carried 0, NSS excluded

  const auto* slow = &m.responses[0];
  const auto* still = &m.responses[1];
  if (slow->provider != "Slow") std::swap(slow, still);
  EXPECT_EQ(slow->provider, "Slow");
  EXPECT_EQ(slow->certs_carried, 1);
  ASSERT_TRUE(slow->trusted_until.has_value());
  EXPECT_EQ(*slow->trusted_until, Date::ymd(2020, 4, 10));
  ASSERT_TRUE(slow->lag_days.has_value());
  EXPECT_EQ(*slow->lag_days, 100);
  EXPECT_FALSE(slow->still_trusted);

  EXPECT_EQ(still->provider, "Still");
  EXPECT_TRUE(still->still_trusted);
  EXPECT_FALSE(still->lag_days.has_value());
}

TEST(IncidentResponse, MultiRootIncidentCountsDistinctRoots) {
  CertFactory factory(2);
  auto r1 = factory.get(spec("r1"));
  auto r2 = factory.get(spec("r2"));

  rs::synth::Incident incident;
  incident.name = "Multi";
  incident.nss_removal = Date::ymd(2020, 1, 1);
  incident.root_ids = {"r1", "r2"};

  StoreDatabase db;
  ProviderHistory p("P");
  p.add(snap("P", Date::ymd(2019, 1, 1), {r1}));
  p.add(snap("P", Date::ymd(2019, 6, 1), {r1, r2}));
  p.add(snap("P", Date::ymd(2020, 6, 1), {}));
  db.add(std::move(p));

  const auto m = measure_incident(db, incident, factory);
  ASSERT_EQ(m.responses.size(), 1u);
  EXPECT_EQ(m.responses[0].certs_carried, 2);
  EXPECT_EQ(*m.responses[0].trusted_until, Date::ymd(2019, 6, 1));
  EXPECT_EQ(*m.responses[0].lag_days, -214);  // negative: removed pre-NSS
}

TEST(IncidentResponse, UnknownRootIdsYieldNoResponses) {
  CertFactory factory(3);
  rs::synth::Incident incident;
  incident.name = "Ghost";
  incident.nss_removal = Date::ymd(2020, 1, 1);
  incident.root_ids = {"never-built"};
  StoreDatabase db;
  ProviderHistory p("P");
  p.add(snap("P", Date::ymd(2019, 1, 1), {}));
  db.add(std::move(p));
  const auto m = measure_incident(db, incident, factory);
  EXPECT_TRUE(m.responses.empty());
}

}  // namespace
}  // namespace rs::analysis
