#include "src/analysis/mds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rs::analysis {
namespace {

DistanceMatrix matrix_from(const std::vector<std::vector<double>>& rows) {
  DistanceMatrix m;
  const std::size_t n = rows.size();
  m.labels.resize(n);
  m.values.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m.values[i * n + j] = rows[i][j];
  }
  return m;
}

double dist2(const Point2& a, const Point2& b) {
  return std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y));
}

TEST(Mds, TrivialSizes) {
  EXPECT_TRUE(smacof_mds(matrix_from({})).points.empty());
  const auto one = smacof_mds(matrix_from({{0.0}}));
  EXPECT_EQ(one.points.size(), 1u);
}

TEST(Mds, RecoversEquilateralTriangle) {
  // Three points pairwise distance 1: embedding must reproduce distances.
  const auto m = matrix_from({{0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
  const auto r = smacof_mds(m);
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_NEAR(dist2(r.points[0], r.points[1]), 1.0, 1e-3);
  EXPECT_NEAR(dist2(r.points[0], r.points[2]), 1.0, 1e-3);
  EXPECT_NEAR(dist2(r.points[1], r.points[2]), 1.0, 1e-3);
  EXPECT_LT(r.normalized_stress, 1e-5);
}

TEST(Mds, RecoversLineGeometry) {
  // Colinear points 0, 1, 3 on a line.
  const auto m = matrix_from({{0, 1, 3}, {1, 0, 2}, {3, 2, 0}});
  const auto r = smacof_mds(m);
  EXPECT_NEAR(dist2(r.points[0], r.points[1]), 1.0, 1e-2);
  EXPECT_NEAR(dist2(r.points[1], r.points[2]), 2.0, 1e-2);
  EXPECT_NEAR(dist2(r.points[0], r.points[2]), 3.0, 1e-2);
}

TEST(Mds, SmacofNeverWorseThanClassicalInit) {
  // A noisy non-Euclidean matrix: SMACOF must reduce stress.
  std::vector<std::vector<double>> rows(6, std::vector<double>(6, 0.0));
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      const double d = 0.3 + 0.1 * static_cast<double>((i * 7 + j * 3) % 5);
      rows[i][j] = rows[j][i] = d;
    }
  }
  const auto m = matrix_from(rows);
  const auto classical = classical_mds(m);
  const auto smacof = smacof_mds(m);
  EXPECT_LE(smacof.stress, classical.stress + 1e-9);
}

TEST(Mds, SeparatedClustersStaySeparated) {
  // Two tight clusters far apart: embedded within-cluster distances must be
  // much smaller than between-cluster ones.
  std::vector<std::vector<double>> rows(6, std::vector<double>(6, 0.0));
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      const bool same = (i < 3) == (j < 3);
      rows[i][j] = same ? 0.05 : 1.0;
    }
  }
  const auto r = smacof_mds(matrix_from(rows));
  double max_within = 0, min_between = 1e9;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      const double d = dist2(r.points[i], r.points[j]);
      if ((i < 3) == (j < 3)) max_within = std::max(max_within, d);
      else min_between = std::min(min_between, d);
    }
  }
  EXPECT_LT(max_within * 4, min_between);
}

TEST(Mds, RandomInitConvergesToo) {
  const auto m = matrix_from({{0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
  MdsOptions opts;
  opts.random_init = true;
  opts.max_iterations = 500;
  const auto r = smacof_mds(m, opts);
  EXPECT_LT(r.normalized_stress, 1e-4);
}

TEST(Mds, StressIsDeterministic) {
  const auto m = matrix_from({{0, 0.4, 0.9}, {0.4, 0, 0.6}, {0.9, 0.6, 0}});
  const auto a = smacof_mds(m);
  const auto b = smacof_mds(m);
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Mds, EmbeddingStressAgreesWithReportedStress) {
  const auto m = matrix_from({{0, 0.4, 0.9}, {0.4, 0, 0.6}, {0.9, 0.6, 0}});
  const auto r = smacof_mds(m);
  EXPECT_NEAR(embedding_stress(m, r.points), r.stress, 1e-9);
}

}  // namespace
}  // namespace rs::analysis
