// Merge-vs-interned equivalence on the curated paper scenario: the dense-ID
// bitset engine must reproduce the legacy sorted-merge engine bit-for-bit —
// Jaccard matrices, closest-version matches, staleness series, diff series,
// and exclusive roots — for every interner universe (NSS-local or
// database-wide) and any worker count.  This is the contract that lets the
// hot paths switch representation without a caller-visible change; see
// docs/INTERNING.md.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/analysis/diffs.h"
#include "src/analysis/exclusive.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/staleness.h"
#include "src/exec/thread_pool.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"

namespace rs::analysis {
namespace {

const rs::synth::PaperScenario& scenario() {
  static const rs::synth::PaperScenario s = rs::synth::build_paper_scenario();
  return s;
}

std::shared_ptr<const rs::store::CertInterner> db_interner() {
  static const auto interner =
      std::make_shared<const rs::store::CertInterner>(
          rs::store::CertInterner::from_database(scenario().database()));
  return interner;
}

JaccardOptions figure1_options(SetAlgebra algebra) {
  JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 20;
  opts.algebra = algebra;
  return opts;
}

TEST(InternEquivalence, JaccardMatrixBitwiseIdentical) {
  const auto merge = jaccard_matrix(scenario().database(),
                                    figure1_options(SetAlgebra::kSortedMerge));
  ASSERT_GT(merge.size(), 0u);

  // Interned with its own locally built universe.
  const auto interned = jaccard_matrix(
      scenario().database(), figure1_options(SetAlgebra::kInterned));
  ASSERT_EQ(interned.size(), merge.size());
  EXPECT_TRUE(interned.values == merge.values);

  // Interned against the shared database-wide interner, serial and pooled.
  const auto shared = jaccard_matrix(scenario().database(),
                                     figure1_options(SetAlgebra::kInterned),
                                     nullptr, db_interner().get());
  EXPECT_TRUE(shared.values == merge.values);
  rs::exec::ThreadPool pool(3);
  const auto pooled = jaccard_matrix(scenario().database(),
                                     figure1_options(SetAlgebra::kInterned),
                                     &pool, db_interner().get());
  EXPECT_TRUE(pooled.values == merge.values);
}

TEST(InternEquivalence, JaccardTlsAnchorsKind) {
  auto merge_opts = figure1_options(SetAlgebra::kSortedMerge);
  merge_opts.set_kind = SetKind::kTlsAnchors;
  auto interned_opts = figure1_options(SetAlgebra::kInterned);
  interned_opts.set_kind = SetKind::kTlsAnchors;
  const auto merge = jaccard_matrix(scenario().database(), merge_opts);
  const auto interned = jaccard_matrix(scenario().database(), interned_opts,
                                       nullptr, db_interner().get());
  ASSERT_EQ(interned.size(), merge.size());
  EXPECT_TRUE(interned.values == merge.values);
}

TEST(InternEquivalence, ClosestMatchAgreesForEveryDerivativeSnapshot) {
  const auto* nss = scenario().database().find("NSS");
  ASSERT_NE(nss, nullptr);
  const auto interned_index = build_version_index(*nss);
  const auto shared_index = build_version_index(*nss, db_interner());
  const auto merge_index = build_version_index_merge(*nss);
  ASSERT_EQ(interned_index.size(), merge_index.size());
  ASSERT_NE(interned_index.interner(), nullptr);
  EXPECT_EQ(merge_index.interner(), nullptr);

  for (const char* name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = scenario().database().find(name);
    ASSERT_NE(h, nullptr) << name;
    for (const auto& snap : h->snapshots()) {
      const auto anchors = snap.tls_anchors();
      const auto* merge_match = merge_index.closest_match(anchors);
      const auto* interned_match = interned_index.closest_match(anchors);
      const auto* shared_match = shared_index.closest_match(anchors);
      const auto* cross_check = interned_index.closest_match_merge(anchors);
      ASSERT_NE(merge_match, nullptr);
      ASSERT_NE(interned_match, nullptr);
      EXPECT_EQ(interned_match->index, merge_match->index)
          << name << " @ " << snap.date.to_string();
      EXPECT_EQ(shared_match->index, merge_match->index)
          << name << " @ " << snap.date.to_string();
      EXPECT_EQ(cross_check->index, merge_match->index);
    }
  }
}

TEST(InternEquivalence, StalenessSeriesIdentical) {
  const auto* nss = scenario().database().find("NSS");
  ASSERT_NE(nss, nullptr);
  const auto interned_index = build_version_index(*nss, db_interner());
  const auto merge_index = build_version_index_merge(*nss);

  for (const char* name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = scenario().database().find(name);
    ASSERT_NE(h, nullptr) << name;
    const auto merge = derivative_staleness(*h, merge_index);
    const auto interned = derivative_staleness(*h, interned_index);
    ASSERT_EQ(interned.points.size(), merge.points.size()) << name;
    EXPECT_EQ(interned.avg_versions_behind, merge.avg_versions_behind) << name;
    EXPECT_EQ(interned.always_stale, merge.always_stale) << name;
    for (std::size_t i = 0; i < merge.points.size(); ++i) {
      EXPECT_EQ(interned.points[i].matched_version,
                merge.points[i].matched_version)
          << name << " point " << i;
      EXPECT_EQ(interned.points[i].versions_behind,
                merge.points[i].versions_behind)
          << name << " point " << i;
    }
  }
}

TEST(InternEquivalence, DiffSeriesIdentical) {
  const auto* nss = scenario().database().find("NSS");
  ASSERT_NE(nss, nullptr);
  const auto interned_index = build_version_index(*nss, db_interner());
  const auto merge_index = build_version_index_merge(*nss);

  rs::exec::ThreadPool pool(3);
  for (const char* name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = scenario().database().find(name);
    ASSERT_NE(h, nullptr) << name;
    const auto merge = derivative_diffs(*h, *nss, merge_index);
    const auto interned = derivative_diffs(*h, *nss, interned_index, &pool);
    ASSERT_EQ(interned.points.size(), merge.points.size()) << name;
    EXPECT_EQ(interned.ever_deviates, merge.ever_deviates) << name;
    for (std::size_t i = 0; i < merge.points.size(); ++i) {
      EXPECT_EQ(interned.points[i].matched_version,
                merge.points[i].matched_version)
          << name << " point " << i;
      EXPECT_EQ(interned.points[i].adds, merge.points[i].adds)
          << name << " point " << i;
      EXPECT_EQ(interned.points[i].removes, merge.points[i].removes)
          << name << " point " << i;
    }
  }
}

TEST(InternEquivalence, ExclusiveRootsIdentical) {
  const std::vector<std::string> programs = {"NSS", "Java", "Apple",
                                             "Microsoft"};
  const auto merge = exclusive_roots(scenario().database(), programs);
  const auto interned =
      exclusive_roots(scenario().database(), programs, db_interner().get());
  ASSERT_EQ(interned.size(), merge.size());
  for (std::size_t i = 0; i < merge.size(); ++i) {
    EXPECT_EQ(interned[i].program, merge[i].program);
    EXPECT_EQ(interned[i].roots, merge[i].roots) << merge[i].program;
  }
}

}  // namespace
}  // namespace rs::analysis
