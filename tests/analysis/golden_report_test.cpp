// Byte-exact golden regression for every report entry point, across
// thread counts and with instrumentation on/off.  The golden files under
// tests/golden/ are the serial reference output; regenerate them with
// tools/update_goldens.sh ONLY for intentional report changes, and review
// the diff.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/study.h"
#include "src/formats/dataset_io.h"
#include "src/obs/clock.h"
#include "src/obs/registry.h"
#include "src/synth/paper_scenario.h"

#ifndef ROOTSTORE_GOLDEN_DIR
#error "ROOTSTORE_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace {

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(ROOTSTORE_GOLDEN_DIR) + "/report_" + name + ".txt";
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with tools/update_goldens.sh)";
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

// Every report entry point, in a fixed order.
std::vector<std::pair<std::string, std::string>> all_reports(
    rs::core::EcosystemStudy& study) {
  return {
      {"table1", study.report_table1()},
      {"table2", study.report_table2()},
      {"table3", study.report_table3()},
      {"table4", study.report_table4()},
      {"table5", study.report_table5()},
      {"table6", study.report_table6()},
      {"table7", study.report_table7()},
      {"fig1", study.report_figure1()},
      {"fig2", study.report_figure2()},
      {"fig3", study.report_figure3()},
      {"fig4", study.report_figure4()},
      {"agreement", study.report_agreement()},
      {"exclusivity", study.report_exclusivity()},
      {"ct_landscape", study.report_ct_landscape()},
  };
}

void expect_all_match_goldens(std::size_t threads) {
  rs::core::StudyOptions options;
  options.num_threads = threads;
  auto study = rs::core::EcosystemStudy::from_paper_scenario(
      rs::synth::kPaperSeed, options);
  for (const auto& [name, actual] : all_reports(study)) {
    const std::string golden = read_golden(name);
    ASSERT_FALSE(golden.empty()) << name;
    EXPECT_EQ(actual, golden)
        << "report '" << name << "' deviates from tests/golden/report_"
        << name << ".txt at --threads " << threads;
  }
}

TEST(GoldenReport, SerialMatchesGoldens) { expect_all_match_goldens(0); }

TEST(GoldenReport, ThreadedMatchesGoldens) { expect_all_match_goldens(3); }

// Enabling the observability layer must not change a single report byte:
// instrumentation reads the pipeline, never feeds it.
TEST(GoldenReport, InstrumentationDoesNotChangeBytes) {
  auto& reg = rs::obs::Registry::global();
  rs::obs::FakeClock clock(0, 50);
  reg.reset();
  reg.enable(&clock);

  rs::core::StudyOptions options;
  options.num_threads = 3;
  auto study = rs::core::EcosystemStudy::from_paper_scenario(
      rs::synth::kPaperSeed, options);
  const auto reports = all_reports(study);

  reg.disable();
  for (const auto& [name, actual] : reports) {
    EXPECT_EQ(actual, read_golden(name))
        << "report '" << name << "' changed with tracing enabled";
  }
  // The run really was traced: spans exist for the study build and every
  // report stage.
  const auto stats = reg.stage_stats();
  EXPECT_GT(stats.count("study/build"), 0u);
  for (const char* stage :
       {"report/table1", "report/table2", "report/table3", "report/table4",
        "report/table5", "report/table6", "report/table7", "report/fig1",
        "report/fig2", "report/fig3", "report/fig4", "report/agreement",
        "report/exclusivity", "report/ct_landscape"}) {
    EXPECT_EQ(stats.count(stage), 1u) << "missing span for " << stage;
  }
  reg.reset();
}

// The paper's pipeline decodes stored snapshots before analyzing them.
// `rootstore report --from <dir>` reproduces that shape: write the dataset
// to disk, reload it through the real format decoders (RSTS is
// full-fidelity), analyze the decoded database — and the reports must
// still be the golden bytes.  The trace must show the decode stage.
TEST(GoldenReport, DecodedDatasetMatchesGoldens) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rootstore_golden_dataset_test";
  fs::remove_all(dir);

  auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  auto written = rs::formats::write_dataset(scenario.database(), dir.string());
  ASSERT_TRUE(written.ok()) << written.error();

  auto& reg = rs::obs::Registry::global();
  rs::obs::FakeClock clock(0, 50);
  reg.reset();
  reg.enable(&clock);

  auto loaded = rs::formats::load_dataset(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  scenario.replace_database(std::move(loaded.value()));

  rs::core::StudyOptions options;
  options.num_threads = 0;
  rs::core::EcosystemStudy study(std::move(scenario), options);
  const auto reports = all_reports(study);

  reg.disable();
  fs::remove_all(dir);
  for (const auto& [name, actual] : reports) {
    EXPECT_EQ(actual, read_golden(name))
        << "report '" << name << "' changed when the database was decoded "
        << "from disk instead of built in memory";
  }
  // The decode genuinely happened through the format layer: one RSTS
  // parser span per snapshot, under the dataset-load stage.
  const auto stats = reg.stage_stats();
  ASSERT_EQ(stats.count("formats/dataset"), 1u);
  ASSERT_EQ(stats.count("formats/rsts"), 1u);
  EXPECT_EQ(stats.at("formats/rsts").count,
            study.scenario().database().total_snapshots());
  reg.reset();
}

}  // namespace
