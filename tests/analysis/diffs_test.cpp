#include "src/analysis/diffs.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::TrustEntry;
using rs::store::TrustPurpose;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Diff Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TrustEntry tls(int id) {
  return rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id)));
}
TrustEntry email_only(int id) {
  return rs::store::make_anchor_for(make_cert(static_cast<std::uint64_t>(id)),
                                    {TrustPurpose::kEmailProtection});
}

Snapshot snap(const std::string& provider, Date date,
              std::vector<TrustEntry> entries) {
  Snapshot s;
  s.provider = provider;
  s.date = date;
  s.entries = std::move(entries);
  return s;
}

/// NSS: v1 {1,2 tls; 9 email-only}, v2 {1 tls (2 removed), 9 email}, where
/// root 1 gains a partial-distrust cutoff in v2.
ProviderHistory make_nss() {
  ProviderHistory nss("NSS");
  nss.add(snap("NSS", Date::ymd(2020, 1, 1), {tls(1), tls(2), email_only(9)}));
  TrustEntry partial = tls(1);
  partial.trust_for(TrustPurpose::kServerAuth).distrust_after =
      Date::ymd(2020, 6, 1);
  nss.add(snap("NSS", Date::ymd(2020, 7, 1), {partial, email_only(9)}));
  return nss;
}

TEST(Diffs, CleanCopyHasNoDeviation) {
  const auto nss = make_nss();
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  d.add(snap("D", Date::ymd(2020, 2, 1), {tls(1), tls(2)}));
  const auto series = derivative_diffs(d, nss, index);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].added_total(), 0u);
  EXPECT_EQ(series.points[0].removed_total(), 0u);
  EXPECT_FALSE(series.ever_deviates);
}

TEST(Diffs, NonNssRootCategorized) {
  const auto nss = make_nss();
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  d.add(snap("D", Date::ymd(2020, 2, 1), {tls(1), tls(2), tls(77)}));
  const auto series = derivative_diffs(d, nss, index);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0]
                .adds[static_cast<std::size_t>(AddCategory::kNonNssRoot)],
            1u);
  EXPECT_TRUE(series.ever_deviates);
}

TEST(Diffs, EmailOnlyRootCategorized) {
  const auto nss = make_nss();
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  // Derivative TLS-trusts NSS's email-only root 9 (conflation).
  d.add(snap("D", Date::ymd(2020, 2, 1), {tls(1), tls(2), tls(9)}));
  const auto series = derivative_diffs(d, nss, index);
  EXPECT_EQ(series.points[0]
                .adds[static_cast<std::size_t>(AddCategory::kEmailOnlyRoot)],
            1u);
}

TEST(Diffs, ReAddedRootCategorized) {
  const auto nss = make_nss();
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  // Root 2 was dropped by NSS v2; the derivative matching v2 still ships it.
  d.add(snap("D", Date::ymd(2020, 8, 1), {tls(1), tls(2), tls(88), tls(89)}));
  const auto series = derivative_diffs(d, nss, index);
  // Closest match: v2 {1} (distance to {1,2,88,89} = 3/4) vs v1 {1,2}
  // (distance = 1/2) -> v1.  Against v1, adds are 88/89 (non-NSS).
  EXPECT_EQ(series.points[0].matched_version, 1u);
  EXPECT_EQ(series.points[0]
                .adds[static_cast<std::size_t>(AddCategory::kNonNssRoot)],
            2u);

  ProviderHistory d2("D2");
  // Closer to v2: only root2 extra.
  d2.add(snap("D2", Date::ymd(2020, 8, 1), {tls(1), tls(2)}));
  const auto series2 = derivative_diffs(d2, nss, index);
  // {1,2}: d(v1)=0, so matches v1 exactly; use a set matching v2 plus 2:
  ProviderHistory d3("D3");
  d3.add(snap("D3", Date::ymd(2020, 8, 1), {tls(1)}));
  const auto series3 = derivative_diffs(d3, nss, index);
  EXPECT_EQ(series3.points[0].matched_version, 2u);
  EXPECT_EQ(series3.points[0].added_total(), 0u);
  (void)series2;
}

TEST(Diffs, PartialDistrustFalloutOnRemoval) {
  const auto nss = make_nss();
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  // Derivative matching v2 but *without* the partially-distrusted root 1:
  // classic Debian-style premature removal.  Add roots 2.. so v2 is closer?
  // v2 = {1}. Derivative = {} -> matches v2? distance({} , {1}) = 1,
  // distance({}, {1,2}) = 1; ties keep earlier => v1. Make derivative {2}:
  // d(v1 {1,2}) = 0.5, d(v2 {1}) = 1.0 -> v1; removal of 1 vs v1 has no
  // cutoff... Use derivative {1,2} against nss where v2 = {1 partial, 2}:
  ProviderHistory nss2("NSS");
  nss2.add(snap("NSS", Date::ymd(2020, 1, 1), {tls(1), tls(2)}));
  TrustEntry partial = tls(1);
  partial.trust_for(TrustPurpose::kServerAuth).distrust_after =
      Date::ymd(2020, 6, 1);
  nss2.add(snap("NSS", Date::ymd(2020, 7, 1), {partial, tls(2), tls(3)}));
  const auto index2 = build_version_index(nss2);
  ProviderHistory d2("D");
  // Matches v2 {1,2,3} (distance 1/3) better than v1 {1,2} (distance 1/2)?
  // derivative {2,3}: d(v2) = 1 - 2/3 = 0.33, d(v1) = 1 - 1/3 = 0.67 -> v2.
  d2.add(snap("D", Date::ymd(2020, 8, 1), {tls(2), tls(3)}));
  const auto series = derivative_diffs(d2, nss2, index2);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].matched_version, 2u);
  EXPECT_EQ(series.points[0].removes[static_cast<std::size_t>(
                RemoveCategory::kPartialDistrustFallout)],
            1u);
  EXPECT_EQ(series.points[0].removes[static_cast<std::size_t>(
                RemoveCategory::kCustomRemoval)],
            0u);
}

TEST(Diffs, CustomRemovalCategorized) {
  // NSS v1 = {1,2,3}, v2 = {1}.  Derivative {1,3}: distance to v1 is 1/3,
  // to v2 is 1/2 -> matches v1; the missing root 2 carries no cutoff in v1,
  // so its absence is a custom removal.
  ProviderHistory nss("NSS");
  nss.add(snap("NSS", Date::ymd(2020, 1, 1), {tls(1), tls(2), tls(3)}));
  nss.add(snap("NSS", Date::ymd(2020, 7, 1), {tls(1)}));
  const auto index = build_version_index(nss);
  ProviderHistory d("D");
  d.add(snap("D", Date::ymd(2020, 2, 1), {tls(1), tls(3)}));
  const auto series = derivative_diffs(d, nss, index);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].matched_version, 1u);
  EXPECT_EQ(series.points[0].removes[static_cast<std::size_t>(
                RemoveCategory::kCustomRemoval)],
            1u);
  EXPECT_EQ(series.points[0].removes[static_cast<std::size_t>(
                RemoveCategory::kPartialDistrustFallout)],
            0u);
}

TEST(Diffs, CategoryNames) {
  EXPECT_STREQ(to_string(AddCategory::kNonNssRoot), "non-NSS root");
  EXPECT_STREQ(to_string(AddCategory::kEmailOnlyRoot), "email-only root");
  EXPECT_STREQ(to_string(AddCategory::kReAddedRoot), "re-added root");
  EXPECT_STREQ(to_string(AddCategory::kOther), "other");
  EXPECT_STREQ(to_string(RemoveCategory::kPartialDistrustFallout),
               "partial-distrust fallout");
  EXPECT_STREQ(to_string(RemoveCategory::kCustomRemoval), "custom removal");
}

}  // namespace
}  // namespace rs::analysis
