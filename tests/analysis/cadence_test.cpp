#include "src/analysis/cadence.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/synth/paper_scenario.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Cadence Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(Date date, std::initializer_list<int> ids) {
  Snapshot s;
  s.provider = "P";
  s.date = date;
  for (int id : ids) {
    s.entries.push_back(
        rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id))));
  }
  return s;
}

TEST(Cadence, CountsSubstantialAndNoopUpdates) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1}));        // substantial (first)
  h.add(snap(Date::ymd(2020, 2, 1), {1}));        // no-op
  h.add(snap(Date::ymd(2020, 3, 1), {1, 2}));     // substantial
  h.add(snap(Date::ymd(2020, 4, 1), {1, 2}));     // no-op
  h.add(snap(Date::ymd(2020, 5, 1), {2}));        // substantial
  const auto c = update_cadence(h);
  EXPECT_EQ(c.snapshots, 5u);
  EXPECT_EQ(c.substantial_updates, 3u);
  EXPECT_EQ(c.noop_updates, 2u);
}

TEST(Cadence, IntervalStatistics) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1}));
  h.add(snap(Date::ymd(2020, 1, 11), {2}));   // +10 days
  h.add(snap(Date::ymd(2020, 1, 31), {3}));   // +20 days
  const auto c = update_cadence(h);
  EXPECT_DOUBLE_EQ(c.mean_interval_days, 15.0);
  EXPECT_DOUBLE_EQ(c.median_interval_days, 15.0);
  // Substantial intervals are measured between substantial updates.
  EXPECT_DOUBLE_EQ(c.mean_substantial_interval_days, 15.0);
}

TEST(Cadence, NoopsDoNotResetSubstantialIntervals) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2020, 1, 1), {1}));
  h.add(snap(Date::ymd(2020, 1, 10), {1}));   // no-op
  h.add(snap(Date::ymd(2020, 1, 21), {2}));   // substantial: 20 days later
  const auto c = update_cadence(h);
  EXPECT_DOUBLE_EQ(c.mean_substantial_interval_days, 20.0);
}

TEST(Cadence, PerYearRate) {
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2019, 1, 1), {1}));
  h.add(snap(Date::ymd(2019, 7, 1), {2}));
  h.add(snap(Date::ymd(2020, 1, 1), {3}));
  const auto c = update_cadence(h);
  EXPECT_NEAR(c.substantial_per_year, 3.0, 0.1);
}

TEST(Cadence, DegenerateHistories) {
  EXPECT_EQ(update_cadence(ProviderHistory("P")).snapshots, 0u);
  ProviderHistory one("P");
  one.add(snap(Date::ymd(2020, 1, 1), {1}));
  const auto c = update_cadence(one);
  EXPECT_EQ(c.snapshots, 1u);
  EXPECT_EQ(c.substantial_updates, 1u);
  EXPECT_EQ(c.mean_interval_days, 0.0);
}

TEST(Cadence, PaperScenarioNssUpdatesMostOften) {
  // §6.1: "NSS's relatively frequent updates" — no derivative should ship
  // substantial updates more often than NSS itself.
  auto scenario = rs::synth::build_paper_scenario();
  const auto nss = update_cadence(*scenario.database().find("NSS"));
  for (const char* name : {"Android", "AmazonLinux", "NodeJS"}) {
    const auto deriv = update_cadence(*scenario.database().find(name));
    EXPECT_LT(deriv.substantial_per_year, nss.substantial_per_year) << name;
  }
}

}  // namespace
}  // namespace rs::analysis
