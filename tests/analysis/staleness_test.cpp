#include "src/analysis/staleness.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Stale Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(const std::string& provider, Date date,
              std::initializer_list<int> tls_ids, std::string version = "") {
  Snapshot s;
  s.provider = provider;
  s.date = date;
  s.version = std::move(version);
  for (int id : tls_ids) {
    s.entries.push_back(
        rs::store::make_tls_anchor(make_cert(static_cast<std::uint64_t>(id))));
  }
  return s;
}

/// NSS fixture: v1 {1}, v2 {1,2}, v3 {1,2,3}; a no-change snapshot between
/// v2 and v3 must NOT become a substantial version.
ProviderHistory make_nss() {
  ProviderHistory nss("NSS");
  nss.add(snap("NSS", Date::ymd(2020, 1, 1), {1}, "a"));
  nss.add(snap("NSS", Date::ymd(2020, 2, 1), {1, 2}, "b"));
  nss.add(snap("NSS", Date::ymd(2020, 2, 15), {1, 2}, "b2"));  // no change
  nss.add(snap("NSS", Date::ymd(2020, 3, 1), {1, 2, 3}, "c"));
  return nss;
}

TEST(VersionIndex, SubstantialVersionsOnly) {
  const auto index = build_version_index(make_nss());
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.versions()[0].index, 1u);
  EXPECT_EQ(index.versions()[1].label, "b");
  EXPECT_EQ(index.versions()[2].date, Date::ymd(2020, 3, 1));
}

TEST(VersionIndex, CurrentAt) {
  const auto index = build_version_index(make_nss());
  EXPECT_EQ(index.current_at(Date::ymd(2019, 12, 1)), nullptr);
  EXPECT_EQ(index.current_at(Date::ymd(2020, 1, 15))->index, 1u);
  EXPECT_EQ(index.current_at(Date::ymd(2020, 2, 20))->index, 2u);
  EXPECT_EQ(index.current_at(Date::ymd(2021, 1, 1))->index, 3u);
}

TEST(VersionIndex, ClosestMatchPrefersExactThenEarlier) {
  const auto index = build_version_index(make_nss());
  const auto v2_set = snap("x", Date::ymd(2020, 6, 1), {1, 2}).tls_anchors();
  EXPECT_EQ(index.closest_match(v2_set)->index, 2u);
  // A set equidistant from v1 {1} and v2 {1,2}? {1,9}: d(v1)=1-1/2=0.5,
  // d(v2)=1-1/3=0.667 -> v1.
  const auto odd_set = snap("x", Date::ymd(2020, 6, 1), {1, 9}).tls_anchors();
  EXPECT_EQ(index.closest_match(odd_set)->index, 1u);
}

TEST(Staleness, UpToDateDerivativeHasZero) {
  const auto index = build_version_index(make_nss());
  ProviderHistory d("D");
  d.add(snap("D", Date::ymd(2020, 3, 2), {1, 2, 3}));
  const auto res = derivative_staleness(d, index);
  ASSERT_EQ(res.points.size(), 1u);
  EXPECT_EQ(res.points[0].versions_behind, 0.0);
  EXPECT_FALSE(res.always_stale);
}

TEST(Staleness, LaggingDerivativeCounted) {
  const auto index = build_version_index(make_nss());
  ProviderHistory d("D");
  d.add(snap("D", Date::ymd(2020, 3, 2), {1}));  // matches v1, current v3
  const auto res = derivative_staleness(d, index);
  ASSERT_EQ(res.points.size(), 1u);
  EXPECT_EQ(res.points[0].matched_version, 1u);
  EXPECT_EQ(res.points[0].current_version, 3u);
  EXPECT_EQ(res.points[0].versions_behind, 2.0);
  EXPECT_TRUE(res.always_stale);
}

TEST(Staleness, TimeWeightedAverage) {
  const auto index = build_version_index(make_nss());
  ProviderHistory d("D");
  // 10 days at 2 behind, then 30 days at 0 behind (the final sample's own
  // deficit is not integrated; only spans between samples count).
  d.add(snap("D", Date::ymd(2020, 3, 2), {1}));
  d.add(snap("D", Date::ymd(2020, 3, 12), {1, 2, 3}));
  d.add(snap("D", Date::ymd(2020, 4, 11), {1, 2, 3}));
  const auto res = derivative_staleness(d, index);
  ASSERT_EQ(res.points.size(), 3u);
  EXPECT_NEAR(res.avg_versions_behind, (2.0 * 10 + 0.0 * 30) / 40.0, 1e-9);
}

TEST(Staleness, EmptyInputsAreSafe) {
  const auto index = build_version_index(ProviderHistory("NSS"));
  EXPECT_EQ(index.size(), 0u);
  ProviderHistory d("D");
  const auto res = derivative_staleness(d, index);
  EXPECT_TRUE(res.points.empty());
  EXPECT_EQ(res.avg_versions_behind, 0.0);
}

TEST(Staleness, AheadOfCurrentClampsToZero) {
  const auto index = build_version_index(make_nss());
  ProviderHistory d("D");
  // Dated before v2 exists but matching v3's set (hypothetical pre-release
  // copy): deficit clamps to zero rather than going negative.
  d.add(snap("D", Date::ymd(2020, 1, 15), {1, 2, 3}));
  const auto res = derivative_staleness(d, index);
  ASSERT_EQ(res.points.size(), 1u);
  EXPECT_EQ(res.points[0].versions_behind, 0.0);
}

}  // namespace
}  // namespace rs::analysis
