// Overlay-aware incident measurement: revoked-but-shipped roots must split
// the "trusted until" and "shipped until" dates the way Table 4's Apple
// footnotes describe.
#include <gtest/gtest.h>

#include "src/analysis/incident_response.h"
#include "src/synth/paper_scenario.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::synth::CertFactory;
using rs::synth::RootSpec;
using rs::util::Date;

RootSpec spec(const std::string& id) {
  RootSpec s;
  s.id = id;
  s.common_name = id;
  s.not_before = Date::ymd(2005, 1, 1);
  s.not_after = Date::ymd(2035, 1, 1);
  return s;
}

TEST(OverlayIncident, RevokedNotRemovedSplitsDates) {
  CertFactory factory(1);
  auto bad = factory.get(spec("bad"));

  rs::synth::Incident incident;
  incident.name = "Test";
  incident.nss_removal = Date::ymd(2020, 1, 1);
  incident.root_ids = {"bad"};

  StoreDatabase db;
  ProviderHistory p("P");
  for (int month : {1, 6, 12}) {
    Snapshot s;
    s.provider = "P";
    s.date = Date::ymd(2020, month, 15);
    s.entries = {rs::store::make_tls_anchor(bad)};
    p.add(std::move(s));
  }
  db.add(std::move(p));

  std::map<std::string, rs::store::TrustOverlay> overlays;
  rs::store::TrustOverlay ov("P");
  ov.add({bad->sha256(), Date::ymd(2020, 7, 1), "valid.example.com", 0});
  overlays.emplace("P", std::move(ov));

  // Without overlays: trusted to the end.
  const auto plain = measure_incident(db, incident, factory);
  ASSERT_EQ(plain.responses.size(), 1u);
  EXPECT_TRUE(plain.responses[0].still_trusted);
  EXPECT_EQ(plain.responses[0].revoked_not_removed, 0);

  // With overlays: effective trust ends at the June snapshot; the root is
  // still shipped in December.
  const auto measured = measure_incident(db, incident, factory, &overlays);
  ASSERT_EQ(measured.responses.size(), 1u);
  const auto& r = measured.responses[0];
  EXPECT_FALSE(r.still_trusted);
  ASSERT_TRUE(r.trusted_until.has_value());
  EXPECT_EQ(*r.trusted_until, Date::ymd(2020, 6, 15));
  ASSERT_TRUE(r.lag_days.has_value());
  EXPECT_EQ(*r.lag_days, 166);
  EXPECT_TRUE(r.still_shipped);
  ASSERT_TRUE(r.shipped_until.has_value());
  EXPECT_EQ(*r.shipped_until, Date::ymd(2020, 12, 15));
  EXPECT_EQ(r.revoked_not_removed, 1);
}

TEST(OverlayIncident, PaperScenarioAppleStartComAndCertinomis) {
  auto scenario = rs::synth::build_paper_scenario();
  const auto incidents = rs::synth::high_severity_incidents();

  for (const auto& incident : incidents) {
    const auto measured =
        measure_incident(scenario.database(), incident, scenario.factory(),
                         &scenario.overlays());
    const MeasuredResponse* apple = nullptr;
    for (const auto& r : measured.responses) {
      if (r.provider == "Apple") apple = &r;
    }
    if (incident.name == "StartCom") {
      ASSERT_NE(apple, nullptr);
      // All three roots shipped; one still effectively trusted, two
      // revoked out-of-band — the paper's exact footnote.
      EXPECT_EQ(apple->certs_carried, 3);
      EXPECT_TRUE(apple->still_shipped);
      EXPECT_TRUE(apple->still_trusted);
      EXPECT_EQ(apple->revoked_not_removed, 2);
    }
    if (incident.name == "Certinomis") {
      ASSERT_NE(apple, nullptr);
      // Shipped to the end of the history, but no longer trusted: the
      // revocation landed after the paper's "trusted until 2021-01-01".
      EXPECT_TRUE(apple->still_shipped);
      EXPECT_FALSE(apple->still_trusted);
      ASSERT_TRUE(apple->trusted_until.has_value());
      EXPECT_EQ(*apple->trusted_until, Date::ymd(2021, 1, 1));
      EXPECT_EQ(apple->revoked_not_removed, 1);
    }
  }
}

}  // namespace
}  // namespace rs::analysis
