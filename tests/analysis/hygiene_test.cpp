#include "src/analysis/hygiene.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::TrustEntry;
using rs::util::Date;
using rs::x509::SignatureScheme;

std::shared_ptr<const rs::x509::Certificate> cert_with(
    std::uint64_t seed, SignatureScheme scheme, unsigned bits,
    Date not_after = Date::ymd(2030, 1, 1)) {
  rs::x509::Name n;
  n.add_common_name("Hyg Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder()
          .subject(n)
          .key_seed(seed)
          .not_before(Date::ymd(2000, 1, 1))
          .not_after(not_after)
          .signature_scheme(scheme)
          .rsa_bits(bits)
          .build());
}

Snapshot snap(Date date, std::vector<TrustEntry> entries) {
  Snapshot s;
  s.provider = "P";
  s.date = date;
  s.entries = std::move(entries);
  return s;
}

TEST(Hygiene, AveragesOverSnapshots) {
  auto good = rs::store::make_tls_anchor(
      cert_with(1, SignatureScheme::kSha256Rsa, 2048));
  auto expired = rs::store::make_tls_anchor(cert_with(
      2, SignatureScheme::kSha256Rsa, 2048, Date::ymd(2015, 1, 1)));
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2014, 1, 1), {good, expired}));      // nothing expired
  h.add(snap(Date::ymd(2016, 1, 1), {good, expired}));      // one expired
  h.add(snap(Date::ymd(2017, 1, 1), {good}));               // pruned
  const auto m = hygiene_metrics(h);
  EXPECT_NEAR(m.avg_size, (2 + 2 + 1) / 3.0, 1e-12);
  EXPECT_NEAR(m.avg_expired, (0 + 1 + 0) / 3.0, 1e-12);
}

TEST(Hygiene, Md5RemovalDateIsFirstCleanSnapshot) {
  auto md5 = rs::store::make_tls_anchor(
      cert_with(3, SignatureScheme::kMd5Rsa, 2048));
  auto modern = rs::store::make_tls_anchor(
      cert_with(4, SignatureScheme::kSha256Rsa, 2048));
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2014, 1, 1), {md5, modern}));
  h.add(snap(Date::ymd(2015, 1, 1), {md5, modern}));
  h.add(snap(Date::ymd(2016, 2, 15), {modern}));
  h.add(snap(Date::ymd(2017, 1, 1), {modern}));
  const auto m = hygiene_metrics(h);
  ASSERT_TRUE(m.md5_removed.has_value());
  EXPECT_EQ(*m.md5_removed, Date::ymd(2016, 2, 15));
  EXPECT_FALSE(m.md5_still_present);
}

TEST(Hygiene, ReappearanceResetsRemoval) {
  auto weak = rs::store::make_tls_anchor(
      cert_with(5, SignatureScheme::kSha1Rsa, 1024));
  auto modern = rs::store::make_tls_anchor(
      cert_with(6, SignatureScheme::kSha256Rsa, 2048));
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2014, 1, 1), {weak, modern}));
  h.add(snap(Date::ymd(2015, 1, 1), {modern}));          // removed...
  h.add(snap(Date::ymd(2016, 1, 1), {weak, modern}));    // ...re-added!
  h.add(snap(Date::ymd(2018, 1, 1), {modern}));          // removed again
  const auto m = hygiene_metrics(h);
  ASSERT_TRUE(m.weak_rsa_removed.has_value());
  EXPECT_EQ(*m.weak_rsa_removed, Date::ymd(2018, 1, 1));
}

TEST(Hygiene, NeverPresentMeansNoRemovalDate) {
  auto modern = rs::store::make_tls_anchor(
      cert_with(7, SignatureScheme::kSha256Rsa, 2048));
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2014, 1, 1), {modern}));
  const auto m = hygiene_metrics(h);
  EXPECT_FALSE(m.md5_removed.has_value());
  EXPECT_FALSE(m.weak_rsa_removed.has_value());
  EXPECT_FALSE(m.md5_still_present);
}

TEST(Hygiene, StillPresentFlag) {
  auto md5 = rs::store::make_tls_anchor(
      cert_with(8, SignatureScheme::kMd5Rsa, 2048));
  ProviderHistory h("P");
  h.add(snap(Date::ymd(2014, 1, 1), {md5}));
  const auto m = hygiene_metrics(h);
  EXPECT_TRUE(m.md5_still_present);
  EXPECT_FALSE(m.md5_removed.has_value());
}

TEST(Hygiene, EmptyHistory) {
  const auto m = hygiene_metrics(ProviderHistory("P"));
  EXPECT_EQ(m.avg_size, 0.0);
  EXPECT_EQ(m.avg_expired, 0.0);
}

}  // namespace
}  // namespace rs::analysis
