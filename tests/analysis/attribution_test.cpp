#include "src/analysis/attribution.h"

#include <gtest/gtest.h>

namespace rs::analysis {
namespace {

using rs::synth::UserAgentGroup;

TEST(Attribution, CoverageOverTable1Population) {
  const auto summary =
      coverage_summary(rs::synth::user_agent_population());
  EXPECT_EQ(summary.total_user_agents, 200);
  EXPECT_EQ(summary.included_user_agents, 154);
  EXPECT_NEAR(summary.coverage, 0.77, 1e-9);
  EXPECT_EQ(summary.per_os_total.at("Windows"), 50);
  EXPECT_EQ(summary.per_os_total.at("Android"), 56);
}

TEST(Attribution, ProgramSharesMatchPaperShape) {
  const auto attribution =
      attribute_programs(rs::synth::user_agent_population());
  // Paper: NSS 34%, Apple 23%, Windows 20%; Java none.
  const double nss = attribution.ua_share.at("Mozilla/NSS");
  const double apple = attribution.ua_share.at("Apple");
  const double microsoft = attribution.ua_share.at("Microsoft");
  EXPECT_GT(nss, apple);
  EXPECT_GT(apple, microsoft);
  EXPECT_NEAR(nss, 0.34, 0.05);
  EXPECT_NEAR(apple, 0.23, 0.05);
  EXPECT_NEAR(microsoft, 0.20, 0.05);
  EXPECT_EQ(attribution.ua_count.count("Java"), 0u);
}

TEST(Attribution, CustomPopulation) {
  std::vector<UserAgentGroup> pop = {
      {"OS1", "agent-a", 10, true, "NSS"},
      {"OS1", "agent-b", 5, true, "Apple"},
      {"OS2", "agent-c", 5, false, ""},
  };
  const auto summary = coverage_summary(pop);
  EXPECT_EQ(summary.total_user_agents, 20);
  EXPECT_EQ(summary.included_user_agents, 15);
  const auto attribution = attribute_programs(pop);
  EXPECT_EQ(attribution.ua_count.at("Mozilla/NSS"), 10);
  EXPECT_EQ(attribution.ua_count.at("Apple"), 5);
  EXPECT_EQ(attribution.unattributed, 5);
  EXPECT_NEAR(attribution.ua_share.at("Mozilla/NSS"), 0.5, 1e-12);
}

TEST(Attribution, UnknownProviderIsUnattributed) {
  std::vector<UserAgentGroup> pop = {
      {"OS", "agent", 7, true, "SomethingElse"},
  };
  const auto attribution = attribute_programs(pop);
  EXPECT_EQ(attribution.unattributed, 7);
  EXPECT_TRUE(attribution.ua_count.empty());
}

TEST(Attribution, EmptyPopulation) {
  const auto summary = coverage_summary({});
  EXPECT_EQ(summary.total_user_agents, 0);
  EXPECT_EQ(summary.coverage, 0.0);
  const auto attribution = attribute_programs({});
  EXPECT_TRUE(attribution.ua_count.empty());
}

TEST(ProviderFamilies, DerivativesResolveToNss) {
  using rs::synth::RootProgram;
  using rs::synth::program_of_provider;
  EXPECT_EQ(program_of_provider("NSS"), RootProgram::kNss);
  EXPECT_EQ(program_of_provider("Debian"), RootProgram::kNss);
  EXPECT_EQ(program_of_provider("Android"), RootProgram::kNss);
  EXPECT_EQ(program_of_provider("NodeJS"), RootProgram::kNss);
  EXPECT_EQ(program_of_provider("Apple"), RootProgram::kApple);
  EXPECT_EQ(program_of_provider("Microsoft"), RootProgram::kMicrosoft);
  EXPECT_EQ(program_of_provider("Java"), RootProgram::kJava);
  EXPECT_FALSE(program_of_provider("Yandex").has_value());
}

}  // namespace
}  // namespace rs::analysis
