#include "src/analysis/operators.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/synth/paper_scenario.h"
#include "src/x509/builder.h"

namespace rs::analysis {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> cert_for(const std::string& org,
                                                      std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name(org + " Root " + std::to_string(seed))
      .add_organization(org);
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

StoreDatabase db_with(
    const std::map<std::string,
                   std::vector<std::shared_ptr<const rs::x509::Certificate>>>&
        per_program) {
  StoreDatabase db;
  for (const auto& [program, certs] : per_program) {
    ProviderHistory h(program);
    Snapshot s;
    s.provider = program;
    s.date = Date::ymd(2021, 1, 1);
    for (const auto& c : certs) {
      s.entries.push_back(rs::store::make_tls_anchor(c));
    }
    h.add(std::move(s));
    db.add(std::move(h));
  }
  return db;
}

TEST(Operators, GroupsRootsByOrganization) {
  auto shared1 = cert_for("SharedCA", 1);
  auto shared2 = cert_for("SharedCA", 2);   // second root, same operator
  auto a_only = cert_for("OnlyInA", 3);
  const auto db = db_with({
      {"A", {shared1, shared2, a_only}},
      {"B", {shared1}},
  });

  const auto footprints = operator_footprints(db, {"A", "B"});
  ASSERT_EQ(footprints.size(), 2u);
  // Sorted: multi-program operators first.
  EXPECT_EQ(footprints[0].operator_name, "SharedCA");
  EXPECT_EQ(footprints[0].program_count(), 2u);
  EXPECT_EQ(footprints[0].roots_per_program.at("A"), 2u);
  EXPECT_EQ(footprints[0].roots_per_program.at("B"), 1u);
  EXPECT_EQ(footprints[0].total_roots(), 3u);
  EXPECT_EQ(footprints[1].operator_name, "OnlyInA");
}

TEST(Operators, SingleProgramFilter) {
  auto shared = cert_for("Everywhere", 1);
  auto a_only = cert_for("JustA", 2);
  auto b_only = cert_for("JustB", 3);
  const auto db = db_with({
      {"A", {shared, a_only}},
      {"B", {shared, b_only}},
  });
  const auto single = single_program_operators(db, {"A", "B"});
  ASSERT_EQ(single.size(), 2u);
  EXPECT_EQ(single[0].operator_name, "JustA");
  EXPECT_EQ(single[1].operator_name, "JustB");
}

TEST(Operators, NonTlsAnchorsIgnored) {
  auto email_cert = cert_for("EmailHouse", 4);
  StoreDatabase db;
  ProviderHistory h("A");
  Snapshot s;
  s.provider = "A";
  s.date = Date::ymd(2021, 1, 1);
  s.entries = {rs::store::make_anchor_for(
      email_cert, {rs::store::TrustPurpose::kEmailProtection})};
  h.add(std::move(s));
  db.add(std::move(h));
  EXPECT_TRUE(operator_footprints(db, {"A"}).empty());
}

TEST(Operators, PaperScenarioShape) {
  auto scenario = rs::synth::build_paper_scenario();
  const std::vector<std::string> programs = {"NSS", "Java", "Apple",
                                             "Microsoft"};
  const auto footprints =
      operator_footprints(scenario.database(), programs);
  ASSERT_FALSE(footprints.empty());
  // The mainstream pool is shared: a healthy majority of operators span
  // several programs.
  std::size_t multi = 0;
  for (const auto& f : footprints) {
    if (f.program_count() >= 3) ++multi;
  }
  EXPECT_GT(multi, footprints.size() / 3);

  // Government super-CAs from Table 6 appear as Microsoft-only operators.
  const auto single =
      single_program_operators(scenario.database(), programs);
  bool found_gov = false;
  for (const auto& f : single) {
    if (f.operator_name.find("Gov. of") != std::string::npos &&
        f.roots_per_program.contains("Microsoft")) {
      found_gov = true;
    }
  }
  EXPECT_TRUE(found_gov);
}

}  // namespace
}  // namespace rs::analysis
