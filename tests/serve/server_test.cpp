// Serve-layer integration tests: the epoll socket path must answer
// byte-identically to the in-process engine under concurrent clients,
// survive malformed and oversized input, honor backpressure, answer batch
// envelopes, hot-swap engines mid-flight without mixing epochs, and drain
// gracefully on stop().  The suite is labelled `tsan` — it races real
// client threads against the event-loop pool and the RCU engine flip.
#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/query/engine.h"
#include "src/serve/threaded_server.h"
#include "src/store/database.h"
#include "src/util/hex.h"
#include "src/x509/builder.h"

namespace rs::serve {
namespace {

using rs::query::QueryEngine;
using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Serve Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

StoreDatabase make_db() {
  auto a = make_cert(1);
  auto b = make_cert(2);
  StoreDatabase db;
  ProviderHistory h("P");
  Snapshot s1;
  s1.provider = "P";
  s1.date = Date::ymd(2019, 1, 1);
  s1.version = "1";
  s1.entries = {rs::store::make_tls_anchor(a)};
  Snapshot s2;
  s2.provider = "P";
  s2.date = Date::ymd(2020, 1, 1);
  s2.version = "2";
  s2.entries = {rs::store::make_tls_anchor(a), rs::store::make_tls_anchor(b)};
  h.add(std::move(s1));
  h.add(std::move(s2));
  db.add(std::move(h));
  return db;
}

/// A second, distinguishable world for hot-swap tests: extra provider, so
/// e.g. {"op":"stats"} answers differently than make_db()'s engine.
StoreDatabase make_db_b() {
  StoreDatabase db = make_db();
  ProviderHistory h("Q");
  Snapshot s;
  s.provider = "Q";
  s.date = Date::ymd(2021, 1, 1);
  s.version = "1";
  s.entries = {rs::store::make_tls_anchor(make_cert(3))};
  h.add(std::move(s));
  db.add(std::move(h));
  return db;
}

/// Minimal blocking NDJSON client.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads up to the next newline; empty optional on EOF/error.
  std::optional<std::string> read_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<std::string> roundtrip(const std::string& request) {
    if (!send_raw(request + "\n")) return std::nullopt;
    return read_line();
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServerFixture {
  std::shared_ptr<const QueryEngine> engine =
      std::make_shared<const QueryEngine>(make_db(),
                                          std::vector<rs::synth::UserAgentGroup>{});
  std::unique_ptr<Server> server;
  std::uint16_t port = 0;

  explicit ServerFixture(ServerOptions options = {}) {
    server = std::make_unique<Server>(engine, options);
    auto bound = server->start();
    EXPECT_TRUE(bound.ok()) << bound.error();
    port = bound.ok() ? bound.value() : 0;
  }
};

std::vector<std::string> request_mix() {
  const std::string fp_a = rs::util::hex_encode(make_cert(1)->sha256());
  const std::string fp_b = rs::util::hex_encode(make_cert(2)->sha256());
  return {
      R"({"op":"stats"})",
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})",
      R"({"op":"store_at","provider":"P","date":"2020-06-01"})",
      R"({"op":"store_at","provider":"P","date":"1999-01-01"})",
      R"({"op":"is_trusted","provider":"P","fp":")" + fp_a +
          R"(","date":"2019-06-01"})",
      R"({"op":"is_trusted","provider":"P","fp":")" + fp_b +
          R"(","date":"2019-06-01"})",
      R"({"op":"diff","provider":"P","date_a":"2019-06-01","date_b":"2020-06-01"})",
      R"({"op":"lineage","fp":")" + fp_b + R"("})",
      R"({"op":"providers_trusting","fp":")" + fp_a +
          R"(","date":"2019-06-01"})",
      R"({"op":"agreement_at","date":"2019-06-01"})",
      R"({"op":"agreement_at","date":"2020-06-01","scope":"present"})",
      R"({"op":"ct_coverage","provider":"P","date":"2020-06-01"})",
      R"({"op":"ct_coverage","provider":"Nope","date":"2020-06-01"})",
      R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})",
      R"(garbage that does not parse)",
  };
}

/// The acceptance criterion: N concurrent clients each replay the mix and
/// every socket response must equal the in-process engine's bytes.
void expect_byte_identical(std::size_t num_clients) {
  ServerFixture f;
  ASSERT_NE(f.port, 0);
  const auto mix = request_mix();
  std::vector<std::vector<std::string>> got(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&f, &mix, &got, c] {
      Client client(f.port);
      if (!client.connected()) return;
      for (std::size_t lap = 0; lap < 3; ++lap) {
        for (const auto& line : mix) {
          auto response = client.roundtrip(line);
          if (!response) return;
          got[c].push_back(*response);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t c = 0; c < num_clients; ++c) {
    ASSERT_EQ(got[c].size(), mix.size() * 3) << "client " << c;
    for (std::size_t lap = 0; lap < 3; ++lap) {
      for (std::size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(got[c][lap * mix.size() + i], f.engine->handle_json(mix[i]))
            << "client " << c << " request " << mix[i];
      }
    }
  }
  f.server->stop();
}

TEST(Server, ByteIdenticalToEngineOneClient) { expect_byte_identical(1); }
TEST(Server, ByteIdenticalToEngineFourClients) { expect_byte_identical(4); }
TEST(Server, ByteIdenticalToEngineEightClients) { expect_byte_identical(8); }

TEST(Server, ByteIdenticalWithSingleEventLoop) {
  // num_threads 0 clamps to one event loop, which then owns accept AND all
  // connections.  The bytes contract is unchanged.
  ServerOptions options;
  options.num_threads = 0;
  ServerFixture f(options);
  ASSERT_NE(f.port, 0);
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  for (const auto& line : request_mix()) {
    auto response = client.roundtrip(line);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, f.engine->handle_json(line));
  }
  f.server->stop();
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const auto mix = request_mix();
  std::string burst;
  for (const auto& line : mix) burst += line + "\n";
  ASSERT_TRUE(client.send_raw(burst));
  for (const auto& line : mix) {
    auto response = client.read_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, f.engine->handle_json(line));
  }
  f.server->stop();
}

TEST(Server, OversizedLineGetsStructuredErrorThenClose) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  // The transport cap now admits a full batch line, so the flood must
  // exceed kMaxBatchBytes (not kMaxRequestBytes) to trip it.
  const std::string huge(rs::query::kMaxBatchBytes + 100, 'x');
  ASSERT_TRUE(client.send_raw(huge));  // no newline: unterminated flood
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(QueryEngine::is_error_response(*response));
  EXPECT_NE(response->find("\"code\":\"oversized\""), std::string::npos);
  // The connection closes after the error (framing is lost).
  EXPECT_FALSE(client.read_line().has_value());
  f.server->stop();
}

TEST(Server, SingleRequestOverOldCapStillAnswersBadRequest) {
  // A non-batch line above kMaxRequestBytes but under the transport cap is
  // framed fine; the parser rejects it and the connection stays usable.
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string big =
      R"({"op":"stats","pad":")" +
      std::string(rs::query::kMaxRequestBytes, 'y') + R"("})";
  auto response = client.roundtrip(big);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":\"bad_request\""), std::string::npos);
  // Still open: the next request answers normally.
  auto next = client.roundtrip(R"({"op":"stats"})");
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, f.engine->handle_json(R"({"op":"stats"})"));
  f.server->stop();
}

TEST(Server, EofMidRequestAnswersBadRequest) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(R"({"op":"stats")"));  // no closing newline
  client.half_close();
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":\"bad_request\""), std::string::npos);
  f.server->stop();
}

TEST(Server, CacheHitsAreCountedAndStatsServed) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string line =
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})";
  // Same canonical request twice: first misses, second hits.
  const auto first = client.roundtrip(line);
  const auto second = client.roundtrip(line);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  // Spelling the default scope explicitly still hits the same entry.
  const auto third = client.roundtrip(
      R"({"op":"store_at","provider":"P","scope":"tls","date":"2019-06-01"})");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*third, *first);

  const auto stats = client.roundtrip(R"({"op":"server_stats"})");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"op\":\"server_stats\""), std::string::npos);
  EXPECT_NE(stats->find("\"cache_hits\":2"), std::string::npos);
  EXPECT_NE(stats->find("\"cache_shards\":"), std::string::npos);
  EXPECT_NE(stats->find("\"epoch\":0"), std::string::npos);

  const ServerStats s = f.server->stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_GE(s.cache_misses, 1u);
  f.server->stop();
}

TEST(Server, LandscapeOpsShareOneCacheSlotAcrossSpellings) {
  // agreement_at/ct_coverage ride the op-agnostic canonical cache key:
  // whitespace, field order, and an explicit default scope must all hit
  // the entry the first spelling populated.
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const auto first =
      client.roundtrip(R"({"op":"agreement_at","date":"2019-06-01"})");
  const auto spaced = client.roundtrip(
      R"({ "op" : "agreement_at" , "scope" : "tls" , "date" : "2019-06-01" })");
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(*spaced, *first);
  const auto ct =
      client.roundtrip(R"({"op":"ct_coverage","provider":"P","date":"2020-06-01"})");
  const auto ct_reordered = client.roundtrip(
      R"({"op":"ct_coverage","date":"2020-06-01","scope":"tls","provider":"P"})");
  ASSERT_TRUE(ct.has_value());
  ASSERT_TRUE(ct_reordered.has_value());
  EXPECT_EQ(*ct_reordered, *ct);
  EXPECT_EQ(f.server->stats().cache_hits, 2u);
  f.server->stop();
}

TEST(Server, ErrorsAreNeverCached) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string bad =
      R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})";
  ASSERT_TRUE(client.roundtrip(bad).has_value());
  ASSERT_TRUE(client.roundtrip(bad).has_value());
  EXPECT_EQ(f.server->stats().cache_hits, 0u);
  f.server->stop();
}

TEST(Server, StopDrainsInFlightRequestsAndRefusesNewConnections) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  // Prove the connection is live, then stop the server while the client
  // sits idle: stop() must close it and return rather than hang.
  ASSERT_TRUE(client.roundtrip(R"({"op":"stats"})").has_value());
  f.server->stop();
  EXPECT_FALSE(f.server->running());
  // The drained connection reads EOF.
  EXPECT_FALSE(client.read_line().has_value());
  // stop() is idempotent.
  f.server->stop();
}

TEST(Server, RespondLineMatchesSocketSemantics) {
  ServerFixture f;
  const std::string line = R"({"op":"stats"})";
  EXPECT_EQ(f.server->respond_line(line), f.engine->handle_json(line));
  f.server->stop();
}

// ---------------------------------------------------------------------------
// Batch protocol

std::string make_batch(const std::vector<std::string>& items) {
  std::string line = R"({"op":"batch","requests":[)";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += items[i];
  }
  line += "]}";
  return line;
}

TEST(ServerBatch, BatchMatchesEngineAndAnswersInOrder) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const auto mix = request_mix();
  // Drop the non-JSON garbage line: inside a batch, items must be objects
  // (the envelope parser frames by braces).
  std::vector<std::string> items(mix.begin(), mix.end() - 1);
  const std::string line = make_batch(items);
  auto response = client.roundtrip(line);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, f.engine->handle_json(line));
  EXPECT_NE(response->find("\"op\":\"batch\""), std::string::npos);
  EXPECT_NE(response->find("\"count\":" + std::to_string(items.size())),
            std::string::npos);
  EXPECT_EQ(f.server->stats().batch_items, items.size());
  f.server->stop();
}

TEST(ServerBatch, PerItemErrorsAreIsolatedToTheirSlot) {
  ServerFixture f;
  const std::string good = R"({"op":"stats"})";
  const std::string bad = R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})";
  const std::string line = make_batch({good, bad, good});
  const std::string response = f.server->respond_line(line);
  // The envelope itself is not an error; the bad item's slot carries one.
  EXPECT_FALSE(QueryEngine::is_error_response(response));
  EXPECT_EQ(response, f.engine->handle_json(line));
  EXPECT_NE(response.find("\"code\":\"unknown_provider\""), std::string::npos);
  EXPECT_NE(response.find("\"op\":\"stats\""), std::string::npos);
  f.server->stop();
}

TEST(ServerBatch, NestedBatchesAreRejectedPerSlot) {
  ServerFixture f;
  const std::string inner = make_batch({R"({"op":"stats"})"});
  const std::string line = make_batch({inner});
  const std::string response = f.server->respond_line(line);
  EXPECT_EQ(response, f.engine->handle_json(line));
  EXPECT_NE(response.find("batch requests may not nest"), std::string::npos);
  f.server->stop();
}

TEST(ServerBatch, OverCapBatchIsRejectedWhole) {
  ServerFixture f;
  std::vector<std::string> items(rs::query::kMaxBatchRequests + 1,
                                 R"({"op":"stats"})");
  const std::string line = make_batch(items);
  const std::string response = f.server->respond_line(line);
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_EQ(response, f.engine->handle_json(line));
  EXPECT_EQ(f.server->stats().batch_items, 0u);
  f.server->stop();
}

TEST(ServerBatch, BatchItemsShareTheResponseCache) {
  ServerFixture f;
  const std::string item =
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})";
  // Four copies in one batch: first misses, the rest hit; a repeat batch
  // hits all four times.
  const std::string line = make_batch({item, item, item, item});
  ASSERT_FALSE(QueryEngine::is_error_response(f.server->respond_line(line)));
  ASSERT_FALSE(QueryEngine::is_error_response(f.server->respond_line(line)));
  const ServerStats s = f.server->stats();
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_hits, 7u);
  EXPECT_EQ(s.batch_items, 8u);
  f.server->stop();
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(Server, BackpressureSurvivesSlowReaderPipelining) {
  // A tiny write cap forces the server to pause reading whenever a few
  // responses are pending.  A client that floods requests while a separate
  // thread is the only reader must still get every response, in order.
  ServerOptions options;
  options.write_buffer_cap = 1024;
  ServerFixture f(options);
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string line =
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})";
  const std::string expected = f.engine->handle_json(line);
  constexpr std::size_t kBurst = 1000;

  std::thread writer([&client, &line] {
    std::string chunk;
    for (std::size_t i = 0; i < 50; ++i) chunk += line + "\n";
    for (std::size_t i = 0; i < kBurst / 50; ++i) {
      if (!client.send_raw(chunk)) return;
    }
  });
  std::size_t matched = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    auto response = client.read_line();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    if (*response == expected) ++matched;
  }
  writer.join();
  EXPECT_EQ(matched, kBurst);
  f.server->stop();
}

// ---------------------------------------------------------------------------
// Hot swap (RCU epoch flip)

TEST(ServerSwap, SwapInvalidatesCachedAnswersViaEpochKeys) {
  ServerFixture f;
  auto engine_b = std::make_shared<const QueryEngine>(
      make_db_b(), std::vector<rs::synth::UserAgentGroup>{});
  const std::string line = R"({"op":"stats"})";
  const std::string before = f.server->respond_line(line);
  EXPECT_EQ(before, f.engine->handle_json(line));
  // Prime the cache under epoch 0, then flip.
  EXPECT_EQ(f.server->respond_line(line), before);
  f.server->swap_engine(engine_b);
  EXPECT_EQ(f.server->epoch(), 1u);
  const std::string after = f.server->respond_line(line);
  EXPECT_EQ(after, engine_b->handle_json(line));
  EXPECT_NE(after, before) << "make_db_b must be distinguishable";
  f.server->stop();
}

TEST(ServerSwap, MidFlightSwapsNeverMixEpochs) {
  // >= 10 flips while four clients hammer the same request over sockets:
  // every observed response must be byte-identical to exactly one of the
  // two engines' answers, and the epoch must land at the flip count.
  ServerFixture f;
  auto engine_b = std::make_shared<const QueryEngine>(
      make_db_b(), std::vector<rs::synth::UserAgentGroup>{});
  const std::string line = R"({"op":"stats"})";
  const std::string bytes_a = f.engine->handle_json(line);
  const std::string bytes_b = engine_b->handle_json(line);
  ASSERT_NE(bytes_a, bytes_b);

  constexpr int kFlips = 12;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      Client client(f.port);
      if (!client.connected()) return;
      while (!done.load(std::memory_order_acquire)) {
        auto response = client.roundtrip(line);
        if (!response) return;
        if (*response != bytes_a && *response != bytes_b) {
          // memory-order: relaxed — test tally, read after joins.
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int flip = 1; flip <= kFlips; ++flip) {
    f.server->swap_engine(flip % 2 == 1 ? engine_b : f.engine);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(f.server->epoch(), static_cast<std::uint64_t>(kFlips));
  const std::string stats = f.server->respond_line(R"({"op":"server_stats"})");
  EXPECT_NE(stats.find("\"epoch\":" + std::to_string(kFlips)),
            std::string::npos);
  f.server->stop();
}

// ---------------------------------------------------------------------------
// reload_index admin op

TEST(ServerReload, ReloadWithoutFactoryAnswersUnavailable) {
  ServerFixture f;
  const std::string response = f.server->respond_line(R"({"op":"reload_index"})");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"reload_unavailable\""),
            std::string::npos);
  f.server->stop();
}

TEST(ServerReload, ReloadOpFlipsEpochAsynchronously) {
  auto engine_b = std::make_shared<const QueryEngine>(
      make_db_b(), std::vector<rs::synth::UserAgentGroup>{});
  ServerOptions options;
  options.reload_factory =
      [engine_b]() -> rs::util::Result<std::shared_ptr<const QueryEngine>> {
    return engine_b;
  };
  ServerFixture f(options);
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  auto accepted = client.roundtrip(R"({"op":"reload_index"})");
  ASSERT_TRUE(accepted.has_value());
  EXPECT_NE(accepted->find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(accepted->find("\"epoch\":0"), std::string::npos);

  // The flip is off-loop; poll server_stats until it lands.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool flipped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = client.roundtrip(R"({"op":"server_stats"})");
    ASSERT_TRUE(stats.has_value());
    if (stats->find("\"epoch\":1") != std::string::npos &&
        stats->find("\"reloads\":1") != std::string::npos) {
      flipped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(flipped);
  auto answer = client.roundtrip(R"({"op":"stats"})");
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, engine_b->handle_json(R"({"op":"stats"})"));
  f.server->stop();
}

TEST(ServerReload, FailedReloadKeepsServingCurrentEpoch) {
  ServerOptions options;
  options.reload_factory =
      []() -> rs::util::Result<std::shared_ptr<const QueryEngine>> {
    return rs::util::Result<std::shared_ptr<const QueryEngine>>::err(
        "index file corrupt");
  };
  ServerFixture f(options);
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.roundtrip(R"({"op":"reload_index"})").has_value());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (f.server->stats().reload_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(f.server->stats().reload_failures, 1u);
  EXPECT_EQ(f.server->epoch(), 0u);
  auto answer = client.roundtrip(R"({"op":"stats"})");
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, f.engine->handle_json(R"({"op":"stats"})"));
  f.server->stop();
}

// ---------------------------------------------------------------------------
// ThreadedServer baseline: same protocol, frozen architecture

TEST(ThreadedServer, ByteIdenticalToEngine) {
  const StoreDatabase db = make_db();
  const QueryEngine engine(db, {});
  ThreadedServer server(engine, ServerOptions{});
  auto bound = server.start();
  ASSERT_TRUE(bound.ok()) << bound.error();
  Client client(bound.value());
  ASSERT_TRUE(client.connected());
  for (const auto& line : request_mix()) {
    auto response = client.roundtrip(line);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, engine.handle_json(line));
  }
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace rs::serve
