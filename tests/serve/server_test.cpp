// Serve-layer integration tests: the socket path must answer byte-identically
// to the in-process engine under concurrent clients, survive malformed and
// oversized input, and drain gracefully on stop().  The suite is labelled
// `tsan` — it races real client threads against the server's pool.
#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/query/engine.h"
#include "src/store/database.h"
#include "src/util/hex.h"
#include "src/x509/builder.h"

namespace rs::serve {
namespace {

using rs::query::QueryEngine;
using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Serve Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

StoreDatabase make_db() {
  auto a = make_cert(1);
  auto b = make_cert(2);
  StoreDatabase db;
  ProviderHistory h("P");
  Snapshot s1;
  s1.provider = "P";
  s1.date = Date::ymd(2019, 1, 1);
  s1.version = "1";
  s1.entries = {rs::store::make_tls_anchor(a)};
  Snapshot s2;
  s2.provider = "P";
  s2.date = Date::ymd(2020, 1, 1);
  s2.version = "2";
  s2.entries = {rs::store::make_tls_anchor(a), rs::store::make_tls_anchor(b)};
  h.add(std::move(s1));
  h.add(std::move(s2));
  db.add(std::move(h));
  return db;
}

/// Minimal blocking NDJSON client.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads up to the next newline; empty optional on EOF/error.
  std::optional<std::string> read_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<std::string> roundtrip(const std::string& request) {
    if (!send_raw(request + "\n")) return std::nullopt;
    return read_line();
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServerFixture {
  StoreDatabase db = make_db();
  QueryEngine engine{db, {}};
  std::unique_ptr<Server> server;
  std::uint16_t port = 0;

  explicit ServerFixture(ServerOptions options = {}) {
    server = std::make_unique<Server>(engine, options);
    auto bound = server->start();
    EXPECT_TRUE(bound.ok()) << bound.error();
    port = bound.ok() ? bound.value() : 0;
  }
};

std::vector<std::string> request_mix() {
  const std::string fp_a = rs::util::hex_encode(make_cert(1)->sha256());
  const std::string fp_b = rs::util::hex_encode(make_cert(2)->sha256());
  return {
      R"({"op":"stats"})",
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})",
      R"({"op":"store_at","provider":"P","date":"2020-06-01"})",
      R"({"op":"store_at","provider":"P","date":"1999-01-01"})",
      R"({"op":"is_trusted","provider":"P","fp":")" + fp_a +
          R"(","date":"2019-06-01"})",
      R"({"op":"is_trusted","provider":"P","fp":")" + fp_b +
          R"(","date":"2019-06-01"})",
      R"({"op":"diff","provider":"P","date_a":"2019-06-01","date_b":"2020-06-01"})",
      R"({"op":"lineage","fp":")" + fp_b + R"("})",
      R"({"op":"providers_trusting","fp":")" + fp_a +
          R"(","date":"2019-06-01"})",
      R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})",
      R"(garbage that does not parse)",
  };
}

/// The acceptance criterion: N concurrent clients each replay the mix and
/// every socket response must equal the in-process engine's bytes.
void expect_byte_identical(std::size_t num_clients) {
  ServerFixture f;
  ASSERT_NE(f.port, 0);
  const auto mix = request_mix();
  std::vector<std::vector<std::string>> got(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&f, &mix, &got, c] {
      Client client(f.port);
      if (!client.connected()) return;
      for (std::size_t lap = 0; lap < 3; ++lap) {
        for (const auto& line : mix) {
          auto response = client.roundtrip(line);
          if (!response) return;
          got[c].push_back(*response);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t c = 0; c < num_clients; ++c) {
    ASSERT_EQ(got[c].size(), mix.size() * 3) << "client " << c;
    for (std::size_t lap = 0; lap < 3; ++lap) {
      for (std::size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(got[c][lap * mix.size() + i], f.engine.handle_json(mix[i]))
            << "client " << c << " request " << mix[i];
      }
    }
  }
  f.server->stop();
}

TEST(Server, ByteIdenticalToEngineOneClient) { expect_byte_identical(1); }
TEST(Server, ByteIdenticalToEngineFourClients) { expect_byte_identical(4); }
TEST(Server, ByteIdenticalToEngineEightClients) { expect_byte_identical(8); }

TEST(Server, ByteIdenticalWithInlineAcceptThread) {
  // 0 pool workers: the accept thread serves connections itself.  One
  // client at a time, but the bytes contract is the same.
  ServerOptions options;
  options.num_threads = 0;
  ServerFixture f(options);
  ASSERT_NE(f.port, 0);
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  for (const auto& line : request_mix()) {
    auto response = client.roundtrip(line);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, f.engine.handle_json(line));
  }
  f.server->stop();
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const auto mix = request_mix();
  std::string burst;
  for (const auto& line : mix) burst += line + "\n";
  ASSERT_TRUE(client.send_raw(burst));
  for (const auto& line : mix) {
    auto response = client.read_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, f.engine.handle_json(line));
  }
  f.server->stop();
}

TEST(Server, OversizedLineGetsStructuredErrorThenClose) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string huge(rs::query::kMaxRequestBytes + 100, 'x');
  ASSERT_TRUE(client.send_raw(huge));  // no newline: unterminated flood
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(QueryEngine::is_error_response(*response));
  EXPECT_NE(response->find("\"code\":\"oversized\""), std::string::npos);
  // The connection closes after the error (framing is lost).
  EXPECT_FALSE(client.read_line().has_value());
  f.server->stop();
}

TEST(Server, EofMidRequestAnswersBadRequest) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(R"({"op":"stats")"));  // no closing newline
  client.half_close();
  auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":\"bad_request\""), std::string::npos);
  f.server->stop();
}

TEST(Server, CacheHitsAreCountedAndStatsServed) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string line =
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})";
  // Same canonical request twice: first misses, second hits.
  const auto first = client.roundtrip(line);
  const auto second = client.roundtrip(line);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  // Spelling the default scope explicitly still hits the same entry.
  const auto third = client.roundtrip(
      R"({"op":"store_at","provider":"P","scope":"tls","date":"2019-06-01"})");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*third, *first);

  const auto stats = client.roundtrip(R"({"op":"server_stats"})");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"op\":\"server_stats\""), std::string::npos);
  EXPECT_NE(stats->find("\"cache_hits\":2"), std::string::npos);

  const ServerStats s = f.server->stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_GE(s.cache_misses, 1u);
  f.server->stop();
}

TEST(Server, ErrorsAreNeverCached) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  const std::string bad =
      R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})";
  ASSERT_TRUE(client.roundtrip(bad).has_value());
  ASSERT_TRUE(client.roundtrip(bad).has_value());
  EXPECT_EQ(f.server->stats().cache_hits, 0u);
  f.server->stop();
}

TEST(Server, StopDrainsInFlightRequestsAndRefusesNewConnections) {
  ServerFixture f;
  Client client(f.port);
  ASSERT_TRUE(client.connected());
  // Prove the connection is live, then stop the server while the client
  // sits idle: stop() must half-close it and return rather than hang.
  ASSERT_TRUE(client.roundtrip(R"({"op":"stats"})").has_value());
  f.server->stop();
  EXPECT_FALSE(f.server->running());
  // The drained connection reads EOF.
  EXPECT_FALSE(client.read_line().has_value());
  // stop() is idempotent.
  f.server->stop();
}

TEST(Server, RespondLineMatchesSocketSemantics) {
  ServerFixture f;
  const std::string line = R"({"op":"stats"})";
  EXPECT_EQ(f.server->respond_line(line), f.engine.handle_json(line));
  f.server->stop();
}

}  // namespace
}  // namespace rs::serve
