#include "src/serve/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rs::serve {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "A");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "A");
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.put("a", "A");
  cache.put("b", "B");
  ASSERT_TRUE(cache.get("a").has_value());  // "a" is now most recent
  cache.put("c", "C");                      // evicts "b"
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(LruCache, PutRefreshesExistingEntry) {
  LruCache cache(2);
  cache.put("a", "A1");
  cache.put("b", "B");
  cache.put("a", "A2");  // refresh, not insert: "a" becomes most recent
  cache.put("c", "C");   // evicts "b", the LRU
  EXPECT_EQ(cache.size(), 2u);
  const auto a = cache.get("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "A2");
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(LruCache, ZeroCapacityDisables) {
  LruCache cache(0);
  cache.put("a", "A");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(LruCache, ConcurrentMixedTrafficStaysConsistent) {
  LruCache cache(16);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 32);
        if (i % 3 == 0) {
          cache.put(key, "v" + key);
        } else if (auto hit = cache.get(key)) {
          // A hit must always carry the value that key was stored with.
          ASSERT_EQ(*hit, "v" + key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(cache.size(), 16u);
  const auto c = cache.counters();
  EXPECT_EQ(c.hits + c.misses,
            static_cast<std::uint64_t>(kThreads) * ((kOps * 2) / 3));
}

}  // namespace
}  // namespace rs::serve
