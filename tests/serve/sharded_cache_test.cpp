// ShardedCache: routing determinism, capacity split, and — the load-bearing
// property — exact counter aggregation under concurrent mixed hit/miss
// traffic (hits + misses must equal the number of get() calls, always).
#include "src/serve/sharded_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rs::serve {
namespace {

TEST(NextPow2, RoundsUpToPowersOfTwo) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(16), 16u);
  EXPECT_EQ(next_pow2(17), 32u);
}

TEST(ShardedCache, ShardCountIsNextPow2OfHint) {
  EXPECT_EQ(ShardedCache(64, 0).shard_count(), 1u);
  EXPECT_EQ(ShardedCache(64, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedCache(64, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedCache(64, 6).shard_count(), 8u);
}

TEST(ShardedCache, RoutingIsStableAndInRange) {
  ShardedCache cache(64, 4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::size_t shard = cache.shard_of(key);
    EXPECT_LT(shard, cache.shard_count());
    EXPECT_EQ(shard, cache.shard_of(key)) << "routing must be deterministic";
  }
}

TEST(ShardedCache, GetPutRoundTripAndCounters) {
  ShardedCache cache(64, 4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "alpha");
  auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "alpha");
  const LruCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.capacity(), 64u);
}

TEST(ShardedCache, ZeroCapacityNeverStores) {
  ShardedCache cache(0, 4);
  cache.put("a", "alpha");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedCache, CapacitySplitsAcrossShardsWithRoundUp) {
  // 10 entries over 4 shards → 3 per shard → 12 usable, never below 10.
  ShardedCache cache(10, 4);
  for (int i = 0; i < 100; ++i) {
    cache.put("k" + std::to_string(i), "v");
  }
  EXPECT_LE(cache.size(), 12u);
  EXPECT_GT(cache.counters().evictions, 0u);
}

TEST(ShardedCache, ConcurrentMixedTrafficCountersAreExact) {
  // 8 threads × 4000 gets with a put after every miss, over a keyspace
  // bigger than the cache so evictions churn constantly.  The aggregated
  // counters must balance exactly: hits + misses == total get() calls.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kGetsPerThread = 4000;
  constexpr std::size_t kKeyspace = 512;
  ShardedCache cache(128, kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      // Deterministic per-thread key walk (tests cannot call rand()):
      // stride by a thread-specific odd step so threads collide on keys.
      std::size_t k = t * 131;
      for (std::size_t i = 0; i < kGetsPerThread; ++i) {
        k = (k + 2 * t + 7) % kKeyspace;
        const std::string key = "key-" + std::to_string(k);
        if (!cache.get(key).has_value()) {
          cache.put(key, "value-" + std::to_string(k));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const LruCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, kThreads * kGetsPerThread);
  EXPECT_GT(c.hits, 0u);
  EXPECT_GT(c.misses, 0u);
  EXPECT_LE(cache.size(), next_pow2(kThreads) *
                              ((128 + next_pow2(kThreads) - 1) /
                               next_pow2(kThreads)));
}

}  // namespace
}  // namespace rs::serve
