// End-to-end integration: the study façade must reproduce the paper's
// headline findings from the curated scenario.
#include "src/core/study.h"

#include <gtest/gtest.h>

#include "src/analysis/exclusive.h"
#include "src/analysis/hygiene.h"
#include "src/analysis/incident_response.h"
#include "src/analysis/staleness.h"
#include "src/synth/incidents.h"

namespace rs::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    study_ = new EcosystemStudy(EcosystemStudy::from_paper_scenario());
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static EcosystemStudy* study_;
};
EcosystemStudy* StudyTest::study_ = nullptr;

TEST_F(StudyTest, Table6CountsMatchPaperExactly) {
  const auto measured = rs::analysis::exclusive_roots(
      study_->database(), {"NSS", "Java", "Apple", "Microsoft"});
  std::map<std::string, std::size_t> counts;
  for (const auto& m : measured) counts[m.program] = m.roots.size();
  EXPECT_EQ(counts["NSS"], 1u);
  EXPECT_EQ(counts["Java"], 0u);
  EXPECT_EQ(counts["Apple"], 13u);
  EXPECT_EQ(counts["Microsoft"], 30u);
}

TEST_F(StudyTest, Table3PurgeMonthsMatchPaperExactly) {
  struct Expected {
    const char* program;
    const char* md5;
    const char* weak;
  };
  const Expected expected[] = {
      {"Apple", "2016-09", "2015-09"},
      {"Java", "2019-02", "2021-02"},
      {"Microsoft", "2018-03", "2017-09"},
      {"NSS", "2016-02", "2015-10"},
  };
  for (const auto& e : expected) {
    const auto m =
        rs::analysis::hygiene_metrics(*study_->database().find(e.program));
    ASSERT_TRUE(m.md5_removed.has_value()) << e.program;
    ASSERT_TRUE(m.weak_rsa_removed.has_value()) << e.program;
    EXPECT_EQ(m.md5_removed->to_string().substr(0, 7), e.md5) << e.program;
    EXPECT_EQ(m.weak_rsa_removed->to_string().substr(0, 7), e.weak)
        << e.program;
  }
}

TEST_F(StudyTest, HygieneOrderingsMatchPaper) {
  auto metrics = [&](const char* p) {
    return rs::analysis::hygiene_metrics(*study_->database().find(p));
  };
  const auto apple = metrics("Apple");
  const auto java = metrics("Java");
  const auto microsoft = metrics("Microsoft");
  const auto nss = metrics("NSS");
  // Sizes: Microsoft > Apple > NSS > Java.
  EXPECT_GT(microsoft.avg_size, apple.avg_size);
  EXPECT_GT(apple.avg_size, nss.avg_size);
  EXPECT_GT(nss.avg_size, java.avg_size);
  // Expired retention: Microsoft far worst; NSS/Java cleanest.
  EXPECT_GT(microsoft.avg_expired, apple.avg_expired);
  EXPECT_GT(apple.avg_expired, nss.avg_expired);
}

TEST_F(StudyTest, Table4LagsMatchPaperWhereDefined) {
  auto& scenario = study_->scenario();
  for (const auto& incident : rs::synth::high_severity_incidents()) {
    const auto measured = rs::analysis::measure_incident(
        study_->database(), incident, scenario.factory(),
        &scenario.overlays());
    for (const auto& paper_row : incident.responses) {
      // Debian and Ubuntu rows are identical; Apple's Certinomis lag is
      // footnoted as approximate in the paper itself.
      if (incident.name == "Certinomis" && paper_row.provider == "Apple") {
        continue;
      }
      const rs::analysis::MeasuredResponse* found = nullptr;
      for (const auto& m : measured.responses) {
        if (m.provider == paper_row.provider) found = &m;
      }
      ASSERT_NE(found, nullptr)
          << incident.name << " / " << paper_row.provider;
      if (paper_row.lag_days.has_value()) {
        ASSERT_TRUE(found->lag_days.has_value())
            << incident.name << " / " << paper_row.provider;
        EXPECT_EQ(*found->lag_days, *paper_row.lag_days)
            << incident.name << " / " << paper_row.provider;
      } else {
        EXPECT_TRUE(found->still_trusted)
            << incident.name << " / " << paper_row.provider;
      }
    }
  }
}

TEST_F(StudyTest, Figure3OrderingMatchesPaper) {
  const auto index = rs::analysis::build_version_index(
      *study_->database().find("NSS"));
  auto behind = [&](const char* p) {
    return rs::analysis::derivative_staleness(*study_->database().find(p),
                                              index)
        .avg_versions_behind;
  };
  const double alpine = behind("Alpine");
  const double debian = behind("Debian");
  const double ubuntu = behind("Ubuntu");
  const double node = behind("NodeJS");
  const double android = behind("Android");
  const double amazon = behind("AmazonLinux");
  EXPECT_LT(alpine, debian);
  EXPECT_LT(alpine, ubuntu);
  EXPECT_LT(debian, android);
  EXPECT_LT(node, android);
  EXPECT_LT(android, amazon);
  // Magnitudes within ~1.5 substantial versions of the paper.
  EXPECT_NEAR(alpine, 0.73, 1.0);
  EXPECT_NEAR(amazon, 4.83, 1.6);
}

TEST_F(StudyTest, ReportsAreNonEmptyAndMentionKeyFacts) {
  EXPECT_NE(study_->report_table1().find("77.0%"), std::string::npos);
  EXPECT_NE(study_->report_table2().find("NSS"), std::string::npos);
  EXPECT_NE(study_->report_table3().find("2016-02"), std::string::npos);
  EXPECT_NE(study_->report_table4().find("DigiNotar"), std::string::npos);
  EXPECT_NE(study_->report_table5().find("OpenSSL"), std::string::npos);
  EXPECT_NE(study_->report_table6().find("Microsoft"), std::string::npos);
  EXPECT_NE(study_->report_table7().find("682927"), std::string::npos);
  EXPECT_NE(study_->report_figure2().find("inverted pyramid"),
            std::string::npos);
  EXPECT_NE(study_->report_figure3().find("AmazonLinux"), std::string::npos);
  EXPECT_NE(study_->report_figure4().find("Symantec"), std::string::npos);
}

TEST_F(StudyTest, Figure1FindsFourPureFamilies) {
  const std::string report = study_->report_figure1(20);
  EXPECT_NE(report.find("clusters found: 4"), std::string::npos) << report;
  EXPECT_NE(report.find("overall purity: 100.0%"), std::string::npos);
}

}  // namespace
}  // namespace rs::core
