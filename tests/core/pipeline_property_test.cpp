// Pipeline property tests on simulated ecosystems: the analyses must hold
// their invariants for arbitrary (seeded) inputs, not just the curated
// scenario.
#include <gtest/gtest.h>

#include "src/analysis/diffs.h"
#include "src/analysis/hygiene.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/staleness.h"
#include "src/exec/thread_pool.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/synth/simulator.h"

namespace rs::core {
namespace {

class SimulatedPipelineTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  rs::synth::SimulatedEcosystem make() {
    rs::synth::SimulatorConfig cfg;
    cfg.seed = GetParam();
    cfg.ca_count = 60;
    cfg.program_count = 2;
    cfg.derivative_count = 2;
    cfg.snapshot_interval_days = 120;
    return rs::synth::simulate_ecosystem(cfg);
  }
};

TEST_P(SimulatedPipelineTest, JaccardMatrixIsValidMetricInput) {
  const auto eco = make();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 15;
  const auto dist = rs::analysis::jaccard_matrix(eco.database, opts);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.at(i, i), 0.0);
    for (std::size_t j = 0; j < dist.size(); ++j) {
      EXPECT_GE(dist.at(i, j), 0.0);
      EXPECT_LE(dist.at(i, j), 1.0);
      EXPECT_DOUBLE_EQ(dist.at(i, j), dist.at(j, i));
    }
  }
}

TEST_P(SimulatedPipelineTest, SmacofReducesStressVsClassical) {
  const auto eco = make();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 12;
  const auto dist = rs::analysis::jaccard_matrix(eco.database, opts);
  if (dist.size() < 3) GTEST_SKIP();
  const auto classical = rs::analysis::classical_mds(dist);
  const auto smacof = rs::analysis::smacof_mds(dist);
  EXPECT_LE(smacof.stress, classical.stress + 1e-9);
  EXPECT_GE(smacof.normalized_stress, 0.0);
}

TEST_P(SimulatedPipelineTest, StalenessIsNonNegativeAndBounded) {
  const auto eco = make();
  const auto* base = eco.database.find(eco.base_program);
  ASSERT_NE(base, nullptr);
  const auto index = rs::analysis::build_version_index(*base);
  for (const auto& name : eco.derivative_names) {
    const auto* deriv = eco.database.find(name);
    ASSERT_NE(deriv, nullptr);
    const auto res = rs::analysis::derivative_staleness(*deriv, index);
    EXPECT_GE(res.avg_versions_behind, 0.0) << name;
    EXPECT_LE(res.avg_versions_behind, static_cast<double>(index.size()))
        << name;
    for (const auto& p : res.points) {
      EXPECT_LE(p.matched_version, index.size());
      EXPECT_LE(p.versions_behind,
                static_cast<double>(p.current_version));
    }
  }
}

TEST_P(SimulatedPipelineTest, DiffCountsAreConsistent) {
  const auto eco = make();
  const auto* base = eco.database.find(eco.base_program);
  const auto index = rs::analysis::build_version_index(*base);
  for (const auto& name : eco.derivative_names) {
    const auto series =
        rs::analysis::derivative_diffs(*eco.database.find(name), *base, index);
    for (const auto& p : series.points) {
      std::size_t adds = 0;
      for (auto v : p.adds) adds += v;
      EXPECT_EQ(adds, p.added_total());
      std::size_t removes = 0;
      for (auto v : p.removes) removes += v;
      EXPECT_EQ(removes, p.removed_total());
    }
  }
}

TEST_P(SimulatedPipelineTest, ParallelAnalysesMatchSerialBitwise) {
  // Randomized ecosystems hit snapshot counts and set sizes the curated
  // scenario cannot, catching chunk-boundary bugs in the parallel paths.
  const auto eco = make();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 13;  // odd count stresses uneven chunk edges

  const auto dist_serial = rs::analysis::jaccard_matrix(eco.database, opts);
  const auto mds_serial = rs::analysis::smacof_mds(dist_serial);
  const auto* base = eco.database.find(eco.base_program);
  ASSERT_NE(base, nullptr);
  const auto index = rs::analysis::build_version_index(*base);

  for (std::size_t workers : {std::size_t{2}, std::size_t{5}}) {
    rs::exec::ThreadPool pool(workers);

    const auto dist = rs::analysis::jaccard_matrix(eco.database, opts, &pool);
    ASSERT_EQ(dist.size(), dist_serial.size());
    EXPECT_TRUE(dist.values == dist_serial.values) << workers << " workers";

    const auto mds = rs::analysis::smacof_mds(dist_serial, {}, &pool);
    EXPECT_EQ(mds.iterations, mds_serial.iterations);
    EXPECT_EQ(mds.stress, mds_serial.stress);
    ASSERT_EQ(mds.points.size(), mds_serial.points.size());
    for (std::size_t i = 0; i < mds.points.size(); ++i) {
      EXPECT_EQ(mds.points[i].x, mds_serial.points[i].x);
      EXPECT_EQ(mds.points[i].y, mds_serial.points[i].y);
    }

    for (const auto& name : eco.derivative_names) {
      const auto* deriv = eco.database.find(name);
      ASSERT_NE(deriv, nullptr);
      const auto stale_serial = rs::analysis::derivative_staleness(*deriv,
                                                                   index);
      const auto stale = rs::analysis::derivative_staleness(*deriv, index,
                                                            &pool);
      EXPECT_EQ(stale.avg_versions_behind, stale_serial.avg_versions_behind)
          << name;
      ASSERT_EQ(stale.points.size(), stale_serial.points.size()) << name;

      const auto diffs_serial =
          rs::analysis::derivative_diffs(*deriv, *base, index);
      const auto diffs =
          rs::analysis::derivative_diffs(*deriv, *base, index, &pool);
      ASSERT_EQ(diffs.points.size(), diffs_serial.points.size()) << name;
      for (std::size_t k = 0; k < diffs.points.size(); ++k) {
        EXPECT_EQ(diffs.points[k].adds, diffs_serial.points[k].adds);
        EXPECT_EQ(diffs.points[k].removes, diffs_serial.points[k].removes);
      }
    }
  }
}

TEST_P(SimulatedPipelineTest, HygieneAveragesWithinStoreBounds) {
  const auto eco = make();
  for (const auto& [name, history] : eco.database.histories()) {
    const auto m = rs::analysis::hygiene_metrics(history);
    EXPECT_GE(m.avg_size, 0.0) << name;
    EXPECT_LE(m.avg_expired, m.avg_size) << name;
  }
}

TEST_P(SimulatedPipelineTest, EveryStoreSurvivesCertdataRoundTrip) {
  const auto eco = make();
  const auto* base = eco.database.find(eco.base_program);
  const auto& latest = base->back();
  const std::string text = rs::formats::write_certdata(latest.entries);
  auto parsed = rs::formats::parse_certdata(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().entries.size(), latest.entries.size());
  for (std::size_t i = 0; i < latest.entries.size(); ++i) {
    EXPECT_EQ(parsed.value().entries[i].certificate->sha256(),
              latest.entries[i].certificate->sha256());
  }
}

TEST_P(SimulatedPipelineTest, EveryStoreSurvivesJksRoundTrip) {
  const auto eco = make();
  const auto* base = eco.database.find(eco.base_program);
  const auto& latest = base->back();
  const auto blob =
      rs::formats::write_jks(latest.entries, latest.date);
  auto parsed = rs::formats::parse_jks(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().entries.size(), latest.entries.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatedPipelineTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

}  // namespace
}  // namespace rs::core
