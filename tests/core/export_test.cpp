// CSV exports: the figure data series must be well-formed CSV with the
// documented headers and one row per data point.
#include "src/core/export.h"

#include <gtest/gtest.h>

#include "src/util/strings.h"

namespace rs::core {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ =
        new rs::synth::PaperScenario(rs::synth::build_paper_scenario());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static rs::synth::PaperScenario* scenario_;
};
rs::synth::PaperScenario* ExportTest::scenario_ = nullptr;

std::vector<std::string_view> rows(const std::string& csv) {
  auto lines = rs::util::split_lines(csv);
  return lines;
}

TEST_F(ExportTest, Figure1CsvShape) {
  const auto csv = figure1_csv(*scenario_, 10);
  const auto lines = rows(csv);
  ASSERT_GT(lines.size(), 10u);
  EXPECT_EQ(lines[0], "provider,family,date,version,x,y,cluster");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(rs::util::split(lines[i], ',').size(), 7u) << lines[i];
  }
  // Every provider family appears.
  EXPECT_NE(csv.find("Microsoft,Microsoft"), std::string::npos);
  EXPECT_NE(csv.find("Debian,Mozilla/NSS"), std::string::npos);
}

TEST_F(ExportTest, Figure3CsvShape) {
  const auto csv = figure3_csv(*scenario_);
  const auto lines = rows(csv);
  EXPECT_EQ(lines[0],
            "provider,date,matched_version,current_version,versions_behind");
  ASSERT_GT(lines.size(), 50u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = rs::util::split(lines[i], ',');
    ASSERT_EQ(fields.size(), 5u);
    // versions_behind is non-negative.
    EXPECT_NE(fields[4].front(), '-');
  }
}

TEST_F(ExportTest, Figure4CsvShape) {
  const auto csv = figure4_csv(*scenario_);
  const auto lines = rows(csv);
  // Header: 3 id columns + 4 add categories + 2 remove categories.
  EXPECT_EQ(rs::util::split(lines[0], ',').size(), 9u);
  EXPECT_EQ(lines[0].find(' '), std::string::npos) << "no spaces in header";
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(rs::util::split(lines[i], ',').size(), 9u) << lines[i];
  }
}

TEST_F(ExportTest, ChurnCsvMarksOutliers) {
  const auto csv = churn_csv(*scenario_);
  const auto lines = rows(csv);
  EXPECT_EQ(lines[0], "provider,date,added,removed,change_fraction,is_outlier");
  bool any_outlier = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = rs::util::split(lines[i], ',');
    ASSERT_EQ(fields.size(), 6u);
    if (fields[5] == "1") any_outlier = true;
  }
  EXPECT_TRUE(any_outlier);  // the scenario has batch-change outliers
}

TEST_F(ExportTest, CsvIsDeterministic) {
  EXPECT_EQ(figure3_csv(*scenario_), figure3_csv(*scenario_));
}

}  // namespace
}  // namespace rs::core
