#include "src/encoding/base64.h"

#include <gtest/gtest.h>

#include <string>

namespace rs::encoding {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

// RFC 4648 §10 test vectors.
TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(bytes("")), "");
  EXPECT_EQ(base64_encode(bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), bytes("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), bytes("f"));
  EXPECT_EQ(base64_decode(""), bytes(""));
}

TEST(Base64, DecodeRejectsBadLength) {
  EXPECT_FALSE(base64_decode("Zm9").has_value());
  EXPECT_FALSE(base64_decode("Z").has_value());
}

TEST(Base64, DecodeRejectsBadChars) {
  EXPECT_FALSE(base64_decode("Zm9v!A==").has_value());
  EXPECT_FALSE(base64_decode("Zm 9v").has_value());  // strict mode
}

TEST(Base64, DecodeRejectsMisplacedPadding) {
  EXPECT_FALSE(base64_decode("=m9v").has_value());
  EXPECT_FALSE(base64_decode("Z=9v").has_value());
  EXPECT_FALSE(base64_decode("Zm=v").has_value());   // data after '='
  EXPECT_FALSE(base64_decode("Zg==Zg==").has_value());  // '=' mid-stream
}

TEST(Base64, DecodeRejectsNonCanonicalTrailingBits) {
  // "Zh==" decodes the same byte as "Zg==" but with non-zero discarded bits.
  EXPECT_TRUE(base64_decode("Zg==").has_value());
  EXPECT_FALSE(base64_decode("Zh==").has_value());
  EXPECT_TRUE(base64_decode("Zm8=").has_value());
  EXPECT_FALSE(base64_decode("Zm9=").has_value());
}

TEST(Base64, WhitespaceModeAcceptsWrapped) {
  Base64DecodeOptions opts{.allow_whitespace = true};
  EXPECT_EQ(base64_decode("Zm9v\nYmFy", opts), bytes("foobar"));
  EXPECT_EQ(base64_decode("  Zg==\r\n", opts), bytes("f"));
}

TEST(Base64, WrappedEncoding) {
  const auto data = bytes("this is a longer input that wraps lines");
  const std::string wrapped = base64_encode_wrapped(data, 16);
  for (const char c : wrapped) {
    EXPECT_TRUE(c == '\n' || (c != ' ' && c != '\t'));
  }
  // Every line (except possibly the last) is exactly 16 chars.
  std::size_t start = 0;
  while (start < wrapped.size()) {
    const std::size_t nl = wrapped.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_LE(nl - start, 16u);
    start = nl + 1;
  }
  EXPECT_EQ(base64_decode(wrapped, {.allow_whitespace = true}), data);
}

// Property: round-trip over varied sizes and contents.
TEST(Base64Property, RoundTripSweep) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 300; ++i) {
    const std::string enc = base64_encode(data);
    EXPECT_EQ(base64_decode(enc), data) << "size " << i;
    data.push_back(static_cast<std::uint8_t>(i * 97 + 13));
  }
}

}  // namespace
}  // namespace rs::encoding
