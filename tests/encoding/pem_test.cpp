#include "src/encoding/pem.h"

#include <gtest/gtest.h>

namespace rs::encoding {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Pem, EncodeParseRoundTrip) {
  const auto der = bytes("not really DER but any bytes work");
  const std::string pem = pem_encode("CERTIFICATE", der);
  const auto result = pem_parse_all(pem);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_EQ(result.objects[0].label, "CERTIFICATE");
  EXPECT_EQ(result.objects[0].der, der);
}

TEST(Pem, BundleOfMultipleObjects) {
  std::vector<PemObject> objs = {
      {"CERTIFICATE", bytes("first")},
      {"CERTIFICATE", bytes("second")},
      {"X509 CRL", bytes("third")},
  };
  const std::string bundle = pem_encode_bundle(objs);
  const auto result = pem_parse_all(bundle);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.objects.size(), 3u);
  EXPECT_EQ(result.objects[1].der, bytes("second"));
  EXPECT_EQ(result.objects[2].label, "X509 CRL");
}

TEST(Pem, IgnoresProseBetweenBlocks) {
  // ca-certificates bundles interleave subject comments with blocks.
  const std::string text =
      "# Subject: CN=Example Root CA\n" + pem_encode("CERTIFICATE", bytes("a")) +
      "random prose\n" + pem_encode("CERTIFICATE", bytes("b"));
  const auto result = pem_parse_all(text);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.objects.size(), 2u);
}

TEST(Pem, ReportsMismatchedEndLabel) {
  const std::string text =
      "-----BEGIN CERTIFICATE-----\nZm9v\n-----END TRUST-----\n";
  const auto result = pem_parse_all(text);
  EXPECT_TRUE(result.objects.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("does not match"), std::string::npos);
}

TEST(Pem, ReportsUnterminatedBlock) {
  const std::string text = "-----BEGIN CERTIFICATE-----\nZm9v\n";
  const auto result = pem_parse_all(text);
  EXPECT_TRUE(result.objects.empty());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("unterminated"), std::string::npos);
}

TEST(Pem, ReportsBadBase64ButContinues) {
  const std::string text =
      "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n" +
      pem_encode("CERTIFICATE", bytes("ok"));
  const auto result = pem_parse_all(text);
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_EQ(result.objects[0].der, bytes("ok"));
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("Base64"), std::string::npos);
}

TEST(Pem, ParseFirstFiltersByLabel) {
  const std::string text = pem_encode("X509 CRL", bytes("crl")) +
                           pem_encode("CERTIFICATE", bytes("cert"));
  const auto obj = pem_parse_first(text, "CERTIFICATE");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->der, bytes("cert"));
  EXPECT_FALSE(pem_parse_first(text, "PRIVATE KEY").has_value());
}

TEST(Pem, CrlfLineEndingsAccepted) {
  std::string pem = pem_encode("CERTIFICATE", bytes("data"));
  std::string crlf;
  for (char c : pem) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  const auto result = pem_parse_all(crlf);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_EQ(result.objects[0].der, bytes("data"));
}

TEST(Pem, EmptyBodyYieldsEmptyDer) {
  const std::string text =
      "-----BEGIN CERTIFICATE-----\n-----END CERTIFICATE-----\n";
  const auto result = pem_parse_all(text);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_TRUE(result.objects[0].der.empty());
}

}  // namespace
}  // namespace rs::encoding
