// Determinism contract of the chunked parallel algorithms: fixed chunk
// plans, chunk-ordered reduction, and bitwise-stable floating-point results
// across worker counts.
#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace rs::exec {
namespace {

TEST(ChunkPlan, CoversRangeExactly) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{63}, std::size_t{64}, std::size_t{65},
                        std::size_t{1000}, std::size_t{4097}}) {
    const ChunkPlan plan = plan_chunks(n);
    if (n == 0) {
      EXPECT_EQ(plan.chunk_count, 0u);
      continue;
    }
    ASSERT_GT(plan.chunk_size, 0u);
    // Chunks tile [0, n): the last chunk ends exactly at n.
    EXPECT_GE(plan.chunk_size * plan.chunk_count, n);
    EXPECT_LT(plan.chunk_size * (plan.chunk_count - 1), n);
  }
}

TEST(ChunkPlan, SmallRangesGetOneElementChunks) {
  const ChunkPlan plan = plan_chunks(10);
  EXPECT_EQ(plan.chunk_size, 1u);
  EXPECT_EQ(plan.chunk_count, 10u);
}

TEST(ForEachChunk, ChunkBoundariesMatchPlanRegardlessOfPool) {
  const std::size_t n = 1234;
  const ChunkPlan plan = plan_chunks(n);

  auto collect = [&](ThreadPool* pool) {
    std::vector<std::pair<std::size_t, std::size_t>> bounds(plan.chunk_count);
    for_each_chunk(pool, n,
                   [&](std::size_t c, std::size_t begin, std::size_t end) {
                     bounds[c] = {begin, end};
                   });
    return bounds;
  };

  const auto serial = collect(nullptr);
  ASSERT_EQ(serial.size(), plan.chunk_count);
  EXPECT_EQ(serial.front().first, 0u);
  EXPECT_EQ(serial.back().second, n);
  for (std::size_t c = 0; c + 1 < serial.size(); ++c) {
    EXPECT_EQ(serial[c].second, serial[c + 1].first);
  }

  for (std::size_t workers : {1u, 2u, 5u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(collect(&pool), serial) << workers << " workers";
  }
}

TEST(ParallelReduce, CombinesInChunkOrder) {
  // A deliberately non-commutative combine (string concatenation): the
  // result encodes the combine order, so it only matches the serial result
  // if partials are folded in ascending chunk order.
  const std::size_t n = 100;
  auto run = [&](ThreadPool* pool) {
    return parallel_reduce(
        pool, n, std::string(),
        [](std::size_t begin, std::size_t end) {
          return "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string serial = run(nullptr);
  for (std::size_t workers : {1u, 3u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(run(&pool), serial) << workers << " workers";
  }
}

TEST(ParallelReduce, DoubleSumBitwiseStableAcrossWorkerCounts) {
  // Values spanning many magnitudes make the sum association-sensitive:
  // any change in combine order shows up in the low bits.
  const std::size_t n = 10007;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i)) *
                std::pow(10.0, static_cast<double>(i % 17) - 8.0);
  }
  auto run = [&](ThreadPool* pool) {
    return parallel_reduce(
        pool, n, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
          return acc;
        },
        [](double acc, double part) { return acc + part; });
  };
  const double serial = run(nullptr);
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(workers);
    const double parallel = run(&pool);
    EXPECT_EQ(parallel, serial) << workers << " workers";  // bitwise
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const int result = parallel_reduce(
      &pool, 0, 42, [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace rs::exec
