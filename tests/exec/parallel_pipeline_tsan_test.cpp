// Drives the parallel analysis hot paths on a simulated ecosystem so the
// TSan CI stage (ROOTSTORE_SANITIZE=thread, `ctest -L tsan`) exercises the
// real Jaccard / SMACOF / staleness / diff concurrency, not just the pool
// in isolation.  Assertions double as a serial-equivalence smoke check;
// the exhaustive suite lives in tests/analysis/parallel_equivalence_test.cpp.
#include <gtest/gtest.h>

#include "src/analysis/diffs.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/staleness.h"
#include "src/exec/thread_pool.h"
#include "src/synth/simulator.h"

namespace rs::exec {
namespace {

rs::synth::SimulatedEcosystem make_ecosystem() {
  rs::synth::SimulatorConfig cfg;
  cfg.seed = 321;
  cfg.ca_count = 50;
  cfg.program_count = 2;
  cfg.derivative_count = 2;
  cfg.snapshot_interval_days = 90;
  return rs::synth::simulate_ecosystem(cfg);
}

TEST(ParallelPipeline, JaccardAndMdsUnderContention) {
  const auto eco = make_ecosystem();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 20;

  const auto serial = rs::analysis::jaccard_matrix(eco.database, opts);
  ThreadPool pool(4);
  const auto parallel = rs::analysis::jaccard_matrix(eco.database, opts, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  EXPECT_TRUE(parallel.values == serial.values);

  const auto mds_serial = rs::analysis::smacof_mds(serial);
  const auto mds_parallel = rs::analysis::smacof_mds(serial, {}, &pool);
  ASSERT_EQ(mds_parallel.points.size(), mds_serial.points.size());
  EXPECT_EQ(mds_parallel.iterations, mds_serial.iterations);
  EXPECT_EQ(mds_parallel.stress, mds_serial.stress);
  for (std::size_t i = 0; i < mds_serial.points.size(); ++i) {
    EXPECT_EQ(mds_parallel.points[i].x, mds_serial.points[i].x);
    EXPECT_EQ(mds_parallel.points[i].y, mds_serial.points[i].y);
  }
}

TEST(ParallelPipeline, StalenessAndDiffsUnderContention) {
  const auto eco = make_ecosystem();
  const auto* base = eco.database.find(eco.base_program);
  ASSERT_NE(base, nullptr);
  const auto index = rs::analysis::build_version_index(*base);

  ThreadPool pool(4);
  for (const auto& name : eco.derivative_names) {
    const auto* deriv = eco.database.find(name);
    ASSERT_NE(deriv, nullptr);

    const auto stale_serial = rs::analysis::derivative_staleness(*deriv, index);
    const auto stale_parallel =
        rs::analysis::derivative_staleness(*deriv, index, &pool);
    EXPECT_EQ(stale_parallel.avg_versions_behind,
              stale_serial.avg_versions_behind)
        << name;
    EXPECT_EQ(stale_parallel.always_stale, stale_serial.always_stale) << name;
    ASSERT_EQ(stale_parallel.points.size(), stale_serial.points.size()) << name;

    const auto diffs_serial = rs::analysis::derivative_diffs(*deriv, *base,
                                                             index);
    const auto diffs_parallel =
        rs::analysis::derivative_diffs(*deriv, *base, index, &pool);
    EXPECT_EQ(diffs_parallel.ever_deviates, diffs_serial.ever_deviates) << name;
    ASSERT_EQ(diffs_parallel.points.size(), diffs_serial.points.size()) << name;
    for (std::size_t k = 0; k < diffs_serial.points.size(); ++k) {
      EXPECT_EQ(diffs_parallel.points[k].adds, diffs_serial.points[k].adds);
      EXPECT_EQ(diffs_parallel.points[k].removes,
                diffs_serial.points[k].removes);
    }
  }
}

TEST(ParallelPipeline, RepeatedRunsOnOnePoolStayIdentical) {
  // Re-running on a warm pool must not perturb results (no hidden state).
  const auto eco = make_ecosystem();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 10;
  ThreadPool pool(3);
  const auto first = rs::analysis::jaccard_matrix(eco.database, opts, &pool);
  for (int round = 0; round < 3; ++round) {
    const auto again = rs::analysis::jaccard_matrix(eco.database, opts, &pool);
    EXPECT_TRUE(again.values == first.values) << "round " << round;
  }
}

}  // namespace
}  // namespace rs::exec
