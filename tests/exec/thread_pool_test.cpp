// ThreadPool unit and stress tests: scheduling, exception propagation,
// nested-use rules, oversubscription, and shutdown-while-busy.  The whole
// binary carries the `tsan` ctest label so the TSan CI stage
// (ROOTSTORE_SANITIZE=thread) replays it for data-race detection.
#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rs::exec {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.submit([&] { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);

  std::vector<std::thread::id> ids(10);
  parallel_for(&pool, ids.size(),
               [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, NullPoolRunsInline) {
  std::size_t calls = 0;
  parallel_for(nullptr, 7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 7u);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(&pool, 0, [&](std::size_t) { ++calls; });
  for_each_chunk(&pool, 0,
                 [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> index{99};
  parallel_for(&pool, 1, [&](std::size_t i) {
    ++calls;
    index = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(index.load(), 0u);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 5000;  // far more chunks than workers
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesOutOfParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom at 57");
                   }),
      std::runtime_error);
  // The pool survives a failed loop and keeps executing new work.
  std::atomic<int> calls{0};
  parallel_for(&pool, 10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, AllChunksRunEvenWhenOneThrows) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::atomic<int> chunks_entered{0};
  try {
    for_each_chunk(&pool, kN,
                   [&](std::size_t c, std::size_t, std::size_t) {
                     ++chunks_entered;
                     if (c == 0) throw std::runtime_error("first chunk fails");
                   });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // for_each_chunk waits for every chunk before rethrowing, so no task is
  // left running against destroyed stack state.
  EXPECT_EQ(chunks_entered.load(),
            static_cast<int>(plan_chunks(kN).chunk_count));
}

TEST(ThreadPool, NestedSubmitFromWorkerThrows) {
  ThreadPool pool(2);
  std::atomic<bool> nested_rejected{false};
  parallel_for(&pool, 4, [&](std::size_t) {
    if (!pool.in_worker()) return;
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      nested_rejected = true;
    }
  });
  EXPECT_TRUE(nested_rejected.load());
}

TEST(ThreadPool, NestedParallelForDegradesToSerialInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  parallel_for(&pool, 8, [&](std::size_t) {
    // A nested loop on the same pool must not deadlock: it runs inline on
    // the worker that called it.
    parallel_for(&pool, 16, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, OversubscriptionMoreTasksThanWorkers) {
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++done;
      });
    }
  }  // destructor drains the backlog before joining
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ShutdownWhileBusyDrainsQueuedWork) {
  std::atomic<int> done{0};
  constexpr int kTasks = 50;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
    // Destructor runs while most tasks are still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ParallelForUsesWorkerThreadsWhenAvailable) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  parallel_for(&pool, 256, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    const std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  // All execution happened off the calling thread.
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, ManyConcurrentLoopsFromManyThreads) {
  // Stress: several caller threads share one pool.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        parallel_for(&pool, 100, [&](std::size_t) { ++total; });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4L * 20L * 100L);
}

}  // namespace
}  // namespace rs::exec
