#include "src/x509/name.h"

#include <gtest/gtest.h>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"

namespace rs::x509 {
namespace {

Name roundtrip(const Name& n) {
  rs::asn1::Writer w;
  n.encode(w);
  rs::asn1::Reader r(w.bytes());
  auto parsed = Name::parse(r);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
  return parsed.ok() ? std::move(parsed).take() : Name{};
}

TEST(Name, BuildAndAccessors) {
  Name n;
  n.add_common_name("Example Root CA").add_organization("Example").add_country(
      "US");
  EXPECT_EQ(n.common_name(), "Example Root CA");
  EXPECT_EQ(n.organization(), "Example");
  EXPECT_EQ(n.country(), "US");
  EXPECT_FALSE(n.empty());
  EXPECT_EQ(n.attributes().size(), 3u);
}

TEST(Name, FindMissingReturnsNullopt) {
  Name n;
  n.add_common_name("X");
  EXPECT_FALSE(n.organization().has_value());
  EXPECT_FALSE(n.country().has_value());
}

TEST(Name, ToStringRfc4514Style) {
  Name n;
  n.add_common_name("Root").add_organization("Org").add_country("DE");
  EXPECT_EQ(n.to_string(), "CN=Root, O=Org, C=DE");
}

TEST(Name, ToStringFallsBackToDottedOid) {
  Name n;
  n.add(*rs::asn1::Oid::from_dotted("2.5.4.7"), "Berlin");
  EXPECT_EQ(n.to_string(), "2.5.4.7=Berlin");
}

TEST(Name, DerRoundTripPreservesOrderAndKinds) {
  Name n;
  n.add_country("JP")
      .add_organization("日本のCA")
      .add_common_name("Root CA G2");
  const Name back = roundtrip(n);
  EXPECT_EQ(back, n);
  EXPECT_EQ(back.attributes()[0].kind, StringKind::kPrintable);
  EXPECT_EQ(back.attributes()[1].kind, StringKind::kUtf8);
}

TEST(Name, EmptyNameRoundTrips) {
  const Name n;
  EXPECT_EQ(roundtrip(n), n);
}

TEST(Name, EqualityIsStructural) {
  Name a, b;
  a.add_common_name("X");
  b.add_common_name("X");
  EXPECT_EQ(a, b);
  b.add_country("US");
  EXPECT_NE(a, b);
  // Same attributes in different order differ (DNs are ordered).
  Name c, d;
  c.add_common_name("X").add_country("US");
  d.add_country("US").add_common_name("X");
  EXPECT_NE(c, d);
}

TEST(Name, EquivalentFoldsCaseAndWhitespace) {
  Name exact, mangled;
  exact.add_common_name("Foo Root CA").add_organization("Foo").add_country(
      "US");
  // Mixed case, doubled internal spaces, outer padding, and a different
  // string kind must all still match (RFC 5280 caseIgnoreMatch).
  mangled.add(rs::asn1::oids::common_name(), "  FOO  ROOT ca ",
              StringKind::kPrintable);
  mangled.add_organization("fOO");
  mangled.add_country("us");
  EXPECT_TRUE(exact.equivalent(mangled));
  EXPECT_TRUE(mangled.equivalent(exact));
  EXPECT_NE(exact, mangled);  // byte-exact equality still distinguishes

  Name different;
  different.add_common_name("Foo Root CA 2").add_organization("Foo")
      .add_country("US");
  EXPECT_FALSE(exact.equivalent(different));
  // Attribute order and count still matter: DNs are ordered sequences.
  Name reordered;
  reordered.add_organization("Foo").add_common_name("Foo Root CA")
      .add_country("US");
  EXPECT_FALSE(exact.equivalent(reordered));
  Name shorter;
  shorter.add_common_name("Foo Root CA");
  EXPECT_FALSE(exact.equivalent(shorter));
}

TEST(Name, EquivalentIgnoresInnerSpaceCountButNotLetters) {
  Name a, b, c;
  a.add_common_name("Mixed Case Intermediate");
  b.add_common_name("MIXED case    INTERMEDIATE");
  c.add_common_name("MixedCase Intermediate");  // missing space joins words
  EXPECT_TRUE(a.equivalent(b));
  EXPECT_FALSE(a.equivalent(c));
}

TEST(Name, ParseRejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0x30, 0x03, 0x02, 0x01, 0x05};
  rs::asn1::Reader r(junk);
  EXPECT_FALSE(Name::parse(r).ok());
}

}  // namespace
}  // namespace rs::x509
