#include "src/x509/lint.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::x509 {
namespace {

using rs::util::Date;

bool has_check(const std::vector<LintFinding>& findings,
               std::string_view check) {
  for (const auto& f : findings) {
    if (f.check == check) return true;
  }
  return false;
}

CertificateBuilder clean_builder() {
  Name n;
  n.add_common_name("Clean Root CA").add_organization("Clean Org");
  CertificateBuilder b;
  b.subject(n)
      .serial_number(42)
      .not_before(Date::ymd(2015, 1, 1))
      .not_after(Date::ymd(2040, 1, 1))
      .key_seed(1);
  return b;
}

TEST(Lint, CleanModernRootOnlyGetsInfoAtWorst) {
  const auto findings = lint_root(clean_builder().build());
  for (const auto& f : findings) {
    EXPECT_NE(f.severity, LintSeverity::kError) << f.check << ": " << f.message;
  }
  // RSA-2048 info is expected.
  EXPECT_TRUE(has_check(findings, "root.rsa_2048"));
}

TEST(Lint, Md5SignatureIsError) {
  const auto findings = lint_root(
      clean_builder().signature_scheme(SignatureScheme::kMd5Rsa).build());
  EXPECT_TRUE(has_check(findings, "root.md5_signature"));
  EXPECT_GE(lint_score(findings), 10);
}

TEST(Lint, Sha1SignatureIsWarning) {
  const auto findings = lint_root(
      clean_builder().signature_scheme(SignatureScheme::kSha1Rsa).build());
  EXPECT_TRUE(has_check(findings, "root.sha1_signature"));
  for (const auto& f : findings) {
    if (f.check == "root.sha1_signature") {
      EXPECT_EQ(f.severity, LintSeverity::kWarning);
    }
  }
}

TEST(Lint, WeakRsaKeyIsError) {
  const auto findings = lint_root(clean_builder().rsa_bits(1024).build());
  EXPECT_TRUE(has_check(findings, "root.rsa_key_too_small"));
}

TEST(Lint, EcKeyHasNoRsaFindings) {
  const auto findings = lint_root(
      clean_builder().signature_scheme(SignatureScheme::kEcdsaSha256).build());
  EXPECT_FALSE(has_check(findings, "root.rsa_key_too_small"));
  EXPECT_FALSE(has_check(findings, "root.rsa_2048"));
}

TEST(Lint, ExpiredRootFlagged) {
  const auto cert = clean_builder()
                        .not_before(Date::ymd(2000, 1, 1))
                        .not_after(Date::ymd(2018, 1, 1))
                        .build();
  LintOptions opts;
  opts.now = Date::ymd(2021, 5, 1);
  EXPECT_TRUE(has_check(lint_root(cert, opts), "root.expired"));
  opts.now = Date::ymd(2017, 1, 1);
  EXPECT_FALSE(has_check(lint_root(cert, opts), "root.expired"));
}

TEST(Lint, ExcessiveValidityWarned) {
  const auto cert = clean_builder()
                        .not_before(Date::ymd(2000, 1, 1))
                        .not_after(Date::ymd(2045, 1, 1))
                        .build();
  EXPECT_TRUE(has_check(lint_root(cert), "root.validity_excessive"));
  LintOptions opts;
  opts.max_validity_years = 50;
  EXPECT_FALSE(has_check(lint_root(cert, opts), "root.validity_excessive"));
}

TEST(Lint, V1CertificateWarned) {
  const auto findings = lint_root(clean_builder().version1(true).build());
  EXPECT_TRUE(has_check(findings, "root.v1_certificate"));
  // v1 has no extensions, so no missing-BasicConstraints *error*.
  EXPECT_FALSE(has_check(findings, "root.missing_basic_constraints"));
}

TEST(Lint, CrossCertificateWarned) {
  Name issuer;
  issuer.add_common_name("Different Parent");
  const auto findings =
      lint_root(clean_builder().issuer(issuer).build());
  EXPECT_TRUE(has_check(findings, "root.not_self_issued"));
}

TEST(Lint, EkuOnRootIsInfo) {
  const auto findings = lint_root(
      clean_builder()
          .add_eku({rs::asn1::oids::eku_server_auth()})
          .build());
  EXPECT_TRUE(has_check(findings, "root.eku_present"));
}

TEST(Lint, AnonymousSubjectWarned) {
  Name n;
  n.add_country("US");  // neither CN nor O
  const auto findings =
      lint_root(CertificateBuilder().subject(n).key_seed(9).build());
  EXPECT_TRUE(has_check(findings, "root.anonymous_subject"));
}

TEST(Lint, DuplicateExtensionIsError) {
  SubjectKeyIdentifier ski{{1, 2, 3}};
  const auto cert =
      clean_builder()
          .add_extension({rs::asn1::oids::subject_key_id(), false, ski.encode()})
          .add_extension({rs::asn1::oids::subject_key_id(), false, ski.encode()})
          .build();
  EXPECT_TRUE(has_check(lint_root(cert), "root.duplicate_extension"));
}

TEST(Lint, MissingSkiIsInfo) {
  const auto findings = lint_root(clean_builder().build());
  EXPECT_TRUE(has_check(findings, "root.missing_ski"));
  SubjectKeyIdentifier ski{{1, 2, 3}};
  const auto with_ski =
      clean_builder()
          .add_extension({rs::asn1::oids::subject_key_id(), false, ski.encode()})
          .build();
  EXPECT_FALSE(has_check(lint_root(with_ski), "root.missing_ski"));
}

TEST(Lint, FindingsOrderedBySeverity) {
  const auto findings = lint_root(clean_builder()
                                      .signature_scheme(SignatureScheme::kMd5Rsa)
                                      .rsa_bits(1024)
                                      .version1(true)
                                      .build());
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(static_cast<int>(findings[i - 1].severity),
              static_cast<int>(findings[i].severity));
  }
}

TEST(Lint, ScoreWeights) {
  std::vector<LintFinding> findings = {
      {"a", LintSeverity::kError, ""},
      {"b", LintSeverity::kWarning, ""},
      {"c", LintSeverity::kInfo, ""},
  };
  EXPECT_EQ(lint_score(findings), 14);
  EXPECT_EQ(lint_score({}), 0);
}

TEST(Lint, SeverityNames) {
  EXPECT_STREQ(to_string(LintSeverity::kInfo), "info");
  EXPECT_STREQ(to_string(LintSeverity::kWarning), "warning");
  EXPECT_STREQ(to_string(LintSeverity::kError), "error");
}

}  // namespace
}  // namespace rs::x509
