#include "src/x509/builder.h"

#include <gtest/gtest.h>

#include "src/x509/certificate.h"

namespace rs::x509 {
namespace {

namespace oids = rs::asn1::oids;
using rs::util::Date;

Name subject(const std::string& cn) {
  Name n;
  n.add_common_name(cn);
  return n;
}

TEST(Builder, DeterministicOutput) {
  auto make = [] {
    return CertificateBuilder()
        .subject(subject("Det Root"))
        .serial_number(1)
        .key_seed(42)
        .build_der();
  };
  EXPECT_EQ(make(), make());
}

TEST(Builder, KeySeedChangesKeyAndSignature) {
  const Certificate a =
      CertificateBuilder().subject(subject("A")).key_seed(1).build();
  const Certificate b =
      CertificateBuilder().subject(subject("A")).key_seed(2).build();
  EXPECT_NE(a.public_key().key_material(), b.public_key().key_material());
  EXPECT_NE(a.signature(), b.signature());
}

class SchemeTest : public ::testing::TestWithParam<SignatureScheme> {};

TEST_P(SchemeTest, EmitsParseableCertWithMatchingOid) {
  const Certificate c = CertificateBuilder()
                            .subject(subject("Scheme Root"))
                            .signature_scheme(GetParam())
                            .build();
  switch (GetParam()) {
    case SignatureScheme::kMd5Rsa:
      EXPECT_EQ(c.signature_algorithm(), oids::md5_with_rsa());
      break;
    case SignatureScheme::kSha1Rsa:
      EXPECT_EQ(c.signature_algorithm(), oids::sha1_with_rsa());
      break;
    case SignatureScheme::kSha256Rsa:
      EXPECT_EQ(c.signature_algorithm(), oids::sha256_with_rsa());
      break;
    case SignatureScheme::kEcdsaSha256:
      EXPECT_EQ(c.signature_algorithm(), oids::ecdsa_with_sha256());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeTest,
                         ::testing::Values(SignatureScheme::kMd5Rsa,
                                           SignatureScheme::kSha1Rsa,
                                           SignatureScheme::kSha256Rsa,
                                           SignatureScheme::kEcdsaSha256));

TEST(Builder, SignatureWidthMatchesScheme) {
  const Certificate rsa2048 = CertificateBuilder()
                                  .subject(subject("R"))
                                  .rsa_bits(2048)
                                  .build();
  EXPECT_EQ(rsa2048.signature().size(), 256u);
  const Certificate rsa1024 = CertificateBuilder()
                                  .subject(subject("R"))
                                  .rsa_bits(1024)
                                  .build();
  EXPECT_EQ(rsa1024.signature().size(), 128u);
  const Certificate ec = CertificateBuilder()
                             .subject(subject("R"))
                             .signature_scheme(SignatureScheme::kEcdsaSha256)
                             .build();
  EXPECT_EQ(ec.signature().size(), 72u);
}

TEST(Builder, SeparateIssuerSupported) {
  const Certificate c = CertificateBuilder()
                            .subject(subject("Leafish"))
                            .issuer(subject("Parent CA"))
                            .build();
  EXPECT_FALSE(c.is_self_issued());
  EXPECT_EQ(c.issuer().common_name(), "Parent CA");
}

TEST(Builder, Version1OmitsExtensionsAndVersionField) {
  const Certificate v1 = CertificateBuilder()
                             .subject(subject("Old Root"))
                             .version1(true)
                             .build();
  EXPECT_EQ(v1.version(), 1);
  EXPECT_TRUE(v1.extensions().empty());
}

TEST(Builder, V3GetsDefaultCaExtensions) {
  const Certificate v3 = CertificateBuilder().subject(subject("New Root")).build();
  EXPECT_EQ(v3.version(), 3);
  const Extension* bc =
      find_extension(v3.extensions(), oids::basic_constraints());
  ASSERT_NE(bc, nullptr);
  EXPECT_TRUE(bc->critical);
  const Extension* ku = find_extension(v3.extensions(), oids::key_usage());
  ASSERT_NE(ku, nullptr);
  auto parsed_ku = KeyUsage::parse(ku->value);
  ASSERT_TRUE(parsed_ku.ok());
  EXPECT_TRUE(parsed_ku.value().key_cert_sign);
}

TEST(Builder, CustomExtensionPreserved) {
  SubjectKeyIdentifier ski{{0xAA, 0xBB, 0xCC}};
  const Certificate c =
      CertificateBuilder()
          .subject(subject("With SKI"))
          .add_extension({oids::subject_key_id(), false, ski.encode()})
          .build();
  const Extension* found =
      find_extension(c.extensions(), oids::subject_key_id());
  ASSERT_NE(found, nullptr);
  auto parsed = SubjectKeyIdentifier::parse(found->value);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().key_id, ski.key_id);
}

TEST(Builder, PoliciesExtensionRoundTrips) {
  const auto ev = *rs::asn1::Oid::from_dotted("2.23.140.1.1");
  const Certificate c = CertificateBuilder()
                            .subject(subject("EV Root"))
                            .add_policies({ev})
                            .build();
  const auto policies = c.certificate_policies();
  ASSERT_TRUE(policies.has_value());
  EXPECT_TRUE(policies->asserts(ev));
  const Certificate plain = CertificateBuilder().subject(subject("P")).build();
  EXPECT_FALSE(plain.certificate_policies().has_value());
}

TEST(Builder, ValidityDatesAcrossUtcPivot) {
  const Certificate c = CertificateBuilder()
                            .subject(subject("Long Root"))
                            .not_before(Date::ymd(1998, 5, 1))
                            .not_after(Date::ymd(2052, 5, 1))
                            .build();
  EXPECT_EQ(c.validity().not_before.date, Date::ymd(1998, 5, 1));
  EXPECT_EQ(c.validity().not_after.date, Date::ymd(2052, 5, 1));
}

}  // namespace
}  // namespace rs::x509
