#include "src/x509/extensions.h"

#include <gtest/gtest.h>

namespace rs::x509 {
namespace {

namespace oids = rs::asn1::oids;

TEST(BasicConstraints, RoundTripCa) {
  const BasicConstraints bc{true, std::nullopt};
  auto parsed = BasicConstraints::parse(bc.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ca);
  EXPECT_FALSE(parsed.value().path_len.has_value());
}

TEST(BasicConstraints, RoundTripWithPathLen) {
  const BasicConstraints bc{true, 3};
  auto parsed = BasicConstraints::parse(bc.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ca);
  EXPECT_EQ(parsed.value().path_len, 3);
}

TEST(BasicConstraints, DefaultFalseOmittedInDer) {
  const BasicConstraints bc{false, std::nullopt};
  const auto der = bc.encode();
  // SEQUENCE {} => 30 00
  const std::vector<std::uint8_t> expected = {0x30, 0x00};
  EXPECT_EQ(der, expected);
  auto parsed = BasicConstraints::parse(der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ca);
}

TEST(BasicConstraints, RejectsTrailingData) {
  auto der = BasicConstraints{true, 1}.encode();
  // Manually extend the sequence with junk: rebuild with an extra INTEGER.
  der[1] = static_cast<std::uint8_t>(der[1] + 3);
  der.push_back(0x02);
  der.push_back(0x01);
  der.push_back(0x07);
  EXPECT_FALSE(BasicConstraints::parse(der).ok());
}

TEST(KeyUsage, RoundTripAllCombinations) {
  for (int bits = 0; bits < 8; ++bits) {
    KeyUsage ku;
    ku.digital_signature = bits & 1;
    ku.key_cert_sign = bits & 2;
    ku.crl_sign = bits & 4;
    auto parsed = KeyUsage::parse(ku.encode());
    ASSERT_TRUE(parsed.ok()) << bits;
    EXPECT_EQ(parsed.value(), ku) << bits;
  }
}

TEST(KeyUsage, NamedBitListTruncatesTrailingZeros) {
  KeyUsage ku;
  ku.digital_signature = true;  // bit 0 only
  const auto der = ku.encode();
  // BIT STRING 03 02 07 80: one payload byte, 7 unused bits.
  const std::vector<std::uint8_t> expected = {0x03, 0x02, 0x07, 0x80};
  EXPECT_EQ(der, expected);
}

TEST(ExtendedKeyUsage, RoundTripAndPermits) {
  ExtendedKeyUsage eku{{oids::eku_server_auth(), oids::eku_client_auth()}};
  auto parsed = ExtendedKeyUsage::parse(eku.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().purposes.size(), 2u);
  EXPECT_TRUE(parsed.value().permits(oids::eku_server_auth()));
  EXPECT_FALSE(parsed.value().permits(oids::eku_code_signing()));
}

TEST(ExtendedKeyUsage, AnyEkuPermitsEverything) {
  ExtendedKeyUsage eku{{oids::eku_any()}};
  EXPECT_TRUE(eku.permits(oids::eku_server_auth()));
  EXPECT_TRUE(eku.permits(oids::eku_time_stamping()));
}

TEST(ExtendedKeyUsage, EmptyListRejected) {
  ExtendedKeyUsage empty{{}};
  EXPECT_FALSE(ExtendedKeyUsage::parse(empty.encode()).ok());
}

TEST(CertificatePolicies, RoundTripAndAsserts) {
  const auto ev = *rs::asn1::Oid::from_dotted("2.23.140.1.1");
  const auto dv = *rs::asn1::Oid::from_dotted("2.23.140.1.2.1");
  CertificatePolicies cp{{ev, dv}};
  auto parsed = CertificatePolicies::parse(cp.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().policy_ids.size(), 2u);
  EXPECT_TRUE(parsed.value().asserts(ev));
  EXPECT_FALSE(parsed.value().asserts(*rs::asn1::Oid::from_dotted("1.2.3")));
}

TEST(CertificatePolicies, AnyPolicyAssertsEverything) {
  CertificatePolicies cp{{any_policy()}};
  EXPECT_TRUE(cp.asserts(*rs::asn1::Oid::from_dotted("2.23.140.1.1")));
}

TEST(CertificatePolicies, EmptyListRejected) {
  CertificatePolicies empty{{}};
  EXPECT_FALSE(CertificatePolicies::parse(empty.encode()).ok());
}

TEST(CertificatePolicies, QualifiersSkippedOpaquely) {
  // PolicyInformation with a qualifier sequence after the OID.
  rs::asn1::Writer info;
  info.add_oid(*rs::asn1::Oid::from_dotted("2.23.140.1.1"));
  rs::asn1::Writer qualifiers;
  qualifiers.add_ia5_string("https://example.com/cps");
  info.add_sequence(qualifiers);
  rs::asn1::Writer body;
  body.add_sequence(info);
  rs::asn1::Writer seq;
  seq.add_sequence(body);
  auto parsed = CertificatePolicies::parse(seq.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().policy_ids.size(), 1u);
}

TEST(SubjectKeyIdentifier, RoundTrip) {
  SubjectKeyIdentifier ski{{1, 2, 3, 4, 5}};
  auto parsed = SubjectKeyIdentifier::parse(ski.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().key_id, ski.key_id);
}

TEST(AuthorityKeyIdentifier, RoundTrip) {
  AuthorityKeyIdentifier aki{{9, 8, 7}};
  auto parsed = AuthorityKeyIdentifier::parse(aki.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().key_id, aki.key_id);
}

TEST(FindExtension, LocatesByOid) {
  std::vector<Extension> exts = {
      {oids::basic_constraints(), true, {0x30, 0x00}},
      {oids::key_usage(), true, {0x03, 0x02, 0x07, 0x80}},
  };
  EXPECT_NE(find_extension(exts, oids::key_usage()), nullptr);
  EXPECT_EQ(find_extension(exts, oids::ext_key_usage()), nullptr);
  EXPECT_EQ(find_extension({}, oids::key_usage()), nullptr);
}

}  // namespace
}  // namespace rs::x509
