#include "src/x509/public_key.h"

#include <gtest/gtest.h>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/crypto/prng.h"

namespace rs::x509 {
namespace {

PublicKey roundtrip(const PublicKey& k) {
  rs::asn1::Writer w;
  k.encode(w);
  rs::asn1::Reader r(w.bytes());
  auto parsed = PublicKey::parse(r);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
  return parsed.ok() ? std::move(parsed).take() : PublicKey{};
}

class RsaBitsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsaBitsTest, SynthesizedModulusHasExactBitLength) {
  rs::crypto::Prng rng(GetParam());
  const PublicKey k = PublicKey::synth_rsa(rng, GetParam());
  EXPECT_EQ(k.algorithm(), KeyAlgorithm::kRsa);
  EXPECT_EQ(k.bits(), GetParam());
  const PublicKey back = roundtrip(k);
  EXPECT_EQ(back.bits(), GetParam());
  EXPECT_EQ(back, k);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaBitsTest,
                         ::testing::Values(512u, 1024u, 2048u, 4096u));

TEST(PublicKey, EcCurves) {
  rs::crypto::Prng rng(1);
  const PublicKey p256 = PublicKey::synth_ec(rng, KeyAlgorithm::kEcP256);
  EXPECT_EQ(p256.bits(), 256u);
  EXPECT_EQ(p256.key_material().size(), 65u);
  EXPECT_EQ(p256.key_material()[0], 0x04);
  EXPECT_EQ(roundtrip(p256), p256);

  const PublicKey p384 = PublicKey::synth_ec(rng, KeyAlgorithm::kEcP384);
  EXPECT_EQ(p384.bits(), 384u);
  EXPECT_EQ(p384.key_material().size(), 97u);
  EXPECT_EQ(roundtrip(p384), p384);
}

TEST(PublicKey, DeterministicFromSeed) {
  rs::crypto::Prng a(99), b(99);
  EXPECT_EQ(PublicKey::synth_rsa(a, 2048), PublicKey::synth_rsa(b, 2048));
  rs::crypto::Prng c(100);
  EXPECT_NE(PublicKey::synth_rsa(c, 2048).key_material(),
            PublicKey::synth_rsa(b, 2048).key_material());
}

TEST(PublicKey, ParseRejectsUnknownAlgorithm) {
  rs::asn1::Writer alg;
  alg.add_oid(*rs::asn1::Oid::from_dotted("1.2.3.4"));
  alg.add_null();
  rs::asn1::Writer spki;
  spki.add_sequence(alg);
  spki.add_bit_string(std::vector<std::uint8_t>{1, 2, 3});
  rs::asn1::Writer top;
  top.add_sequence(spki);
  rs::asn1::Reader r(top.bytes());
  auto parsed = PublicKey::parse(r);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("unsupported key algorithm"),
            std::string::npos);
}

TEST(PublicKey, ParseRejectsUnknownCurve) {
  rs::asn1::Writer alg;
  alg.add_oid(rs::asn1::oids::ec_public_key());
  alg.add_oid(*rs::asn1::Oid::from_dotted("1.3.132.0.10"));  // secp256k1
  rs::asn1::Writer spki;
  spki.add_sequence(alg);
  spki.add_bit_string(std::vector<std::uint8_t>{0x04, 1, 2});
  rs::asn1::Writer top;
  top.add_sequence(spki);
  rs::asn1::Reader r(top.bytes());
  EXPECT_FALSE(PublicKey::parse(r).ok());
}

TEST(PublicKey, ParseRejectsMisalignedBitString) {
  rs::crypto::Prng rng(5);
  const PublicKey k = PublicKey::synth_rsa(rng, 1024);
  rs::asn1::Writer alg;
  alg.add_oid(rs::asn1::oids::rsa_encryption());
  alg.add_null();
  rs::asn1::Writer spki;
  spki.add_sequence(alg);
  spki.add_bit_string(k.key_material(), 4);  // 4 unused bits: invalid for SPKI
  rs::asn1::Writer top;
  top.add_sequence(spki);
  rs::asn1::Reader r(top.bytes());
  EXPECT_FALSE(PublicKey::parse(r).ok());
}

TEST(PublicKey, AlgorithmNames) {
  EXPECT_STREQ(to_string(KeyAlgorithm::kRsa), "RSA");
  EXPECT_STREQ(to_string(KeyAlgorithm::kEcP256), "EC P-256");
  EXPECT_STREQ(to_string(KeyAlgorithm::kEcP384), "EC P-384");
}

}  // namespace
}  // namespace rs::x509
