#include "src/x509/certificate.h"

#include <gtest/gtest.h>

#include "src/asn1/time.h"
#include "src/asn1/writer.h"
#include "src/x509/builder.h"

namespace rs::x509 {
namespace {

namespace oids = rs::asn1::oids;
using rs::util::Date;

CertificateBuilder base_builder() {
  CertificateBuilder b;
  Name subject;
  subject.add_common_name("Test Root CA").add_organization("Test Org");
  b.subject(subject)
      .serial_number(12345)
      .not_before(Date::ymd(2010, 1, 1))
      .not_after(Date::ymd(2030, 1, 1))
      .key_seed(7);
  return b;
}

TEST(Certificate, ParseRecoversTbsFields) {
  const Certificate c = base_builder().build();
  EXPECT_EQ(c.version(), 3);
  EXPECT_EQ(c.subject().common_name(), "Test Root CA");
  EXPECT_TRUE(c.is_self_issued());
  EXPECT_EQ(c.validity().not_before.date, Date::ymd(2010, 1, 1));
  EXPECT_EQ(c.validity().not_after.date, Date::ymd(2030, 1, 1));
  EXPECT_EQ(c.signature_algorithm(), oids::sha256_with_rsa());
  EXPECT_EQ(c.public_key().bits(), 2048u);
  ASSERT_FALSE(c.serial().empty());
}

TEST(Certificate, FingerprintsAreStableAndDistinct) {
  const Certificate a = base_builder().build();
  const Certificate b = base_builder().build();
  EXPECT_EQ(a.sha256(), b.sha256());  // deterministic build
  const Certificate c = base_builder().serial_number(99).build();
  EXPECT_NE(a.sha256(), c.sha256());
  EXPECT_NE(a.sha1(), c.sha1());
  EXPECT_NE(a.md5(), c.md5());
  EXPECT_EQ(a.short_id().size(), 8u);
}

TEST(Certificate, ExpiryPredicates) {
  const Certificate c = base_builder().build();
  EXPECT_FALSE(c.is_expired_at(Date::ymd(2020, 6, 1)));
  EXPECT_TRUE(c.is_expired_at(Date::ymd(2030, 1, 2)));
  EXPECT_TRUE(c.is_valid_at(Date::ymd(2010, 1, 1)));
  EXPECT_TRUE(c.is_valid_at(Date::ymd(2030, 1, 1)));
  EXPECT_FALSE(c.is_valid_at(Date::ymd(2009, 12, 31)));
  EXPECT_FALSE(c.is_valid_at(Date::ymd(2031, 1, 1)));
}

TEST(Certificate, HygienePredicates) {
  const Certificate md5_cert =
      base_builder().signature_scheme(SignatureScheme::kMd5Rsa).build();
  EXPECT_TRUE(md5_cert.has_md5_signature());
  EXPECT_EQ(md5_cert.signature_algorithm(), oids::md5_with_rsa());

  const Certificate weak = base_builder().rsa_bits(1024).build();
  EXPECT_TRUE(weak.has_weak_rsa_key());
  EXPECT_FALSE(weak.has_md5_signature());

  const Certificate strong = base_builder().build();
  EXPECT_FALSE(strong.has_weak_rsa_key());

  const Certificate ec =
      base_builder().signature_scheme(SignatureScheme::kEcdsaSha256).build();
  EXPECT_FALSE(ec.has_weak_rsa_key());  // EC is not "weak RSA"
  EXPECT_EQ(ec.public_key().algorithm(), KeyAlgorithm::kEcP256);
}

TEST(Certificate, CaBitFromBasicConstraints) {
  const Certificate v3 = base_builder().build();
  EXPECT_TRUE(v3.is_ca());  // builder injects CA:TRUE for v3 roots
  const Certificate v1 = base_builder().version1(true).build();
  EXPECT_EQ(v1.version(), 1);
  EXPECT_TRUE(v1.is_ca());  // legacy v1 roots treated as CAs
  EXPECT_TRUE(v1.extensions().empty());
}

TEST(Certificate, EkuExtraction) {
  const Certificate with_eku =
      base_builder()
          .add_eku({oids::eku_server_auth(), oids::eku_email_protection()})
          .build();
  const auto eku = with_eku.extended_key_usage();
  ASSERT_TRUE(eku.has_value());
  EXPECT_TRUE(eku->permits(oids::eku_server_auth()));
  EXPECT_TRUE(eku->permits(oids::eku_email_protection()));
  EXPECT_FALSE(eku->permits(oids::eku_code_signing()));

  const Certificate without = base_builder().build();
  EXPECT_FALSE(without.extended_key_usage().has_value());
}

TEST(Certificate, ParseRejectsTrailingGarbage) {
  auto der = base_builder().build_der();
  der.push_back(0x00);
  EXPECT_FALSE(Certificate::parse(der).ok());
}

TEST(Certificate, ParseRejectsTruncation) {
  auto der = base_builder().build_der();
  for (std::size_t cut : {der.size() - 1, der.size() / 2, std::size_t{5}}) {
    std::vector<std::uint8_t> trunc(der.begin(),
                                    der.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Certificate::parse(trunc).ok()) << cut;
  }
}

TEST(Certificate, ParseRejectsBitFlipsInStructure) {
  // Flipping the outer tag or TBS tag must fail; content flips may legally
  // still parse (e.g., inside key material), so only structural bytes here.
  auto der = base_builder().build_der();
  auto flipped = der;
  flipped[0] = 0x31;  // SET instead of SEQUENCE
  EXPECT_FALSE(Certificate::parse(flipped).ok());
}

TEST(Certificate, SkipsIssuerAndSubjectUniqueIds) {
  // Hand-assemble a v2-style TBS with [1]/[2] IMPLICIT unique identifiers,
  // which RFC 5280 permits and real legacy roots occasionally carry.
  const Certificate base = base_builder().build();
  // Rebuild the certificate DER by splicing unique-ID elements after the
  // SPKI.  Easier: construct from scratch with the writer.
  rs::asn1::Writer tbs;
  {
    rs::asn1::Writer v;
    v.add_small_integer(1);  // v2
    tbs.add_context(0, v);
  }
  tbs.add_small_integer(7);
  {
    rs::asn1::Writer alg;
    alg.add_oid(oids::sha256_with_rsa());
    alg.add_null();
    tbs.add_sequence(alg);
  }
  Name name;
  name.add_common_name("UniqueId Root");
  name.encode(tbs);
  {
    rs::asn1::Writer validity;
    rs::asn1::write_time(validity,
                         rs::asn1::at_midnight(Date::ymd(2010, 1, 1)));
    rs::asn1::write_time(validity,
                         rs::asn1::at_midnight(Date::ymd(2030, 1, 1)));
    tbs.add_sequence(validity);
  }
  name.encode(tbs);
  base.public_key().encode(tbs);
  // issuerUniqueID [1] IMPLICIT BIT STRING, subjectUniqueID [2].
  const std::vector<std::uint8_t> uid = {0x00, 0xAB, 0xCD};
  tbs.add_context_primitive(1, uid);
  tbs.add_context_primitive(2, uid);

  rs::asn1::Writer cert;
  {
    rs::asn1::Writer wrapped;
    wrapped.add_sequence(tbs);
    cert.add_raw(wrapped.bytes());
  }
  {
    rs::asn1::Writer alg;
    alg.add_oid(oids::sha256_with_rsa());
    alg.add_null();
    cert.add_sequence(alg);
  }
  cert.add_bit_string(std::vector<std::uint8_t>(64, 0x42));
  rs::asn1::Writer top;
  top.add_sequence(cert);

  auto parsed = Certificate::parse(top.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().version(), 2);
  EXPECT_EQ(parsed.value().subject().common_name(), "UniqueId Root");
}

TEST(Certificate, EqualityIsByDer) {
  const Certificate a = base_builder().build();
  const Certificate b = base_builder().build();
  EXPECT_EQ(a, b);
  const Certificate c = base_builder().key_seed(8).build();
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace rs::x509
