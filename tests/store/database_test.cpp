#include "src/store/database.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::store {
namespace {

using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("DB Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(std::string provider, Date date, std::vector<TrustEntry> entries) {
  Snapshot s;
  s.provider = std::move(provider);
  s.date = date;
  s.entries = std::move(entries);
  return s;
}

StoreDatabase make_db() {
  auto shared = make_cert(1);
  auto a_only = make_cert(2);
  auto removed = make_cert(3);

  StoreDatabase db;
  {
    ProviderHistory h("A");
    h.add(snap("A", Date::ymd(2019, 1, 1),
               {make_tls_anchor(shared), make_tls_anchor(removed)}));
    h.add(snap("A", Date::ymd(2020, 1, 1),
               {make_tls_anchor(shared), make_tls_anchor(a_only)}));
    db.add(std::move(h));
  }
  {
    ProviderHistory h("B");
    h.add(snap("B", Date::ymd(2019, 6, 1), {make_tls_anchor(shared)}));
    db.add(std::move(h));
  }
  return db;
}

TEST(StoreDatabase, ProvidersAndCounts) {
  const StoreDatabase db = make_db();
  EXPECT_EQ(db.provider_count(), 2u);
  EXPECT_EQ(db.total_snapshots(), 3u);
  const auto names = db.providers();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");
  EXPECT_EQ(names[1], "B");
  EXPECT_NE(db.find("A"), nullptr);
  EXPECT_EQ(db.find("Z"), nullptr);
}

TEST(StoreDatabase, AddReplacesExistingProvider) {
  StoreDatabase db = make_db();
  ProviderHistory h("A");
  h.add(snap("A", Date::ymd(2021, 1, 1), {}));
  db.add(std::move(h));
  EXPECT_EQ(db.provider_count(), 2u);
  EXPECT_EQ(db.find("A")->size(), 1u);
}

TEST(StoreDatabase, CertificateLookup) {
  const StoreDatabase db = make_db();
  auto shared = make_cert(1);
  auto found = db.certificate(shared->sha256());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->sha256(), shared->sha256());
  EXPECT_EQ(db.certificate(make_cert(99)->sha256()), nullptr);
}

TEST(StoreDatabase, TlsPresenceIntervals) {
  const StoreDatabase db = make_db();
  auto shared = make_cert(1);
  const auto presence = db.tls_presence(shared->sha256());
  ASSERT_EQ(presence.size(), 2u);
  EXPECT_EQ(presence[0].provider, "A");
  EXPECT_EQ(presence[0].first_seen, Date::ymd(2019, 1, 1));
  EXPECT_EQ(presence[0].last_seen, Date::ymd(2020, 1, 1));
  EXPECT_TRUE(presence[0].in_latest);

  auto removed = make_cert(3);
  const auto removed_presence = db.tls_presence(removed->sha256());
  ASSERT_EQ(removed_presence.size(), 1u);
  EXPECT_EQ(removed_presence[0].last_seen, Date::ymd(2019, 1, 1));
  EXPECT_FALSE(removed_presence[0].in_latest);
}

TEST(StoreDatabase, EverSets) {
  const StoreDatabase db = make_db();
  EXPECT_EQ(db.all_tls_roots_ever().size(), 3u);
  EXPECT_EQ(db.tls_roots_ever("A").size(), 3u);
  EXPECT_EQ(db.tls_roots_ever("B").size(), 1u);
  EXPECT_EQ(db.tls_roots_ever("missing").size(), 0u);
}

}  // namespace
}  // namespace rs::store
