// Unit coverage of the RSIX persistence substrate: the hash, the
// bounds-checked primitives, the file framing, atomic writes, memory maps,
// and the store-type codecs.  The fault-injection battery over whole index
// files lives in tests/query/persist_fault_test.cpp.
#include "src/store/persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/store/id_set.h"

namespace rs::store::persist {
namespace {

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Hash64, MatchesXxh64EmptyStringVector) {
  // The canonical XXH64 test vector: the empty input under seed 0.
  EXPECT_EQ(hash64(std::string_view{}), 0xEF46DB3751D8E999ULL);
}

TEST(Hash64, DeterministicAndSensitive) {
  const std::string base(100, 'x');
  EXPECT_EQ(hash64(base), hash64(base));
  // Every prefix length hashes differently (covers the <32-byte tail path,
  // the 8/4/1-byte finishers, and the 32-byte lane loop).
  std::set<std::uint64_t> seen;
  for (std::size_t n = 0; n <= base.size(); ++n) {
    seen.insert(hash64(std::string_view(base).substr(0, n)));
  }
  EXPECT_EQ(seen.size(), base.size() + 1);
  // Seed changes the value; single-bit input changes the value.
  EXPECT_NE(hash64(base, 1), hash64(base, 0));
  std::string flipped = base;
  flipped[57] ^= 1;
  EXPECT_NE(hash64(flipped), hash64(base));
}

TEST(ByteRoundTrip, PrimitivesAndStrings) {
  ByteWriter w;
  w.u32(0);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.str("");
  w.str("certdata");
  const std::string bytes = std::move(w).take();

  ByteReader r(as_span(bytes));
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(16, "a"), "");
  EXPECT_EQ(r.str(16, "b"), "certdata");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.finished());
}

TEST(ByteRoundTrip, LittleEndianOnTheWire) {
  ByteWriter w;
  w.u32(0x04030201u);
  const std::string bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(ByteReader, UnderrunFailsClosedAndLatches) {
  const std::string three(3, '\0');
  ByteReader r(as_span(three));
  EXPECT_EQ(r.u32(), 0u);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().code, LoadError::kTruncated);
  // Latched: further reads are no-ops returning zero, first failure wins.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.i64(), 0);
  EXPECT_EQ(r.str(16, "s"), "");
  EXPECT_EQ(r.count(10, 1, "c"), 0u);
  EXPECT_EQ(r.failure().code, LoadError::kTruncated);
}

TEST(ByteReader, CountEnforcesCapAndRemainingBytes) {
  {
    ByteWriter w;
    w.u64(11);
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    EXPECT_EQ(r.count(10, 0, "thing"), 0u);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.failure().code, LoadError::kCountOverflow);
  }
  {
    // Count within cap but promising more elements than bytes remain.
    ByteWriter w;
    w.u64(5);
    w.u32(0);  // only 4 bytes follow, not 5 * 8
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    EXPECT_EQ(r.count(100, 8, "thing"), 0u);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.failure().code, LoadError::kCountOverflow);
  }
  {
    // A huge count must not wrap the availability arithmetic.
    ByteWriter w;
    w.u64(~0ull);
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    EXPECT_EQ(r.count(~0ull, 8, "thing"), 0u);
    EXPECT_FALSE(r.ok());
  }
}

TEST(ByteReader, StringOverCapFailsClosed) {
  ByteWriter w;
  w.str("sixteen-plus-bytes");
  const std::string bytes = std::move(w).take();
  ByteReader r(as_span(bytes));
  EXPECT_EQ(r.str(4, "name"), "");
  EXPECT_FALSE(r.ok());
}

TEST(FileFraming, RoundTripsSections) {
  FileBuilder b;
  b.add_section(1, "alpha");
  b.add_section(7, std::string("\x00\x01\x02", 3));
  const std::string image = b.finish();

  auto parsed = FileView::parse(as_span(image));
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  const FileView& view = parsed.value();
  ASSERT_EQ(view.sections().size(), 2u);
  ASSERT_TRUE(view.section(1).has_value());
  ASSERT_TRUE(view.section(7).has_value());
  EXPECT_FALSE(view.section(2).has_value());
  const auto alpha = *view.section(1);
  EXPECT_EQ(std::string(alpha.begin(), alpha.end()), "alpha");
  EXPECT_EQ(view.section(7)->size(), 3u);
}

TEST(FileFraming, DeterministicImages) {
  const auto build = [] {
    FileBuilder b;
    b.add_section(1, "one");
    b.add_section(2, "two");
    return b.finish();
  };
  EXPECT_EQ(build(), build());
}

TEST(FileFraming, RejectsNonsense) {
  EXPECT_EQ(FileView::parse({}).code(), LoadError::kTruncated);

  const std::string text(64, 'A');
  EXPECT_EQ(FileView::parse(as_span(text)).code(), LoadError::kBadMagic);

  FileBuilder b;
  b.add_section(1, "payload");
  const std::string image = b.finish();

  {  // Version skew is detected before any checksum work.
    std::string skew = image;
    skew[8] = 2;
    EXPECT_EQ(FileView::parse(as_span(skew)).code(), LoadError::kBadVersion);
  }
  {  // Unknown feature flags.
    std::string flagged = image;
    flagged[12] = 1;
    EXPECT_EQ(FileView::parse(as_span(flagged)).code(), LoadError::kBadFlags);
  }
  {  // A flipped payload bit trips the section checksum.
    std::string corrupt = image;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x10);
    EXPECT_EQ(FileView::parse(as_span(corrupt)).code(), LoadError::kChecksum);
  }
  {  // A flipped section-table bit trips the header checksum.
    std::string corrupt = image;
    corrupt[kHeaderBytes + 8] ^= 1;
    EXPECT_EQ(FileView::parse(as_span(corrupt)).code(), LoadError::kChecksum);
  }
  {  // Trailing junk beyond the declared end.
    std::string longer = image + "x";
    EXPECT_EQ(FileView::parse(as_span(longer)).code(),
              LoadError::kTrailingBytes);
  }
  {  // Truncation anywhere must fail closed.
    for (std::size_t n = 0; n < image.size(); ++n) {
      auto result = FileView::parse(as_span(image).subspan(0, n));
      EXPECT_FALSE(result.ok()) << "prefix of " << n << " bytes parsed";
    }
  }
}

TEST(FileFraming, RejectsUnsortedSectionIds) {
  FileBuilder b;
  b.add_section(2, "second");
  b.add_section(1, "first");
  const std::string image = b.finish();
  EXPECT_EQ(FileView::parse(as_span(image)).code(),
            LoadError::kBadSectionTable);
}

TEST(AtomicWrite, RoundTripsThroughMmap) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "rs_persist_test_atomic";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "index.rsix").string();

  auto written = atomic_write_file(path, "first image");
  ASSERT_TRUE(written.ok()) << written.error();
  EXPECT_EQ(written.value(), 11u);
  // Overwrite must replace the content atomically (temp + rename).
  ASSERT_TRUE(atomic_write_file(path, "second").ok());

  auto mapped = MappedFile::open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.message();
  const auto bytes = mapped.value().bytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "second");

  // No temp litter left behind.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWrite, FailsIntoMissingDirectory) {
  auto written =
      atomic_write_file("/nonexistent-dir-rs/idx.rsix", "bytes");
  EXPECT_FALSE(written.ok());
}

TEST(MappedFileTest, MissingFileIsTypedIoError) {
  auto mapped = MappedFile::open("/nonexistent-rs-persist-file");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.code(), LoadError::kIo);
}

TEST(MappedFileTest, DirectoryIsTypedIoError) {
  auto mapped = MappedFile::open("/tmp");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.code(), LoadError::kIo);
}

TEST(IdSetCodec, RoundTripsAndTrimsTrailingZeros) {
  IdSet set(300);
  set.insert(0);
  set.insert(63);
  set.insert(64);
  set.insert(191);
  ByteWriter w;
  write_id_set(w, set);
  const std::string bytes = std::move(w).take();

  // Universe is 300 IDs (5 words) but the highest bit is 191, so the
  // canonical encoding carries exactly 3 words.
  ByteReader peek(as_span(bytes));
  EXPECT_EQ(peek.u64(), 3u);

  ByteReader r(as_span(bytes));
  const IdSet loaded = read_id_set(r, 300);
  ASSERT_TRUE(r.ok()) << r.failure().message();
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(loaded.ids(), set.ids());

  // An empty set is zero words.
  ByteWriter we;
  write_id_set(we, IdSet(300));
  const std::string empty_bytes = std::move(we).take();
  ByteReader re(as_span(empty_bytes));
  EXPECT_EQ(read_id_set(re, 300).size(), 0u);
  EXPECT_TRUE(re.ok());
}

TEST(IdSetCodec, RejectsNonCanonicalAndOutOfUniverse) {
  {  // Trailing zero word is a canonicality violation.
    ByteWriter w;
    w.u64(2);
    w.u64(1);
    w.u64(0);
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    read_id_set(r, 300);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.failure().code, LoadError::kBadValue);
  }
  {  // A bit at ID >= universe.
    ByteWriter w;
    w.u64(1);
    w.u64(1ull << 40);
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    read_id_set(r, 40);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.failure().code, LoadError::kBadValue);
  }
  {  // More words than the universe can need.
    ByteWriter w;
    w.u64(6);
    for (int i = 0; i < 6; ++i) w.u64(1);
    const std::string bytes = std::move(w).take();
    ByteReader r(as_span(bytes));
    read_id_set(r, 300);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.failure().code, LoadError::kCountOverflow);
  }
}

TEST(DigestCodec, RoundTripsSortedUniverse) {
  std::vector<rs::crypto::Sha256Digest> digests(3);
  digests[0].fill(0x11);
  digests[1].fill(0x22);
  digests[2].fill(0x33);
  ByteWriter w;
  write_digests(w, digests);
  const std::string bytes = std::move(w).take();

  ByteReader r(as_span(bytes));
  const auto loaded = read_digests(r);
  ASSERT_TRUE(r.ok()) << r.failure().message();
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(loaded, digests);
}

TEST(DigestCodec, RejectsUnsortedUniverse) {
  std::vector<rs::crypto::Sha256Digest> digests(2);
  digests[0].fill(0x22);
  digests[1].fill(0x11);
  ByteWriter w;
  write_digests(w, digests);
  const std::string bytes = std::move(w).take();

  ByteReader r(as_span(bytes));
  read_digests(r);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().code, LoadError::kBadValue);
}

TEST(LoadFailureTest, MessageCarriesCodeAndDetail) {
  const LoadFailure f{LoadError::kChecksum, "section 3"};
  EXPECT_EQ(f.message(), "checksum_mismatch: section 3");
  EXPECT_STREQ(to_string(LoadError::kCountOverflow), "count_overflow");
}

}  // namespace
}  // namespace rs::store::persist
