// IdSet unit tests plus randomized IdSet-vs-FingerprintSet equivalence:
// on any pair of digest sets, interning and running the bitset algebra
// must produce exactly the results of the sorted-merge FingerprintSet
// algebra — cardinalities, materialized elements, and the Jaccard double
// bit-for-bit (both divide the same exact integers).
#include "src/store/id_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/crypto/prng.h"
#include "src/store/fingerprint_set.h"
#include "src/store/interner.h"

namespace rs::store {
namespace {

using rs::crypto::Sha256Digest;

Sha256Digest digest_from(std::uint64_t value) {
  Sha256Digest d{};
  for (std::size_t i = 0; i < 8; ++i) {
    d[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return d;
}

TEST(IdSet, EmptyBehaviour) {
  IdSet a;
  IdSet b(128);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.intersection_size(b), 0u);
  EXPECT_EQ(a.union_size(b), 0u);
  EXPECT_DOUBLE_EQ(a.jaccard_distance(b), 0.0);  // both empty: identical
  EXPECT_TRUE(a == b);
}

TEST(IdSet, InsertContainsAndCount) {
  IdSet s(256);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(255);
  s.insert(63);  // duplicate: no double count
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(255));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(1000));  // beyond the words: absent, not UB
  EXPECT_EQ(s.ids(), (std::vector<std::uint32_t>{0, 63, 64, 255}));
}

TEST(IdSet, GrowsBeyondInitialUniverse) {
  IdSet s(10);
  s.insert(9);
  s.insert(500);  // lazy growth
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(500));
}

TEST(IdSet, AlgebraAcrossWordBoundaries) {
  IdSet a(200);
  IdSet b(200);
  for (std::uint32_t id : {1u, 63u, 64u, 65u, 129u}) a.insert(id);
  for (std::uint32_t id : {63u, 65u, 128u, 129u, 199u}) b.insert(id);

  EXPECT_EQ(a.intersection_size(b), 3u);  // 63, 65, 129
  EXPECT_EQ(b.intersection_size(a), 3u);
  EXPECT_EQ(a.union_size(b), 7u);

  EXPECT_EQ(a.intersection(b).ids(), (std::vector<std::uint32_t>{63, 65, 129}));
  EXPECT_EQ(a.difference(b).ids(), (std::vector<std::uint32_t>{1, 64}));
  EXPECT_EQ(b.difference(a).ids(), (std::vector<std::uint32_t>{128, 199}));
  EXPECT_EQ(a.set_union(b).size(), 7u);
  EXPECT_DOUBLE_EQ(a.jaccard_distance(b), 1.0 - 3.0 / 7.0);
}

TEST(IdSet, DifferentWordCountsCompose) {
  IdSet small(1);   // one word
  IdSet large(300); // five words
  small.insert(0);
  large.insert(0);
  large.insert(299);
  EXPECT_EQ(small.intersection_size(large), 1u);
  EXPECT_EQ(large.intersection_size(small), 1u);
  EXPECT_EQ(large.difference(small).ids(), (std::vector<std::uint32_t>{299}));
  EXPECT_EQ(small.difference(large).size(), 0u);
  IdSet merged = small.set_union(large);
  EXPECT_EQ(merged.ids(), (std::vector<std::uint32_t>{0, 299}));
  // Logical equality ignores trailing zero words.
  IdSet same(1);
  same.insert(0);
  IdSet padded(300);
  padded.insert(0);
  EXPECT_TRUE(same == padded);
}

TEST(IdSet, InPlaceUnionAccumulates) {
  IdSet acc(100);
  IdSet one(100, {1, 2, 3});
  IdSet two(100, {3, 4, 99});
  acc |= one;
  acc |= two;
  EXPECT_EQ(acc.ids(), (std::vector<std::uint32_t>{1, 2, 3, 4, 99}));
}

// --- Randomized equivalence against FingerprintSet ------------------------

struct SetPair {
  FingerprintSet fps;
  InternedSet interned;
};

// Draws a random digest set from a universe of `alphabet` values (small
// alphabet => guaranteed overlaps between independently drawn sets).
std::vector<Sha256Digest> random_digests(rs::crypto::Prng& prng,
                                         std::uint64_t alphabet,
                                         std::size_t count) {
  std::vector<Sha256Digest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(digest_from(prng.uniform(alphabet) * 0x9E3779B97F4A7C15ULL));
  }
  return out;
}

void expect_equivalent(const SetPair& a, const SetPair& b,
                       const CertInterner& interner, const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.interned.ids.intersection_size(b.interned.ids),
            a.fps.intersection_size(b.fps));
  EXPECT_EQ(a.interned.ids.union_size(b.interned.ids), a.fps.union_size(b.fps));
  // Jaccard doubles must match bit-for-bit: same integer cardinalities,
  // same division.
  const double merge_d = a.fps.jaccard_distance(b.fps);
  const double interned_d = jaccard_distance(a.interned, b.interned);
  EXPECT_EQ(merge_d, interned_d);
  EXPECT_DOUBLE_EQ(a.interned.ids.jaccard_distance(b.interned.ids), merge_d);
  // Materialized difference/intersection/union round-trip to identical
  // FingerprintSets.
  EXPECT_TRUE(interner.materialize(
                  a.interned.ids.difference(b.interned.ids)) ==
              a.fps.difference(b.fps));
  EXPECT_TRUE(interner.materialize(
                  a.interned.ids.intersection(b.interned.ids)) ==
              a.fps.intersection(b.fps));
  EXPECT_TRUE(interner.materialize(
                  a.interned.ids.set_union(b.interned.ids)) ==
              a.fps.set_union(b.fps));
  EXPECT_TRUE(set_difference(a.interned, b.interned, interner) ==
              a.fps.difference(b.fps));
}

TEST(IdSetProperty, RandomizedEquivalenceWithFingerprintSet) {
  rs::crypto::Prng prng(0xC0FFEE);
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t alphabet = 1 + prng.uniform(120);
    const auto raw_a = random_digests(prng, alphabet, prng.uniform(90));
    const auto raw_b = random_digests(prng, alphabet, prng.uniform(90));

    // Universe: everything both sets can contain.
    std::vector<Sha256Digest> universe = raw_a;
    universe.insert(universe.end(), raw_b.begin(), raw_b.end());
    const CertInterner interner{std::move(universe)};

    SetPair a{FingerprintSet(raw_a), {}};
    SetPair b{FingerprintSet(raw_b), {}};
    a.interned = interner.intern(a.fps);
    b.interned = interner.intern(b.fps);
    ASSERT_TRUE(a.interned.unmapped.empty());
    ASSERT_TRUE(b.interned.unmapped.empty());

    expect_equivalent(a, b, interner, "random pair");
    expect_equivalent(a, a, interner, "identical sets");
    expect_equivalent(b, b, interner, "identical sets (b)");

    // Round trip: interned -> materialized == original.
    EXPECT_TRUE(interner.materialize(a.interned.ids) == a.fps);
    EXPECT_TRUE(interner.materialize(b.interned.ids) == b.fps);
  }
}

TEST(IdSetProperty, EdgeCasesEmptyDisjointIdentical) {
  rs::crypto::Prng prng(42);
  const auto raw_a = random_digests(prng, 40, 30);
  // Disjoint set: shift into a distinct value range.
  std::vector<Sha256Digest> raw_b;
  for (std::size_t i = 0; i < 25; ++i) {
    raw_b.push_back(digest_from(0xDEAD000000000000ULL + i));
  }
  std::vector<Sha256Digest> universe = raw_a;
  universe.insert(universe.end(), raw_b.begin(), raw_b.end());
  const CertInterner interner{std::move(universe)};

  SetPair a{FingerprintSet(raw_a), {}};
  SetPair b{FingerprintSet(raw_b), {}};
  SetPair empty{FingerprintSet{}, {}};
  a.interned = interner.intern(a.fps);
  b.interned = interner.intern(b.fps);
  empty.interned = interner.intern(empty.fps);

  expect_equivalent(a, b, interner, "disjoint");
  expect_equivalent(a, empty, interner, "vs empty");
  expect_equivalent(empty, empty, interner, "empty vs empty");
  EXPECT_DOUBLE_EQ(jaccard_distance(a.interned, b.interned), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_distance(empty.interned, empty.interned), 0.0);
}

// Digests outside the interner universe must still produce exact algebra
// via the unmapped correction.
TEST(IdSetProperty, UnmappedDigestsCorrectedExactly) {
  rs::crypto::Prng prng(7);
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t alphabet = 1 + prng.uniform(60);
    const auto raw_a = random_digests(prng, alphabet, prng.uniform(50));
    const auto raw_b = random_digests(prng, alphabet, prng.uniform(50));

    // Universe deliberately covers only one side, so the other side's
    // exclusive digests intern as unmapped.
    const CertInterner interner{std::vector<Sha256Digest>(raw_a)};

    const FingerprintSet fa(raw_a);
    const FingerprintSet fb(raw_b);
    const auto ia = interner.intern(fa);
    const auto ib = interner.intern(fb);
    ASSERT_TRUE(ia.unmapped.empty());

    EXPECT_EQ(jaccard_distance(ia, ib), fa.jaccard_distance(fb));
    EXPECT_TRUE(set_difference(ia, ib, interner) == fa.difference(fb));
    EXPECT_TRUE(set_difference(ib, ia, interner) == fb.difference(fa));
    EXPECT_EQ(ib.size(), fb.size());
  }
}

}  // namespace
}  // namespace rs::store
