#include "src/store/snapshot.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::store {
namespace {

using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(
    std::uint64_t seed, Date not_before = Date::ymd(2010, 1, 1),
    Date not_after = Date::ymd(2030, 1, 1),
    rs::x509::SignatureScheme scheme = rs::x509::SignatureScheme::kSha256Rsa,
    unsigned bits = 2048) {
  rs::x509::Name n;
  n.add_common_name("Snap Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder()
          .subject(n)
          .key_seed(seed)
          .not_before(not_before)
          .not_after(not_after)
          .signature_scheme(scheme)
          .rsa_bits(bits)
          .build());
}

Snapshot snapshot_with(std::vector<TrustEntry> entries, Date date) {
  Snapshot s;
  s.provider = "Test";
  s.date = date;
  s.entries = std::move(entries);
  return s;
}

TEST(Snapshot, FingerprintSetsByPurpose) {
  auto tls = make_tls_anchor(make_cert(1));
  auto email = make_anchor_for(make_cert(2), {TrustPurpose::kEmailProtection});
  auto both = make_anchor_for(
      make_cert(3), {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
  const Snapshot s =
      snapshot_with({tls, email, both}, Date::ymd(2020, 1, 1));

  EXPECT_EQ(s.all_fingerprints().size(), 3u);
  EXPECT_EQ(s.tls_anchors().size(), 2u);
  EXPECT_EQ(s.anchors_for(TrustPurpose::kEmailProtection).size(), 2u);
  EXPECT_EQ(s.anchors_for(TrustPurpose::kCodeSigning).size(), 0u);
}

TEST(Snapshot, FindByFingerprint) {
  auto cert = make_cert(7);
  const Snapshot s =
      snapshot_with({make_tls_anchor(cert)}, Date::ymd(2020, 1, 1));
  ASSERT_NE(s.find(cert->sha256()), nullptr);
  EXPECT_EQ(s.find(make_cert(8)->sha256()), nullptr);
}

TEST(Snapshot, ExpiredCountUsesSnapshotDate) {
  auto expired = make_cert(10, Date::ymd(2000, 1, 1), Date::ymd(2015, 1, 1));
  auto valid = make_cert(11);
  const Snapshot s = snapshot_with(
      {make_tls_anchor(expired), make_tls_anchor(valid)}, Date::ymd(2020, 6, 1));
  EXPECT_EQ(s.expired_count(), 1u);
  const Snapshot earlier = snapshot_with(
      {make_tls_anchor(expired), make_tls_anchor(valid)}, Date::ymd(2014, 6, 1));
  EXPECT_EQ(earlier.expired_count(), 0u);
}

TEST(Snapshot, HygieneCountersOnlyCountTlsAnchors) {
  auto md5_tls = make_tls_anchor(make_cert(
      20, Date::ymd(2000, 1, 1), Date::ymd(2030, 1, 1),
      rs::x509::SignatureScheme::kMd5Rsa));
  auto md5_email = make_anchor_for(
      make_cert(21, Date::ymd(2000, 1, 1), Date::ymd(2030, 1, 1),
                rs::x509::SignatureScheme::kMd5Rsa),
      {TrustPurpose::kEmailProtection});
  auto weak = make_tls_anchor(make_cert(
      22, Date::ymd(2005, 1, 1), Date::ymd(2030, 1, 1),
      rs::x509::SignatureScheme::kSha1Rsa, 1024));
  const Snapshot s =
      snapshot_with({md5_tls, md5_email, weak}, Date::ymd(2015, 1, 1));
  EXPECT_EQ(s.md5_signed_count(), 1u);  // email-only MD5 not counted
  EXPECT_EQ(s.weak_rsa_count(), 1u);
}

TEST(ProviderHistory, AddKeepsDateOrder) {
  ProviderHistory h("P");
  h.add(snapshot_with({}, Date::ymd(2020, 5, 1)));
  h.add(snapshot_with({}, Date::ymd(2019, 1, 1)));
  h.add(snapshot_with({}, Date::ymd(2020, 1, 1)));
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.front().date, Date::ymd(2019, 1, 1));
  EXPECT_EQ(h.back().date, Date::ymd(2020, 5, 1));
  EXPECT_EQ(h.first_date(), Date::ymd(2019, 1, 1));
  EXPECT_EQ(h.last_date(), Date::ymd(2020, 5, 1));
}

TEST(ProviderHistory, AtReturnsLatestNotAfter) {
  ProviderHistory h("P");
  h.add(snapshot_with({}, Date::ymd(2019, 1, 1)));
  h.add(snapshot_with({}, Date::ymd(2020, 1, 1)));
  EXPECT_EQ(h.at(Date::ymd(2019, 6, 1))->date, Date::ymd(2019, 1, 1));
  EXPECT_EQ(h.at(Date::ymd(2020, 1, 1))->date, Date::ymd(2020, 1, 1));
  EXPECT_EQ(h.at(Date::ymd(2025, 1, 1))->date, Date::ymd(2020, 1, 1));
  EXPECT_EQ(h.at(Date::ymd(2018, 1, 1)), nullptr);
}

TEST(ProviderHistory, UniqueCertificateCounts) {
  auto a = make_cert(30);
  auto b = make_cert(31);
  ProviderHistory h("P");
  h.add(snapshot_with({make_tls_anchor(a)}, Date::ymd(2019, 1, 1)));
  h.add(snapshot_with({make_tls_anchor(a), make_tls_anchor(b)},
                      Date::ymd(2020, 1, 1)));
  h.add(snapshot_with(
      {make_anchor_for(b, {TrustPurpose::kEmailProtection})},
      Date::ymd(2021, 1, 1)));
  EXPECT_EQ(h.unique_certificates(), 2u);
  EXPECT_EQ(h.unique_tls_certificates(), 2u);  // b was a TLS anchor in 2020
}

}  // namespace
}  // namespace rs::store
