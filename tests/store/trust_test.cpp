#include "src/store/trust.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::store {
namespace {

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Trust Test Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(TrustEntry, DefaultsToMustVerifyEverywhere) {
  TrustEntry e;
  e.certificate = make_cert(1);
  for (TrustPurpose p : kAllPurposes) {
    EXPECT_EQ(e.trust_for(p).level, TrustLevel::kMustVerify);
    EXPECT_FALSE(e.is_anchor_for(p));
  }
  EXPECT_FALSE(e.is_tls_anchor());
}

TEST(TrustEntry, MakeTlsAnchor) {
  const TrustEntry e = make_tls_anchor(make_cert(2));
  EXPECT_TRUE(e.is_tls_anchor());
  EXPECT_FALSE(e.is_anchor_for(TrustPurpose::kEmailProtection));
  EXPECT_FALSE(e.is_anchor_for(TrustPurpose::kCodeSigning));
}

TEST(TrustEntry, MakeAnchorForMultiplePurposes) {
  const TrustEntry e = make_anchor_for(
      make_cert(3), {TrustPurpose::kServerAuth, TrustPurpose::kCodeSigning});
  EXPECT_TRUE(e.is_tls_anchor());
  EXPECT_TRUE(e.is_anchor_for(TrustPurpose::kCodeSigning));
  EXPECT_FALSE(e.is_anchor_for(TrustPurpose::kEmailProtection));
}

TEST(TrustEntry, PartialDistrustDetection) {
  TrustEntry e = make_tls_anchor(make_cert(4));
  EXPECT_FALSE(e.is_partially_distrusted_tls());
  e.trust_for(TrustPurpose::kServerAuth).distrust_after =
      rs::util::Date::ymd(2020, 1, 1);
  EXPECT_TRUE(e.is_partially_distrusted_tls());
  // A cutoff on a non-anchor is not "partial distrust of TLS".
  TrustEntry f;
  f.certificate = make_cert(5);
  f.trust_for(TrustPurpose::kServerAuth).distrust_after =
      rs::util::Date::ymd(2020, 1, 1);
  EXPECT_FALSE(f.is_partially_distrusted_tls());
}

TEST(TrustNames, Strings) {
  EXPECT_STREQ(to_string(TrustPurpose::kServerAuth), "server-auth");
  EXPECT_STREQ(to_string(TrustPurpose::kEmailProtection), "email-protection");
  EXPECT_STREQ(to_string(TrustPurpose::kCodeSigning), "code-signing");
  EXPECT_STREQ(to_string(TrustLevel::kTrustedDelegator), "trusted-delegator");
  EXPECT_STREQ(to_string(TrustLevel::kMustVerify), "must-verify");
  EXPECT_STREQ(to_string(TrustLevel::kDistrusted), "distrusted");
}

TEST(PurposeTrust, AnchorPredicate) {
  PurposeTrust t;
  EXPECT_FALSE(t.is_anchor());
  t.level = TrustLevel::kTrustedDelegator;
  EXPECT_TRUE(t.is_anchor());
  t.level = TrustLevel::kDistrusted;
  EXPECT_FALSE(t.is_anchor());
}

}  // namespace
}  // namespace rs::store
