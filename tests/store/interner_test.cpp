// CertInterner unit tests: the determinism contract (IDs in sorted-digest
// order, independent of input order), lookup symmetry, interning with
// unmapped remainders, and database/history universe construction.
#include "src/store/interner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/store/database.h"
#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::store {
namespace {

using rs::crypto::Sha256Digest;

Sha256Digest digest_from(std::uint64_t value) {
  Sha256Digest d{};
  for (std::size_t i = 0; i < 8; ++i) {
    d[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return d;
}

TEST(CertInterner, IdsFollowSortedDigestOrder) {
  const std::vector<Sha256Digest> digests = {
      digest_from(30), digest_from(10), digest_from(20), digest_from(10)};
  const CertInterner interner{std::vector<Sha256Digest>(digests)};
  ASSERT_EQ(interner.size(), 3u);  // deduplicated
  // digest_from writes little-endian into the leading bytes, so digest
  // byte-order equals value order here.
  EXPECT_EQ(interner.id_of(digest_from(10)), std::uint32_t{0});
  EXPECT_EQ(interner.id_of(digest_from(20)), std::uint32_t{1});
  EXPECT_EQ(interner.id_of(digest_from(30)), std::uint32_t{2});
  for (std::uint32_t id = 0; id < 3; ++id) {
    EXPECT_EQ(interner.id_of(interner.digest_of(id)), id);
  }
  EXPECT_EQ(interner.id_of(digest_from(99)), std::nullopt);
}

TEST(CertInterner, DeterministicAcrossInputOrder) {
  std::vector<Sha256Digest> digests;
  for (std::uint64_t v = 0; v < 64; ++v) digests.push_back(digest_from(v * 7));
  const CertInterner forward{std::vector<Sha256Digest>(digests)};
  std::reverse(digests.begin(), digests.end());
  const CertInterner backward{std::vector<Sha256Digest>(digests)};
  ASSERT_EQ(forward.size(), backward.size());
  for (std::uint32_t id = 0; id < forward.size(); ++id) {
    EXPECT_EQ(forward.digest_of(id), backward.digest_of(id));
  }
}

TEST(CertInterner, InternSplitsMappedAndUnmapped) {
  const CertInterner interner{
      {digest_from(1), digest_from(2), digest_from(3)}};
  const FingerprintSet query(
      {digest_from(2), digest_from(3), digest_from(4), digest_from(5)});
  const InternedSet interned = interner.intern(query);
  EXPECT_EQ(interned.ids.size(), 2u);
  ASSERT_EQ(interned.unmapped.size(), 2u);
  EXPECT_EQ(interned.unmapped[0], digest_from(4));
  EXPECT_EQ(interned.unmapped[1], digest_from(5));
  EXPECT_EQ(interned.size(), 4u);
  // Materializing only the mapped bits recovers the in-universe subset.
  const FingerprintSet mapped = interner.materialize(interned.ids);
  EXPECT_TRUE(mapped == FingerprintSet({digest_from(2), digest_from(3)}));
}

TEST(CertInterner, EmptyUniverseAndEmptySet) {
  const CertInterner interner;
  EXPECT_TRUE(interner.empty());
  const FingerprintSet some({digest_from(9)});
  const auto interned = interner.intern(some);
  EXPECT_TRUE(interned.ids.empty());
  ASSERT_EQ(interned.unmapped.size(), 1u);
  EXPECT_TRUE(interner.materialize(IdSet{}).empty());
}

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Intern Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(CertInterner, FromDatabaseCoversEveryEntry) {
  StoreDatabase db;
  ProviderHistory a("A");
  Snapshot s1;
  s1.provider = "A";
  s1.date = rs::util::Date::ymd(2020, 1, 1);
  s1.entries.push_back(make_tls_anchor(make_cert(1)));
  s1.entries.push_back(make_anchor_for(
      make_cert(2), {TrustPurpose::kEmailProtection}));  // non-TLS too
  a.add(s1);
  db.add(std::move(a));
  ProviderHistory b("B");
  Snapshot s2;
  s2.provider = "B";
  s2.date = rs::util::Date::ymd(2021, 1, 1);
  s2.entries.push_back(make_tls_anchor(make_cert(1)));  // shared with A
  s2.entries.push_back(make_tls_anchor(make_cert(3)));
  b.add(s2);
  db.add(std::move(b));

  const CertInterner interner = CertInterner::from_database(db);
  EXPECT_EQ(interner.size(), 3u);
  for (std::uint64_t seed : {1, 2, 3}) {
    EXPECT_TRUE(interner.id_of(make_cert(seed)->sha256()).has_value());
  }

  // Interning any snapshot's sets maps fully (no unmapped remainder).
  for (const auto& [name, history] : db.histories()) {
    (void)name;
    for (const auto& snap : history.snapshots()) {
      EXPECT_TRUE(interner.intern(snap.all_fingerprints()).unmapped.empty());
      EXPECT_TRUE(interner.intern(snap.tls_anchors()).unmapped.empty());
    }
  }

  const CertInterner nss_only = CertInterner::from_history(*db.find("A"));
  EXPECT_EQ(nss_only.size(), 2u);
  EXPECT_FALSE(nss_only.id_of(make_cert(3)->sha256()).has_value());
}

TEST(CertInterner, MaterializeRoundTripsSortedOrder) {
  std::vector<Sha256Digest> digests;
  for (std::uint64_t v = 0; v < 40; ++v) digests.push_back(digest_from(v * 3));
  const CertInterner interner{std::vector<Sha256Digest>(digests)};
  const FingerprintSet original(std::move(digests));
  const auto interned = interner.intern(original);
  ASSERT_TRUE(interned.unmapped.empty());
  EXPECT_TRUE(interner.materialize(interned.ids) == original);
}

}  // namespace
}  // namespace rs::store
