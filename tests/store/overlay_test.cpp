#include "src/store/overlay.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::store {
namespace {

using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Overlay Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(Date date, std::vector<TrustEntry> entries) {
  Snapshot s;
  s.provider = "P";
  s.date = date;
  s.entries = std::move(entries);
  return s;
}

TEST(TrustOverlay, RevocationIsDateGated) {
  auto cert = make_cert(1);
  TrustOverlay overlay("Apple");
  overlay.add({cert->sha256(), Date::ymd(2020, 6, 1), "valid.apple.com", 0});

  EXPECT_FALSE(overlay.is_revoked(cert->sha256(), Date::ymd(2020, 5, 31)));
  EXPECT_TRUE(overlay.is_revoked(cert->sha256(), Date::ymd(2020, 6, 1)));
  EXPECT_TRUE(overlay.is_revoked(cert->sha256(), Date::ymd(2021, 1, 1)));
  EXPECT_FALSE(overlay.is_revoked(make_cert(2)->sha256(),
                                  Date::ymd(2021, 1, 1)));
}

TEST(TrustOverlay, FindReturnsRecord) {
  auto cert = make_cert(3);
  TrustOverlay overlay("Apple");
  overlay.add({cert->sha256(), Date::ymd(2015, 6, 30), "valid.apple.com",
               1429});
  const auto* rec = overlay.find(cert->sha256(), Date::ymd(2016, 1, 1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->source, "valid.apple.com");
  EXPECT_EQ(rec->whitelisted_leaves, 1429u);
  EXPECT_EQ(overlay.find(cert->sha256(), Date::ymd(2015, 6, 29)), nullptr);
}

TEST(TrustOverlay, EffectiveAnchorsSubtractRevocations) {
  auto good = make_cert(4);
  auto revoked = make_cert(5);
  TrustOverlay overlay("Apple");
  overlay.add({revoked->sha256(), Date::ymd(2019, 1, 1), "valid.apple.com", 0});

  const Snapshot before = snap(
      Date::ymd(2018, 6, 1),
      {make_tls_anchor(good), make_tls_anchor(revoked)});
  EXPECT_EQ(effective_tls_anchors(before, overlay).size(), 2u);
  EXPECT_TRUE(revoked_but_shipped(before, overlay).empty());

  const Snapshot after = snap(
      Date::ymd(2020, 6, 1),
      {make_tls_anchor(good), make_tls_anchor(revoked)});
  const auto effective = effective_tls_anchors(after, overlay);
  EXPECT_EQ(effective.size(), 1u);
  EXPECT_TRUE(effective.contains(good->sha256()));
  const auto zombie = revoked_but_shipped(after, overlay);
  EXPECT_EQ(zombie.size(), 1u);
  EXPECT_TRUE(zombie.contains(revoked->sha256()));
}

TEST(TrustOverlay, NonTlsEntriesIgnored) {
  auto email_only = make_anchor_for(make_cert(6),
                                    {TrustPurpose::kEmailProtection});
  TrustOverlay overlay("Apple");
  const Snapshot s = snap(Date::ymd(2020, 1, 1), {email_only});
  EXPECT_TRUE(effective_tls_anchors(s, overlay).empty());
  EXPECT_TRUE(revoked_but_shipped(s, overlay).empty());
}

TEST(TrustOverlay, EmptyOverlayIsIdentity) {
  auto cert = make_cert(7);
  TrustOverlay overlay("X");
  EXPECT_TRUE(overlay.empty());
  const Snapshot s = snap(Date::ymd(2020, 1, 1), {make_tls_anchor(cert)});
  EXPECT_EQ(effective_tls_anchors(s, overlay), s.tls_anchors());
}

}  // namespace
}  // namespace rs::store
