#include "src/store/fingerprint_set.h"

#include <gtest/gtest.h>

namespace rs::store {
namespace {

rs::crypto::Sha256Digest fp(int n) {
  rs::crypto::Sha256Digest d{};
  d[0] = static_cast<std::uint8_t>(n);
  d[1] = static_cast<std::uint8_t>(n >> 8);
  return d;
}

FingerprintSet make(std::initializer_list<int> ns) {
  std::vector<rs::crypto::Sha256Digest> v;
  for (int n : ns) v.push_back(fp(n));
  return FingerprintSet(std::move(v));
}

TEST(FingerprintSet, ConstructionSortsAndDedups) {
  const auto s = make({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(fp(1)));
  EXPECT_TRUE(s.contains(fp(3)));
  EXPECT_TRUE(s.contains(fp(5)));
  EXPECT_FALSE(s.contains(fp(2)));
}

TEST(FingerprintSet, InsertKeepsInvariant) {
  FingerprintSet s;
  s.insert(fp(9));
  s.insert(fp(2));
  s.insert(fp(9));  // duplicate
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(fp(2)));
}

TEST(FingerprintSet, SetAlgebra) {
  const auto a = make({1, 2, 3, 4});
  const auto b = make({3, 4, 5});
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_EQ(a.union_size(b), 5u);
  EXPECT_EQ(a.difference(b), make({1, 2}));
  EXPECT_EQ(b.difference(a), make({5}));
  EXPECT_EQ(a.intersection(b), make({3, 4}));
  EXPECT_EQ(a.set_union(b), make({1, 2, 3, 4, 5}));
}

TEST(FingerprintSet, JaccardDistance) {
  const auto a = make({1, 2, 3, 4});
  const auto b = make({3, 4, 5});
  EXPECT_DOUBLE_EQ(a.jaccard_distance(b), 1.0 - 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(a.jaccard_distance(a), 0.0);
  EXPECT_DOUBLE_EQ(make({}).jaccard_distance(make({})), 0.0);
  EXPECT_DOUBLE_EQ(make({1}).jaccard_distance(make({2})), 1.0);
}

TEST(FingerprintSetProperty, JaccardIsAMetricOnSamples) {
  // Triangle inequality holds for Jaccard distance; spot-check many triples.
  std::vector<FingerprintSet> sets;
  for (int i = 0; i < 12; ++i) {
    std::vector<rs::crypto::Sha256Digest> v;
    for (int k = 0; k < 20; ++k) {
      if ((k * 7 + i * 13) % 5 < 3) v.push_back(fp(k));
    }
    sets.push_back(FingerprintSet(std::move(v)));
  }
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      EXPECT_DOUBLE_EQ(a.jaccard_distance(b), b.jaccard_distance(a));
      for (const auto& c : sets) {
        EXPECT_LE(a.jaccard_distance(c),
                  a.jaccard_distance(b) + b.jaccard_distance(c) + 1e-12);
      }
    }
  }
}

TEST(FingerprintSetProperty, AlgebraSizesAreConsistent) {
  for (int i = 0; i < 30; ++i) {
    const auto a = make({i, i + 1, i + 2, 2 * i});
    const auto b = make({i + 2, i + 3, 2 * i});
    EXPECT_EQ(a.union_size(b),
              a.size() + b.size() - a.intersection_size(b));
    EXPECT_EQ(a.difference(b).size() + a.intersection_size(b), a.size());
    EXPECT_EQ(a.set_union(b).size(), a.union_size(b));
  }
}

}  // namespace
}  // namespace rs::store
