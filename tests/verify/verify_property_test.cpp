// Differential battery for the chain-verification workload (docs/VERIFY.md).
//
// The verify stack under test is the whole serving slice: request model →
// QueryEngine::handle → rs::verify::verify_chain over the TrustIndex
// oracle.  The referee is a from-scratch validator in this file that never
// touches rs_verify or TrustIndex: it resolves snapshots with
// ProviderHistory::at and applies the RFC 5280 checks with the raw x509
// predicates.  The sweep crosses the chain-case catalog (pool-dropout
// variants included) with every provider, every snapshot boundary date
// (±1), the chains' validity edges, and all four scopes — at least 100k
// comparisons with zero tolerated disagreement.
//
// Also pinned here: the DigiNotar-style flip dates (first_rejected_at must
// equal a literal day-by-day scan and the provider's purge date), the
// email-only-anchor trust-bit case, and byte-identical engine responses
// for serial vs pooled index builds (LABELS tsan runs this under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/store/database.h"
#include "src/synth/chain_gen.h"
#include "src/synth/incidents.h"
#include "src/synth/paper_scenario.h"
#include "src/x509/certificate.h"
#include "src/x509/extensions.h"

namespace rs::verify {
namespace {

using rs::query::Op;
using rs::query::QueryEngine;
using rs::query::Request;
using rs::query::Scope;
using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::store::TrustPurpose;
using rs::synth::ChainCase;
using rs::util::Date;
using rs::x509::Certificate;

// --- the independent referee ----------------------------------------------

std::optional<TrustPurpose> purpose_of(Scope scope) {
  switch (scope) {
    case Scope::kTls: return TrustPurpose::kServerAuth;
    case Scope::kEmail: return TrustPurpose::kEmailProtection;
    case Scope::kCode: return TrustPurpose::kCodeSigning;
    case Scope::kPresent: return std::nullopt;
  }
  return std::nullopt;
}

rs::asn1::Oid eku_of(Scope scope) {
  switch (scope) {
    case Scope::kEmail: return rs::asn1::oids::eku_email_protection();
    case Scope::kCode: return rs::asn1::oids::eku_code_signing();
    default: return rs::asn1::oids::eku_server_auth();
  }
}

/// All RFC 5280 checks on one complete path (leaf first, in-store cert
/// last), straight off the x509 objects and the resolved snapshot.
bool referee_path_ok(const std::vector<const Certificate*>& path,
                     const Snapshot& snap, Date date, Scope scope) {
  for (const Certificate* cert : path) {
    if (!cert->is_valid_at(date)) return false;
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->is_ca()) return false;
    const auto* ku_ext = rs::x509::find_extension(
        path[i]->extensions(), rs::asn1::oids::key_usage());
    if (ku_ext != nullptr) {
      auto ku = rs::x509::KeyUsage::parse(ku_ext->value);
      if (!ku.ok() || !ku.value().key_cert_sign) return false;
    }
    const auto* bc_ext = rs::x509::find_extension(
        path[i]->extensions(), rs::asn1::oids::basic_constraints());
    if (bc_ext != nullptr) {
      auto bc = rs::x509::BasicConstraints::parse(bc_ext->value);
      if (bc.ok() && bc.value().ca && bc.value().path_len) {
        std::int64_t below = 0;
        for (std::size_t j = 1; j < i; ++j) {
          if (!path[j]->issuer().equivalent(path[j]->subject())) ++below;
        }
        if (below > *bc.value().path_len) return false;
      }
    }
  }
  if (scope != Scope::kPresent) {
    const rs::asn1::Oid purpose = eku_of(scope);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto* eku_ext = rs::x509::find_extension(
          path[i]->extensions(), rs::asn1::oids::ext_key_usage());
      if (eku_ext == nullptr) continue;
      auto eku = rs::x509::ExtendedKeyUsage::parse(eku_ext->value);
      if (!eku.ok() || !eku.value().permits(purpose)) return false;
    }
  }
  const rs::store::TrustEntry* entry = snap.find(path.back()->sha256());
  if (entry == nullptr) return false;
  const auto purpose = purpose_of(scope);
  return !purpose || entry->trust_for(*purpose).is_anchor();
}

/// Enumerates every simple path by issuer/subject chaining, terminating
/// (like a real client) at the first in-store certificate, and accepts if
/// any path passes referee_path_ok.
bool referee_extend(std::vector<const Certificate*>& path,
                    std::set<const Certificate*>& visited,
                    const std::vector<const Certificate*>& pool,
                    const Snapshot& snap, Date date, Scope scope) {
  const Certificate* top = path.back();
  if (snap.find(top->sha256()) != nullptr) {
    return referee_path_ok(path, snap, date, scope);
  }
  for (const Certificate* parent : pool) {
    if (visited.contains(parent)) continue;
    if (!top->issuer().equivalent(parent->subject())) continue;
    path.push_back(parent);
    visited.insert(parent);
    const bool ok = referee_extend(path, visited, pool, snap, date, scope);
    visited.erase(parent);
    path.pop_back();
    if (ok) return true;
  }
  return false;
}

enum class RefereeVerdict { kAccepted, kRejected, kNotCovered };

RefereeVerdict referee(const StoreDatabase& db, const std::string& provider,
                       const Certificate& leaf,
                       const std::vector<const Certificate*>& pool, Date date,
                       Scope scope) {
  const ProviderHistory* history = db.find(provider);
  if (history == nullptr || history->empty() ||
      date < history->first_date() || history->last_date() < date) {
    return RefereeVerdict::kNotCovered;
  }
  const Snapshot* snap = history->at(date);
  if (snap == nullptr) return RefereeVerdict::kNotCovered;
  std::vector<const Certificate*> path{&leaf};
  std::set<const Certificate*> visited{&leaf};
  return referee_extend(path, visited, pool, *snap, date, scope)
             ? RefereeVerdict::kAccepted
             : RefereeVerdict::kRejected;
}

// --- shared fixture ---------------------------------------------------------

struct Fixture {
  rs::synth::PaperScenario scenario = rs::synth::build_paper_scenario();
  std::vector<ChainCase> cases;
  QueryEngine engine;
  QueryEngine pooled_engine;

  static QueryEngine make_engine(const StoreDatabase& db, int threads) {
    if (threads <= 0) return QueryEngine(db, {});
    rs::exec::ThreadPool pool(static_cast<std::size_t>(threads));
    return QueryEngine(db, {}, &pool);
  }

  Fixture()
      : cases(make_cases(scenario)),
        engine(make_engine(scenario.database(), 0)),
        pooled_engine(make_engine(scenario.database(), 3)) {}

  static std::vector<ChainCase> make_cases(rs::synth::PaperScenario& s) {
    auto config = rs::synth::default_chain_config(s.database());
    for (const auto& incident : rs::synth::high_severity_incidents()) {
      for (const auto& root_id : incident.root_ids) {
        if (auto cert = s.factory().find(root_id)) {
          config.incident_anchors.emplace_back(
              incident.name + "/" + root_id, std::move(cert));
        }
      }
    }
    return build_chain_cases(config);
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture();  // leaked: shared across all tests
  return *f;
}

Request make_request(Op op, const std::string& provider,
                     const ChainCase& c,
                     const std::vector<const Certificate*>& pool,
                     std::optional<Date> date, Scope scope) {
  Request r;
  r.op = op;
  r.provider = provider;
  r.date = date;
  r.scope = scope;
  r.leaf = c.leaf->der();
  for (const auto* cert : pool) r.pool.push_back(cert->der());
  std::sort(r.pool.begin(), r.pool.end());
  r.pool.erase(std::unique(r.pool.begin(), r.pool.end()), r.pool.end());
  return r;
}

bool response_has(const std::string& response, std::string_view needle) {
  return response.find(needle) != std::string::npos;
}

/// The pool-dropout variants of a case: the full pool plus, for each pool
/// certificate, the pool without it (chains must degrade predictably when
/// an intermediate goes missing).
std::vector<std::vector<const Certificate*>> pool_variants(
    const ChainCase& c) {
  std::vector<const Certificate*> full;
  for (const auto& cert : c.pool) full.push_back(cert.get());
  std::vector<std::vector<const Certificate*>> variants{full};
  for (std::size_t drop = 0; drop < full.size(); ++drop) {
    std::vector<const Certificate*> v;
    for (std::size_t i = 0; i < full.size(); ++i) {
      if (i != drop) v.push_back(full[i]);
    }
    variants.push_back(std::move(v));
  }
  return variants;
}

// --- the 100k+ differential sweep ------------------------------------------

TEST(VerifyDifferential, EngineAgreesWithRefereeOnEveryProbe) {
  Fixture& f = fixture();
  const StoreDatabase& db = f.scenario.database();
  constexpr Scope kScopes[] = {Scope::kTls, Scope::kEmail, Scope::kCode,
                               Scope::kPresent};
  std::size_t checks = 0;
  std::size_t accepted = 0, rejected = 0, uncovered = 0;

  for (const std::string& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    ASSERT_NE(history, nullptr);
    // Snapshot boundaries ±1 probe every date where the resolved store can
    // change; the union with the chains' validity edges (added per case
    // below) covers every date where any verdict can flip.
    std::vector<Date> base_dates;
    for (const Snapshot& snap : history->snapshots()) {
      base_dates.push_back(snap.date - 1);
      base_dates.push_back(snap.date);
      base_dates.push_back(snap.date + 1);
    }
    std::sort(base_dates.begin(), base_dates.end());
    base_dates.erase(std::unique(base_dates.begin(), base_dates.end()),
                     base_dates.end());

    for (const ChainCase& c : f.cases) {
      std::vector<Date> dates = base_dates;
      const auto& lv = c.leaf->validity();
      for (const Date d : {lv.not_before.date - 1, lv.not_before.date,
                           lv.not_after.date, lv.not_after.date + 1}) {
        dates.push_back(d);
      }
      for (const auto& cert : c.pool) {
        dates.push_back(cert->validity().not_after.date);
        dates.push_back(cert->validity().not_after.date + 1);
      }
      std::sort(dates.begin(), dates.end());
      dates.erase(std::unique(dates.begin(), dates.end()), dates.end());

      std::size_t variant_idx = 0;
      for (const auto& pool : pool_variants(c)) {
        for (const Date date : dates) {
          for (const Scope scope : kScopes) {
            const Request req = make_request(Op::kVerifyChain, provider, c,
                                             pool, date, scope);
            const std::string response = f.engine.handle(req);
            const RefereeVerdict want =
                referee(db, provider, *c.leaf, pool, date, scope);
            ++checks;
            switch (want) {
              case RefereeVerdict::kNotCovered:
                ++uncovered;
                ASSERT_TRUE(
                    response_has(response, "\"status\":\"not_covered\""))
                    << c.name << " variant " << variant_idx << " "
                    << provider << " " << date.to_string() << " "
                    << to_string(scope) << "\n" << response;
                break;
              case RefereeVerdict::kAccepted:
                ++accepted;
                ASSERT_TRUE(
                    response_has(response, "\"verdict\":\"accepted\""))
                    << c.name << " variant " << variant_idx << " "
                    << provider << " " << date.to_string() << " "
                    << to_string(scope) << "\n" << response;
                break;
              case RefereeVerdict::kRejected:
                ++rejected;
                ASSERT_TRUE(
                    response_has(response, "\"verdict\":\"rejected\""))
                    << c.name << " variant " << variant_idx << " "
                    << provider << " " << date.to_string() << " "
                    << to_string(scope) << "\n" << response;
                break;
            }
            // Serial and pooled index builds must answer byte-identically;
            // sampled to keep the sweep fast (full comparison below).
            if (checks % 17 == 0) {
              ASSERT_EQ(f.pooled_engine.handle(req), response);
            }
          }
        }
        ++variant_idx;
      }
    }
  }
  // The issue's floor: at least 100k differential comparisons, and all
  // three verdict classes must actually occur.
  EXPECT_GE(checks, 100000u) << "sweep shrank below the contract";
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(uncovered, 0u);
}

// --- temporal flips ---------------------------------------------------------

/// Literal day-by-day scan over the provider's coverage: the first date
/// the chain is accepted and the first later date it is rejected.
struct LinearFlip {
  std::optional<Date> accepted_from;
  std::optional<Date> first_rejected;
};

LinearFlip linear_scan(const StoreDatabase& db, const std::string& provider,
                       const Certificate& leaf,
                       const std::vector<const Certificate*>& pool,
                       Scope scope) {
  const ProviderHistory* history = db.find(provider);
  LinearFlip flip;
  if (history == nullptr || history->empty()) return flip;
  for (Date d = history->first_date(); d <= history->last_date(); d = d + 1) {
    const bool ok =
        referee(db, provider, leaf, pool, d, scope) ==
        RefereeVerdict::kAccepted;
    if (!flip.accepted_from) {
      if (ok) flip.accepted_from = d;
      continue;
    }
    if (!ok) {
      flip.first_rejected = d;
      break;
    }
  }
  return flip;
}

TEST(VerifyTemporal, FirstRejectedAtMatchesLinearScanOnEveryIncidentChain) {
  Fixture& f = fixture();
  const StoreDatabase& db = f.scenario.database();
  std::size_t incident_chains = 0;
  for (const ChainCase& c : f.cases) {
    if (c.name.rfind("incident:", 0) != 0) continue;
    ++incident_chains;
    std::vector<const Certificate*> pool;
    for (const auto& cert : c.pool) pool.push_back(cert.get());
    for (const std::string& provider : db.providers()) {
      const Request req = make_request(Op::kFirstRejectedAt, provider, c,
                                       pool, std::nullopt, Scope::kTls);
      const std::string response = f.engine.handle(req);
      const LinearFlip want =
          linear_scan(db, provider, *c.leaf, pool, Scope::kTls);
      if (want.accepted_from) {
        ASSERT_TRUE(response_has(response, "\"accepted_from\":\"" +
                                               want.accepted_from->to_string() +
                                               "\""))
            << c.name << " " << provider << "\n" << response;
      } else {
        ASSERT_TRUE(response_has(response, "\"accepted_from\":null"))
            << c.name << " " << provider << "\n" << response;
      }
      if (want.first_rejected) {
        ASSERT_TRUE(response_has(response,
                                 "\"first_rejected\":\"" +
                                     want.first_rejected->to_string() + "\""))
            << c.name << " " << provider << "\n" << response;
      } else {
        ASSERT_TRUE(response_has(response, "\"first_rejected\":null"))
            << c.name << " " << provider << "\n" << response;
      }
      // The breakpoint sweep must beat the day-by-day scan by orders of
      // magnitude while agreeing with it — that is its whole point.
      ASSERT_TRUE(response_has(response, "\"evaluated\":"));
    }
  }
  ASSERT_GT(incident_chains, 0u) << "no incident chains in the catalog";
}

TEST(VerifyTemporal, DigiNotarChainFlipsOnTheNssPurgeDate) {
  Fixture& f = fixture();
  const StoreDatabase& db = f.scenario.database();
  const auto incidents = rs::synth::high_severity_incidents();
  const auto diginotar =
      std::find_if(incidents.begin(), incidents.end(), [](const auto& i) {
        return i.name == "DigiNotar";
      });
  ASSERT_NE(diginotar, incidents.end());
  const ChainCase* chain = nullptr;
  for (const ChainCase& c : f.cases) {
    if (c.name.rfind("incident:DigiNotar/", 0) == 0) chain = &c;
  }
  ASSERT_NE(chain, nullptr);
  ASSERT_TRUE(db.find("NSS") != nullptr);
  std::vector<const Certificate*> pool;
  for (const auto& cert : chain->pool) pool.push_back(cert.get());
  const Request req = make_request(Op::kFirstRejectedAt, "NSS", *chain, pool,
                                   std::nullopt, Scope::kTls);
  const std::string response = f.engine.handle(req);
  // The chain must die exactly on the catalog's NSS removal date.
  EXPECT_TRUE(response_has(response,
                           "\"first_rejected\":\"" +
                               diginotar->nss_removal.to_string() + "\""))
      << response;
  EXPECT_TRUE(response_has(response, "\"reason\":\"untrusted_root\"") ||
              response_has(response,
                           "\"reason\":\"anchor_not_trusted_for_scope\""))
      << response;
}

TEST(VerifyScopes, EmailOnlyAnchorNeverVerifiesForTls) {
  Fixture& f = fixture();
  const StoreDatabase& db = f.scenario.database();
  const ChainCase* chain = nullptr;
  for (const ChainCase& c : f.cases) {
    if (c.name == "email_only_anchor") chain = &c;
  }
  ASSERT_NE(chain, nullptr) << "dataset lost its email-only roots";
  std::vector<const Certificate*> pool;
  for (const auto& cert : chain->pool) pool.push_back(cert.get());

  // Find a provider+date where the email-only anchor is present; the email
  // verdict there is accepted while TLS must stay rejected.
  bool exercised = false;
  for (const std::string& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    for (const Snapshot& snap : history->snapshots()) {
      const auto* entry = snap.find(chain->root_fp);
      if (entry == nullptr) continue;
      if (!entry->trust_for(TrustPurpose::kEmailProtection).is_anchor()) {
        continue;
      }
      const Date d = snap.date;
      const std::string email = f.engine.handle(make_request(
          Op::kVerifyChain, provider, *chain, pool, d, Scope::kEmail));
      const std::string tls = f.engine.handle(make_request(
          Op::kVerifyChain, provider, *chain, pool, d, Scope::kTls));
      ASSERT_TRUE(response_has(email, "\"verdict\":\"accepted\"")) << email;
      ASSERT_TRUE(response_has(tls, "\"verdict\":\"rejected\"")) << tls;
      ASSERT_TRUE(
          response_has(tls, "\"reason\":\"anchor_not_trusted_for_scope\""))
          << tls;
      exercised = true;
      break;
    }
    if (exercised) break;
  }
  ASSERT_TRUE(exercised) << "no provider carries the email-only anchor";
}

TEST(VerifyDeterminism, SerialAndPooledEnginesAnswerIncidentChainsByteEqual) {
  Fixture& f = fixture();
  const StoreDatabase& db = f.scenario.database();
  std::size_t compared = 0;
  for (const ChainCase& c : f.cases) {
    std::vector<const Certificate*> pool;
    for (const auto& cert : c.pool) pool.push_back(cert.get());
    for (const std::string& provider : db.providers()) {
      const Request flip = make_request(Op::kFirstRejectedAt, provider, c,
                                        pool, std::nullopt, Scope::kTls);
      ASSERT_EQ(f.engine.handle(flip), f.pooled_engine.handle(flip));
      const auto cov = f.engine.index().coverage(provider);
      if (cov) {
        const Request point = make_request(Op::kVerifyChain, provider, c,
                                           pool, cov->last, Scope::kTls);
        ASSERT_EQ(f.engine.handle(point), f.pooled_engine.handle(point));
      }
      ++compared;
    }
  }
  ASSERT_GT(compared, 0u);
}

}  // namespace
}  // namespace rs::verify
