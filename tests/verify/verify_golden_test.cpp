// Byte-exact regression for the verify response shapes: every request line
// in tests/golden/verify/requests.ndjson must produce exactly the paired
// line in responses.ndjson, from a serial engine and from a pool-built one.
// Regenerate the corpus with tools/update_goldens.sh ONLY for intentional
// response changes, and review the diff.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/synth/paper_scenario.h"

#ifndef ROOTSTORE_GOLDEN_DIR
#error "ROOTSTORE_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace {

std::vector<std::string> read_lines(const std::string& name) {
  const std::string path =
      std::string(ROOTSTORE_GOLDEN_DIR) + "/verify/" + name;
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with tools/update_goldens.sh)";
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

TEST(VerifyGolden, EngineReproducesTheCorpusByteExactly) {
  const auto requests = read_lines("requests.ndjson");
  const auto responses = read_lines("responses.ndjson");
  ASSERT_EQ(requests.size(), responses.size());
  ASSERT_GE(requests.size(), 12u) << "corpus shrank";

  auto scenario = rs::synth::build_paper_scenario();
  const rs::query::QueryEngine engine(scenario.database(), {});
  rs::exec::ThreadPool pool(3);
  const rs::query::QueryEngine pooled(scenario.database(), {}, &pool);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(engine.handle_json(requests[i]), responses[i])
        << "pair " << i << ": " << requests[i];
    EXPECT_EQ(pooled.handle_json(requests[i]), responses[i])
        << "pair " << i << " (pooled build): " << requests[i];
  }
}

}  // namespace
