#include "src/crypto/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rs::crypto {
namespace {

TEST(SplitMix64, KnownSequenceFromZero) {
  // Reference outputs of SplitMix64 seeded with 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
}

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, FromLabelIndependentStreams) {
  Prng a = Prng::from_label(7, "ca:alpha");
  Prng b = Prng::from_label(7, "ca:beta");
  Prng a2 = Prng::from_label(7, "ca:alpha");
  EXPECT_NE(a.next(), b.next());
  Prng a3 = Prng::from_label(7, "ca:alpha");
  (void)a2;
  EXPECT_EQ(Prng::from_label(7, "ca:alpha").next(), a3.next());
}

TEST(Prng, UniformRespectsBound) {
  Prng p(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(p.uniform(17), 17u);
  }
  // All residues eventually appear.
  Prng q(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(q.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, UniformRangeInclusive) {
  Prng p(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = p.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Prng p(12);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = p.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Prng, ChanceExtremes) {
  Prng p(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.chance(0.0));
    EXPECT_TRUE(p.chance(1.0));
  }
}

TEST(Prng, ChanceApproximatesProbability) {
  Prng p(14);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += p.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Prng, BurstAlwaysPositive) {
  Prng p(15);
  double total = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto b = p.burst(3.0);
    EXPECT_GE(b, 1u);
    total += static_cast<double>(b);
  }
  // E[1 + floor(Exp(mean 2))] = 1 + e^{-1/2}/(1 - e^{-1/2}) ~= 2.54.
  EXPECT_NEAR(total / 5000.0, 2.54, 0.15);
  // Mean <= 1 degenerates to always 1.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.burst(1.0), 1u);
}

TEST(Prng, FillCoversBuffer) {
  Prng p(16);
  std::vector<std::uint8_t> buf(100, 0);
  p.fill(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 50);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng p(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  p.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

}  // namespace
}  // namespace rs::crypto
