#include "src/crypto/md5.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/hex.h"

namespace rs::crypto {
namespace {

std::string md5_hex(std::string_view s) {
  const auto d =
      Md5::hash({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  return rs::util::hex_encode(d);
}

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex("12345678901234567890123456789012345678901234567890123456"
                    "789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  const auto data = std::span(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  const auto oneshot = Md5::hash(data);
  // Feed in awkward chunk sizes that straddle block boundaries.
  for (std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 127u}) {
    Md5 h;
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      h.update(data.subspan(off, std::min(chunk, msg.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "chunk " << chunk;
  }
}

TEST(Md5, LengthsAroundBlockBoundary) {
  // Exercise the padding logic at 55/56/57/63/64/65 bytes.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(n, 'q');
    const auto d = Md5::hash(
        {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
    // Differing lengths must differ (sanity that padding encodes length).
    const std::string msg2(n + 1, 'q');
    const auto d2 = Md5::hash(
        {reinterpret_cast<const std::uint8_t*>(msg2.data()), msg2.size()});
    EXPECT_NE(d, d2) << n;
  }
}

}  // namespace
}  // namespace rs::crypto
