// Parameterized digest sweeps: for every input length around the 64-byte
// block boundary and beyond, incremental hashing in every chunking must
// equal the one-shot result, for all three digests.
#include <gtest/gtest.h>

#include <string>

#include "src/crypto/md5.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace rs::crypto {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return out;
}

class DigestSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DigestSweepTest, Md5IncrementalEqualsOneShot) {
  const auto data = pattern_bytes(GetParam());
  const auto oneshot = Md5::hash(data);
  for (std::size_t chunk : {1u, 7u, 64u}) {
    Md5 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(std::span(data).subspan(off, std::min(chunk, data.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "len=" << GetParam() << " chunk=" << chunk;
  }
}

TEST_P(DigestSweepTest, Sha1IncrementalEqualsOneShot) {
  const auto data = pattern_bytes(GetParam());
  const auto oneshot = Sha1::hash(data);
  for (std::size_t chunk : {1u, 13u, 63u}) {
    Sha1 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(std::span(data).subspan(off, std::min(chunk, data.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "len=" << GetParam() << " chunk=" << chunk;
  }
}

TEST_P(DigestSweepTest, Sha256IncrementalEqualsOneShot) {
  const auto data = pattern_bytes(GetParam());
  const auto oneshot = Sha256::hash(data);
  for (std::size_t chunk : {1u, 31u, 65u}) {
    Sha256 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(std::span(data).subspan(off, std::min(chunk, data.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "len=" << GetParam() << " chunk=" << chunk;
  }
}

TEST_P(DigestSweepTest, LengthExtensionChangesDigest) {
  // Appending one byte must change all three digests (padding encodes
  // length; catches broken finalization).
  const auto data = pattern_bytes(GetParam());
  auto longer = data;
  longer.push_back(0x00);
  EXPECT_NE(Md5::hash(data), Md5::hash(longer));
  EXPECT_NE(Sha1::hash(data), Sha1::hash(longer));
  EXPECT_NE(Sha256::hash(data), Sha256::hash(longer));
}

// Empty update() calls must be no-ops (an empty span can carry a null
// data() pointer, which once reached memcpy — UB caught by UBSan through
// the JKS fuzz harness).
TEST(DigestEmptyUpdate, InterleavedEmptyUpdatesAreNoOps) {
  const auto data = pattern_bytes(100);
  Md5 md5;
  Sha1 sha1;
  Sha256 sha256;
  md5.update({});
  sha1.update({});
  sha256.update({});
  md5.update(data);
  sha1.update(data);
  sha256.update(data);
  md5.update({});
  sha1.update({});
  sha256.update({});
  EXPECT_EQ(md5.finish(), Md5::hash(data));
  EXPECT_EQ(sha1.finish(), Sha1::hash(data));
  EXPECT_EQ(sha256.finish(), Sha256::hash(data));
}

TEST(DigestEmptyUpdate, EmptyInputHashesMatchKnownVectors) {
  // RFC 1321 / FIPS 180 test vectors for the empty message.
  EXPECT_EQ(Md5::hash({}), Md5::hash(pattern_bytes(0)));
  Sha1 h;
  h.update({});
  EXPECT_EQ(h.finish(), Sha1::hash({}));
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, DigestSweepTest,
                         ::testing::Values(0u, 1u, 54u, 55u, 56u, 57u, 63u,
                                           64u, 65u, 118u, 119u, 120u, 127u,
                                           128u, 129u, 1000u));

}  // namespace
}  // namespace rs::crypto
