#include "src/crypto/sha1.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/hex.h"

namespace rs::crypto {
namespace {

std::string sha1_hex(std::string_view s) {
  const auto d =
      Sha1::hash({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  return rs::util::hex_encode(d);
}

// FIPS 180-4 / RFC 3174 vectors.
TEST(Sha1, KnownVectors) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update({reinterpret_cast<const std::uint8_t*>(chunk.data()),
              chunk.size()});
  }
  EXPECT_EQ(rs::util::hex_encode(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg(777, 'z');
  const auto data = std::span(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  const auto oneshot = Sha1::hash(data);
  for (std::size_t chunk : {1u, 7u, 64u, 100u}) {
    Sha1 h;
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      h.update(data.subspan(off, std::min(chunk, msg.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace rs::crypto
