#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/hex.h"

namespace rs::crypto {
namespace {

std::string sha256_hex(std::string_view s) {
  const auto d = Sha256::hash(
      {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  return rs::util::hex_encode(d);
}

// FIPS 180-4 vectors.
TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update({reinterpret_cast<const std::uint8_t*>(chunk.data()),
              chunk.size()});
  }
  EXPECT_EQ(rs::util::hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(999, 'k');
  const auto data = std::span(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  const auto oneshot = Sha256::hash(data);
  for (std::size_t chunk : {1u, 13u, 64u, 65u, 256u}) {
    Sha256 h;
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      h.update(data.subspan(off, std::min(chunk, msg.size() - off)));
    }
    EXPECT_EQ(h.finish(), oneshot) << "chunk " << chunk;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  // Not a collision test — a regression guard that the compressor actually
  // mixes input (e.g., catching a broken message schedule).
  const auto a = sha256_hex(std::string(64, 'a'));
  const auto b = sha256_hex(std::string(64, 'b'));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rs::crypto
