// Integration tests over the curated paper scenario: the scenario must
// encode the paper's published ground truth.
#include <gtest/gtest.h>

#include "src/synth/incidents.h"
#include "src/synth/paper_reference.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/software_survey.h"
#include "src/synth/user_agents.h"

namespace rs::synth {
namespace {

using rs::util::Date;

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { scenario_ = new PaperScenario(build_paper_scenario()); }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static PaperScenario* scenario_;
};
PaperScenario* ScenarioTest::scenario_ = nullptr;

TEST_F(ScenarioTest, HasAllTenProviders) {
  const auto providers = scenario_->database().providers();
  ASSERT_EQ(providers.size(), 10u);
  for (const char* name :
       {"NSS", "Apple", "Microsoft", "Java", "Debian", "Ubuntu", "Alpine",
        "AmazonLinux", "Android", "NodeJS"}) {
    EXPECT_NE(scenario_->database().find(name), nullptr) << name;
  }
}

TEST_F(ScenarioTest, SnapshotCountsNearPaper) {
  // Shape check: within 25% of every Table 2 row.
  for (const auto& row : paper::table2_dataset()) {
    const auto* h = scenario_->database().find(row.provider);
    ASSERT_NE(h, nullptr) << row.provider;
    const double measured = static_cast<double>(h->size());
    EXPECT_GT(measured, row.snapshots * 0.75) << row.provider;
    EXPECT_LT(measured, row.snapshots * 1.3) << row.provider;
  }
}

TEST_F(ScenarioTest, DateRangesMatchPaper) {
  for (const auto& row : paper::table2_dataset()) {
    const auto* h = scenario_->database().find(row.provider);
    ASSERT_NE(h, nullptr);
    // First/last snapshot within ~2 months of the published range.
    EXPECT_LT(std::abs(h->first_date() - row.from), 62) << row.provider;
    EXPECT_LT(std::abs(h->last_date() - row.to), 62) << row.provider;
  }
}

TEST_F(ScenarioTest, StoreSizeOrderingMatchesTable3) {
  auto avg_size = [&](const char* name) {
    const auto* h = scenario_->database().find(name);
    double sum = 0;
    for (const auto& s : h->snapshots()) sum += static_cast<double>(s.size());
    return sum / static_cast<double>(h->size());
  };
  const double microsoft = avg_size("Microsoft");
  const double apple = avg_size("Apple");
  const double nss = avg_size("NSS");
  const double java = avg_size("Java");
  EXPECT_GT(microsoft, apple);
  EXPECT_GT(apple, nss);
  EXPECT_GT(nss, java);
}

TEST_F(ScenarioTest, IncidentRootsExistAndAreRemovedFromNss) {
  const auto* nss = scenario_->database().find("NSS");
  for (const auto& incident : incident_catalog()) {
    for (const auto& id : incident.root_ids) {
      auto cert = scenario_->factory().find(id);
      ASSERT_NE(cert, nullptr) << id;
      // Present the day before removal, gone at the removal-date snapshot.
      const auto* before = nss->at(incident.nss_removal - 1);
      const auto* at = nss->at(incident.nss_removal);
      ASSERT_NE(before, nullptr);
      ASSERT_NE(at, nullptr);
      EXPECT_NE(before->find(cert->sha256()), nullptr)
          << incident.name << " " << id;
      EXPECT_EQ(at->find(cert->sha256()), nullptr)
          << incident.name << " " << id;
    }
  }
}

TEST_F(ScenarioTest, SymantecPartialDistrustInNssOnly) {
  const auto* nss = scenario_->database().find("NSS");
  const auto* snap = nss->at(Date::ymd(2020, 5, 15));
  ASSERT_NE(snap, nullptr);
  int with_cutoff = 0;
  for (const auto& e : snap->entries) {
    if (e.is_partially_distrusted_tls()) ++with_cutoff;
  }
  EXPECT_EQ(with_cutoff, 12);  // the twelve Symantec roots

  // Derivatives cannot express the cutoff.
  for (const char* deriv : {"Debian", "NodeJS", "Alpine"}) {
    const auto* h = scenario_->database().find(deriv);
    const auto* d = h->at(Date::ymd(2020, 12, 1));
    if (d == nullptr) continue;
    for (const auto& e : d->entries) {
      EXPECT_FALSE(e.is_partially_distrusted_tls()) << deriv;
    }
  }
}

TEST_F(ScenarioTest, DebianSymantecRemoveThenReadd) {
  const auto* debian = scenario_->database().find("Debian");
  auto sym1 = scenario_->factory().find("symantec-root-1");
  auto sym12 = scenario_->factory().find("symantec-root-12");
  ASSERT_NE(sym1, nullptr);
  ASSERT_NE(sym12, nullptr);
  const auto* during = debian->at(Date::ymd(2020, 5, 15));
  ASSERT_NE(during, nullptr);
  EXPECT_EQ(during->find(sym1->sha256()), nullptr)
      << "symantec-1 should be prematurely removed";
  EXPECT_NE(during->find(sym12->sha256()), nullptr)
      << "GeoTrust Universal CA 2 was curiously retained";
  const auto* after = debian->at(Date::ymd(2020, 8, 1));
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->find(sym1->sha256()), nullptr)
      << "symantec-1 should be re-added after user complaints";
}

TEST_F(ScenarioTest, NodeJsPreservesTwcaAndSkid) {
  const auto* node = scenario_->database().find("NodeJS");
  const auto* nss = scenario_->database().find("NSS");
  auto twca = scenario_->factory().find("twca-root");
  ASSERT_NE(twca, nullptr);
  // NSS dropped it in the v53 analog...
  EXPECT_EQ(nss->back().find(twca->sha256()), nullptr);
  // ...NodeJS still ships it.
  EXPECT_NE(node->back().find(twca->sha256()), nullptr);
}

TEST_F(ScenarioTest, AndroidNeverCarriedProcert) {
  const auto* android = scenario_->database().find("Android");
  auto procert = scenario_->factory().find("procert-root");
  ASSERT_NE(procert, nullptr);
  for (const auto& snap : android->snapshots()) {
    EXPECT_EQ(snap.find(procert->sha256()), nullptr) << snap.date.to_string();
  }
}

TEST_F(ScenarioTest, DebianCarriedNonNssRootsUntil2015) {
  const auto* debian = scenario_->database().find("Debian");
  int early_extra = 0, late_extra = 0;
  const auto* nss = scenario_->database().find("NSS");
  rs::store::FingerprintSet nss_ever;
  for (const auto& s : nss->snapshots()) {
    nss_ever = nss_ever.set_union(s.all_fingerprints());
  }
  const auto* early = debian->at(Date::ymd(2010, 1, 1));
  const auto* late = debian->at(Date::ymd(2018, 1, 1));
  ASSERT_NE(early, nullptr);
  ASSERT_NE(late, nullptr);
  const auto early_fps = early->all_fingerprints();
  for (const auto& fp : early_fps.items()) {
    if (!nss_ever.contains(fp)) ++early_extra;
  }
  const auto late_fps = late->all_fingerprints();
  for (const auto& fp : late_fps.items()) {
    if (!nss_ever.contains(fp)) ++late_extra;
  }
  EXPECT_EQ(early_extra, 19);  // paper: 19 historical non-NSS roots
  EXPECT_EQ(late_extra, 0);
}

TEST_F(ScenarioTest, DeterministicAcrossBuilds) {
  auto again = build_paper_scenario();
  const auto* a = scenario_->database().find("NSS");
  const auto* b = again.database().find("NSS");
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(a->back().all_fingerprints(), b->back().all_fingerprints());
  // A different seed produces different certificates.
  auto other = build_paper_scenario(7);
  const auto* c = other.database().find("NSS");
  EXPECT_FALSE(a->back().all_fingerprints() == c->back().all_fingerprints());
}

TEST(ScenarioData, UserAgentPopulationMatchesTable1) {
  const auto population = user_agent_population();
  int total = 0, included = 0;
  for (const auto& g : population) {
    total += g.versions;
    if (g.included) included += g.versions;
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(included, 154);  // 77.0%
}

TEST(ScenarioData, SurveyHasThreeCategories) {
  const auto survey = software_survey();
  EXPECT_GT(survey.size(), 35u);
  int os = 0, lib = 0, client = 0;
  for (const auto& s : survey) {
    if (s.kind == SoftwareKind::kOperatingSystem) ++os;
    if (s.kind == SoftwareKind::kTlsLibrary) ++lib;
    if (s.kind == SoftwareKind::kTlsClient) ++client;
  }
  EXPECT_EQ(os, 8);
  EXPECT_GE(lib, 19);
  EXPECT_GE(client, 12);
}

TEST(ScenarioData, IncidentCatalogMatchesTable7) {
  const auto catalog = incident_catalog();
  int high = 0, medium = 0;
  for (const auto& i : catalog) {
    if (i.severity == RemovalSeverity::kHigh) ++high;
    if (i.severity == RemovalSeverity::kMedium) ++medium;
  }
  EXPECT_EQ(high, 6);
  EXPECT_EQ(medium, 3);
  // Table 7 cert counts.
  for (const auto& i : catalog) {
    if (i.bugzilla_id == "1670769") {
      EXPECT_EQ(i.root_ids.size(), 10u);
    }
    if (i.bugzilla_id == "1618402") {
      EXPECT_EQ(i.root_ids.size(), 3u);
    }
    if (i.bugzilla_id == "1387260") {
      EXPECT_EQ(i.root_ids.size(), 4u);
    }
    if (i.bugzilla_id == "682927") {
      EXPECT_EQ(i.root_ids.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace rs::synth
