#include "src/synth/program_model.h"

#include <gtest/gtest.h>

namespace rs::synth {
namespace {

using rs::store::TrustPurpose;
using rs::util::Date;

RootSpec spec(const std::string& id) {
  RootSpec s;
  s.id = id;
  s.common_name = id + " CN";
  s.organization = "Org";
  s.not_before = Date::ymd(2005, 1, 1);
  s.not_after = Date::ymd(2035, 1, 1);
  return s;
}

TEST(CertFactory, MemoizesAndIsDeterministic) {
  CertFactory f1(1), f2(1), f3(2);
  const auto s = spec("a");
  auto c1 = f1.get(s);
  auto c1_again = f1.get(s);
  EXPECT_EQ(c1.get(), c1_again.get());  // same object
  EXPECT_EQ(f1.built_count(), 1u);
  EXPECT_EQ(c1->der(), f2.get(s)->der());      // same seed, same bytes
  EXPECT_NE(c1->der(), f3.get(s)->der());      // different factory seed
  EXPECT_EQ(f1.find("missing"), nullptr);
  EXPECT_NE(f1.find("a"), nullptr);
}

TEST(Timeline, IncludeRemoveLifecycle) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a");
  t.remove(Date::ymd(2015, 1, 1), "a");

  EXPECT_TRUE(t.materialize(Date::ymd(2009, 12, 31), f).empty());
  EXPECT_EQ(t.materialize(Date::ymd(2010, 1, 1), f).size(), 1u);
  EXPECT_EQ(t.materialize(Date::ymd(2014, 12, 31), f).size(), 1u);
  EXPECT_TRUE(t.materialize(Date::ymd(2015, 1, 1), f).empty());
}

TEST(Timeline, IncludePurposesRespected) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a", {TrustPurpose::kEmailProtection});
  const auto entries = t.materialize(Date::ymd(2012, 1, 1), f);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].is_tls_anchor());
  EXPECT_TRUE(entries[0].is_anchor_for(TrustPurpose::kEmailProtection));
}

TEST(Timeline, DistrustAfterApplied) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a");
  t.set_server_distrust_after(Date::ymd(2020, 4, 15), "a",
                              Date::ymd(2020, 1, 1));
  const auto before = t.materialize(Date::ymd(2020, 4, 14), f);
  EXPECT_FALSE(before[0].is_partially_distrusted_tls());
  const auto after = t.materialize(Date::ymd(2020, 4, 15), f);
  EXPECT_TRUE(after[0].is_partially_distrusted_tls());
  EXPECT_EQ(after[0].trust_for(TrustPurpose::kServerAuth).distrust_after,
            Date::ymd(2020, 1, 1));
}

TEST(Timeline, DistrustPurposesKeepsEntryPresent) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a",
            {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
  t.distrust(Date::ymd(2018, 1, 1), "a", {TrustPurpose::kServerAuth});
  const auto entries = t.materialize(Date::ymd(2019, 1, 1), f);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].is_tls_anchor());
  EXPECT_EQ(entries[0].trust_for(TrustPurpose::kServerAuth).level,
            rs::store::TrustLevel::kDistrusted);
  EXPECT_TRUE(entries[0].is_anchor_for(TrustPurpose::kEmailProtection));
}

TEST(Timeline, ReIncludeAfterRemoveResetsTrust) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a");
  t.set_server_distrust_after(Date::ymd(2012, 1, 1), "a", Date::ymd(2011, 1, 1));
  t.remove(Date::ymd(2014, 1, 1), "a");
  t.include(Date::ymd(2016, 1, 1), "a");
  const auto entries = t.materialize(Date::ymd(2017, 1, 1), f);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].is_partially_distrusted_tls());
}

TEST(Timeline, ActionsOnAbsentRootsAreNoOps) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.remove(Date::ymd(2010, 1, 1), "a");
  t.set_server_distrust_after(Date::ymd(2011, 1, 1), "a", Date::ymd(2011, 1, 1));
  EXPECT_TRUE(t.materialize(Date::ymd(2012, 1, 1), f).empty());
}

TEST(Timeline, EntryOrderIsFirstInclusionOrder) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.add_spec(spec("b"));
  t.add_spec(spec("c"));
  t.include(Date::ymd(2012, 1, 1), "b");
  t.include(Date::ymd(2010, 1, 1), "c");
  t.include(Date::ymd(2011, 1, 1), "a");
  const auto entries = t.materialize(Date::ymd(2013, 1, 1), f);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].certificate->subject().common_name(), "c CN");
  EXPECT_EQ(entries[1].certificate->subject().common_name(), "a CN");
  EXPECT_EQ(entries[2].certificate->subject().common_name(), "b CN");
}

TEST(Timeline, ChangeDatesAreSortedUnique) {
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2012, 1, 1), "a");
  t.remove(Date::ymd(2010, 1, 1), "a");
  t.include(Date::ymd(2012, 1, 1), "a");
  const auto dates = t.change_dates();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[0], Date::ymd(2010, 1, 1));
  EXPECT_EQ(dates[1], Date::ymd(2012, 1, 1));
}

TEST(SnapshotAt, FillsMetadata) {
  CertFactory f(1);
  Timeline t;
  t.add_spec(spec("a"));
  t.include(Date::ymd(2010, 1, 1), "a");
  const auto snap =
      snapshot_at(t, f, "TestProv", Date::ymd(2011, 1, 1), "v7");
  EXPECT_EQ(snap.provider, "TestProv");
  EXPECT_EQ(snap.version, "v7");
  EXPECT_EQ(snap.size(), 1u);
}

}  // namespace
}  // namespace rs::synth
