#include "src/synth/simulator.h"

#include <gtest/gtest.h>

namespace rs::synth {
namespace {

TEST(Simulator, ProducesRequestedShape) {
  SimulatorConfig cfg;
  cfg.seed = 3;
  cfg.program_count = 2;
  cfg.derivative_count = 2;
  cfg.ca_count = 40;
  const auto eco = simulate_ecosystem(cfg);
  EXPECT_EQ(eco.database.provider_count(), 4u);
  EXPECT_NE(eco.database.find("Prog0"), nullptr);
  EXPECT_NE(eco.database.find("Prog1"), nullptr);
  EXPECT_NE(eco.database.find("Deriv0"), nullptr);
  EXPECT_NE(eco.database.find("Deriv1"), nullptr);
  EXPECT_EQ(eco.base_program, "Prog0");
  EXPECT_EQ(eco.derivative_names.size(), 2u);
}

TEST(Simulator, DeterministicInSeed) {
  SimulatorConfig cfg;
  cfg.seed = 11;
  cfg.ca_count = 30;
  const auto a = simulate_ecosystem(cfg);
  const auto b = simulate_ecosystem(cfg);
  const auto& ha = *a.database.find("Prog0");
  const auto& hb = *b.database.find("Prog0");
  ASSERT_EQ(ha.size(), hb.size());
  EXPECT_EQ(ha.back().all_fingerprints(), hb.back().all_fingerprints());

  cfg.seed = 12;
  const auto c = simulate_ecosystem(cfg);
  EXPECT_FALSE(ha.back().all_fingerprints() ==
               c.database.find("Prog0")->back().all_fingerprints());
}

TEST(Simulator, IncidentsAreRemovedFromBaseProgram) {
  SimulatorConfig cfg;
  cfg.seed = 5;
  cfg.incident_count = 4;
  const auto eco = simulate_ecosystem(cfg);
  EXPECT_GT(eco.incidents.size(), 0u);
  const auto* base = eco.database.find(eco.base_program);
  for (const auto& inc : eco.incidents) {
    // After removal (+ one snapshot interval), the base program must not
    // trust the root any more.
    const auto* after =
        base->at(inc.removal + cfg.snapshot_interval_days + 1);
    if (after == nullptr) continue;
    for (const auto& e : after->entries) {
      EXPECT_NE(e.certificate->subject().common_name().value_or(""),
                "Simulated Root CA " + inc.root_id.substr(7));
    }
  }
}

TEST(Simulator, SnapshotsRespectDateRange) {
  SimulatorConfig cfg;
  cfg.seed = 9;
  cfg.start = rs::util::Date::ymd(2010, 1, 1);
  cfg.end = rs::util::Date::ymd(2012, 1, 1);
  const auto eco = simulate_ecosystem(cfg);
  for (const auto& [name, history] : eco.database.histories()) {
    for (const auto& snap : history.snapshots()) {
      EXPECT_GE(snap.date, cfg.start) << name;
      EXPECT_LE(snap.date, cfg.end) << name;
    }
  }
}

TEST(Simulator, DerivativesTrackBaseProgram) {
  SimulatorConfig cfg;
  cfg.seed = 21;
  cfg.derivative_count = 1;
  cfg.min_lag_days = 30;
  cfg.max_lag_days = 120;
  const auto eco = simulate_ecosystem(cfg);
  const auto* base = eco.database.find("Prog0");
  const auto* deriv = eco.database.find("Deriv0");
  ASSERT_NE(deriv, nullptr);
  // The derivative's final TLS set should heavily overlap the base's.
  const auto base_tls = base->back().tls_anchors();
  const auto deriv_tls = deriv->back().tls_anchors();
  ASSERT_GT(base_tls.size(), 0u);
  EXPECT_LT(deriv_tls.jaccard_distance(base_tls), 0.5);
}

TEST(Simulator, ZeroDerivativesSupported) {
  SimulatorConfig cfg;
  cfg.seed = 2;
  cfg.derivative_count = 0;
  cfg.program_count = 1;
  const auto eco = simulate_ecosystem(cfg);
  EXPECT_EQ(eco.database.provider_count(), 1u);
  EXPECT_TRUE(eco.derivative_names.empty());
}

TEST(Simulator, CtLogsAreGeneratedAndDeterministic) {
  SimulatorConfig cfg;
  cfg.seed = 5;
  cfg.ca_count = 40;
  cfg.program_count = 2;
  cfg.derivative_count = 1;
  cfg.ct_log_count = 2;
  const auto eco = simulate_ecosystem(cfg);
  ASSERT_EQ(eco.ct_log_names.size(), 2u);
  EXPECT_EQ(eco.ct_log_names[0], "CtLog0");
  EXPECT_EQ(eco.ct_log_names[1], "CtLog1");
  EXPECT_EQ(eco.database.provider_count(), 5u);
  for (const auto& name : eco.ct_log_names) {
    const auto* h = eco.database.find(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_FALSE(h->empty()) << name;
    // A log accepts roots from programs it watches, so it is non-trivial.
    EXPECT_GT(h->back().tls_anchors().size(), 0u) << name;
  }
  const auto again = simulate_ecosystem(cfg);
  for (const auto& name : eco.ct_log_names) {
    EXPECT_EQ(eco.database.find(name)->back().all_fingerprints(),
              again.database.find(name)->back().all_fingerprints())
        << name;
  }
}

TEST(Simulator, ZeroCtLogsLeavesTheEcosystemByteIdentical) {
  SimulatorConfig base;
  base.seed = 11;
  base.ca_count = 30;
  const auto before = simulate_ecosystem(base);
  SimulatorConfig with_knobs = base;
  with_knobs.ct_log_count = 0;  // explicit default: nothing changes
  with_knobs.ct_min_lag_days = 90;
  with_knobs.ct_max_lag_days = 120;
  const auto after = simulate_ecosystem(with_knobs);
  EXPECT_TRUE(after.ct_log_names.empty());
  ASSERT_EQ(before.database.provider_count(), after.database.provider_count());
  for (const auto& name : before.database.providers()) {
    const auto* ha = before.database.find(name);
    const auto* hb = after.database.find(name);
    ASSERT_NE(hb, nullptr);
    ASSERT_EQ(ha->size(), hb->size());
    EXPECT_EQ(ha->back().all_fingerprints(), hb->back().all_fingerprints());
  }
}

}  // namespace
}  // namespace rs::synth
