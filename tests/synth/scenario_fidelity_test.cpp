// Deeper §6 fidelity checks on the curated scenario: email-conflation
// windows, AmazonLinux's re-adds, NodeJS's ValiCert, and Apple's overlay.
#include <gtest/gtest.h>

#include "src/analysis/churn.h"
#include "src/analysis/diffs.h"
#include "src/analysis/staleness.h"
#include "src/store/overlay.h"
#include "src/synth/paper_scenario.h"

namespace rs::synth {
namespace {

using rs::util::Date;

class FidelityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new PaperScenario(build_paper_scenario());
    const auto* nss = scenario_->database().find("NSS");
    index_ = new rs::analysis::NssVersionIndex(
        rs::analysis::build_version_index(*nss));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete scenario_;
    index_ = nullptr;
    scenario_ = nullptr;
  }

  static std::size_t email_adds_at(const char* provider, Date when) {
    const auto* nss = scenario_->database().find("NSS");
    const auto* h = scenario_->database().find(provider);
    const auto series = rs::analysis::derivative_diffs(*h, *nss, *index_);
    // Latest point dated on or before `when`.
    const rs::analysis::SnapshotDiff* best = nullptr;
    for (const auto& p : series.points) {
      if (p.date <= when) best = &p;
    }
    if (best == nullptr) return 0;
    return best->adds[static_cast<std::size_t>(
        rs::analysis::AddCategory::kEmailOnlyRoot)];
  }

  static PaperScenario* scenario_;
  static rs::analysis::NssVersionIndex* index_;
};
PaperScenario* FidelityTest::scenario_ = nullptr;
rs::analysis::NssVersionIndex* FidelityTest::index_ = nullptr;

TEST_F(FidelityTest, DebianEmailConflationEndsIn2017) {
  EXPECT_GT(email_adds_at("Debian", Date::ymd(2016, 6, 1)), 0u);
  EXPECT_EQ(email_adds_at("Debian", Date::ymd(2018, 6, 1)), 0u);
}

TEST_F(FidelityTest, AlpineEmailConflationEndsIn2020) {
  EXPECT_GT(email_adds_at("Alpine", Date::ymd(2019, 9, 1)), 0u);
  EXPECT_EQ(email_adds_at("Alpine", Date::ymd(2020, 12, 1)), 0u);
}

TEST_F(FidelityTest, NodeJsIsTlsOnlyFromTheStart) {
  EXPECT_EQ(email_adds_at("NodeJS", Date::ymd(2016, 1, 1)), 0u);
  EXPECT_EQ(email_adds_at("NodeJS", Date::ymd(2020, 1, 1)), 0u);
}

TEST_F(FidelityTest, AmazonReAdds1024BitRootsInWindow) {
  // §6.2: AmazonLinux continually re-added sixteen 1024-bit roots after NSS
  // purged them (2016-2018), then dropped them.
  const auto* amazon = scenario_->database().find("AmazonLinux");
  auto weak_count = [&](Date when) {
    const auto* snap = amazon->at(when);
    if (snap == nullptr) return std::size_t{0};
    return snap->weak_rsa_count();
  };
  // The synthetic pool has nine 1024-bit roots still unexpired in the
  // window (the paper counts sixteen in the real dataset).
  EXPECT_GE(weak_count(Date::ymd(2017, 6, 1)), 8u);
  EXPECT_EQ(weak_count(Date::ymd(2019, 6, 1)), 0u);
}

TEST_F(FidelityTest, NodeJsCarriesValiCertForever) {
  auto valicert = scenario_->factory().find("nodejs-valicert");
  ASSERT_NE(valicert, nullptr);
  const auto* node = scenario_->database().find("NodeJS");
  // Present from shortly after its 2015 re-add through the end.
  const auto* early = node->at(Date::ymd(2016, 1, 1));
  ASSERT_NE(early, nullptr);
  EXPECT_NE(early->find(valicert->sha256()), nullptr);
  EXPECT_NE(node->back().find(valicert->sha256()), nullptr);
  // And never in NSS.
  const auto* nss = scenario_->database().find("NSS");
  for (const auto& snap : nss->snapshots()) {
    ASSERT_EQ(snap.find(valicert->sha256()), nullptr) << snap.date.to_string();
  }
}

TEST_F(FidelityTest, AppleOverlayRevokesWithoutRemoving) {
  const auto& overlays = scenario_->overlays();
  ASSERT_TRUE(overlays.contains("Apple"));
  const auto& overlay = overlays.at("Apple");
  EXPECT_EQ(overlay.revocations().size(), 4u);

  const auto* apple = scenario_->database().find("Apple");
  const auto& latest = apple->back();
  const auto zombies = rs::store::revoked_but_shipped(latest, overlay);
  // StartCom x2 + Certinomis + Gov. of Venezuela.
  EXPECT_EQ(zombies.size(), 4u);
  // And the effective set is correspondingly smaller than the shipped one.
  EXPECT_EQ(rs::store::effective_tls_anchors(latest, overlay).size() +
                zombies.size(),
            latest.tls_anchors().size());
}

TEST_F(FidelityTest, VenezuelaRootStillShippedStillExclusive) {
  // §5.2: the Gov. of Venezuela root is blocked by Apple's revocation
  // system yet ships in the trust store — and counts as Apple-exclusive.
  auto cert = scenario_->factory().find("apple-excl-venezuela");
  ASSERT_NE(cert, nullptr);
  const auto* apple = scenario_->database().find("Apple");
  const auto* entry = apple->back().find(cert->sha256());
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->is_tls_anchor());
  EXPECT_TRUE(scenario_->overlays().at("Apple").is_revoked(
      cert->sha256(), apple->back().date));
}

TEST_F(FidelityTest, Figure1OutliersReproduced) {
  // §4's ordination outliers: Java 2018-08 ("removal of 9 roots ... and the
  // addition of 21") and Apple 2014-02 (a large batch after stagnation).
  const auto java = rs::analysis::churn_series(
      *scenario_->database().find("Java"));
  const rs::analysis::ChurnPoint* java_peak = nullptr;
  for (const auto& p : java.points) {
    if (p.date == Date::ymd(2018, 8, 15)) java_peak = &p;
  }
  ASSERT_NE(java_peak, nullptr);
  EXPECT_EQ(java_peak->added, 21u);
  EXPECT_EQ(java_peak->removed, 9u);
  const auto java_outliers = rs::analysis::find_outliers({java}, 1.5, 8);
  ASSERT_FALSE(java_outliers.empty());
  EXPECT_EQ(java_outliers[0].point.date, Date::ymd(2018, 8, 15));

  const auto apple = rs::analysis::churn_series(
      *scenario_->database().find("Apple"));
  const auto apple_outliers = rs::analysis::find_outliers({apple}, 2.0, 8);
  bool found_2014 = false;
  for (const auto& o : apple_outliers) {
    if (o.point.date.year() == 2014 && o.point.date.month() == 2) {
      found_2014 = true;
      EXPECT_GE(o.point.total_change(), 20u);  // paper: 67 changed roots
    }
  }
  EXPECT_TRUE(found_2014);
}

TEST_F(FidelityTest, AlpineManuallyRemovedExpiredAddTrust) {
  auto addtrust = scenario_->factory().find("addtrust-root");
  ASSERT_NE(addtrust, nullptr);
  const auto* alpine = scenario_->database().find("Alpine");
  const auto* before = alpine->at(Date::ymd(2020, 5, 20));
  const auto* after = alpine->at(Date::ymd(2020, 8, 1));
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before->find(addtrust->sha256()), nullptr);
  EXPECT_EQ(after->find(addtrust->sha256()), nullptr);
}

}  // namespace
}  // namespace rs::synth
