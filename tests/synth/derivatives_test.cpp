#include "src/synth/derivatives.h"

#include <gtest/gtest.h>

namespace rs::synth {
namespace {

using rs::store::TrustPurpose;
using rs::util::Date;

RootSpec spec(const std::string& id, Date nb = Date::ymd(2005, 1, 1)) {
  RootSpec s;
  s.id = id;
  s.common_name = id + " CN";
  s.not_before = nb;
  s.not_after = nb.add_months(12 * 30);
  return s;
}

/// NSS fixture: "tls" TLS-anchored from 2010; "email" email-only from 2010;
/// "late" TLS from 2018; "partial" TLS with a cutoff from 2019.
Timeline make_nss() {
  Timeline t;
  for (const char* id : {"tls", "email", "late", "partial"}) t.add_spec(spec(id));
  t.include(Date::ymd(2010, 1, 1), "tls");
  t.include(Date::ymd(2010, 1, 1), "email", {TrustPurpose::kEmailProtection});
  t.include(Date::ymd(2018, 1, 1), "late");
  t.include(Date::ymd(2010, 1, 1), "partial");
  t.set_server_distrust_after(Date::ymd(2019, 1, 1), "partial",
                              Date::ymd(2018, 6, 1));
  return t;
}

DerivativePolicy base_policy() {
  DerivativePolicy p;
  p.name = "TestDeriv";
  p.lag_days = 100;
  p.lag_jitter_days = 0;
  p.snapshot_dates = {Date::ymd(2015, 1, 1), Date::ymd(2019, 1, 1)};
  return p;
}

TEST(Derivatives, LagDelaysCopies) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.snapshot_dates = {Date::ymd(2018, 2, 1), Date::ymd(2018, 8, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  ASSERT_EQ(history.size(), 2u);
  // 2018-02-01 - 100d < 2018-01-01: "late" not yet copied.
  EXPECT_EQ(history.snapshots()[0].tls_anchors().size(), 2u);
  // 2018-08-01 - 100d >= 2018-01-01: now present.
  EXPECT_EQ(history.snapshots()[1].tls_anchors().size(), 3u);
}

TEST(Derivatives, EmailConflationWindow) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.email_conflation_until = Date::ymd(2017, 1, 1);
  p.snapshot_dates = {Date::ymd(2015, 1, 1), Date::ymd(2018, 1, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  // Before the cutover: email-only root is (mis)trusted for TLS.
  const auto& early = history.snapshots()[0];
  EXPECT_EQ(early.tls_anchors().size(), 3u);  // tls, partial, email
  // After: TLS-only population.
  const auto& late = history.snapshots()[1];
  EXPECT_EQ(late.tls_anchors().size(), 2u);  // tls, partial
}

TEST(Derivatives, CopiedEntriesAreMultiPurposeAndFlattened) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.snapshot_dates = {Date::ymd(2020, 1, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  ASSERT_EQ(history.size(), 1u);
  for (const auto& e : history.snapshots()[0].entries) {
    // The single-file format grants everything...
    for (TrustPurpose purpose : rs::store::kAllPurposes) {
      EXPECT_TRUE(e.is_anchor_for(purpose));
    }
    // ...and cannot carry partial-distrust cutoffs.
    EXPECT_FALSE(e.is_partially_distrusted_tls());
  }
}

TEST(Derivatives, FreezeCapsEffectiveDate) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.freeze_effective_after = Date::ymd(2016, 1, 1);
  p.snapshot_dates = {Date::ymd(2020, 6, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  // Frozen before "late" landed in NSS.
  EXPECT_EQ(history.snapshots()[0].tls_anchors().size(), 2u);
  EXPECT_EQ(history.snapshots()[0].version, "sync-2016-01-01");
}

TEST(Derivatives, AlwaysAbsentOverride) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.overrides.push_back({"tls", {}, {}, {}, {}, /*always_absent=*/true});
  p.snapshot_dates = {Date::ymd(2020, 1, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  const auto& snap = history.snapshots()[0];
  EXPECT_EQ(snap.find(f.find("tls")->sha256()), nullptr);
}

TEST(Derivatives, AbsentWindowThenReappears) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  DerivativeOverride ov;
  ov.root_id = "tls";
  ov.absent_from = Date::ymd(2016, 1, 1);
  ov.absent_until = Date::ymd(2017, 1, 1);
  p.overrides.push_back(ov);
  p.snapshot_dates = {Date::ymd(2015, 6, 1), Date::ymd(2016, 6, 1),
                      Date::ymd(2018, 1, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  const auto fp = f.find("tls")->sha256();
  EXPECT_NE(history.snapshots()[0].find(fp), nullptr);
  EXPECT_EQ(history.snapshots()[1].find(fp), nullptr);
  EXPECT_NE(history.snapshots()[2].find(fp), nullptr);
}

TEST(Derivatives, ForcePresentFromExtraSpecs) {
  CertFactory f(1);
  Timeline nss = make_nss();
  std::map<std::string, RootSpec> extra;
  extra.emplace("local", spec("local"));
  DerivativePolicy p = base_policy();
  DerivativeOverride ov;
  ov.root_id = "local";
  ov.present_from = Date::ymd(2016, 1, 1);
  ov.present_until = Date::ymd(2018, 1, 1);
  ov.absent_from = Date::ymd(2018, 1, 2);
  p.overrides.push_back(ov);
  p.snapshot_dates = {Date::ymd(2015, 6, 1), Date::ymd(2017, 1, 1),
                      Date::ymd(2019, 1, 1)};
  const auto history = generate_derivative(p, nss, f, extra);
  const auto fp = f.find("local")->sha256();
  EXPECT_EQ(history.snapshots()[0].find(fp), nullptr);  // before window
  EXPECT_NE(history.snapshots()[1].find(fp), nullptr);  // inside window
  EXPECT_EQ(history.snapshots()[2].find(fp), nullptr);  // after absent_from
}

TEST(Derivatives, AbsenceWinsOverPresenceRegardlessOfDeclarationOrder) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  // Absence declared FIRST, presence second: the root must still be absent.
  DerivativeOverride absent;
  absent.root_id = "tls";
  absent.always_absent = true;
  DerivativeOverride present;
  present.root_id = "tls";
  present.present_from = Date::ymd(2010, 1, 1);
  p.overrides = {absent, present};
  p.snapshot_dates = {Date::ymd(2020, 1, 1)};
  const auto h1 = generate_derivative(p, nss, f, {});
  EXPECT_EQ(h1.snapshots()[0].find(f.find("tls")->sha256()), nullptr);

  // And in the opposite declaration order.
  p.overrides = {present, absent};
  const auto h2 = generate_derivative(p, nss, f, {});
  EXPECT_EQ(h2.snapshots()[0].find(f.find("tls")->sha256()), nullptr);
}

TEST(Derivatives, LagIsDeterministicPerProviderAndDate) {
  DerivativePolicy p = base_policy();
  p.lag_jitter_days = 30;
  const int a = derivative_lag_days(p, Date::ymd(2020, 1, 1));
  const int b = derivative_lag_days(p, Date::ymd(2020, 1, 1));
  EXPECT_EQ(a, b);
  EXPECT_GE(a, p.lag_days - p.lag_jitter_days);
  EXPECT_LE(a, p.lag_days + p.lag_jitter_days);
  DerivativePolicy q = p;
  q.name = "OtherDeriv";
  int diffs = 0;
  for (int m = 0; m < 12; ++m) {
    const Date d = Date::ymd(2020, 1 + m, 1);
    if (derivative_lag_days(p, d) != derivative_lag_days(q, d)) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // providers get independent jitter streams
}

TEST(Derivatives, SnapshotDatesSortedAndDeduped) {
  CertFactory f(1);
  Timeline nss = make_nss();
  DerivativePolicy p = base_policy();
  p.snapshot_dates = {Date::ymd(2019, 1, 1), Date::ymd(2015, 1, 1),
                      Date::ymd(2019, 1, 1)};
  const auto history = generate_derivative(p, nss, f, {});
  ASSERT_EQ(history.size(), 2u);
  EXPECT_LT(history.snapshots()[0].date, history.snapshots()[1].date);
}

}  // namespace
}  // namespace rs::synth
