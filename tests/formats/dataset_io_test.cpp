#include "src/formats/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/synth/simulator.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

namespace fs = std::filesystem;
using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest schedules each discovered test as its own
    // process, so a shared directory races under `ctest -j`.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("rs_dataset_test_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

StoreDatabase small_db() {
  auto cert = [](std::uint64_t seed) {
    rs::x509::Name n;
    n.add_common_name("Dataset Root " + std::to_string(seed));
    return std::make_shared<const rs::x509::Certificate>(
        rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
  };
  StoreDatabase db;
  ProviderHistory a("ProvA");
  {
    Snapshot s;
    s.provider = "ProvA";
    s.date = Date::ymd(2020, 1, 1);
    s.version = "v1";
    auto entry = rs::store::make_tls_anchor(cert(1));
    entry.trust_for(rs::store::TrustPurpose::kServerAuth).distrust_after =
        Date::ymd(2021, 1, 1);
    s.entries = {entry};
    a.add(std::move(s));
  }
  {
    Snapshot s;
    s.provider = "ProvA";
    s.date = Date::ymd(2020, 6, 1);
    s.version = "v2";
    s.entries = {rs::store::make_tls_anchor(cert(1)),
                 rs::store::make_tls_anchor(cert(2))};
    a.add(std::move(s));
  }
  db.add(std::move(a));
  ProviderHistory b("ProvB");
  {
    Snapshot s;
    s.provider = "ProvB";
    s.date = Date::ymd(2020, 3, 1);
    s.version = "r7";
    s.entries = {rs::store::make_anchor_for(
        cert(3), {rs::store::TrustPurpose::kEmailProtection})};
    b.add(std::move(s));
  }
  db.add(std::move(b));
  return db;
}

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  const StoreDatabase original = small_db();
  auto written = write_dataset(original, dir_.string());
  ASSERT_TRUE(written.ok()) << written.error();
  ASSERT_TRUE(fs::exists(dir_ / "MANIFEST"));

  auto loaded = load_dataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  const auto& db = loaded.value();
  EXPECT_EQ(db.provider_count(), 2u);
  EXPECT_EQ(db.total_snapshots(), 3u);

  const auto* a = db.find("ProvA");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ(a->snapshots()[0].version, "v1");
  EXPECT_EQ(a->snapshots()[0].date, Date::ymd(2020, 1, 1));
  // Trust fidelity through RSTS: the cutoff survives.
  ASSERT_EQ(a->snapshots()[0].entries.size(), 1u);
  EXPECT_EQ(a->snapshots()[0]
                .entries[0]
                .trust_for(rs::store::TrustPurpose::kServerAuth)
                .distrust_after,
            Date::ymd(2021, 1, 1));
  // Certificates byte-identical.
  const auto* orig_a = original.find("ProvA");
  EXPECT_EQ(a->snapshots()[1].entries[1].certificate->der(),
            orig_a->snapshots()[1].entries[1].certificate->der());

  const auto* b = db.find("ProvB");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->snapshots()[0].entries[0].is_tls_anchor());
}

TEST_F(DatasetIoTest, SameDaySnapshotsGetDistinctFiles) {
  StoreDatabase db = small_db();
  ProviderHistory dup("Dup");
  for (int i = 0; i < 3; ++i) {
    Snapshot s;
    s.provider = "Dup";
    s.date = Date::ymd(2020, 5, 5);
    s.version = "v" + std::to_string(i);
    dup.add(std::move(s));
  }
  db.add(std::move(dup));
  ASSERT_TRUE(write_dataset(db, dir_.string()).ok());
  auto loaded = load_dataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().find("Dup")->size(), 3u);
}

TEST_F(DatasetIoTest, MissingManifestFails) {
  fs::create_directories(dir_);
  auto loaded = load_dataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("MANIFEST"), std::string::npos);
}

TEST_F(DatasetIoTest, BadHeaderFails) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "MANIFEST") << "WRONG 9\n";
  EXPECT_FALSE(load_dataset(dir_.string()).ok());
}

TEST_F(DatasetIoTest, MissingSnapshotFileFails) {
  ASSERT_TRUE(write_dataset(small_db(), dir_.string()).ok());
  // Delete one referenced file.
  fs::remove(dir_ / "ProvB" / "2020-03-01.rsts");
  auto loaded = load_dataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("missing snapshot"), std::string::npos);
}

TEST_F(DatasetIoTest, CorruptSnapshotFails) {
  ASSERT_TRUE(write_dataset(small_db(), dir_.string()).ok());
  std::ofstream(dir_ / "ProvB" / "2020-03-01.rsts") << "RSTS 1\nroot\n";
  EXPECT_FALSE(load_dataset(dir_.string()).ok());
}

TEST_F(DatasetIoTest, SimulatedEcosystemRoundTrips) {
  rs::synth::SimulatorConfig cfg;
  cfg.seed = 77;
  cfg.ca_count = 30;
  cfg.program_count = 1;
  cfg.derivative_count = 1;
  cfg.snapshot_interval_days = 365;
  const auto eco = rs::synth::simulate_ecosystem(cfg);
  ASSERT_TRUE(write_dataset(eco.database, dir_.string()).ok());
  auto loaded = load_dataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().total_snapshots(), eco.database.total_snapshots());
  // Spot-check a fingerprint set.
  const auto* orig = eco.database.find("Prog0");
  const auto* back = loaded.value().find("Prog0");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(orig->back().all_fingerprints(), back->back().all_fingerprints());
}

}  // namespace
}  // namespace rs::formats
