#include "src/formats/jks.h"

#include <gtest/gtest.h>

#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustPurpose;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("JKS Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(Jks, RoundTripDefaultPassword) {
  std::vector<TrustEntry> entries = {
      rs::store::make_tls_anchor(make_cert(1)),
      rs::store::make_tls_anchor(make_cert(2)),
  };
  const auto blob = write_jks(entries, Date::ymd(2021, 2, 15));
  auto parsed = parse_jks(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].certificate->der(),
            entries[0].certificate->der());
  // JKS carries no purpose restrictions: everything is trusted.
  for (TrustPurpose p : rs::store::kAllPurposes) {
    EXPECT_TRUE(parsed.value().entries[0].is_anchor_for(p));
  }
}

TEST(Jks, MagicBytesAndVersion) {
  const auto blob = write_jks({rs::store::make_tls_anchor(make_cert(3))},
                              Date::ymd(2020, 1, 1));
  ASSERT_GE(blob.size(), 12u);
  EXPECT_EQ(blob[0], 0xFE);
  EXPECT_EQ(blob[1], 0xED);
  EXPECT_EQ(blob[2], 0xFE);
  EXPECT_EQ(blob[3], 0xED);
  EXPECT_EQ(blob[7], 0x02);  // version 2
}

TEST(Jks, WrongPasswordFailsIntegrity) {
  const auto blob = write_jks({rs::store::make_tls_anchor(make_cert(4))},
                              Date::ymd(2020, 1, 1), "changeit");
  auto parsed = parse_jks(blob, "hunter2");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("integrity"), std::string::npos);
}

TEST(Jks, CustomPasswordRoundTrips) {
  const auto blob = write_jks({rs::store::make_tls_anchor(make_cert(5))},
                              Date::ymd(2020, 1, 1), "s3cret");
  EXPECT_TRUE(parse_jks(blob, "s3cret").ok());
  EXPECT_FALSE(parse_jks(blob, "changeit").ok());
}

TEST(Jks, CorruptionDetected) {
  auto blob = write_jks({rs::store::make_tls_anchor(make_cert(6))},
                        Date::ymd(2020, 1, 1));
  blob[blob.size() / 2] ^= 0xFF;
  EXPECT_FALSE(parse_jks(blob).ok());
}

TEST(Jks, TruncationDetected) {
  const auto blob = write_jks({rs::store::make_tls_anchor(make_cert(7))},
                              Date::ymd(2020, 1, 1));
  const std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 21);
  EXPECT_FALSE(parse_jks(truncated).ok());
  const std::vector<std::uint8_t> tiny = {0xFE, 0xED};
  auto parsed = parse_jks(tiny);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("too short"), std::string::npos);
}

TEST(Jks, EmptyStoreRoundTrips) {
  const auto blob = write_jks({}, Date::ymd(2020, 1, 1));
  auto parsed = parse_jks(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST(Jks, AliasesAreLowercasedAndUnique) {
  // Two roots with the same CN must still produce distinct aliases
  // (the short fingerprint suffix disambiguates).
  rs::x509::Name n;
  n.add_common_name("SAME NAME CA");
  auto a = std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(8).build());
  auto b = std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(9).build());
  const auto blob = write_jks({rs::store::make_tls_anchor(a),
                               rs::store::make_tls_anchor(b)},
                              Date::ymd(2020, 1, 1));
  const std::string as_text(blob.begin(), blob.end());
  EXPECT_NE(as_text.find("same name ca [" + a->short_id() + "]"),
            std::string::npos);
  EXPECT_NE(as_text.find("same name ca [" + b->short_id() + "]"),
            std::string::npos);
  auto parsed = parse_jks(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 2u);
}

}  // namespace
}  // namespace rs::formats
