#include "src/formats/certdata.h"

#include <gtest/gtest.h>

#include "src/store/trust.h"
#include "src/util/date.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed,
                                                       const std::string& cn) {
  rs::x509::Name n;
  n.add_common_name(cn);
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TrustEntry full_entry(std::uint64_t seed) {
  TrustEntry e = rs::store::make_anchor_for(
      make_cert(seed, "Certdata Root " + std::to_string(seed)),
      {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
  e.trust_for(TrustPurpose::kCodeSigning).level = TrustLevel::kDistrusted;
  return e;
}

TEST(Certdata, WriteParseRoundTripPreservesTrust) {
  std::vector<TrustEntry> entries = {full_entry(1), full_entry(2)};
  entries[1].trust_for(TrustPurpose::kServerAuth).distrust_after =
      Date::ymd(2020, 1, 1);

  const std::string text = write_certdata(entries);
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().warnings.empty());
  ASSERT_EQ(parsed.value().entries.size(), 2u);

  for (std::size_t i = 0; i < 2; ++i) {
    const auto& in = entries[i];
    const auto& out = parsed.value().entries[i];
    EXPECT_EQ(out.certificate->der(), in.certificate->der());
    for (TrustPurpose p : rs::store::kAllPurposes) {
      EXPECT_EQ(out.trust_for(p).level, in.trust_for(p).level);
    }
  }
  EXPECT_EQ(parsed.value()
                .entries[1]
                .trust_for(TrustPurpose::kServerAuth)
                .distrust_after,
            Date::ymd(2020, 1, 1));
  EXPECT_FALSE(parsed.value()
                   .entries[0]
                   .trust_for(TrustPurpose::kServerAuth)
                   .distrust_after.has_value());
}

TEST(Certdata, ToleratesCommentsAndBlankLines) {
  const std::string text = "# leading comment\n\n" +
                           write_certdata({full_entry(3)}) +
                           "\n# trailing comment\n";
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
}

TEST(Certdata, AcceptsLegacyNetscapeTokens) {
  std::string text = write_certdata({full_entry(4)});
  // Downgrade spellings to the pre-NSS-3.x vocabulary.
  auto replace_all = [&](const std::string& from, const std::string& to) {
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
      text.replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all("CKO_NSS_TRUST", "CKO_NETSCAPE_TRUST");
  replace_all("CKT_NSS_TRUSTED_DELEGATOR", "CKT_NETSCAPE_TRUSTED_DELEGATOR");
  replace_all("CKT_NSS_MUST_VERIFY_TRUST", "CKT_NETSCAPE_MUST_VERIFY_TRUST");
  replace_all("CKT_NSS_NOT_TRUSTED", "CKT_NETSCAPE_UNTRUSTED");
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  EXPECT_TRUE(parsed.value().entries[0].is_tls_anchor());
}

TEST(Certdata, CertificateWithoutTrustObjectWarns) {
  std::string text = write_certdata({full_entry(5)});
  // Chop off everything from the trust object on.
  const std::size_t pos = text.find("CKO_NSS_TRUST");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t line_start = text.rfind("CKA_CLASS", pos);
  text.resize(line_start);
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  EXPECT_FALSE(parsed.value().entries[0].is_tls_anchor());  // must-verify
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("without trust object"),
            std::string::npos);
}

TEST(Certdata, TrustObjectForUnknownHashWarns) {
  std::string text = write_certdata({full_entry(6)});
  // Remove the certificate object, keep the trust object.
  const std::size_t trust_pos = text.find("# Trust for");
  ASSERT_NE(trust_pos, std::string::npos);
  const std::size_t header_end = text.find("BEGINDATA\n") + 10;
  text = text.substr(0, header_end) + text.substr(trust_pos);
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("unknown SHA1"),
            std::string::npos);
}

TEST(Certdata, RejectsGrammarCorruption) {
  // Bad octal digit.
  EXPECT_FALSE(parse_certdata("BEGINDATA\n"
                              "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"
                              "CKA_VALUE MULTILINE_OCTAL\n"
                              "\\999\n"
                              "END\n")
                   .ok());
  // Unterminated octal block.
  EXPECT_FALSE(parse_certdata("BEGINDATA\n"
                              "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"
                              "CKA_VALUE MULTILINE_OCTAL\n"
                              "\\060\\061\n")
                   .ok());
  // Non-attribute junk line.
  EXPECT_FALSE(parse_certdata("BEGINDATA\nGARBAGE LINE\n").ok());
  // Attribute with no type.
  EXPECT_FALSE(parse_certdata("BEGINDATA\nCKA_CLASS\n").ok());
}

TEST(Certdata, MissingBegindataRejected) {
  const std::string text = "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n";
  auto parsed = parse_certdata(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("BEGINDATA"), std::string::npos);
}

TEST(Certdata, EmptyInputYieldsEmptyStore) {
  auto parsed = parse_certdata("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST(Certdata, UndecodableCertSkippedWithWarning) {
  const std::string text =
      "BEGINDATA\n"
      "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"
      "CKA_VALUE MULTILINE_OCTAL\n"
      "\\001\\002\\003\n"
      "END\n";
  auto parsed = parse_certdata(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("undecodable"), std::string::npos);
}

TEST(Certdata, DistrustAfterRoundTripsYearsAcrossPivot) {
  for (int year : {2005, 2019, 2035, 2049}) {
    TrustEntry e = full_entry(70 + static_cast<std::uint64_t>(year));
    e.trust_for(TrustPurpose::kServerAuth).distrust_after =
        Date::ymd(year, 7, 4);
    auto parsed = parse_certdata(write_certdata({e}));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().entries.size(), 1u);
    EXPECT_EQ(parsed.value()
                  .entries[0]
                  .trust_for(TrustPurpose::kServerAuth)
                  .distrust_after,
              Date::ymd(year, 7, 4))
        << year;
  }
}

}  // namespace
}  // namespace rs::formats
