#include "src/formats/cert_dir.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Dir Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(CertDir, WriteParseRoundTrip) {
  std::vector<TrustEntry> entries = {
      rs::store::make_tls_anchor(make_cert(1)),
      rs::store::make_tls_anchor(make_cert(2)),
  };
  const auto files = write_cert_dir(entries);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].name, files[1].name);
  EXPECT_NE(files[0].name.find(".pem"), std::string::npos);

  auto parsed = parse_cert_dir(files, BundleTrustPolicy::multi_purpose());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].certificate->der(),
            entries[0].certificate->der());
}

TEST(CertDir, AcceptsRawDerFiles) {
  auto cert = make_cert(3);
  CertDirFile file;
  file.name = "5ed36f99.0";  // Android-style hashed name
  file.content.assign(cert->der().begin(), cert->der().end());
  auto parsed = parse_cert_dir({file}, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  EXPECT_EQ(parsed.value().entries[0].certificate->sha256(), cert->sha256());
}

TEST(CertDir, BadFilesWarnWithFileName) {
  CertDirFile junk{"broken.pem", "not a certificate at all"};
  auto parsed = parse_cert_dir({junk}, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("broken.pem"), std::string::npos);
}

TEST(CertDir, SanitizedFileNames) {
  rs::x509::Name n;
  n.add_common_name("Weird/Name: CA *2021*");
  auto cert = std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(4).build());
  const auto files = write_cert_dir({rs::store::make_tls_anchor(cert)});
  ASSERT_EQ(files.size(), 1u);
  for (char c : files[0].name) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '.')
        << files[0].name;
  }
}

TEST(CertDir, LoadFromDiskRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rs_cert_dir_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto files = write_cert_dir({rs::store::make_tls_anchor(make_cert(5)),
                                     rs::store::make_tls_anchor(make_cert(6))});
  for (const auto& f : files) {
    std::ofstream out(dir / f.name, std::ios::binary);
    out << f.content;
  }

  auto loaded = load_cert_dir_from_disk(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), 2u);
  auto parsed =
      parse_cert_dir(loaded.value(), BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 2u);

  fs::remove_all(dir);
}

TEST(CertDir, LoadFromDiskRejectsNonDirectory) {
  auto loaded = load_cert_dir_from_disk("/nonexistent/path/here");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("not a directory"), std::string::npos);
}

}  // namespace
}  // namespace rs::formats
