// Cross-format property tests: the same trust entries written through every
// provider format and parsed back must agree on certificate identity, and
// must lose exactly the metadata each format is documented to lose.
#include <gtest/gtest.h>

#include "src/formats/authroot_stl.h"
#include "src/formats/cert_dir.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustPurpose;
using rs::util::Date;

std::vector<TrustEntry> make_entries(int count, std::uint64_t seed_base) {
  std::vector<TrustEntry> entries;
  for (int i = 0; i < count; ++i) {
    rs::x509::Name n;
    n.add_common_name("Cross Root " + std::to_string(seed_base) + "-" +
                      std::to_string(i));
    auto cert = std::make_shared<const rs::x509::Certificate>(
        rs::x509::CertificateBuilder()
            .subject(n)
            .key_seed(seed_base * 1000 + static_cast<std::uint64_t>(i))
            .build());
    TrustEntry e = rs::store::make_anchor_for(
        cert, {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    if (i % 3 == 0) {
      e.trust_for(TrustPurpose::kServerAuth).distrust_after =
          Date::ymd(2020, 1, 1 + i % 20);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<rs::crypto::Sha256Digest> fingerprints(
    const std::vector<TrustEntry>& entries) {
  std::vector<rs::crypto::Sha256Digest> out;
  for (const auto& e : entries) out.push_back(e.certificate->sha256());
  return out;
}

class CrossFormatTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossFormatTest, AllFormatsPreserveCertificateIdentity) {
  const auto entries = make_entries(GetParam(), 42);
  const auto expected = fingerprints(entries);

  {
    auto parsed = parse_certdata(write_certdata(entries));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(fingerprints(parsed.value().entries), expected) << "certdata";
  }
  {
    const auto blob = write_authroot(entries);
    auto parsed = parse_authroot(blob.stl, blob.certs);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(fingerprints(parsed.value().entries), expected) << "authroot";
  }
  {
    auto parsed = parse_jks(write_jks(entries, Date::ymd(2021, 1, 1)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(fingerprints(parsed.value().entries), expected) << "jks";
  }
  {
    auto parsed = parse_pem_bundle(write_pem_bundle(entries),
                                   BundleTrustPolicy::tls_only());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(fingerprints(parsed.value().entries), expected) << "pem";
  }
  {
    auto parsed = parse_cert_dir(write_cert_dir(entries),
                                 BundleTrustPolicy::tls_only());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(fingerprints(parsed.value().entries), expected) << "certdir";
  }
}

INSTANTIATE_TEST_SUITE_P(StoreSizes, CrossFormatTest,
                         ::testing::Values(0, 1, 2, 7, 25, 100));

TEST(CrossFormat, RichFormatsKeepCutoffsLossyFormatsDropThem) {
  const auto entries = make_entries(6, 7);

  // Rich formats: certdata and authroot keep distrust_after.
  auto certdata = parse_certdata(write_certdata(entries));
  ASSERT_TRUE(certdata.ok());
  const auto blob = write_authroot(entries);
  auto authroot = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(authroot.ok());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto expected =
        entries[i].trust_for(TrustPurpose::kServerAuth).distrust_after;
    EXPECT_EQ(certdata.value()
                  .entries[i]
                  .trust_for(TrustPurpose::kServerAuth)
                  .distrust_after,
              expected);
    EXPECT_EQ(authroot.value()
                  .entries[i]
                  .trust_for(TrustPurpose::kServerAuth)
                  .distrust_after,
              expected);
  }

  // Lossy formats: JKS and PEM bundles drop every cutoff.
  auto jks = parse_jks(write_jks(entries, Date::ymd(2021, 1, 1)));
  ASSERT_TRUE(jks.ok());
  auto pem = parse_pem_bundle(write_pem_bundle(entries),
                              BundleTrustPolicy::tls_only());
  ASSERT_TRUE(pem.ok());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_FALSE(jks.value()
                     .entries[i]
                     .trust_for(TrustPurpose::kServerAuth)
                     .distrust_after.has_value());
    EXPECT_FALSE(pem.value()
                     .entries[i]
                     .trust_for(TrustPurpose::kServerAuth)
                     .distrust_after.has_value());
  }
}

TEST(CrossFormat, DoubleRoundTripIsStable) {
  // write(parse(write(x))) == write(x) for the text formats.
  const auto entries = make_entries(10, 11);
  const std::string once = write_certdata(entries);
  auto parsed = parse_certdata(once);
  ASSERT_TRUE(parsed.ok());
  const std::string twice = write_certdata(parsed.value().entries);
  EXPECT_EQ(once, twice);

  const std::string pem_once = write_pem_bundle(entries);
  auto pem_parsed =
      parse_pem_bundle(pem_once, BundleTrustPolicy::multi_purpose());
  ASSERT_TRUE(pem_parsed.ok());
  EXPECT_EQ(write_pem_bundle(pem_parsed.value().entries), pem_once);
}

}  // namespace
}  // namespace rs::formats
