#include "src/formats/portable.h"

#include <gtest/gtest.h>

#include "src/util/strings.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("RSTS Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TrustEntry rich_entry(std::uint64_t seed) {
  TrustEntry e = rs::store::make_anchor_for(
      make_cert(seed), {TrustPurpose::kServerAuth});
  e.trust_for(TrustPurpose::kServerAuth).distrust_after = Date::ymd(2020, 6, 1);
  e.trust_for(TrustPurpose::kEmailProtection).level = TrustLevel::kDistrusted;
  return e;
}

TEST(Rsts, FullFidelityRoundTrip) {
  const std::vector<TrustEntry> entries = {rich_entry(1), rich_entry(2)};
  const std::string text = write_rsts(entries);
  auto parsed = parse_rsts(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().warnings.empty())
      << parsed.value().warnings.front();
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& in = entries[i];
    const auto& back = parsed.value().entries[i];
    EXPECT_EQ(back.certificate->der(), in.certificate->der());
    for (TrustPurpose p : rs::store::kAllPurposes) {
      EXPECT_EQ(back.trust_for(p).level, in.trust_for(p).level);
      EXPECT_EQ(back.trust_for(p).distrust_after,
                in.trust_for(p).distrust_after);
    }
  }
}

TEST(Rsts, PreservesWhatPemLoses) {
  // This is the format's reason to exist: the §6 failure mode fixed.
  const TrustEntry e = rich_entry(3);
  auto parsed = parse_rsts(write_rsts({e}));
  ASSERT_TRUE(parsed.ok());
  const auto& back = parsed.value().entries.at(0);
  EXPECT_TRUE(back.is_partially_distrusted_tls());
  EXPECT_EQ(back.trust_for(TrustPurpose::kEmailProtection).level,
            TrustLevel::kDistrusted);
  EXPECT_FALSE(back.is_anchor_for(TrustPurpose::kCodeSigning));
}

TEST(Rsts, HeaderValidation) {
  EXPECT_FALSE(parse_rsts("").ok());
  EXPECT_FALSE(parse_rsts("BOGUS 1\n").ok());
  EXPECT_FALSE(parse_rsts("RSTS\n").ok());
  EXPECT_FALSE(parse_rsts("RSTS one\n").ok());
  EXPECT_FALSE(parse_rsts("RSTS 99\n").ok());
  auto empty = parse_rsts("RSTS 1\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().entries.empty());
}

TEST(Rsts, CommentsAndBlankLinesIgnored) {
  std::string text = write_rsts({rich_entry(4)});
  text.insert(text.find("root"), "# leading comment\n\n");
  auto parsed = parse_rsts(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
}

TEST(Rsts, Sha256PinRejectsSubstitutedCert) {
  // Swap the cert line for another root's DER while keeping the pin.
  const std::string a = write_rsts({rich_entry(5)});
  const std::string b = write_rsts({rich_entry(6)});
  auto cert_line = [](const std::string& doc) {
    for (const auto& line : rs::util::split_lines(doc)) {
      const auto t = rs::util::trim(line);
      if (rs::util::starts_with(t, "cert ")) return std::string(t);
    }
    return std::string();
  };
  std::string tampered = a;
  const std::string a_cert = cert_line(a);
  const std::string b_cert = cert_line(b);
  tampered.replace(tampered.find(a_cert), a_cert.size(), b_cert);
  auto parsed = parse_rsts(tampered);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("pin mismatch"),
            std::string::npos);
}

TEST(Rsts, UnknownKeysWarnButParse) {
  std::string text = write_rsts({rich_entry(7)});
  text.insert(text.find("  sha256"), "  future-field some value\n");
  auto parsed = parse_rsts(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("future-field"),
            std::string::npos);
}

TEST(Rsts, OmittedTrustDefaultsToMustVerify) {
  std::string text = write_rsts({rich_entry(8)});
  // Strip every trust line.
  std::string stripped;
  for (const auto& line : rs::util::split_lines(text)) {
    if (rs::util::starts_with(rs::util::trim(line), "trust ")) continue;
    stripped += std::string(line) + "\n";
  }
  auto parsed = parse_rsts(stripped);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  for (TrustPurpose p : rs::store::kAllPurposes) {
    EXPECT_EQ(parsed.value().entries[0].trust_for(p).level,
              TrustLevel::kMustVerify);
  }
}

TEST(Rsts, MissingPinRejectsEntry) {
  std::string text = write_rsts({rich_entry(14)});
  // Strip the sha256 line entirely.
  std::string stripped;
  for (const auto& line : rs::util::split_lines(text)) {
    if (rs::util::starts_with(rs::util::trim(line), "sha256 ")) continue;
    stripped += std::string(line) + "\n";
  }
  auto parsed = parse_rsts(stripped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_FALSE(parsed.value().warnings.empty());
  EXPECT_NE(parsed.value().warnings[0].find("without sha256 pin"),
            std::string::npos);
}

TEST(Rsts, UnterminatedBlockIsError) {
  std::string text = write_rsts({rich_entry(9)});
  text.resize(text.rfind("end"));
  auto parsed = parse_rsts(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("unterminated"), std::string::npos);
}

TEST(Rsts, BadBase64SkipsEntryKeepsOthers) {
  std::string text = write_rsts({rich_entry(10), rich_entry(11)});
  const std::size_t pos = text.find("cert ") + 5;
  text[pos] = '!';
  auto parsed = parse_rsts(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
  EXPECT_FALSE(parsed.value().warnings.empty());
}

TEST(Rsts, DoubleRoundTripIsStable) {
  const std::string once = write_rsts({rich_entry(12), rich_entry(13)});
  auto parsed = parse_rsts(once);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(write_rsts(parsed.value().entries), once);
}

}  // namespace
}  // namespace rs::formats
