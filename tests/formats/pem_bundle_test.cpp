#include "src/formats/pem_bundle.h"

#include <gtest/gtest.h>

#include "src/encoding/pem.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustPurpose;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Bundle Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(PemBundle, RoundTripCertificates) {
  std::vector<TrustEntry> entries = {
      rs::store::make_tls_anchor(make_cert(1)),
      rs::store::make_tls_anchor(make_cert(2)),
  };
  const std::string text = write_pem_bundle(entries);
  auto parsed = parse_pem_bundle(text, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].certificate->der(),
            entries[0].certificate->der());
}

TEST(PemBundle, PolicyControlsGrantedPurposes) {
  const std::string text =
      write_pem_bundle({rs::store::make_tls_anchor(make_cert(3))});

  auto tls = parse_pem_bundle(text, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(tls.ok());
  EXPECT_TRUE(tls.value().entries[0].is_tls_anchor());
  EXPECT_FALSE(
      tls.value().entries[0].is_anchor_for(TrustPurpose::kEmailProtection));

  auto multi = parse_pem_bundle(text, BundleTrustPolicy::multi_purpose());
  ASSERT_TRUE(multi.ok());
  for (TrustPurpose p : rs::store::kAllPurposes) {
    EXPECT_TRUE(multi.value().entries[0].is_anchor_for(p));
  }
}

TEST(PemBundle, TrustMetadataIsLostByDesign) {
  // A partial-distrust cutoff cannot survive the bundle format — the §6
  // fidelity failure the paper documents.
  TrustEntry e = rs::store::make_tls_anchor(make_cert(4));
  e.trust_for(TrustPurpose::kServerAuth).distrust_after =
      rs::util::Date::ymd(2020, 1, 1);
  const std::string text = write_pem_bundle({e});
  auto parsed = parse_pem_bundle(text, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value()
                   .entries[0]
                   .trust_for(TrustPurpose::kServerAuth)
                   .distrust_after.has_value());
}

TEST(PemBundle, NonCertificateBlocksWarn) {
  const std::string text =
      write_pem_bundle({rs::store::make_tls_anchor(make_cert(5))}) +
      rs::encoding::pem_encode("X509 CRL", std::vector<std::uint8_t>{1, 2});
  auto parsed = parse_pem_bundle(text, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
  ASSERT_EQ(parsed.value().warnings.size(), 1u);
  EXPECT_NE(parsed.value().warnings[0].find("X509 CRL"), std::string::npos);
}

TEST(PemBundle, UndecodableCertificateWarns) {
  const std::string text = rs::encoding::pem_encode(
      "CERTIFICATE", std::vector<std::uint8_t>{0xDE, 0xAD});
  auto parsed = parse_pem_bundle(text, BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  EXPECT_FALSE(parsed.value().warnings.empty());
}

TEST(PemBundle, BundleContainsSubjectComments) {
  const std::string text =
      write_pem_bundle({rs::store::make_tls_anchor(make_cert(6))});
  EXPECT_NE(text.find("# Bundle Root 6"), std::string::npos);
}

TEST(PurposeBundles, SplitByPurpose) {
  // The §7 single-purpose recommendation: a TLS-only root must not appear
  // in the email or code-signing bundle.
  auto tls_only = rs::store::make_tls_anchor(make_cert(10));
  auto email_only = rs::store::make_anchor_for(
      make_cert(11), {TrustPurpose::kEmailProtection});
  auto both = rs::store::make_anchor_for(
      make_cert(12),
      {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});

  const auto bundles = write_purpose_bundles({tls_only, email_only, both});

  auto tls = parse_purpose_bundle(bundles.tls, TrustPurpose::kServerAuth);
  ASSERT_TRUE(tls.ok());
  EXPECT_EQ(tls.value().entries.size(), 2u);  // tls_only + both
  for (const auto& e : tls.value().entries) {
    EXPECT_TRUE(e.is_tls_anchor());
    EXPECT_FALSE(e.is_anchor_for(TrustPurpose::kCodeSigning));
  }

  auto email =
      parse_purpose_bundle(bundles.email, TrustPurpose::kEmailProtection);
  ASSERT_TRUE(email.ok());
  EXPECT_EQ(email.value().entries.size(), 2u);  // email_only + both

  auto codesign =
      parse_purpose_bundle(bundles.codesign, TrustPurpose::kCodeSigning);
  ASSERT_TRUE(codesign.ok());
  EXPECT_TRUE(codesign.value().entries.empty());  // nobody signs code here
}

TEST(PurposeBundles, FixesTheNuGetMisuse) {
  // §6.2's NuGet incident: a consumer reading the *multi-purpose* bundle
  // for code signing trusts TLS-only roots.  With purpose bundles the
  // code-signing view is empty unless roots genuinely carry that trust.
  auto tls_root = rs::store::make_tls_anchor(make_cert(13));
  const std::string multi = write_pem_bundle({tls_root});
  auto misused = parse_pem_bundle(multi, BundleTrustPolicy::multi_purpose());
  ASSERT_TRUE(misused.ok());
  EXPECT_TRUE(misused.value().entries[0].is_anchor_for(
      TrustPurpose::kCodeSigning));  // the bug

  const auto bundles = write_purpose_bundles({tls_root});
  auto fixed =
      parse_purpose_bundle(bundles.codesign, TrustPurpose::kCodeSigning);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(fixed.value().entries.empty());  // the fix
}

TEST(PemBundle, EmptyInputYieldsEmptyStore) {
  auto parsed = parse_pem_bundle("", BundleTrustPolicy::tls_only());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  EXPECT_TRUE(parsed.value().warnings.empty());
}

}  // namespace
}  // namespace rs::formats
