#include "src/formats/authroot_stl.h"

#include <gtest/gtest.h>

#include "src/util/date.h"
#include "src/util/hex.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Authroot Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

TEST(Authroot, RoundTripTrustAndDisallow) {
  TrustEntry tls = rs::store::make_tls_anchor(make_cert(1));
  TrustEntry mixed = rs::store::make_anchor_for(
      make_cert(2), {TrustPurpose::kEmailProtection, TrustPurpose::kCodeSigning});
  mixed.trust_for(TrustPurpose::kServerAuth).level = TrustLevel::kDistrusted;
  TrustEntry partial = rs::store::make_tls_anchor(make_cert(3));
  partial.trust_for(TrustPurpose::kServerAuth).distrust_after =
      Date::ymd(2019, 2, 1);

  const AuthRootBlob blob = write_authroot({tls, mixed, partial});
  EXPECT_EQ(blob.certs.size(), 3u);

  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().warnings.empty());
  ASSERT_EQ(parsed.value().entries.size(), 3u);

  const auto& out_tls = parsed.value().entries[0];
  EXPECT_TRUE(out_tls.is_tls_anchor());
  EXPECT_FALSE(out_tls.is_anchor_for(TrustPurpose::kEmailProtection));

  const auto& out_mixed = parsed.value().entries[1];
  EXPECT_EQ(out_mixed.trust_for(TrustPurpose::kServerAuth).level,
            TrustLevel::kDistrusted);
  EXPECT_TRUE(out_mixed.is_anchor_for(TrustPurpose::kEmailProtection));
  EXPECT_TRUE(out_mixed.is_anchor_for(TrustPurpose::kCodeSigning));

  const auto& out_partial = parsed.value().entries[2];
  EXPECT_EQ(out_partial.trust_for(TrustPurpose::kServerAuth).distrust_after,
            Date::ymd(2019, 2, 1));
}

TEST(Authroot, MissingCachedCertBecomesWarning) {
  const TrustEntry e = rs::store::make_tls_anchor(make_cert(4));
  AuthRootBlob blob = write_authroot({e});
  blob.certs.clear();  // simulate an empty download cache
  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_EQ(parsed.value().warnings.size(), 1u);
  EXPECT_NE(parsed.value().warnings[0].find("no cached certificate"),
            std::string::npos);
}

TEST(Authroot, CacheMismatchDetected) {
  const TrustEntry e = rs::store::make_tls_anchor(make_cert(5));
  AuthRootBlob blob = write_authroot({e});
  // Replace the cached DER with a different certificate's bytes.
  blob.certs.begin()->second = make_cert(6)->der();
  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  ASSERT_EQ(parsed.value().warnings.size(), 1u);
  EXPECT_NE(parsed.value().warnings[0].find("mismatch"), std::string::npos);
}

TEST(Authroot, FullyDisallowedEntryRoundTrips) {
  TrustEntry e;
  e.certificate = make_cert(7);
  for (TrustPurpose p : rs::store::kAllPurposes) {
    e.trust_for(p).level = TrustLevel::kDistrusted;
  }
  const AuthRootBlob blob = write_authroot({e});
  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  for (TrustPurpose p : rs::store::kAllPurposes) {
    EXPECT_EQ(parsed.value().entries[0].trust_for(p).level,
              TrustLevel::kDistrusted);
  }
}

TEST(Authroot, RejectsWrongVersion) {
  const TrustEntry e = rs::store::make_tls_anchor(make_cert(8));
  AuthRootBlob blob = write_authroot({e});
  // Version INTEGER is the first element inside the outer SEQUENCE; it is
  // encoded as 02 01 01 — flip the value byte.
  for (std::size_t i = 0; i + 2 < blob.stl.size(); ++i) {
    if (blob.stl[i] == 0x02 && blob.stl[i + 1] == 0x01 &&
        blob.stl[i + 2] == 0x01) {
      blob.stl[i + 2] = 0x07;
      break;
    }
  }
  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("version"), std::string::npos);
}

TEST(Authroot, RejectsTruncatedStl) {
  const TrustEntry e = rs::store::make_tls_anchor(make_cert(9));
  const AuthRootBlob blob = write_authroot({e});
  const std::vector<std::uint8_t> truncated(blob.stl.begin(),
                                            blob.stl.begin() + 10);
  EXPECT_FALSE(parse_authroot(truncated, blob.certs).ok());
}

TEST(Authroot, EmptyListRoundTrips) {
  const AuthRootBlob blob = write_authroot({});
  auto parsed = parse_authroot(blob.stl, blob.certs);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
}

}  // namespace
}  // namespace rs::formats
