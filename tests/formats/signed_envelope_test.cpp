#include "src/formats/signed_envelope.h"

#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

std::vector<TrustEntry> entries() {
  std::vector<TrustEntry> out;
  for (int i = 0; i < 3; ++i) {
    rs::x509::Name n;
    n.add_common_name("Envelope Root " + std::to_string(i));
    out.push_back(rs::store::make_tls_anchor(
        std::make_shared<const rs::x509::Certificate>(
            rs::x509::CertificateBuilder()
                .subject(n)
                .key_seed(static_cast<std::uint64_t>(300 + i))
                .build())));
  }
  return out;
}

TEST(SignedEnvelope, SealOpenRoundTrip) {
  const auto payload = bytes("the payload bytes");
  const auto sealed = seal_envelope(payload, "Microsoft Root Program", 42);
  auto opened = open_envelope(sealed, 42);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened.value().signer, "Microsoft Root Program");
  EXPECT_EQ(opened.value().payload, payload);
}

TEST(SignedEnvelope, WrongKeyRejected) {
  const auto sealed = seal_envelope(bytes("data"), "Signer", 1);
  auto opened = open_envelope(sealed, 2);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.error().find("verification failed"), std::string::npos);
}

TEST(SignedEnvelope, TamperedPayloadRejected) {
  auto sealed = seal_envelope(bytes("original data here"), "Signer", 7);
  // Flip a byte inside the payload OCTET STRING (search for 'd' of "data").
  for (std::size_t i = 0; i + 4 < sealed.size(); ++i) {
    if (sealed[i] == 'd' && sealed[i + 1] == 'a' && sealed[i + 2] == 't') {
      sealed[i] ^= 0x01;
      break;
    }
  }
  EXPECT_FALSE(open_envelope(sealed, 7).ok());
}

TEST(SignedEnvelope, SignerIsAuthenticated) {
  // Re-labelling the signer invalidates the MAC (key binds the name).
  const auto a = seal_envelope(bytes("payload"), "Alice", 9);
  const auto b = seal_envelope(bytes("payload"), "Bob", 9);
  EXPECT_NE(a, b);
  // Splice Bob's name into Alice's envelope: must fail.
  auto spliced = a;
  bool replaced = false;
  for (std::size_t i = 0; i + 5 <= spliced.size(); ++i) {
    if (std::equal(spliced.begin() + static_cast<long>(i),
                   spliced.begin() + static_cast<long>(i) + 5,
                   "Alice")) {
      std::copy_n("Bob\0\0", 5, spliced.begin() + static_cast<long>(i));
      replaced = true;
      break;
    }
  }
  ASSERT_TRUE(replaced);
  EXPECT_FALSE(open_envelope(spliced, 9).ok());
}

TEST(SignedEnvelope, EmptyPayloadSupported) {
  const auto sealed = seal_envelope({}, "Signer", 3);
  auto opened = open_envelope(sealed, 3);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().payload.empty());
}

TEST(SignedEnvelope, GarbageRejected) {
  EXPECT_FALSE(open_envelope(bytes("not DER at all"), 1).ok());
  EXPECT_FALSE(open_envelope({}, 1).ok());
}

TEST(SignedAuthroot, EndToEnd) {
  const auto blob =
      write_authroot_signed(entries(), "Microsoft Root Program", 20211102);
  auto parsed = parse_authroot_signed(blob.sealed_stl, blob.certs, 20211102);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().entries.size(), 3u);
  EXPECT_TRUE(parsed.value().entries[0].is_tls_anchor());
}

TEST(SignedAuthroot, MutationsNeverVerify) {
  const auto blob = write_authroot_signed(entries(), "MS", 5);
  rs::crypto::Prng rng(99);
  int accepted = 0;
  for (int round = 0; round < 200; ++round) {
    auto sealed = blob.sealed_stl;
    const std::size_t pos = rng.pick_index(sealed.size());
    sealed[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    if (parse_authroot_signed(sealed, blob.certs, 5).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(SignedAuthroot, WrongProgramKeyRejected) {
  const auto blob = write_authroot_signed(entries(), "MS", 5);
  EXPECT_FALSE(parse_authroot_signed(blob.sealed_stl, blob.certs, 6).ok());
}

}  // namespace
}  // namespace rs::formats
