#include "src/formats/sniff.h"

#include <gtest/gtest.h>

#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;

std::vector<TrustEntry> entries() {
  rs::x509::Name n;
  n.add_common_name("Sniff Root");
  return {rs::store::make_tls_anchor(
      std::make_shared<const rs::x509::Certificate>(
          rs::x509::CertificateBuilder().subject(n).key_seed(1).build()))};
}

TEST(Sniff, DetectsEveryFormat) {
  EXPECT_EQ(detect_store_format(write_certdata(entries())),
            StoreFormat::kCertdata);
  EXPECT_EQ(detect_store_format(write_pem_bundle(entries())),
            StoreFormat::kPemBundle);
  EXPECT_EQ(detect_store_format(write_rsts(entries())), StoreFormat::kRsts);
  const auto jks = write_jks(entries(), rs::util::Date::ymd(2021, 1, 1));
  EXPECT_EQ(detect_store_format(
                std::string_view(reinterpret_cast<const char*>(jks.data()),
                                 jks.size())),
            StoreFormat::kJks);
  EXPECT_EQ(detect_store_format("random bytes"), StoreFormat::kUnknown);
  EXPECT_EQ(detect_store_format(""), StoreFormat::kUnknown);
}

TEST(Sniff, ParseAnyDispatchesCorrectly) {
  const std::vector<std::string> documents = {write_certdata(entries()),
                                              write_pem_bundle(entries()),
                                              write_rsts(entries())};
  for (const std::string& content : documents) {
    auto parsed = parse_any_store(content);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().entries.size(), 1u);
    EXPECT_EQ(parsed.value().entries[0].certificate->sha256(),
              entries()[0].certificate->sha256());
  }
  const auto jks = write_jks(entries(), rs::util::Date::ymd(2021, 1, 1));
  auto parsed = parse_any_store(
      std::string_view(reinterpret_cast<const char*>(jks.data()), jks.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 1u);
}

TEST(Sniff, MultiPurposeFlagControlsBundleTrust) {
  const std::string pem = write_pem_bundle(entries());
  auto multi = parse_any_store(pem, /*multi_purpose=*/true);
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi.value().entries[0].is_anchor_for(
      rs::store::TrustPurpose::kCodeSigning));
  auto tls = parse_any_store(pem, /*multi_purpose=*/false);
  ASSERT_TRUE(tls.ok());
  EXPECT_FALSE(tls.value().entries[0].is_anchor_for(
      rs::store::TrustPurpose::kCodeSigning));
}

TEST(Sniff, UnknownContentFallsBackToPem) {
  auto parsed = parse_any_store("not a store at all");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST(Sniff, LoadAnyStoreReportsMissingFile) {
  auto loaded = load_any_store("/no/such/file");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("cannot open"), std::string::npos);
}

TEST(Sniff, FormatNames) {
  EXPECT_STREQ(to_string(StoreFormat::kCertdata), "certdata.txt");
  EXPECT_STREQ(to_string(StoreFormat::kJks), "JKS keystore");
  EXPECT_STREQ(to_string(StoreFormat::kRsts), "RSTS");
  EXPECT_STREQ(to_string(StoreFormat::kUnknown), "unknown");
}

}  // namespace
}  // namespace rs::formats
