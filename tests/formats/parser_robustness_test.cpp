// Robustness sweeps: every parser must reject or tolerate arbitrarily
// mutated input without crashing, and never fabricate trust that was not in
// the original.  Mutations are deterministic (seeded PRNG).
#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/formats/authroot_stl.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;

std::vector<TrustEntry> sample_entries() {
  std::vector<TrustEntry> out;
  for (int i = 0; i < 5; ++i) {
    rs::x509::Name n;
    n.add_common_name("Robust Root " + std::to_string(i));
    out.push_back(rs::store::make_tls_anchor(
        std::make_shared<const rs::x509::Certificate>(
            rs::x509::CertificateBuilder()
                .subject(n)
                .key_seed(static_cast<std::uint64_t>(100 + i))
                .build())));
  }
  return out;
}

template <typename Bytes>
void mutate(Bytes& data, rs::crypto::Prng& rng, int flips) {
  for (int i = 0; i < flips && !data.empty(); ++i) {
    const std::size_t pos = rng.pick_index(data.size());
    data[pos] = static_cast<typename Bytes::value_type>(
        static_cast<std::uint8_t>(data[pos]) ^
        static_cast<std::uint8_t>(1u << rng.uniform(8)));
  }
}

class MutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationTest, CertdataNeverCrashes) {
  const std::string original = write_certdata(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_certdata(text);  // ok or error; must not crash
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().entries.size(), sample_entries().size() + 1);
    }
  }
}

TEST_P(MutationTest, PemBundleNeverCrashes) {
  const std::string original = write_pem_bundle(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto policy = BundleTrustPolicy::tls_only();
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_pem_bundle(text, policy);
    ASSERT_TRUE(parsed.ok());  // PEM parsing degrades to warnings, not errors
    EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
  }
}

TEST_P(MutationTest, JksNeverCrashesAndDetectsCorruption) {
  const auto original =
      write_jks(sample_entries(), rs::util::Date::ymd(2021, 1, 1));
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  int accepted = 0;
  for (int round = 0; round < 200; ++round) {
    auto blob = original;
    mutate(blob, rng, GetParam());
    auto parsed = parse_jks(blob);
    if (parsed.ok()) ++accepted;
  }
  // The SHA-1 integrity digest must catch essentially every byte flip.
  EXPECT_EQ(accepted, 0);
}

TEST_P(MutationTest, AuthrootNeverCrashes) {
  const auto blob = write_authroot(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  for (int round = 0; round < 200; ++round) {
    auto stl = blob.stl;
    mutate(stl, rng, GetParam());
    auto parsed = parse_authroot(stl, blob.certs);
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
    }
  }
}

TEST_P(MutationTest, CertificateParserNeverCrashes) {
  const auto original = sample_entries()[0].certificate->der();
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  for (int round = 0; round < 400; ++round) {
    auto der = original;
    mutate(der, rng, GetParam());
    auto parsed = rs::x509::Certificate::parse(der);
    (void)parsed;
  }
}

TEST_P(MutationTest, RstsNeverCrashesAndNeverGainsTrust) {
  const std::string original = write_rsts(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_rsts(text);
    if (!parsed.ok()) continue;
    EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
    // The sha256 pin must keep mutated certificates out.
    for (const auto& e : parsed.value().entries) {
      bool known = false;
      for (const auto& orig : sample_entries()) {
        known = known || orig.certificate->sha256() == e.certificate->sha256();
      }
      EXPECT_TRUE(known) << "mutation smuggled in an unknown certificate";
    }
  }
}

TEST_P(MutationTest, TruncationsNeverCrash) {
  const std::string certdata = write_certdata(sample_entries());
  const auto jks = write_jks(sample_entries(), rs::util::Date::ymd(2021, 1, 1));
  const auto authroot = write_authroot(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  for (int round = 0; round < 100; ++round) {
    const std::size_t cd_cut = rng.pick_index(certdata.size());
    (void)parse_certdata(std::string_view(certdata).substr(0, cd_cut));
    const std::size_t jks_cut = rng.pick_index(jks.size());
    (void)parse_jks(std::span(jks).first(jks_cut));
    const std::size_t ar_cut = rng.pick_index(authroot.stl.size());
    (void)parse_authroot(std::span(authroot.stl).first(ar_cut),
                         authroot.certs);
  }
}

INSTANTIATE_TEST_SUITE_P(FlipCounts, MutationTest,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace rs::formats
