// Robustness sweeps: every parser must reject or tolerate arbitrarily
// mutated input without crashing, and never fabricate trust that was not in
// the original.  Mutations are deterministic (seeded PRNG).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/crypto/prng.h"
#include "src/crypto/sha1.h"
#include "src/formats/authroot_stl.h"
#include "src/formats/cert_dir.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/x509/builder.h"

namespace rs::formats {
namespace {

using rs::store::TrustEntry;

std::vector<TrustEntry> sample_entries() {
  std::vector<TrustEntry> out;
  for (int i = 0; i < 5; ++i) {
    rs::x509::Name n;
    n.add_common_name("Robust Root " + std::to_string(i));
    out.push_back(rs::store::make_tls_anchor(
        std::make_shared<const rs::x509::Certificate>(
            rs::x509::CertificateBuilder()
                .subject(n)
                .key_seed(static_cast<std::uint64_t>(100 + i))
                .build())));
  }
  return out;
}

template <typename Bytes>
void mutate(Bytes& data, rs::crypto::Prng& rng, int flips) {
  for (int i = 0; i < flips && !data.empty(); ++i) {
    const std::size_t pos = rng.pick_index(data.size());
    data[pos] = static_cast<typename Bytes::value_type>(
        static_cast<std::uint8_t>(data[pos]) ^
        static_cast<std::uint8_t>(1u << rng.uniform(8)));
  }
}

class MutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationTest, CertdataNeverCrashes) {
  const std::string original = write_certdata(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_certdata(text);  // ok or error; must not crash
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().entries.size(), sample_entries().size() + 1);
    }
  }
}

TEST_P(MutationTest, PemBundleNeverCrashes) {
  const std::string original = write_pem_bundle(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto policy = BundleTrustPolicy::tls_only();
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_pem_bundle(text, policy);
    ASSERT_TRUE(parsed.ok());  // PEM parsing degrades to warnings, not errors
    EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
  }
}

TEST_P(MutationTest, JksNeverCrashesAndDetectsCorruption) {
  const auto original =
      write_jks(sample_entries(), rs::util::Date::ymd(2021, 1, 1));
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  int accepted = 0;
  for (int round = 0; round < 200; ++round) {
    auto blob = original;
    mutate(blob, rng, GetParam());
    auto parsed = parse_jks(blob);
    if (parsed.ok()) ++accepted;
  }
  // The SHA-1 integrity digest must catch essentially every byte flip.
  EXPECT_EQ(accepted, 0);
}

TEST_P(MutationTest, AuthrootNeverCrashes) {
  const auto blob = write_authroot(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  for (int round = 0; round < 200; ++round) {
    auto stl = blob.stl;
    mutate(stl, rng, GetParam());
    auto parsed = parse_authroot(stl, blob.certs);
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
    }
  }
}

TEST_P(MutationTest, CertificateParserNeverCrashes) {
  const auto original = sample_entries()[0].certificate->der();
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  for (int round = 0; round < 400; ++round) {
    auto der = original;
    mutate(der, rng, GetParam());
    auto parsed = rs::x509::Certificate::parse(der);
    (void)parsed;
  }
}

TEST_P(MutationTest, RstsNeverCrashesAndNeverGainsTrust) {
  const std::string original = write_rsts(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  for (int round = 0; round < 200; ++round) {
    std::string text = original;
    mutate(text, rng, GetParam());
    auto parsed = parse_rsts(text);
    if (!parsed.ok()) continue;
    EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
    // The sha256 pin must keep mutated certificates out.
    for (const auto& e : parsed.value().entries) {
      bool known = false;
      for (const auto& orig : sample_entries()) {
        known = known || orig.certificate->sha256() == e.certificate->sha256();
      }
      EXPECT_TRUE(known) << "mutation smuggled in an unknown certificate";
    }
  }
}

TEST_P(MutationTest, TruncationsNeverCrash) {
  const std::string certdata = write_certdata(sample_entries());
  const auto jks = write_jks(sample_entries(), rs::util::Date::ymd(2021, 1, 1));
  const auto authroot = write_authroot(sample_entries());
  rs::crypto::Prng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  for (int round = 0; round < 100; ++round) {
    const std::size_t cd_cut = rng.pick_index(certdata.size());
    (void)parse_certdata(std::string_view(certdata).substr(0, cd_cut));
    const std::size_t jks_cut = rng.pick_index(jks.size());
    (void)parse_jks(std::span(jks).first(jks_cut));
    const std::size_t ar_cut = rng.pick_index(authroot.stl.size());
    (void)parse_authroot(std::span(authroot.stl).first(ar_cut),
                         authroot.certs);
  }
}

INSTANTIATE_TEST_SUITE_P(FlipCounts, MutationTest,
                         ::testing::Values(1, 4, 16, 64));

// ---------------------------------------------------------------------------
// Targeted malformed-input cases for the binary length-prefixed formats.
// The mutation sweeps above almost always die at the JKS integrity digest;
// these re-sign corrupted bodies so the framing parser itself is exercised.
// ---------------------------------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(Bytes& out, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) out.push_back(static_cast<std::uint8_t>(v >> s));
}
void put_u64(Bytes& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) out.push_back(static_cast<std::uint8_t>(v >> s));
}

// Appends the JKS integrity digest (SHA1 of password-UTF-16BE || whitener ||
// body) so a hand-built body reaches the framing parser.
Bytes sign_jks(Bytes body) {
  rs::crypto::Sha1 h;
  for (char c : std::string_view(kDefaultJksPassword)) {
    const std::uint8_t pair[2] = {0, static_cast<std::uint8_t>(c)};
    h.update(pair);
  }
  constexpr std::string_view kWhitener = "Mighty Aphrodite";
  h.update({reinterpret_cast<const std::uint8_t*>(kWhitener.data()),
            kWhitener.size()});
  h.update(body);
  const auto digest = h.finish();
  body.insert(body.end(), digest.begin(), digest.end());
  return body;
}

Bytes jks_header(std::uint32_t count) {
  Bytes body;
  put_u32(body, 0xFEEDFEEDu);
  put_u32(body, 2);
  put_u32(body, count);
  return body;
}

TEST(JksMalformed, CountExceedsAvailableEntries) {
  auto parsed = parse_jks(sign_jks(jks_header(0xFFFFFFFFu)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("truncated"), std::string::npos);
}

TEST(JksMalformed, AliasLengthPastEndOfInput) {
  Bytes body = jks_header(1);
  put_u32(body, 2);        // trusted-cert tag
  put_u16(body, 0xFFFF);   // alias length far beyond remaining bytes
  body.push_back('a');     // 1 byte where 65535 are promised
  auto parsed = parse_jks(sign_jks(std::move(body)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("alias"), std::string::npos);
}

TEST(JksMalformed, CertLengthPastEndOfInput) {
  Bytes body = jks_header(1);
  put_u32(body, 2);
  put_u16(body, 1);
  body.push_back('a');
  put_u64(body, 0);        // creation date
  put_u16(body, 5);
  const std::string_view type = "X.509";
  body.insert(body.end(), type.begin(), type.end());
  put_u32(body, 0xFFFFFFFFu);  // certificate length > remaining
  body.push_back(0x30);
  auto parsed = parse_jks(sign_jks(std::move(body)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("truncated certificate"), std::string::npos);
}

TEST(JksMalformed, TrailingBytesAfterLastEntry) {
  Bytes body = jks_header(0);
  body.push_back(0x00);
  auto parsed = parse_jks(sign_jks(std::move(body)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("trailing"), std::string::npos);
}

TEST(JksMalformed, EveryResignedTruncationFailsCleanly) {
  const auto full =
      write_jks(sample_entries(), rs::util::Date::ymd(2021, 1, 1));
  const Bytes body(full.begin(), full.end() - 20);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    // Re-sign each truncated body: digest valid, framing truncated.
    auto parsed = parse_jks(sign_jks(Bytes(body.begin(),
                                           body.begin() +
                                               static_cast<std::ptrdiff_t>(cut))));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " was accepted";
  }
}

TEST(AuthrootMalformed, WrongVersionIsRejected) {
  const Bytes stl = {0x30, 0x03, 0x02, 0x01, 0x07};  // version 7
  auto parsed = parse_authroot(stl, {});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("version"), std::string::npos);
}

TEST(AuthrootMalformed, SubjectIdMustBeSha1Sized) {
  // SEQUENCE { SEQUENCE { INTEGER 1, SEQUENCE { SEQUENCE { OCTET STRING
  // (2 bytes), SEQUENCE {} } } } }
  const Bytes stl = {0x30, 0x0D, 0x02, 0x01, 0x01, 0x30, 0x08,
                     0x30, 0x06, 0x04, 0x02, 0xAB, 0xCD, 0x30, 0x00};
  auto parsed = parse_authroot(stl, {});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("SHA-1"), std::string::npos);
}

TEST(AuthrootMalformed, DeeplyNestedDerIsAnErrorNotAStackOverflow) {
  // 4096 nested SEQUENCEs; the reader's depth cap must stop the descent.
  Bytes stl;
  for (int i = 0; i < 4096; ++i) {
    Bytes wrapped = {0x30};
    if (stl.size() < 0x80) {
      wrapped.push_back(static_cast<std::uint8_t>(stl.size()));
    } else if (stl.size() <= 0xFF) {
      wrapped.push_back(0x81);
      wrapped.push_back(static_cast<std::uint8_t>(stl.size()));
    } else {
      wrapped.push_back(0x82);
      wrapped.push_back(static_cast<std::uint8_t>(stl.size() >> 8));
      wrapped.push_back(static_cast<std::uint8_t>(stl.size() & 0xFF));
    }
    wrapped.insert(wrapped.end(), stl.begin(), stl.end());
    stl = std::move(wrapped);
  }
  auto parsed = parse_authroot(stl, {});
  EXPECT_FALSE(parsed.ok());
}

// ---------------------------------------------------------------------------
// Targeted malformed-input cases for the text formats (PEM bundle and
// certificate directories): truncation, junk between blocks, duplicated
// certificates, and empty input.  These degrade to warnings by design —
// the assertions pin that degradation (never a crash, never invented
// trust, never a silent drop of the valid remainder).
// ---------------------------------------------------------------------------

TEST(PemBundleMalformed, EmptyInputIsAValidEmptyStore) {
  const auto policy = BundleTrustPolicy::tls_only();
  for (std::string_view text : {std::string_view{},
                                std::string_view{"\n\n\n"},
                                std::string_view{"# just a comment\n"}}) {
    auto parsed = parse_pem_bundle(text, policy);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().entries.empty());
  }
}

TEST(PemBundleMalformed, EveryTruncationKeepsOnlyWholeBlocks) {
  const std::string full = write_pem_bundle(sample_entries());
  const auto policy = BundleTrustPolicy::tls_only();
  std::size_t max_entries = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    auto parsed =
        parse_pem_bundle(std::string_view(full).substr(0, cut), policy);
    ASSERT_TRUE(parsed.ok()) << "truncation at " << cut;
    // A prefix can only contain whole blocks from the original bundle.
    EXPECT_LE(parsed.value().entries.size(), sample_entries().size());
    max_entries = std::max(max_entries, parsed.value().entries.size());
  }
  // The final cut is the full bundle: everything parses.
  EXPECT_EQ(max_entries, sample_entries().size());
}

TEST(PemBundleMalformed, JunkBetweenBlocksIsSkippedWithoutLosingRoots) {
  const auto entries = sample_entries();
  const auto policy = BundleTrustPolicy::tls_only();
  std::string bundle;
  for (const auto& e : entries) {
    bundle += "random prose the tools drop between blocks\n";
    bundle += "-----BEGIN GARBAGE-----\nnot base64!!\n-----END GARBAGE-----\n";
    bundle += write_pem_bundle({e});
  }
  bundle += "trailing junk with no newline";
  auto parsed = parse_pem_bundle(bundle, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed.value().entries[i].certificate->sha256(),
              entries[i].certificate->sha256());
  }
}

TEST(PemBundleMalformed, CorruptBlockBecomesWarningNotError) {
  const auto entries = sample_entries();
  const auto policy = BundleTrustPolicy::tls_only();
  std::string bundle = write_pem_bundle({entries[0]});
  bundle += "-----BEGIN CERTIFICATE-----\n!!!not base64!!!\n"
            "-----END CERTIFICATE-----\n";
  bundle += write_pem_bundle({entries[1]});
  auto parsed = parse_pem_bundle(bundle, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 2u);  // both good roots kept
  EXPECT_FALSE(parsed.value().warnings.empty());
}

TEST(PemBundleMalformed, DuplicateCertificateIsPreservedVerbatim) {
  // The bundle format has no identity notion; deduplication is the
  // store layer's job.  The parser must hand back what the file says.
  const auto entries = sample_entries();
  const auto policy = BundleTrustPolicy::tls_only();
  const std::string once = write_pem_bundle({entries[0]});
  auto parsed = parse_pem_bundle(once + once + once, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 3u);
  for (const auto& e : parsed.value().entries) {
    EXPECT_EQ(e.certificate->sha256(), entries[0].certificate->sha256());
  }
}

TEST(CertDirMalformed, EmptyDirectoryAndEmptyFilesAreValid) {
  const auto policy = BundleTrustPolicy::tls_only();
  auto parsed = parse_cert_dir({}, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());

  parsed = parse_cert_dir({{"empty.pem", ""}, {"blank.pem", "\n\n"}}, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST(CertDirMalformed, TruncatedFilesNeverCrashAndNeverGainRoots) {
  const auto files = write_cert_dir(sample_entries());
  const auto policy = BundleTrustPolicy::tls_only();
  for (const auto& file : files) {
    for (std::size_t cut = 0; cut < file.content.size(); cut += 7) {
      auto parsed = parse_cert_dir(
          {{file.name, file.content.substr(0, cut)}}, policy);
      ASSERT_TRUE(parsed.ok()) << file.name << " cut at " << cut;
      EXPECT_LE(parsed.value().entries.size(), 1u);
    }
  }
}

TEST(CertDirMalformed, JunkFilesAreWarningsGoodFilesStillLoad) {
  auto files = write_cert_dir(sample_entries());
  const auto n_good = files.size();
  files.push_back({"README", "this directory holds the system roots\n"});
  files.push_back({"junk.der", std::string(64, '\xC3')});
  files.push_back({"broken.pem",
                   "-----BEGIN CERTIFICATE-----\nnope\n"
                   "-----END CERTIFICATE-----\n"});
  const auto policy = BundleTrustPolicy::tls_only();
  auto parsed = parse_cert_dir(files, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), n_good);
  EXPECT_FALSE(parsed.value().warnings.empty());
}

TEST(CertDirMalformed, DuplicateFileContentsAreBothReturned) {
  const auto files = write_cert_dir(sample_entries());
  const auto policy = BundleTrustPolicy::tls_only();
  std::vector<CertDirFile> doubled = {files[0],
                                      {"copy_" + files[0].name,
                                       files[0].content}};
  auto parsed = parse_cert_dir(doubled, policy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].certificate->sha256(),
            parsed.value().entries[1].certificate->sha256());
}

TEST(AuthrootMalformed, EkuListWithNonOidElement) {
  // Entry whose EKU SEQUENCE contains an INTEGER instead of an OID.
  Bytes subject = {0x04, 0x14};
  subject.insert(subject.end(), 20, 0xAA);       // 20-byte subject id
  subject.insert(subject.end(), {0x30, 0x03, 0x02, 0x01, 0x05});  // bad EKU
  Bytes entry = {0x30, static_cast<std::uint8_t>(subject.size())};
  entry.insert(entry.end(), subject.begin(), subject.end());
  Bytes list = {0x30, static_cast<std::uint8_t>(entry.size())};
  list.insert(list.end(), entry.begin(), entry.end());
  Bytes body = {0x02, 0x01, 0x01};
  body.insert(body.end(), list.begin(), list.end());
  Bytes stl = {0x30, static_cast<std::uint8_t>(body.size())};
  stl.insert(stl.end(), body.begin(), body.end());
  auto parsed = parse_authroot(stl, {});
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace rs::formats
