// Differential battery for the landscape subsystem: an independent
// brute-force referee — FingerprintSet loops over raw ProviderHistory
// snapshots, no IdSet, no TrustIndex, its own snprintf — assembles the
// byte-exact expected JSON for agreement_at and ct_coverage over every
// (date, provider) grid point on the paper scenario AND a simulated CT
// ecosystem, and the engine must reproduce those bytes at 0 and 3 build
// workers, in-process and inside batch envelopes.  Labelled tsan: the
// pooled engine build and the pooled agreement pass race real workers.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/store/database.h"
#include "src/store/fingerprint_set.h"
#include "src/store/snapshot.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/simulator.h"
#include "src/util/date.h"

namespace {

using rs::crypto::Sha256Digest;
using rs::query::QueryEngine;
using rs::store::FingerprintSet;
using rs::store::ProviderHistory;
using rs::store::StoreDatabase;
using rs::util::Date;

// ---------------------------------------------------------------------------
// The referee: FingerprintSet set algebra and its own formatting, sharing
// no code with rs_landscape beyond the wire grammar it predicts.

std::string ref_fmt(double num, double den, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, den == 0.0 ? 0.0 : num / den);
  return buf;
}

std::string ref_agreement(std::size_t inter, std::size_t uni) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f",
                uni == 0 ? 1.0
                         : static_cast<double>(inter) /
                               static_cast<double>(uni));
  return buf;
}

std::string q(const std::string& s) { return "\"" + s + "\""; }

rs::store::TrustPurpose ref_purpose(const std::string& scope) {
  if (scope == "email") return rs::store::TrustPurpose::kEmailProtection;
  if (scope == "code") return rs::store::TrustPurpose::kCodeSigning;
  return rs::store::TrustPurpose::kServerAuth;
}

struct RefStore {
  Date snapshot_date;
  FingerprintSet roots;
};

/// Mirror of TrustIndex::store_at over the raw history: nullopt outside
/// [first, last], else the latest snapshot dated on or before `date`.
std::optional<RefStore> ref_store_at(const ProviderHistory& h, Date date,
                                     const std::string& scope) {
  if (h.empty() || date < h.first_date() || date > h.last_date()) {
    return std::nullopt;
  }
  const auto* snap = h.at(date);
  if (snap == nullptr) return std::nullopt;
  RefStore out;
  out.snapshot_date = snap->date;
  out.roots = scope == "present" ? snap->all_fingerprints()
                                 : snap->anchors_for(ref_purpose(scope));
  return out;
}

std::string expected_agreement(const StoreDatabase& db, const Date& date,
                               const std::string& scope) {
  std::vector<std::string> covered, skipped;
  std::vector<FingerprintSet> sets;
  for (const auto& name : db.providers()) {
    const auto store = ref_store_at(*db.find(name), date, scope);
    if (store) {
      covered.push_back(name);
      sets.push_back(store->roots);
    } else {
      skipped.push_back(name);
    }
  }

  std::string out = R"({"op":"agreement_at","status":"ok","date":)" +
                    q(date.to_string()) + ",\"scope\":" + q(scope);
  out += ",\"providers\":[";
  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += q(covered[i]);
  }
  out += "],\"sizes\":[";
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(sets[i].size());
  }
  out += "],\"exclusive\":[";
  for (std::size_t i = 0; i < sets.size(); ++i) {
    FingerprintSet others;
    for (std::size_t j = 0; j < sets.size(); ++j) {
      if (j != i) others = others.set_union(sets[j]);
    }
    if (i > 0) out.push_back(',');
    out += std::to_string(sets[i].difference(others).size());
  }
  FingerprintSet uni, inter;
  if (!sets.empty()) inter = sets[0];
  for (const auto& s : sets) {
    uni = uni.set_union(s);
    inter = inter.intersection(s);
  }
  out += "],\"union_size\":" + std::to_string(uni.size());
  out += ",\"intersection_size\":" + std::to_string(inter.size());
  out += ",\"global_agreement\":" + q(ref_agreement(inter.size(), uni.size()));
  out += ",\"pairs\":[";
  bool first = true;
  for (std::size_t a = 0; a < sets.size(); ++a) {
    for (std::size_t b = a + 1; b < sets.size(); ++b) {
      const std::size_t i = sets[a].intersection_size(sets[b]);
      const std::size_t u = sets[a].union_size(sets[b]);
      if (!first) out.push_back(',');
      first = false;
      out += "{\"a\":" + q(covered[a]) + ",\"b\":" + q(covered[b]) +
             ",\"intersection\":" + std::to_string(i) +
             ",\"union\":" + std::to_string(u) +
             ",\"agreement\":" + q(ref_agreement(i, u)) + "}";
    }
  }
  out += "],\"not_covered\":[";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += q(skipped[i]);
  }
  out += "]}";
  return out;
}

/// Per-provider first-seen dates under a scope: the first distinct
/// snapshot date whose RESOLVED store (last snapshot of that date) carries
/// the certificate — the raw-history mirror of the index lineage sweep.
using FirstSeenMap = std::map<Sha256Digest, Date>;

FirstSeenMap ref_first_seen(const ProviderHistory& h,
                            const std::string& scope) {
  FirstSeenMap out;
  std::set<Date> dates;
  for (const auto& snap : h.snapshots()) dates.insert(snap.date);
  for (const Date& d : dates) {
    const auto store = ref_store_at(h, d, scope);
    if (!store) continue;
    for (const auto& fp : store->roots.items()) {
      out.emplace(fp, d);  // emplace keeps the earliest date
    }
  }
  return out;
}

struct RefLag {
  std::size_t matched = 0;
  std::int64_t total_days = 0;
};

RefLag ref_lag(const FirstSeenMap& log, const FirstSeenMap& store) {
  RefLag out;
  for (const auto& [fp, log_date] : log) {
    const auto it = store.find(fp);
    if (it == store.end()) continue;
    ++out.matched;
    out.total_days += log_date - it->second;
  }
  return out;
}

std::string expected_ct_coverage(
    const StoreDatabase& db, const std::string& provider, const Date& date,
    const std::string& scope,
    const std::map<std::string, FirstSeenMap>& first_seen) {
  const auto* h = db.find(provider);
  if (h == nullptr) {
    return R"({"status":"error","code":"unknown_provider","message":)" +
           q("no history for provider '" + provider + "'") + "}";
  }
  const std::string echo =
      "\"date\":" + q(date.to_string()) + ",\"scope\":" + q(scope);
  const auto log = ref_store_at(*h, date, scope);
  if (!log) {
    return R"({"op":"ct_coverage","status":"not_covered",)" + echo +
           ",\"provider\":" + q(provider) +
           ",\"coverage_begin\":" + q(h->first_date().to_string()) +
           ",\"coverage_end\":" + q(h->last_date().to_string()) + "}";
  }

  std::vector<std::string> covered, skipped;
  std::vector<FingerprintSet> sets;
  for (const auto& name : db.providers()) {
    if (name == provider) continue;
    const auto store = ref_store_at(*db.find(name), date, scope);
    if (store) {
      covered.push_back(name);
      sets.push_back(store->roots);
    } else {
      skipped.push_back(name);
    }
  }
  FingerprintSet all_stores;
  for (const auto& s : sets) all_stores = all_stores.set_union(s);

  std::string out = R"({"op":"ct_coverage","status":"ok",)" + echo;
  out += ",\"provider\":" + q(provider);
  out += ",\"snapshot_date\":" + q(log->snapshot_date.to_string());
  out += ",\"log_size\":" + std::to_string(log->roots.size());
  out += ",\"log_exclusive\":" +
         std::to_string(log->roots.difference(all_stores).size());
  out += ",\"coverage\":[";
  for (std::size_t i = 0; i < covered.size(); ++i) {
    const auto lag = ref_lag(first_seen.at(provider), first_seen.at(covered[i]));
    if (i > 0) out.push_back(',');
    out += "{\"provider\":" + q(covered[i]);
    out += ",\"size\":" + std::to_string(sets[i].size());
    out += ",\"covered\":" +
           std::to_string(log->roots.intersection_size(sets[i]));
    out += ",\"fraction\":" +
           q(ref_fmt(static_cast<double>(log->roots.intersection_size(sets[i])),
                     static_cast<double>(sets[i].size()), 4));
    out += ",\"matched\":" + std::to_string(lag.matched);
    out += ",\"mean_lag_days\":";
    out += lag.matched == 0
               ? std::string("null")
               : q(ref_fmt(static_cast<double>(lag.total_days),
                           static_cast<double>(lag.matched), 1));
    out += "}";
  }
  out += "],\"not_covered\":[";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += q(skipped[i]);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Grid drivers

std::vector<Date> probe_dates(const StoreDatabase& db) {
  std::set<Date> dates;
  for (const auto& name : db.providers()) {
    for (const auto& snap : db.find(name)->snapshots()) {
      dates.insert(snap.date);
      dates.insert(snap.date + 17);  // mid-interval probes too
    }
  }
  // Out-of-coverage probes on both sides.
  dates.insert(*dates.begin() - 400);
  dates.insert(*dates.rbegin() + 400);
  return {dates.begin(), dates.end()};
}

void run_battery(const StoreDatabase& db, const std::string& scope,
                 std::size_t ct_date_stride) {
  QueryEngine serial(db, {});
  rs::exec::ThreadPool pool(3);
  QueryEngine pooled(db, {}, &pool);
  ASSERT_EQ(db.providers(), serial.index().providers());

  const auto dates = probe_dates(db);
  std::map<std::string, FirstSeenMap> first_seen;
  for (const auto& name : db.providers()) {
    first_seen.emplace(name, ref_first_seen(*db.find(name), scope));
  }

  std::size_t checked = 0;
  for (const Date& d : dates) {
    const std::string line = R"({"op":"agreement_at","date":")" +
                             d.to_string() + R"(","scope":")" + scope +
                             "\"}";
    const std::string expect = expected_agreement(db, d, scope);
    ASSERT_EQ(serial.handle_json(line), expect) << line;
    ASSERT_EQ(pooled.handle_json(line), expect) << line;
    ++checked;
  }
  for (std::size_t k = 0; k < dates.size(); k += ct_date_stride) {
    for (const auto& name : db.providers()) {
      const std::string line = R"({"op":"ct_coverage","provider":")" + name +
                               R"(","date":")" + dates[k].to_string() +
                               R"(","scope":")" + scope + "\"}";
      const std::string expect =
          expected_ct_coverage(db, name, dates[k], scope, first_seen);
      ASSERT_EQ(serial.handle_json(line), expect) << line;
      ASSERT_EQ(pooled.handle_json(line), expect) << line;
      ++checked;
    }
  }
  // Unknown provider errors identically everywhere.
  const std::string bad =
      R"({"op":"ct_coverage","provider":"NoSuch","date":"2020-01-01"})";
  EXPECT_EQ(serial.handle_json(bad),
            expected_ct_coverage(db, "NoSuch", Date::ymd(2020, 1, 1), "tls",
                                 first_seen));
  EXPECT_EQ(serial.handle_json(bad), pooled.handle_json(bad));
  EXPECT_GT(checked, dates.size());
}

TEST(LandscapeDifferential, PaperScenarioTlsFullGrid) {
  const auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  run_battery(scenario.database(), "tls", 7);
}

TEST(LandscapeDifferential, PaperScenarioPresentScope) {
  const auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  run_battery(scenario.database(), "present", 23);
}

TEST(LandscapeDifferential, SimulatedCtEcosystemFullGrid) {
  rs::synth::SimulatorConfig config;
  config.seed = 20210707;
  config.ca_count = 40;
  config.program_count = 2;
  config.derivative_count = 1;
  config.snapshot_interval_days = 180;
  config.ct_log_count = 2;
  const auto eco = rs::synth::simulate_ecosystem(config);
  ASSERT_EQ(eco.ct_log_names.size(), 2u);
  for (const auto& log : eco.ct_log_names) {
    ASSERT_NE(eco.database.find(log), nullptr);
  }
  run_battery(eco.database, "tls", 1);
}

TEST(LandscapeDifferential, BatchEnvelopeMatchesPerItemResponses) {
  const auto scenario = rs::synth::build_paper_scenario(rs::synth::kPaperSeed);
  QueryEngine engine(scenario.database(), {});
  const std::vector<std::string> items = {
      R"({"op":"agreement_at","date":"2015-06-01"})",
      R"({"op":"ct_coverage","provider":"NSS","date":"2015-06-01"})",
      R"({"op":"agreement_at","date":"2015-06-01","scope":"present"})",
      R"({"op":"ct_coverage","provider":"NoSuch","date":"2015-06-01"})",
  };
  std::string batch = R"({"op":"batch","requests":[)";
  std::vector<std::string> singles;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) batch.push_back(',');
    batch += items[i];
    singles.push_back(engine.handle_json(items[i]));
  }
  batch += "]}";
  EXPECT_EQ(engine.handle_json(batch), rs::query::batch_response(singles));
}

}  // namespace
