// Unit tests for the landscape disparity primitives: every metric is
// cross-checked against a naive recomputation over the same sets, and the
// pooled pairwise pass must reproduce the serial bytes.
#include "src/landscape/presence.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/exec/thread_pool.h"
#include "src/landscape/ct_landscape.h"
#include "src/store/id_set.h"
#include "src/util/date.h"

namespace {

using rs::store::IdSet;

IdSet make_set(std::size_t universe, std::vector<std::uint32_t> ids) {
  return IdSet(universe, ids);
}

std::vector<const IdSet*> views(const std::vector<IdSet>& sets) {
  std::vector<const IdSet*> out;
  for (const auto& s : sets) out.push_back(&s);
  return out;
}

TEST(AgreementScore, JaccardWithEmptyConvention) {
  EXPECT_DOUBLE_EQ(rs::landscape::agreement_score(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(rs::landscape::agreement_score(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(rs::landscape::agreement_score(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(rs::landscape::agreement_score(0, 7), 0.0);
}

TEST(FormatRatio, FixedDecimalsAndZeroDenominator) {
  EXPECT_EQ(rs::landscape::format_ratio(1.0, 3.0, 4), "0.3333");
  EXPECT_EQ(rs::landscape::format_ratio(5.0, 0.0, 4), "0.0000");
  EXPECT_EQ(rs::landscape::format_ratio(-250.0, 100.0, 1), "-2.5");
  EXPECT_EQ(rs::landscape::format_agreement(0, 0), "1.000000");
  EXPECT_EQ(rs::landscape::format_agreement(1, 3), "0.333333");
}

TEST(ExclusiveSets, SelfHeldMatchesNaive) {
  const std::size_t universe = 40;
  std::vector<IdSet> sets;
  sets.push_back(make_set(universe, {0, 1, 2, 3, 10}));
  sets.push_back(make_set(universe, {1, 2, 3, 20, 21}));
  sets.push_back(make_set(universe, {2, 3, 30}));
  sets.push_back(make_set(universe, {}));
  const auto v = views(sets);
  const auto exclusive = rs::landscape::exclusive_sets(v, v);
  ASSERT_EQ(exclusive.size(), sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    IdSet others(universe);
    for (std::size_t j = 0; j < sets.size(); ++j) {
      if (j != i) others |= sets[j];
    }
    EXPECT_EQ(exclusive[i], sets[i].difference(others)) << "provider " << i;
  }
  EXPECT_EQ(exclusive[0].size(), 2u);  // {0, 10}
  EXPECT_EQ(exclusive[1].size(), 2u);  // {20, 21}
  EXPECT_EQ(exclusive[2].size(), 1u);  // {30}
  EXPECT_EQ(exclusive[3].size(), 0u);
}

TEST(ExclusiveSets, WiderHeldDiscountsMore) {
  // Table 6 shape: candidates are latest snapshots, held are ever-trusted
  // supersets — a root another provider USED to trust is not exclusive.
  const std::size_t universe = 8;
  std::vector<IdSet> latest;
  latest.push_back(make_set(universe, {0, 1}));
  latest.push_back(make_set(universe, {2}));
  std::vector<IdSet> ever;
  ever.push_back(make_set(universe, {0, 1, 5}));
  ever.push_back(make_set(universe, {1, 2}));  // provider 1 once had 1
  const auto exclusive =
      rs::landscape::exclusive_sets(views(latest), views(ever));
  EXPECT_EQ(exclusive[0].size(), 1u);  // only 0; 1 is in ever[1]
  EXPECT_TRUE(exclusive[0].contains(0));
  EXPECT_EQ(exclusive[1].size(), 1u);
  EXPECT_TRUE(exclusive[1].contains(2));
}

TEST(ExclusiveSets, SingleAndEmptyInputs) {
  EXPECT_TRUE(rs::landscape::exclusive_sets({}, {}).empty());
  std::vector<IdSet> one;
  one.push_back(make_set(4, {1, 3}));
  const auto v = views(one);
  const auto exclusive = rs::landscape::exclusive_sets(v, v);
  ASSERT_EQ(exclusive.size(), 1u);
  EXPECT_EQ(exclusive[0], one[0]);
}

TEST(AgreementSummary, MatchesNaiveRecomputation) {
  const std::size_t universe = 64;
  std::vector<IdSet> sets;
  sets.push_back(make_set(universe, {0, 1, 2, 3, 4, 5}));
  sets.push_back(make_set(universe, {2, 3, 4, 5, 6, 7, 8}));
  sets.push_back(make_set(universe, {4, 5, 40, 41}));
  sets.push_back(make_set(universe, {5}));
  sets.push_back(make_set(universe, {}));
  const auto v = views(sets);
  const auto s = rs::landscape::agreement_summary(v);

  ASSERT_EQ(s.sizes.size(), sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(s.sizes[i], sets[i].size());
  }
  IdSet all(universe);
  IdSet common = sets[0];
  for (const auto& x : sets) all |= x;
  for (const auto& x : sets) common = common.intersection(x);
  EXPECT_EQ(s.union_size, all.size());
  EXPECT_EQ(s.intersection_size, common.size());

  const std::size_t n = sets.size();
  ASSERT_EQ(s.pairs.size(), n * (n - 1) / 2);
  std::size_t k = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b, ++k) {
      EXPECT_EQ(s.pairs[k].a, a);
      EXPECT_EQ(s.pairs[k].b, b);
      EXPECT_EQ(s.pairs[k].intersection, sets[a].intersection_size(sets[b]));
      EXPECT_EQ(s.pairs[k].union_size, sets[a].union_size(sets[b]));
    }
  }
}

TEST(AgreementSummary, PooledMatchesSerial) {
  const std::size_t universe = 512;
  std::vector<IdSet> sets;
  for (std::size_t p = 0; p < 12; ++p) {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 0; id < universe; ++id) {
      if ((id * 2654435761u + p * 40503u) % 7 < 3) ids.push_back(id);
    }
    sets.push_back(make_set(universe, ids));
  }
  const auto v = views(sets);
  const auto serial = rs::landscape::agreement_summary(v, nullptr);
  rs::exec::ThreadPool pool(3);
  const auto pooled = rs::landscape::agreement_summary(v, &pool);
  EXPECT_EQ(serial.sizes, pooled.sizes);
  EXPECT_EQ(serial.exclusive_counts, pooled.exclusive_counts);
  EXPECT_EQ(serial.union_size, pooled.union_size);
  EXPECT_EQ(serial.intersection_size, pooled.intersection_size);
  ASSERT_EQ(serial.pairs.size(), pooled.pairs.size());
  for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
    EXPECT_EQ(serial.pairs[i].a, pooled.pairs[i].a);
    EXPECT_EQ(serial.pairs[i].b, pooled.pairs[i].b);
    EXPECT_EQ(serial.pairs[i].intersection, pooled.pairs[i].intersection);
    EXPECT_EQ(serial.pairs[i].union_size, pooled.pairs[i].union_size);
  }
}

TEST(CtLandscape, CoverageRowsAndExclusives) {
  const std::size_t universe = 32;
  const IdSet log = make_set(universe, {0, 1, 2, 3, 8, 9});
  std::vector<IdSet> stores;
  stores.push_back(make_set(universe, {0, 1, 4}));
  stores.push_back(make_set(universe, {2, 3, 4, 5}));
  stores.push_back(make_set(universe, {}));
  const auto v = views(stores);
  const auto rows = rs::landscape::coverage_rows(log, v);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].store_size, 3u);
  EXPECT_EQ(rows[0].covered, 2u);
  EXPECT_EQ(rows[1].store_size, 4u);
  EXPECT_EQ(rows[1].covered, 2u);
  EXPECT_EQ(rows[2].store_size, 0u);
  EXPECT_EQ(rows[2].covered, 0u);
  // {8, 9} are in no store.
  EXPECT_EQ(rs::landscape::log_exclusive_count(log, v), 2u);
  EXPECT_EQ(rs::landscape::log_exclusive_count(log, {}), log.size());
}

TEST(CtLandscape, AdoptionLagSignedSum) {
  using rs::util::Date;
  rs::landscape::FirstSeen log(4), store(4);
  log[0] = Date::ymd(2020, 3, 1);    // 60 days after the store
  store[0] = Date::ymd(2020, 1, 1);
  log[1] = Date::ymd(2019, 12, 22);  // 10 days BEFORE the store
  store[1] = Date::ymd(2020, 1, 1);
  log[2] = Date::ymd(2020, 1, 1);    // log-only: no match
  store[3] = Date::ymd(2020, 1, 1);  // store-only: no match
  const auto lag = rs::landscape::adoption_lag(log, store);
  EXPECT_EQ(lag.matched, 2u);
  EXPECT_EQ(lag.total_lag_days, 50);
  const auto none = rs::landscape::adoption_lag({}, {});
  EXPECT_EQ(none.matched, 0u);
  EXPECT_EQ(none.total_lag_days, 0);
}

}  // namespace
