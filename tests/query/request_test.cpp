#include "src/query/request.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/hex.h"

namespace rs::query {
namespace {

using rs::util::Date;

const std::string kFp(64, 'a');

TEST(ParseRequest, StatsMinimal) {
  auto r = parse_request(R"({"op":"stats"})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kStats);
  EXPECT_FALSE(r.value().fp.has_value());
  EXPECT_FALSE(r.value().provider.has_value());
}

TEST(ParseRequest, IsTrustedAllFields) {
  auto r = parse_request(R"({"op":"is_trusted","provider":"NSS","fp":")" +
                         kFp + R"(","date":"2020-06-01","scope":"email"})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kIsTrusted);
  EXPECT_EQ(*r.value().provider, "NSS");
  ASSERT_TRUE(r.value().fp.has_value());
  EXPECT_EQ(rs::util::hex_encode(*r.value().fp), kFp);
  EXPECT_EQ(*r.value().date, Date::ymd(2020, 6, 1));
  EXPECT_EQ(r.value().scope, Scope::kEmail);
}

TEST(ParseRequest, ScopeDefaultsToTls) {
  auto r = parse_request(
      R"({"op":"store_at","provider":"NSS","date":"2020-06-01"})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().scope, Scope::kTls);
}

TEST(ParseRequest, UppercaseHexFingerprintNormalized) {
  std::string upper(64, 'A');
  auto r = parse_request(R"({"op":"lineage","fp":")" + upper + R"("})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(rs::util::hex_encode(*r.value().fp), kFp);
}

TEST(ParseRequest, WhitespaceTolerated) {
  auto r = parse_request(" { \"op\" : \"stats\" } ");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kStats);
}

TEST(ParseRequest, AgentStoreOsOptional) {
  auto with_os = parse_request(
      R"({"op":"agent_store","user_agent":"Chrome Mobile","os":"Android",)"
      R"("date":"2020-06-01"})");
  ASSERT_TRUE(with_os.ok()) << with_os.error();
  EXPECT_EQ(*with_os.value().os, "Android");
  auto without = parse_request(
      R"({"op":"agent_store","user_agent":"Firefox","date":"2020-06-01"})");
  ASSERT_TRUE(without.ok()) << without.error();
  EXPECT_FALSE(without.value().os.has_value());
}

TEST(ParseRequest, AgreementAtTakesDateAndOptionalScope) {
  auto minimal = parse_request(R"({"op":"agreement_at","date":"2020-06-01"})");
  ASSERT_TRUE(minimal.ok()) << minimal.error();
  EXPECT_EQ(minimal.value().op, Op::kAgreementAt);
  EXPECT_EQ(*minimal.value().date, Date::ymd(2020, 6, 1));
  EXPECT_EQ(minimal.value().scope, Scope::kTls);
  auto scoped = parse_request(
      R"({"op":"agreement_at","date":"2020-06-01","scope":"present"})");
  ASSERT_TRUE(scoped.ok()) << scoped.error();
  EXPECT_EQ(scoped.value().scope, Scope::kPresent);
  // No provider/fp/date_a/... on this op.
  EXPECT_FALSE(parse_request(R"({"op":"agreement_at"})").ok());
  EXPECT_FALSE(
      parse_request(
          R"({"op":"agreement_at","date":"2020-06-01","provider":"NSS"})")
          .ok());
  EXPECT_FALSE(
      parse_request(
          R"({"op":"agreement_at","date":"2020-06-01","fp":")" + kFp + R"("})")
          .ok());
}

TEST(ParseRequest, CtCoverageTakesProviderDateAndOptionalScope) {
  auto r = parse_request(
      R"({"op":"ct_coverage","provider":"CtLog0","date":"2020-06-01"})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kCtCoverage);
  EXPECT_EQ(*r.value().provider, "CtLog0");
  EXPECT_EQ(r.value().scope, Scope::kTls);
  EXPECT_FALSE(parse_request(R"({"op":"ct_coverage","date":"2020-06-01"})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"ct_coverage","provider":"CtLog0"})").ok());
  EXPECT_FALSE(
      parse_request(
          R"({"op":"ct_coverage","provider":"CtLog0","date":"2020-06-01",)"
          R"("user_agent":"Chrome"})")
          .ok());
}

TEST(ParseRequest, LandscapeOpsEnforceTheDefaultCaps) {
  // Neither op carries certificates, so both keep the tight budget.
  EXPECT_EQ(max_request_bytes(Op::kAgreementAt), kMaxRequestBytes);
  EXPECT_EQ(max_request_bytes(Op::kCtCoverage), kMaxRequestBytes);
  std::string long_provider(kMaxValueBytes + 1, 'p');
  EXPECT_FALSE(parse_request(R"({"op":"ct_coverage","provider":")" +
                             long_provider + R"(","date":"2020-06-01"})")
                   .ok());
  std::string oversized = R"({"op":"agreement_at","date":"2020-06-01",)";
  oversized.append(kMaxRequestBytes, ' ');
  oversized += R"("scope":"tls"})";
  EXPECT_FALSE(parse_request(oversized).ok());
  // Duplicate fields are rejected for the new ops too.
  EXPECT_FALSE(
      parse_request(
          R"({"op":"agreement_at","date":"2020-06-01","date":"2020-06-01"})")
          .ok());
  EXPECT_FALSE(
      parse_request(
          R"({"op":"ct_coverage","provider":"A","provider":"A","date":"2020-06-01"})")
          .ok());
}

// --- Rejections -----------------------------------------------------------

TEST(ParseRequest, RejectsEmptyAndNonObject) {
  EXPECT_FALSE(parse_request("").ok());
  EXPECT_FALSE(parse_request("null").ok());
  EXPECT_FALSE(parse_request("[]").ok());
  EXPECT_FALSE(parse_request("{}").ok());  // no "op"
}

TEST(ParseRequest, RejectsUnknownOpAndUnknownField) {
  EXPECT_FALSE(parse_request(R"({"op":"drop_tables"})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"stats","extra":"x"})").ok());
  // A field another op uses is still unknown for this op.
  EXPECT_FALSE(parse_request(R"({"op":"stats","provider":"NSS"})").ok());
}

TEST(ParseRequest, RejectsMissingRequiredField) {
  EXPECT_FALSE(parse_request(R"({"op":"is_trusted","provider":"NSS"})").ok());
  EXPECT_FALSE(
      parse_request(R"({"op":"diff","provider":"NSS","date_a":"2020-01-01"})")
          .ok());
}

TEST(ParseRequest, RejectsDuplicateKey) {
  EXPECT_FALSE(parse_request(R"({"op":"stats","op":"stats"})").ok());
}

TEST(ParseRequest, RejectsTrailingBytes) {
  EXPECT_FALSE(parse_request(R"({"op":"stats"}x)").ok());
  EXPECT_FALSE(parse_request(R"({"op":"stats"}{"op":"stats"})").ok());
}

TEST(ParseRequest, RejectsBadFingerprint) {
  EXPECT_FALSE(parse_request(R"({"op":"lineage","fp":"abc"})").ok());
  std::string bad(63, 'a');
  bad.push_back('g');
  EXPECT_FALSE(parse_request(R"({"op":"lineage","fp":")" + bad + R"("})").ok());
}

TEST(ParseRequest, RejectsBadDate) {
  EXPECT_FALSE(parse_request(
                   R"({"op":"store_at","provider":"NSS","date":"junk"})")
                   .ok());
  EXPECT_FALSE(parse_request(
                   R"({"op":"store_at","provider":"NSS","date":"2020-13-01"})")
                   .ok());
}

TEST(ParseRequest, RejectsBadScope) {
  EXPECT_FALSE(
      parse_request(
          R"({"op":"store_at","provider":"NSS","date":"2020-01-01","scope":"ssh"})")
          .ok());
}

TEST(ParseRequest, RejectsUnicodeEscapesAndControlBytes) {
  // \uXXXX escapes are outside the accepted grammar (the raw string below
  // really carries a backslash-u sequence on the wire).
  EXPECT_FALSE(
      parse_request(
          R"({"op":"store_at","provider":"N\u0053S","date":"2020-01-01"})")
          .ok());
  std::string raw = "{\"op\":\"store_at\",\"provider\":\"a\x01b\","
                    "\"date\":\"2020-01-01\"}";
  EXPECT_FALSE(parse_request(raw).ok());
}

TEST(ParseRequest, EnforcesByteAndFieldCaps) {
  // Oversized total request.
  std::string big = R"({"op":"stats","x":")" + std::string(5000, 'a') + "\"}";
  EXPECT_FALSE(parse_request(big).ok());
  // Oversized single value within the total cap.
  std::string long_value =
      R"({"op":"store_at","provider":")" + std::string(kMaxValueBytes + 1, 'p') +
      R"(","date":"2020-01-01"})";
  ASSERT_LE(long_value.size(), kMaxRequestBytes);
  EXPECT_FALSE(parse_request(long_value).ok());
  // Oversized key.
  std::string long_key =
      "{\"" + std::string(kMaxKeyBytes + 1, 'k') + "\":\"v\"}";
  EXPECT_FALSE(parse_request(long_key).ok());
  // A non-verify op must stay under kMaxRequestBytes even when every field
  // is individually small (the slack here is pure whitespace).
  std::string padded = R"({"op":"stats"})" + std::string(kMaxRequestBytes, ' ');
  ASSERT_LE(padded.size(), kMaxVerifyRequestBytes);
  auto r = parse_request(padded);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("for op 'stats'"), std::string::npos);
}

// --- verify_chain / first_rejected_at payloads ----------------------------

// Tiny placeholder DER payloads used below: "AQID" = {1,2,3},
// "BAUG" = {4,5,6}, "Bw==" = {7}.  parse_request only decodes Base64;
// x509 parsing happens in the engine.

TEST(ParseRequest, VerifyChainParsesLeafAndPool) {
  auto r = parse_request(
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01",)"
      R"("leaf":"AQID","pool":["Bw==","BAUG","Bw=="]})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kVerifyChain);
  ASSERT_TRUE(r.value().leaf.has_value());
  EXPECT_EQ(*r.value().leaf, (std::vector<std::uint8_t>{1, 2, 3}));
  // Pool is sorted by DER bytes and deduplicated at parse time.
  ASSERT_EQ(r.value().pool.size(), 2u);
  EXPECT_EQ(r.value().pool[0], (std::vector<std::uint8_t>{4, 5, 6}));
  EXPECT_EQ(r.value().pool[1], (std::vector<std::uint8_t>{7}));
}

TEST(ParseRequest, FirstRejectedAtTakesNoDate) {
  auto r = parse_request(
      R"({"op":"first_rejected_at","provider":"NSS",)"
      R"("leaf":"AQID","pool":[],"scope":"email"})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Op::kFirstRejectedAt);
  EXPECT_TRUE(r.value().pool.empty());
  EXPECT_EQ(r.value().scope, Scope::kEmail);
  EXPECT_FALSE(
      parse_request(R"({"op":"first_rejected_at","provider":"NSS",)"
                    R"("leaf":"AQID","pool":[],"date":"2020-01-01"})")
          .ok());
}

TEST(ParseRequest, VerifyChainRejectsMalformedPayloads) {
  // Missing leaf / missing pool (empty array is fine, absence is not).
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","pool":[]})")
                   .ok());
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":"AQID"})")
                   .ok());
  // pool must be an array; arrays are only legal for pool.
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":"AQID",)"
                             R"("pool":"AQID"})")
                   .ok());
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":["AQID"],)"
                             R"("pool":[]})")
                   .ok());
  // Invalid / empty Base64 payloads.
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":"@!","pool":[]})")
                   .ok());
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":"","pool":[]})")
                   .ok());
  EXPECT_FALSE(parse_request(R"({"op":"verify_chain","provider":"NSS",)"
                             R"("date":"2020-06-01","leaf":"AQID",)"
                             R"("pool":["@!"]})")
                   .ok());
  // Certificate fields are unknown for every other op.
  EXPECT_FALSE(parse_request(R"({"op":"stats","pool":[]})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"stats","leaf":"AQID"})").ok());
}

TEST(ParseRequest, VerifyChainEnforcesPoolAndSizeCaps) {
  // One entry over the pool-count cap.
  std::string many = R"({"op":"verify_chain","provider":"NSS",)"
                     R"("date":"2020-06-01","leaf":"AQID","pool":[)";
  for (std::size_t i = 0; i <= kMaxPoolCerts; ++i) {
    if (i > 0) many += ',';
    many += "\"BAUG\"";
  }
  many += "]}";
  auto over = parse_request(many);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.error().find("pool carries more than"), std::string::npos);
  // Verify ops get the wide per-request budget: the same whitespace padding
  // that sinks a stats request (EnforcesByteAndFieldCaps) is fine here.
  std::string padded =
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01",)"
      R"("leaf":"AQID","pool":[]})" +
      std::string(kMaxRequestBytes, ' ');
  auto ok = parse_request(padded);
  EXPECT_TRUE(ok.ok()) << ok.error();
  std::string too_fat =
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01",)"
      R"("leaf":"AQID","pool":[]})" +
      std::string(kMaxVerifyRequestBytes, ' ');
  EXPECT_FALSE(parse_request(too_fat).ok());
}

// --- Canonicalization -----------------------------------------------------

TEST(CanonicalRequest, MaterializesDefaultsAndFixesOrder) {
  // scope omitted and fields deliberately out of order.
  auto r = parse_request(R"({"date":"2020-06-01","provider":"NSS",)"
                         R"("fp":")" + kFp + R"(","op":"is_trusted"})");
  ASSERT_TRUE(r.ok()) << r.error();
  const std::string canonical = canonical_request(r.value());
  EXPECT_EQ(canonical,
            R"({"op":"is_trusted","date":"2020-06-01","fp":")" + kFp +
                R"(","provider":"NSS","scope":"tls"})");
  // Semantically equal spellings share one canonical form (the cache key).
  auto explicit_scope =
      parse_request(R"({"op":"is_trusted","provider":"NSS","fp":")" + kFp +
                    R"(","date":"2020-06-01","scope":"tls"})");
  ASSERT_TRUE(explicit_scope.ok());
  EXPECT_EQ(canonical_request(explicit_scope.value()), canonical);
}

TEST(CanonicalRequest, PoolOrderDoesNotLeakIntoTheCacheKey) {
  auto a = parse_request(
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01",)"
      R"("leaf":"AQID","pool":["Bw==","BAUG"]})");
  auto b = parse_request(
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01",)"
      R"("leaf":"AQID","pool":["BAUG","Bw==","BAUG"]})");
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  const std::string canonical = canonical_request(a.value());
  EXPECT_EQ(canonical_request(b.value()), canonical);
  EXPECT_EQ(canonical,
            R"({"op":"verify_chain","date":"2020-06-01","leaf":"AQID",)"
            R"("pool":["BAUG","Bw=="],"provider":"NSS","scope":"tls"})");
}

TEST(CanonicalRequest, IsAFixedPoint) {
  const char* lines[] = {
      R"({"op":"stats"})",
      R"({"op":"server_stats"})",
      R"({"op":"diff","provider":"Debian","date_a":"2015-01-01","date_b":"2020-01-01","scope":"present"})",
      R"({"op":"agent_store","user_agent":"Chrome Mobile","os":"Android","date":"2020-06-01"})",
      R"({"op":"verify_chain","provider":"NSS","date":"2020-06-01","leaf":"AQID","pool":["Bw==","BAUG"]})",
      R"({"op":"first_rejected_at","provider":"Microsoft","leaf":"AQID","pool":[]})",
      R"({"op":"agreement_at","date":"2020-06-01"})",
      R"({"op":"agreement_at","scope":"present","date":"2020-06-01"})",
      R"({"op":"ct_coverage","provider":"CtLog0","date":"2020-06-01","scope":"email"})",
      R"({"op":"ct_coverage","date":"2020-06-01","provider":"CtLog0"})",
  };
  for (const char* line : lines) {
    auto first = parse_request(line);
    ASSERT_TRUE(first.ok()) << line << ": " << first.error();
    const std::string c1 = canonical_request(first.value());
    auto second = parse_request(c1);
    ASSERT_TRUE(second.ok()) << c1 << ": " << second.error();
    EXPECT_EQ(canonical_request(second.value()), c1);
  }
}

TEST(AppendJsonString, EscapesControlBytesAndQuotes) {
  std::string out;
  append_json_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// --- Batch envelopes ------------------------------------------------------

TEST(LooksLikeBatch, MatchesExactlyTheEnvelopeOpening) {
  EXPECT_TRUE(looks_like_batch(R"({"op":"batch","requests":[]})"));
  EXPECT_TRUE(looks_like_batch("  { \"op\" : \"batch\" ,"));  // ws-tolerant
  EXPECT_FALSE(looks_like_batch(R"({"op":"stats"})"));
  EXPECT_FALSE(looks_like_batch(R"({"requests":[],"op":"batch"})"));
  EXPECT_FALSE(looks_like_batch(""));
  EXPECT_FALSE(looks_like_batch("batch"));
}

TEST(ParseBatchRequest, SplitsItemsAsViewsIntoTheLine) {
  const std::string line =
      R"({"op":"batch","requests":[{"op":"stats"},{"op":"server_stats"}]})";
  auto items = parse_batch_request(line);
  ASSERT_TRUE(items.ok()) << items.error();
  ASSERT_EQ(items.value().size(), 2u);
  EXPECT_EQ(items.value()[0], R"({"op":"stats"})");
  EXPECT_EQ(items.value()[1], R"({"op":"server_stats"})");
  // The views alias the input, not copies.
  EXPECT_GE(items.value()[0].data(), line.data());
  EXPECT_LE(items.value()[1].data() + items.value()[1].size(),
            line.data() + line.size());
}

TEST(ParseBatchRequest, SplitsLandscapeOpsAndTheirItemsParse) {
  const std::string line =
      R"({"op":"batch","requests":[{"op":"agreement_at","date":"2020-06-01"},)"
      R"({"op":"ct_coverage","provider":"CtLog0","date":"2020-06-01","scope":"present"}]})";
  auto items = parse_batch_request(line);
  ASSERT_TRUE(items.ok()) << items.error();
  ASSERT_EQ(items.value().size(), 2u);
  auto first = parse_request(items.value()[0]);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first.value().op, Op::kAgreementAt);
  auto second = parse_request(items.value()[1]);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second.value().op, Op::kCtCoverage);
  EXPECT_EQ(second.value().scope, Scope::kPresent);
}

TEST(ParseBatchRequest, EmptyRequestListIsValid) {
  auto items = parse_batch_request(R"({"op":"batch","requests":[]})");
  ASSERT_TRUE(items.ok()) << items.error();
  EXPECT_TRUE(items.value().empty());
}

TEST(ParseBatchRequest, FramesItemsWithStringAwareBraceMatching) {
  // A brace inside a string value must not close the item early.
  const std::string line =
      R"({"op":"batch","requests":[{"op":"store_at","provider":"a}b","date":"2020-01-01"}]})";
  auto items = parse_batch_request(line);
  ASSERT_TRUE(items.ok()) << items.error();
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_EQ(items.value()[0],
            R"({"op":"store_at","provider":"a}b","date":"2020-01-01"})");
}

TEST(ParseBatchRequest, ReturnsNestedBatchesUnvalidated) {
  // The splitter frames a nested envelope as one item; rejecting it is the
  // engine's per-slot job (QueryEngine.NestedBatchErrorsInItsOwnSlot).
  auto items = parse_batch_request(
      R"({"op":"batch","requests":[{"op":"batch","requests":[]}]})");
  ASSERT_TRUE(items.ok()) << items.error();
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_TRUE(looks_like_batch(items.value()[0]));
}

TEST(ParseBatchRequest, RejectsMalformedFraming) {
  const char* bad[] = {
      R"({"op":"batch"})",                             // no requests field
      R"({"op":"batch","requests":{}})",               // not an array
      R"({"requests":[],"op":"batch"})",               // wrong field order
      R"({"op":"batch","requests":[{"op":"stats"})",   // unterminated array
      R"({"op":"batch","requests":[{"op":"stats"}])",  // unterminated object
      R"({"op":"batch","requests":["x"]})",            // item not an object
      R"({"op":"batch","requests":[{"op":"st)",        // unterminated item
      R"({"op":"batch","requests":[{},{}]} trailing)", // trailing bytes
      R"({"op":"batch","requests":[{} {}]})",          // missing comma
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_batch_request(line).ok()) << line;
  }
}

TEST(ParseBatchRequest, EnforcesEnvelopeCaps) {
  // More than kMaxBatchRequests items.
  std::string many = R"({"op":"batch","requests":[)";
  for (std::size_t i = 0; i <= kMaxBatchRequests; ++i) {
    if (i > 0) many += ',';
    many += R"({"op":"stats"})";
  }
  many += "]}";
  ASSERT_LE(many.size(), kMaxBatchBytes);
  auto over_count = parse_batch_request(many);
  ASSERT_FALSE(over_count.ok());
  EXPECT_NE(over_count.error().find("more than"), std::string::npos);

  // One item over the per-item byte cap (the splitter allows anything up
  // to kMaxVerifyRequestBytes — the widest per-op budget — and leaves the
  // tighter per-op cap to parse_request).
  std::string fat_item = R"({"op":"batch","requests":[{"op":"stats","x":")" +
                         std::string(kMaxVerifyRequestBytes, 'a') + "\"}]}";
  ASSERT_LE(fat_item.size(), kMaxBatchBytes);
  auto over_item = parse_batch_request(fat_item);
  ASSERT_FALSE(over_item.ok());
  EXPECT_NE(over_item.error().find("exceeds"), std::string::npos);

  // A verify-sized item passes the splitter but a non-verify op of the
  // same size still fails per-op validation.
  std::string mid_item = R"({"op":"batch","requests":[{"op":"stats")" +
                         std::string(kMaxRequestBytes, ' ') + "}]}";
  ASSERT_LE(mid_item.size(), kMaxBatchBytes);
  auto mid = parse_batch_request(mid_item);
  ASSERT_TRUE(mid.ok()) << mid.error();
  ASSERT_EQ(mid.value().size(), 1u);
  EXPECT_FALSE(parse_request(mid.value()[0]).ok());

  // The whole line over the envelope byte cap fails before any parsing.
  std::string fat_line(kMaxBatchBytes + 1, ' ');
  EXPECT_FALSE(parse_batch_request(fat_line).ok());
}

}  // namespace
}  // namespace rs::query
