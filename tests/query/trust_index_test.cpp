#include "src/query/trust_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/store/trust.h"
#include "src/x509/builder.h"

namespace rs::query {
namespace {

using rs::store::CertInterner;
using rs::store::make_tls_anchor;
using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::store::TrustEntry;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Query Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(std::string provider, Date date,
              std::vector<TrustEntry> entries) {
  Snapshot s;
  s.provider = std::move(provider);
  s.date = date;
  s.version = date.to_string();
  s.entries = std::move(entries);
  return s;
}

// One provider, four snapshots.  `flapper` is present in snapshots 1 and 3
// only — the removed-then-re-added shape that must yield two intervals.
struct Fixture {
  std::shared_ptr<const rs::x509::Certificate> stable = make_cert(1);
  std::shared_ptr<const rs::x509::Certificate> flapper = make_cert(2);
  std::shared_ptr<const rs::x509::Certificate> outsider = make_cert(3);
  StoreDatabase db;
  CertInterner interner;
  TrustIndex index;

  Fixture() {
    ProviderHistory h("P");
    h.add(snap("P", Date::ymd(2019, 1, 1),
               {make_tls_anchor(stable), make_tls_anchor(flapper)}));
    h.add(snap("P", Date::ymd(2019, 7, 1), {make_tls_anchor(stable)}));
    h.add(snap("P", Date::ymd(2020, 1, 1),
               {make_tls_anchor(stable), make_tls_anchor(flapper)}));
    h.add(snap("P", Date::ymd(2020, 7, 1), {make_tls_anchor(stable)}));
    db.add(std::move(h));
    // A second provider so `outsider` is a known certificate that P never
    // carried (must answer kUntrusted inside P's coverage, not kNotCovered).
    ProviderHistory other("Q");
    other.add(snap("Q", Date::ymd(2019, 6, 1), {make_tls_anchor(outsider)}));
    db.add(std::move(other));
    interner = CertInterner::from_database(db);
    index = TrustIndex::build(db, interner);
  }
};

TEST(TrustIndex, ReAddedRootHasTwoDisjointIntervals) {
  Fixture f;
  const auto spans = f.index.lineage(f.flapper->sha256(), Scope::kTls);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].provider, "P");
  EXPECT_EQ(spans[0].interval.added, Date::ymd(2019, 1, 1));
  ASSERT_TRUE(spans[0].interval.removed.has_value());
  EXPECT_EQ(*spans[0].interval.removed, Date::ymd(2019, 7, 1));
  EXPECT_EQ(spans[1].provider, "P");
  EXPECT_EQ(spans[1].interval.added, Date::ymd(2020, 1, 1));
  ASSERT_TRUE(spans[1].interval.removed.has_value());
  EXPECT_EQ(*spans[1].interval.removed, Date::ymd(2020, 7, 1));

  // The gap between the intervals answers untrusted, both runs trusted.
  EXPECT_EQ(f.index.is_trusted(f.flapper->sha256(), "P", Date::ymd(2019, 3, 1),
                               Scope::kTls),
            TrustAnswer::kTrusted);
  EXPECT_EQ(f.index.is_trusted(f.flapper->sha256(), "P",
                               Date::ymd(2019, 10, 1), Scope::kTls),
            TrustAnswer::kUntrusted);
  EXPECT_EQ(f.index.is_trusted(f.flapper->sha256(), "P", Date::ymd(2020, 3, 1),
                               Scope::kTls),
            TrustAnswer::kTrusted);
  EXPECT_EQ(f.index.is_trusted(f.flapper->sha256(), "P", Date::ymd(2020, 7, 1),
                               Scope::kTls),
            TrustAnswer::kUntrusted);
}

TEST(TrustIndex, OutsideCoverageIsNotCoveredNotFalse) {
  Fixture f;
  // Day before the first snapshot and day after the last.
  EXPECT_EQ(f.index.is_trusted(f.stable->sha256(), "P",
                               Date::ymd(2018, 12, 31), Scope::kTls),
            TrustAnswer::kNotCovered);
  EXPECT_EQ(f.index.is_trusted(f.stable->sha256(), "P", Date::ymd(2020, 7, 2),
                               Scope::kTls),
            TrustAnswer::kNotCovered);
  // Coverage boundaries themselves answer.
  EXPECT_EQ(f.index.is_trusted(f.stable->sha256(), "P", Date::ymd(2019, 1, 1),
                               Scope::kTls),
            TrustAnswer::kTrusted);
  EXPECT_EQ(f.index.is_trusted(f.stable->sha256(), "P", Date::ymd(2020, 7, 1),
                               Scope::kTls),
            TrustAnswer::kTrusted);
  // store_at mirrors the same boundary behaviour.
  EXPECT_FALSE(
      f.index.store_at("P", Date::ymd(2018, 12, 31), Scope::kTls).has_value());
  EXPECT_TRUE(
      f.index.store_at("P", Date::ymd(2020, 7, 1), Scope::kTls).has_value());

  const auto cov = f.index.coverage("P");
  ASSERT_TRUE(cov.has_value());
  EXPECT_EQ(cov->first, Date::ymd(2019, 1, 1));
  EXPECT_EQ(cov->last, Date::ymd(2020, 7, 1));
}

TEST(TrustIndex, UnknownCertificateInsideCoverageIsUntrusted) {
  Fixture f;
  EXPECT_EQ(f.index.is_trusted(f.outsider->sha256(), "P",
                               Date::ymd(2019, 3, 1), Scope::kTls),
            TrustAnswer::kUntrusted);
}

TEST(TrustIndex, UnknownProviderIsNotCovered) {
  Fixture f;
  EXPECT_FALSE(f.index.has_provider("Nope"));
  EXPECT_EQ(f.index.is_trusted(f.stable->sha256(), "Nope",
                               Date::ymd(2019, 3, 1), Scope::kTls),
            TrustAnswer::kNotCovered);
  EXPECT_FALSE(f.index.coverage("Nope").has_value());
  EXPECT_FALSE(
      f.index.store_at("Nope", Date::ymd(2019, 3, 1), Scope::kTls).has_value());
}

TEST(TrustIndex, StoreAtResolvesToLatestSnapshotOnOrBefore) {
  Fixture f;
  const auto view = f.index.store_at("P", Date::ymd(2019, 9, 9), Scope::kTls);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->provider, "P");
  EXPECT_EQ(view->snapshot_date, Date::ymd(2019, 7, 1));
  EXPECT_EQ(view->version, "2019-07-01");
  ASSERT_NE(view->roots, nullptr);
  EXPECT_EQ(view->roots->size(), 1u);
  const auto id = f.interner.id_of(f.stable->sha256());
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(view->roots->contains(*id));
}

TEST(TrustIndex, DiffReportsAddedAndRemoved) {
  Fixture f;
  const auto delta = f.index.diff("P", Date::ymd(2019, 8, 1),
                                  Date::ymd(2020, 2, 1), Scope::kTls);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->from.snapshot_date, Date::ymd(2019, 7, 1));
  EXPECT_EQ(delta->to.snapshot_date, Date::ymd(2020, 1, 1));
  EXPECT_EQ(delta->added.size(), 1u);
  EXPECT_EQ(delta->removed.size(), 0u);
  const auto id = f.interner.id_of(f.flapper->sha256());
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(delta->added.contains(*id));
  // Reversed direction swaps the delta.
  const auto back = f.index.diff("P", Date::ymd(2020, 2, 1),
                                 Date::ymd(2019, 8, 1), Scope::kTls);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->added.size(), 0u);
  EXPECT_EQ(back->removed.size(), 1u);
  // One uncovered endpoint poisons the diff.
  EXPECT_FALSE(f.index.diff("P", Date::ymd(2018, 1, 1), Date::ymd(2020, 2, 1),
                            Scope::kTls)
                   .has_value());
}

TEST(TrustIndex, ProvidersTrustingReportsNotCoveredSeparately) {
  Fixture f;
  // 2019-03-01: P covers (and trusts stable); Q's coverage is the single
  // snapshot date 2019-06-01, so Q lands in not_covered.
  std::vector<std::string> skipped;
  const auto trusting = f.index.providers_trusting(
      f.stable->sha256(), Date::ymd(2019, 3, 1), Scope::kTls, &skipped);
  EXPECT_EQ(trusting, std::vector<std::string>{"P"});
  EXPECT_EQ(skipped, std::vector<std::string>{"Q"});
}

TEST(TrustIndex, ScopesAreIndependent) {
  auto cert = make_cert(7);
  TrustEntry entry;
  entry.certificate = cert;
  entry.purposes[0].level = rs::store::TrustLevel::kMustVerify;
  entry.purposes[1].level = rs::store::TrustLevel::kTrustedDelegator;
  entry.purposes[2].level = rs::store::TrustLevel::kDistrusted;

  StoreDatabase db;
  ProviderHistory h("S");
  h.add(snap("S", Date::ymd(2020, 1, 1), {entry}));
  h.add(snap("S", Date::ymd(2020, 6, 1), {entry}));
  db.add(std::move(h));
  const auto interner = CertInterner::from_database(db);
  const auto index = TrustIndex::build(db, interner);

  const Date d = Date::ymd(2020, 3, 1);
  EXPECT_EQ(index.is_trusted(cert->sha256(), "S", d, Scope::kTls),
            TrustAnswer::kUntrusted);
  EXPECT_EQ(index.is_trusted(cert->sha256(), "S", d, Scope::kEmail),
            TrustAnswer::kTrusted);
  EXPECT_EQ(index.is_trusted(cert->sha256(), "S", d, Scope::kCode),
            TrustAnswer::kUntrusted);
  // kPresent sees the entry regardless of trust bits.
  EXPECT_EQ(index.is_trusted(cert->sha256(), "S", d, Scope::kPresent),
            TrustAnswer::kTrusted);
}

TEST(TrustIndex, EqualDatedSnapshotsCollapseToTheLast) {
  auto a = make_cert(11);
  auto b = make_cert(12);
  StoreDatabase db;
  ProviderHistory h("C");
  h.add(snap("C", Date::ymd(2020, 1, 1), {make_tls_anchor(a)}));
  h.add(snap("C", Date::ymd(2020, 1, 1), {make_tls_anchor(b)}));  // same day
  h.add(snap("C", Date::ymd(2020, 6, 1), {make_tls_anchor(b)}));
  db.add(std::move(h));
  const auto interner = CertInterner::from_database(db);
  const auto index = TrustIndex::build(db, interner);

  // ProviderHistory::at resolves the later same-day snapshot; the index
  // must agree, so `a` never appears trusted.
  EXPECT_EQ(index.is_trusted(a->sha256(), "C", Date::ymd(2020, 1, 1),
                             Scope::kTls),
            TrustAnswer::kUntrusted);
  EXPECT_EQ(index.is_trusted(b->sha256(), "C", Date::ymd(2020, 1, 1),
                             Scope::kTls),
            TrustAnswer::kTrusted);
  EXPECT_TRUE(index.lineage(a->sha256(), Scope::kTls).empty());
}

TEST(TrustIndex, OpenEndedIntervalForStillPresentRoot) {
  Fixture f;
  const auto spans = f.index.lineage(f.stable->sha256(), Scope::kTls);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].provider, "P");
  EXPECT_EQ(spans[0].interval.added, Date::ymd(2019, 1, 1));
  EXPECT_FALSE(spans[0].interval.removed.has_value());
  // Q's only root is likewise open-ended (single-snapshot history).
  const auto q_spans = f.index.lineage(f.outsider->sha256(), Scope::kTls);
  ASSERT_EQ(q_spans.size(), 1u);
  EXPECT_EQ(q_spans[0].provider, "Q");
  EXPECT_FALSE(q_spans[0].interval.removed.has_value());
}

TEST(TrustIndex, StatsAccessors) {
  Fixture f;
  EXPECT_EQ(f.index.provider_count(), 2u);
  EXPECT_EQ(f.index.providers(),
            (std::vector<std::string>{"P", "Q"}));
  EXPECT_EQ(f.index.resolution_point_count(), 5u);  // 4 dates + 1 date
}

}  // namespace
}  // namespace rs::query
