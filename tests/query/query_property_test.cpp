// Property test: TrustIndex must agree with a brute-force scan of the raw
// snapshot history for every (certificate, provider, date) probed, and the
// index built on a thread pool must be indistinguishable from the serial
// build (the engine responses are compared byte-for-byte).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/query/trust_index.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/user_agents.h"
#include "src/util/hex.h"

namespace rs::query {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::store::TrustPurpose;
using rs::util::Date;

/// The ground truth the index must reproduce: resolve the snapshot with
/// ProviderHistory::at and scan its entries directly.
TrustAnswer brute_force(const StoreDatabase& db,
                        const rs::crypto::Sha256Digest& fp,
                        const std::string& provider, Date date, Scope scope) {
  const ProviderHistory* history = db.find(provider);
  if (history == nullptr || history->empty()) return TrustAnswer::kNotCovered;
  if (date < history->first_date() || history->last_date() < date) {
    return TrustAnswer::kNotCovered;
  }
  const Snapshot* snapshot = history->at(date);
  if (snapshot == nullptr) return TrustAnswer::kNotCovered;
  const rs::store::TrustEntry* entry = snapshot->find(fp);
  if (entry == nullptr) return TrustAnswer::kUntrusted;
  bool yes = false;
  switch (scope) {
    case Scope::kTls:
      yes = entry->trust_for(TrustPurpose::kServerAuth).is_anchor();
      break;
    case Scope::kEmail:
      yes = entry->trust_for(TrustPurpose::kEmailProtection).is_anchor();
      break;
    case Scope::kCode:
      yes = entry->trust_for(TrustPurpose::kCodeSigning).is_anchor();
      break;
    case Scope::kPresent:
      yes = true;
      break;
  }
  return yes ? TrustAnswer::kTrusted : TrustAnswer::kUntrusted;
}

/// Every date where any provider's answer can change, plus both sides of
/// each boundary: all snapshot dates, the days around them, and the days
/// just outside each coverage window.
std::vector<Date> probe_dates(const ProviderHistory& history) {
  std::vector<Date> dates;
  for (const auto& s : history.snapshots()) {
    dates.push_back(s.date + (-1));
    dates.push_back(s.date);
    dates.push_back(s.date + 1);
  }
  dates.push_back(history.first_date() + (-30));
  dates.push_back(history.last_date() + 30);
  return dates;
}

TEST(QueryProperty, IndexMatchesBruteForceEverywhere) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& db = scenario.database();
  const auto interner = rs::store::CertInterner::from_database(db);
  const TrustIndex index = TrustIndex::build(db, interner);

  const Scope scopes[] = {Scope::kTls, Scope::kEmail, Scope::kCode,
                          Scope::kPresent};
  std::size_t checked = 0;
  for (const auto& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    ASSERT_NE(history, nullptr);
    for (const Date date : probe_dates(*history)) {
      for (const Scope scope : scopes) {
        for (std::uint32_t id = 0; id < interner.size(); ++id) {
          const auto& fp = interner.digest_of(id);
          const TrustAnswer expect = brute_force(db, fp, provider, date, scope);
          const TrustAnswer got = index.is_trusted(fp, provider, date, scope);
          ASSERT_EQ(got, expect)
              << provider << " " << date.to_string() << " scope="
              << to_string(scope) << " fp=" << rs::util::hex_encode(fp);
          ++checked;
        }
      }
    }
  }
  // The sweep must actually have covered the ecosystem.
  EXPECT_GT(checked, 100000u);
}

TEST(QueryProperty, StoreAtMatchesSnapshotScan) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& db = scenario.database();
  const auto interner = rs::store::CertInterner::from_database(db);
  const TrustIndex index = TrustIndex::build(db, interner);

  for (const auto& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    for (const Date date : probe_dates(*history)) {
      const auto view = index.store_at(provider, date, Scope::kTls);
      const bool covered =
          history->first_date() <= date && date <= history->last_date();
      ASSERT_EQ(view.has_value(), covered)
          << provider << " " << date.to_string();
      if (!view) continue;
      const Snapshot* snapshot = history->at(date);
      ASSERT_NE(snapshot, nullptr);
      EXPECT_EQ(view->snapshot_date, snapshot->date);
      const auto expected = snapshot->tls_anchors();
      ASSERT_EQ(view->roots->size(), expected.size())
          << provider << " " << date.to_string();
      for (const auto& fp : expected.items()) {
        const auto id = interner.id_of(fp);
        ASSERT_TRUE(id.has_value());
        EXPECT_TRUE(view->roots->contains(*id));
      }
    }
  }
}

// The index build fans out per provider on the pool; the answers must be
// identical for any worker count.  Compared at the engine layer so the
// guarantee covers the full response bytes, not just the index internals.
TEST(QueryProperty, ThreadedBuildIsByteIdenticalToSerial) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& db = scenario.database();
  const auto agents = rs::synth::user_agent_population();

  rs::exec::ThreadPool serial_pool(0);
  rs::exec::ThreadPool threaded_pool(3);
  const QueryEngine serial(db, agents, &serial_pool);
  const QueryEngine threaded(db, agents, &threaded_pool);

  std::vector<std::string> lines = {R"({"op":"stats"})"};
  for (const auto& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    const std::string mid = history->at(history->last_date())
                                ->date.to_string();
    lines.push_back(R"({"op":"store_at","provider":")" + provider +
                    R"(","date":")" + mid + R"("})");
    lines.push_back(R"({"op":"diff","provider":")" + provider +
                    R"(","date_a":")" + history->first_date().to_string() +
                    R"(","date_b":")" + history->last_date().to_string() +
                    R"(","scope":"present"})");
  }
  const auto roots = db.all_tls_roots_ever();
  std::size_t i = 0;
  for (const auto& fp : roots.items()) {
    if (++i % 10 != 0) continue;  // every 10th root keeps the sweep brisk
    const std::string hex = rs::util::hex_encode(fp);
    lines.push_back(R"({"op":"lineage","fp":")" + hex + R"("})");
    lines.push_back(R"({"op":"providers_trusting","fp":")" + hex +
                    R"(","date":"2020-06-01"})");
  }

  for (const auto& line : lines) {
    EXPECT_EQ(serial.handle_json(line), threaded.handle_json(line)) << line;
  }
}

}  // namespace
}  // namespace rs::query
