// Fault-injection battery for the persisted index loader (ctest label
// `persist_fault`): every way an RSIX file can lie must produce a typed
// LoadError — never a crash, never a silently wrong index.  The corpus is
// a real serialized index; corruptions are injected byte-surgically:
//   * truncation at every section boundary, and one byte either side,
//   * single-bit flips across the header, section table, and payloads,
//   * version and flag skew,
//   * count fields rewritten to hostile values (via re-framed sections,
//     so checksums are valid and the *semantic* caps must catch them),
//   * checksummed-but-inconsistent files that only deep verify() rejects.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/query/index_io.h"
#include "src/query/trust_index.h"
#include "src/store/interner.h"
#include "src/store/persist.h"
#include "src/synth/simulator.h"

namespace rs::query {
namespace {

namespace persist = rs::store::persist;
using persist::LoadError;

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// One compact but fully featured index image: multiple providers (with
/// derivatives), multi-year histories, all four sections populated.
const std::string& corpus_image() {
  static const std::string image = [] {
    rs::synth::SimulatorConfig cfg;
    cfg.seed = 11;
    cfg.ca_count = 40;
    cfg.program_count = 2;
    cfg.derivative_count = 1;
    cfg.snapshot_interval_days = 180;
    const auto eco = rs::synth::simulate_ecosystem(cfg);
    const TrustIndex index = TrustIndex::build(
        eco.database, rs::store::CertInterner::from_database(eco.database));
    return TrustIndexIO::serialize(index);
  }();
  return image;
}

/// Byte offsets of every structural boundary in the image: header end,
/// section-table end, and each section's payload end.
std::vector<std::size_t> section_boundaries(const std::string& image) {
  auto parsed = persist::FileView::parse(as_span(image));
  EXPECT_TRUE(parsed.ok());
  std::vector<std::size_t> cuts;
  cuts.push_back(persist::kHeaderBytes);
  std::size_t offset = persist::kHeaderBytes +
                       parsed.value().sections().size() *
                           persist::kSectionEntryBytes;
  cuts.push_back(offset);  // end of the section table
  for (const auto& s : parsed.value().sections()) {
    offset += s.payload.size();
    cuts.push_back(offset);  // end of this section's payload
  }
  return cuts;
}

/// Reframes the corpus with section `id`'s payload replaced, so all
/// checksums are freshly valid and only semantic validation can object.
std::string with_section_payload(std::uint32_t id, std::string payload) {
  auto parsed = persist::FileView::parse(as_span(corpus_image()));
  EXPECT_TRUE(parsed.ok());
  persist::FileBuilder b;
  for (const auto& s : parsed.value().sections()) {
    if (s.id == id) {
      b.add_section(s.id, payload);
    } else {
      b.add_section(s.id,
                    std::string(s.payload.begin(), s.payload.end()));
    }
  }
  return b.finish();
}

/// Every corruption must fail closed: typed error, no value, no crash.
void expect_rejected(const std::string& image, const char* what) {
  auto loaded = TrustIndexIO::deserialize(as_span(image));
  EXPECT_FALSE(loaded.ok()) << what << ": corrupt image loaded";
  if (!loaded.ok()) {
    // The failure is typed and renders a non-empty diagnostic.
    EXPECT_FALSE(loaded.message().empty()) << what;
  }
}

TEST(PersistFault, CorpusIsValid) {
  auto loaded = TrustIndexIO::deserialize(as_span(corpus_image()));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_GT(loaded.value().provider_count(), 2u);
  auto verified = TrustIndexIO::verify(as_span(corpus_image()));
  ASSERT_TRUE(verified.ok()) << verified.message();
}

TEST(PersistFault, TruncationSweepAtEverySectionBoundary) {
  const std::string& image = corpus_image();
  for (const std::size_t cut : section_boundaries(image)) {
    for (const std::size_t n :
         {cut - 1, cut, cut == image.size() ? cut : cut + 1}) {
      if (n >= image.size()) continue;
      expect_rejected(image.substr(0, n),
                      ("truncated to " + std::to_string(n)).c_str());
    }
  }
  // And a coarse sweep across the whole image.
  for (std::size_t n = 0; n < image.size(); n += 97) {
    expect_rejected(image.substr(0, n),
                    ("truncated to " + std::to_string(n)).c_str());
  }
}

TEST(PersistFault, SingleBitFlipsInHeaderAndSectionTable) {
  const std::string& image = corpus_image();
  const std::size_t protected_bytes =
      persist::kHeaderBytes + 4 * persist::kSectionEntryBytes;
  ASSERT_LE(protected_bytes, image.size());
  for (std::size_t byte = 0; byte < protected_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = image;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      // The magic, version, flags, counts, offsets, and both checksum
      // layers each cover part of this range; every flip must land in
      // one of those nets.
      expect_rejected(flipped, ("bit " + std::to_string(bit) + " of byte " +
                                std::to_string(byte))
                                   .c_str());
    }
  }
}

TEST(PersistFault, SingleBitFlipsInPayloadsTripSectionChecksums) {
  const std::string& image = corpus_image();
  const std::size_t payload_start =
      persist::kHeaderBytes + 4 * persist::kSectionEntryBytes;
  // Stride across the payload region; every flip must be caught by the
  // section checksum before any payload byte is interpreted.
  for (std::size_t byte = payload_start; byte < image.size(); byte += 211) {
    std::string flipped = image;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x40);
    auto loaded = TrustIndexIO::deserialize(as_span(flipped));
    ASSERT_FALSE(loaded.ok()) << "payload flip at byte " << byte;
    EXPECT_EQ(loaded.code(), LoadError::kChecksum)
        << "payload flip at byte " << byte;
  }
}

TEST(PersistFault, VersionAndFlagSkew) {
  {
    std::string skew = corpus_image();
    skew[8] = 2;  // future format version
    auto loaded = TrustIndexIO::deserialize(as_span(skew));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadVersion);
  }
  {
    std::string skew = corpus_image();
    skew[8] = 0;  // pre-release version
    auto loaded = TrustIndexIO::deserialize(as_span(skew));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadVersion);
  }
  {
    std::string skew = corpus_image();
    skew[12] = 0x04;  // unknown feature flag
    auto loaded = TrustIndexIO::deserialize(as_span(skew));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadFlags);
  }
}

TEST(PersistFault, NotAnIndexAtAll) {
  expect_rejected("", "empty file");
  expect_rejected(std::string(3, '\0'), "three zero bytes");
  expect_rejected(std::string(4096, 'A'), "text file");
  // Text-mode mangling: the \r\n sentinel in the magic catches a file
  // that went through newline translation.
  std::string mangled = corpus_image();
  mangled.erase(6, 1);  // strip the \r
  expect_rejected(mangled, "CRLF-stripped image");
}

TEST(PersistFault, OversizedCountsFailTheCapsNotTheAllocator) {
  {  // Interner digest count beyond kMaxCerts.
    persist::ByteWriter w;
    w.u64(persist::kMaxCerts + 1);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionInterner, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kCountOverflow);
  }
  {  // Digest count promising more bytes than the section holds.
    persist::ByteWriter w;
    w.u64(1000);
    w.u64(0);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionInterner, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kCountOverflow);
  }
  {  // Provider count beyond kMaxProviders.
    persist::ByteWriter w;
    w.u64(persist::kMaxProviders + 1);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kCountOverflow);
  }
  {  // A provider name longer than kMaxNameBytes.
    persist::ByteWriter w;
    w.u64(1);
    w.str(std::string(persist::kMaxNameBytes + 1, 'p'));
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    EXPECT_FALSE(loaded.ok());
  }
  {  // Interval run count promising far more records than present.
    persist::ByteWriter w;
    w.u64(std::uint64_t{1} << 40);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionIntervals, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kCountOverflow);
  }
}

TEST(PersistFault, SemanticInvariantViolations) {
  {  // Provider with zero snapshots.  (The name is long enough that the
     // per-provider byte floor passes and the semantic check is what fires.)
    persist::ByteWriter w;
    w.u64(1);
    w.str("SnapshotlessProvider");
    w.u64(0);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
  {  // Empty provider name.
    persist::ByteWriter w;
    w.u64(1);
    w.str("");
    w.u64(1);
    w.i64(0);
    w.str("v1");
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
  {  // Provider names out of order.
    persist::ByteWriter w;
    w.u64(2);
    w.str("Zeta");
    w.u64(1);
    w.i64(0);
    w.str("v");
    w.str("Alpha");
    w.u64(1);
    w.i64(0);
    w.str("v");
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
  {  // Snapshot dates not strictly ascending.
    persist::ByteWriter w;
    w.u64(1);
    w.str("P");
    w.u64(2);
    w.i64(100);
    w.i64(100);
    w.str("a");
    w.str("b");
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionProviders, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
}

TEST(PersistFault, TrailingAndMissingBytes) {
  {  // Junk appended to a section payload (reframed, checksums valid).
    auto parsed = persist::FileView::parse(as_span(corpus_image()));
    ASSERT_TRUE(parsed.ok());
    const auto s1 = *parsed.value().section(kSectionInterner);
    std::string padded(s1.begin(), s1.end());
    padded += '\0';
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionInterner, padded)));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kTrailingBytes);
  }
  {  // Junk appended to the file itself.
    expect_rejected(corpus_image() + "tail", "appended bytes");
  }
  {  // A section missing entirely.
    auto parsed = persist::FileView::parse(as_span(corpus_image()));
    ASSERT_TRUE(parsed.ok());
    persist::FileBuilder b;
    for (const auto& s : parsed.value().sections()) {
      if (s.id == kSectionIntervals) continue;
      b.add_section(s.id, std::string(s.payload.begin(), s.payload.end()));
    }
    auto loaded = TrustIndexIO::deserialize(as_span(b.finish()));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadSectionTable);
  }
}

// A file can be perfectly checksummed and structurally valid while its
// redundant structures disagree — a lying writer.  The loader accepts it
// (each structure is self-consistent); deep verify() must not.
TEST(PersistFault, DeepVerifyCatchesConsistentlyLyingWriter) {
  auto parsed = persist::FileView::parse(as_span(corpus_image()));
  ASSERT_TRUE(parsed.ok());
  const auto s4 = *parsed.value().section(kSectionIntervals);
  std::string payload(s4.begin(), s4.end());
  // Section 4 layout: per (provider, scope), u64 run count then 24-byte
  // records {u32 id, u32 pad, i64 added, i64 removed}.  Find the first
  // non-empty run group and shift its first record's `added` one day
  // earlier — still sorted, still loadable, but now disagreeing with the
  // membership sets.
  std::size_t pos = 0;
  while (pos + 8 <= payload.size()) {
    std::uint64_t runs = 0;
    for (int i = 0; i < 8; ++i) {
      runs |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(payload[pos + i]))
              << (8 * i);
    }
    pos += 8;
    if (runs > 0) break;
  }
  ASSERT_LT(pos + 24, payload.size()) << "corpus has no interval records";
  const std::size_t added_at = pos + 8;
  std::int64_t added = 0;
  for (int i = 0; i < 8; ++i) {
    added |= static_cast<std::int64_t>(
                 static_cast<std::uint8_t>(payload[added_at + i]))
             << (8 * i);
  }
  added -= 1;
  for (int i = 0; i < 8; ++i) {
    payload[added_at + i] = static_cast<char>((added >> (8 * i)) & 0xFF);
  }
  const std::string lying = with_section_payload(kSectionIntervals, payload);

  // Structurally fine: the plain loader takes it...
  auto loaded = TrustIndexIO::deserialize(as_span(lying));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  // ...but the deep check recomputes intervals from the sets and objects.
  auto verified = TrustIndexIO::verify(as_span(lying));
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.code(), LoadError::kBadValue);
}

TEST(PersistFault, IntervalRecordInvariants) {
  {  // removed <= added.
    persist::ByteWriter w;
    w.u64(1);
    w.u32(0);
    w.u32(0);
    w.i64(100);
    w.i64(100);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionIntervals, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
  {  // Certificate id beyond the universe.
    persist::ByteWriter w;
    w.u64(1);
    w.u32(0xFFFFFFFFu);
    w.u32(0);
    w.i64(100);
    w.i64(200);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionIntervals, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
  {  // Reserved pad not zero.
    persist::ByteWriter w;
    w.u64(1);
    w.u32(0);
    w.u32(1);
    w.i64(100);
    w.i64(200);
    auto loaded = TrustIndexIO::deserialize(
        as_span(with_section_payload(kSectionIntervals, std::move(w).take())));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), LoadError::kBadValue);
  }
}

TEST(PersistFault, LoadFileOnMissingOrDirectoryPath) {
  auto missing = TrustIndexIO::load_file("/no-such-rs-index.rsix");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), LoadError::kIo);
  auto dir = TrustIndexIO::load_file("/tmp");
  ASSERT_FALSE(dir.ok());
  EXPECT_EQ(dir.code(), LoadError::kIo);
}

}  // namespace
}  // namespace rs::query
