// Incremental-append equivalence: absorbing snapshots one at a time into a
// persisted index must be indistinguishable — byte-for-byte under the
// canonical serializer, and response-for-response at the engine layer —
// from throwing the index away and rebuilding over the full history, with
// any build worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/query/index_io.h"
#include "src/query/trust_index.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/simulator.h"
#include "src/synth/user_agents.h"

namespace rs::query {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::util::Date;

TrustIndex build_index(const StoreDatabase& db,
                       rs::exec::ThreadPool* pool = nullptr) {
  return TrustIndex::build(db, rs::store::CertInterner::from_database(db),
                           pool);
}

/// The history restricted to snapshots dated on or before `cutoff`.
StoreDatabase prefix_db(const StoreDatabase& full, Date cutoff) {
  StoreDatabase out;
  for (const auto& [name, history] : full.histories()) {
    ProviderHistory h(name);
    for (const auto& s : history.snapshots()) {
      if (s.date <= cutoff) h.add(s);
    }
    if (!h.empty()) out.add(std::move(h));
  }
  return out;
}

StoreDatabase simulated_db(std::uint64_t seed) {
  rs::synth::SimulatorConfig cfg;
  cfg.seed = seed;
  cfg.ca_count = 50;
  cfg.program_count = 3;
  cfg.derivative_count = 2;
  cfg.snapshot_interval_days = 120;
  return rs::synth::simulate_ecosystem(cfg).database;
}

TEST(IndexAppend, IncrementalEqualsFullRebuildOnPaperScenario) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& full = scenario.database();
  const StoreDatabase base = prefix_db(full, Date::ymd(2015, 1, 1));
  ASSERT_LT(base.total_snapshots(), full.total_snapshots());

  TrustIndex index = build_index(base);
  auto appended = TrustIndexIO::append_from_database(index, full);
  ASSERT_TRUE(appended.ok()) << appended.error();
  EXPECT_EQ(appended.value(),
            full.total_snapshots() - base.total_snapshots());

  // Byte-for-byte against a from-scratch rebuild, serial and pooled.
  const std::string incremental = TrustIndexIO::serialize(index);
  EXPECT_EQ(incremental, TrustIndexIO::serialize(build_index(full)));
  rs::exec::ThreadPool pool(3);
  EXPECT_EQ(incremental, TrustIndexIO::serialize(build_index(full, &pool)));

  // And at the engine layer: the appended index must answer exactly like
  // an engine compiled from the full database.
  const auto agents = rs::synth::user_agent_population();
  const QueryEngine rebuilt(full, agents);
  const QueryEngine grown(std::move(index), agents);
  const std::vector<std::string> lines = {
      R"({"op":"stats"})",
      R"({"op":"store_at","provider":"NSS","date":"2021-05-15"})",
      R"({"op":"diff","provider":"Debian","date_a":"2010-01-01",)"
      R"("date_b":"2021-01-01","scope":"present"})",
  };
  for (const auto& line : lines) {
    EXPECT_EQ(grown.handle_json(line), rebuilt.handle_json(line)) << line;
  }
}

// Every intermediate state must match the corresponding prefix rebuild —
// not just the final one — so the append path cannot drift and self-correct.
TEST(IndexAppend, SnapshotAtATimeMatchesEveryPrefixRebuild) {
  const StoreDatabase full = simulated_db(5);
  // Global date-ordered list of (provider, snapshot) pairs beyond the base.
  const Date cutoff = Date::ymd(2010, 1, 1);
  std::vector<const Snapshot*> pending;
  for (const auto& [name, history] : full.histories()) {
    for (const auto& s : history.snapshots()) {
      if (cutoff < s.date) pending.push_back(&s);
    }
  }
  // stable_sort: equal-dated snapshots of one provider must keep their
  // history insertion order, or replace-last semantics would diverge.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Snapshot* a, const Snapshot* b) {
                     if (a->date != b->date) return a->date < b->date;
                     return a->provider < b->provider;
                   });
  ASSERT_GT(pending.size(), 10u);

  TrustIndex index = build_index(prefix_db(full, cutoff));
  Date reached = cutoff;
  std::size_t step = 0;
  for (const Snapshot* s : pending) {
    auto ok = TrustIndexIO::append_snapshot(index, *s);
    ASSERT_TRUE(ok.ok()) << s->provider << " " << s->date.to_string() << ": "
                         << ok.error();
    reached = s->date;
    // Comparing every step is O(n^2); every 5th keeps the test brisk while
    // still pinning intermediate states.
    if (++step % 5 != 0) continue;
    // The prefix rebuild includes all same-dated snapshots already
    // appended; pending is date-sorted so `reached` captures exactly the
    // absorbed set only when the next pending date is strictly later.
    const bool boundary =
        s == pending.back() || reached < pending[step]->date;
    if (!boundary) continue;
    EXPECT_EQ(TrustIndexIO::serialize(index),
              TrustIndexIO::serialize(build_index(prefix_db(full, reached))))
        << "diverged after " << s->provider << " " << reached.to_string();
  }
  EXPECT_EQ(TrustIndexIO::serialize(index),
            TrustIndexIO::serialize(build_index(full)));
}

TEST(IndexAppend, AbsorbsNewProvidersAndNewCertificates) {
  const StoreDatabase full = simulated_db(9);
  // Base excludes one provider entirely: appending must create its lane
  // and grow the interner with certificates the base never saw.
  const std::string dropped = full.providers().front();
  StoreDatabase base;
  for (const auto& [name, history] : full.histories()) {
    if (name != dropped) base.add(history);
  }
  ASSERT_LT(base.provider_count(), full.provider_count());

  TrustIndex index = build_index(base);
  const std::size_t before = index.interner().size();
  auto appended = TrustIndexIO::append_from_database(index, full);
  ASSERT_TRUE(appended.ok()) << appended.error();
  EXPECT_TRUE(index.has_provider(dropped));
  EXPECT_GE(index.interner().size(), before);
  EXPECT_EQ(TrustIndexIO::serialize(index),
            TrustIndexIO::serialize(build_index(full)));
}

TEST(IndexAppend, EqualDateSnapshotReplacesTheNewest) {
  const StoreDatabase full = simulated_db(13);
  const std::string provider = full.providers().back();
  const ProviderHistory* history = full.find(provider);
  ASSERT_NE(history, nullptr);
  ASSERT_GT(history->back().entries.size(), 1u);

  // A revised snapshot on the same date with one root dropped — the
  // "corrected re-release" case.  ProviderHistory::add keeps equal dates
  // in insertion order, and the full build collapses them to the later
  // one, so the rebuild is the ground truth for replace semantics.
  Snapshot revised = history->back();
  revised.entries.pop_back();
  revised.version += "-r2";

  StoreDatabase with_revision;
  for (const auto& [name, h] : full.histories()) {
    ProviderHistory copy = h;
    if (name == provider) copy.add(revised);
    with_revision.add(std::move(copy));
  }

  TrustIndex index = build_index(full);
  auto ok = TrustIndexIO::append_snapshot(index, revised);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_EQ(TrustIndexIO::serialize(index),
            TrustIndexIO::serialize(build_index(with_revision)));

  // Resolution-point count is unchanged: the date was already occupied.
  EXPECT_EQ(index.resolution_point_count(),
            build_index(full).resolution_point_count());
}

TEST(IndexAppend, RejectsOutOfOrderSnapshots) {
  const StoreDatabase full = simulated_db(17);
  const std::string provider = full.providers().front();
  const ProviderHistory* history = full.find(provider);
  ASSERT_GE(history->size(), 2u);

  TrustIndex index = build_index(full);
  const std::string before = TrustIndexIO::serialize(index);
  // Re-appending an older snapshot must be refused, and — since all of
  // its certificates are already interned — leave the index untouched.
  auto ok = TrustIndexIO::append_snapshot(index, history->front());
  ASSERT_FALSE(ok.ok());
  EXPECT_NE(ok.error().find("chronological"), std::string::npos)
      << ok.error();
  EXPECT_EQ(TrustIndexIO::serialize(index), before);
}

TEST(IndexAppend, AppendFromDatabaseIsIdempotent) {
  const StoreDatabase full = simulated_db(23);
  TrustIndex index = build_index(full);
  const std::string before = TrustIndexIO::serialize(index);
  auto appended = TrustIndexIO::append_from_database(index, full);
  ASSERT_TRUE(appended.ok()) << appended.error();
  EXPECT_EQ(appended.value(), 0u);
  EXPECT_EQ(TrustIndexIO::serialize(index), before);
}

// The full battery once more through the on-disk file: build base, write,
// load, append, write, load — the final file equals the full-rebuild file.
TEST(IndexAppend, FileLevelAppendRoundTrip) {
  const StoreDatabase full = simulated_db(29);
  const StoreDatabase base = prefix_db(full, Date::ymd(2012, 1, 1));

  const auto dir =
      std::filesystem::temp_directory_path() / "rs_index_append_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "grow.rsix").string();

  ASSERT_TRUE(TrustIndexIO::write_file(build_index(base), path).ok());
  auto loaded = TrustIndexIO::load_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  TrustIndex index = std::move(loaded).take();
  auto appended = TrustIndexIO::append_from_database(index, full);
  ASSERT_TRUE(appended.ok()) << appended.error();
  ASSERT_TRUE(TrustIndexIO::write_file(index, path).ok());

  auto reread = TrustIndexIO::load_file(path);
  ASSERT_TRUE(reread.ok()) << reread.message();
  EXPECT_EQ(TrustIndexIO::serialize(reread.value()),
            TrustIndexIO::serialize(build_index(full)));
  auto stats = TrustIndexIO::verify_file(path);
  EXPECT_TRUE(stats.ok()) << stats.message();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rs::query
