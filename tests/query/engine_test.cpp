#include "src/query/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/store/database.h"
#include "src/util/hex.h"
#include "src/x509/builder.h"

namespace rs::query {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::synth::UserAgentGroup;
using rs::util::Date;

std::shared_ptr<const rs::x509::Certificate> make_cert(std::uint64_t seed) {
  rs::x509::Name n;
  n.add_common_name("Engine Root " + std::to_string(seed));
  return std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder().subject(n).key_seed(seed).build());
}

Snapshot snap(std::string provider, Date date,
              std::vector<rs::store::TrustEntry> entries) {
  Snapshot s;
  s.provider = std::move(provider);
  s.date = date;
  s.version = "v-" + date.to_string();
  s.entries = std::move(entries);
  return s;
}

UserAgentGroup agent_row(std::string os, std::string agent, bool included,
                         std::string provider) {
  UserAgentGroup g;
  g.os = std::move(os);
  g.agent = std::move(agent);
  g.versions = 1;
  g.included = included;
  g.provider = std::move(provider);
  return g;
}

struct Fixture {
  std::shared_ptr<const rs::x509::Certificate> root = make_cert(1);
  std::string fp_hex;
  QueryEngine engine;

  static StoreDatabase make_db(
      const std::shared_ptr<const rs::x509::Certificate>& root) {
    StoreDatabase db;
    ProviderHistory h("P");
    h.add(snap("P", Date::ymd(2019, 1, 1), {rs::store::make_tls_anchor(root)}));
    h.add(snap("P", Date::ymd(2020, 1, 1), {rs::store::make_tls_anchor(root)}));
    db.add(std::move(h));
    return db;
  }

  static std::vector<UserAgentGroup> agents() {
    return {
        agent_row("Linux", "Curl", true, "P"),
        agent_row("Android", "Chrome Mobile", true, "P"),
        agent_row("Windows", "Chrome Mobile", true, "Q"),
        agent_row("Haiku", "Netscape", false, ""),
    };
  }

  Fixture()
      : fp_hex(rs::util::hex_encode(root->sha256())),
        engine(make_db(root), agents()) {}
};

TEST(QueryEngine, IsTrustedOkShape) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"is_trusted","provider":"P","fp":")" + f.fp_hex +
      R"(","date":"2019-06-01"})");
  EXPECT_EQ(response, R"({"op":"is_trusted","status":"ok","fp":")" + f.fp_hex +
                          R"(","date":"2019-06-01","scope":"tls",)"
                          R"("provider":"P","trusted":true})");
  EXPECT_FALSE(QueryEngine::is_error_response(response));
}

TEST(QueryEngine, NotCoveredIsTypedWithCoverageWindow) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"is_trusted","provider":"P","fp":")" + f.fp_hex +
      R"(","date":"2030-01-01"})");
  EXPECT_EQ(response,
            R"({"op":"is_trusted","status":"not_covered","fp":")" + f.fp_hex +
                R"(","date":"2030-01-01","scope":"tls","provider":"P",)"
                R"("coverage_begin":"2019-01-01","coverage_end":"2020-01-01"})");
  // Typed outcome, not an error: the request was well-formed.
  EXPECT_FALSE(QueryEngine::is_error_response(response));
}

TEST(QueryEngine, UnknownProviderIsError) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"store_at","provider":"Nope","date":"2019-06-01"})");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"unknown_provider\""), std::string::npos);
}

TEST(QueryEngine, MalformedLineIsBadRequest) {
  Fixture f;
  const std::string response = f.engine.handle_json("not json at all");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"bad_request\""), std::string::npos);
}

TEST(QueryEngine, StoreAtListsSortedRoots) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"store_at","provider":"P","date":"2019-06-01"})");
  EXPECT_EQ(response,
            R"({"op":"store_at","status":"ok","date":"2019-06-01",)"
                R"("scope":"tls","provider":"P","snapshot_date":"2019-01-01",)"
                R"("version":"v-2019-01-01","count":1,"roots":[")" +
                f.fp_hex + R"("]})");
}

TEST(QueryEngine, AgentStoreResolvesUnambiguousAgent) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"agent_store","user_agent":"Curl","date":"2019-06-01"})");
  EXPECT_FALSE(QueryEngine::is_error_response(response)) << response;
  EXPECT_NE(response.find("\"user_agent\":\"Curl\""), std::string::npos);
  EXPECT_NE(response.find("\"provider\":\"P\""), std::string::npos);
}

TEST(QueryEngine, AgentStoreAmbiguityNeedsOs) {
  Fixture f;
  const std::string ambiguous = f.engine.handle_json(
      R"({"op":"agent_store","user_agent":"Chrome Mobile","date":"2019-06-01"})");
  EXPECT_TRUE(QueryEngine::is_error_response(ambiguous));
  EXPECT_NE(ambiguous.find("\"code\":\"ambiguous_agent\""), std::string::npos);
  // Narrowing by OS resolves it.
  const std::string narrowed = f.engine.handle_json(
      R"({"op":"agent_store","user_agent":"Chrome Mobile","os":"Android",)"
      R"("date":"2019-06-01"})");
  EXPECT_FALSE(QueryEngine::is_error_response(narrowed)) << narrowed;
  EXPECT_NE(narrowed.find("\"os\":\"Android\""), std::string::npos);
}

TEST(QueryEngine, AgentStoreErrors) {
  Fixture f;
  const std::string unknown = f.engine.handle_json(
      R"({"op":"agent_store","user_agent":"Gopher","date":"2019-06-01"})");
  EXPECT_NE(unknown.find("\"code\":\"unknown_agent\""), std::string::npos);
  const std::string excluded = f.engine.handle_json(
      R"({"op":"agent_store","user_agent":"Netscape","date":"2019-06-01"})");
  EXPECT_NE(excluded.find("\"code\":\"agent_not_covered\""),
            std::string::npos);
}

TEST(QueryEngine, ServerStatsIsNotServedByTheEngine) {
  Fixture f;
  const std::string response = f.engine.handle_json(R"({"op":"server_stats"})");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"not_serving\""), std::string::npos);
}

TEST(QueryEngine, StatsSummarizesTheDataset) {
  Fixture f;
  const std::string response = f.engine.handle_json(R"({"op":"stats"})");
  EXPECT_EQ(response,
            R"({"op":"stats","status":"ok","providers":1,)"
            R"("resolution_points":2,"certificates":1,)"
            R"("coverage":{"P":["2019-01-01","2020-01-01"]}})");
}

TEST(QueryEngine, LineageShape) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"lineage","fp":")" + f.fp_hex + R"("})");
  EXPECT_EQ(response, R"({"op":"lineage","status":"ok","fp":")" + f.fp_hex +
                          R"(","scope":"tls","spans":[{"provider":"P",)"
                          R"("added":"2019-01-01","removed":null}]})");
}

TEST(QueryEngine, HandleAndHandleJsonAgree) {
  Fixture f;
  const std::string line =
      R"({"op":"providers_trusting","fp":")" + f.fp_hex +
      R"(","date":"2019-06-01"})";
  auto parsed = parse_request(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(f.engine.handle(parsed.value()), f.engine.handle_json(line));
}

TEST(QueryEngine, ReloadIndexIsNotServedByTheEngine) {
  Fixture f;
  const std::string response = f.engine.handle_json(R"({"op":"reload_index"})");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"not_serving\""), std::string::npos);
}

// --- Landscape ops --------------------------------------------------------

/// Two providers with a one-root overlap so every cardinality below is
/// hand-checkable: P carries {A} from 2019-01-01, Q carries {A, B} from
/// 2019-06-01 (a single snapshot).
StoreDatabase make_landscape_db() {
  auto a = make_cert(1);
  auto b = make_cert(2);
  StoreDatabase db;
  ProviderHistory p("P");
  p.add(snap("P", Date::ymd(2019, 1, 1), {rs::store::make_tls_anchor(a)}));
  p.add(snap("P", Date::ymd(2020, 1, 1), {rs::store::make_tls_anchor(a)}));
  db.add(std::move(p));
  ProviderHistory q("Q");
  q.add(snap("Q", Date::ymd(2019, 6, 1),
             {rs::store::make_tls_anchor(a), rs::store::make_tls_anchor(b)}));
  db.add(std::move(q));
  return db;
}

TEST(QueryEngine, AgreementAtOkShape) {
  QueryEngine engine(make_landscape_db(), {});
  EXPECT_EQ(
      engine.handle_json(R"({"op":"agreement_at","date":"2019-06-01"})"),
      R"({"op":"agreement_at","status":"ok","date":"2019-06-01",)"
      R"("scope":"tls","providers":["P","Q"],"sizes":[1,2],)"
      R"("exclusive":[0,1],"union_size":2,"intersection_size":1,)"
      R"("global_agreement":"0.500000","pairs":[{"a":"P","b":"Q",)"
      R"("intersection":1,"union":2,"agreement":"0.500000"}],)"
      R"("not_covered":[]})");
}

TEST(QueryEngine, AgreementAtWithNoCoveredProvidersIsStillOk) {
  QueryEngine engine(make_landscape_db(), {});
  // Before any coverage: a total answer with empty arrays, and the
  // empty-universe agreement convention (two empty worlds agree).
  EXPECT_EQ(
      engine.handle_json(R"({"op":"agreement_at","date":"2018-01-01"})"),
      R"({"op":"agreement_at","status":"ok","date":"2018-01-01",)"
      R"("scope":"tls","providers":[],"sizes":[],"exclusive":[],)"
      R"("union_size":0,"intersection_size":0,)"
      R"("global_agreement":"1.000000","pairs":[],)"
      R"("not_covered":["P","Q"]})");
}

TEST(QueryEngine, CtCoverageOkShape) {
  QueryEngine engine(make_landscape_db(), {});
  // Q as "the log": covers P's one root; B is log-exclusive; A reached Q
  // 151 days after P (2019-01-01 -> 2019-06-01).  The query lands on Q's
  // sole snapshot date — any later and Q drops out of coverage.
  EXPECT_EQ(
      engine.handle_json(
          R"({"op":"ct_coverage","provider":"Q","date":"2019-06-01"})"),
      R"({"op":"ct_coverage","status":"ok","date":"2019-06-01",)"
      R"("scope":"tls","provider":"Q","snapshot_date":"2019-06-01",)"
      R"("log_size":2,"log_exclusive":1,"coverage":[{"provider":"P",)"
      R"("size":1,"covered":1,"fraction":"1.0000","matched":1,)"
      R"("mean_lag_days":"151.0"}],"not_covered":[]})");
}

TEST(QueryEngine, CtCoverageNotCoveredAndUnknownProvider) {
  QueryEngine engine(make_landscape_db(), {});
  EXPECT_EQ(
      engine.handle_json(
          R"({"op":"ct_coverage","provider":"Q","date":"2030-01-01"})"),
      R"({"op":"ct_coverage","status":"not_covered","date":"2030-01-01",)"
      R"("scope":"tls","provider":"Q","coverage_begin":"2019-06-01",)"
      R"("coverage_end":"2019-06-01"})");
  const std::string unknown = engine.handle_json(
      R"({"op":"ct_coverage","provider":"Nope","date":"2019-08-01"})");
  EXPECT_TRUE(QueryEngine::is_error_response(unknown));
  EXPECT_NE(unknown.find("\"code\":\"unknown_provider\""), std::string::npos);
}

// --- Batch envelopes ------------------------------------------------------

TEST(QueryEngine, BatchAnswersEverySubRequestInOrder) {
  Fixture f;
  const std::string stats = f.engine.handle_json(R"({"op":"stats"})");
  const std::string bad = f.engine.handle_json(R"({"op":"nope"})");
  const std::string response = f.engine.handle_json(
      R"({"op":"batch","requests":[{"op":"stats"},{"op":"nope"},{"op":"stats"}]})");
  EXPECT_EQ(response, batch_response({stats, bad, stats}));
  EXPECT_NE(response.find("\"count\":3"), std::string::npos);
}

TEST(QueryEngine, EmptyBatchAnswersAnEmptyEnvelope) {
  Fixture f;
  EXPECT_EQ(f.engine.handle_json(R"({"op":"batch","requests":[]})"),
            R"({"op":"batch","status":"ok","count":0,"responses":[]})");
}

TEST(QueryEngine, NestedBatchErrorsInItsOwnSlot) {
  Fixture f;
  const std::string response = f.engine.handle_json(
      R"({"op":"batch","requests":[{"op":"batch","requests":[]},{"op":"stats"}]})");
  // The envelope succeeds; slot 0 carries the nesting error, slot 1 the
  // real answer.
  EXPECT_NE(response.find("\"op\":\"batch\",\"status\":\"ok\",\"count\":2"),
            std::string::npos);
  EXPECT_NE(response.find("batch requests may not nest"), std::string::npos);
  EXPECT_NE(response.find(f.engine.handle_json(R"({"op":"stats"})")),
            std::string::npos);
}

TEST(QueryEngine, MalformedBatchEnvelopeIsOneBadRequest) {
  Fixture f;
  const std::string response =
      f.engine.handle_json(R"({"op":"batch","requests":[{"op":"stats"})");
  EXPECT_TRUE(QueryEngine::is_error_response(response));
  EXPECT_NE(response.find("\"code\":\"bad_request\""), std::string::npos);
}

}  // namespace
}  // namespace rs::query
