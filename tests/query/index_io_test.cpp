// Round-trip property suite for the persisted trust index (RSIX).
//
// The contract under test: serialize() is a canonical pure function of the
// logical index, deserialize(serialize(x)) answers every query exactly as
// x does, and the serialize/deserialize pair is a fixed point — the bytes
// do not drift across round trips.  Proven on the paper scenario and on
// randomized simulated ecosystems.
#include "src/query/index_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/query/engine.h"
#include "src/query/trust_index.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/simulator.h"
#include "src/synth/user_agents.h"
#include "src/util/hex.h"

namespace rs::query {
namespace {

using rs::store::ProviderHistory;
using rs::store::Snapshot;
using rs::store::StoreDatabase;
using rs::store::TrustPurpose;
using rs::util::Date;

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Ground truth, mirroring tests/query/query_property_test.cpp: resolve
/// the snapshot with ProviderHistory::at and scan its entries directly.
TrustAnswer brute_force(const StoreDatabase& db,
                        const rs::crypto::Sha256Digest& fp,
                        const std::string& provider, Date date, Scope scope) {
  const ProviderHistory* history = db.find(provider);
  if (history == nullptr || history->empty()) return TrustAnswer::kNotCovered;
  if (date < history->first_date() || history->last_date() < date) {
    return TrustAnswer::kNotCovered;
  }
  const Snapshot* snapshot = history->at(date);
  if (snapshot == nullptr) return TrustAnswer::kNotCovered;
  const rs::store::TrustEntry* entry = snapshot->find(fp);
  if (entry == nullptr) return TrustAnswer::kUntrusted;
  bool yes = false;
  switch (scope) {
    case Scope::kTls:
      yes = entry->trust_for(TrustPurpose::kServerAuth).is_anchor();
      break;
    case Scope::kEmail:
      yes = entry->trust_for(TrustPurpose::kEmailProtection).is_anchor();
      break;
    case Scope::kCode:
      yes = entry->trust_for(TrustPurpose::kCodeSigning).is_anchor();
      break;
    case Scope::kPresent:
      yes = true;
      break;
  }
  return yes ? TrustAnswer::kTrusted : TrustAnswer::kUntrusted;
}

std::vector<Date> probe_dates(const ProviderHistory& history) {
  std::vector<Date> dates;
  for (const auto& s : history.snapshots()) {
    dates.push_back(s.date + (-1));
    dates.push_back(s.date);
    dates.push_back(s.date + 1);
  }
  dates.push_back(history.first_date() + (-30));
  dates.push_back(history.last_date() + 30);
  return dates;
}

TrustIndex build_index(const StoreDatabase& db) {
  return TrustIndex::build(db, rs::store::CertInterner::from_database(db));
}

TEST(IndexIoRoundTrip, SerializeIsAFixedPoint) {
  const auto scenario = rs::synth::build_paper_scenario();
  const TrustIndex built = build_index(scenario.database());

  const std::string first = TrustIndexIO::serialize(built);
  auto loaded = TrustIndexIO::deserialize(as_span(first));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  const std::string second = TrustIndexIO::serialize(loaded.value());
  // Byte-for-byte, not just equivalent: canonical encoding means a load
  // never perturbs what a re-serialize emits.
  EXPECT_EQ(first, second);
}

TEST(IndexIoRoundTrip, LoadedIndexMatchesBruteForceEverywhere) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& db = scenario.database();
  const auto interner = rs::store::CertInterner::from_database(db);
  const TrustIndex built = TrustIndex::build(db, interner);

  const std::string image = TrustIndexIO::serialize(built);
  auto loaded = TrustIndexIO::deserialize(as_span(image));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  const TrustIndex& index = loaded.value();

  ASSERT_EQ(index.provider_count(), built.provider_count());
  ASSERT_EQ(index.interner().size(), built.interner().size());
  ASSERT_EQ(index.resolution_point_count(), built.resolution_point_count());

  const Scope scopes[] = {Scope::kTls, Scope::kEmail, Scope::kCode,
                          Scope::kPresent};
  std::size_t checked = 0;
  for (const auto& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    ASSERT_NE(history, nullptr);
    for (const Date date : probe_dates(*history)) {
      for (const Scope scope : scopes) {
        for (std::uint32_t id = 0; id < interner.size(); ++id) {
          const auto& fp = interner.digest_of(id);
          const TrustAnswer expect = brute_force(db, fp, provider, date, scope);
          const TrustAnswer got = index.is_trusted(fp, provider, date, scope);
          ASSERT_EQ(got, expect)
              << provider << " " << date.to_string() << " scope="
              << to_string(scope) << " fp=" << rs::util::hex_encode(fp);
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 100000u);
}

// The loaded engine must be indistinguishable from the built one at the
// response-byte level across every op in the wire grammar.
TEST(IndexIoRoundTrip, LoadedEngineAnswersByteIdentically) {
  const auto scenario = rs::synth::build_paper_scenario();
  const StoreDatabase& db = scenario.database();
  const auto agents = rs::synth::user_agent_population();

  const QueryEngine from_db(db, agents);
  const std::string image = TrustIndexIO::serialize(from_db.index());
  auto loaded = TrustIndexIO::deserialize(as_span(image));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  const QueryEngine from_file(std::move(loaded).take(), agents);

  std::vector<std::string> lines = {R"({"op":"stats"})"};
  for (const auto& provider : db.providers()) {
    const ProviderHistory* history = db.find(provider);
    lines.push_back(R"({"op":"store_at","provider":")" + provider +
                    R"(","date":")" + history->last_date().to_string() +
                    R"("})");
    lines.push_back(R"({"op":"diff","provider":")" + provider +
                    R"(","date_a":")" + history->first_date().to_string() +
                    R"(","date_b":")" + history->last_date().to_string() +
                    R"(","scope":"present"})");
  }
  const auto roots = db.all_tls_roots_ever();
  std::size_t i = 0;
  for (const auto& fp : roots.items()) {
    if (++i % 7 != 0) continue;
    const std::string hex = rs::util::hex_encode(fp);
    lines.push_back(R"({"op":"lineage","fp":")" + hex + R"("})");
    lines.push_back(R"({"op":"providers_trusting","fp":")" + hex +
                    R"(","date":"2020-06-01"})");
    lines.push_back(R"({"op":"is_trusted","fp":")" + hex +
                    R"(","provider":"NSS","date":"2019-03-03"})");
  }
  lines.push_back(R"({"op":"agent_store","user_agent":"Curl",)"
                  R"("date":"2019-06-01"})");

  for (const auto& line : lines) {
    EXPECT_EQ(from_db.handle_json(line), from_file.handle_json(line)) << line;
  }
}

TEST(IndexIoRoundTrip, FixedPointOnRandomizedEcosystems) {
  for (const std::uint64_t seed : {7ull, 21ull, 1337ull}) {
    rs::synth::SimulatorConfig cfg;
    cfg.seed = seed;
    cfg.ca_count = 60;
    cfg.program_count = 3;
    cfg.derivative_count = 2;
    cfg.snapshot_interval_days = 120;
    const auto eco = rs::synth::simulate_ecosystem(cfg);
    const TrustIndex built = build_index(eco.database);

    const std::string first = TrustIndexIO::serialize(built);
    auto loaded = TrustIndexIO::deserialize(as_span(first));
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": " << loaded.message();
    EXPECT_EQ(first, TrustIndexIO::serialize(loaded.value()))
        << "seed " << seed;

    // Spot-check answers on the loaded copy against brute force.
    const auto& interner = built.interner();
    std::size_t checked = 0;
    for (const auto& provider : eco.database.providers()) {
      const ProviderHistory* history = eco.database.find(provider);
      for (const Date date : probe_dates(*history)) {
        for (std::uint32_t id = 0; id < interner.size(); id += 5) {
          const auto& fp = interner.digest_of(id);
          ASSERT_EQ(
              loaded.value().is_trusted(fp, provider, date, Scope::kTls),
              brute_force(eco.database, fp, provider, date, Scope::kTls))
              << "seed " << seed << " " << provider << " "
              << date.to_string();
          ++checked;
        }
      }
    }
    EXPECT_GT(checked, 1000u) << "seed " << seed;
  }
}

TEST(IndexIoFile, WriteLoadVerifyRoundTrip) {
  const auto scenario = rs::synth::build_paper_scenario();
  const TrustIndex built = build_index(scenario.database());

  const auto dir =
      std::filesystem::temp_directory_path() / "rs_index_io_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "paper.rsix").string();

  auto written = TrustIndexIO::write_file(built, path);
  ASSERT_TRUE(written.ok()) << written.error();
  EXPECT_EQ(written.value(), std::filesystem::file_size(path));

  auto loaded = TrustIndexIO::load_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(TrustIndexIO::serialize(loaded.value()),
            TrustIndexIO::serialize(built));

  auto stats = TrustIndexIO::verify_file(path);
  ASSERT_TRUE(stats.ok()) << stats.message();
  EXPECT_EQ(stats.value().providers, built.provider_count());
  EXPECT_EQ(stats.value().certificates, built.interner().size());
  EXPECT_EQ(stats.value().resolution_points,
            built.resolution_point_count());
  EXPECT_GT(stats.value().intervals, 0u);
  EXPECT_EQ(stats.value().bytes, written.value());

  std::filesystem::remove_all(dir);
}

TEST(IndexIoFile, EmptyIndexRoundTrips) {
  const TrustIndex empty;
  const std::string image = TrustIndexIO::serialize(empty);
  auto loaded = TrustIndexIO::deserialize(as_span(image));
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(loaded.value().provider_count(), 0u);
  EXPECT_EQ(loaded.value().interner().size(), 0u);
  EXPECT_EQ(TrustIndexIO::serialize(loaded.value()), image);

  auto stats = TrustIndexIO::verify(as_span(image));
  ASSERT_TRUE(stats.ok()) << stats.message();
  EXPECT_EQ(stats.value().intervals, 0u);
}

}  // namespace
}  // namespace rs::query
