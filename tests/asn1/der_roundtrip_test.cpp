// Property tests: Writer output parses back to the written value, and
// re-encoding is byte-identical (canonical DER).
#include <gtest/gtest.h>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"

namespace rs::asn1 {
namespace {

TEST(DerRoundTrip, SmallIntegers) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{127},
        std::int64_t{128}, std::int64_t{-128}, std::int64_t{-129},
        std::int64_t{255}, std::int64_t{256}, std::int64_t{65537},
        std::int64_t{INT64_MAX}, std::int64_t{INT64_MIN}}) {
    Writer w;
    w.add_small_integer(v);
    Reader r(w.bytes());
    auto parsed = r.read_small_integer();
    ASSERT_TRUE(parsed.ok()) << v << ": " << parsed.error();
    EXPECT_EQ(parsed.value(), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(DerRoundTrip, IntegerMinimalEncodingSizes) {
  auto encoded_size = [](std::int64_t v) {
    Writer w;
    w.add_small_integer(v);
    return w.bytes().size();
  };
  EXPECT_EQ(encoded_size(0), 3u);      // 02 01 00
  EXPECT_EQ(encoded_size(127), 3u);    // 02 01 7F
  EXPECT_EQ(encoded_size(128), 4u);    // 02 02 00 80
  EXPECT_EQ(encoded_size(-128), 3u);   // 02 01 80
  EXPECT_EQ(encoded_size(-129), 4u);   // 02 02 FF 7F
}

TEST(DerRoundTrip, BigIntegerStripsAndPads) {
  // Leading zeros are stripped; high-bit values get a sign octet.
  const std::vector<std::uint8_t> magnitude = {0x00, 0x00, 0x80, 0x01};
  Writer w;
  w.add_unsigned_big_integer(magnitude);
  Reader r(w.bytes());
  auto parsed = r.read_big_integer();
  ASSERT_TRUE(parsed.ok());
  const std::vector<std::uint8_t> expected = {0x00, 0x80, 0x01};
  EXPECT_EQ(parsed.value(), expected);
}

TEST(DerRoundTrip, Booleans) {
  for (bool b : {true, false}) {
    Writer w;
    w.add_boolean(b);
    Reader r(w.bytes());
    auto parsed = r.read_boolean();
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), b);
  }
}

TEST(DerRoundTrip, OctetAndBitStrings) {
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<std::uint8_t>(i));
  {
    Writer w;
    w.add_octet_string(payload);
    Reader r(w.bytes());
    auto parsed = r.read_octet_string();
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), payload);
  }
  {
    Writer w;
    w.add_bit_string(payload, 3);
    Reader r(w.bytes());
    auto parsed = r.read_bit_string();
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().bytes, payload);
    EXPECT_EQ(parsed.value().unused_bits, 3);
  }
}

TEST(DerRoundTrip, Strings) {
  Writer w;
  w.add_utf8_string("Тест UTF8");
  w.add_printable_string("Example Root CA");
  w.add_ia5_string("ca@example.com");
  Reader r(w.bytes());
  EXPECT_EQ(r.read_string().value(), "Тест UTF8");
  EXPECT_EQ(r.read_string().value(), "Example Root CA");
  EXPECT_EQ(r.read_string().value(), "ca@example.com");
  EXPECT_TRUE(r.at_end());
}

TEST(DerRoundTrip, NestedSequencesAndSets) {
  Writer inner;
  inner.add_small_integer(7);
  inner.add_boolean(true);
  Writer mid;
  mid.add_sequence(inner);
  mid.add_null();
  Writer outer;
  outer.add_set(mid);

  Reader r(outer.bytes());
  auto set = r.read_set();
  ASSERT_TRUE(set.ok());
  auto seq = set.value().read_sequence();
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value().read_small_integer().value(), 7);
  EXPECT_TRUE(seq.value().read_boolean().value());
  EXPECT_TRUE(set.value().read_null().ok());
  EXPECT_TRUE(set.value().at_end());
}

TEST(DerRoundTrip, ContextTags) {
  Writer inner;
  inner.add_small_integer(2);
  Writer w;
  w.add_context(0, inner);
  w.add_context_primitive(1, std::vector<std::uint8_t>{0xAA, 0xBB});

  Reader r(w.bytes());
  ASSERT_TRUE(r.next_is(context(0)));
  auto c0 = r.read_context(0);
  ASSERT_TRUE(c0.ok());
  EXPECT_EQ(c0.value().read_small_integer().value(), 2);
  auto c1 = r.read(context_primitive(1));
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value().content.size(), 2u);
}

TEST(DerRoundTrip, LongFormLengths) {
  // > 127 bytes of content forces long-form length; > 255 forces 2 octets.
  for (std::size_t n : {127u, 128u, 255u, 256u, 65535u, 70000u}) {
    std::vector<std::uint8_t> payload(n, 0x5A);
    Writer w;
    w.add_octet_string(payload);
    Reader r(w.bytes());
    auto parsed = r.read_octet_string();
    ASSERT_TRUE(parsed.ok()) << n;
    EXPECT_EQ(parsed.value().size(), n);
    EXPECT_TRUE(r.at_end());
  }
}

}  // namespace
}  // namespace rs::asn1
