#include "src/asn1/time.h"

#include <gtest/gtest.h>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"

namespace rs::asn1 {
namespace {

using rs::util::Date;

Asn1Time roundtrip(const Asn1Time& t) {
  Writer w;
  write_time(w, t);
  Reader r(w.bytes());
  auto parsed = read_time(r);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
  return parsed.ok() ? parsed.value() : Asn1Time{};
}

TEST(Asn1Time, UtcTimeRoundTrip) {
  const Asn1Time t{Date::ymd(2021, 11, 2), 3600 * 12 + 60 * 34 + 56};
  EXPECT_EQ(roundtrip(t), t);
}

TEST(Asn1Time, GeneralizedTimeRoundTripFrom2050) {
  const Asn1Time t{Date::ymd(2050, 1, 1), 0};
  EXPECT_EQ(roundtrip(t), t);
  const Asn1Time later{Date::ymd(2099, 12, 31), 86399};
  EXPECT_EQ(roundtrip(later), later);
}

TEST(Asn1Time, WriterPicksTagByPivot) {
  Writer before;
  write_time(before, at_midnight(Date::ymd(2049, 12, 31)));
  EXPECT_EQ(before.bytes()[0], primitive(UniversalTag::kUtcTime));

  Writer after;
  write_time(after, at_midnight(Date::ymd(2050, 1, 1)));
  EXPECT_EQ(after.bytes()[0], primitive(UniversalTag::kGeneralizedTime));
}

TEST(Asn1Time, UtcTimePivotParsesCorrectCentury) {
  // "500101000000Z" => 1950; "491231235959Z" => 2049.
  auto parse_utc = [](std::string_view s) {
    Writer w;
    w.add_tlv(primitive(UniversalTag::kUtcTime),
              {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    Reader r(w.bytes());
    return read_time(r);
  };
  auto a = parse_utc("500101000000Z");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().date.year(), 1950);
  auto b = parse_utc("491231235959Z");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().date.year(), 2049);
}

TEST(Asn1Time, RejectsMalformedContent) {
  auto parse_raw = [](UniversalTag tag, std::string_view s) {
    Writer w;
    w.add_tlv(primitive(tag),
              {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    Reader r(w.bytes());
    return read_time(r);
  };
  // Missing Z.
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "2101010000000").ok());
  // Missing seconds.
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "21010100000Z").ok());
  // Bad month/day.
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "211301000000Z").ok());
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "210230000000Z").ok());
  // Hour out of range.
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "210101240000Z").ok());
  // Letters in digits.
  EXPECT_FALSE(parse_raw(UniversalTag::kUtcTime, "21010a000000Z").ok());
  // GeneralizedTime before 2050 violates RFC 5280.
  EXPECT_FALSE(parse_raw(UniversalTag::kGeneralizedTime, "20210101000000Z").ok());
  // Wrong element type entirely.
  Writer w;
  w.add_small_integer(5);
  Reader r(w.bytes());
  EXPECT_FALSE(read_time(r).ok());
}

TEST(Asn1Time, OrderingComparesDateThenTime) {
  const Asn1Time a{Date::ymd(2021, 1, 1), 0};
  const Asn1Time b{Date::ymd(2021, 1, 1), 1};
  const Asn1Time c{Date::ymd(2021, 1, 2), 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Asn1TimeProperty, RoundTripSweepAcrossPivot) {
  for (int year = 1970; year <= 2070; year += 7) {
    const Asn1Time t{Date::ymd(year, 6, 15), 43210};
    EXPECT_EQ(roundtrip(t), t) << year;
  }
}

}  // namespace
}  // namespace rs::asn1
