#include "src/asn1/oid.h"

#include <gtest/gtest.h>

namespace rs::asn1 {
namespace {

TEST(Oid, FromDottedBasic) {
  const auto oid = Oid::from_dotted("1.2.840.113549.1.1.11");
  ASSERT_TRUE(oid.has_value());
  EXPECT_EQ(oid->to_dotted(), "1.2.840.113549.1.1.11");
  EXPECT_EQ(oid->arcs().size(), 7u);
}

TEST(Oid, FromDottedRejectsInvalid) {
  EXPECT_FALSE(Oid::from_dotted("").has_value());
  EXPECT_FALSE(Oid::from_dotted("1").has_value());       // < 2 arcs
  EXPECT_FALSE(Oid::from_dotted("3.1").has_value());     // arc0 > 2
  EXPECT_FALSE(Oid::from_dotted("1.40").has_value());    // arc1 >= 40
  EXPECT_FALSE(Oid::from_dotted("1..2").has_value());    // empty arc
  EXPECT_FALSE(Oid::from_dotted("1.2.x").has_value());   // non-digit
  EXPECT_FALSE(Oid::from_dotted("1.2.").has_value());    // trailing dot
  EXPECT_TRUE(Oid::from_dotted("2.999").has_value());    // arc1>=40 ok for arc0=2
}

TEST(Oid, DerContentKnownEncoding) {
  // 1.2.840.113549 => 2a 86 48 86 f7 0d
  const auto oid = Oid::from_dotted("1.2.840.113549");
  const auto der = oid->to_der_content();
  const std::vector<std::uint8_t> expected = {0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d};
  EXPECT_EQ(der, expected);
}

TEST(Oid, Sha256RsaEncoding) {
  const auto der = oids::sha256_with_rsa().to_der_content();
  const std::vector<std::uint8_t> expected = {0x2a, 0x86, 0x48, 0x86, 0xf7,
                                              0x0d, 0x01, 0x01, 0x0b};
  EXPECT_EQ(der, expected);
}

TEST(Oid, FromDerContentRoundTrip) {
  for (const char* dotted :
       {"1.2.840.113549.1.1.11", "2.5.29.19", "1.3.6.1.5.5.7.3.1", "2.999.1",
        "0.39", "2.5.4.3"}) {
    const auto oid = Oid::from_dotted(dotted);
    ASSERT_TRUE(oid.has_value()) << dotted;
    const auto back = Oid::from_der_content(oid->to_der_content());
    ASSERT_TRUE(back.has_value()) << dotted;
    EXPECT_EQ(back->to_dotted(), dotted);
  }
}

TEST(Oid, FromDerRejectsMalformed) {
  EXPECT_FALSE(Oid::from_der_content({}).has_value());
  const std::vector<std::uint8_t> truncated = {0x2a, 0x86};  // continuation bit set
  EXPECT_FALSE(Oid::from_der_content(truncated).has_value());
  const std::vector<std::uint8_t> nonminimal = {0x2a, 0x80, 0x01};
  EXPECT_FALSE(Oid::from_der_content(nonminimal).has_value());
}

TEST(Oid, ComparisonOrdersLexicographically) {
  EXPECT_LT(*Oid::from_dotted("1.2.3"), *Oid::from_dotted("1.2.4"));
  EXPECT_LT(*Oid::from_dotted("1.2"), *Oid::from_dotted("1.2.0"));
  EXPECT_EQ(oids::eku_server_auth(), *Oid::from_dotted("1.3.6.1.5.5.7.3.1"));
}

TEST(Oid, WellKnownConstantsDistinct) {
  EXPECT_NE(oids::eku_server_auth(), oids::eku_email_protection());
  EXPECT_NE(oids::eku_code_signing(), oids::eku_time_stamping());
  EXPECT_NE(oids::md5_with_rsa(), oids::sha1_with_rsa());
}

}  // namespace
}  // namespace rs::asn1
