// Negative-path tests: the strict DER reader must reject malformed input
// with a diagnostic, never crash or accept.
#include <gtest/gtest.h>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"

namespace rs::asn1 {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(Reader, EmptyInputIsAtEnd) {
  Reader r(Bytes{});
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.read_any().ok());
}

TEST(Reader, RejectsIndefiniteLength) {
  const Bytes der = {0x30, 0x80, 0x00, 0x00};
  Reader r(der);
  auto el = r.read_any();
  ASSERT_FALSE(el.ok());
  EXPECT_NE(el.error().find("indefinite"), std::string::npos);
}

TEST(Reader, RejectsNonMinimalLongFormLength) {
  // 0x81 0x05: long form for a length that fits short form.
  const Bytes der = {0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  Reader r(der);
  auto el = r.read_any();
  ASSERT_FALSE(el.ok());
  EXPECT_NE(el.error().find("non-minimal"), std::string::npos);
}

TEST(Reader, RejectsLeadingZeroLength) {
  const Bytes der = {0x04, 0x82, 0x00, 0x85};
  Reader r(der);
  EXPECT_FALSE(r.read_any().ok());
}

TEST(Reader, RejectsTruncatedContent) {
  const Bytes der = {0x04, 0x05, 1, 2};  // claims 5, has 2
  Reader r(der);
  auto el = r.read_any();
  ASSERT_FALSE(el.ok());
  EXPECT_NE(el.error().find("past end"), std::string::npos);
}

TEST(Reader, RejectsTruncatedLength) {
  const Bytes der = {0x04, 0x82, 0x01};  // 2 length octets promised, 1 present
  Reader r(der);
  EXPECT_FALSE(r.read_any().ok());
}

TEST(Reader, RejectsMultiByteTag) {
  const Bytes der = {0x1F, 0x81, 0x00, 0x00};
  Reader r(der);
  EXPECT_FALSE(r.read_any().ok());
}

TEST(Reader, TagMismatchDoesNotConsume) {
  Writer w;
  w.add_small_integer(5);
  Reader r(w.bytes());
  EXPECT_FALSE(r.read_boolean().ok());  // wrong tag
  auto v = r.read_small_integer();      // cursor unchanged, still readable
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 5);
}

TEST(Reader, RejectsNonMinimalInteger) {
  const Bytes padded_positive = {0x02, 0x02, 0x00, 0x05};
  Reader r1(padded_positive);
  EXPECT_FALSE(r1.read_small_integer().ok());

  const Bytes padded_negative = {0x02, 0x02, 0xFF, 0x85};
  Reader r2(padded_negative);
  EXPECT_FALSE(r2.read_small_integer().ok());

  const Bytes empty_integer = {0x02, 0x00};
  Reader r3(empty_integer);
  EXPECT_FALSE(r3.read_small_integer().ok());
}

TEST(Reader, RejectsOverwideSmallInteger) {
  Bytes der = {0x02, 0x09};
  der.push_back(0x01);
  for (int i = 0; i < 8; ++i) der.push_back(0x00);
  Reader r(der);
  EXPECT_FALSE(r.read_small_integer().ok());
}

TEST(Reader, RejectsBadBoolean) {
  const Bytes not_canonical = {0x01, 0x01, 0x42};
  Reader r1(not_canonical);
  EXPECT_FALSE(r1.read_boolean().ok());

  const Bytes wrong_size = {0x01, 0x02, 0xFF, 0xFF};
  Reader r2(wrong_size);
  EXPECT_FALSE(r2.read_boolean().ok());
}

TEST(Reader, RejectsBadBitString) {
  const Bytes empty = {0x03, 0x00};
  Reader r1(empty);
  EXPECT_FALSE(r1.read_bit_string().ok());

  const Bytes unused_too_big = {0x03, 0x02, 0x09, 0xFF};
  Reader r2(unused_too_big);
  EXPECT_FALSE(r2.read_bit_string().ok());

  const Bytes empty_with_unused = {0x03, 0x01, 0x03};
  Reader r3(empty_with_unused);
  EXPECT_FALSE(r3.read_bit_string().ok());
}

TEST(Reader, RejectsNonEmptyNull) {
  const Bytes der = {0x05, 0x01, 0x00};
  Reader r(der);
  EXPECT_FALSE(r.read_null().ok());
}

TEST(Reader, RejectsInvalidPrintableStringChars) {
  // '@' is not in the PrintableString alphabet.
  const Bytes der = {0x13, 0x03, 'a', '@', 'b'};
  Reader r(der);
  EXPECT_FALSE(r.read_string().ok());
}

TEST(Reader, ErrorsCarryOffsets) {
  Writer good;
  good.add_small_integer(1);
  Bytes der = good.bytes();
  der.push_back(0x02);  // truncated second element at offset 3
  Reader r(der);
  ASSERT_TRUE(r.read_small_integer().ok());
  auto bad = r.read_small_integer();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("offset 3"), std::string::npos) << bad.error();
}

// Wraps `payload` in `levels` nested SEQUENCEs, innermost first.
Bytes nested_sequences(std::size_t levels, Bytes payload) {
  for (std::size_t i = 0; i < levels; ++i) {
    Bytes wrapped;
    wrapped.push_back(constructed(UniversalTag::kSequence));
    if (payload.size() < 0x80) {
      wrapped.push_back(static_cast<std::uint8_t>(payload.size()));
    } else if (payload.size() <= 0xFF) {
      wrapped.push_back(0x81);
      wrapped.push_back(static_cast<std::uint8_t>(payload.size()));
    } else {
      wrapped.push_back(0x82);
      wrapped.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
      wrapped.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
    }
    wrapped.insert(wrapped.end(), payload.begin(), payload.end());
    payload = std::move(wrapped);
  }
  return payload;
}

// Descends through nested SEQUENCEs without C++ recursion; returns how many
// levels opened before an error (if any).
std::size_t descend_all(const Bytes& der, bool* errored) {
  std::vector<Reader> stack;
  stack.emplace_back(der);
  *errored = false;
  while (true) {
    auto sub = stack.back().read_sequence();
    if (!sub.ok()) {
      *errored = true;
      return stack.size() - 1;
    }
    stack.push_back(sub.value());
    if (stack.back().at_end()) return stack.size() - 1;
  }
}

TEST(Reader, NestingAtTheCapSucceeds) {
  const Bytes der = nested_sequences(Reader::kMaxDepth, {});
  bool errored = false;
  EXPECT_EQ(descend_all(der, &errored), Reader::kMaxDepth);
  EXPECT_FALSE(errored);
}

TEST(Reader, NestingBeyondTheCapIsAnErrorNotACrash) {
  const Bytes der = nested_sequences(4096, {});
  bool errored = false;
  EXPECT_EQ(descend_all(der, &errored), Reader::kMaxDepth);
  EXPECT_TRUE(errored);

  // The error is a diagnostic naming the depth limit.
  std::vector<Reader> stack;
  stack.emplace_back(der);
  for (std::size_t i = 0; i < Reader::kMaxDepth; ++i) {
    auto sub = stack.back().read_sequence();
    ASSERT_TRUE(sub.ok());
    stack.push_back(sub.value());
  }
  auto over = stack.back().read_sequence();
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.error().find("nesting deeper"), std::string::npos)
      << over.error();
}

TEST(Reader, DepthIsInheritedBySubReaders) {
  const Bytes der = nested_sequences(3, {});
  Reader top(der);
  EXPECT_EQ(top.depth(), 0u);
  auto one = top.read_sequence();
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().depth(), 1u);
  auto two = one.value().read_sequence();
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.value().depth(), 2u);
}

TEST(Reader, SubReaderOffsetsAreAbsolute) {
  Writer inner;
  inner.add_small_integer(1);
  Writer w;
  w.add_sequence(inner);
  Reader r(w.bytes());
  auto seq = r.read_sequence();
  ASSERT_TRUE(seq.ok());
  // Content of the sequence begins after the 2-byte header.
  EXPECT_EQ(seq.value().offset(), 2u);
}

}  // namespace
}  // namespace rs::asn1
