// Counter aggregation across ThreadPool workers.  Carries the `tsan`
// ctest label: the relaxed-atomic counter paths and the per-task
// queue-wait/run-time instrumentation in submit() are exactly what the
// TSan CI stage needs to watch racing.
//
// These tests use Registry::global() on purpose — the pool's task
// instrumentation is wired to the global registry — so each test restores
// the disabled default and clears its residue before finishing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/obs/clock.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace {

using rs::obs::FakeClock;
using rs::obs::Registry;

// Restores the global registry to its disabled, empty default on scope
// exit so tests cannot leak state into each other.
struct GlobalRegistryGuard {
  ~GlobalRegistryGuard() {
    Registry::global().disable();
    Registry::global().reset();
  }
};

TEST(ObsPool, TasksAndTimingsAggregateAcrossWorkers) {
  GlobalRegistryGuard guard;
  auto& reg = Registry::global();
  FakeClock clock(0, 10);
  reg.reset();
  reg.enable(&clock);

  const std::size_t kTasks = 57;
  std::atomic<std::size_t> ran{0};
  {
    rs::exec::ThreadPool pool(3);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // pool destructor drains the queue

  reg.disable();  // FakeClock dies before the registry; stop reading it
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(reg.counter_value("exec.pool_tasks"), kTasks);
  // Every task was timestamped at enqueue, start, and finish with a
  // strictly advancing fake clock, so both aggregates must be positive.
  EXPECT_GT(reg.counter_value("exec.pool_queue_wait_ns"), 0u);
  EXPECT_GT(reg.counter_value("exec.pool_run_ns"), 0u);
}

TEST(ObsPool, ZeroWorkerPoolCountsInlineTasks) {
  GlobalRegistryGuard guard;
  auto& reg = Registry::global();
  FakeClock clock(0, 10);
  reg.reset();
  reg.enable(&clock);

  {
    rs::exec::ThreadPool pool(0);
    std::size_t ran = 0;
    pool.submit([&ran] { ++ran; });
    pool.submit([&ran] { ++ran; });
    EXPECT_EQ(ran, 2u);  // zero workers -> submit runs inline
  }

  reg.disable();
  EXPECT_EQ(reg.counter_value("exec.pool_tasks"), 2u);
}

TEST(ObsPool, CountersFromManyThreadsSumExactly) {
  GlobalRegistryGuard guard;
  auto& reg = Registry::global();
  FakeClock clock;
  reg.reset();
  reg.enable(&clock);

  // 4 threads x 10k relaxed adds on one counter: the total must be exact
  // (atomics, not data races), and TSan must see no report.
  const std::size_t kThreads = 4;
  const std::size_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      rs::obs::Counter& c = reg.counter("test.contended");
      for (std::size_t i = 0; i < kAddsPerThread; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();

  reg.disable();
  EXPECT_EQ(reg.counter_value("test.contended"), kThreads * kAddsPerThread);
}

TEST(ObsPool, ParallelForSpansCarryDistinctThreadIndices) {
  GlobalRegistryGuard guard;
  auto& reg = Registry::global();
  FakeClock clock(0, 1);
  reg.reset();
  reg.enable(&clock);

  {
    rs::exec::ThreadPool pool(3);
    std::vector<int> out(256, 0);
    rs::exec::for_each_chunk(&pool, out.size(),
                             [&](std::size_t /*chunk*/, std::size_t begin,
                                 std::size_t end) {
                               rs::obs::Span span("test/chunk");
                               for (std::size_t i = begin; i < end; ++i) {
                                 out[i] = 1;
                               }
                               span.set_items(end - begin);
                             });
    for (int v : out) EXPECT_EQ(v, 1);
  }

  reg.disable();
  const auto spans = reg.spans();
  ASSERT_FALSE(spans.empty());
  std::uint64_t items = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.name, "test/chunk");
    items += s.items;
  }
  EXPECT_EQ(items, 256u);  // every element accounted for exactly once
}

}  // namespace
