// Registry counters, gauges, stage aggregation, and the two serialized
// formats.  Serialization tests pin exact bytes: with a FakeClock every
// field of the output is deterministic, and the golden strings double as
// format documentation.
#include "src/obs/registry.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/span.h"

namespace {

using rs::obs::FakeClock;
using rs::obs::Registry;
using rs::obs::Span;

TEST(ObsRegistry, CountersAggregateAndSurviveReset) {
  FakeClock clock;
  Registry reg;
  reg.enable(&clock);

  rs::obs::Counter& c = reg.counter("pipeline.widgets");
  c.add(3);
  c.increment();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(reg.counter_value("pipeline.widgets"), 4u);
  // Same name -> same counter object.
  EXPECT_EQ(&reg.counter("pipeline.widgets"), &c);

  reg.reset();
  // reset() zeroes but never destroys: the cached reference stays usable.
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(reg.counter_value("pipeline.widgets"), 7u);
}

TEST(ObsRegistry, GaugesAreLastWriteWins) {
  FakeClock clock;
  Registry reg;
  reg.enable(&clock);
  reg.set_gauge("pool.workers", 3);
  reg.set_gauge("pool.workers", 8);
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges.at("pool.workers"), 8u);
}

TEST(ObsRegistry, StageStatsAggregateByName) {
  FakeClock clock(0, 100);  // every span lasts exactly 100ns
  Registry reg;
  reg.enable(&clock);

  {
    Span a(reg, "stage/x");
    a.set_items(4);
  }
  {
    Span b(reg, "stage/x");
    b.set_items(6);
  }
  { Span c(reg, "stage/y"); }

  const auto stats = reg.stage_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("stage/x").count, 2u);
  EXPECT_EQ(stats.at("stage/x").total_ns, 200u);
  EXPECT_EQ(stats.at("stage/x").min_ns, 100u);
  EXPECT_EQ(stats.at("stage/x").max_ns, 100u);
  EXPECT_EQ(stats.at("stage/x").items, 10u);
  EXPECT_EQ(stats.at("stage/y").count, 1u);
}

// The exact metrics document for a small scripted scenario.  Keys are
// sorted maps, so the byte layout below is stable by construction.
TEST(ObsRegistry, JsonSerializationGolden) {
  FakeClock clock(1000, 500);  // readings: 1000, 1500, 2000, 2500
  Registry reg;
  reg.enable(&clock);

  {
    Span outer(reg, "stage/outer");
    outer.set_items(2);
    { Span inner(reg, "stage/inner"); }
  }
  reg.counter("c.x").add(7);
  reg.counter("a.b").add(1);
  reg.set_gauge("g.y", 9);

  const char* expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a.b\": 1,\n"
      "    \"c.x\": 7\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g.y\": 9\n"
      "  },\n"
      "  \"stages\": {\n"
      "    \"stage/inner\": {\"count\": 1, \"total_ns\": 500, \"min_ns\": 500,"
      " \"max_ns\": 500, \"items\": 0},\n"
      "    \"stage/outer\": {\"count\": 1, \"total_ns\": 1500, \"min_ns\": "
      "1500, \"max_ns\": 1500, \"items\": 2}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(reg.to_json(), expected);
}

TEST(ObsRegistry, EmptyJsonSerializationGolden) {
  Registry reg;
  EXPECT_EQ(reg.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"stages\": {}\n}\n");
}

// Chrome trace_event golden: "X" complete events with microsecond
// timestamps, in span-finish order.
TEST(ObsRegistry, ChromeTraceSerializationGolden) {
  FakeClock clock(1000, 500);
  Registry reg;
  reg.enable(&clock);

  {
    Span outer(reg, "stage/outer");
    outer.set_items(2);
    { Span inner(reg, "stage/inner"); }
  }

  const char* expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"stage/inner\",\"cat\":\"rootstore\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":0.500,\"pid\":1,\"tid\":0,"
      "\"args\":{\"id\":2,\"parent\":1,\"items\":0}},\n"
      "{\"name\":\"stage/outer\",\"cat\":\"rootstore\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":1.500,\"pid\":1,\"tid\":0,"
      "\"args\":{\"id\":1,\"parent\":0,\"items\":2}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(reg.to_chrome_trace(), expected);
}

TEST(ObsRegistry, EmptyChromeTraceGolden) {
  Registry reg;
  EXPECT_EQ(reg.to_chrome_trace(),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ObsRegistry, JsonStringEscaping) {
  Registry reg;
  FakeClock clock;
  reg.enable(&clock);
  reg.counter("weird\"name\\with\ncontrol\x01").increment();
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\ncontrol\\u0001\": 1"),
            std::string::npos)
      << json;
}

TEST(ObsRegistry, DisableKeepsCollectedDataUntilReset) {
  FakeClock clock(0, 10);
  Registry reg;
  reg.enable(&clock);
  { Span span(reg, "stage/kept"); }
  reg.counter("kept.counter").add(5);

  reg.disable();
  EXPECT_EQ(reg.spans().size(), 1u);
  EXPECT_EQ(reg.counter_value("kept.counter"), 5u);
  // New activity while disabled records nothing.
  { Span span(reg, "stage/dropped"); }
  reg.counter("kept.counter").add(5);
  EXPECT_EQ(reg.spans().size(), 1u);
  EXPECT_EQ(reg.counter_value("kept.counter"), 5u);

  reg.reset();
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_EQ(reg.counter_value("kept.counter"), 0u);
}

// Regression (concurrency-safety pass): Registry::clock_ was a plain
// pointer written by enable() while probe threads read it lock-free — a
// data race TSan only caught on lucky schedules.  It is now an atomic with
// release/acquire publication; this test races an enable/disable/enable
// cycle against span-creating workers so the tsan-labeled CI stage pins
// the fix deterministically-by-construction rather than by schedule.
TEST(ObsRegistry, EnableRacesSpanProbesWithoutTearing) {
  FakeClock clock_a(0, 1);
  FakeClock clock_b(1'000'000, 1);
  Registry reg;
  reg.enable(&clock_a);

  constexpr int kWorkers = 4;
  constexpr int kSpansPerWorker = 500;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kSpansPerWorker; ++i) {
        Span span(reg, "race/probe");
        span.add_items(1);
        reg.counter("race.counter").increment();
      }
    });
  }
  // Re-publish clocks while the workers probe: every probe must see either
  // clock_a or clock_b, never a torn pointer.
  for (int flip = 0; flip < 200; ++flip) {
    reg.enable(flip % 2 == 0 ? &clock_b : &clock_a);
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(reg.counter_value("race.counter"),
            static_cast<std::uint64_t>(kWorkers) * kSpansPerWorker);
  EXPECT_EQ(reg.spans().size(),
            static_cast<std::size_t>(kWorkers) * kSpansPerWorker);
}

}  // namespace
