// Span-tree shape under a scripted FakeClock: ids, parent linkage, thread
// indices, and timings are all exactly predictable, so these tests assert
// the full tree rather than loose invariants.
#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/registry.h"

namespace {

using rs::obs::FakeClock;
using rs::obs::Registry;
using rs::obs::Span;
using rs::obs::SpanRecord;

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  const auto it = std::find_if(spans.begin(), spans.end(),
                               [&](const SpanRecord& s) {
                                 return s.name == name;
                               });
  return it == spans.end() ? nullptr : &*it;
}

TEST(ObsSpan, RecordsStartAndDurationFromInjectedClock) {
  FakeClock clock(1000, 500);  // readings: 1000, 1500, 2000, ...
  Registry reg;
  reg.enable(&clock);

  { Span span(reg, "stage/a"); }

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "stage/a");
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].duration_ns, 500u);
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(clock.calls(), 2u);  // one per construction, one per destruction
}

TEST(ObsSpan, NestedSpansLinkToInnermostParent) {
  FakeClock clock(0, 1);
  Registry reg;
  reg.enable(&clock);

  {
    Span outer(reg, "stage/outer");
    {
      Span middle(reg, "stage/middle");
      { Span inner(reg, "stage/inner"); }
    }
    // A sibling opened after `middle` finished must link to `outer`,
    // not to the most recently created span.
    { Span sibling(reg, "stage/sibling"); }
  }

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 4u);
  const auto* outer = find_span(spans, "stage/outer");
  const auto* middle = find_span(spans, "stage/middle");
  const auto* inner = find_span(spans, "stage/inner");
  const auto* sibling = find_span(spans, "stage/sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(inner->parent, middle->id);
  EXPECT_EQ(sibling->parent, outer->id);
  // All on the calling thread.
  EXPECT_EQ(outer->thread, inner->thread);
  EXPECT_EQ(outer->thread, sibling->thread);
}

TEST(ObsSpan, SpansOnOtherThreadsStartTheirOwnChain) {
  FakeClock clock(0, 1);
  Registry reg;
  reg.enable(&clock);

  {
    Span outer(reg, "stage/outer");
    std::thread t([&reg] { Span task(reg, "stage/task"); });
    t.join();
  }

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto* outer = find_span(spans, "stage/outer");
  const auto* task = find_span(spans, "stage/task");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(task, nullptr);
  // Parent linkage is per-thread: the other thread's span is a root, and
  // the two spans carry distinct dense thread indices.
  EXPECT_EQ(task->parent, 0u);
  EXPECT_NE(task->thread, outer->thread);
}

TEST(ObsSpan, ItemsAccumulate) {
  FakeClock clock;
  Registry reg;
  reg.enable(&clock);

  {
    Span span(reg, "stage/items");
    span.set_items(10);
    span.add_items(5);
  }

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].items, 15u);
}

TEST(ObsSpan, ResetRestartsIdsAndThreadIndices) {
  FakeClock clock;
  Registry reg;
  reg.enable(&clock);

  { Span span(reg, "stage/first"); }
  reg.reset();
  { Span span(reg, "stage/second"); }

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "stage/second");
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].thread, 0u);
}

}  // namespace
