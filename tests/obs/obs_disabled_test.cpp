// The disabled-mode cost contract (see src/obs/registry.h): while the
// registry is disabled, Span construction/destruction and Counter::add
// must perform no heap allocation and never query the clock, and the
// registry must collect nothing.  This file links its own global
// operator new/delete pair to count allocations, so it builds as a
// separate test binary (obs_disabled_tests) — the replaced allocator is
// process-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/obs/clock.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

struct AllocationCountScope {
  AllocationCountScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCountScope() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

}  // namespace

// The replacement pair routes through malloc/free; GCC's heap-mismatch
// analysis cannot see that the two sides agree, so silence that one
// diagnostic for the definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using rs::obs::FakeClock;
using rs::obs::Registry;
using rs::obs::Span;

TEST(ObsDisabled, SpanIsFreeWhileDisabled) {
  FakeClock clock;
  Registry reg;
  reg.enable(&clock);
  reg.disable();
  const std::uint64_t clock_calls_before = clock.calls();

  {
    AllocationCountScope allocs;
    for (int i = 0; i < 1000; ++i) {
      Span span(reg, "disabled/span");
      span.set_items(42);
      span.add_items(1);
    }
    EXPECT_EQ(allocs.count(), 0u);
  }
  // Disabled spans never read the clock...
  EXPECT_EQ(clock.calls(), clock_calls_before);
  // ...and never reach the registry.
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_TRUE(reg.stage_stats().empty());
}

TEST(ObsDisabled, CounterAddIsFreeWhileDisabled) {
  Registry reg;
  // Intern the counter up front: creation allocates by design; the hot
  // add() path must not.
  rs::obs::Counter& c = reg.counter("disabled.counter");

  {
    AllocationCountScope allocs;
    for (int i = 0; i < 1000; ++i) {
      c.add(3);
      c.increment();
    }
    EXPECT_EQ(allocs.count(), 0u);
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.counter_value("disabled.counter"), 0u);
}

TEST(ObsDisabled, GaugesIgnoredWhileDisabled) {
  Registry reg;
  reg.set_gauge("disabled.gauge", 7);
  EXPECT_TRUE(reg.gauges().empty());
}

TEST(ObsDisabled, DefaultConstructedRegistryIsDisabled) {
  Registry reg;
  EXPECT_FALSE(reg.enabled());
  { Span span(reg, "disabled/default"); }
  EXPECT_TRUE(reg.spans().empty());
}

TEST(ObsDisabled, AllocationProbeSeesNormalAllocations) {
  // Self-check: the probe actually counts (guards against a silently
  // unlinked operator new making the zero-allocation tests vacuous).
  AllocationCountScope allocs;
  // Call the allocator directly: a new-expression could legally be elided
  // by the optimizer, a plain function call cannot.
  void* raw = ::operator new(16);
  ::operator delete(raw);
  EXPECT_GE(allocs.count(), 1u);
}

}  // namespace
