// convert_store: translate a root store between provider formats — the
// lossy operation every NSS derivative performs (§6), made explicit.
//
//   ./convert_store <in> <out.{certdata|pem|jks|dir}>
//   ./convert_store --demo            # scenario NSS store -> all formats
//
// Conversions into PEM/JKS/dir drop trust purposes and partial-distrust
// cutoffs; the tool prints exactly what was lost.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/formats/cert_dir.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/formats/sniff.h"
#include "src/synth/paper_scenario.h"
#include "src/util/strings.h"

namespace {

using rs::formats::ParsedStore;
using rs::store::TrustPurpose;

void report_loss(const ParsedStore& store, const std::string& target) {
  std::size_t cutoffs = 0, purpose_limited = 0;
  for (const auto& e : store.entries) {
    if (e.is_partially_distrusted_tls()) ++cutoffs;
    bool all = true;
    for (TrustPurpose p : rs::store::kAllPurposes) {
      all = all && e.is_anchor_for(p);
    }
    if (!all) ++purpose_limited;
  }
  if (cutoffs > 0) {
    std::printf("  LOST in %s: %zu partial-distrust cutoff(s)\n",
                target.c_str(), cutoffs);
  }
  if (purpose_limited > 0) {
    std::printf("  LOST in %s: purpose restrictions on %zu root(s)\n",
                target.c_str(), purpose_limited);
  }
}

bool write_as(const ParsedStore& store, const std::string& out) {
  namespace fs = std::filesystem;
  if (rs::util::ends_with(out, ".certdata") ||
      rs::util::ends_with(out, "certdata.txt")) {
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_certdata(store.entries);
    return static_cast<bool>(f);
  }
  if (rs::util::ends_with(out, ".rsts")) {
    // Full-fidelity target: nothing is lost.
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_rsts(store.entries);
    return static_cast<bool>(f);
  }
  if (rs::util::ends_with(out, ".pem") || rs::util::ends_with(out, ".crt")) {
    report_loss(store, out);
    std::ofstream f(out, std::ios::binary);
    f << rs::formats::write_pem_bundle(store.entries);
    return static_cast<bool>(f);
  }
  if (rs::util::ends_with(out, ".jks")) {
    report_loss(store, out);
    const auto blob =
        rs::formats::write_jks(store.entries, rs::util::Date::ymd(2021, 5, 1));
    std::ofstream f(out, std::ios::binary);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    return static_cast<bool>(f);
  }
  if (rs::util::ends_with(out, ".dir") || rs::util::ends_with(out, "/")) {
    report_loss(store, out);
    fs::create_directories(out);
    for (const auto& file : rs::formats::write_cert_dir(store.entries)) {
      std::ofstream f(fs::path(out) / file.name, std::ios::binary);
      f << file.content;
      if (!f) return false;
    }
    return true;
  }
  std::fprintf(stderr,
               "unknown target format for '%s' "
               "(use .certdata/.rsts/.pem/.crt/.jks/.dir)\n",
               out.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    auto scenario = rs::synth::build_paper_scenario();
    ParsedStore store;
    store.entries = scenario.database().find("NSS")->back().entries;
    std::printf("demo: scenario NSS store (%zu roots) -> /tmp/rs_demo.*\n",
                store.entries.size());
    bool ok = write_as(store, "/tmp/rs_demo.certdata") &&
              write_as(store, "/tmp/rs_demo.pem") &&
              write_as(store, "/tmp/rs_demo.jks") &&
              write_as(store, "/tmp/rs_demo.dir");
    std::printf("%s\n", ok ? "done" : "FAILED");
    return ok ? 0 : 1;
  }
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <in> <out.{certdata|pem|jks|dir}>\n"
                         "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  auto store = rs::formats::load_any_store(argv[1]);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.error().c_str());
    return 1;
  }
  std::printf("loaded %zu roots (%zu warnings)\n",
              store.value().entries.size(), store.value().warnings.size());
  return write_as(store.value(), argv[2]) ? 0 : 1;
}
