// store_diff: compare two root stores the way §6.2 compares derivative
// snapshots against NSS versions.
//
//   ./store_diff <a> <b>         # certdata.txt / PEM / JKS / RSTS files
//   ./store_diff --demo          # Debian@Symantec-window vs matched NSS
//
// Reports roots only in A, only in B, and roots present in both whose
// trust differs (purpose levels or partial-distrust cutoffs).
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "src/formats/sniff.h"
#include "src/synth/paper_scenario.h"
#include "src/util/hex.h"

namespace {

using rs::formats::ParsedStore;
using rs::store::TrustEntry;
using rs::store::TrustPurpose;

std::string describe(const TrustEntry& e) {
  std::string out;
  for (TrustPurpose p : rs::store::kAllPurposes) {
    const auto& t = e.trust_for(p);
    if (!out.empty()) out += " ";
    out += std::string(rs::store::to_string(p)) + "=" +
           rs::store::to_string(t.level);
    if (t.distrust_after) out += "(until " + t.distrust_after->to_string() + ")";
  }
  return out;
}

void diff(const std::vector<TrustEntry>& a_entries, const std::string& a_name,
          const std::vector<TrustEntry>& b_entries, const std::string& b_name) {
  std::map<rs::crypto::Sha256Digest, const TrustEntry*> a_map, b_map;
  for (const auto& e : a_entries) a_map[e.certificate->sha256()] = &e;
  for (const auto& e : b_entries) b_map[e.certificate->sha256()] = &e;

  std::size_t only_a = 0, only_b = 0, changed = 0;
  std::printf("only in %s:\n", a_name.c_str());
  for (const auto& [fp, e] : a_map) {
    if (b_map.contains(fp)) continue;
    ++only_a;
    std::printf("  - %s  %s\n", e->certificate->short_id().c_str(),
                std::string(e->certificate->subject().common_name().value_or("?"))
                    .c_str());
  }
  std::printf("only in %s:\n", b_name.c_str());
  for (const auto& [fp, e] : b_map) {
    if (a_map.contains(fp)) continue;
    ++only_b;
    std::printf("  + %s  %s\n", e->certificate->short_id().c_str(),
                std::string(e->certificate->subject().common_name().value_or("?"))
                    .c_str());
  }
  std::printf("trust changes:\n");
  for (const auto& [fp, ea] : a_map) {
    const auto it = b_map.find(fp);
    if (it == b_map.end()) continue;
    bool same = true;
    for (TrustPurpose p : rs::store::kAllPurposes) {
      same = same && ea->trust_for(p) == it->second->trust_for(p);
    }
    if (same) continue;
    ++changed;
    std::printf("  ~ %s  %s\n      %s: %s\n      %s: %s\n",
                ea->certificate->short_id().c_str(),
                std::string(
                    ea->certificate->subject().common_name().value_or("?"))
                    .c_str(),
                a_name.c_str(), describe(*ea).c_str(), b_name.c_str(),
                describe(*it->second).c_str());
  }
  std::printf("\nsummary: %zu only in %s, %zu only in %s, %zu trust changes, "
              "%zu shared\n",
              only_a, a_name.c_str(), only_b, b_name.c_str(), changed,
              a_map.size() - only_a);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    // Debian during the premature Symantec removal vs NSS at the time.
    auto scenario = rs::synth::build_paper_scenario();
    const auto* debian =
        scenario.database().find("Debian")->at(rs::util::Date::ymd(2020, 5, 1));
    const auto* nss =
        scenario.database().find("NSS")->at(rs::util::Date::ymd(2020, 5, 1));
    std::printf("demo: Debian@%s vs NSS@%s\n\n",
                debian->date.to_string().c_str(),
                nss->date.to_string().c_str());
    diff(nss->entries, "NSS", debian->entries, "Debian");
    return 0;
  }
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <store-a> <store-b>\n       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  auto a = rs::formats::load_any_store(argv[1]);
  auto b = rs::formats::load_any_store(argv[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!a.ok() ? a.error() : b.error()).c_str());
    return 1;
  }
  diff(a.value().entries, argv[1], b.value().entries, argv[2]);
  return 0;
}
