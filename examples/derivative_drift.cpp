// derivative_drift: how far does an NSS derivative drift from NSS?
//
//   ./derivative_drift [provider]      (default: Debian)
//
// Reproduces the §6 per-provider view: every snapshot's matched NSS
// substantial version, staleness, and diff categories.
#include <cstdio>
#include <string>

#include "src/analysis/diffs.h"
#include "src/analysis/staleness.h"
#include "src/synth/paper_scenario.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  const std::string provider = argc > 1 ? argv[1] : "Debian";
  auto scenario = rs::synth::build_paper_scenario();

  const auto* nss = scenario.database().find("NSS");
  const auto* deriv = scenario.database().find(provider);
  if (deriv == nullptr) {
    std::fprintf(stderr, "unknown provider '%s'; try one of:", provider.c_str());
    for (const auto& name : scenario.database().providers()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  const auto index = rs::analysis::build_version_index(*nss);
  const auto staleness = rs::analysis::derivative_staleness(*deriv, index);
  const auto diffs = rs::analysis::derivative_diffs(*deriv, *nss, index);

  std::printf("%s vs NSS (%zu substantial NSS versions)\n\n", provider.c_str(),
              index.size());

  rs::util::TextTable t({"Snapshot", "Matched NSS", "Behind", "Added",
                         "Removed", "Why"});
  t.set_align(2, rs::util::Align::kRight);
  t.set_align(3, rs::util::Align::kRight);
  t.set_align(4, rs::util::Align::kRight);
  for (std::size_t i = 0;
       i < staleness.points.size() && i < diffs.points.size(); ++i) {
    const auto& sp = staleness.points[i];
    const auto& dp = diffs.points[i];
    std::string why;
    for (std::size_t c = 0; c < dp.adds.size(); ++c) {
      if (dp.adds[c] > 0) {
        why += "+" + std::to_string(dp.adds[c]) + " " +
               rs::analysis::to_string(static_cast<rs::analysis::AddCategory>(c)) +
               "  ";
      }
    }
    for (std::size_t c = 0; c < dp.removes.size(); ++c) {
      if (dp.removes[c] > 0) {
        why += "-" + std::to_string(dp.removes[c]) + " " +
               rs::analysis::to_string(
                   static_cast<rs::analysis::RemoveCategory>(c)) +
               "  ";
      }
    }
    t.add_row({sp.date.to_string(), "v" + std::to_string(sp.matched_version),
               rs::util::fmt_double(sp.versions_behind, 0),
               std::to_string(dp.added_total()),
               std::to_string(dp.removed_total()), why});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\naverage staleness: %.2f substantial versions  (always stale: %s, "
      "ever deviates: %s)\n",
      staleness.avg_versions_behind, staleness.always_stale ? "yes" : "no",
      diffs.ever_deviates ? "yes" : "no");
  return 0;
}
