// incident_timeline: walk one CA incident across the whole ecosystem.
//
//   ./incident_timeline [incident]     (default: CNNIC)
//
// For every provider: when the incident roots entered its store, when they
// left, and the lag relative to NSS's removal — the §5.3 analysis, focused
// on a single event.
#include <cstdio>
#include <string>

#include "src/analysis/incident_response.h"
#include "src/synth/paper_scenario.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "CNNIC";
  auto scenario = rs::synth::build_paper_scenario();

  const rs::synth::Incident* incident = nullptr;
  const auto catalog = scenario.incidents();
  for (const auto& i : catalog) {
    if (rs::util::icontains(i.name, wanted)) {
      incident = &i;
      break;
    }
  }
  if (incident == nullptr) {
    std::fprintf(stderr, "no incident matching '%s'; known:", wanted.c_str());
    for (const auto& i : catalog) std::fprintf(stderr, " '%s'", i.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("%s (Bugzilla %s, %s severity)\n%s\n", incident->name.c_str(),
              incident->bugzilla_id.c_str(),
              rs::synth::to_string(incident->severity),
              incident->details.c_str());
  std::printf("NSS removal: %s   affected roots: %zu\n\n",
              incident->nss_removal.to_string().c_str(),
              incident->root_ids.size());

  // Per-root presence intervals across every provider.
  for (const auto& id : incident->root_ids) {
    auto cert = scenario.factory().find(id);
    if (cert == nullptr) continue;
    std::printf("root %s (%s...)\n",
                std::string(cert->subject().common_name().value_or(id)).c_str(),
                cert->short_id().c_str());
    for (const auto& presence :
         scenario.database().tls_presence(cert->sha256())) {
      std::printf("  %-12s %s .. %s%s\n", presence.provider.c_str(),
                  presence.first_seen.to_string().c_str(),
                  presence.last_seen.to_string().c_str(),
                  presence.in_latest ? "  [STILL TRUSTED]" : "");
    }
  }

  // Aggregate lags.
  const auto measured = rs::analysis::measure_incident(
      scenario.database(), *incident, scenario.factory());
  std::printf("\nResponse lags vs NSS:\n");
  rs::util::TextTable t({"Provider", "# roots", "Trusted until", "Lag (days)"});
  t.set_align(1, rs::util::Align::kRight);
  t.set_align(3, rs::util::Align::kRight);
  for (const auto& r : measured.responses) {
    t.add_row({r.provider, std::to_string(r.certs_carried),
               r.still_trusted ? "still trusted"
                               : (r.trusted_until ? r.trusted_until->to_string()
                                                  : "-"),
               r.lag_days ? std::to_string(*r.lag_days) : "-"});
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}
