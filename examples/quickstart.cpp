// Quickstart: build root certificates, assemble a store, serialize it as
// NSS certdata.txt, parse it back, and inspect trust — the library's core
// loop in ~80 lines.
//
//   ./quickstart
#include <cstdio>
#include <memory>

#include "src/formats/certdata.h"
#include "src/store/trust.h"
#include "src/util/hex.h"
#include "src/x509/builder.h"

using rs::store::TrustEntry;
using rs::store::TrustPurpose;
using rs::util::Date;

int main() {
  // 1. Synthesize two root certificates (real DER, deterministic).
  rs::x509::Name web_name;
  web_name.add_common_name("Example Web Root CA")
      .add_organization("Example Trust Services")
      .add_country("US");
  auto web_root = std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder()
          .subject(web_name)
          .serial_number(1001)
          .not_before(Date::ymd(2015, 1, 1))
          .not_after(Date::ymd(2040, 1, 1))
          .key_seed(1)
          .build());

  rs::x509::Name mail_name;
  mail_name.add_common_name("Example Mail Root CA")
      .add_organization("Example Trust Services")
      .add_country("US");
  auto mail_root = std::make_shared<const rs::x509::Certificate>(
      rs::x509::CertificateBuilder()
          .subject(mail_name)
          .serial_number(1002)
          .not_before(Date::ymd(2016, 1, 1))
          .not_after(Date::ymd(2041, 1, 1))
          .signature_scheme(rs::x509::SignatureScheme::kEcdsaSha256)
          .key_seed(2)
          .build());

  // 2. Express trust: the web root anchors TLS, the mail root only email.
  TrustEntry web_entry = rs::store::make_tls_anchor(web_root);
  // NSS-style partial distrust: leaves issued after 2030 are not trusted.
  web_entry.trust_for(TrustPurpose::kServerAuth).distrust_after =
      Date::ymd(2030, 1, 1);
  TrustEntry mail_entry = rs::store::make_anchor_for(
      mail_root, {TrustPurpose::kEmailProtection});

  // 3. Serialize as NSS certdata.txt and parse it back.
  const std::string certdata =
      rs::formats::write_certdata({web_entry, mail_entry});
  auto parsed = rs::formats::parse_certdata(certdata);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.error().c_str());
    return 1;
  }

  // 4. Inspect what survived the round trip.
  std::printf("certdata.txt: %zu bytes, %zu roots, %zu warnings\n\n",
              certdata.size(), parsed.value().entries.size(),
              parsed.value().warnings.size());
  for (const auto& entry : parsed.value().entries) {
    const auto& cert = *entry.certificate;
    std::printf("%s\n", std::string(cert.subject().common_name().value_or("?"))
                            .c_str());
    std::printf("  sha256      %s...\n", cert.short_id().c_str());
    std::printf("  key         %s %u bits\n",
                rs::x509::to_string(cert.public_key().algorithm()),
                cert.public_key().bits());
    std::printf("  valid       %s .. %s\n",
                cert.validity().not_before.date.to_string().c_str(),
                cert.validity().not_after.date.to_string().c_str());
    for (TrustPurpose p : rs::store::kAllPurposes) {
      const auto& trust = entry.trust_for(p);
      std::printf("  %-17s %s%s\n", rs::store::to_string(p),
                  rs::store::to_string(trust.level),
                  trust.distrust_after
                      ? ("  (distrust after " +
                         trust.distrust_after->to_string() + ")")
                            .c_str()
                      : "");
    }
    std::printf("\n");
  }
  return 0;
}
