// export_dataset: materialize the scenario's ten-provider snapshot history
// to disk (the study's "artifact"), then reload and verify it.
//
//   ./export_dataset <dir>       (default: /tmp/rootstore-dataset)
//
// The on-disk layout is a MANIFEST plus one RSTS file per snapshot; see
// formats/dataset_io.h.  Reload verification proves the artifact is
// self-contained: everything the analyses need survives the disk trip.
#include <cstdio>
#include <string>

#include "src/formats/dataset_io.h"
#include "src/synth/paper_scenario.h"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/rootstore-dataset";

  std::printf("building scenario...\n");
  auto scenario = rs::synth::build_paper_scenario();
  const auto& db = scenario.database();
  std::printf("  %zu providers, %zu snapshots\n", db.provider_count(),
              db.total_snapshots());

  std::printf("writing dataset to %s ...\n", dir.c_str());
  auto written = rs::formats::write_dataset(db, dir);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.error().c_str());
    return 1;
  }

  std::printf("reloading for verification...\n");
  auto loaded = rs::formats::load_dataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
    return 1;
  }
  if (loaded.value().total_snapshots() != db.total_snapshots()) {
    std::fprintf(stderr, "verification FAILED: snapshot count mismatch\n");
    return 1;
  }
  for (const auto& name : db.providers()) {
    const auto* orig = db.find(name);
    const auto* back = loaded.value().find(name);
    if (back == nullptr || back->size() != orig->size() ||
        !(back->back().all_fingerprints() ==
          orig->back().all_fingerprints())) {
      std::fprintf(stderr, "verification FAILED for %s\n", name.c_str());
      return 1;
    }
  }
  std::printf("verified: %zu snapshots across %zu providers round-tripped\n",
              loaded.value().total_snapshots(),
              loaded.value().provider_count());
  return 0;
}
