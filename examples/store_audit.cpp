// store_audit: hygiene-audit a root store file the way §5.1 of the paper
// audits the big four programs.
//
//   ./store_audit <file>        # certdata.txt, PEM bundle, or JKS
//   ./store_audit               # audits the scenario's latest NSS store
//
// Reports: store size, per-purpose anchor counts, expired roots, MD5
// signatures, sub-2048-bit RSA keys, and partial-distrust entries.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/analysis/hygiene.h"
#include "src/formats/sniff.h"
#include "src/synth/paper_scenario.h"
#include "src/util/table.h"
#include "src/x509/lint.h"

using rs::store::TrustPurpose;

namespace {

rs::util::Date today() {
  // Day resolution is enough for an audit.
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto days = std::chrono::duration_cast<std::chrono::hours>(now).count() / 24;
  return rs::util::Date::from_days(days);
}

}  // namespace

int main(int argc, char** argv) {
  rs::formats::ParsedStore store;
  std::string source;
  if (argc > 1) {
    auto loaded = rs::formats::load_any_store(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
      return 1;
    }
    store = std::move(loaded).take();
    source = argv[1];
  } else {
    auto scenario = rs::synth::build_paper_scenario();
    store.entries = scenario.database().find("NSS")->back().entries;
    source = "scenario NSS @ " +
             scenario.database().find("NSS")->back().date.to_string();
  }

  const auto now = today();
  std::size_t expired = 0, md5 = 0, weak = 0, partial = 0;
  std::size_t tls = 0, email = 0, codesign = 0;
  for (const auto& e : store.entries) {
    if (e.certificate->is_expired_at(now)) ++expired;
    if (e.certificate->has_md5_signature()) ++md5;
    if (e.certificate->has_weak_rsa_key()) ++weak;
    if (e.is_partially_distrusted_tls()) ++partial;
    if (e.is_anchor_for(TrustPurpose::kServerAuth)) ++tls;
    if (e.is_anchor_for(TrustPurpose::kEmailProtection)) ++email;
    if (e.is_anchor_for(TrustPurpose::kCodeSigning)) ++codesign;
  }

  std::printf("Root store audit: %s\n\n", source.c_str());
  rs::util::TextTable t({"Metric", "Value"});
  t.set_align(1, rs::util::Align::kRight);
  t.add_row({"roots", std::to_string(store.entries.size())});
  t.add_row({"TLS server-auth anchors", std::to_string(tls)});
  t.add_row({"email-protection anchors", std::to_string(email)});
  t.add_row({"code-signing anchors", std::to_string(codesign)});
  t.add_separator();
  t.add_row({"expired as of " + now.to_string(), std::to_string(expired)});
  t.add_row({"MD5-signed roots", std::to_string(md5)});
  t.add_row({"RSA < 2048 bits", std::to_string(weak)});
  t.add_row({"partial TLS distrust entries", std::to_string(partial)});
  t.add_row({"parse warnings", std::to_string(store.warnings.size())});
  std::fputs(t.render().c_str(), stdout);

  // The worst offenders, by name.
  if (md5 + weak + expired > 0) {
    std::printf("\nFindings:\n");
    for (const auto& e : store.entries) {
      const auto& cert = *e.certificate;
      std::string why;
      if (cert.has_md5_signature()) why += " MD5-signature";
      if (cert.has_weak_rsa_key()) {
        why += " RSA-" + std::to_string(cert.public_key().bits());
      }
      if (cert.is_expired_at(now)) {
        why += " expired-" + cert.validity().not_after.date.to_string();
      }
      if (!why.empty()) {
        std::printf("  %s  %s:%s\n", cert.short_id().c_str(),
                    std::string(cert.subject().common_name().value_or("?"))
                        .c_str(),
                    why.c_str());
      }
    }
  }
  // BR-style lint pass (§7's "objective evaluation" direction): score every
  // root and list the worst offenders.
  rs::x509::LintOptions lint_opts;
  lint_opts.now = now;
  int total_score = 0;
  std::vector<std::pair<int, std::string>> worst;
  for (const auto& e : store.entries) {
    const auto findings = rs::x509::lint_root(*e.certificate, lint_opts);
    const int score = rs::x509::lint_score(findings);
    total_score += score;
    if (score > 0) {
      std::string summary =
          std::string(e.certificate->subject().common_name().value_or("?")) +
          " [";
      for (std::size_t i = 0; i < findings.size() && i < 3; ++i) {
        if (i != 0) summary += ", ";
        summary += findings[i].check;
      }
      summary += "]";
      worst.emplace_back(score, std::move(summary));
    }
  }
  std::sort(worst.rbegin(), worst.rend());
  std::printf("\nLint: aggregate score %d over %zu roots (0 = clean)\n",
              total_score, store.entries.size());
  for (std::size_t i = 0; i < worst.size() && i < 8; ++i) {
    std::printf("  score %3d  %s\n", worst[i].first, worst[i].second.c_str());
  }

  for (const auto& w : store.warnings) {
    std::printf("warning: %s\n", w.c_str());
  }
  return 0;
}
