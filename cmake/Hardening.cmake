# Correctness-tooling wiring shared by every target in the tree.
#
#   ROOTSTORE_SANITIZE   "" (off) or a comma/semicolon list drawn from
#                        address | undefined | thread, e.g.
#                        -DROOTSTORE_SANITIZE=address,undefined
#   ROOTSTORE_WERROR     ON by default: the strict warning set below is
#                        enforced as errors.  Gate for exotic toolchains.
#   ROOTSTORE_FUZZ       ON by default: builds fuzz/ harnesses and registers
#                        the deterministic corpus-replay ctest cases.
#
# Every CMakeLists.txt calls rs_harden(<target>) on the targets it defines;
# the pre-merge gate (tools/ci_check.sh) builds once with the defaults and
# once with ROOTSTORE_SANITIZE=address,undefined.

set(ROOTSTORE_SANITIZE "" CACHE STRING
    "Sanitizers to enable: address, undefined, thread (comma-separated)")
option(ROOTSTORE_WERROR "Treat warnings as errors" ON)
option(ROOTSTORE_FUZZ "Build fuzz harnesses and corpus replay tests" ON)
option(ROOTSTORE_COVERAGE
       "Instrument for line coverage (gcov/llvm-cov); see tools/check_coverage.sh"
       OFF)
option(ROOTSTORE_THREAD_SAFETY
       "Enable clang -Wthread-safety over the annotated mutexes (clang only; \
see docs/STATIC_ANALYSIS.md)"
       ON)

# Warning set required by the acceptance gate; -Wconversion and -Wshadow
# are deliberate choices for parser code, where silent narrowing of length
# fields and shadowed cursors are classic bug sources.
set(RS_WARNING_FLAGS -Wall -Wextra -Wconversion -Wshadow)
if(ROOTSTORE_WERROR)
  list(APPEND RS_WARNING_FLAGS -Werror)
endif()

# Compile-time lock-discipline proof: clang's Thread Safety Analysis over
# the RS_GUARDED_BY/RS_REQUIRES annotations (src/util/thread_annotations.h).
# gcc has no equivalent analysis — the macros expand to nothing there, so
# the build is skipped gracefully and CI relies on a clang builder for the
# proof (tools/ci_check.sh stage "static concurrency gates").
if(ROOTSTORE_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    list(APPEND RS_WARNING_FLAGS -Wthread-safety)
  else()
    message(STATUS
            "rootstore: -Wthread-safety skipped (${CMAKE_CXX_COMPILER_ID} "
            "has no thread-safety analysis; annotations compile as no-ops)")
  endif()
endif()

set(RS_SANITIZE_FLAGS "")
if(ROOTSTORE_SANITIZE)
  string(REPLACE "," ";" _rs_san_list "${ROOTSTORE_SANITIZE}")
  foreach(_rs_san IN LISTS _rs_san_list)
    if(NOT _rs_san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
              "ROOTSTORE_SANITIZE: unknown sanitizer '${_rs_san}' "
              "(expected address, undefined, or thread)")
    endif()
    if(_rs_san STREQUAL "thread" AND "address" IN_LIST _rs_san_list)
      message(FATAL_ERROR
              "ROOTSTORE_SANITIZE: thread and address are mutually exclusive")
    endif()
    list(APPEND RS_SANITIZE_FLAGS -fsanitize=${_rs_san})
  endforeach()
  # Crash on the first UB report instead of recovering: deterministic CI.
  list(APPEND RS_SANITIZE_FLAGS -fno-omit-frame-pointer
       -fno-sanitize-recover=all)
endif()

# --coverage drives gcc's gcov instrumentation (and clang's gcov-compatible
# mode), producing .gcno/.gcda next to the objects; tools/check_coverage.sh
# aggregates them and enforces the tools/coverage_baseline.txt floor.
set(RS_COVERAGE_FLAGS "")
if(ROOTSTORE_COVERAGE)
  set(RS_COVERAGE_FLAGS --coverage)
endif()

# Applies the strict warning set and any configured sanitizers to a target.
function(rs_harden target)
  target_compile_options(${target} PRIVATE ${RS_WARNING_FLAGS})
  if(RS_SANITIZE_FLAGS)
    target_compile_options(${target} PRIVATE ${RS_SANITIZE_FLAGS})
    target_link_options(${target} PRIVATE ${RS_SANITIZE_FLAGS})
  endif()
  if(RS_COVERAGE_FLAGS)
    target_compile_options(${target} PRIVATE ${RS_COVERAGE_FLAGS})
    target_link_options(${target} PRIVATE ${RS_COVERAGE_FLAGS})
  endif()
endfunction()
