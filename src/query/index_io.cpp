#include "src/query/index_io.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/store/database.h"
#include "src/store/snapshot.h"

namespace rs::query {
namespace {

namespace persist = rs::store::persist;
using persist::ByteReader;
using persist::ByteWriter;
using persist::Loaded;
using persist::LoadError;
using rs::store::IdSet;
using rs::util::Date;

/// Sentinel for an open interval's `removed` date in interval records.
constexpr std::int64_t kOpenSentinel = std::numeric_limits<std::int64_t>::min();
/// Cap on interval records per (provider, scope); the byte-availability
/// check in ByteReader::count is always the binding one, this just keeps
/// the arithmetic obviously safe.
constexpr std::uint64_t kMaxIntervalRecords = std::uint64_t{1} << 36;
/// Fixed-width size of one interval record: id + pad + added + removed.
constexpr std::size_t kIntervalRecordBytes = 4 + 4 + 8 + 8;

using IntervalTable = std::vector<std::vector<TrustInterval>>;

/// Runs for `id`, growing the (possibly trimmed) table as needed.
std::vector<TrustInterval>& runs_grow(IntervalTable& table, std::uint32_t id) {
  if (id >= table.size()) table.resize(static_cast<std::size_t>(id) + 1);
  return table[id];
}

/// Runs for `id` without growing; nullptr when the trimmed table has none.
std::vector<TrustInterval>* runs_at(IntervalTable& table, std::uint32_t id) {
  if (id >= table.size()) return nullptr;
  return &table[id];
}

/// Recomputes one (provider, scope) interval table from its membership
/// sets — the same open/close derivation TrustIndex::build_provider runs.
IntervalTable derive_intervals(const std::vector<Date>& dates,
                               const std::vector<IdSet>& sets,
                               std::size_t universe) {
  IntervalTable expected(universe);
  std::vector<std::optional<Date>> open(universe);
  for (std::size_t k = 0; k < sets.size(); ++k) {
    const IdSet& members = sets[k];
    if (k == 0) {
      for (const std::uint32_t id : members.ids()) open[id] = dates[k];
    } else {
      const IdSet& prev = sets[k - 1];
      for (const std::uint32_t id : members.difference(prev).ids()) {
        open[id] = dates[k];
      }
      for (const std::uint32_t id : prev.difference(members).ids()) {
        expected[id].push_back({*open[id], dates[k]});
        open[id].reset();
      }
    }
  }
  for (std::uint32_t id = 0; id < universe; ++id) {
    if (open[id]) expected[id].push_back({*open[id], std::nullopt});
  }
  return expected;
}

}  // namespace

void TrustIndexIO::grow_interner(
    TrustIndex& index, const std::vector<rs::crypto::Sha256Digest>& fresh) {
  const auto& old = index.interner_.digests();
  std::vector<rs::crypto::Sha256Digest> merged;
  merged.reserve(old.size() + fresh.size());
  std::merge(old.begin(), old.end(), fresh.begin(), fresh.end(),
             std::back_inserter(merged));
  rs::store::CertInterner next(std::move(merged));

  std::vector<std::uint32_t> remap(old.size());
  for (std::size_t i = 0; i < old.size(); ++i) {
    remap[i] = *next.id_of(old[i]);
  }

  for (auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount; ++s) {
      for (auto& set : p.sets[s]) {
        IdSet mapped(next.size());
        for (const std::uint32_t id : set.ids()) mapped.insert(remap[id]);
        set = std::move(mapped);
      }
      auto& table = p.intervals[s];
      std::size_t new_size = 0;
      for (std::size_t id = 0; id < table.size(); ++id) {
        if (!table[id].empty()) new_size = remap[id] + std::size_t{1};
      }
      IntervalTable mapped_table(new_size);
      for (std::size_t id = 0; id < table.size(); ++id) {
        if (!table[id].empty()) {
          mapped_table[remap[id]] = std::move(table[id]);
        }
      }
      table = std::move(mapped_table);
    }
  }
  index.interner_ = std::move(next);
}

// --- serialize --------------------------------------------------------------

std::string TrustIndexIO::serialize(const TrustIndex& index) {
  rs::obs::Span span("persist/serialize");

  ByteWriter interner;
  persist::write_digests(interner, index.interner_.digests());

  ByteWriter providers;
  providers.u64(index.providers_.size());
  for (const auto& p : index.providers_) {
    providers.str(p.name);
    providers.u64(p.dates.size());
    for (const Date d : p.dates) providers.i64(d.days_since_epoch());
    for (const auto& v : p.versions) providers.str(v);
  }

  ByteWriter sets;
  for (const auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount; ++s) {
      for (const auto& set : p.sets[s]) persist::write_id_set(sets, set);
    }
  }

  ByteWriter intervals;
  std::uint64_t total_runs = 0;
  for (const auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount; ++s) {
      const auto& table = p.intervals[s];
      std::uint64_t runs = 0;
      for (const auto& per_cert : table) runs += per_cert.size();
      intervals.u64(runs);
      total_runs += runs;
      for (std::uint32_t id = 0; id < table.size(); ++id) {
        for (const TrustInterval& run : table[id]) {
          intervals.u32(id);
          intervals.u32(0);
          intervals.i64(run.added.days_since_epoch());
          intervals.i64(run.removed ? run.removed->days_since_epoch()
                                    : kOpenSentinel);
        }
      }
    }
  }

  persist::FileBuilder builder;
  builder.add_section(kSectionInterner, std::move(interner).take());
  builder.add_section(kSectionProviders, std::move(providers).take());
  builder.add_section(kSectionSets, std::move(sets).take());
  builder.add_section(kSectionIntervals, std::move(intervals).take());
  std::string image = builder.finish();
  span.set_items(total_runs);
  return image;
}

// --- deserialize ------------------------------------------------------------

persist::Loaded<TrustIndex> TrustIndexIO::deserialize(
    std::span<const std::uint8_t> bytes) {
  using L = Loaded<TrustIndex>;
  rs::obs::Span span("persist/load");

  auto parsed = persist::FileView::parse(bytes);
  if (!parsed.ok()) return parsed.propagate<TrustIndex>();
  const persist::FileView& file = parsed.value();
  if (file.sections().size() != 4 ||
      !file.section(kSectionInterner) || !file.section(kSectionProviders) ||
      !file.section(kSectionSets) || !file.section(kSectionIntervals)) {
    return L::fail(LoadError::kBadSectionTable,
                   "index file must carry exactly sections 1..4");
  }

  TrustIndex index;

  // Section 1: the interner's sorted digest universe.
  ByteReader r1(*file.section(kSectionInterner));
  auto digests = persist::read_digests(r1);
  if (!r1.ok()) return L::fail(r1.failure());
  if (!r1.finished()) {
    return L::fail(LoadError::kTrailingBytes, "interner section");
  }
  const std::size_t universe = digests.size();
  index.interner_ = rs::store::CertInterner(std::move(digests));

  // Section 2: provider names, snapshot dates, version labels.
  ByteReader r2(*file.section(kSectionProviders));
  const std::uint64_t provider_count =
      r2.count(persist::kMaxProviders, 16, "provider");
  index.providers_.reserve(provider_count);
  for (std::uint64_t i = 0; i < provider_count && r2.ok(); ++i) {
    TrustIndex::ProviderData p;
    p.name = r2.str(persist::kMaxNameBytes, "provider name");
    if (r2.ok() && p.name.empty()) {
      r2.fail(LoadError::kBadValue, "empty provider name");
    }
    if (r2.ok() && !index.providers_.empty() &&
        !(index.providers_.back().name < p.name)) {
      r2.fail(LoadError::kBadValue, "provider names not strictly ascending");
    }
    const std::uint64_t date_count =
        r2.count(persist::kMaxDatesPerProvider, 8, "snapshot date");
    if (r2.ok() && date_count == 0) {
      r2.fail(LoadError::kBadValue, "provider with no snapshots");
    }
    p.dates.reserve(date_count);
    for (std::uint64_t k = 0; k < date_count && r2.ok(); ++k) {
      const Date d = Date::from_days(r2.i64());
      if (r2.ok() && !p.dates.empty() && !(p.dates.back() < d)) {
        r2.fail(LoadError::kBadValue,
                "snapshot dates not strictly ascending");
      }
      p.dates.push_back(d);
    }
    p.versions.reserve(date_count);
    for (std::uint64_t k = 0; k < date_count && r2.ok(); ++k) {
      p.versions.push_back(r2.str(persist::kMaxVersionBytes, "version label"));
    }
    index.providers_.push_back(std::move(p));
  }
  if (!r2.ok()) return L::fail(r2.failure());
  if (!r2.finished()) {
    return L::fail(LoadError::kTrailingBytes, "provider section");
  }

  // Section 3: per provider, per scope, per date membership sets.
  ByteReader r3(*file.section(kSectionSets));
  for (auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount && r3.ok(); ++s) {
      p.sets[s].reserve(p.dates.size());
      for (std::size_t k = 0; k < p.dates.size() && r3.ok(); ++k) {
        p.sets[s].push_back(persist::read_id_set(r3, universe));
      }
    }
  }
  if (!r3.ok()) return L::fail(r3.failure());
  if (!r3.finished()) {
    return L::fail(LoadError::kTrailingBytes, "membership section");
  }

  // Section 4: flattened interval records, grouped by (provider, scope),
  // sorted by (cert id, added date).
  ByteReader r4(*file.section(kSectionIntervals));
  std::uint64_t total_runs = 0;
  for (auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount && r4.ok(); ++s) {
      const std::uint64_t run_count =
          r4.count(kMaxIntervalRecords, kIntervalRecordBytes, "interval");
      auto& table = p.intervals[s];
      bool have_prev = false;
      std::uint32_t prev_id = 0;
      std::optional<Date> prev_removed;
      bool prev_open = false;
      for (std::uint64_t k = 0; k < run_count && r4.ok(); ++k) {
        const std::uint32_t id = r4.u32();
        const std::uint32_t reserved = r4.u32();
        const std::int64_t added_days = r4.i64();
        const std::int64_t removed_days = r4.i64();
        if (!r4.ok()) break;
        if (reserved != 0) {
          r4.fail(LoadError::kBadValue, "reserved interval field not zero");
          break;
        }
        if (id >= universe) {
          r4.fail(LoadError::kBadValue,
                  "interval certificate id beyond the universe");
          break;
        }
        TrustInterval run;
        run.added = Date::from_days(added_days);
        if (removed_days != kOpenSentinel) {
          if (removed_days <= added_days) {
            r4.fail(LoadError::kBadValue, "interval removed before added");
            break;
          }
          run.removed = Date::from_days(removed_days);
        }
        if (have_prev) {
          if (id < prev_id) {
            r4.fail(LoadError::kBadValue,
                    "interval records not sorted by certificate id");
            break;
          }
          if (id == prev_id) {
            // Same certificate: runs must be disjoint and date-ordered,
            // and only the last run of a certificate may be open.
            if (prev_open || !prev_removed || !(*prev_removed < run.added)) {
              r4.fail(LoadError::kBadValue,
                      "overlapping or unordered intervals for one "
                      "certificate");
              break;
            }
          }
        }
        have_prev = true;
        prev_id = id;
        prev_removed = run.removed;
        prev_open = !run.removed.has_value();
        runs_grow(table, id).push_back(run);
        ++total_runs;
      }
    }
  }
  if (!r4.ok()) return L::fail(r4.failure());
  if (!r4.finished()) {
    return L::fail(LoadError::kTrailingBytes, "interval section");
  }

  for (std::size_t i = 0; i < index.providers_.size(); ++i) {
    index.by_name_.emplace(index.providers_[i].name, i);
    index.resolutions_ += index.providers_[i].dates.size();
  }
  span.set_items(total_runs);
  auto& reg = rs::obs::Registry::global();
  if (reg.enabled()) {
    reg.counter("persist.bytes_loaded").add(bytes.size());
    reg.counter("persist.indexes_loaded").increment();
  }
  return index;
}

// --- file round trips -------------------------------------------------------

rs::util::Result<std::uint64_t> TrustIndexIO::write_file(
    const TrustIndex& index, const std::string& path) {
  const std::string image = serialize(index);
  auto written = persist::atomic_write_file(path, image);
  if (written.ok()) {
    auto& reg = rs::obs::Registry::global();
    if (reg.enabled()) {
      reg.counter("persist.bytes_written").add(written.value());
    }
  }
  return written;
}

persist::Loaded<TrustIndex> TrustIndexIO::load_file(const std::string& path) {
  // The mapping lives only for the duration of the parse; deserialize
  // copies into owned flat arrays, so the returned index outlives it.
  auto mapped = persist::MappedFile::open(path);
  if (!mapped.ok()) return mapped.propagate<TrustIndex>();
  return deserialize(mapped.value().bytes());
}

// --- deep verification ------------------------------------------------------

persist::Loaded<IndexFileStats> TrustIndexIO::verify(
    std::span<const std::uint8_t> bytes) {
  using L = Loaded<IndexFileStats>;
  auto loaded = deserialize(bytes);
  if (!loaded.ok()) return loaded.propagate<IndexFileStats>();
  const TrustIndex& index = loaded.value();
  const std::size_t universe = index.interner_.size();

  IndexFileStats stats;
  stats.bytes = bytes.size();
  stats.certificates = universe;
  stats.providers = index.providers_.size();
  stats.resolution_points = index.resolutions_;

  static const std::vector<TrustInterval> kNoRuns;
  for (const auto& p : index.providers_) {
    for (std::size_t s = 0; s < kScopeCount; ++s) {
      const IntervalTable expected =
          derive_intervals(p.dates, p.sets[s], universe);
      const auto& table = p.intervals[s];
      for (std::size_t id = 0; id < universe; ++id) {
        const auto& got = id < table.size() ? table[id] : kNoRuns;
        if (got != expected[id]) {
          return L::fail(LoadError::kBadValue,
                         "interval table for provider '" + p.name +
                             "' disagrees with its membership sets "
                             "(internally inconsistent file)");
        }
        stats.intervals += got.size();
      }
    }
  }
  return stats;
}

persist::Loaded<IndexFileStats> TrustIndexIO::verify_file(
    const std::string& path) {
  auto mapped = persist::MappedFile::open(path);
  if (!mapped.ok()) return mapped.propagate<IndexFileStats>();
  return verify(mapped.value().bytes());
}

// --- incremental append -----------------------------------------------------

rs::util::Result<bool> TrustIndexIO::append_snapshot(
    TrustIndex& index, const rs::store::Snapshot& snapshot) {
  using R = rs::util::Result<bool>;
  rs::obs::Span span("persist/append_snapshot");
  if (snapshot.provider.empty()) {
    return R::err("snapshot carries no provider name");
  }

  // Grow the universe first so every entry interns.  The dense-ID remap
  // is monotonic, so existing sets and intervals stay canonically ordered.
  std::vector<rs::crypto::Sha256Digest> fresh;
  for (const auto& entry : snapshot.entries) {
    const auto fp = entry.certificate->sha256();
    if (!index.interner_.id_of(fp)) fresh.push_back(fp);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  if (!fresh.empty()) grow_interner(index, fresh);
  const std::size_t universe = index.interner_.size();

  // Locate (or create, keeping name order) the provider's lane.
  std::size_t pi;
  const auto it = index.by_name_.find(snapshot.provider);
  if (it == index.by_name_.end()) {
    pi = 0;
    while (pi < index.providers_.size() &&
           index.providers_[pi].name < snapshot.provider) {
      ++pi;
    }
    index.providers_.insert(
        index.providers_.begin() + static_cast<std::ptrdiff_t>(pi),
        TrustIndex::ProviderData{});
    index.providers_[pi].name = snapshot.provider;
    index.by_name_.clear();
    for (std::size_t i = 0; i < index.providers_.size(); ++i) {
      index.by_name_.emplace(index.providers_[i].name, i);
    }
  } else {
    pi = it->second;
  }
  auto& p = index.providers_[pi];

  if (!p.dates.empty() && snapshot.date < p.dates.back()) {
    return R::err("snapshot for " + snapshot.provider + " dated " +
                  snapshot.date.to_string() +
                  " precedes the indexed coverage ending " +
                  p.dates.back().to_string() +
                  "; incremental append must be chronological");
  }
  const bool replace = !p.dates.empty() && snapshot.date == p.dates.back();

  const auto inconsistent = [&]() {
    return R::err("index intervals disagree with membership sets for " +
                  snapshot.provider +
                  " (corrupt index; run `rootstore index verify`)");
  };

  if (replace) {
    // Equal-dated snapshots collapse to the later one (the full build's
    // ProviderHistory::at semantics): un-apply the provider's newest
    // snapshot before appending the replacement.
    const Date d = p.dates.back();
    for (std::size_t s = 0; s < kScopeCount; ++s) {
      auto& sets = p.sets[s];
      auto& table = p.intervals[s];
      const IdSet prev =
          sets.size() >= 2 ? sets[sets.size() - 2] : IdSet();
      const IdSet& cur = sets.back();
      for (const std::uint32_t id : cur.difference(prev).ids()) {
        auto* runs = runs_at(table, id);
        if (runs == nullptr || runs->empty() || runs->back().added != d ||
            runs->back().removed.has_value()) {
          return inconsistent();
        }
        runs->pop_back();
      }
      for (const std::uint32_t id : prev.difference(cur).ids()) {
        auto* runs = runs_at(table, id);
        if (runs == nullptr || runs->empty() ||
            runs->back().removed != std::optional<Date>(d)) {
          return inconsistent();
        }
        runs->back().removed.reset();
      }
      sets.pop_back();
    }
    p.dates.pop_back();
    p.versions.pop_back();
    index.resolutions_ -= 1;
  }

  for (std::size_t s = 0; s < kScopeCount; ++s) {
    const auto scope = static_cast<Scope>(s);
    IdSet members(universe);
    for (const auto& entry : snapshot.entries) {
      if (!scope_matches(entry, scope)) continue;
      members.insert(*index.interner_.id_of(entry.certificate->sha256()));
    }
    auto& sets = p.sets[s];
    auto& table = p.intervals[s];
    const IdSet prev = sets.empty() ? IdSet() : sets.back();
    for (const std::uint32_t id : members.difference(prev).ids()) {
      runs_grow(table, id).push_back({snapshot.date, std::nullopt});
    }
    for (const std::uint32_t id : prev.difference(members).ids()) {
      auto* runs = runs_at(table, id);
      if (runs == nullptr || runs->empty() ||
          runs->back().removed.has_value()) {
        return inconsistent();
      }
      runs->back().removed = snapshot.date;
    }
    sets.push_back(std::move(members));
  }
  p.dates.push_back(snapshot.date);
  p.versions.push_back(snapshot.version);
  index.resolutions_ += 1;

  auto& reg = rs::obs::Registry::global();
  if (reg.enabled()) reg.counter("persist.snapshots_appended").increment();
  return true;
}

rs::util::Result<std::size_t> TrustIndexIO::append_from_database(
    TrustIndex& index, const rs::store::StoreDatabase& db) {
  std::size_t appended = 0;
  for (const auto& [name, history] : db.histories()) {
    if (history.empty()) continue;
    std::optional<Date> covered;
    const auto it = index.by_name_.find(name);
    if (it != index.by_name_.end()) {
      covered = index.providers_[it->second].dates.back();
    }
    for (const auto& snapshot : history.snapshots()) {
      // Only strictly newer snapshots: anything on or before the indexed
      // coverage is already represented (equal dates collapsed at build).
      if (covered && !(*covered < snapshot.date)) continue;
      auto ok = append_snapshot(index, snapshot);
      if (!ok.ok()) return ok.propagate<std::size_t>();
      ++appended;
    }
  }
  return appended;
}

}  // namespace rs::query
