#include "src/query/engine.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/landscape/index_view.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/util/hex.h"
#include "src/verify/temporal.h"
#include "src/verify/verify.h"
#include "src/x509/certificate.h"

namespace rs::query {
namespace {

/// Incremental writer for the flat response objects.  Field order is the
/// call order, so every response shape is fixed at its call site.
class ResponseWriter {
 public:
  ResponseWriter() { out_.push_back('{'); }

  void field(std::string_view key, std::string_view value) {
    key_only(key);
    append_json_string(out_, value);
  }
  void field_uint(std::string_view key, std::uint64_t value) {
    key_only(key);
    out_ += std::to_string(value);
  }
  void field_bool(std::string_view key, bool value) {
    key_only(key);
    out_ += value ? "true" : "false";
  }
  void field_null(std::string_view key) {
    key_only(key);
    out_ += "null";
  }
  void field_strings(std::string_view key,
                     const std::vector<std::string>& values) {
    key_only(key);
    out_.push_back('[');
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_.push_back(',');
      append_json_string(out_, values[i]);
    }
    out_.push_back(']');
  }
  /// Opens a raw value position; the caller appends JSON via raw().
  void key_only(std::string_view key) {
    if (out_.size() > 1) out_.push_back(',');
    append_json_string(out_, key);
    out_.push_back(':');
  }
  std::string& raw() { return out_; }

  std::string finish() {
    out_.push_back('}');
    return std::move(out_);
  }

 private:
  std::string out_;
};

std::string fp_hex(const rs::crypto::Sha256Digest& fp) {
  return rs::util::hex_encode(fp);
}

/// Serializes an IdSet as a sorted array of hex fingerprints.
void append_roots(ResponseWriter& w, std::string_view key,
                  const rs::store::IdSet& ids,
                  const rs::store::CertInterner& interner) {
  w.key_only(key);
  std::string& out = w.raw();
  out.push_back('[');
  bool first = true;
  for (const std::uint32_t id : ids.ids()) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, fp_hex(interner.digest_of(id)));
  }
  out.push_back(']');
}

/// Common echo prefix: op + status.
ResponseWriter begin(const Request& r, std::string_view status) {
  ResponseWriter w;
  w.field("op", to_string(r.op));
  w.field("status", status);
  return w;
}

std::string not_covered(const Request& r, std::string_view provider,
                        const std::optional<ProviderCoverage>& coverage,
                        const std::function<void(ResponseWriter&)>& echo) {
  ResponseWriter w = begin(r, "not_covered");
  echo(w);
  w.field("provider", provider);
  if (coverage) {
    w.field("coverage_begin", coverage->first.to_string());
    w.field("coverage_end", coverage->last.to_string());
  }
  return w.finish();
}

}  // namespace

std::string error_response(std::string_view code, std::string_view message) {
  ResponseWriter w;
  w.field("status", "error");
  w.field("code", code);
  w.field("message", message);
  return w.finish();
}

bool QueryEngine::is_error_response(std::string_view response) noexcept {
  constexpr std::string_view kPrefix = "{\"status\":\"error\"";
  return response.substr(0, kPrefix.size()) == kPrefix;
}

QueryEngine::QueryEngine(const rs::store::StoreDatabase& db,
                         std::vector<rs::synth::UserAgentGroup> agents,
                         rs::exec::ThreadPool* build_pool)
    : index_(TrustIndex::build(db, rs::store::CertInterner::from_database(db),
                               build_pool)),
      agents_(std::move(agents)) {}

QueryEngine::QueryEngine(TrustIndex index,
                         std::vector<rs::synth::UserAgentGroup> agents)
    : index_(std::move(index)), agents_(std::move(agents)) {}

std::string batch_response(const std::vector<std::string>& responses) {
  std::string out = "{\"op\":\"batch\",\"status\":\"ok\",\"count\":";
  out += std::to_string(responses.size());
  out += ",\"responses\":[";
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += responses[i];
  }
  out += "]}";
  return out;
}

std::string QueryEngine::handle_json(std::string_view line) const {
  if (looks_like_batch(line)) {
    auto items = parse_batch_request(line);
    if (!items.ok()) return error_response("bad_request", items.error());
    std::vector<std::string> responses;
    responses.reserve(items.value().size());
    for (const std::string_view item : items.value()) {
      // One level only: a batch inside a batch errors in its own slot.
      responses.push_back(
          looks_like_batch(item)
              ? error_response("bad_request", "batch requests may not nest")
              : handle_json(item));
    }
    return batch_response(responses);
  }
  auto parsed = parse_request(line);
  if (!parsed.ok()) return error_response("bad_request", parsed.error());
  return handle(parsed.value());
}

std::string QueryEngine::handle(const Request& request) const {
  switch (request.op) {
    case Op::kIsTrusted: return handle_is_trusted(request);
    case Op::kProvidersTrusting: return handle_providers_trusting(request);
    case Op::kStoreAt: return handle_store_at(request);
    case Op::kDiff: return handle_diff(request);
    case Op::kAgentStore: return handle_agent_store(request);
    case Op::kLineage: return handle_lineage(request);
    case Op::kStats: return handle_stats();
    case Op::kVerifyChain: return handle_verify_chain(request);
    case Op::kFirstRejectedAt: return handle_first_rejected_at(request);
    case Op::kAgreementAt: return handle_agreement_at(request);
    case Op::kCtCoverage: return handle_ct_coverage(request);
    case Op::kServerStats:
      return error_response(
          "not_serving",
          "server_stats is answered by `rootstore serve`, not the engine");
    case Op::kReloadIndex:
      return error_response(
          "not_serving",
          "reload_index is answered by `rootstore serve`, not the engine");
  }
  return error_response("bad_request", "unhandled op");
}

std::string QueryEngine::handle_is_trusted(const Request& r) const {
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  const auto echo = [&](ResponseWriter& w) {
    w.field("fp", fp_hex(*r.fp));
    w.field("date", r.date->to_string());
    w.field("scope", to_string(r.scope));
  };
  const TrustAnswer answer =
      index_.is_trusted(*r.fp, *r.provider, *r.date, r.scope);
  if (answer == TrustAnswer::kNotCovered) {
    return not_covered(r, *r.provider, index_.coverage(*r.provider), echo);
  }
  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", *r.provider);
  w.field_bool("trusted", answer == TrustAnswer::kTrusted);
  return w.finish();
}

std::string QueryEngine::handle_providers_trusting(const Request& r) const {
  std::vector<std::string> skipped;
  const auto trusting =
      index_.providers_trusting(*r.fp, *r.date, r.scope, &skipped);
  ResponseWriter w = begin(r, "ok");
  w.field("fp", fp_hex(*r.fp));
  w.field("date", r.date->to_string());
  w.field("scope", to_string(r.scope));
  w.field_strings("providers", trusting);
  w.field_strings("not_covered", skipped);
  return w.finish();
}

std::string QueryEngine::handle_store_at(const Request& r) const {
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  const auto echo = [&](ResponseWriter& w) {
    w.field("date", r.date->to_string());
    w.field("scope", to_string(r.scope));
  };
  const auto view = index_.store_at(*r.provider, *r.date, r.scope);
  if (!view) {
    return not_covered(r, *r.provider, index_.coverage(*r.provider), echo);
  }
  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", view->provider);
  w.field("snapshot_date", view->snapshot_date.to_string());
  w.field("version", view->version);
  w.field_uint("count", view->roots->size());
  append_roots(w, "roots", *view->roots, index_.interner());
  return w.finish();
}

std::string QueryEngine::handle_diff(const Request& r) const {
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  const auto echo = [&](ResponseWriter& w) {
    w.field("date_a", r.date_a->to_string());
    w.field("date_b", r.date_b->to_string());
    w.field("scope", to_string(r.scope));
  };
  const auto delta = index_.diff(*r.provider, *r.date_a, *r.date_b, r.scope);
  if (!delta) {
    return not_covered(r, *r.provider, index_.coverage(*r.provider), echo);
  }
  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", delta->from.provider);
  w.field("snapshot_a", delta->from.snapshot_date.to_string());
  w.field("snapshot_b", delta->to.snapshot_date.to_string());
  append_roots(w, "added", delta->added, index_.interner());
  append_roots(w, "removed", delta->removed, index_.interner());
  return w.finish();
}

std::string QueryEngine::handle_agent_store(const Request& r) const {
  // Attribution (Table 1): match rows by agent name, narrowed by OS when
  // given; the answer must resolve to exactly one collected provider.
  std::vector<const rs::synth::UserAgentGroup*> matches;
  for (const auto& row : agents_) {
    if (row.agent != *r.user_agent) continue;
    if (r.os && row.os != *r.os) continue;
    matches.push_back(&row);
  }
  if (matches.empty()) {
    return error_response("unknown_agent",
                          "no Table 1 row for user agent '" + *r.user_agent +
                              (r.os ? "' on OS '" + *r.os + "'" : "'"));
  }
  std::vector<std::string> providers;
  for (const auto* row : matches) {
    if (!row->included || row->provider.empty()) continue;
    if (std::find(providers.begin(), providers.end(), row->provider) ==
        providers.end()) {
      providers.push_back(row->provider);
    }
  }
  if (providers.empty()) {
    return error_response("agent_not_covered",
                          "no root store history collected for user agent '" +
                              *r.user_agent + "'");
  }
  if (providers.size() > 1) {
    std::sort(providers.begin(), providers.end());
    std::string list;
    for (const auto& p : providers) {
      if (!list.empty()) list += ", ";
      list += p;
    }
    return error_response("ambiguous_agent",
                          "user agent '" + *r.user_agent +
                              "' maps to several providers (" + list +
                              "); disambiguate with the 'os' field");
  }
  const std::string& provider = providers.front();

  const auto echo = [&](ResponseWriter& w) {
    w.field("user_agent", *r.user_agent);
    if (r.os) w.field("os", *r.os);
    w.field("date", r.date->to_string());
    w.field("scope", to_string(r.scope));
  };
  if (!index_.has_provider(provider)) {
    return error_response("unknown_provider",
                          "attributed provider '" + provider +
                              "' has no history in the dataset");
  }
  const auto view = index_.store_at(provider, *r.date, r.scope);
  if (!view) {
    return not_covered(r, provider, index_.coverage(provider), echo);
  }
  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", view->provider);
  w.field("snapshot_date", view->snapshot_date.to_string());
  w.field("version", view->version);
  w.field_uint("count", view->roots->size());
  append_roots(w, "roots", *view->roots, index_.interner());
  return w.finish();
}

std::string QueryEngine::handle_lineage(const Request& r) const {
  const auto spans = index_.lineage(*r.fp, r.scope);
  ResponseWriter w = begin(r, "ok");
  w.field("fp", fp_hex(*r.fp));
  w.field("scope", to_string(r.scope));
  w.key_only("spans");
  std::string& out = w.raw();
  out.push_back('[');
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"provider\":";
    append_json_string(out, spans[i].provider);
    out += ",\"added\":";
    append_json_string(out, spans[i].interval.added.to_string());
    out += ",\"removed\":";
    if (spans[i].interval.removed) {
      append_json_string(out, spans[i].interval.removed->to_string());
    } else {
      out += "null";
    }
    out.push_back('}');
  }
  out.push_back(']');
  return w.finish();
}

namespace {

/// The leaf plus the pool certificates that parsed; unparseable pool
/// entries are skipped (and counted), a broken leaf fails the request.
struct ParsedChain {
  rs::x509::Certificate leaf;
  std::vector<rs::x509::Certificate> pool;
  std::size_t pool_unparsed = 0;
};

rs::util::Result<ParsedChain> parse_chain(const Request& r) {
  using R = rs::util::Result<ParsedChain>;
  auto leaf = rs::x509::Certificate::parse(*r.leaf);
  if (!leaf.ok()) {
    return R::err("field 'leaf' is not a DER certificate: " + leaf.error());
  }
  ParsedChain chain{std::move(leaf).take(), {}, 0};
  chain.pool.reserve(r.pool.size());
  for (const auto& der : r.pool) {
    auto cert = rs::x509::Certificate::parse(der);
    if (!cert.ok()) {
      ++chain.pool_unparsed;
      continue;
    }
    chain.pool.push_back(std::move(cert).take());
  }
  return chain;
}

rs::verify::OracleAnswer to_oracle(TrustAnswer a) noexcept {
  switch (a) {
    case TrustAnswer::kTrusted: return rs::verify::OracleAnswer::kYes;
    case TrustAnswer::kUntrusted: return rs::verify::OracleAnswer::kNo;
    case TrustAnswer::kNotCovered: return rs::verify::OracleAnswer::kNotCovered;
  }
  return rs::verify::OracleAnswer::kNo;
}

/// Adapts the temporal index to the verifier's two questions.  `index` and
/// `provider` must outlive the oracle (both live for the handler call).
rs::verify::TrustOracle make_oracle(const TrustIndex& index,
                                    const std::string& provider, Scope scope) {
  rs::verify::TrustOracle oracle;
  oracle.present = [&index, &provider](const rs::crypto::Sha256Digest& fp,
                                       rs::util::Date d) {
    return to_oracle(index.is_trusted(fp, provider, d, Scope::kPresent));
  };
  oracle.anchor = [&index, &provider, scope](
                      const rs::crypto::Sha256Digest& fp, rs::util::Date d) {
    return to_oracle(index.is_trusted(fp, provider, d, scope));
  };
  return oracle;
}

/// The EKU a scope demands of the non-anchor chain certificates; kPresent
/// asks only for membership, so it imposes none.
std::optional<rs::asn1::Oid> eku_for_scope(Scope scope) {
  switch (scope) {
    case Scope::kTls: return rs::asn1::oids::eku_server_auth();
    case Scope::kEmail: return rs::asn1::oids::eku_email_protection();
    case Scope::kCode: return rs::asn1::oids::eku_code_signing();
    case Scope::kPresent: return std::nullopt;
  }
  return std::nullopt;
}

void append_cert_path(std::string& out,
                      const std::vector<const rs::x509::Certificate*>& certs) {
  out.push_back('[');
  for (std::size_t i = 0; i < certs.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, fp_hex(certs[i]->sha256()));
  }
  out.push_back(']');
}

}  // namespace

std::string QueryEngine::handle_verify_chain(const Request& r) const {
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  auto chain = parse_chain(r);
  if (!chain.ok()) return error_response("bad_certificate", chain.error());
  const auto echo = [&](ResponseWriter& w) {
    w.field("fp", fp_hex(chain.value().leaf.sha256()));
    w.field("date", r.date->to_string());
    w.field("scope", to_string(r.scope));
  };
  const auto cov = index_.coverage(*r.provider);
  if (!cov || *r.date < cov->first || *r.date > cov->last) {
    return not_covered(r, *r.provider, cov, echo);
  }

  std::vector<const rs::x509::Certificate*> pool;
  pool.reserve(chain.value().pool.size());
  for (const auto& cert : chain.value().pool) pool.push_back(&cert);
  const auto oracle = make_oracle(index_, *r.provider, r.scope);
  const rs::verify::VerifyResult result = rs::verify::verify_chain(
      chain.value().leaf, pool, *r.date, oracle, eku_for_scope(r.scope));

  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", *r.provider);
  w.field("verdict", result.accepted ? "accepted" : "rejected");
  w.field("reason", rs::verify::to_string(result.reason));
  w.key_only("path");
  if (const auto* path = result.accepted_path()) {
    append_cert_path(w.raw(), path->certs);
  } else {
    w.raw() += "[]";
  }
  w.key_only("candidates");
  std::string& out = w.raw();
  out.push_back('[');
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"path\":";
    append_cert_path(out, result.candidates[i].certs);
    out += ",\"status\":";
    append_json_string(out, rs::verify::to_string(result.candidates[i].status));
    out += ",\"fail_index\":";
    out += std::to_string(result.candidates[i].fail_index);
    out.push_back('}');
  }
  out.push_back(']');
  w.field_uint("pool_size", chain.value().pool.size());
  w.field_uint("pool_unparsed", chain.value().pool_unparsed);
  return w.finish();
}

std::string QueryEngine::handle_first_rejected_at(const Request& r) const {
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  auto chain = parse_chain(r);
  if (!chain.ok()) return error_response("bad_certificate", chain.error());
  const auto echo = [&](ResponseWriter& w) {
    w.field("fp", fp_hex(chain.value().leaf.sha256()));
    w.field("scope", to_string(r.scope));
  };
  const auto cov = index_.coverage(*r.provider);
  if (!cov) return not_covered(r, *r.provider, cov, echo);

  std::vector<const rs::x509::Certificate*> all;
  all.reserve(chain.value().pool.size() + 1);
  all.push_back(&chain.value().leaf);
  for (const auto& cert : chain.value().pool) all.push_back(&cert);
  const auto snapshots = index_.snapshot_dates(*r.provider);
  const auto breakpoints =
      rs::verify::flip_breakpoints(snapshots, all, cov->first, cov->last);

  std::vector<const rs::x509::Certificate*> pool(all.begin() + 1, all.end());
  const auto oracle = make_oracle(index_, *r.provider, r.scope);
  const auto eku = eku_for_scope(r.scope);
  const rs::verify::FlipScan scan = rs::verify::scan_first_rejected(
      breakpoints, [&](rs::util::Date d) {
        return rs::verify::verify_chain(chain.value().leaf, pool, d, oracle,
                                        eku);
      });

  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", *r.provider);
  if (scan.accepted_from) {
    w.field("accepted_from", scan.accepted_from->to_string());
  } else {
    w.field_null("accepted_from");
  }
  if (scan.first_rejected) {
    w.field("first_rejected", scan.first_rejected->to_string());
    w.field("reason", rs::verify::to_string(scan.flip_reason));
  } else {
    w.field_null("first_rejected");
    w.field_null("reason");
  }
  w.field_uint("evaluated", scan.evaluated);
  w.field("coverage_begin", cov->first.to_string());
  w.field("coverage_end", cov->last.to_string());
  return w.finish();
}

std::string QueryEngine::handle_agreement_at(const Request& r) const {
  // Total over every input: providers whose coverage excludes the date are
  // listed in not_covered, and zero covered providers is still "ok" with
  // empty arrays (the empty-universe agreement convention scores 1.0).
  const auto view = rs::landscape::presence_at(index_, *r.date, r.scope);
  const auto summary = rs::landscape::agreement_summary(view.sets);
  ResponseWriter w = begin(r, "ok");
  w.field("date", r.date->to_string());
  w.field("scope", to_string(r.scope));
  w.field_strings("providers", view.providers);
  w.key_only("sizes");
  {
    std::string& out = w.raw();
    out.push_back('[');
    for (std::size_t i = 0; i < summary.sizes.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(summary.sizes[i]);
    }
    out.push_back(']');
  }
  w.key_only("exclusive");
  {
    std::string& out = w.raw();
    out.push_back('[');
    for (std::size_t i = 0; i < summary.exclusive_counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(summary.exclusive_counts[i]);
    }
    out.push_back(']');
  }
  w.field_uint("union_size", summary.union_size);
  w.field_uint("intersection_size", summary.intersection_size);
  w.field("global_agreement",
          rs::landscape::format_agreement(summary.intersection_size,
                                          summary.union_size));
  w.key_only("pairs");
  {
    std::string& out = w.raw();
    out.push_back('[');
    for (std::size_t i = 0; i < summary.pairs.size(); ++i) {
      const auto& p = summary.pairs[i];
      if (i > 0) out.push_back(',');
      out += "{\"a\":";
      append_json_string(out, view.providers[p.a]);
      out += ",\"b\":";
      append_json_string(out, view.providers[p.b]);
      out += ",\"intersection\":";
      out += std::to_string(p.intersection);
      out += ",\"union\":";
      out += std::to_string(p.union_size);
      out += ",\"agreement\":";
      append_json_string(
          out, rs::landscape::format_agreement(p.intersection, p.union_size));
      out.push_back('}');
    }
    out.push_back(']');
  }
  w.field_strings("not_covered", view.not_covered);
  return w.finish();
}

std::string QueryEngine::handle_ct_coverage(const Request& r) const {
  // Treats `provider` as "the log": how much of every OTHER store does it
  // cover at the date, how many roots does only the log carry, and how far
  // does its adoption of each store's roots lag (history-wide, per root
  // present in both)?  Any provider works as the log — the CT-specific
  // semantics come from the dataset (synth ct_log providers), not the op.
  if (!index_.has_provider(*r.provider)) {
    return error_response("unknown_provider",
                          "no history for provider '" + *r.provider + "'");
  }
  const auto echo = [&](ResponseWriter& w) {
    w.field("date", r.date->to_string());
    w.field("scope", to_string(r.scope));
  };
  const auto log_view = index_.store_at(*r.provider, *r.date, r.scope);
  if (!log_view) {
    return not_covered(r, *r.provider, index_.coverage(*r.provider), echo);
  }

  // Presence of every other provider at the date (name order).
  std::vector<std::string> covered_names;
  std::vector<const rs::store::IdSet*> covered_sets;
  std::vector<std::string> skipped;
  for (const auto& name : index_.providers()) {
    if (name == *r.provider) continue;
    const auto resolved = index_.store_at(name, *r.date, r.scope);
    if (resolved) {
      covered_names.push_back(name);
      covered_sets.push_back(resolved->roots);
    } else {
      skipped.push_back(name);
    }
  }
  const auto rows = rs::landscape::coverage_rows(*log_view->roots,
                                                 covered_sets);
  const std::size_t exclusive =
      rs::landscape::log_exclusive_count(*log_view->roots, covered_sets);

  // History-wide adoption lag: first-seen date in the log minus first-seen
  // date in the store, over roots both ever carry.
  const auto first_seen = rs::landscape::first_seen_tables(index_, r.scope);
  const auto all_names = index_.providers();
  std::size_t log_idx = 0;
  for (std::size_t i = 0; i < all_names.size(); ++i) {
    if (all_names[i] == *r.provider) log_idx = i;
  }

  ResponseWriter w = begin(r, "ok");
  echo(w);
  w.field("provider", log_view->provider);
  w.field("snapshot_date", log_view->snapshot_date.to_string());
  w.field_uint("log_size", log_view->roots->size());
  w.field_uint("log_exclusive", exclusive);
  w.key_only("coverage");
  {
    std::string& out = w.raw();
    out.push_back('[');
    for (std::size_t i = 0; i < covered_names.size(); ++i) {
      std::size_t store_idx = 0;
      for (std::size_t j = 0; j < all_names.size(); ++j) {
        if (all_names[j] == covered_names[i]) store_idx = j;
      }
      const auto lag = rs::landscape::adoption_lag(first_seen[log_idx],
                                                   first_seen[store_idx]);
      if (i > 0) out.push_back(',');
      out += "{\"provider\":";
      append_json_string(out, covered_names[i]);
      out += ",\"size\":";
      out += std::to_string(rows[i].store_size);
      out += ",\"covered\":";
      out += std::to_string(rows[i].covered);
      out += ",\"fraction\":";
      append_json_string(
          out, rs::landscape::format_ratio(
                   static_cast<double>(rows[i].covered),
                   static_cast<double>(rows[i].store_size), 4));
      out += ",\"matched\":";
      out += std::to_string(lag.matched);
      out += ",\"mean_lag_days\":";
      if (lag.matched == 0) {
        out += "null";
      } else {
        append_json_string(
            out, rs::landscape::format_ratio(
                     static_cast<double>(lag.total_lag_days),
                     static_cast<double>(lag.matched), 1));
      }
      out.push_back('}');
    }
    out.push_back(']');
  }
  w.field_strings("not_covered", skipped);
  return w.finish();
}

std::string QueryEngine::handle_stats() const {
  ResponseWriter w;
  w.field("op", "stats");
  w.field("status", "ok");
  w.field_uint("providers", index_.provider_count());
  w.field_uint("resolution_points", index_.resolution_point_count());
  w.field_uint("certificates", index_.interner().size());
  w.key_only("coverage");
  std::string& out = w.raw();
  out.push_back('{');
  bool first = true;
  for (const auto& name : index_.providers()) {
    const auto cov = index_.coverage(name);
    if (!cov) continue;
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":[";
    append_json_string(out, cov->first.to_string());
    out.push_back(',');
    append_json_string(out, cov->last.to_string());
    out.push_back(']');
  }
  out.push_back('}');
  return w.finish();
}

}  // namespace rs::query
