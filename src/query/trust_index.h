// The temporal trust index: point-in-time queries over snapshot history.
//
// The batch pipeline answers "who trusts root R on date D" by rerunning
// whole-table analyses.  TrustIndex compiles the StoreDatabase once into
// two read-only structures and then answers each query in O(log n):
//
//   * Per (provider, scope, certificate): a date-ordered list of half-open
//     presence intervals [added, removed) derived from consecutive
//     snapshots.  A root removed and later re-added yields two disjoint
//     intervals — never one merged span.
//   * Per provider: the distinct snapshot dates plus an interned IdSet of
//     members per scope per date, resolving any query date to the latest
//     snapshot on or before it (ProviderHistory::at semantics).
//
// Coverage is explicit: a provider only answers for dates inside
// [first snapshot, last snapshot]; anything earlier or later is a typed
// kNotCovered, never a silent `false` (the dataset simply doesn't know).
//
// The index is immutable after build() and safe for concurrent readers —
// the serving layer fans queries across a thread pool with no locking.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/query/request.h"
#include "src/store/database.h"
#include "src/store/id_set.h"
#include "src/store/interner.h"
#include "src/util/date.h"

namespace rs::exec {
class ThreadPool;
}

namespace rs::query {

/// A point query's three-valued answer.
enum class TrustAnswer : std::uint8_t { kTrusted, kUntrusted, kNotCovered };

/// True when `entry` belongs to the membership set of `scope` (TLS/email/
/// code anchors, or bare presence).  Shared by the index build and the
/// incremental append path in index_io.cpp.
bool scope_matches(const rs::store::TrustEntry& entry, Scope scope) noexcept;

const char* to_string(TrustAnswer a) noexcept;

/// One maximal presence run.  `removed` is the date of the first snapshot
/// without the certificate (exclusive bound); nullopt means it was still
/// present in the provider's newest snapshot.
struct TrustInterval {
  rs::util::Date added;
  std::optional<rs::util::Date> removed;

  friend bool operator==(const TrustInterval&, const TrustInterval&) = default;
};

/// One lineage entry: an interval in one provider's history.
struct LineageSpan {
  std::string provider;
  TrustInterval interval;
};

/// A provider's date coverage window (inclusive on both ends).
struct ProviderCoverage {
  rs::util::Date first;
  rs::util::Date last;
};

/// The resolved store for (provider, date, scope).  Views borrow from the
/// index and stay valid for its lifetime.
struct StoreView {
  std::string_view provider;
  std::string_view version;       // provider-native version label
  rs::util::Date snapshot_date;   // the snapshot the date resolved to
  const rs::store::IdSet* roots = nullptr;
};

/// Membership delta between two resolved snapshots of one provider.
struct StoreDiff {
  StoreView from;
  StoreView to;
  rs::store::IdSet added;    // in `to` but not `from`
  rs::store::IdSet removed;  // in `from` but not `to`
};

class TrustIndex {
 public:
  TrustIndex() = default;

  /// Compiles the index: O(history) work, parallelized per provider on
  /// `pool` when given (results are identical for any worker count — each
  /// provider's lane is independent and deterministic).  The interner must
  /// cover the database universe (CertInterner::from_database does).
  static TrustIndex build(const rs::store::StoreDatabase& db,
                          const rs::store::CertInterner& interner,
                          rs::exec::ThreadPool* pool = nullptr);

  const rs::store::CertInterner& interner() const noexcept {
    return interner_;
  }

  std::vector<std::string> providers() const;
  std::size_t provider_count() const noexcept { return providers_.size(); }
  /// Distinct resolution dates summed over providers.
  std::size_t resolution_point_count() const noexcept { return resolutions_; }
  bool has_provider(std::string_view provider) const;
  std::optional<ProviderCoverage> coverage(std::string_view provider) const;
  /// The provider's distinct snapshot dates, ascending; empty for unknown
  /// providers.  The temporal verify path (first_rejected_at) sweeps these
  /// as verdict breakpoints — between consecutive snapshots the resolved
  /// store, and thus the anchor set, cannot change.
  std::vector<rs::util::Date> snapshot_dates(std::string_view provider) const;

  /// Point lookup, O(log intervals).  Unknown providers answer kNotCovered
  /// (the engine layer distinguishes them via has_provider for a typed
  /// error); unknown certificates inside coverage answer kUntrusted.
  TrustAnswer is_trusted(const rs::crypto::Sha256Digest& fp,
                         std::string_view provider, rs::util::Date date,
                         Scope scope) const;

  /// Providers answering kTrusted at `date` (name order).  Providers whose
  /// coverage excludes `date` are reported in `not_covered` when non-null.
  std::vector<std::string> providers_trusting(
      const rs::crypto::Sha256Digest& fp, rs::util::Date date, Scope scope,
      std::vector<std::string>* not_covered = nullptr) const;

  /// Resolved store view; nullopt when the provider is unknown or the date
  /// is outside its coverage.
  std::optional<StoreView> store_at(std::string_view provider,
                                    rs::util::Date date, Scope scope) const;

  /// Delta between the stores resolved at `date_a` and `date_b`; nullopt
  /// when either date is uncovered or the provider is unknown.
  std::optional<StoreDiff> diff(std::string_view provider,
                                rs::util::Date date_a, rs::util::Date date_b,
                                Scope scope) const;

  /// Every presence interval of `fp` across all providers, provider-name
  /// order then ascending `added`.  Unknown certificates yield no spans.
  std::vector<LineageSpan> lineage(const rs::crypto::Sha256Digest& fp,
                                   Scope scope) const;

 private:
  // The persistence layer (serialize/load/append, docs/PERSISTENCE.md)
  // reads and reconstructs the private representation directly.
  friend class TrustIndexIO;

  struct ProviderData {
    std::string name;
    // Distinct snapshot dates, ascending.  When a history carries several
    // snapshots on one date, the last one wins (matching
    // ProviderHistory::at resolution).
    std::vector<rs::util::Date> dates;
    std::vector<std::string> versions;  // parallel to `dates`
    // Per scope, per distinct date: interned membership set.
    std::array<std::vector<rs::store::IdSet>, kScopeCount> sets;
    // Per scope, per certificate ID: date-ordered presence intervals.
    // May be shorter than the universe (indexes past the end mean "no
    // runs"): the loader sizes each table to the highest ID that actually
    // has runs, so a file's memory cost is bounded by its contents.
    std::array<std::vector<std::vector<TrustInterval>>, kScopeCount>
        intervals;
  };

  const ProviderData* find(std::string_view provider) const;
  /// Index into `dates` resolving `date`, or nullopt outside coverage.
  static std::optional<std::size_t> resolve(const ProviderData& p,
                                            rs::util::Date date);
  static void build_provider(const rs::store::ProviderHistory& history,
                             const rs::store::CertInterner& interner,
                             ProviderData& out);

  std::vector<ProviderData> providers_;  // name order
  std::map<std::string, std::size_t, std::less<>> by_name_;
  rs::store::CertInterner interner_;
  std::size_t resolutions_ = 0;
};

}  // namespace rs::query
