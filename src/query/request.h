// The trust-query request model and its strict wire parser.
//
// Requests arrive as one JSON object per line — from `rootstore query`
// argv, from a `rootstore serve` socket, or from a fuzzer.  The parser is
// deliberately narrow: a single flat object of string-valued fields, hard
// byte/field/length caps, no duplicate keys, and unknown-field rejection
// per operation.  Anything outside that envelope is a typed parse error,
// never a crash (fuzz/fuzz_query_request.cpp holds that line).
//
// canonical_request() re-serializes a parsed request into one canonical
// byte string (fixed field order, defaults materialized, lowercase hex,
// ISO dates).  Two requests that mean the same thing canonicalize to the
// same bytes, which is what the serve-layer response cache keys on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/digest.h"
#include "src/util/date.h"
#include "src/util/result.h"

namespace rs::query {

/// Hard caps enforced before any allocation scales with input.
inline constexpr std::size_t kMaxRequestBytes = 4096;
inline constexpr std::size_t kMaxFields = 12;
inline constexpr std::size_t kMaxKeyBytes = 32;
inline constexpr std::size_t kMaxValueBytes = 512;

/// Chain-verification caps.  verify_chain/first_rejected_at requests carry
/// Base64 DER certificates ("leaf" plus a "pool" array), so they get wider
/// per-value and per-request budgets: each certificate at most
/// kMaxCertB64Bytes of Base64 (~2.3 KiB DER), at most kMaxPoolCerts pool
/// entries, and a total line budget of kMaxVerifyRequestBytes (which still
/// fits inside a batch envelope).  max_request_bytes(op) selects the
/// per-op total cap; every other op keeps kMaxRequestBytes.
inline constexpr std::size_t kMaxCertB64Bytes = 3072;
inline constexpr std::size_t kMaxPoolCerts = 8;
inline constexpr std::size_t kMaxVerifyRequestBytes = 32768;

/// Batch-envelope caps: one line may carry up to kMaxBatchRequests
/// sub-requests (each individually bounded by kMaxRequestBytes) inside a
/// total line budget of kMaxBatchBytes.  The serve layer sizes its
/// transport line cap from kMaxBatchBytes.
inline constexpr std::size_t kMaxBatchRequests = 64;
inline constexpr std::size_t kMaxBatchBytes = 65536;

/// The query operations the engine answers (docs/SERVING.md).
enum class Op : std::uint8_t {
  kIsTrusted,          // is fp a trust anchor for provider at date?
  kProvidersTrusting,  // which providers trust fp at date?
  kStoreAt,            // provider's resolved store at date
  kDiff,               // added/removed between two resolved dates
  kAgentStore,         // store a user agent consults at date (Table 1)
  kLineage,            // full add/remove timeline of fp across providers
  kStats,              // engine-level dataset summary
  kServerStats,        // serve-layer counters; answered by the server only
  kReloadIndex,        // hot-swap the serve engine; server only
  kVerifyChain,        // would provider accept this chain at date? (VERIFY.md)
  kFirstRejectedAt,    // first date an accepted chain flips to rejected
  kAgreementAt,        // cross-store agreement metrics at date (LANDSCAPE.md)
  kCtCoverage,         // one provider as "the log" vs every other store
};

/// Trust scope of a query: one purpose's anchors, or bare presence.
enum class Scope : std::uint8_t {
  kTls = 0,      // server-auth anchors (the paper's headline sets)
  kEmail = 1,    // email-protection anchors
  kCode = 2,     // code-signing anchors
  kPresent = 3,  // in the store at all, regardless of trust bits
};
inline constexpr std::size_t kScopeCount = 4;

const char* to_string(Op op) noexcept;
const char* to_string(Scope scope) noexcept;

/// One parsed, validated request.  Optional fields are populated exactly
/// when the operation uses them (parse_request enforces the per-op shape).
struct Request {
  Op op = Op::kStats;
  std::optional<rs::crypto::Sha256Digest> fp;
  std::optional<std::string> provider;
  std::optional<rs::util::Date> date;
  std::optional<rs::util::Date> date_a;
  std::optional<rs::util::Date> date_b;
  std::optional<std::string> user_agent;
  std::optional<std::string> os;
  Scope scope = Scope::kTls;
  /// verify_chain / first_rejected_at payload: the leaf certificate DER
  /// (decoded from Base64 at parse time) and the intermediate/root pool.
  /// The pool is sorted by DER bytes and deduplicated at parse time so two
  /// requests naming the same pool in any order share one canonical form
  /// (and thus one serve-cache slot).
  std::optional<std::vector<std::uint8_t>> leaf;
  std::vector<std::vector<std::uint8_t>> pool;
};

/// Per-op total request byte cap: kMaxVerifyRequestBytes for the
/// certificate-carrying verify ops, kMaxRequestBytes otherwise.
[[nodiscard]] std::size_t max_request_bytes(Op op) noexcept;

/// Parses one request line.  Errors are human-readable and safe to echo
/// back to the (untrusted) client.
[[nodiscard]] rs::util::Result<Request> parse_request(std::string_view text);

/// Canonical single-line serialization: `op` first, remaining fields in a
/// fixed order, `scope` always explicit for ops that take one.  Parsing
/// the result yields an equal Request (pinned by the fuzz harness).
[[nodiscard]] std::string canonical_request(const Request& request);

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
/// Shared by the canonicalizer and the response writers in engine.cpp.
void append_json_string(std::string& out, std::string_view s);

/// True when `text` opens a batch envelope: `{"op":"batch",...}` with `op`
/// as the first field (the batch grammar mandates field order, so this
/// cheap prefix test is exact).  Batch lines bypass parse_request and go
/// through parse_batch_request instead.
[[nodiscard]] bool looks_like_batch(std::string_view text) noexcept;

/// Parses one batch envelope line:
///
///   {"op":"batch","requests":[{...},{...},...]}
///
/// Grammar is strict: exactly the two fields above in that order, each
/// element of `requests` a JSON object.  Returned views alias `text` and
/// are the raw sub-request objects, NOT yet validated — feed each through
/// parse_request (or QueryEngine::handle_json) so per-item errors stay
/// isolated to their response slot.  Envelope-level violations (size over
/// kMaxBatchBytes, more than kMaxBatchRequests items, an item over
/// kMaxVerifyRequestBytes — the widest per-op cap; parse_request then
/// enforces the tighter per-op budget — malformed framing) fail the whole
/// line.
[[nodiscard]] rs::util::Result<std::vector<std::string_view>>
parse_batch_request(std::string_view text);

}  // namespace rs::query
