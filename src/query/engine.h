// The query engine: one handler shared by every access path.
//
// QueryEngine owns an immutable TrustIndex plus the user-agent attribution
// table (paper Table 1) and turns parsed requests into deterministic
// single-line JSON responses.  The one-shot CLI (`rootstore query`), the
// in-process API, and the socket server (`rootstore serve`) all call the
// same handle()/handle_json(), which is what makes the serve-layer test
// able to prove byte-identical answers across paths.
//
// Response grammar (docs/SERVING.md): every response is a flat JSON object
// on one line.  Success and typed not-covered answers lead with "op" then
// "status"; malformed or unanswerable requests produce
//   {"status":"error","code":"<machine readable>","message":"<human>"}.
// All construction is deterministic: fixed field order, sorted collections
// (root lists ride on the interner's sorted-digest ID order).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/query/request.h"
#include "src/query/trust_index.h"
#include "src/synth/user_agents.h"

namespace rs::exec {
class ThreadPool;
}

namespace rs::store {
class StoreDatabase;
}

namespace rs::query {

class QueryEngine {
 public:
  /// Compiles the index from `db` (interned via CertInterner::from_database)
  /// and captures the attribution rows.  `build_pool` parallelizes the
  /// index build only; queries never touch a pool.  `db` is not retained.
  QueryEngine(const rs::store::StoreDatabase& db,
              std::vector<rs::synth::UserAgentGroup> agents,
              rs::exec::ThreadPool* build_pool = nullptr);

  /// Wraps an already-compiled index — e.g. one loaded from a persisted
  /// RSIX file by TrustIndexIO::load_file — so a serve process cold-starts
  /// without a database or build pool.
  QueryEngine(TrustIndex index, std::vector<rs::synth::UserAgentGroup> agents);

  /// Parses one request line and answers it.  Parse failures become
  /// {"status":"error","code":"bad_request",...}; this function never
  /// throws on any input.  Batch envelopes ({"op":"batch","requests":[...]})
  /// answer every sub-request in order inside one batch_response() line;
  /// per-item failures are isolated to their slot.
  [[nodiscard]] std::string handle_json(std::string_view line) const;

  /// Answers an already-parsed request.
  [[nodiscard]] std::string handle(const Request& request) const;

  /// True for responses produced by the error path ("status" first).
  [[nodiscard]] static bool is_error_response(
      std::string_view response) noexcept;

  const TrustIndex& index() const noexcept { return index_; }

 private:
  std::string handle_is_trusted(const Request& r) const;
  std::string handle_providers_trusting(const Request& r) const;
  std::string handle_store_at(const Request& r) const;
  std::string handle_diff(const Request& r) const;
  std::string handle_agent_store(const Request& r) const;
  std::string handle_lineage(const Request& r) const;
  std::string handle_stats() const;
  std::string handle_verify_chain(const Request& r) const;
  std::string handle_first_rejected_at(const Request& r) const;
  std::string handle_agreement_at(const Request& r) const;
  std::string handle_ct_coverage(const Request& r) const;

  TrustIndex index_;
  std::vector<rs::synth::UserAgentGroup> agents_;
};

/// Builds the canonical error response (also used by the serve layer for
/// transport-level failures such as oversized request lines).
std::string error_response(std::string_view code, std::string_view message);

/// Assembles the batch envelope response from already-rendered per-item
/// response lines:
///   {"op":"batch","status":"ok","count":N,"responses":[...]}
/// Shared by QueryEngine::handle_json and the serve layer (which answers
/// items through its response cache but must emit identical bytes).
std::string batch_response(const std::vector<std::string>& responses);

}  // namespace rs::query
