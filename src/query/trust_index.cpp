#include "src/query/trust_index.h"

#include <algorithm>
#include <utility>

#include "src/exec/thread_pool.h"
#include "src/obs/span.h"
#include "src/store/trust.h"

namespace rs::query {

bool scope_matches(const rs::store::TrustEntry& entry, Scope scope) noexcept {
  switch (scope) {
    case Scope::kTls:
      return entry.is_anchor_for(rs::store::TrustPurpose::kServerAuth);
    case Scope::kEmail:
      return entry.is_anchor_for(rs::store::TrustPurpose::kEmailProtection);
    case Scope::kCode:
      return entry.is_anchor_for(rs::store::TrustPurpose::kCodeSigning);
    case Scope::kPresent:
      return true;
  }
  return false;
}

const char* to_string(TrustAnswer a) noexcept {
  switch (a) {
    case TrustAnswer::kTrusted: return "trusted";
    case TrustAnswer::kUntrusted: return "untrusted";
    case TrustAnswer::kNotCovered: return "not_covered";
  }
  return "?";
}

void TrustIndex::build_provider(const rs::store::ProviderHistory& history,
                                const rs::store::CertInterner& interner,
                                ProviderData& out) {
  const std::size_t universe = interner.size();
  // Collapse to distinct dates: for equal dates the later snapshot wins,
  // mirroring ProviderHistory::at (upper_bound resolution).
  std::vector<const rs::store::Snapshot*> resolved;
  for (const auto& snapshot : history.snapshots()) {
    if (!resolved.empty() && resolved.back()->date == snapshot.date) {
      resolved.back() = &snapshot;
    } else {
      resolved.push_back(&snapshot);
    }
  }

  out.dates.reserve(resolved.size());
  out.versions.reserve(resolved.size());
  for (const auto* snapshot : resolved) {
    out.dates.push_back(snapshot->date);
    out.versions.push_back(snapshot->version);
  }

  for (std::size_t s = 0; s < kScopeCount; ++s) {
    const auto scope = static_cast<Scope>(s);
    auto& sets = out.sets[s];
    auto& intervals = out.intervals[s];
    sets.reserve(resolved.size());
    intervals.assign(universe, {});

    // `open[id]` holds the start of the run the certificate is currently
    // in, if any; closing a run appends one interval.
    std::vector<std::optional<rs::util::Date>> open(universe);
    for (std::size_t k = 0; k < resolved.size(); ++k) {
      rs::store::IdSet members(universe);
      for (const auto& entry : resolved[k]->entries) {
        if (!scope_matches(entry, scope)) continue;
        const auto id = interner.id_of(entry.certificate->sha256());
        if (id) members.insert(*id);
      }
      if (k == 0) {
        for (const std::uint32_t id : members.ids()) {
          open[id] = out.dates[k];
        }
      } else {
        const auto& prev = sets[k - 1];
        for (const std::uint32_t id : members.difference(prev).ids()) {
          open[id] = out.dates[k];
        }
        for (const std::uint32_t id : prev.difference(members).ids()) {
          intervals[id].push_back({*open[id], out.dates[k]});
          open[id].reset();
        }
      }
      sets.push_back(std::move(members));
    }
    for (std::uint32_t id = 0; id < universe; ++id) {
      if (open[id]) intervals[id].push_back({*open[id], std::nullopt});
    }
  }
}

TrustIndex TrustIndex::build(const rs::store::StoreDatabase& db,
                             const rs::store::CertInterner& interner,
                             rs::exec::ThreadPool* pool) {
  rs::obs::Span span("query/build_index");
  TrustIndex index;
  index.interner_ = interner;

  // Lay out providers in name order (the histories() map order), then
  // fill each lane independently — disjoint writes, so the parallel and
  // serial builds are identical.
  for (const auto& [name, history] : db.histories()) {
    if (history.empty()) continue;
    index.by_name_.emplace(name, index.providers_.size());
    index.providers_.emplace_back();
    index.providers_.back().name = name;
  }
  std::vector<const rs::store::ProviderHistory*> histories;
  histories.reserve(index.providers_.size());
  for (const auto& p : index.providers_) {
    histories.push_back(db.find(p.name));
  }
  rs::exec::parallel_for(pool, index.providers_.size(), [&](std::size_t i) {
    build_provider(*histories[i], index.interner_, index.providers_[i]);
  });

  std::size_t intervals = 0;
  for (const auto& p : index.providers_) {
    index.resolutions_ += p.dates.size();
    for (const auto& per_scope : p.intervals) {
      for (const auto& runs : per_scope) intervals += runs.size();
    }
  }
  span.set_items(intervals);
  return index;
}

const TrustIndex::ProviderData* TrustIndex::find(
    std::string_view provider) const {
  const auto it = by_name_.find(provider);
  if (it == by_name_.end()) return nullptr;
  return &providers_[it->second];
}

std::optional<std::size_t> TrustIndex::resolve(const ProviderData& p,
                                               rs::util::Date date) {
  if (p.dates.empty() || date < p.dates.front() || date > p.dates.back()) {
    return std::nullopt;
  }
  const auto it = std::upper_bound(p.dates.begin(), p.dates.end(), date);
  return static_cast<std::size_t>(it - p.dates.begin()) - 1;
}

std::vector<std::string> TrustIndex::providers() const {
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& p : providers_) names.push_back(p.name);
  return names;
}

bool TrustIndex::has_provider(std::string_view provider) const {
  return find(provider) != nullptr;
}

std::optional<ProviderCoverage> TrustIndex::coverage(
    std::string_view provider) const {
  const ProviderData* p = find(provider);
  if (p == nullptr || p->dates.empty()) return std::nullopt;
  return ProviderCoverage{p->dates.front(), p->dates.back()};
}

std::vector<rs::util::Date> TrustIndex::snapshot_dates(
    std::string_view provider) const {
  const ProviderData* p = find(provider);
  if (p == nullptr) return {};
  return p->dates;
}

TrustAnswer TrustIndex::is_trusted(const rs::crypto::Sha256Digest& fp,
                                   std::string_view provider,
                                   rs::util::Date date, Scope scope) const {
  const ProviderData* p = find(provider);
  if (p == nullptr) return TrustAnswer::kNotCovered;
  if (!resolve(*p, date)) return TrustAnswer::kNotCovered;
  const auto id = interner_.id_of(fp);
  if (!id) return TrustAnswer::kUntrusted;
  // Loaded indexes size interval tables to the highest ID with runs.
  const auto& table = p->intervals[static_cast<std::size_t>(scope)];
  if (*id >= table.size()) return TrustAnswer::kUntrusted;
  const auto& runs = table[*id];
  // Last interval starting on or before `date`.
  const auto it = std::upper_bound(
      runs.begin(), runs.end(), date,
      [](rs::util::Date d, const TrustInterval& iv) { return d < iv.added; });
  if (it == runs.begin()) return TrustAnswer::kUntrusted;
  const TrustInterval& run = *(it - 1);
  const bool inside = !run.removed.has_value() || date < *run.removed;
  return inside ? TrustAnswer::kTrusted : TrustAnswer::kUntrusted;
}

std::vector<std::string> TrustIndex::providers_trusting(
    const rs::crypto::Sha256Digest& fp, rs::util::Date date, Scope scope,
    std::vector<std::string>* not_covered) const {
  std::vector<std::string> trusting;
  for (const auto& p : providers_) {
    switch (is_trusted(fp, p.name, date, scope)) {
      case TrustAnswer::kTrusted:
        trusting.push_back(p.name);
        break;
      case TrustAnswer::kNotCovered:
        if (not_covered != nullptr) not_covered->push_back(p.name);
        break;
      case TrustAnswer::kUntrusted:
        break;
    }
  }
  return trusting;
}

std::optional<StoreView> TrustIndex::store_at(std::string_view provider,
                                              rs::util::Date date,
                                              Scope scope) const {
  const ProviderData* p = find(provider);
  if (p == nullptr) return std::nullopt;
  const auto k = resolve(*p, date);
  if (!k) return std::nullopt;
  StoreView view;
  view.provider = p->name;
  view.version = p->versions[*k];
  view.snapshot_date = p->dates[*k];
  view.roots = &p->sets[static_cast<std::size_t>(scope)][*k];
  return view;
}

std::optional<StoreDiff> TrustIndex::diff(std::string_view provider,
                                          rs::util::Date date_a,
                                          rs::util::Date date_b,
                                          Scope scope) const {
  const auto from = store_at(provider, date_a, scope);
  const auto to = store_at(provider, date_b, scope);
  if (!from || !to) return std::nullopt;
  StoreDiff d;
  d.from = *from;
  d.to = *to;
  d.added = to->roots->difference(*from->roots);
  d.removed = from->roots->difference(*to->roots);
  return d;
}

std::vector<LineageSpan> TrustIndex::lineage(
    const rs::crypto::Sha256Digest& fp, Scope scope) const {
  std::vector<LineageSpan> spans;
  const auto id = interner_.id_of(fp);
  if (!id) return spans;
  for (const auto& p : providers_) {
    const auto& table = p.intervals[static_cast<std::size_t>(scope)];
    if (*id >= table.size()) continue;
    for (const auto& run : table[*id]) {
      spans.push_back({p.name, run});
    }
  }
  return spans;
}

}  // namespace rs::query
