// Binary persistence and incremental append for the TrustIndex.
//
// `rootstore serve` answers queries from an immutable TrustIndex that is
// expensive to compile: decode snapshots, intern the certificate universe,
// derive per-(provider,scope,cert) presence intervals.  TrustIndexIO
// round-trips the compiled index through the RSIX container defined in
// src/store/persist.h so a serve process cold-starts by loading flat
// arrays instead of rebuilding, and a new weekly snapshot is absorbed by
// touching only that provider's membership tables and intervals —
// O(delta), not O(history).
//
// Guarantees (enforced by tests/query/index_io_test.cpp and
// index_append_test.cpp):
//   * serialize() is canonical: a pure function of the logical index, so
//     serialize(deserialize(serialize(x))) == serialize(x) byte-for-byte,
//     and an incrementally appended index serializes byte-identically to
//     a full rebuild over the same snapshots.
//   * deserialize() is hardened like the PR-1 parsers: bounds-checked by
//     construction, caps on every count field, per-section checksums, and
//     a typed persist::LoadError for every way a file can lie (the
//     `persist_fault` ctest label sweeps truncations, bit flips, version
//     skew, and oversized counts).
//   * verify() additionally proves the redundant structures agree: the
//     interval tables are recomputed from the membership sets and
//     compared, so a checksummed-but-inconsistent file is still rejected.
//
// File layout (docs/PERSISTENCE.md has the diagram): four sections —
// interner digests, provider timelines, per-date membership IdSets,
// flattened interval records — all fixed-width little-endian flat arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/query/trust_index.h"
#include "src/store/persist.h"

namespace rs::store {
struct Snapshot;
class StoreDatabase;
}  // namespace rs::store

namespace rs::query {

/// RSIX section ids used by the index container.
inline constexpr std::uint32_t kSectionInterner = 1;
inline constexpr std::uint32_t kSectionProviders = 2;
inline constexpr std::uint32_t kSectionSets = 3;
inline constexpr std::uint32_t kSectionIntervals = 4;

/// Summary returned by verify(): what a structurally valid, internally
/// consistent index file contains.
struct IndexFileStats {
  std::uint64_t providers = 0;
  std::uint64_t certificates = 0;
  std::uint64_t resolution_points = 0;  // distinct dates over all providers
  std::uint64_t intervals = 0;
  std::uint64_t bytes = 0;
};

class TrustIndexIO {
 public:
  /// Canonical byte image of the index (deterministic; see above).
  static std::string serialize(const TrustIndex& index);

  /// Parses and structurally validates an index image.  Never throws on
  /// any input; every malformation maps to a typed LoadError.
  static rs::store::persist::Loaded<TrustIndex> deserialize(
      std::span<const std::uint8_t> bytes);

  /// serialize() + persist::atomic_write_file.  Returns bytes written.
  static rs::util::Result<std::uint64_t> write_file(const TrustIndex& index,
                                                    const std::string& path);

  /// mmaps `path` and deserializes it.  The mapping lives only for the
  /// duration of the load; the returned index owns all of its memory.
  static rs::store::persist::Loaded<TrustIndex> load_file(
      const std::string& path);

  /// Deep verification: a full deserialize plus recomputation of every
  /// interval table from the membership sets.  Rejects files whose
  /// redundant structures disagree (checksums cannot catch a writer that
  /// lied consistently).
  static rs::store::persist::Loaded<IndexFileStats> verify(
      std::span<const std::uint8_t> bytes);
  static rs::store::persist::Loaded<IndexFileStats> verify_file(
      const std::string& path);

  /// Absorbs one snapshot into the index incrementally: grows the interner
  /// if the snapshot carries unseen certificates (a monotonic dense-ID
  /// remap), then touches only `snapshot.provider`'s membership tables and
  /// intervals.  Snapshots must arrive in date order per provider; a
  /// snapshot dated equal to the provider's newest replaces it (the
  /// equal-dated-snapshot collapse the full build applies).  The result is
  /// indistinguishable — byte-for-byte under serialize() — from a full
  /// rebuild over the same snapshots.
  static rs::util::Result<bool> append_snapshot(
      TrustIndex& index, const rs::store::Snapshot& snapshot);

  /// Appends every database snapshot strictly newer than the provider's
  /// indexed coverage (all snapshots for providers the index has never
  /// seen), one at a time in date order.  Returns the number absorbed.
  static rs::util::Result<std::size_t> append_from_database(
      TrustIndex& index, const rs::store::StoreDatabase& db);

 private:
  /// Grows the interner universe by `fresh` (sorted, unique, disjoint from
  /// the current universe) and remaps every dense ID in the index.  The
  /// remap is monotonic, so canonical serialization order is preserved.
  static void grow_interner(TrustIndex& index,
                            const std::vector<rs::crypto::Sha256Digest>& fresh);
};

}  // namespace rs::query
