#include "src/query/request.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/encoding/base64.h"

namespace rs::query {
namespace {

using rs::util::Result;

constexpr char kHexDigits[] = "0123456789abcdef";

bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Cursor over the request bytes.  All reads are bounds-checked; the
/// parser never indexes past `size`.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return text[pos]; }
  void skip_ws() noexcept {
    while (!done() && is_ws(text[pos])) ++pos;
  }
  bool consume(char c) noexcept {
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }
};

/// Parses a JSON string literal into `out`.  Accepts the simple escapes
/// (\" \\ \/ \b \f \n \r \t); rejects \uXXXX (the request vocabulary is
/// ASCII) and raw control bytes.  `what` names the thing being parsed for
/// error messages; `cap` bounds the decoded length.
Result<std::string> parse_string(Cursor& in, const char* what,
                                 std::size_t cap) {
  if (!in.consume('"')) {
    return Result<std::string>::err(std::string("expected '\"' to open ") +
                                    what);
  }
  std::string out;
  while (true) {
    if (in.done()) {
      return Result<std::string>::err(std::string("unterminated ") + what);
    }
    const char c = in.text[in.pos++];
    if (c == '"') break;
    if (static_cast<unsigned char>(c) < 0x20) {
      return Result<std::string>::err(
          std::string("raw control byte in ") + what);
    }
    if (c == '\\') {
      if (in.done()) {
        return Result<std::string>::err(std::string("unterminated ") + what);
      }
      const char esc = in.text[in.pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default:
          return Result<std::string>::err(
              std::string("unsupported escape in ") + what);
      }
    } else {
      out.push_back(c);
    }
    if (out.size() > cap) {
      return Result<std::string>::err(std::string(what) + " exceeds " +
                                      std::to_string(cap) + " bytes");
    }
  }
  return out;
}

/// One raw key/value pair before per-op validation.  The only non-string
/// value in the grammar is the "pool" array of strings; everything else
/// stays flat.
struct RawField {
  std::string key;
  std::string value;
  std::vector<std::string> items;  // "pool" only
  bool is_array = false;
};

Result<std::vector<RawField>> parse_object(std::string_view text) {
  using R = Result<std::vector<RawField>>;
  if (text.size() > kMaxVerifyRequestBytes) {
    // The widest per-op budget; parse_request re-checks the tighter cap
    // once the op is known.
    return R::err("request exceeds " +
                  std::to_string(kMaxVerifyRequestBytes) + " bytes");
  }
  Cursor in{text};
  in.skip_ws();
  if (!in.consume('{')) return R::err("expected '{'");
  std::vector<RawField> fields;
  in.skip_ws();
  if (in.consume('}')) {
    in.skip_ws();
    if (!in.done()) return R::err("trailing bytes after request object");
    return fields;
  }
  while (true) {
    in.skip_ws();
    auto key = parse_string(in, "field name", kMaxKeyBytes);
    if (!key.ok()) return key.propagate<std::vector<RawField>>();
    in.skip_ws();
    if (!in.consume(':')) return R::err("expected ':' after field name");
    in.skip_ws();
    if (in.done()) return R::err("missing value");
    RawField field;
    field.key = std::move(key).take();
    if (in.peek() == '[' && field.key == "pool") {
      // The certificate pool: a bounded array of Base64 strings.  No other
      // key admits an array, keeping the attack surface flat.
      in.consume('[');
      field.is_array = true;
      in.skip_ws();
      if (!in.consume(']')) {
        while (true) {
          in.skip_ws();
          auto item = parse_string(in, "pool entry", kMaxCertB64Bytes);
          if (!item.ok()) return item.propagate<std::vector<RawField>>();
          field.items.push_back(std::move(item).take());
          if (field.items.size() > kMaxPoolCerts) {
            return R::err("pool carries more than " +
                          std::to_string(kMaxPoolCerts) + " certificates");
          }
          in.skip_ws();
          if (in.consume(',')) continue;
          if (in.consume(']')) break;
          return R::err("expected ',' or ']' after pool entry");
        }
      }
    } else if (in.peek() == '"') {
      // "leaf" carries a Base64 certificate and gets the wide value cap;
      // every other value keeps the tight one.
      const std::size_t cap =
          field.key == "leaf" ? kMaxCertB64Bytes : kMaxValueBytes;
      auto value = parse_string(in, "field value", cap);
      if (!value.ok()) return value.propagate<std::vector<RawField>>();
      field.value = std::move(value).take();
    } else {
      // The remaining request vocabulary is strings; numbers, booleans, and
      // nested containers are rejected outright to keep the attack
      // surface flat.
      return R::err("field '" + field.key + "' must be a JSON string");
    }
    for (const auto& f : fields) {
      if (f.key == field.key) {
        return R::err("duplicate field '" + field.key + "'");
      }
    }
    fields.push_back(std::move(field));
    if (fields.size() > kMaxFields) {
      return R::err("more than " + std::to_string(kMaxFields) + " fields");
    }
    in.skip_ws();
    if (in.consume(',')) continue;
    if (in.consume('}')) break;
    return R::err("expected ',' or '}' after field");
  }
  in.skip_ws();
  if (!in.done()) return R::err("trailing bytes after request object");
  return fields;
}

Result<std::vector<std::uint8_t>> parse_cert_b64(const std::string& what,
                                                 const std::string& value) {
  using R = Result<std::vector<std::uint8_t>>;
  auto der = rs::encoding::base64_decode(value);
  if (!der) return R::err(what + " is not valid Base64");
  if (der->empty()) return R::err(what + " decodes to zero bytes");
  return *std::move(der);
}

Result<rs::crypto::Sha256Digest> parse_fp(const std::string& value) {
  using R = Result<rs::crypto::Sha256Digest>;
  if (value.size() != 64) {
    return R::err("fp must be 64 hex digits (SHA-256)");
  }
  rs::crypto::Sha256Digest out{};
  for (std::size_t i = 0; i < 64; ++i) {
    const char c = value[i];
    unsigned nibble = 0;
    if (c >= '0' && c <= '9') nibble = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') nibble = static_cast<unsigned>(c - 'A') + 10;
    else return R::err("fp must be 64 hex digits (SHA-256)");
    out[i / 2] = static_cast<std::uint8_t>(
        (out[i / 2] << 4) | static_cast<std::uint8_t>(nibble));
  }
  return out;
}

Result<rs::util::Date> parse_date_field(const std::string& key,
                                        const std::string& value) {
  auto date = rs::util::Date::parse(value);
  if (!date) {
    return Result<rs::util::Date>::err("field '" + key +
                                       "' is not a YYYY-MM-DD date");
  }
  return *date;
}

struct OpSpec {
  Op op;
  const char* name;
  // Field admissibility, beyond "op" itself.
  bool fp, provider, date, date_a, date_b, user_agent, os, scope;
  bool leaf = false, pool = false;
};

// `os` is the only optional-when-admissible field (agent names are only
// ambiguous across OSes); everything else admissible is required (an
// empty `pool` array is legal — the leaf may chain straight to an
// anchor — but the field itself must be present).
constexpr std::array<OpSpec, 13> kOpSpecs = {{
    {Op::kIsTrusted, "is_trusted",
     true, true, true, false, false, false, false, true},
    {Op::kProvidersTrusting, "providers_trusting",
     true, false, true, false, false, false, false, true},
    {Op::kStoreAt, "store_at",
     false, true, true, false, false, false, false, true},
    {Op::kDiff, "diff",
     false, true, false, true, true, false, false, true},
    {Op::kAgentStore, "agent_store",
     false, false, true, false, false, true, true, true},
    {Op::kLineage, "lineage",
     true, false, false, false, false, false, false, true},
    {Op::kStats, "stats",
     false, false, false, false, false, false, false, false},
    {Op::kServerStats, "server_stats",
     false, false, false, false, false, false, false, false},
    {Op::kReloadIndex, "reload_index",
     false, false, false, false, false, false, false, false},
    {Op::kVerifyChain, "verify_chain",
     false, true, true, false, false, false, false, true, true, true},
    {Op::kFirstRejectedAt, "first_rejected_at",
     false, true, false, false, false, false, false, true, true, true},
    {Op::kAgreementAt, "agreement_at",
     false, false, true, false, false, false, false, true},
    {Op::kCtCoverage, "ct_coverage",
     false, true, true, false, false, false, false, true},
}};

const OpSpec* spec_for(std::string_view name) noexcept {
  for (const auto& s : kOpSpecs) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

const OpSpec& spec_of(Op op) noexcept {
  for (const auto& s : kOpSpecs) {
    if (s.op == op) return s;
  }
  return kOpSpecs[0];  // unreachable: every Op has a spec
}

}  // namespace

const char* to_string(Op op) noexcept { return spec_of(op).name; }

std::size_t max_request_bytes(Op op) noexcept {
  return (op == Op::kVerifyChain || op == Op::kFirstRejectedAt)
             ? kMaxVerifyRequestBytes
             : kMaxRequestBytes;
}

const char* to_string(Scope scope) noexcept {
  switch (scope) {
    case Scope::kTls: return "tls";
    case Scope::kEmail: return "email";
    case Scope::kCode: return "code";
    case Scope::kPresent: return "present";
  }
  return "?";
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out.push_back(kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHexDigits[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

rs::util::Result<Request> parse_request(std::string_view text) {
  using R = Result<Request>;
  auto fields = parse_object(text);
  if (!fields.ok()) return fields.propagate<Request>();

  const OpSpec* spec = nullptr;
  for (const auto& f : fields.value()) {
    if (f.key != "op") continue;
    spec = spec_for(f.value);
    if (spec == nullptr) return R::err("unknown op '" + f.value + "'");
  }
  if (spec == nullptr) return R::err("missing required field 'op'");
  if (text.size() > max_request_bytes(spec->op)) {
    return R::err("request exceeds " +
                  std::to_string(max_request_bytes(spec->op)) +
                  " bytes for op '" + std::string(spec->name) + "'");
  }

  Request request;
  request.op = spec->op;
  bool has_pool = false;
  for (const auto& f : fields.value()) {
    if (f.key == "op") continue;
    const bool admissible =
        (f.key == "fp" && spec->fp) || (f.key == "provider" && spec->provider) ||
        (f.key == "date" && spec->date) ||
        (f.key == "date_a" && spec->date_a) ||
        (f.key == "date_b" && spec->date_b) ||
        (f.key == "user_agent" && spec->user_agent) ||
        (f.key == "os" && spec->os) || (f.key == "scope" && spec->scope) ||
        (f.key == "leaf" && spec->leaf) || (f.key == "pool" && spec->pool);
    if (!admissible) {
      return R::err("unknown field '" + f.key + "' for op '" +
                    std::string(spec->name) + "'");
    }
    if (f.is_array != (f.key == "pool")) {
      // parse_object only builds arrays for "pool", so the one remaining
      // mismatch is a string-valued "pool".
      return R::err("field 'pool' must be a JSON array of strings");
    }
    if (f.key == "fp") {
      auto fp = parse_fp(f.value);
      if (!fp.ok()) return fp.propagate<Request>();
      request.fp = fp.value();
    } else if (f.key == "provider") {
      if (f.value.empty()) return R::err("field 'provider' is empty");
      request.provider = f.value;
    } else if (f.key == "date" || f.key == "date_a" || f.key == "date_b") {
      auto date = parse_date_field(f.key, f.value);
      if (!date.ok()) return date.propagate<Request>();
      if (f.key == "date") request.date = date.value();
      else if (f.key == "date_a") request.date_a = date.value();
      else request.date_b = date.value();
    } else if (f.key == "user_agent") {
      if (f.value.empty()) return R::err("field 'user_agent' is empty");
      request.user_agent = f.value;
    } else if (f.key == "os") {
      if (f.value.empty()) return R::err("field 'os' is empty");
      request.os = f.value;
    } else if (f.key == "leaf") {
      auto der = parse_cert_b64("field 'leaf'", f.value);
      if (!der.ok()) return der.propagate<Request>();
      request.leaf = std::move(der).take();
    } else if (f.key == "pool") {
      has_pool = true;
      for (std::size_t i = 0; i < f.items.size(); ++i) {
        auto der = parse_cert_b64("pool entry " + std::to_string(i),
                                  f.items[i]);
        if (!der.ok()) return der.propagate<Request>();
        request.pool.push_back(std::move(der).take());
      }
      // Sort by DER bytes and deduplicate so pool order never leaks into
      // the canonical form (or the serve-cache key).
      std::sort(request.pool.begin(), request.pool.end());
      request.pool.erase(
          std::unique(request.pool.begin(), request.pool.end()),
          request.pool.end());
    } else {  // scope
      if (f.value == "tls") request.scope = Scope::kTls;
      else if (f.value == "email") request.scope = Scope::kEmail;
      else if (f.value == "code") request.scope = Scope::kCode;
      else if (f.value == "present") request.scope = Scope::kPresent;
      else {
        return R::err("field 'scope' must be tls, email, code, or present");
      }
    }
  }

  // Required-field checks (everything admissible except `os` and `scope`).
  const auto require = [&](bool has, const char* name) -> const char* {
    return has ? nullptr : name;
  };
  const char* missing = nullptr;
  if (spec->fp && !missing) missing = require(request.fp.has_value(), "fp");
  if (spec->provider && !missing) {
    missing = require(request.provider.has_value(), "provider");
  }
  if (spec->date && !missing) {
    missing = require(request.date.has_value(), "date");
  }
  if (spec->date_a && !missing) {
    missing = require(request.date_a.has_value(), "date_a");
  }
  if (spec->date_b && !missing) {
    missing = require(request.date_b.has_value(), "date_b");
  }
  if (spec->user_agent && !missing) {
    missing = require(request.user_agent.has_value(), "user_agent");
  }
  if (spec->leaf && !missing) {
    missing = require(request.leaf.has_value(), "leaf");
  }
  if (spec->pool && !missing) missing = require(has_pool, "pool");
  if (missing != nullptr) {
    return R::err("op '" + std::string(spec->name) +
                  "' requires field '" + missing + "'");
  }
  return request;
}

namespace {

/// Matches one literal token at the cursor after skipping whitespace.
bool consume_token(Cursor& in, std::string_view token) noexcept {
  in.skip_ws();
  if (in.text.size() - in.pos < token.size()) return false;
  if (in.text.substr(in.pos, token.size()) != token) return false;
  in.pos += token.size();
  return true;
}

}  // namespace

bool looks_like_batch(std::string_view text) noexcept {
  Cursor in{text};
  return consume_token(in, "{") && consume_token(in, "\"op\"") &&
         consume_token(in, ":") && consume_token(in, "\"batch\"");
}

rs::util::Result<std::vector<std::string_view>> parse_batch_request(
    std::string_view text) {
  using R = rs::util::Result<std::vector<std::string_view>>;
  if (text.size() > kMaxBatchBytes) {
    return R::err("batch request exceeds " + std::to_string(kMaxBatchBytes) +
                  " bytes");
  }
  Cursor in{text};
  // Fixed field order keeps the envelope grammar (and looks_like_batch)
  // trivially unambiguous: op first, then requests, nothing else.
  if (!consume_token(in, "{") || !consume_token(in, "\"op\"") ||
      !consume_token(in, ":") || !consume_token(in, "\"batch\"")) {
    return R::err("batch envelope must open with {\"op\":\"batch\"");
  }
  if (!consume_token(in, ",") || !consume_token(in, "\"requests\"") ||
      !consume_token(in, ":") || !consume_token(in, "[")) {
    return R::err("batch envelope requires \"requests\":[...] after the op");
  }
  std::vector<std::string_view> items;
  in.skip_ws();
  if (!in.consume(']')) {
    while (true) {
      in.skip_ws();
      if (in.done() || in.peek() != '{') {
        return R::err("batch item " + std::to_string(items.size()) +
                      " must be a JSON object");
      }
      // Brace-match the item with string/escape awareness.  Sub-requests
      // are flat objects, but a malformed nested one must still frame
      // cleanly here so its rejection stays isolated to its slot.
      const std::size_t begin = in.pos;
      std::size_t depth = 0;
      bool in_string = false;
      bool escaped = false;
      while (!in.done()) {
        const char c = in.text[in.pos++];
        if (in_string) {
          if (escaped) escaped = false;
          else if (c == '\\') escaped = true;
          else if (c == '"') in_string = false;
          continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++depth;
        else if (c == '}' && --depth == 0) break;
      }
      if (depth != 0 || in_string) {
        return R::err("unterminated batch item " +
                      std::to_string(items.size()));
      }
      const std::size_t length = in.pos - begin;
      // The widest per-op budget; parse_request enforces the tighter
      // kMaxRequestBytes cap on non-verify items.
      if (length > kMaxVerifyRequestBytes) {
        return R::err("batch item " + std::to_string(items.size()) +
                      " exceeds " + std::to_string(kMaxVerifyRequestBytes) +
                      " bytes");
      }
      items.push_back(text.substr(begin, length));
      if (items.size() > kMaxBatchRequests) {
        return R::err("batch carries more than " +
                      std::to_string(kMaxBatchRequests) + " requests");
      }
      in.skip_ws();
      if (in.consume(',')) continue;
      if (in.consume(']')) break;
      return R::err("expected ',' or ']' after batch item");
    }
  }
  if (!consume_token(in, "}")) {
    return R::err("expected '}' to close the batch envelope");
  }
  in.skip_ws();
  if (!in.done()) return R::err("trailing bytes after batch envelope");
  return items;
}

std::string canonical_request(const Request& request) {
  const OpSpec& spec = spec_of(request.op);
  std::string out = "{\"op\":";
  append_json_string(out, spec.name);
  const auto field = [&out](const char* key, std::string_view value) {
    out.push_back(',');
    out.push_back('"');
    out += key;
    out += "\":";
    append_json_string(out, value);
  };
  if (spec.date && request.date) field("date", request.date->to_string());
  if (spec.date_a && request.date_a) {
    field("date_a", request.date_a->to_string());
  }
  if (spec.date_b && request.date_b) {
    field("date_b", request.date_b->to_string());
  }
  if (spec.fp && request.fp) {
    std::string hex;
    hex.reserve(64);
    for (const std::uint8_t b : *request.fp) {
      hex.push_back(kHexDigits[(b >> 4) & 0xF]);
      hex.push_back(kHexDigits[b & 0xF]);
    }
    field("fp", hex);
  }
  if (spec.leaf && request.leaf) {
    field("leaf", rs::encoding::base64_encode(*request.leaf));
  }
  if (spec.os && request.os) field("os", *request.os);
  if (spec.pool) {
    // Always explicit, even when empty; entries are already in sorted-DER
    // order (parse_request canonicalizes), so this is a fixed point.
    out += ",\"pool\":[";
    for (std::size_t i = 0; i < request.pool.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_json_string(out, rs::encoding::base64_encode(request.pool[i]));
    }
    out.push_back(']');
  }
  if (spec.provider && request.provider) field("provider", *request.provider);
  if (spec.scope) field("scope", to_string(request.scope));
  if (spec.user_agent && request.user_agent) {
    field("user_agent", *request.user_agent);
  }
  out.push_back('}');
  return out;
}

}  // namespace rs::query
