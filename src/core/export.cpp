#include "src/core/export.h"

#include <set>

#include "src/analysis/churn.h"
#include "src/analysis/cluster.h"
#include "src/analysis/diffs.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/staleness.h"
#include "src/synth/user_agents.h"
#include "src/util/table.h"

namespace rs::core {

using rs::util::fmt_double;

std::string figure1_csv(rs::synth::PaperScenario& scenario,
                        std::size_t max_per_provider) {
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = max_per_provider;
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  const auto mds = rs::analysis::smacof_mds(dist);
  const auto clustering = rs::analysis::cluster_snapshots(dist, 0.35);

  std::string out = "provider,family,date,version,x,y,cluster\n";
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const auto& label = dist.labels[i];
    const auto program = rs::synth::program_of_provider(label.provider);
    out += label.provider + "," +
           (program ? rs::synth::to_string(*program) : "?") + "," +
           label.date.to_string() + "," + label.version + "," +
           fmt_double(mds.points[i].x, 6) + "," +
           fmt_double(mds.points[i].y, 6) + "," +
           std::to_string(clustering.assignment[i]) + "\n";
  }
  return out;
}

std::string figure3_csv(rs::synth::PaperScenario& scenario) {
  const auto* nss = scenario.database().find("NSS");
  std::string out =
      "provider,date,matched_version,current_version,versions_behind\n";
  if (nss == nullptr) return out;
  const auto index = rs::analysis::build_version_index(*nss);
  for (const char* name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = scenario.database().find(name);
    if (h == nullptr) continue;
    const auto res = rs::analysis::derivative_staleness(*h, index);
    for (const auto& p : res.points) {
      out += std::string(name) + "," + p.date.to_string() + "," +
             std::to_string(p.matched_version) + "," +
             std::to_string(p.current_version) + "," +
             fmt_double(p.versions_behind, 1) + "\n";
    }
  }
  return out;
}

std::string figure4_csv(rs::synth::PaperScenario& scenario) {
  const auto* nss = scenario.database().find("NSS");
  std::string out = "provider,date,matched_version";
  for (std::size_t c = 0; c < rs::analysis::kAddCategoryCount; ++c) {
    out += ",add_" + std::string(rs::analysis::to_string(
                         static_cast<rs::analysis::AddCategory>(c)));
  }
  for (std::size_t c = 0; c < rs::analysis::kRemoveCategoryCount; ++c) {
    out += ",remove_" + std::string(rs::analysis::to_string(
                            static_cast<rs::analysis::RemoveCategory>(c)));
  }
  out += "\n";
  if (nss == nullptr) return out;
  // CSV headers want no spaces; normalize.
  for (auto& ch : out) {
    if (ch == ' ') ch = '_';
  }

  const auto index = rs::analysis::build_version_index(*nss);
  for (const char* name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = scenario.database().find(name);
    if (h == nullptr) continue;
    const auto series = rs::analysis::derivative_diffs(*h, *nss, index);
    for (const auto& p : series.points) {
      out += std::string(name) + "," + p.date.to_string() + "," +
             std::to_string(p.matched_version);
      for (auto v : p.adds) out += "," + std::to_string(v);
      for (auto v : p.removes) out += "," + std::to_string(v);
      out += "\n";
    }
  }
  return out;
}

std::string churn_csv(rs::synth::PaperScenario& scenario) {
  std::vector<rs::analysis::ChurnSeries> all;
  for (const auto& [name, history] : scenario.database().histories()) {
    (void)name;
    all.push_back(rs::analysis::churn_series(history));
  }
  const auto outliers = rs::analysis::find_outliers(all);
  std::set<std::pair<std::string, std::int64_t>> outlier_keys;
  for (const auto& o : outliers) {
    outlier_keys.emplace(o.provider, o.point.date.days_since_epoch());
  }

  std::string out = "provider,date,added,removed,change_fraction,is_outlier\n";
  for (const auto& series : all) {
    for (const auto& p : series.points) {
      const bool outlier = outlier_keys.contains(
          {series.provider, p.date.days_since_epoch()});
      out += series.provider + "," + p.date.to_string() + "," +
             std::to_string(p.added) + "," + std::to_string(p.removed) + "," +
             fmt_double(p.change_fraction, 4) + "," + (outlier ? "1" : "0") +
             "\n";
    }
  }
  return out;
}

}  // namespace rs::core
