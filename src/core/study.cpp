#include "src/core/study.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/analysis/attribution.h"
#include "src/analysis/cadence.h"
#include "src/analysis/churn.h"
#include "src/analysis/cluster.h"
#include "src/analysis/diffs.h"
#include "src/analysis/exclusive.h"
#include "src/analysis/hygiene.h"
#include "src/analysis/incident_response.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/operators.h"
#include "src/analysis/removals.h"
#include "src/analysis/staleness.h"
#include "src/obs/span.h"
#include "src/synth/paper_reference.h"
#include "src/synth/software_survey.h"
#include "src/synth/user_agents.h"
#include "src/util/table.h"

namespace rs::core {

using rs::util::Align;
using rs::util::fmt_double;
using rs::util::fmt_percent;
using rs::util::TextTable;

EcosystemStudy EcosystemStudy::from_paper_scenario(std::uint64_t seed,
                                                   const StudyOptions& options) {
  return EcosystemStudy(rs::synth::build_paper_scenario(seed), options);
}

EcosystemStudy::EcosystemStudy(rs::synth::PaperScenario scenario,
                               const StudyOptions& options)
    : scenario_(std::move(scenario)), options_(options) {
  rs::obs::Span span("study/build");
  if (options_.num_threads > 0) {
    pool_ = std::make_shared<rs::exec::ThreadPool>(options_.num_threads);
  }
  // Dense IDs over the whole database, built once: every report's set
  // algebra (Jaccard pairs, version matching, diffs, exclusives) runs on
  // bitsets against this universe.
  interner_ = std::make_shared<const rs::store::CertInterner>(
      rs::store::CertInterner::from_database(scenario_.database()));
}

std::string EcosystemStudy::report_table1() const {
  rs::obs::Span span("report/table1");
  const auto population = rs::synth::user_agent_population();
  const auto summary = rs::analysis::coverage_summary(population);

  TextTable t({"OS", "User Agent", "# versions", "Included?", "Provider"});
  t.set_align(2, Align::kRight);
  std::string last_os;
  for (const auto& g : population) {
    if (g.os != last_os && !last_os.empty()) t.add_separator();
    t.add_row({g.os == last_os ? "" : g.os, g.agent,
               std::to_string(g.versions), g.included ? "yes" : "no",
               g.provider});
    last_os = g.os;
  }

  std::string out = "Table 1: Major CDN Top 200 User Agents\n" + t.render();
  out += "\nTotal included: " + std::to_string(summary.included_user_agents) +
         " of " + std::to_string(summary.total_user_agents) + " (" +
         fmt_percent(summary.coverage) + ")  [paper: 154 (77.0%)]\n";
  return out;
}

std::string EcosystemStudy::report_table2() const {
  rs::obs::Span span("report/table2");
  const auto reference = rs::synth::paper::table2_dataset();
  TextTable t({"Root store", "From", "To", "# SS", "# SS (paper)", "# Uniq",
               "# Uniq (paper)", "Details"});
  for (std::size_t i = 3; i <= 6; ++i) t.set_align(i, Align::kRight);

  std::size_t measured_total = 0;
  int paper_total = 0;
  for (const auto& row : reference) {
    const auto* h = database().find(row.provider);
    if (h == nullptr || h->empty()) continue;
    // "# Uniq" counts distinct store states across the history.
    std::size_t uniq = 0;
    rs::store::FingerprintSet prev;
    bool first = true;
    for (const auto& snap : h->snapshots()) {
      auto prints = snap.all_fingerprints();
      if (first || !(prints == prev)) ++uniq;
      prev = std::move(prints);
      first = false;
    }
    measured_total += h->size();
    paper_total += row.snapshots;
    t.add_row({row.provider, h->first_date().to_string(),
               h->last_date().to_string(), std::to_string(h->size()),
               std::to_string(row.snapshots), std::to_string(uniq),
               std::to_string(row.unique_stores), row.details});
  }
  std::string out = "Table 2: Dataset (root store histories)\n" + t.render();
  out += "\nTotal snapshots: measured " + std::to_string(measured_total) +
         ", paper " + std::to_string(paper_total) + "\n";
  return out;
}

std::string EcosystemStudy::report_table3() const {
  rs::obs::Span span("report/table3");
  const auto reference = rs::synth::paper::table3_hygiene();
  TextTable t({"Root store", "Avg. Size", "(paper)", "Avg. Expired", "(paper)",
               "MD5 purge", "(paper)", "1024-bit purge", "(paper)"});
  for (std::size_t i = 1; i <= 4; ++i) t.set_align(i, Align::kRight);

  auto month_of = [](const std::optional<rs::util::Date>& d) {
    if (!d) return std::string("never");
    return d->to_string().substr(0, 7);
  };
  for (const auto& row : reference) {
    const auto* h = database().find(row.program);
    if (h == nullptr) continue;
    const auto m = rs::analysis::hygiene_metrics(*h);
    t.add_row({row.program, fmt_double(m.avg_size, 1),
               fmt_double(row.avg_size, 1), fmt_double(m.avg_expired, 1),
               fmt_double(row.avg_expired, 1), month_of(m.md5_removed),
               row.md5_removed, month_of(m.weak_rsa_removed),
               row.rsa1024_removed});
  }
  return "Table 3: Root store hygiene (measured vs paper)\n" + t.render();
}

std::string EcosystemStudy::report_table4() {
  rs::obs::Span span("report/table4");
  std::string out = "Table 4: Responses to high-severity NSS removals\n";
  for (const auto& incident : rs::synth::high_severity_incidents()) {
    const auto measured = rs::analysis::measure_incident(
        database(), incident, scenario_.factory(), &scenario_.overlays());
    out += "\n" + incident.name + " [" + incident.details +
           "]  NSS removal: " + incident.nss_removal.to_string() + "\n";
    TextTable t({"Root store", "# Certs", "Trusted until", "Lag (days)",
                 "Paper lag", "Note"});
    t.set_align(1, Align::kRight);
    t.set_align(3, Align::kRight);
    t.set_align(4, Align::kRight);

    // Order rows by measured trusted_until (paper's presentation order).
    auto rows = measured.responses;
    std::sort(rows.begin(), rows.end(),
              [](const rs::analysis::MeasuredResponse& a,
                 const rs::analysis::MeasuredResponse& b) {
                if (a.still_trusted != b.still_trusted)
                  return !a.still_trusted;
                if (!a.trusted_until || !b.trusted_until)
                  return a.provider < b.provider;
                return *a.trusted_until < *b.trusted_until;
              });
    for (const auto& r : rows) {
      const rs::synth::PaperResponse* paper_row = nullptr;
      for (const auto& p : incident.responses) {
        if (p.provider == r.provider) paper_row = &p;
      }
      std::string until = r.still_trusted
                              ? "still trusted"
                              : (r.trusted_until ? r.trusted_until->to_string()
                                                 : "-");
      std::string lag = r.lag_days ? std::to_string(*r.lag_days)
                                   : (r.still_trusted ? "ongoing" : "-");
      std::string paper_lag =
          paper_row && paper_row->lag_days
              ? std::to_string(*paper_row->lag_days)
              : (paper_row && !paper_row->trusted_until ? "ongoing" : "-");
      std::string note = paper_row ? paper_row->note : "";
      if (r.revoked_not_removed > 0) {
        if (!note.empty()) note += "; ";
        note += "measured: " + std::to_string(r.revoked_not_removed) +
                " root(s) revoked via overlay but still shipped";
      }
      t.add_row({r.provider, std::to_string(r.certs_carried), until, lag,
                 paper_lag, note});
    }
    out += t.render();
  }
  return out;
}

std::string EcosystemStudy::report_table5() const {
  rs::obs::Span span("report/table5");
  TextTable t({"Category", "Name", "Root store?", "Details"});
  std::string last;
  for (const auto& s : rs::synth::software_survey()) {
    const std::string cat = rs::synth::to_string(s.kind);
    if (cat != last && !last.empty()) t.add_separator();
    t.add_row({cat == last ? "" : cat, s.name, s.ships_root_store, s.details});
    last = cat;
  }
  return "Table 5 (Appendix A): Popular OS & TLS software root stores\n" +
         t.render();
}

std::string EcosystemStudy::report_table6() {
  rs::obs::Span span("report/table6");
  const std::vector<std::string> programs = {"NSS", "Java", "Apple",
                                             "Microsoft"};
  const auto measured =
      rs::analysis::exclusive_roots(database(), programs, interner_.get());
  const auto reference = rs::synth::paper::table6_counts();

  std::string out =
      "Table 6 (Appendix B): program-exclusive TLS roots (measured vs "
      "paper)\n";
  TextTable summary({"Program", "Exclusive (measured)", "Exclusive (paper)"});
  summary.set_align(1, Align::kRight);
  summary.set_align(2, Align::kRight);
  for (const auto& ref : reference) {
    for (const auto& m : measured) {
      if (m.program == ref.program) {
        summary.add_row({ref.program, std::to_string(m.roots.size()),
                         std::to_string(ref.exclusive_roots)});
      }
    }
  }
  out += summary.render();

  out += "\nPer-root detail (scenario ground truth):\n";
  TextTable detail({"Root", "Program", "CA", "NSS status", "Details"});
  for (const auto& meta : scenario_.exclusive_roots()) {
    std::string short_id = meta.root_id;
    if (auto cert = scenario_.factory().find(meta.root_id)) {
      short_id = cert->short_id() + "...";
    }
    detail.add_row(
        {short_id, meta.program, meta.ca_name, meta.nss_status, meta.details});
  }
  out += detail.render();

  // CA-operator view (§5.2 reasons about issuers, not certificates).
  const auto single = rs::analysis::single_program_operators(
      database(), programs);
  std::map<std::string, std::size_t> per_program;
  for (const auto& f : single) {
    for (const auto& [program, _] : f.roots_per_program) {
      ++per_program[program];
    }
  }
  out += "\nCA operators trusted by exactly one program:\n";
  for (const auto& [program, count] : per_program) {
    out += "  " + program + ": " + std::to_string(count) + " operator(s)\n";
  }
  return out;
}

std::string EcosystemStudy::report_table7() {
  rs::obs::Span span("report/table7");
  TextTable t({"Bugzilla ID", "Severity", "Removed on", "# Certs", "Details"});
  t.set_align(3, Align::kRight);
  auto catalog = scenario_.incidents();
  std::sort(catalog.begin(), catalog.end(),
            [](const rs::synth::Incident& a, const rs::synth::Incident& b) {
              if (a.severity != b.severity)
                return static_cast<int>(a.severity) >
                       static_cast<int>(b.severity);
              return a.nss_removal > b.nss_removal;
            });
  for (const auto& inc : catalog) {
    t.add_row({inc.bugzilla_id, rs::synth::to_string(inc.severity),
               inc.nss_removal.to_string(),
               std::to_string(inc.root_ids.size()),
               inc.name + (inc.details.empty() ? "" : " - " + inc.details)});
  }
  std::string out =
      "Table 7 (Appendix C): NSS removals since 2010\n" + t.render();

  // §5.3's side-finding: Mozilla's Removed CA Report misses most routine
  // removals.  Audit the analog: the "report" covers the tracked incidents
  // (the Bugzilla-visible removals), while the history also contains
  // expiry- and purge-driven disappearances.
  const auto* nss = database().find("NSS");
  if (nss != nullptr) {
    const auto measured = rs::analysis::measured_removals(*nss);
    std::vector<rs::crypto::Sha256Digest> reported;
    auto& factory = scenario_.factory();
    for (const auto& inc : catalog) {
      for (const auto& id : inc.root_ids) {
        if (auto cert = factory.find(id)) reported.push_back(cert->sha256());
      }
    }
    const auto audit = rs::analysis::audit_removal_report(measured, reported);
    out += "\nRemoved-CA-report audit (vs measured certdata history):\n";
    out += "  removals visible in history: " + std::to_string(audit.measured) +
           "\n  covered by the report:       " + std::to_string(audit.covered) +
           "\n  missing from the report:     " + std::to_string(audit.missing) +
           " (" + std::to_string(audit.missing_expired) +
           " already expired at removal)\n";
    out += "(paper: manual analysis found 92 removals missing from Mozilla's "
           "Removed CA Report, mostly expirations and CA requests)\n";
  }
  return out;
}

std::string EcosystemStudy::report_figure1(std::size_t max_per_provider) const {
  rs::obs::Span span("report/fig1");
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);  // paper's Figure 1 window
  opts.max_per_provider = max_per_provider;
  const auto dist =
      rs::analysis::jaccard_matrix(database(), opts, pool(), interner_.get());
  const auto mds = rs::analysis::smacof_mds(dist, {}, pool());

  // Cluster and label by root program family.
  const auto clustering = rs::analysis::cluster_snapshots(dist, 0.35);
  std::vector<std::string> family;
  family.reserve(dist.size());
  for (const auto& label : dist.labels) {
    const auto program = rs::synth::program_of_provider(label.provider);
    family.push_back(program ? rs::synth::to_string(*program) : "?");
  }
  const auto quality = rs::analysis::cluster_quality(clustering, family);

  std::string out = "Figure 1: Root store similarity (SMACOF MDS of Jaccard "
                    "distances, 2011-2021)\n";
  out += "snapshots=" + std::to_string(dist.size()) +
         "  smacof-iterations=" + std::to_string(mds.iterations) +
         "  normalized-stress=" + fmt_double(mds.normalized_stress, 4) + "\n\n";

  // ASCII scatter: 72x28 grid, one letter per program family.
  constexpr int kW = 72, kH = 26;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
  for (const auto& p : mds.points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double spanx = std::max(1e-12, max_x - min_x);
  const double spany = std::max(1e-12, max_y - min_y);
  auto family_char = [](const std::string& f) {
    if (f == "Microsoft") return 'M';
    if (f == "Apple") return 'A';
    if (f == "Java") return 'J';
    if (f == "Mozilla/NSS") return 'n';
    return '?';
  };
  for (std::size_t i = 0; i < mds.points.size(); ++i) {
    const int cx = static_cast<int>((mds.points[i].x - min_x) / spanx * (kW - 1));
    const int cy = static_cast<int>((mds.points[i].y - min_y) / spany * (kH - 1));
    grid[static_cast<std::size_t>(kH - 1 - cy)][static_cast<std::size_t>(cx)] =
        family_char(family[i]);
  }
  out += "  legend: M=Microsoft  A=Apple  J=Java  n=NSS family\n";
  for (const auto& row : grid) out += "  |" + row + "|\n";

  out += "\nClusters (single linkage, cutoff 0.35):\n";
  TextTable t({"Cluster", "Size", "Majority family", "Purity"});
  t.set_align(1, Align::kRight);
  const auto members = rs::analysis::cluster_members(clustering);
  for (std::size_t k = 0; k < members.size(); ++k) {
    t.add_row({std::to_string(k), std::to_string(members[k].size()),
               quality.majority_label[k], fmt_percent(quality.purity[k])});
  }
  out += t.render();
  out += "overall purity: " + fmt_percent(quality.overall_purity) +
         "   silhouette: " +
         fmt_double(rs::analysis::silhouette_score(dist, clustering), 3) +
         "   clusters found: " + std::to_string(clustering.cluster_count) +
         " (paper: 4 disjoint families)\n";

  // §4 outliers: snapshots preceded by unusually large batch changes
  // (the paper's Apple 2011-10 / 2014-02 / 2018-09 and Java 2018-08).
  std::vector<rs::analysis::ChurnSeries> churn;
  for (const auto& [name, history] : database().histories()) {
    (void)name;
    churn.push_back(rs::analysis::churn_series(history));
  }
  const auto outliers = rs::analysis::find_outliers(churn);
  out += "\nOrdination outliers (batch-change snapshots, sigma >= 2):\n";
  std::size_t shown = 0;
  for (const auto& o : outliers) {
    if (shown++ >= 8) break;
    out += "  " + o.provider + " @ " + o.point.date.to_string() + ": +" +
           std::to_string(o.point.added) + " / -" +
           std::to_string(o.point.removed) + " roots (" +
           fmt_double(o.score, 1) + " sigma)\n";
  }
  if (outliers.empty()) out += "  (none)\n";
  out += "(paper: Java 2018-08 with 30 changed certificates; Apple 2011-10, "
         "2014-02, 2018-09)\n";
  return out;
}

std::string EcosystemStudy::report_figure2() const {
  rs::obs::Span span("report/fig2");
  const auto population = rs::synth::user_agent_population();
  const auto attribution = rs::analysis::attribute_programs(population);
  const auto reference = rs::synth::paper::figure2_shares();

  std::string out = "Figure 2: Root store ecosystem (inverted pyramid)\n";
  TextTable t({"Root program", "UA count", "Share", "Paper share"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  t.set_align(3, Align::kRight);
  for (const auto& ref : reference) {
    const auto it = attribution.ua_count.find(ref.program);
    const int count = it == attribution.ua_count.end() ? 0 : it->second;
    const auto share_it = attribution.ua_share.find(ref.program);
    const double share =
        share_it == attribution.ua_share.end() ? 0.0 : share_it->second;
    t.add_row({ref.program, std::to_string(count), fmt_percent(share),
               fmt_percent(ref.share)});
  }
  out += t.render();
  out += "unattributed UAs: " + std::to_string(attribution.unattributed) + "\n";

  // The inverted pyramid, drawn: many user agents, a dozen providers,
  // three-plus-one root programs.
  std::size_t ua_families = 0;
  for (const auto& g : population) {
    if (g.included) ++ua_families;
  }
  const auto providers = database().providers();
  out += "\n";
  out += "  user agents          " + std::string(60, 'v') + "  (" +
         std::to_string(population.size()) + " UA groups, " +
         std::to_string(ua_families) + " with stores)\n";
  out += "  root store providers     " + std::string(2 * providers.size(), 'v') +
         "  (" + std::to_string(providers.size()) + ": ";
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (i != 0) out += " ";
    out += providers[i];
  }
  out += ")\n";
  out += "  root programs                " + std::string(8, 'v') +
         "  (Microsoft, NSS, Apple + Java)\n";

  out += "\nProvider families (derivatives resolve to NSS):\n";
  for (const auto& name : providers) {
    const auto program = rs::synth::program_of_provider(name);
    out += "  " + name + " -> " +
           (program ? rs::synth::to_string(*program) : "?") + "\n";
  }
  return out;
}

std::string EcosystemStudy::report_figure3() const {
  rs::obs::Span span("report/fig3");
  const auto* nss = database().find("NSS");
  std::string out = "Figure 3: NSS derivative staleness\n";
  if (nss == nullptr) return out + "(no NSS history)\n";
  const auto index = rs::analysis::build_version_index(*nss, interner_);
  out += "NSS substantial versions: " + std::to_string(index.size()) + "\n";

  const auto reference = rs::synth::paper::figure3_staleness();
  TextTable t({"Derivative", "Avg. versions behind", "Paper", "Always stale?"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);

  std::vector<std::pair<double, std::string>> order;
  std::map<std::string, rs::analysis::StalenessResult> results;
  for (const auto& ref : reference) {
    const auto* h = database().find(ref.provider);
    if (h == nullptr) continue;
    auto res = rs::analysis::derivative_staleness(*h, index, pool());
    order.emplace_back(res.avg_versions_behind, ref.provider);
    results.emplace(ref.provider, std::move(res));
  }
  std::sort(order.begin(), order.end());
  for (const auto& [avg, provider] : order) {
    double paper_value = 0;
    for (const auto& ref : reference) {
      if (ref.provider == provider) paper_value = ref.versions_behind;
    }
    const auto& res = results.at(provider);
    t.add_row({provider, fmt_double(avg, 2), fmt_double(paper_value, 2),
               res.always_stale ? "yes" : "no"});
  }
  out += t.render();
  out += "(paper ordering: Alpine < Debian/Ubuntu < NodeJS < Android < "
         "AmazonLinux)\n";

  // §6.1 update dynamics: how often each provider actually ships changes.
  out += "\nUpdate cadence:\n";
  TextTable cadence({"Provider", "Snapshots", "Substantial", "No-op",
                     "Median interval (d)", "Substantial/yr"});
  for (std::size_t i = 1; i <= 5; ++i) cadence.set_align(i, Align::kRight);
  for (const char* name : {"NSS", "Alpine", "Debian", "Ubuntu", "NodeJS",
                           "Android", "AmazonLinux"}) {
    const auto* h = database().find(name);
    if (h == nullptr) continue;
    const auto c = rs::analysis::update_cadence(*h);
    cadence.add_row({name, std::to_string(c.snapshots),
                     std::to_string(c.substantial_updates),
                     std::to_string(c.noop_updates),
                     fmt_double(c.median_interval_days, 0),
                     fmt_double(c.substantial_per_year, 1)});
  }
  out += cadence.render();
  out += "(paper: no derivative matches NSS's update regularity; some "
         "derivative releases ignore pending NSS updates)\n";
  return out;
}

std::string EcosystemStudy::report_figure4() const {
  rs::obs::Span span("report/fig4");
  const auto* nss = database().find("NSS");
  std::string out = "Figure 4: NSS derivative diffs (added/removed vs matched "
                    "NSS version)\n";
  if (nss == nullptr) return out + "(no NSS history)\n";
  const auto index = rs::analysis::build_version_index(*nss, interner_);

  for (const auto& name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = database().find(name);
    if (h == nullptr) continue;
    const auto series = rs::analysis::derivative_diffs(*h, *nss, index, pool());

    std::array<std::size_t, rs::analysis::kAddCategoryCount> add_totals{};
    std::array<std::size_t, rs::analysis::kRemoveCategoryCount> rm_totals{};
    std::size_t deviating = 0;
    std::size_t peak_added = 0, peak_removed = 0;
    for (const auto& p : series.points) {
      for (std::size_t c = 0; c < p.adds.size(); ++c) add_totals[c] += p.adds[c];
      for (std::size_t c = 0; c < p.removes.size(); ++c) {
        rm_totals[c] += p.removes[c];
      }
      if (p.added_total() + p.removed_total() > 0) ++deviating;
      peak_added = std::max(peak_added, p.added_total());
      peak_removed = std::max(peak_removed, p.removed_total());
    }

    out += "\n" + std::string(name) + ": " +
           std::to_string(series.points.size()) + " snapshots, " +
           std::to_string(deviating) + " deviate from NSS (ever_deviates=" +
           (series.ever_deviates ? "yes" : "no") + ")\n";
    TextTable t({"Category", "Total roots (snapshot-summed)"});
    t.set_align(1, Align::kRight);
    for (std::size_t c = 0; c < add_totals.size(); ++c) {
      t.add_row({std::string("added: ") +
                     rs::analysis::to_string(static_cast<rs::analysis::AddCategory>(c)),
                 std::to_string(add_totals[c])});
    }
    for (std::size_t c = 0; c < rm_totals.size(); ++c) {
      t.add_row({std::string("removed: ") +
                     rs::analysis::to_string(
                         static_cast<rs::analysis::RemoveCategory>(c)),
                 std::to_string(rm_totals[c])});
    }
    t.add_row({"peak added in one snapshot", std::to_string(peak_added)});
    t.add_row({"peak removed in one snapshot", std::to_string(peak_removed)});
    out += t.render();

    // Sparkline of total deviation over time.
    out += "  deviation over time: ";
    for (const auto& p : series.points) {
      const std::size_t mag = p.added_total() + p.removed_total();
      out += mag == 0 ? '.' : (mag < 3 ? '+' : (mag < 10 ? '*' : '#'));
    }
    out += "\n";
  }
  out += "\n(paper: every derivative deviates; Symantec distrust fallout at "
         "2020; Debian/Ubuntu non-NSS roots until 2015; email conflation "
         "until 2017/2020)\n";
  return out;
}

}  // namespace rs::core
