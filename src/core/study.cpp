#include "src/core/study.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/analysis/attribution.h"
#include "src/analysis/cadence.h"
#include "src/analysis/churn.h"
#include "src/analysis/cluster.h"
#include "src/analysis/diffs.h"
#include "src/analysis/exclusive.h"
#include "src/analysis/hygiene.h"
#include "src/analysis/incident_response.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/operators.h"
#include "src/analysis/removals.h"
#include "src/analysis/staleness.h"
#include "src/landscape/index_view.h"
#include "src/obs/span.h"
#include "src/query/trust_index.h"
#include "src/synth/ct_log.h"
#include "src/synth/paper_reference.h"
#include "src/synth/software_survey.h"
#include "src/synth/user_agents.h"
#include "src/util/table.h"

namespace rs::core {

using rs::util::Align;
using rs::util::fmt_double;
using rs::util::fmt_percent;
using rs::util::TextTable;

EcosystemStudy EcosystemStudy::from_paper_scenario(std::uint64_t seed,
                                                   const StudyOptions& options) {
  return EcosystemStudy(rs::synth::build_paper_scenario(seed), options);
}

EcosystemStudy::EcosystemStudy(rs::synth::PaperScenario scenario,
                               const StudyOptions& options)
    : scenario_(std::move(scenario)), options_(options) {
  rs::obs::Span span("study/build");
  if (options_.num_threads > 0) {
    pool_ = std::make_shared<rs::exec::ThreadPool>(options_.num_threads);
  }
  // Dense IDs over the whole database, built once: every report's set
  // algebra (Jaccard pairs, version matching, diffs, exclusives) runs on
  // bitsets against this universe.
  interner_ = std::make_shared<const rs::store::CertInterner>(
      rs::store::CertInterner::from_database(scenario_.database()));
}

std::string EcosystemStudy::report_table1() const {
  rs::obs::Span span("report/table1");
  const auto population = rs::synth::user_agent_population();
  const auto summary = rs::analysis::coverage_summary(population);

  TextTable t({"OS", "User Agent", "# versions", "Included?", "Provider"});
  t.set_align(2, Align::kRight);
  std::string last_os;
  for (const auto& g : population) {
    if (g.os != last_os && !last_os.empty()) t.add_separator();
    t.add_row({g.os == last_os ? "" : g.os, g.agent,
               std::to_string(g.versions), g.included ? "yes" : "no",
               g.provider});
    last_os = g.os;
  }

  std::string out = "Table 1: Major CDN Top 200 User Agents\n" + t.render();
  out += "\nTotal included: " + std::to_string(summary.included_user_agents) +
         " of " + std::to_string(summary.total_user_agents) + " (" +
         fmt_percent(summary.coverage) + ")  [paper: 154 (77.0%)]\n";
  return out;
}

std::string EcosystemStudy::report_table2() const {
  rs::obs::Span span("report/table2");
  const auto reference = rs::synth::paper::table2_dataset();
  TextTable t({"Root store", "From", "To", "# SS", "# SS (paper)", "# Uniq",
               "# Uniq (paper)", "Details"});
  for (std::size_t i = 3; i <= 6; ++i) t.set_align(i, Align::kRight);

  std::size_t measured_total = 0;
  int paper_total = 0;
  for (const auto& row : reference) {
    const auto* h = database().find(row.provider);
    if (h == nullptr || h->empty()) continue;
    // "# Uniq" counts distinct store states across the history.
    std::size_t uniq = 0;
    rs::store::FingerprintSet prev;
    bool first = true;
    for (const auto& snap : h->snapshots()) {
      auto prints = snap.all_fingerprints();
      if (first || !(prints == prev)) ++uniq;
      prev = std::move(prints);
      first = false;
    }
    measured_total += h->size();
    paper_total += row.snapshots;
    t.add_row({row.provider, h->first_date().to_string(),
               h->last_date().to_string(), std::to_string(h->size()),
               std::to_string(row.snapshots), std::to_string(uniq),
               std::to_string(row.unique_stores), row.details});
  }
  std::string out = "Table 2: Dataset (root store histories)\n" + t.render();
  out += "\nTotal snapshots: measured " + std::to_string(measured_total) +
         ", paper " + std::to_string(paper_total) + "\n";
  return out;
}

std::string EcosystemStudy::report_table3() const {
  rs::obs::Span span("report/table3");
  const auto reference = rs::synth::paper::table3_hygiene();
  TextTable t({"Root store", "Avg. Size", "(paper)", "Avg. Expired", "(paper)",
               "MD5 purge", "(paper)", "1024-bit purge", "(paper)"});
  for (std::size_t i = 1; i <= 4; ++i) t.set_align(i, Align::kRight);

  auto month_of = [](const std::optional<rs::util::Date>& d) {
    if (!d) return std::string("never");
    return d->to_string().substr(0, 7);
  };
  for (const auto& row : reference) {
    const auto* h = database().find(row.program);
    if (h == nullptr) continue;
    const auto m = rs::analysis::hygiene_metrics(*h);
    t.add_row({row.program, fmt_double(m.avg_size, 1),
               fmt_double(row.avg_size, 1), fmt_double(m.avg_expired, 1),
               fmt_double(row.avg_expired, 1), month_of(m.md5_removed),
               row.md5_removed, month_of(m.weak_rsa_removed),
               row.rsa1024_removed});
  }
  return "Table 3: Root store hygiene (measured vs paper)\n" + t.render();
}

std::string EcosystemStudy::report_table4() {
  rs::obs::Span span("report/table4");
  std::string out = "Table 4: Responses to high-severity NSS removals\n";
  for (const auto& incident : rs::synth::high_severity_incidents()) {
    const auto measured = rs::analysis::measure_incident(
        database(), incident, scenario_.factory(), &scenario_.overlays());
    out += "\n" + incident.name + " [" + incident.details +
           "]  NSS removal: " + incident.nss_removal.to_string() + "\n";
    TextTable t({"Root store", "# Certs", "Trusted until", "Lag (days)",
                 "Paper lag", "Note"});
    t.set_align(1, Align::kRight);
    t.set_align(3, Align::kRight);
    t.set_align(4, Align::kRight);

    // Order rows by measured trusted_until (paper's presentation order).
    auto rows = measured.responses;
    std::sort(rows.begin(), rows.end(),
              [](const rs::analysis::MeasuredResponse& a,
                 const rs::analysis::MeasuredResponse& b) {
                if (a.still_trusted != b.still_trusted)
                  return !a.still_trusted;
                if (!a.trusted_until || !b.trusted_until)
                  return a.provider < b.provider;
                return *a.trusted_until < *b.trusted_until;
              });
    for (const auto& r : rows) {
      const rs::synth::PaperResponse* paper_row = nullptr;
      for (const auto& p : incident.responses) {
        if (p.provider == r.provider) paper_row = &p;
      }
      std::string until = r.still_trusted
                              ? "still trusted"
                              : (r.trusted_until ? r.trusted_until->to_string()
                                                 : "-");
      std::string lag = r.lag_days ? std::to_string(*r.lag_days)
                                   : (r.still_trusted ? "ongoing" : "-");
      std::string paper_lag =
          paper_row && paper_row->lag_days
              ? std::to_string(*paper_row->lag_days)
              : (paper_row && !paper_row->trusted_until ? "ongoing" : "-");
      std::string note = paper_row ? paper_row->note : "";
      if (r.revoked_not_removed > 0) {
        if (!note.empty()) note += "; ";
        note += "measured: " + std::to_string(r.revoked_not_removed) +
                " root(s) revoked via overlay but still shipped";
      }
      t.add_row({r.provider, std::to_string(r.certs_carried), until, lag,
                 paper_lag, note});
    }
    out += t.render();
  }
  return out;
}

std::string EcosystemStudy::report_table5() const {
  rs::obs::Span span("report/table5");
  TextTable t({"Category", "Name", "Root store?", "Details"});
  std::string last;
  for (const auto& s : rs::synth::software_survey()) {
    const std::string cat = rs::synth::to_string(s.kind);
    if (cat != last && !last.empty()) t.add_separator();
    t.add_row({cat == last ? "" : cat, s.name, s.ships_root_store, s.details});
    last = cat;
  }
  return "Table 5 (Appendix A): Popular OS & TLS software root stores\n" +
         t.render();
}

std::string EcosystemStudy::report_table6() {
  rs::obs::Span span("report/table6");
  const std::vector<std::string> programs = {"NSS", "Java", "Apple",
                                             "Microsoft"};
  const auto measured =
      rs::analysis::exclusive_roots(database(), programs, interner_.get());
  const auto reference = rs::synth::paper::table6_counts();

  std::string out =
      "Table 6 (Appendix B): program-exclusive TLS roots (measured vs "
      "paper)\n";
  TextTable summary({"Program", "Exclusive (measured)", "Exclusive (paper)"});
  summary.set_align(1, Align::kRight);
  summary.set_align(2, Align::kRight);
  for (const auto& ref : reference) {
    for (const auto& m : measured) {
      if (m.program == ref.program) {
        summary.add_row({ref.program, std::to_string(m.roots.size()),
                         std::to_string(ref.exclusive_roots)});
      }
    }
  }
  out += summary.render();

  out += "\nPer-root detail (scenario ground truth):\n";
  TextTable detail({"Root", "Program", "CA", "NSS status", "Details"});
  for (const auto& meta : scenario_.exclusive_roots()) {
    std::string short_id = meta.root_id;
    if (auto cert = scenario_.factory().find(meta.root_id)) {
      short_id = cert->short_id() + "...";
    }
    detail.add_row(
        {short_id, meta.program, meta.ca_name, meta.nss_status, meta.details});
  }
  out += detail.render();

  // CA-operator view (§5.2 reasons about issuers, not certificates).
  const auto single = rs::analysis::single_program_operators(
      database(), programs);
  std::map<std::string, std::size_t> per_program;
  for (const auto& f : single) {
    for (const auto& [program, _] : f.roots_per_program) {
      ++per_program[program];
    }
  }
  out += "\nCA operators trusted by exactly one program:\n";
  for (const auto& [program, count] : per_program) {
    out += "  " + program + ": " + std::to_string(count) + " operator(s)\n";
  }
  return out;
}

std::string EcosystemStudy::report_table7() {
  rs::obs::Span span("report/table7");
  TextTable t({"Bugzilla ID", "Severity", "Removed on", "# Certs", "Details"});
  t.set_align(3, Align::kRight);
  auto catalog = scenario_.incidents();
  std::sort(catalog.begin(), catalog.end(),
            [](const rs::synth::Incident& a, const rs::synth::Incident& b) {
              if (a.severity != b.severity)
                return static_cast<int>(a.severity) >
                       static_cast<int>(b.severity);
              return a.nss_removal > b.nss_removal;
            });
  for (const auto& inc : catalog) {
    t.add_row({inc.bugzilla_id, rs::synth::to_string(inc.severity),
               inc.nss_removal.to_string(),
               std::to_string(inc.root_ids.size()),
               inc.name + (inc.details.empty() ? "" : " - " + inc.details)});
  }
  std::string out =
      "Table 7 (Appendix C): NSS removals since 2010\n" + t.render();

  // §5.3's side-finding: Mozilla's Removed CA Report misses most routine
  // removals.  Audit the analog: the "report" covers the tracked incidents
  // (the Bugzilla-visible removals), while the history also contains
  // expiry- and purge-driven disappearances.
  const auto* nss = database().find("NSS");
  if (nss != nullptr) {
    const auto measured = rs::analysis::measured_removals(*nss);
    std::vector<rs::crypto::Sha256Digest> reported;
    auto& factory = scenario_.factory();
    for (const auto& inc : catalog) {
      for (const auto& id : inc.root_ids) {
        if (auto cert = factory.find(id)) reported.push_back(cert->sha256());
      }
    }
    const auto audit = rs::analysis::audit_removal_report(measured, reported);
    out += "\nRemoved-CA-report audit (vs measured certdata history):\n";
    out += "  removals visible in history: " + std::to_string(audit.measured) +
           "\n  covered by the report:       " + std::to_string(audit.covered) +
           "\n  missing from the report:     " + std::to_string(audit.missing) +
           " (" + std::to_string(audit.missing_expired) +
           " already expired at removal)\n";
    out += "(paper: manual analysis found 92 removals missing from Mozilla's "
           "Removed CA Report, mostly expirations and CA requests)\n";
  }
  return out;
}

std::string EcosystemStudy::report_figure1(std::size_t max_per_provider) const {
  rs::obs::Span span("report/fig1");
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);  // paper's Figure 1 window
  opts.max_per_provider = max_per_provider;
  const auto dist =
      rs::analysis::jaccard_matrix(database(), opts, pool(), interner_.get());
  const auto mds = rs::analysis::smacof_mds(dist, {}, pool());

  // Cluster and label by root program family.
  const auto clustering = rs::analysis::cluster_snapshots(dist, 0.35);
  std::vector<std::string> family;
  family.reserve(dist.size());
  for (const auto& label : dist.labels) {
    const auto program = rs::synth::program_of_provider(label.provider);
    family.push_back(program ? rs::synth::to_string(*program) : "?");
  }
  const auto quality = rs::analysis::cluster_quality(clustering, family);

  std::string out = "Figure 1: Root store similarity (SMACOF MDS of Jaccard "
                    "distances, 2011-2021)\n";
  out += "snapshots=" + std::to_string(dist.size()) +
         "  smacof-iterations=" + std::to_string(mds.iterations) +
         "  normalized-stress=" + fmt_double(mds.normalized_stress, 4) + "\n\n";

  // ASCII scatter: 72x28 grid, one letter per program family.
  constexpr int kW = 72, kH = 26;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
  for (const auto& p : mds.points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double spanx = std::max(1e-12, max_x - min_x);
  const double spany = std::max(1e-12, max_y - min_y);
  auto family_char = [](const std::string& f) {
    if (f == "Microsoft") return 'M';
    if (f == "Apple") return 'A';
    if (f == "Java") return 'J';
    if (f == "Mozilla/NSS") return 'n';
    return '?';
  };
  for (std::size_t i = 0; i < mds.points.size(); ++i) {
    const int cx = static_cast<int>((mds.points[i].x - min_x) / spanx * (kW - 1));
    const int cy = static_cast<int>((mds.points[i].y - min_y) / spany * (kH - 1));
    grid[static_cast<std::size_t>(kH - 1 - cy)][static_cast<std::size_t>(cx)] =
        family_char(family[i]);
  }
  out += "  legend: M=Microsoft  A=Apple  J=Java  n=NSS family\n";
  for (const auto& row : grid) out += "  |" + row + "|\n";

  out += "\nClusters (single linkage, cutoff 0.35):\n";
  TextTable t({"Cluster", "Size", "Majority family", "Purity"});
  t.set_align(1, Align::kRight);
  const auto members = rs::analysis::cluster_members(clustering);
  for (std::size_t k = 0; k < members.size(); ++k) {
    t.add_row({std::to_string(k), std::to_string(members[k].size()),
               quality.majority_label[k], fmt_percent(quality.purity[k])});
  }
  out += t.render();
  out += "overall purity: " + fmt_percent(quality.overall_purity) +
         "   silhouette: " +
         fmt_double(rs::analysis::silhouette_score(dist, clustering), 3) +
         "   clusters found: " + std::to_string(clustering.cluster_count) +
         " (paper: 4 disjoint families)\n";

  // §4 outliers: snapshots preceded by unusually large batch changes
  // (the paper's Apple 2011-10 / 2014-02 / 2018-09 and Java 2018-08).
  std::vector<rs::analysis::ChurnSeries> churn;
  for (const auto& [name, history] : database().histories()) {
    (void)name;
    churn.push_back(rs::analysis::churn_series(history));
  }
  const auto outliers = rs::analysis::find_outliers(churn);
  out += "\nOrdination outliers (batch-change snapshots, sigma >= 2):\n";
  std::size_t shown = 0;
  for (const auto& o : outliers) {
    if (shown++ >= 8) break;
    out += "  " + o.provider + " @ " + o.point.date.to_string() + ": +" +
           std::to_string(o.point.added) + " / -" +
           std::to_string(o.point.removed) + " roots (" +
           fmt_double(o.score, 1) + " sigma)\n";
  }
  if (outliers.empty()) out += "  (none)\n";
  out += "(paper: Java 2018-08 with 30 changed certificates; Apple 2011-10, "
         "2014-02, 2018-09)\n";
  return out;
}

std::string EcosystemStudy::report_figure2() const {
  rs::obs::Span span("report/fig2");
  const auto population = rs::synth::user_agent_population();
  const auto attribution = rs::analysis::attribute_programs(population);
  const auto reference = rs::synth::paper::figure2_shares();

  std::string out = "Figure 2: Root store ecosystem (inverted pyramid)\n";
  TextTable t({"Root program", "UA count", "Share", "Paper share"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);
  t.set_align(3, Align::kRight);
  for (const auto& ref : reference) {
    const auto it = attribution.ua_count.find(ref.program);
    const int count = it == attribution.ua_count.end() ? 0 : it->second;
    const auto share_it = attribution.ua_share.find(ref.program);
    const double share =
        share_it == attribution.ua_share.end() ? 0.0 : share_it->second;
    t.add_row({ref.program, std::to_string(count), fmt_percent(share),
               fmt_percent(ref.share)});
  }
  out += t.render();
  out += "unattributed UAs: " + std::to_string(attribution.unattributed) + "\n";

  // The inverted pyramid, drawn: many user agents, a dozen providers,
  // three-plus-one root programs.
  std::size_t ua_families = 0;
  for (const auto& g : population) {
    if (g.included) ++ua_families;
  }
  const auto providers = database().providers();
  out += "\n";
  out += "  user agents          " + std::string(60, 'v') + "  (" +
         std::to_string(population.size()) + " UA groups, " +
         std::to_string(ua_families) + " with stores)\n";
  out += "  root store providers     " + std::string(2 * providers.size(), 'v') +
         "  (" + std::to_string(providers.size()) + ": ";
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (i != 0) out += " ";
    out += providers[i];
  }
  out += ")\n";
  out += "  root programs                " + std::string(8, 'v') +
         "  (Microsoft, NSS, Apple + Java)\n";

  out += "\nProvider families (derivatives resolve to NSS):\n";
  for (const auto& name : providers) {
    const auto program = rs::synth::program_of_provider(name);
    out += "  " + name + " -> " +
           (program ? rs::synth::to_string(*program) : "?") + "\n";
  }
  return out;
}

std::string EcosystemStudy::report_figure3() const {
  rs::obs::Span span("report/fig3");
  const auto* nss = database().find("NSS");
  std::string out = "Figure 3: NSS derivative staleness\n";
  if (nss == nullptr) return out + "(no NSS history)\n";
  const auto index = rs::analysis::build_version_index(*nss, interner_);
  out += "NSS substantial versions: " + std::to_string(index.size()) + "\n";

  const auto reference = rs::synth::paper::figure3_staleness();
  TextTable t({"Derivative", "Avg. versions behind", "Paper", "Always stale?"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kRight);

  std::vector<std::pair<double, std::string>> order;
  std::map<std::string, rs::analysis::StalenessResult> results;
  for (const auto& ref : reference) {
    const auto* h = database().find(ref.provider);
    if (h == nullptr) continue;
    auto res = rs::analysis::derivative_staleness(*h, index, pool());
    order.emplace_back(res.avg_versions_behind, ref.provider);
    results.emplace(ref.provider, std::move(res));
  }
  std::sort(order.begin(), order.end());
  for (const auto& [avg, provider] : order) {
    double paper_value = 0;
    for (const auto& ref : reference) {
      if (ref.provider == provider) paper_value = ref.versions_behind;
    }
    const auto& res = results.at(provider);
    t.add_row({provider, fmt_double(avg, 2), fmt_double(paper_value, 2),
               res.always_stale ? "yes" : "no"});
  }
  out += t.render();
  out += "(paper ordering: Alpine < Debian/Ubuntu < NodeJS < Android < "
         "AmazonLinux)\n";

  // §6.1 update dynamics: how often each provider actually ships changes.
  out += "\nUpdate cadence:\n";
  TextTable cadence({"Provider", "Snapshots", "Substantial", "No-op",
                     "Median interval (d)", "Substantial/yr"});
  for (std::size_t i = 1; i <= 5; ++i) cadence.set_align(i, Align::kRight);
  for (const char* name : {"NSS", "Alpine", "Debian", "Ubuntu", "NodeJS",
                           "Android", "AmazonLinux"}) {
    const auto* h = database().find(name);
    if (h == nullptr) continue;
    const auto c = rs::analysis::update_cadence(*h);
    cadence.add_row({name, std::to_string(c.snapshots),
                     std::to_string(c.substantial_updates),
                     std::to_string(c.noop_updates),
                     fmt_double(c.median_interval_days, 0),
                     fmt_double(c.substantial_per_year, 1)});
  }
  out += cadence.render();
  out += "(paper: no derivative matches NSS's update regularity; some "
         "derivative releases ignore pending NSS updates)\n";
  return out;
}

std::string EcosystemStudy::report_figure4() const {
  rs::obs::Span span("report/fig4");
  const auto* nss = database().find("NSS");
  std::string out = "Figure 4: NSS derivative diffs (added/removed vs matched "
                    "NSS version)\n";
  if (nss == nullptr) return out + "(no NSS history)\n";
  const auto index = rs::analysis::build_version_index(*nss, interner_);

  for (const auto& name :
       {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
    const auto* h = database().find(name);
    if (h == nullptr) continue;
    const auto series = rs::analysis::derivative_diffs(*h, *nss, index, pool());

    std::array<std::size_t, rs::analysis::kAddCategoryCount> add_totals{};
    std::array<std::size_t, rs::analysis::kRemoveCategoryCount> rm_totals{};
    std::size_t deviating = 0;
    std::size_t peak_added = 0, peak_removed = 0;
    for (const auto& p : series.points) {
      for (std::size_t c = 0; c < p.adds.size(); ++c) add_totals[c] += p.adds[c];
      for (std::size_t c = 0; c < p.removes.size(); ++c) {
        rm_totals[c] += p.removes[c];
      }
      if (p.added_total() + p.removed_total() > 0) ++deviating;
      peak_added = std::max(peak_added, p.added_total());
      peak_removed = std::max(peak_removed, p.removed_total());
    }

    out += "\n" + std::string(name) + ": " +
           std::to_string(series.points.size()) + " snapshots, " +
           std::to_string(deviating) + " deviate from NSS (ever_deviates=" +
           (series.ever_deviates ? "yes" : "no") + ")\n";
    TextTable t({"Category", "Total roots (snapshot-summed)"});
    t.set_align(1, Align::kRight);
    for (std::size_t c = 0; c < add_totals.size(); ++c) {
      t.add_row({std::string("added: ") +
                     rs::analysis::to_string(static_cast<rs::analysis::AddCategory>(c)),
                 std::to_string(add_totals[c])});
    }
    for (std::size_t c = 0; c < rm_totals.size(); ++c) {
      t.add_row({std::string("removed: ") +
                     rs::analysis::to_string(
                         static_cast<rs::analysis::RemoveCategory>(c)),
                 std::to_string(rm_totals[c])});
    }
    t.add_row({"peak added in one snapshot", std::to_string(peak_added)});
    t.add_row({"peak removed in one snapshot", std::to_string(peak_removed)});
    out += t.render();

    // Sparkline of total deviation over time.
    out += "  deviation over time: ";
    for (const auto& p : series.points) {
      const std::size_t mag = p.added_total() + p.removed_total();
      out += mag == 0 ? '.' : (mag < 3 ? '+' : (mag < 10 ? '*' : '#'));
    }
    out += "\n";
  }
  out += "\n(paper: every derivative deviates; Symantec distrust fallout at "
         "2020; Debian/Ubuntu non-NSS roots until 2015; email conflation "
         "until 2017/2020)\n";
  return out;
}

const rs::query::TrustIndex& EcosystemStudy::trust_index() {
  if (!trust_index_) {
    trust_index_ = std::make_shared<const rs::query::TrustIndex>(
        rs::query::TrustIndex::build(database(), *interner_, pool()));
  }
  return *trust_index_;
}

namespace {

/// The latest date every covered provider's history still covers — the
/// "common date" the landscape reports anchor their cross-sections on.
rs::util::Date latest_common_date(const rs::query::TrustIndex& index) {
  std::optional<rs::util::Date> d;
  for (const auto& name : index.providers()) {
    const auto cov = index.coverage(name);
    if (!cov) continue;
    if (!d || cov->last < *d) d = cov->last;
  }
  return d.value_or(rs::util::Date{});
}

/// First/last civil years with any coverage, for the yearly grids.
std::pair<int, int> coverage_years(const rs::query::TrustIndex& index) {
  std::optional<rs::util::Date> lo, hi;
  for (const auto& name : index.providers()) {
    const auto cov = index.coverage(name);
    if (!cov) continue;
    if (!lo || cov->first < *lo) lo = cov->first;
    if (!hi || *hi < cov->last) hi = cov->last;
  }
  if (!lo) return {1970, 1970};
  return {lo->year(), hi->year()};
}

/// Sparkline bucket for a count: '.' 0, '+' 1-4, '*' 5-19, '#' 20+.
char count_glyph(std::size_t n) noexcept {
  return n == 0 ? '.' : (n < 5 ? '+' : (n < 20 ? '*' : '#'));
}

}  // namespace

std::string EcosystemStudy::report_agreement() {
  rs::obs::Span span("report/agreement");
  const auto& index = trust_index();
  const rs::util::Date date = latest_common_date(index);
  const auto view = rs::landscape::presence_at(index, date,
                                              rs::query::Scope::kTls);
  const auto summary = rs::landscape::agreement_summary(view.sets, pool());

  std::string out = "Landscape: cross-store agreement at " + date.to_string() +
                    " (TLS scope)\n\n";
  TextTable sizes({"Provider", "Size", "Exclusive"});
  sizes.set_align(1, Align::kRight);
  sizes.set_align(2, Align::kRight);
  for (std::size_t i = 0; i < view.providers.size(); ++i) {
    sizes.add_row({view.providers[i], std::to_string(summary.sizes[i]),
                   std::to_string(summary.exclusive_counts[i])});
  }
  out += sizes.render();
  out += "union=" + std::to_string(summary.union_size) +
         " intersection=" + std::to_string(summary.intersection_size) +
         " global-agreement=" +
         rs::landscape::format_agreement(summary.intersection_size,
                                         summary.union_size) +
         "\n\n";

  // Pairwise Jaccard-agreement matrix (upper triangle; '-' on and below
  // the diagonal).
  std::vector<std::string> header{"Agreement"};
  for (const auto& p : view.providers) header.push_back(p);
  TextTable matrix(header);
  for (std::size_t c = 1; c <= view.providers.size(); ++c) {
    matrix.set_align(c, Align::kRight);
  }
  std::vector<std::vector<std::string>> cells(
      view.providers.size(),
      std::vector<std::string>(view.providers.size(), "-"));
  for (const auto& p : summary.pairs) {
    cells[p.a][p.b] =
        rs::landscape::format_agreement(p.intersection, p.union_size);
  }
  for (std::size_t a = 0; a < view.providers.size(); ++a) {
    std::vector<std::string> row{view.providers[a]};
    for (std::size_t b = 0; b < view.providers.size(); ++b) {
      row.push_back(cells[a][b]);
    }
    matrix.add_row(row);
  }
  out += matrix.render();

  // Yearly series: how the global landscape converged over time.
  const auto [y_first, y_last] = coverage_years(index);
  out += "\nYearly series (Jan 1):\n";
  TextTable series({"Year", "Covered", "Union", "Intersection", "Agreement"});
  for (std::size_t c = 1; c <= 4; ++c) series.set_align(c, Align::kRight);
  for (int y = y_first; y <= y_last; ++y) {
    const auto at = rs::landscape::presence_at(
        index, rs::util::Date::ymd(y, 1, 1), rs::query::Scope::kTls);
    if (at.providers.empty()) continue;
    const auto s = rs::landscape::agreement_summary(at.sets, pool());
    series.add_row({std::to_string(y), std::to_string(at.providers.size()),
                    std::to_string(s.union_size),
                    std::to_string(s.intersection_size),
                    rs::landscape::format_agreement(s.intersection_size,
                                                    s.union_size)});
  }
  out += series.render();
  out += "(paper: stores disagree broadly — no two programs resolve the "
         "same trusted set; derivatives track NSS most closely)\n";
  return out;
}

std::string EcosystemStudy::report_exclusivity() {
  rs::obs::Span span("report/exclusivity");
  const auto& index = trust_index();
  const rs::util::Date date = latest_common_date(index);
  const auto [y_first, y_last] = coverage_years(index);

  std::string out = "Landscape: per-provider exclusive roots (TLS scope)\n\n";

  // At-date exclusives at the latest common date — the cross-sectional
  // companion to Table 6 (which holds latest snapshots against
  // ever-trusted sets; this holds one date against the same date).
  const auto view = rs::landscape::presence_at(index, date,
                                              rs::query::Scope::kTls);
  const auto exclusives = rs::landscape::exclusive_sets(view.sets, view.sets);
  TextTable at_date({"Provider", "Store size", "Exclusive @ " +
                                                   date.to_string()});
  at_date.set_align(1, Align::kRight);
  at_date.set_align(2, Align::kRight);
  for (std::size_t i = 0; i < view.providers.size(); ++i) {
    at_date.add_row({view.providers[i], std::to_string(view.sets[i]->size()),
                     std::to_string(exclusives[i].size())});
  }
  out += at_date.render();
  out += "(Table 6 counts latest-vs-ever exclusives; at-date counts are "
         "higher because other stores' past adoptions don't discount)\n";

  // Yearly exclusive-count series per provider, rendered as counts and a
  // sparkline ('.'=0 '+'=1-4 '*'=5-19 '#'=20+; blank = not covered).
  out += "\nYearly exclusive-root series (Jan 1, " +
         std::to_string(y_first) + "-" + std::to_string(y_last) + "):\n";
  std::vector<std::string> names = index.providers();
  std::map<std::string, std::string> sparks;
  std::map<std::string, std::size_t> totals;
  for (const auto& n : names) sparks[n] = "";
  for (int y = y_first; y <= y_last; ++y) {
    const auto at = rs::landscape::presence_at(
        index, rs::util::Date::ymd(y, 1, 1), rs::query::Scope::kTls);
    const auto ex = rs::landscape::exclusive_sets(at.sets, at.sets);
    std::map<std::string, std::size_t> counts;
    for (std::size_t i = 0; i < at.providers.size(); ++i) {
      counts[at.providers[i]] = ex[i].size();
    }
    for (const auto& n : names) {
      const auto it = counts.find(n);
      if (it == counts.end()) {
        sparks[n] += ' ';
      } else {
        sparks[n] += count_glyph(it->second);
        totals[n] += it->second;
      }
    }
  }
  TextTable series({"Provider", "Exclusive-years (summed)", "Series"});
  series.set_align(1, Align::kRight);
  for (const auto& n : names) {
    series.add_row({n, std::to_string(totals[n]), sparks[n]});
  }
  out += series.render();
  out += "(paper: Apple, Microsoft and Java carry the most roots no other "
         "program trusts)\n";
  return out;
}

std::string EcosystemStudy::report_ct_landscape() {
  rs::obs::Span span("report/ct_landscape");

  // Extend a copy of the scenario database with three synthetic CT logs of
  // distinct temperament: an eager fast-follower, a middling log, and a
  // slow conservative one.  Policies are fixed literals so the report (and
  // its golden) is a pure function of the scenario seed.
  rs::store::StoreDatabase db = database();
  const std::vector<std::string> programs = db.providers();
  struct LogSpec {
    const char* name;
    int lag, jitter;
    double accept, extra, retire;
  };
  const LogSpec specs[] = {
      {"CtLogEager", 45, 30, 0.98, 0.10, 0.02},
      {"CtLogSteady", 150, 90, 0.92, 0.25, 0.10},
      {"CtLogSlow", 330, 120, 0.80, 0.05, 0.20},
  };
  std::vector<std::string> log_names;
  std::vector<rs::store::ProviderHistory> logs;
  for (const auto& s : specs) {
    rs::synth::CtLogPolicy policy;
    policy.name = s.name;
    policy.seed = rs::synth::kPaperSeed;
    policy.accept_lag_days = s.lag;
    policy.lag_jitter_days = s.jitter;
    policy.accept_prob = s.accept;
    policy.extra_accept_prob = s.extra;
    policy.retire_prob = s.retire;
    log_names.push_back(policy.name);
    logs.push_back(rs::synth::generate_ct_log(policy, db));
  }
  for (auto& log : logs) db.add(std::move(log));

  const auto interner = rs::store::CertInterner::from_database(db);
  const auto index = rs::query::TrustIndex::build(db, interner, pool());
  const rs::util::Date date = latest_common_date(index);
  const auto first_seen =
      rs::landscape::first_seen_tables(index, rs::query::Scope::kTls);
  const auto all_names = index.providers();
  const auto index_of = [&](const std::string& name) {
    std::size_t at = 0;
    for (std::size_t i = 0; i < all_names.size(); ++i) {
      if (all_names[i] == name) at = i;
    }
    return at;
  };

  std::string out =
      "Landscape: synthetic CT-log root acceptance vs program stores\n"
      "(accepted-roots snapshots simulated from the scenario; common date " +
      date.to_string() + ", TLS scope)\n";

  const auto [y_first, y_last] = coverage_years(index);
  for (const auto& log_name : log_names) {
    const auto log_view =
        index.store_at(log_name, date, rs::query::Scope::kTls);
    if (!log_view) continue;
    const std::size_t log_idx = index_of(log_name);

    std::vector<std::string> covered_names;
    std::vector<const rs::store::IdSet*> covered_sets;
    for (const auto& p : programs) {
      const auto v = index.store_at(p, date, rs::query::Scope::kTls);
      if (!v) continue;
      covered_names.push_back(p);
      covered_sets.push_back(v->roots);
    }
    const auto rows = rs::landscape::coverage_rows(*log_view->roots,
                                                   covered_sets);
    const std::size_t exclusive =
        rs::landscape::log_exclusive_count(*log_view->roots, covered_sets);

    out += "\n" + log_name + ": " + std::to_string(log_view->roots->size()) +
           " accepted roots, " + std::to_string(exclusive) +
           " log-exclusive\n";
    TextTable t({"Store", "Size", "Covered", "Fraction", "Matched",
                 "Mean lag (d)"});
    for (std::size_t c = 1; c <= 5; ++c) t.set_align(c, Align::kRight);
    for (std::size_t i = 0; i < covered_names.size(); ++i) {
      const auto lag = rs::landscape::adoption_lag(
          first_seen[log_idx], first_seen[index_of(covered_names[i])]);
      t.add_row({covered_names[i], std::to_string(rows[i].store_size),
                 std::to_string(rows[i].covered),
                 rs::landscape::format_ratio(
                     static_cast<double>(rows[i].covered),
                     static_cast<double>(rows[i].store_size), 4),
                 std::to_string(lag.matched),
                 lag.matched == 0
                     ? std::string("-")
                     : rs::landscape::format_ratio(
                           static_cast<double>(lag.total_lag_days),
                           static_cast<double>(lag.matched), 1)});
    }
    out += t.render();

    // Yearly sparkline of union coverage: what share of the union of all
    // program stores the log accepts each Jan 1.
    out += "  union coverage over time: ";
    for (int y = y_first; y <= y_last; ++y) {
      const auto d = rs::util::Date::ymd(y, 1, 1);
      const auto lv = index.store_at(log_name, d, rs::query::Scope::kTls);
      if (!lv) {
        out += ' ';
        continue;
      }
      rs::store::IdSet uni;
      for (const auto& p : programs) {
        const auto v = index.store_at(p, d, rs::query::Scope::kTls);
        if (v) uni |= *v->roots;
      }
      if (uni.size() == 0) {
        out += ' ';
        continue;
      }
      const double frac = static_cast<double>(
                              lv->roots->intersection_size(uni)) /
                          static_cast<double>(uni.size());
      out += frac < 0.25 ? '.' : (frac < 0.5 ? '+' : (frac < 0.8 ? '*' : '#'));
    }
    out += "\n";
  }
  out += "\n(logs accept nearly every browser root eventually; lag and "
         "log-exclusive counts separate eager from conservative logs)\n";
  return out;
}

}  // namespace rs::core
