// EcosystemStudy: the top-level façade reproducing the paper end to end.
//
// Wraps a materialized scenario (or any StoreDatabase) and renders every
// table and figure of the evaluation as printable text, pairing measured
// values with the paper's published ones.  The bench harnesses are thin
// wrappers over these report functions; library users can call the
// underlying analysis modules directly for structured results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/exec/thread_pool.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"

namespace rs::query {
class TrustIndex;
}

namespace rs::core {

/// Execution knobs for a study instance.
struct StudyOptions {
  /// Worker threads for the analysis hot paths (Jaccard matrix, SMACOF,
  /// staleness/diff series).  0 = inline serial execution.  Any value
  /// produces bitwise-identical reports (see docs/PARALLELISM.md).
  std::size_t num_threads = 0;
};

/// One study instance over a scenario database.
class EcosystemStudy {
 public:
  /// Builds the curated paper scenario and wraps it.
  static EcosystemStudy from_paper_scenario(
      std::uint64_t seed = rs::synth::kPaperSeed,
      const StudyOptions& options = {});

  explicit EcosystemStudy(rs::synth::PaperScenario scenario,
                          const StudyOptions& options = {});

  const rs::store::StoreDatabase& database() const {
    return scenario_.database();
  }
  rs::synth::PaperScenario& scenario() { return scenario_; }
  const StudyOptions& options() const noexcept { return options_; }
  /// The study's pool (nullptr when num_threads == 0): analyses run
  /// serially inline in that case.
  rs::exec::ThreadPool* pool() const noexcept { return pool_.get(); }
  /// The database-wide certificate interner, built once at construction
  /// and threaded through every set-algebra hot path (Jaccard matrix,
  /// NSS version index, exclusive roots).  See docs/INTERNING.md.
  const rs::store::CertInterner& interner() const noexcept {
    return *interner_;
  }

  /// Table 1: top-200 user agents and root-store coverage.
  std::string report_table1() const;
  /// Table 2: dataset summary (snapshots per provider), paper vs measured.
  std::string report_table2() const;
  /// Table 3: root store hygiene, paper vs measured.
  std::string report_table3() const;
  /// Table 4: responses to high-severity NSS removals, paper vs measured.
  std::string report_table4();
  /// Table 5 (Appendix A): OS / TLS software root store survey.
  std::string report_table5() const;
  /// Table 6 (Appendix B): program-exclusive roots, paper vs measured.
  std::string report_table6();
  /// Table 7 (Appendix C): NSS removals since 2010, plus the
  /// removal-report completeness audit.
  std::string report_table7();
  /// Figure 1: MDS of pairwise Jaccard distances + cluster summary.
  std::string report_figure1(std::size_t max_per_provider = 40) const;
  /// Figure 2: the inverted pyramid (program shares of top UAs).
  std::string report_figure2() const;
  /// Figure 3: derivative staleness, paper vs measured.
  std::string report_figure3() const;
  /// Figure 4: derivative diff categories over time.
  std::string report_figure4() const;
  /// Landscape: cross-store agreement matrix at the latest common date,
  /// global union/intersection stats, and the yearly agreement series
  /// (docs/LANDSCAPE.md).
  std::string report_agreement();
  /// Landscape: per-provider at-date exclusive roots over a yearly grid,
  /// the at-date companion to Table 6's latest-vs-ever exclusives.
  std::string report_exclusivity();
  /// Landscape: synthetic CT-log accepted-roots landscape — per-log
  /// browser/store coverage, adoption lag, and log-exclusive roots.
  std::string report_ct_landscape();

 private:
  /// Lazily compiles (and caches) the TrustIndex over the scenario
  /// database, sharing the study interner and pool.  The landscape reports
  /// resolve presence views through it; the classic reports never touch
  /// it, so their bytes and span profiles are unchanged.
  const rs::query::TrustIndex& trust_index();

  rs::synth::PaperScenario scenario_;
  StudyOptions options_;
  // shared_ptr keeps the study copyable; the pool is stateless between
  // calls, so sharing it across copies is safe.  The interner is immutable
  // after construction, so copies can share it too.
  std::shared_ptr<rs::exec::ThreadPool> pool_;
  std::shared_ptr<const rs::store::CertInterner> interner_;
  std::shared_ptr<const rs::query::TrustIndex> trust_index_;
};

}  // namespace rs::core
