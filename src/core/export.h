// CSV exports of the figure data series.
//
// The bench binaries print human-readable tables; these functions emit the
// underlying data as CSV so the figures can be re-plotted with external
// tooling (matplotlib, gnuplot, R).  Pass --csv to the fig benches.
#pragma once

#include <string>

#include "src/synth/paper_scenario.h"

namespace rs::core {

/// Figure 1: one row per embedded snapshot —
/// provider,family,date,version,x,y,cluster
std::string figure1_csv(rs::synth::PaperScenario& scenario,
                        std::size_t max_per_provider = 25);

/// Figure 3: one row per derivative sample —
/// provider,date,matched_version,current_version,versions_behind
std::string figure3_csv(rs::synth::PaperScenario& scenario);

/// Figure 4: one row per derivative snapshot —
/// provider,date,matched_version,add_* and remove_* category counts
std::string figure4_csv(rs::synth::PaperScenario& scenario);

/// §4 churn: one row per snapshot —
/// provider,date,added,removed,change_fraction,is_outlier
std::string churn_csv(rs::synth::PaperScenario& scenario);

}  // namespace rs::core
