// Policy-driven stochastic ecosystem simulator.
//
// Where the paper scenario encodes published ground truth, the simulator
// generates *families* of plausible ecosystems from a seed: a CA pool, a
// configurable number of independent root programs with random management
// policies, derivative providers copying program 0, and random
// high-severity incidents.  Property tests use it to check that the
// analyses hold invariants on any input, and the perf benches use it to
// scale the pipeline far beyond the paper's 619 snapshots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/store/database.h"
#include "src/synth/derivatives.h"
#include "src/synth/program_model.h"
#include "src/util/date.h"

namespace rs::synth {

/// Tunable knobs for one simulated ecosystem.
struct SimulatorConfig {
  std::uint64_t seed = 1;
  int ca_count = 120;
  int program_count = 3;     // independent programs ("Prog0", "Prog1", ...)
  int derivative_count = 3;  // derivatives of Prog0 ("Deriv0", ...)
  rs::util::Date start = rs::util::Date::ymd(2000, 1, 1);
  rs::util::Date end = rs::util::Date::ymd(2021, 1, 1);
  /// Expected number of incident-driven removals across the whole run.
  int incident_count = 6;
  /// Snapshot cadence for programs (days).
  int snapshot_interval_days = 60;
  /// Derivative copy-lag bounds (days).
  int min_lag_days = 30;
  int max_lag_days = 600;
  /// CT logs accepting roots from the whole ecosystem ("CtLog0", ...),
  /// generated after programs and derivatives (see synth/ct_log.h).  The
  /// default 0 keeps pre-existing simulations byte-identical.
  int ct_log_count = 0;
  /// Log acceptance-lag bounds (days after first browser adoption).
  int ct_min_lag_days = 30;
  int ct_max_lag_days = 365;
};

/// One simulated incident: a root every program trusted, removed by
/// program 0 at `removal` and by others within `max_extra_lag_days`.
struct SimIncident {
  std::string root_id;
  rs::util::Date removal;
};

/// Output of a simulation run.
struct SimulatedEcosystem {
  rs::store::StoreDatabase database;
  std::vector<SimIncident> incidents;
  /// Name of the program that derivatives copy ("Prog0").
  std::string base_program;
  std::vector<std::string> derivative_names;
  std::vector<std::string> ct_log_names;
};

/// Runs the simulation.  Deterministic in `config.seed`.
SimulatedEcosystem simulate_ecosystem(const SimulatorConfig& config);

}  // namespace rs::synth
