#include "src/synth/software_survey.h"

namespace rs::synth {

const char* to_string(SoftwareKind k) noexcept {
  switch (k) {
    case SoftwareKind::kOperatingSystem:
      return "Operating System";
    case SoftwareKind::kTlsLibrary:
      return "TLS Library";
    case SoftwareKind::kTlsClient:
      return "TLS Client";
  }
  return "?";
}

std::vector<SurveyedSoftware> software_survey() {
  using K = SoftwareKind;
  return {
      // Operating systems.
      {K::kOperatingSystem, "Alpine Linux", "Yes", "Popular Docker image base"},
      {K::kOperatingSystem, "Amazon Linux", "Yes", "AWS base image"},
      {K::kOperatingSystem, "Android", "Yes",
       "Most common mobile OS; also Android Automotive"},
      {K::kOperatingSystem, "ChromeOS", "Yes",
       "Excluded: no build target history"},
      {K::kOperatingSystem, "Debian", "Yes",
       "Base of OpenWRT/Ubuntu and other distributions"},
      {K::kOperatingSystem, "iOS / macOS", "Yes", "Common Apple root store"},
      {K::kOperatingSystem, "Microsoft Windows", "Yes",
       "PC and server operating system"},
      {K::kOperatingSystem, "Ubuntu", "Yes", "Debian-based desktop Linux"},
      // TLS libraries.
      {K::kTlsLibrary, "AlamoFire", "No", "Swift HTTP library"},
      {K::kTlsLibrary, "Botan", "No", "Defaults to system store"},
      {K::kTlsLibrary, "BoringSSL", "No",
       "Google OpenSSL fork used in Chrome/Android"},
      {K::kTlsLibrary, "Bouncy Castle", "No", "Requires configured keystore"},
      {K::kTlsLibrary, "cryptlib", "No", "Unknown default"},
      {K::kTlsLibrary, "GnuTLS", "No",
       "--with-default-trust-store-<format> configure flag"},
      {K::kTlsLibrary, "Java Secure Socket Ext. (JSSE)", "Yes",
       "cacerts JKS file"},
      {K::kTlsLibrary, "LibreSSL libtls/libssl", "No",
       "TLS_DEFAULT_CA_FILE configuration"},
      {K::kTlsLibrary, "MatrixSSL", "No", "Requires configuration"},
      {K::kTlsLibrary, "Mbed TLS (prev. PolarSSL)", "No",
       "ca_path/ca_file configuration"},
      {K::kTlsLibrary, "Network Security Services (NSS)", "Yes",
       "certdata.txt plus additional trust in code"},
      {K::kTlsLibrary, "OkHttp", "No", "Uses platform TLS (JSSE, ...)"},
      {K::kTlsLibrary, "OpenSSL", "No",
       "$OPENSSLDIR/{certs, cert.pem}, often symlinked to system certs"},
      {K::kTlsLibrary, "RSA BSAFE", "No", "Unknown default"},
      {K::kTlsLibrary, "S2n", "No", "Defaults to system stores"},
      {K::kTlsLibrary, "SChannel", "No", "Microsoft system store"},
      {K::kTlsLibrary, "wolfSSL (prev. CyaSSL)", "No", "Requires configuration"},
      {K::kTlsLibrary, "Erlang/OTP SSL", "No", "Unknown default"},
      {K::kTlsLibrary, "BearSSL", "No", "Requires configuration"},
      {K::kTlsLibrary, "NodeJS", "Yes", "Static src/node_root_certs.h"},
      // TLS clients.
      {K::kTlsClient, "Safari", "No", "macOS root store"},
      {K::kTlsClient, "Mobile Safari", "No", "iOS root store"},
      {K::kTlsClient, "Chrome", "Yes*",
       "Historically system roots + bespoke distrust; own program from 2020"},
      {K::kTlsClient, "Chrome Mobile", "No", "Android root store"},
      {K::kTlsClient, "Chrome Mobile iOS", "No",
       "iOS root store; custom stores prohibited"},
      {K::kTlsClient, "Edge", "No", "Windows certificates, not via SChannel"},
      {K::kTlsClient, "Internet Explorer", "No",
       "Windows certificates via SChannel"},
      {K::kTlsClient, "Firefox", "Yes", "NSS root store"},
      {K::kTlsClient, "Opera", "No*",
       "Own program until 2013; now Chromium + system roots"},
      {K::kTlsClient, "Electron", "Yes",
       "Chromium + NodeJS; can use roots through both"},
      {K::kTlsClient, "360Browser", "Yes", "Excluded: no open-source history"},
      {K::kTlsClient, "curl", "No",
       "libcurl compiled against system or custom store"},
      {K::kTlsClient, "wget", "No", "wgetrc configuration; GnuTLS"},
  };
}

}  // namespace rs::synth
