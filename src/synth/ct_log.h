// Synthetic CT-log accepted-roots histories.
//
// Korzhitskii & Carlsson show CT logs maintain their own root-acceptance
// lists: broadly tracking the browser stores, but lagging adoptions,
// rarely removing anything, and accepting roots browsers never TLS-trust.
// This module generates such a provider from an existing ecosystem: given
// the browser/store database, a log accepts each TLS root some lag after
// its first browser adoption, keeps most roots even after browsers drop
// them, and picks up a fraction of the present-but-never-TLS roots
// (email-only and the like) — the log-exclusive population.
//
// Deterministic in (seed, name): generation draws from one labeled Prng
// stream and walks certificates in sorted-fingerprint order.
#pragma once

#include <cstdint>
#include <string>

#include "src/store/database.h"
#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::synth {

/// Acceptance policy for one synthetic CT log.
struct CtLogPolicy {
  std::string name = "CtLog0";
  std::uint64_t seed = 1;
  /// Base acceptance lag after a root's first browser TLS adoption, plus a
  /// uniform jitter in [0, lag_jitter_days).
  int accept_lag_days = 90;
  int lag_jitter_days = 90;
  /// Chance the log ever accepts a browser-adopted TLS root.
  double accept_prob = 0.95;
  /// Chance the log accepts a root that is present in some store but never
  /// a TLS anchor anywhere (these become log-exclusive under TLS scope).
  double extra_accept_prob = 0.25;
  /// Chance the log retires a root after every store has dropped it
  /// (realistic churn: logs mostly only grow).
  double retire_prob = 0.1;
  /// Accepted-roots snapshot cadence.
  int snapshot_interval_days = 90;
  rs::util::Date start = rs::util::Date::ymd(2000, 1, 1);
  rs::util::Date end = rs::util::Date::ymd(2021, 1, 1);
};

/// Generates the log's accepted-roots history from the stores in `db`.
/// Accepted roots are modeled as TLS anchors (a log's accepted list has a
/// single purpose).  Deterministic in (policy.seed, policy.name).
rs::store::ProviderHistory generate_ct_log(const CtLogPolicy& policy,
                                           const rs::store::StoreDatabase& db);

}  // namespace rs::synth
