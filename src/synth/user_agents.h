// The top-200 CDN user-agent population (paper Table 1) and its attribution
// to root-store providers and root programs (Figure 2).
//
// The raw CDN sample is proprietary; Table 1 publishes the aggregation we
// need — UA family × OS × version-count × whether a root store history was
// collected.  This module encodes that table plus the attribution rules
// (which store each UA consults), which is exactly the judgement the
// paper's authors applied manually.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rs::synth {

/// The four independent root programs (§4).
enum class RootProgram { kMicrosoft, kNss, kApple, kJava };

const char* to_string(RootProgram p) noexcept;

/// One Table 1 row: a user-agent family on one OS.
struct UserAgentGroup {
  std::string os;          // "Android", "Windows", ...
  std::string agent;       // "Chrome Mobile", "Firefox", ...
  int versions = 0;        // distinct UA strings observed
  bool included = false;   // root store history collected?
  /// Provider whose store the UA consults (empty if unknown/excluded).
  std::string provider;
};

/// The full Table 1 population (154 of 200 UAs covered).
std::vector<UserAgentGroup> user_agent_population();

/// Provider -> root program family mapping used by Figure 2 (derivatives
/// resolve to NSS).  Unknown providers return nullopt.
std::optional<RootProgram> program_of_provider(const std::string& provider);

}  // namespace rs::synth
