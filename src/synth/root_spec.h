// Declarative root-certificate specifications and the memoizing factory.
//
// The curated scenario and the stochastic simulator both describe roots as
// RootSpecs — everything the X.509 builder needs, keyed by a stable string
// id.  CertFactory turns specs into real DER certificates, deterministically
// (key material and signatures derive from the factory seed + spec id) and
// memoized (the same root referenced by ten providers is one object).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/date.h"
#include "src/x509/builder.h"
#include "src/x509/certificate.h"

namespace rs::synth {

/// Blueprint for one synthetic root certificate.
struct RootSpec {
  std::string id;  // stable unique label, e.g. "diginotar-root"
  std::string common_name;
  std::string organization;
  std::string country = "US";
  rs::util::Date not_before = rs::util::Date::ymd(2000, 1, 1);
  rs::util::Date not_after = rs::util::Date::ymd(2030, 1, 1);
  rs::x509::SignatureScheme scheme = rs::x509::SignatureScheme::kSha256Rsa;
  unsigned rsa_bits = 2048;
  bool version1 = false;
};

/// Builds and caches certificates from specs.
///
/// Not thread-safe; the pipeline is single-threaded by design.
class CertFactory {
 public:
  explicit CertFactory(std::uint64_t seed) : seed_(seed) {}

  /// The certificate for `spec` (built on first use).  Two specs with the
  /// same id must be identical — violating that asserts.
  std::shared_ptr<const rs::x509::Certificate> get(const RootSpec& spec);

  /// Cache lookup by id only (nullptr if never built).
  std::shared_ptr<const rs::x509::Certificate> find(const std::string& id) const;

  std::size_t built_count() const noexcept { return cache_.size(); }

 private:
  std::uint64_t seed_;
  std::map<std::string, std::shared_ptr<const rs::x509::Certificate>> cache_;
  std::map<std::string, std::string> spec_digests_;  // id -> config digest
};

}  // namespace rs::synth
