#include "src/synth/user_agents.h"

namespace rs::synth {

const char* to_string(RootProgram p) noexcept {
  switch (p) {
    case RootProgram::kMicrosoft:
      return "Microsoft";
    case RootProgram::kNss:
      return "Mozilla/NSS";
    case RootProgram::kApple:
      return "Apple";
    case RootProgram::kJava:
      return "Java";
  }
  return "?";
}

std::vector<UserAgentGroup> user_agent_population() {
  // Encodes Table 1 verbatim.  Attribution rules:
  //  - Chrome (pre root-program transition) uses the platform store.
  //  - Firefox ships NSS everywhere.
  //  - Electron follows NodeJS (NSS family).
  //  - iOS/macOS browsers use the Apple store (iOS forbids custom stores).
  return {
      // Android
      {"Android", "Chrome Mobile", 48, true, "Android"},
      {"Android", "Samsung Internet", 2, false, ""},
      {"Android", "Android", 3, false, ""},
      {"Android", "Firefox Mobile", 1, true, "NSS"},
      {"Android", "Chrome Mobile WebView", 1, false, ""},
      {"Android", "Chrome", 1, true, "Android"},
      // Windows
      {"Windows", "Chrome", 23, true, "Microsoft"},
      {"Windows", "Firefox", 7, true, "NSS"},
      {"Windows", "Electron", 6, true, "NodeJS"},
      {"Windows", "Opera", 4, true, "Microsoft"},
      {"Windows", "Edge", 4, true, "Microsoft"},
      {"Windows", "Yandex Browser", 3, false, ""},
      {"Windows", "IE", 3, true, "Microsoft"},
      // iOS
      {"iOS", "Mobile Safari", 18, true, "Apple"},
      {"iOS", "WKWebView", 4, true, "Apple"},
      {"iOS", "Chrome Mobile iOS", 2, true, "Apple"},
      {"iOS", "Google", 2, false, ""},
      // Mac OS X
      {"Mac OS X", "Safari", 15, true, "Apple"},
      {"Mac OS X", "Chrome", 14, true, "Apple"},
      {"Mac OS X", "Firefox", 2, true, "NSS"},
      {"Mac OS X", "Apple Mail", 1, false, ""},
      {"Mac OS X", "Electron", 1, true, "NodeJS"},
      // ChromeOS
      {"ChromeOS", "Chrome", 8, false, ""},
      // Linux
      {"Linux", "Chrome", 2, false, ""},
      {"Linux", "Safari", 1, false, ""},
      {"Linux", "Firefox", 1, true, "NSS"},
      {"Linux", "Samsung Internet", 1, false, ""},
      // Unknown
      {"Unknown", "okhttp", 3, false, ""},
      {"Unknown", "Unknown", 2, false, ""},
      {"Unknown", "CryptoAPI", 1, false, ""},
      // API clients
      {"API Clients", "API Clients", 16, false, ""},
  };
}

std::optional<RootProgram> program_of_provider(const std::string& provider) {
  if (provider == "Microsoft") return RootProgram::kMicrosoft;
  if (provider == "Apple") return RootProgram::kApple;
  if (provider == "Java") return RootProgram::kJava;
  // The NSS family: NSS itself plus every derivative in the dataset (§4).
  if (provider == "NSS" || provider == "Android" || provider == "NodeJS" ||
      provider == "Debian" || provider == "Ubuntu" || provider == "Alpine" ||
      provider == "AmazonLinux") {
    return RootProgram::kNss;
  }
  return std::nullopt;
}

}  // namespace rs::synth
