// The popular OS / TLS-software root-store survey (paper Table 5 /
// Appendix A): which software ships its own trust anchors and which defers
// to the platform.
#pragma once

#include <string>
#include <vector>

namespace rs::synth {

/// Survey categories.
enum class SoftwareKind { kOperatingSystem, kTlsLibrary, kTlsClient };

const char* to_string(SoftwareKind k) noexcept;

/// One surveyed OS / library / client.
struct SurveyedSoftware {
  SoftwareKind kind = SoftwareKind::kTlsLibrary;
  std::string name;
  /// "Yes"/"No"/"Yes*"/"No*" as printed in the paper's table.
  std::string ships_root_store;
  std::string details;
};

/// All Table 5 rows, in table order.
std::vector<SurveyedSoftware> software_survey();

}  // namespace rs::synth
