#include "src/synth/ct_log.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/crypto/prng.h"
#include "src/store/trust.h"

namespace rs::synth {
namespace {

using rs::util::Date;

/// Everything the acceptance draw needs about one certificate, collected
/// from a sweep over every snapshot of every store.
struct RootSighting {
  std::shared_ptr<const rs::x509::Certificate> cert;
  std::optional<Date> first_tls;    // earliest snapshot TLS-trusting it
  std::optional<Date> last_tls;     // latest snapshot TLS-trusting it
  std::optional<Date> first_present;
};

}  // namespace

rs::store::ProviderHistory generate_ct_log(
    const CtLogPolicy& policy, const rs::store::StoreDatabase& db) {
  // Sorted-fingerprint map keeps the acceptance draws in a deterministic
  // order regardless of database iteration order.
  std::map<rs::crypto::Sha256Digest, RootSighting> sightings;
  for (const auto& [name, history] : db.histories()) {
    (void)name;
    for (const auto& snap : history.snapshots()) {
      for (const auto& entry : snap.entries) {
        auto& s = sightings[entry.certificate->sha256()];
        if (!s.cert) s.cert = entry.certificate;
        if (!s.first_present || snap.date < *s.first_present) {
          s.first_present = snap.date;
        }
        if (entry.is_anchor_for(rs::store::TrustPurpose::kServerAuth)) {
          if (!s.first_tls || snap.date < *s.first_tls) s.first_tls = snap.date;
          if (!s.last_tls || *s.last_tls < snap.date) s.last_tls = snap.date;
        }
      }
    }
  }

  rs::crypto::Prng rng =
      rs::crypto::Prng::from_label(policy.seed, "ct-log:" + policy.name);

  struct Acceptance {
    std::shared_ptr<const rs::x509::Certificate> cert;
    Date accepted;
    std::optional<Date> retired;
  };
  std::vector<Acceptance> accepted;
  for (const auto& [fp, s] : sightings) {
    (void)fp;
    const int lag =
        policy.accept_lag_days +
        (policy.lag_jitter_days > 0
             ? static_cast<int>(rng.uniform(
                   static_cast<std::uint64_t>(policy.lag_jitter_days)))
             : 0);
    if (s.first_tls) {
      if (!rng.chance(policy.accept_prob)) continue;
      Acceptance a;
      a.cert = s.cert;
      a.accepted = *s.first_tls + lag;
      // Rare retirement, only once every store has dropped the root; most
      // accepted roots stay forever (logs append, they rarely prune).
      if (rng.chance(policy.retire_prob)) {
        a.retired = *s.last_tls + lag + 180;
      }
      accepted.push_back(std::move(a));
    } else if (s.first_present) {
      if (!rng.chance(policy.extra_accept_prob)) continue;
      Acceptance a;
      a.cert = s.cert;
      a.accepted = *s.first_present + lag;
      accepted.push_back(std::move(a));
    }
  }

  rs::store::ProviderHistory history(policy.name);
  int version = 0;
  Date d = policy.start;
  while (d <= policy.end) {
    rs::store::Snapshot snap;
    snap.provider = policy.name;
    snap.date = d;
    snap.version = "log-v" + std::to_string(++version);
    for (const auto& a : accepted) {
      if (a.accepted > d) continue;
      if (a.retired && *a.retired <= d) continue;
      snap.entries.push_back(rs::store::make_tls_anchor(a.cert));
    }
    history.add(std::move(snap));
    d = d + policy.snapshot_interval_days;
  }
  return history;
}

}  // namespace rs::synth
