// Published reference values from the paper's tables and figures.
//
// Every benchmark harness prints "paper" next to "measured"; this module is
// the single home of the published numbers so they are never re-typed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/util/date.h"

namespace rs::synth::paper {

/// A Table 2 row (the dataset summary).
struct DatasetRow {
  std::string provider;
  rs::util::Date from;
  rs::util::Date to;
  int snapshots = 0;       // "# SS"
  int unique_stores = 0;   // "# Uniq"
  std::string data_source;
  std::string details;
};
std::vector<DatasetRow> table2_dataset();

/// A Table 3 row (root store hygiene).
struct HygieneRow {
  std::string program;
  double avg_size = 0;
  double avg_expired = 0;
  /// Year-month of the MD5 / 1024-bit purges ("2016-09").
  std::string md5_removed;
  std::string rsa1024_removed;
};
std::vector<HygieneRow> table3_hygiene();

/// Figure 2 root-program shares of the top-200 UAs (fractions of 200).
struct ProgramShare {
  std::string program;
  double share = 0;  // e.g. 0.34
};
std::vector<ProgramShare> figure2_shares();

/// Figure 3 average substantial-version staleness per derivative.
struct StalenessRow {
  std::string provider;
  double versions_behind = 0;
};
std::vector<StalenessRow> figure3_staleness();

/// Table 6 exclusive-root counts per program.
struct ExclusiveRow {
  std::string program;
  int exclusive_roots = 0;
};
std::vector<ExclusiveRow> table6_counts();

/// Table 1 bottom line: fraction of top-200 UAs with collected root stores.
double table1_coverage();  // 0.77

}  // namespace rs::synth::paper
