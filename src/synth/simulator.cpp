#include "src/synth/simulator.h"

#include <algorithm>

#include "src/crypto/prng.h"
#include "src/synth/ct_log.h"

namespace rs::synth {

using rs::store::TrustPurpose;
using rs::util::Date;
using rs::x509::SignatureScheme;

namespace {

RootSpec random_spec(rs::crypto::Prng& rng, int index, Date start, Date end) {
  RootSpec s;
  s.id = "sim-ca-" + std::to_string(index);
  s.common_name = "Simulated Root CA " + std::to_string(index);
  s.organization = "Sim CA " + std::to_string(index % 37);
  const std::int64_t span = end - start;
  s.not_before = start + static_cast<std::int64_t>(
                             rng.uniform(static_cast<std::uint64_t>(
                                 std::max<std::int64_t>(1, span * 3 / 4))));
  s.not_after = s.not_before.add_months(12 * (10 + static_cast<int>(rng.uniform(16))));
  const int year = s.not_before.year();
  if (year < 2004) {
    s.scheme = rng.chance(0.4) ? SignatureScheme::kMd5Rsa
                               : SignatureScheme::kSha1Rsa;
    s.rsa_bits = rng.chance(0.5) ? 1024 : 2048;
  } else if (year < 2012) {
    s.scheme = SignatureScheme::kSha1Rsa;
    s.rsa_bits = 2048;
  } else {
    s.scheme = rng.chance(0.2) ? SignatureScheme::kEcdsaSha256
                               : SignatureScheme::kSha256Rsa;
    s.rsa_bits = rng.chance(0.3) ? 4096 : 2048;
  }
  return s;
}

std::vector<TrustPurpose> random_purposes(rs::crypto::Prng& rng) {
  const double roll = rng.uniform01();
  if (roll < 0.7) {
    return {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection};
  }
  if (roll < 0.9) return {TrustPurpose::kServerAuth};
  return {TrustPurpose::kEmailProtection};
}

}  // namespace

SimulatedEcosystem simulate_ecosystem(const SimulatorConfig& config) {
  SimulatedEcosystem out;
  auto factory = CertFactory(config.seed);
  rs::crypto::Prng rng =
      rs::crypto::Prng::from_label(config.seed, "simulator");

  // CA pool.
  std::vector<RootSpec> pool;
  pool.reserve(static_cast<std::size_t>(config.ca_count));
  for (int i = 0; i < config.ca_count; ++i) {
    pool.push_back(random_spec(rng, i, config.start, config.end));
  }

  // Independent programs with random policies.
  std::vector<Timeline> timelines(
      static_cast<std::size_t>(std::max(1, config.program_count)));
  for (std::size_t p = 0; p < timelines.size(); ++p) {
    Timeline& t = timelines[p];
    rs::crypto::Prng prng = rs::crypto::Prng::from_label(
        config.seed, "program-" + std::to_string(p));
    const int delay_base = 30 + static_cast<int>(prng.uniform(300));
    const int retention = 30 + static_cast<int>(prng.uniform(1200));
    const double adoption = 0.6 + prng.uniform01() * 0.4;
    for (const auto& s : pool) {
      if (!prng.chance(adoption)) continue;
      t.add_spec(s);
      Date include = s.not_before + delay_base +
                     static_cast<std::int64_t>(prng.uniform(200));
      if (include < config.start) include = config.start;
      if (include >= s.not_after - 30 || include > config.end) continue;
      t.include(include, s.id, random_purposes(prng));
      t.remove(s.not_after + retention, s.id);
    }
  }

  // Incidents: roots trusted by program 0, removed mid-history.
  {
    const auto& base = timelines[0];
    std::vector<std::string> candidates;
    for (const auto& [id, spec] : base.specs()) {
      if (spec.not_after > config.end) candidates.push_back(id);
    }
    rng.shuffle(candidates);
    const int n = std::min<int>(config.incident_count,
                                static_cast<int>(candidates.size()));
    for (int i = 0; i < n; ++i) {
      const std::string& id = candidates[static_cast<std::size_t>(i)];
      const std::int64_t span = (config.end - config.start) / 2;
      const Date removal =
          config.start + span +
          static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(span)));
      for (std::size_t p = 0; p < timelines.size(); ++p) {
        if (!timelines[p].has_spec(id)) continue;
        const std::int64_t extra =
            p == 0 ? 0 : static_cast<std::int64_t>(rng.uniform(400));
        timelines[p].remove(removal + extra, id);
      }
      out.incidents.push_back(SimIncident{id, removal});
    }
  }

  // Materialize programs.
  for (std::size_t p = 0; p < timelines.size(); ++p) {
    const std::string name = "Prog" + std::to_string(p);
    rs::store::ProviderHistory history(name);
    int version = 0;
    Date d = config.start;
    while (d <= config.end) {
      rs::store::Snapshot snap;
      snap.provider = name;
      snap.date = d;
      snap.version = "v" + std::to_string(++version);
      snap.entries = timelines[p].materialize(d, factory);
      history.add(std::move(snap));
      d = d + config.snapshot_interval_days;
    }
    out.database.add(std::move(history));
  }
  out.base_program = "Prog0";

  // Derivatives of program 0.
  const std::map<std::string, RootSpec> no_extra;
  for (int i = 0; i < config.derivative_count; ++i) {
    DerivativePolicy policy;
    policy.name = "Deriv" + std::to_string(i);
    rs::crypto::Prng drng =
        rs::crypto::Prng::from_label(config.seed, policy.name);
    policy.lag_days = config.min_lag_days +
                      static_cast<int>(drng.uniform(static_cast<std::uint64_t>(
                          std::max(1, config.max_lag_days - config.min_lag_days))));
    policy.lag_jitter_days = static_cast<int>(drng.uniform(30));
    if (drng.chance(0.5)) {
      const std::int64_t span = config.end - config.start;
      policy.email_conflation_until =
          config.start + span / 2 +
          static_cast<std::int64_t>(drng.uniform(static_cast<std::uint64_t>(span / 2)));
    }
    Date d = config.start + static_cast<std::int64_t>(drng.uniform(1000));
    while (d <= config.end) {
      policy.snapshot_dates.push_back(d);
      d = d + config.snapshot_interval_days +
          static_cast<std::int64_t>(drng.uniform(60));
    }
    out.derivative_names.push_back(policy.name);
    out.database.add(
        generate_derivative(policy, timelines[0], factory, no_extra));
  }

  // CT logs, generated over the finished store ecosystem (programs plus
  // derivatives).  Labeled Prng streams keep every draw independent of the
  // simulation above, so ct_log_count == 0 reproduces pre-log ecosystems
  // byte for byte.
  std::vector<rs::store::ProviderHistory> logs;
  for (int i = 0; i < config.ct_log_count; ++i) {
    CtLogPolicy policy;
    policy.name = "CtLog" + std::to_string(i);
    policy.seed = config.seed;
    rs::crypto::Prng lrng =
        rs::crypto::Prng::from_label(config.seed, "ct-policy-" + policy.name);
    const int lag_span =
        std::max(1, config.ct_max_lag_days - config.ct_min_lag_days);
    policy.accept_lag_days =
        config.ct_min_lag_days +
        static_cast<int>(lrng.uniform(static_cast<std::uint64_t>(lag_span)));
    policy.lag_jitter_days = 30 + static_cast<int>(lrng.uniform(90));
    policy.accept_prob = 0.85 + lrng.uniform01() * 0.15;
    policy.extra_accept_prob = lrng.uniform01() * 0.4;
    policy.retire_prob = lrng.uniform01() * 0.2;
    policy.snapshot_interval_days = config.snapshot_interval_days;
    policy.start = config.start;
    policy.end = config.end;
    out.ct_log_names.push_back(policy.name);
    // Generate before adding so every log reads the same pre-log store
    // ecosystem (logs do not accept each other's lists).
    logs.push_back(generate_ct_log(policy, out.database));
  }
  for (auto& log : logs) out.database.add(std::move(log));

  return out;
}

}  // namespace rs::synth
