// Issuer-hierarchy synthesis for the chain-verification workload.
//
// The store pipeline only ships self-signed roots; the verify path
// (src/verify, docs/VERIFY.md) needs whole hierarchies — intermediates,
// cross-signs, expired or constraint-violating decoys, incident-straddling
// chains.  build_chain_cases() manufactures a deterministic catalog of
// named leaf+pool scenarios anchored at real store roots, so the
// differential property suite, the golden corpus, and the fuzz seeds all
// draw from one generator.
//
// Signatures are the repo's HMAC substitution and are never verified;
// chaining is by issuer/subject name (Name::equivalent) assisted by
// SKI/AKI, exactly what rs::verify::verify_chain consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/database.h"
#include "src/x509/certificate.h"

namespace rs::synth {

/// One named verification scenario: a leaf, the pool handed to the
/// verifier, and the anchor the case is built toward.
struct ChainCase {
  std::string name;  // stable label, e.g. "straight", "incident:diginotar"
  std::shared_ptr<const rs::x509::Certificate> leaf;
  std::vector<std::shared_ptr<const rs::x509::Certificate>> pool;
  rs::crypto::Sha256Digest root_fp{};  // the targeted anchor's fingerprint
  std::string note;                    // what the case demonstrates
};

struct ChainGenConfig {
  std::uint64_t seed = 20211102;
  /// The long-lived TLS store anchor the generic cases chain to.
  std::shared_ptr<const rs::x509::Certificate> anchor;
  /// An email/code-only root (never TLS-trusted) for the trust-bit case;
  /// may be null, which skips the "email_only_anchor" case.
  std::shared_ptr<const rs::x509::Certificate> email_only_anchor;
  /// Incident roots (e.g. DigiNotar): one "incident:<name>" case each.
  std::vector<std::pair<std::string,
                        std::shared_ptr<const rs::x509::Certificate>>>
      incident_anchors;
};

/// Builds the catalog.  Deterministic: equal configs yield byte-identical
/// DER.  `config.anchor` must be non-null.
std::vector<ChainCase> build_chain_cases(const ChainGenConfig& config);

/// Picks the generic anchors out of a snapshot database: `anchor` is the
/// certificate that is a TLS anchor in the most snapshots across all
/// providers (tie broken by smallest fingerprint), `email_only_anchor` the
/// smallest-fingerprint root that is an email anchor somewhere but was
/// never TLS-trusted by anyone (null when the dataset has none).
/// Incident anchors are the caller's to add.  Deterministic per database.
ChainGenConfig default_chain_config(const rs::store::StoreDatabase& db,
                                    std::uint64_t seed = 20211102);

}  // namespace rs::synth
