#include "src/synth/program_model.h"

#include <algorithm>
#include <cassert>

namespace rs::synth {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Date;

void Timeline::add_spec(RootSpec spec) {
  const std::string id = spec.id;
  assert(!id.empty());
  const auto [it, inserted] = specs_.emplace(id, std::move(spec));
  (void)it;
  (void)inserted;  // re-registering an identical spec is harmless
}

bool Timeline::has_spec(const std::string& id) const {
  return specs_.contains(id);
}

const RootSpec& Timeline::spec(const std::string& id) const {
  const auto it = specs_.find(id);
  assert(it != specs_.end() && "action references unregistered spec");
  return it->second;
}

void Timeline::include(Date d, const std::string& root_id,
                       std::vector<TrustPurpose> purposes) {
  actions_.push_back(
      {d, root_id, TrustAction::Kind::kInclude, std::move(purposes), {}});
}

void Timeline::remove(Date d, const std::string& root_id) {
  actions_.push_back({d, root_id, TrustAction::Kind::kRemove, {}, {}});
}

void Timeline::set_server_distrust_after(Date d, const std::string& root_id,
                                         Date cutoff) {
  actions_.push_back(
      {d, root_id, TrustAction::Kind::kSetServerDistrustAfter, {}, cutoff});
}

void Timeline::distrust(Date d, const std::string& root_id,
                        std::vector<TrustPurpose> purposes) {
  actions_.push_back(
      {d, root_id, TrustAction::Kind::kDistrustPurposes, std::move(purposes), {}});
}

std::vector<TrustEntry> Timeline::materialize(Date when,
                                              CertFactory& factory) const {
  // Replay in date order; equal dates replay in insertion order so a
  // same-day remove-then-include behaves as written.
  std::vector<const TrustAction*> ordered;
  ordered.reserve(actions_.size());
  for (const auto& a : actions_) {
    if (a.date <= when) ordered.push_back(&a);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TrustAction* a, const TrustAction* b) {
                     return a->date < b->date;
                   });

  struct State {
    TrustEntry entry;
    std::size_t order;  // first-inclusion order for stable output
  };
  std::map<std::string, State> state;
  std::size_t next_order = 0;

  for (const TrustAction* a : ordered) {
    switch (a->kind) {
      case TrustAction::Kind::kInclude: {
        TrustEntry entry;
        entry.certificate = factory.get(spec(a->root_id));
        for (TrustPurpose p : a->purposes) {
          entry.trust_for(p).level = TrustLevel::kTrustedDelegator;
        }
        const auto it = state.find(a->root_id);
        if (it == state.end()) {
          state.emplace(a->root_id, State{std::move(entry), next_order++});
        } else {
          it->second.entry = std::move(entry);  // re-include resets trust
        }
        break;
      }
      case TrustAction::Kind::kRemove:
        state.erase(a->root_id);
        break;
      case TrustAction::Kind::kSetServerDistrustAfter: {
        const auto it = state.find(a->root_id);
        if (it != state.end()) {
          it->second.entry.trust_for(TrustPurpose::kServerAuth).distrust_after =
              a->cutoff;
        }
        break;
      }
      case TrustAction::Kind::kDistrustPurposes: {
        const auto it = state.find(a->root_id);
        if (it != state.end()) {
          for (TrustPurpose p : a->purposes) {
            it->second.entry.trust_for(p).level = TrustLevel::kDistrusted;
          }
        }
        break;
      }
    }
  }

  std::vector<const State*> by_order;
  by_order.reserve(state.size());
  for (const auto& [_, s] : state) by_order.push_back(&s);
  std::sort(by_order.begin(), by_order.end(),
            [](const State* a, const State* b) { return a->order < b->order; });

  std::vector<TrustEntry> out;
  out.reserve(by_order.size());
  for (const State* s : by_order) out.push_back(s->entry);
  return out;
}

std::vector<Date> Timeline::change_dates() const {
  std::vector<Date> dates;
  dates.reserve(actions_.size());
  for (const auto& a : actions_) dates.push_back(a.date);
  std::sort(dates.begin(), dates.end());
  dates.erase(std::unique(dates.begin(), dates.end()), dates.end());
  return dates;
}

rs::store::Snapshot snapshot_at(const Timeline& timeline, CertFactory& factory,
                                std::string provider, Date date,
                                std::string version) {
  rs::store::Snapshot snap;
  snap.provider = std::move(provider);
  snap.date = date;
  snap.version = std::move(version);
  snap.entries = timeline.materialize(date, factory);
  return snap;
}

}  // namespace rs::synth
