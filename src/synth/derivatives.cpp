#include "src/synth/derivatives.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/prng.h"

namespace rs::synth {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Date;

int derivative_lag_days(const DerivativePolicy& policy, Date snapshot) {
  if (policy.lag_jitter_days <= 0) return policy.lag_days;
  // Deterministic per-(provider, date) jitter so histories are reproducible.
  rs::crypto::Prng rng = rs::crypto::Prng::from_label(
      0x9e1ab5, policy.name + "@" + snapshot.to_string());
  const int spread = 2 * policy.lag_jitter_days + 1;
  return policy.lag_days +
         static_cast<int>(rng.uniform(static_cast<std::uint64_t>(spread))) -
         policy.lag_jitter_days;
}

namespace {

/// Applies the copy transform to one NSS entry; nullopt = not copied.
std::optional<TrustEntry> copy_entry(const TrustEntry& src, Date snapshot_date,
                                     const DerivativePolicy& policy) {
  const bool tls = src.is_anchor_for(TrustPurpose::kServerAuth);
  const bool email = src.is_anchor_for(TrustPurpose::kEmailProtection);
  const bool conflating = policy.email_conflation_until.has_value() &&
                          snapshot_date < *policy.email_conflation_until;
  if (!tls && !(email && conflating)) return std::nullopt;

  // The single-file format grants every purpose to every bundled root and
  // cannot carry partial-distrust cutoffs: both are dropped on copy.
  TrustEntry out;
  out.certificate = src.certificate;
  for (TrustPurpose p : rs::store::kAllPurposes) {
    out.trust_for(p).level = TrustLevel::kTrustedDelegator;
  }
  return out;
}

const RootSpec* find_spec(const std::string& id, const Timeline& nss,
                          const std::map<std::string, RootSpec>& extra) {
  if (nss.has_spec(id)) return &nss.spec(id);
  const auto it = extra.find(id);
  return it == extra.end() ? nullptr : &it->second;
}

}  // namespace

rs::store::ProviderHistory generate_derivative(
    const DerivativePolicy& policy, const Timeline& nss, CertFactory& factory,
    const std::map<std::string, RootSpec>& extra_specs) {
  rs::store::ProviderHistory history(policy.name);

  std::vector<Date> dates = policy.snapshot_dates;
  std::sort(dates.begin(), dates.end());
  dates.erase(std::unique(dates.begin(), dates.end()), dates.end());

  for (const Date snapshot_date : dates) {
    Date effective = snapshot_date - derivative_lag_days(policy, snapshot_date);
    if (policy.freeze_effective_after && effective > *policy.freeze_effective_after) {
      effective = *policy.freeze_effective_after;
    }

    std::vector<TrustEntry> entries;
    std::vector<std::string> present_ids;  // parallel, for override matching
    {
      // Map certificates back to spec ids via the factory cache: rebuild the
      // NSS state and record which spec produced each entry.
      const auto nss_entries = nss.materialize(effective, factory);
      // materialize() yields entries in inclusion order; recover ids by
      // matching fingerprints against the specs.
      std::map<const rs::x509::Certificate*, std::string> cert_to_id;
      for (const auto& [id, spec] : nss.specs()) {
        if (auto cert = factory.find(id)) cert_to_id[cert.get()] = id;
        (void)spec;
      }
      for (const auto& e : nss_entries) {
        auto copied = copy_entry(e, snapshot_date, policy);
        if (!copied) continue;
        entries.push_back(std::move(*copied));
        const auto it = cert_to_id.find(e.certificate.get());
        present_ids.push_back(it == cert_to_id.end() ? std::string{}
                                                     : it->second);
      }
    }

    // Overrides: forced absences first (they win), then forced presences.
    auto remove_id = [&](const std::string& id) {
      for (std::size_t i = 0; i < present_ids.size(); ++i) {
        if (present_ids[i] == id) {
          entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
          present_ids.erase(present_ids.begin() +
                            static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    };
    auto is_present = [&](const std::string& id) {
      return std::find(present_ids.begin(), present_ids.end(), id) !=
             present_ids.end();
    };

    auto absent_now = [&](const DerivativeOverride& ov) {
      return ov.always_absent ||
             (ov.absent_from.has_value() && snapshot_date >= *ov.absent_from &&
              (!ov.absent_until.has_value() ||
               snapshot_date <= *ov.absent_until));
    };
    // Pass 1: forced presences.
    for (const auto& ov : policy.overrides) {
      if (absent_now(ov)) continue;
      const bool in_window =
          (!ov.present_from || snapshot_date >= *ov.present_from) &&
          (!ov.present_until || snapshot_date <= *ov.present_until);
      if (in_window && !is_present(ov.root_id)) {
        const RootSpec* spec = find_spec(ov.root_id, nss, extra_specs);
        assert(spec != nullptr && "override references unknown root id");
        if (spec == nullptr) continue;
        TrustEntry entry;
        entry.certificate = factory.get(*spec);
        for (TrustPurpose p : rs::store::kAllPurposes) {
          entry.trust_for(p).level = TrustLevel::kTrustedDelegator;
        }
        entries.push_back(std::move(entry));
        present_ids.push_back(ov.root_id);
      }
    }
    // Pass 2: forced absences — they win over presences regardless of the
    // order the overrides were declared in.
    for (const auto& ov : policy.overrides) {
      if (absent_now(ov)) remove_id(ov.root_id);
    }

    rs::store::Snapshot snap;
    snap.provider = policy.name;
    snap.date = snapshot_date;
    snap.version = "sync-" + effective.to_string();
    snap.entries = std::move(entries);
    history.add(std::move(snap));
  }
  return history;
}

}  // namespace rs::synth
