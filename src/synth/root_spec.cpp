#include "src/synth/root_spec.h"

#include <cassert>

#include "src/crypto/prng.h"

namespace rs::synth {

namespace {
std::string spec_digest(const RootSpec& s) {
  return s.common_name + "|" + s.organization + "|" + s.country + "|" +
         s.not_before.to_string() + "|" + s.not_after.to_string() + "|" +
         std::to_string(static_cast<int>(s.scheme)) + "|" +
         std::to_string(s.rsa_bits) + "|" + (s.version1 ? "1" : "3");
}
}  // namespace

std::shared_ptr<const rs::x509::Certificate> CertFactory::get(
    const RootSpec& spec) {
  const auto it = cache_.find(spec.id);
  if (it != cache_.end()) {
    assert(spec_digests_.at(spec.id) == spec_digest(spec) &&
           "RootSpec id reused with different parameters");
    return it->second;
  }

  // Key seed and serial derive from the factory seed + spec id, so the same
  // scenario always yields byte-identical certificates.
  rs::crypto::Prng rng = rs::crypto::Prng::from_label(seed_, "root:" + spec.id);
  const std::uint64_t key_seed = rng.next();
  const std::uint64_t serial = (rng.next() >> 16) | 1;  // positive, non-zero

  rs::x509::Name subject;
  subject.add_common_name(spec.common_name);
  if (!spec.organization.empty()) subject.add_organization(spec.organization);
  if (!spec.country.empty()) subject.add_country(spec.country);

  rs::x509::CertificateBuilder builder;
  builder.subject(subject)
      .serial_number(serial)
      .not_before(spec.not_before)
      .not_after(spec.not_after)
      .signature_scheme(spec.scheme)
      .rsa_bits(spec.rsa_bits)
      .version1(spec.version1)
      .key_seed(key_seed);

  auto cert =
      std::make_shared<const rs::x509::Certificate>(builder.build());
  cache_.emplace(spec.id, cert);
  spec_digests_.emplace(spec.id, spec_digest(spec));
  return cert;
}

std::shared_ptr<const rs::x509::Certificate> CertFactory::find(
    const std::string& id) const {
  const auto it = cache_.find(id);
  return it == cache_.end() ? nullptr : it->second;
}

}  // namespace rs::synth
