// The curated scenario: a deterministic reconstruction of the paper's
// ten-provider dataset.
//
// Every published fact the evaluation depends on is encoded as timeline
// data: Table 2's provider ranges, Table 3's purge dates, Table 4/7's
// incident responses, Table 6's exclusive roots, and §6's derivative
// customizations.  The certificates themselves are synthesized (real DER
// via rs::x509::CertificateBuilder) and flow through the real format
// writers/parsers in the round-trip tests and benches.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/store/database.h"
#include "src/store/overlay.h"
#include "src/synth/derivatives.h"
#include "src/synth/incidents.h"
#include "src/synth/program_model.h"
#include "src/synth/root_spec.h"

namespace rs::synth {

/// Default seed — the paper's publication date.
inline constexpr std::uint64_t kPaperSeed = 20211102;

/// A Table 6 reference row for one program-exclusive root.
struct ExclusiveRootMeta {
  std::string root_id;
  std::string program;    // the only program TLS-trusting it
  std::string ca_name;
  std::string nss_status; // "Denied", "Pending", "Accepted", "-", ...
  std::string details;
};

/// The fully materialized scenario.
class PaperScenario {
 public:
  PaperScenario(std::shared_ptr<CertFactory> factory,
                rs::store::StoreDatabase db,
                std::map<std::string, Timeline> timelines,
                std::map<std::string, RootSpec> extra_specs,
                std::vector<ExclusiveRootMeta> exclusives,
                std::map<std::string, rs::store::TrustOverlay> overlays = {})
      : factory_(std::move(factory)),
        db_(std::move(db)),
        timelines_(std::move(timelines)),
        extra_specs_(std::move(extra_specs)),
        exclusives_(std::move(exclusives)),
        overlays_(std::move(overlays)) {}

  const rs::store::StoreDatabase& database() const noexcept { return db_; }
  CertFactory& factory() noexcept { return *factory_; }

  /// Swaps in a database materialized elsewhere — e.g. one reloaded from a
  /// write_dataset() directory through the real format decoders, which is
  /// full-fidelity (RSTS), so analyses over the replacement produce the
  /// same bytes.  The caller owns that equivalence claim.
  void replace_database(rs::store::StoreDatabase db) { db_ = std::move(db); }

  /// Timelines for the four independent programs ("NSS", "Apple",
  /// "Microsoft", "Java").
  const Timeline& timeline(const std::string& program) const {
    return timelines_.at(program);
  }
  bool has_timeline(const std::string& program) const {
    return timelines_.contains(program);
  }

  /// Root blueprints that exist only in derivatives (Debian-local CAs, ...).
  const std::map<std::string, RootSpec>& extra_specs() const noexcept {
    return extra_specs_;
  }

  const std::vector<ExclusiveRootMeta>& exclusive_roots() const noexcept {
    return exclusives_;
  }

  /// The incident catalog (same data as synth::incident_catalog()).
  std::vector<Incident> incidents() const { return incident_catalog(); }

  /// Out-of-band revocation overlays per provider (valid.apple.com analog).
  const std::map<std::string, rs::store::TrustOverlay>& overlays() const {
    return overlays_;
  }

 private:
  std::shared_ptr<CertFactory> factory_;
  rs::store::StoreDatabase db_;
  std::map<std::string, Timeline> timelines_;
  std::map<std::string, RootSpec> extra_specs_;
  std::vector<ExclusiveRootMeta> exclusives_;
  std::map<std::string, rs::store::TrustOverlay> overlays_;
};

/// Builds the scenario.  Deterministic: equal seeds give byte-identical
/// databases.  The default seed reproduces the repository's committed
/// EXPERIMENTS.md numbers.
PaperScenario build_paper_scenario(std::uint64_t seed = kPaperSeed);

}  // namespace rs::synth
