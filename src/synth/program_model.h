// Event-sourced root-program timelines.
//
// A program's root store over time is a stream of TrustActions (include,
// remove, set partial distrust, change level).  Timeline::materialize
// replays the stream up to a date and yields the store state — the snapshot
// generator for every provider in the scenario.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/store/snapshot.h"
#include "src/store/trust.h"
#include "src/synth/root_spec.h"
#include "src/util/date.h"

namespace rs::synth {

/// One change to a program's trust in one root.
struct TrustAction {
  enum class Kind {
    /// Add the root with the given per-purpose anchor set.
    kInclude,
    /// Drop the root entirely.
    kRemove,
    /// Set TLS partial distrust (CKA_NSS_SERVER_DISTRUST_AFTER analog).
    kSetServerDistrustAfter,
    /// Actively distrust the given purposes (entry remains present).
    kDistrustPurposes,
  };

  rs::util::Date date;
  std::string root_id;
  Kind kind = Kind::kInclude;
  /// kInclude / kDistrustPurposes: which purposes.
  std::vector<rs::store::TrustPurpose> purposes;
  /// kSetServerDistrustAfter: the cutoff.
  std::optional<rs::util::Date> cutoff;
};

/// A date-ordered action stream plus the specs it references.
class Timeline {
 public:
  /// Registers a root blueprint; actions reference it by spec.id.
  void add_spec(RootSpec spec);
  bool has_spec(const std::string& id) const;
  const RootSpec& spec(const std::string& id) const;
  const std::map<std::string, RootSpec>& specs() const { return specs_; }

  void include(rs::util::Date d, const std::string& root_id,
               std::vector<rs::store::TrustPurpose> purposes = {
                   rs::store::TrustPurpose::kServerAuth});
  void remove(rs::util::Date d, const std::string& root_id);
  void set_server_distrust_after(rs::util::Date d, const std::string& root_id,
                                 rs::util::Date cutoff);
  void distrust(rs::util::Date d, const std::string& root_id,
                std::vector<rs::store::TrustPurpose> purposes);

  const std::vector<TrustAction>& actions() const { return actions_; }

  /// Store state after replaying all actions dated <= `when`.
  /// Entry order is stable (insertion order of surviving roots).
  std::vector<rs::store::TrustEntry> materialize(rs::util::Date when,
                                                 CertFactory& factory) const;

  /// Dates at which replay output changes — candidate snapshot dates.
  std::vector<rs::util::Date> change_dates() const;

 private:
  std::map<std::string, RootSpec> specs_;
  std::vector<TrustAction> actions_;
};

/// Materializes a Snapshot from a timeline.
rs::store::Snapshot snapshot_at(const Timeline& timeline, CertFactory& factory,
                                std::string provider, rs::util::Date date,
                                std::string version);

}  // namespace rs::synth
