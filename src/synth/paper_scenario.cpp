#include "src/synth/paper_scenario.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/prng.h"
#include "src/synth/paper_reference.h"
#include "src/synth/user_agents.h"

namespace rs::synth {

using rs::store::TrustPurpose;
using rs::util::Date;
using rs::x509::SignatureScheme;

namespace {

// ---------------------------------------------------------------------------
// Program constants (Table 2 ranges, Table 3 purge dates).
// ---------------------------------------------------------------------------

struct ProgramDates {
  Date start;
  Date end;
  Date weak_rsa_purge;  // 1024-bit removal (Table 3)
  Date md5_purge;       // MD5 removal (Table 3)
  int include_delay_base;    // days from CA creation to inclusion
  int include_delay_spread;
  int expiry_retention;      // days an expired root lingers
  double adoption;           // fraction of the shared pool the program trusts
};

ProgramDates nss_dates() {
  return {Date::ymd(2000, 10, 15), Date::ymd(2021, 5, 15),
          Date::ymd(2015, 10, 15), Date::ymd(2016, 2, 15), 60, 240, 45, 1.0};
}
ProgramDates apple_dates() {
  return {Date::ymd(2002, 8, 15), Date::ymd(2021, 2, 15),
          Date::ymd(2015, 9, 15), Date::ymd(2016, 9, 15), 90, 300, 400, 0.8};
}
ProgramDates microsoft_dates() {
  return {Date::ymd(2006, 12, 15), Date::ymd(2021, 3, 15),
          Date::ymd(2017, 9, 15), Date::ymd(2018, 3, 15), 45, 360, 1500, 1.0};
}
ProgramDates java_dates() {
  return {Date::ymd(2018, 3, 15), Date::ymd(2021, 2, 15),
          Date::ymd(2021, 2, 15), Date::ymd(2019, 2, 15), 0, 0, 120, 1.0};
}

// NSS 3.53 analog: Symantec partial distrust lands, TWCA/SK ID removed.
const Date kNssV53 = Date::ymd(2020, 4, 15);
const Date kSymantecCutoff = Date::ymd(2020, 1, 1);

// ---------------------------------------------------------------------------
// Mainstream CA pool.
// ---------------------------------------------------------------------------

enum class PurposeProfile { kTlsEmail, kTlsOnly, kEmailOnly };

struct PoolRoot {
  RootSpec spec;
  PurposeProfile profile = PurposeProfile::kTlsEmail;
};

std::string pool_name(std::size_t i, int generation) {
  static constexpr const char* kFirst[] = {
      "Trust",  "Secure", "Global",  "Prime", "Atlas", "Cyber", "Sona",
      "Veri",   "Digi",   "Netz",    "First", "Uni",   "Omni",  "Star",
      "Blue",   "Apex",   "Nova",    "Terra", "Quanta", "Shield"};
  static constexpr const char* kSecond[] = {
      "Corp", "Sign", "Cert", "Trust", "Path", "Anchor", "Sec",
      "ID",   "Net",  "Guard", "Link", "Root", "Key",    "Gate"};
  std::string base = std::string(kFirst[i % 20]) + kSecond[(i / 20) % 14];
  base += " Root CA " + std::to_string(i + 1);
  if (generation > 1) base += " G" + std::to_string(generation);
  return base;
}

std::string pool_country(rs::crypto::Prng& rng) {
  static constexpr const char* kCountries[] = {"US", "DE", "GB", "JP", "FR",
                                               "ES", "NL", "CH", "SE", "BE"};
  return kCountries[rng.uniform(10)];
}

/// Generates the shared commercial CA pool (plus modern successors for
/// every weak/MD5 root, so purges do not shrink the stores).
std::vector<PoolRoot> make_mainstream_pool(std::uint64_t seed) {
  std::vector<PoolRoot> pool;
  rs::crypto::Prng rng = rs::crypto::Prng::from_label(seed, "mainstream-pool");

  constexpr std::size_t kPoolSize = 140;
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    PoolRoot root;
    RootSpec& s = root.spec;
    s.id = "mainstream-" + std::to_string(i + 1);
    s.common_name = pool_name(i, 1);
    s.organization = s.common_name.substr(0, s.common_name.find(" Root"));
    s.country = pool_country(rng);

    const int year = 1996 + static_cast<int>(i * 24 / kPoolSize);  // 1996..2019
    const int month = 1 + static_cast<int>(rng.uniform(12));
    const int day = 1 + static_cast<int>(rng.uniform(28));
    s.not_before = Date::ymd(year, month, day);

    int validity_years = 20;
    if (year < 2001) {
      s.scheme = rng.chance(0.5) ? SignatureScheme::kMd5Rsa
                                 : SignatureScheme::kSha1Rsa;
      s.rsa_bits = rng.chance(0.3) ? 512 : 1024;
      s.version1 = rng.chance(0.6);
      validity_years = 12 + static_cast<int>(rng.uniform(8));
    } else if (year < 2006) {
      s.scheme = SignatureScheme::kSha1Rsa;
      s.rsa_bits = rng.chance(0.45) ? 1024 : 2048;
      validity_years = 14 + static_cast<int>(rng.uniform(10));
    } else if (year < 2012) {
      s.scheme = SignatureScheme::kSha1Rsa;
      s.rsa_bits = 2048;
      validity_years = 14 + static_cast<int>(rng.uniform(10));
    } else {
      s.scheme = rng.chance(0.15) ? SignatureScheme::kEcdsaSha256
                                  : SignatureScheme::kSha256Rsa;
      s.rsa_bits = rng.chance(0.25) ? 4096 : 2048;
      validity_years = 15 + static_cast<int>(rng.uniform(11));
    }
    s.not_after = s.not_before.add_months(12 * validity_years);

    const double roll = rng.uniform01();
    root.profile = roll < 0.75   ? PurposeProfile::kTlsEmail
                   : roll < 0.92 ? PurposeProfile::kTlsOnly
                                 : PurposeProfile::kEmailOnly;
    pool.push_back(root);

    // Modern successor for every weak/MD5 root (same CA, generation 2).
    const bool needs_successor = s.rsa_bits < 2048 ||
                                 s.scheme == SignatureScheme::kMd5Rsa;
    if (needs_successor) {
      PoolRoot succ;
      RootSpec& g2 = succ.spec;
      g2.id = s.id + "-g2";
      g2.common_name = pool_name(i, 2);
      g2.organization = s.organization;
      g2.country = s.country;
      g2.not_before =
          Date::ymd(2009 + static_cast<int>(i % 6), 1 + static_cast<int>(rng.uniform(12)),
                    1 + static_cast<int>(rng.uniform(28)));
      g2.not_after = g2.not_before.add_months(12 * 25);
      g2.scheme = SignatureScheme::kSha256Rsa;
      g2.rsa_bits = 2048;
      succ.profile = root.profile;
      pool.push_back(succ);
    }
  }
  return pool;
}

std::vector<TrustPurpose> purposes_of(PurposeProfile p) {
  switch (p) {
    case PurposeProfile::kTlsEmail:
      return {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection};
    case PurposeProfile::kTlsOnly:
      return {TrustPurpose::kServerAuth};
    case PurposeProfile::kEmailOnly:
      return {TrustPurpose::kEmailProtection};
  }
  return {TrustPurpose::kServerAuth};
}

/// Includes the pool into one program's timeline under its policy dates.
void include_pool(Timeline& t, const ProgramDates& d,
                  const std::vector<PoolRoot>& pool, std::uint64_t seed,
                  const std::string& program) {
  rs::crypto::Prng rng =
      rs::crypto::Prng::from_label(seed, "include:" + program);
  for (const auto& root : pool) {
    const RootSpec& s = root.spec;
    // Draw the per-root randomness unconditionally so one program's policy
    // never perturbs another program's stream.
    const bool adopted = rng.chance(d.adoption);
    const std::int64_t spread =
        d.include_delay_spread > 0
            ? static_cast<std::int64_t>(rng.uniform(
                  static_cast<std::uint64_t>(d.include_delay_spread)))
            : 0;
    // CCADB-era CAs (2018+) are vetted once and adopted everywhere with a
    // common short delay; older CAs follow each program's own policy.
    const bool modern = s.not_before >= Date::ymd(2018, 1, 1);
    if (!modern && !adopted) continue;  // programs don't trust every CA
    Date include = modern ? s.not_before + 150
                          : s.not_before + d.include_delay_base + spread;
    if (include < d.start) include = d.start;
    if (include >= d.end || include >= s.not_after - 90) continue;

    t.add_spec(s);
    t.include(include, s.id, purposes_of(root.profile));
    // Expiry-driven removal (retention models Table 3's expired counts).
    t.remove(s.not_after + d.expiry_retention, s.id);
    // Hygiene purges (Table 3).
    if (s.rsa_bits < 2048 && d.weak_rsa_purge > include) {
      t.remove(d.weak_rsa_purge, s.id);
    }
    if (s.scheme == SignatureScheme::kMd5Rsa && d.md5_purge > include) {
      t.remove(d.md5_purge, s.id);
    }
  }
}

// ---------------------------------------------------------------------------
// Long-lived legacy roots that pin the Table 3 purge dates exactly.
// ---------------------------------------------------------------------------

std::vector<RootSpec> legacy_md5_roots() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 4; ++i) {
    RootSpec s;
    s.id = "legacy-md5-" + std::to_string(i);
    s.common_name = "Heritage MD5 Root CA " + std::to_string(i);
    s.organization = "Heritage Trust";
    s.not_before = Date::ymd(1998, i, 10);
    s.not_after = Date::ymd(2027, i, 10);
    s.scheme = SignatureScheme::kMd5Rsa;
    s.rsa_bits = 2048;  // avoid coupling with the 1024-bit purge
    s.version1 = true;
    out.push_back(s);
  }
  return out;
}

std::vector<RootSpec> legacy_weak_roots() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 6; ++i) {
    RootSpec s;
    s.id = "legacy-1024-" + std::to_string(i);
    s.common_name = "Heritage 1024 Root CA " + std::to_string(i);
    s.organization = "Heritage Trust";
    s.not_before = Date::ymd(2001, i, 20);
    s.not_after = Date::ymd(2028, i, 20);
    s.scheme = SignatureScheme::kSha1Rsa;
    s.rsa_bits = 1024;
    out.push_back(s);
  }
  return out;
}

void include_legacy(Timeline& t, const ProgramDates& d) {
  for (const auto& s : legacy_md5_roots()) {
    t.add_spec(s);
    t.include(d.start, s.id,
              {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    t.remove(d.md5_purge, s.id);
  }
  for (const auto& s : legacy_weak_roots()) {
    t.add_spec(s);
    t.include(d.start, s.id,
              {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    t.remove(d.weak_rsa_purge, s.id);
  }
}

// ---------------------------------------------------------------------------
// Incident roots (Table 4 / Table 7).
// ---------------------------------------------------------------------------

struct IncidentSpecs {
  std::vector<RootSpec> specs;
};

IncidentSpecs incident_root_specs() {
  IncidentSpecs out;
  auto add = [&](std::string id, std::string cn, std::string org, int year,
                 SignatureScheme scheme = SignatureScheme::kSha1Rsa) {
    RootSpec s;
    s.id = std::move(id);
    s.common_name = std::move(cn);
    s.organization = std::move(org);
    s.not_before = Date::ymd(year, 6, 1);
    s.not_after = Date::ymd(year + 25, 6, 1);
    s.scheme = scheme;
    s.rsa_bits = 2048;
    out.specs.push_back(std::move(s));
  };
  add("diginotar-root", "DigiNotar Root CA", "DigiNotar", 2007);
  add("cnnic-root-1", "CNNIC ROOT", "CNNIC", 2007);
  add("cnnic-root-2", "China Internet Network Information Center EV Root",
      "CNNIC", 2010);
  for (int i = 1; i <= 3; ++i) {
    add("startcom-root-" + std::to_string(i),
        "StartCom Certification Authority G" + std::to_string(i), "StartCom",
        2005 + i);
  }
  for (int i = 1; i <= 4; ++i) {
    add("wosign-root-" + std::to_string(i),
        "Certification Authority of WoSign G" + std::to_string(i), "WoSign",
        2008 + i);
  }
  add("procert-root", "PSCProcert", "PROCERT", 2010);
  add("certinomis-root", "Certinomis - Root CA", "Certinomis", 2013,
      SignatureScheme::kSha256Rsa);
  for (int i = 1; i <= 13; ++i) {
    add("symantec-root-" + std::to_string(i),
        i == 12 ? "GeoTrust Universal CA 2"
                : "Symantec Class 3 Root CA G" + std::to_string(i),
        "Symantec / VeriSign", 1998 + (i % 9));
  }
  add("taiwan-grca-root", "Government Root Certification Authority",
      "Government of Taiwan", 2002);
  add("twca-root", "TWCA Root Certification Authority", "TAIWAN-CA", 2008);
  add("skid-root", "EE Certification Centre Root CA", "SK ID Solutions", 2010);
  add("addtrust-root", "AddTrust External CA Root", "AddTrust AB", 2000);
  // AddTrust famously expired on 2020-05-30.
  out.specs.back().not_after = Date::ymd(2020, 5, 30);
  return out;
}

/// Date each incident root entered NSS (and roughly the other programs).
Date incident_include_date(const std::string& id) {
  if (id.rfind("symantec-", 0) == 0) return Date::ymd(2004, 3, 15);
  if (id == "diginotar-root") return Date::ymd(2008, 5, 15);
  if (id.rfind("cnnic-", 0) == 0) return Date::ymd(2010, 9, 15);
  if (id.rfind("startcom-", 0) == 0) return Date::ymd(2009, 4, 15);
  if (id.rfind("wosign-", 0) == 0) return Date::ymd(2011, 7, 15);
  if (id == "procert-root") return Date::ymd(2010, 11, 15);
  if (id == "certinomis-root") return Date::ymd(2015, 2, 15);
  if (id == "taiwan-grca-root") return Date::ymd(2012, 6, 15);
  if (id == "twca-root") return Date::ymd(2012, 3, 15);
  if (id == "skid-root") return Date::ymd(2011, 10, 15);
  if (id == "addtrust-root") return Date::ymd(2002, 1, 15);
  return Date::ymd(2010, 1, 15);
}

bool provider_in(const std::vector<std::string>& xs, const std::string& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

/// Wires incident roots into an independent program's timeline.
void include_incidents(Timeline& t, const std::string& program,
                       const ProgramDates& d,
                       const std::vector<Incident>& incidents,
                       const IncidentSpecs& specs) {
  for (const auto& s : specs.specs) t.add_spec(s);

  // Track the ids handled via incident responses so defaults don't re-add.
  for (const auto& inc : incidents) {
    if (provider_in(inc.never_included, program)) continue;
    // Response row for this program, if any.
    const PaperResponse* resp = nullptr;
    for (const auto& r : inc.responses) {
      if (r.provider == program) resp = &r;
    }
    // A response's cert_count below the incident's root count means the
    // program only ever carried that many of the roots (e.g. Microsoft
    // included 2 of the 3 StartCom roots).
    const std::size_t carried =
        (program != "NSS" && resp != nullptr)
            ? std::min<std::size_t>(
                  static_cast<std::size_t>(resp->cert_count),
                  inc.root_ids.size())
            : inc.root_ids.size();
    for (std::size_t k = 0; k < carried; ++k) {
      const std::string& id = inc.root_ids[k];
      Date include = incident_include_date(id);
      if (include < d.start) include = d.start;
      t.include(include, id,
                {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
      // Apple's valid.apple.com responses revoke without removing: the
      // root stays in the shipped store and the distrust lives in the
      // provider's TrustOverlay (built in build_paper_scenario).
      const bool out_of_band =
          resp != nullptr &&
          resp->note.find("valid.apple.com") != std::string::npos;
      if (program == "NSS") {
        t.remove(inc.nss_removal, id);
      } else if (resp != nullptr && resp->trusted_until && !out_of_band) {
        t.remove(*resp->trusted_until + 1, id);
      }
      // trusted_until == nullopt (or no response row): root kept.
    }
  }
}

/// Roots tied to NSS-internal actions that the other programs also carry.
void include_nss_side_roots(Timeline& t, const ProgramDates& d) {
  for (const char* id : {"twca-root", "skid-root", "addtrust-root"}) {
    Date include = incident_include_date(id);
    if (include < d.start) include = d.start;
    t.include(include, id,
              {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
  }
}

/// NSS-only extra incident machinery: Symantec partial distrust (v53),
/// TWCA / SK ID / AddTrust / Taiwan GRCA removals.
void nss_special_actions(Timeline& t, const IncidentSpecs& specs) {
  (void)specs;
  for (int i = 1; i <= 12; ++i) {
    t.set_server_distrust_after(kNssV53, "symantec-root-" + std::to_string(i),
                                kSymantecCutoff);
  }
  t.remove(kNssV53, "twca-root");
  t.remove(kNssV53, "skid-root");
  // AddTrust expired 2020-05-30; NSS dropped it shortly after.
  t.remove(Date::ymd(2020, 6, 15), "addtrust-root");
}

// ---------------------------------------------------------------------------
// Program-specific extra pools and exclusives (Table 6).
// ---------------------------------------------------------------------------

/// Roots TLS-trusted by both Apple and Microsoft but never by NSS/Java.
std::vector<RootSpec> widetrust_pool() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 24; ++i) {
    RootSpec s;
    s.id = "widetrust-" + std::to_string(i);
    s.common_name = "Regional Commerce Root CA " + std::to_string(i);
    s.organization = "Regional Commerce CA";
    s.country = i % 2 ? "KR" : "BR";
    s.not_before = Date::ymd(2005 + (i % 13), 3, 5);
    s.not_after = s.not_before.add_months(12 * 22);
    s.scheme = s.not_before.year() >= 2012 ? SignatureScheme::kSha256Rsa
                                           : SignatureScheme::kSha1Rsa;
    out.push_back(s);
  }
  return out;
}

/// Apple-specific legacy roots: CAs Apple carried for its older platform
/// ecosystem.  All expire (and age out, given Apple's ~400-day retention)
/// before Apple's newest snapshot, so they never appear in the Table 6
/// latest-snapshot exclusivity computation — they only differentiate
/// Apple's historical snapshots in Figure 1.
std::vector<RootSpec> apple_legacy_pool() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 30; ++i) {
    RootSpec s;
    s.id = "apple-legacy-" + std::to_string(i);
    s.common_name = "Platform Heritage Root " + std::to_string(i);
    s.organization = "Platform Heritage CA";
    s.not_before = Date::ymd(1999 + (i % 6), 1 + (i % 12), 7);
    s.not_after = s.not_before.add_months(12 * (12 + i % 4));  // <= 2019
    s.scheme = SignatureScheme::kSha1Rsa;
    s.rsa_bits = 2048;
    out.push_back(s);
  }
  return out;
}

/// Roots Apple keeps trusting after Microsoft dropped them (2014-2016
/// policy cleanups).  Because Microsoft *ever* TLS-trusted them, they are
/// not Table-6 exclusives — they just keep Apple's modern snapshots
/// distinct from the NSS family in Figure 1.
std::vector<RootSpec> apple_retained_pool() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 25; ++i) {
    RootSpec s;
    s.id = "apple-retained-" + std::to_string(i);
    s.common_name = "Continuity Services Root " + std::to_string(i);
    s.organization = "Continuity CA";
    s.not_before = Date::ymd(2003 + (i % 10), 1 + (i % 12), 11);
    s.not_after = s.not_before.add_months(12 * 25);
    s.scheme = s.not_before.year() >= 2012 ? SignatureScheme::kSha256Rsa
                                           : SignatureScheme::kSha1Rsa;
    out.push_back(s);
  }
  return out;
}

/// Microsoft's email/code-signing-only population (size filler; never TLS).
std::vector<RootSpec> ms_purpose_pool() {
  std::vector<RootSpec> out;
  for (int i = 1; i <= 90; ++i) {
    RootSpec s;
    s.id = "ms-purpose-" + std::to_string(i);
    s.common_name = "Enterprise Document Root " + std::to_string(i);
    s.organization = "Enterprise PKI Services";
    s.not_before = Date::ymd(1997 + (i % 22), 1 + (i % 12), 3);
    s.not_after = s.not_before.add_months(12 * (12 + i % 9));
    s.scheme = s.not_before.year() >= 2012 ? SignatureScheme::kSha256Rsa
                                           : SignatureScheme::kSha1Rsa;
    out.push_back(s);
  }
  return out;
}

struct ExclusivePlan {
  RootSpec spec;
  ExclusiveRootMeta meta;
  Date include;
  /// Also email-trusted by these other programs (does not break Table 6's
  /// TLS-exclusivity).
  std::vector<std::string> email_elsewhere;
};

std::vector<ExclusivePlan> exclusive_plans() {
  std::vector<ExclusivePlan> out;
  auto add = [&](std::string id, std::string program, std::string ca,
                 std::string nss_status, std::string details, int year,
                 std::vector<std::string> email_elsewhere = {},
                 SignatureScheme scheme = SignatureScheme::kSha256Rsa) {
    ExclusivePlan p;
    p.spec.id = id;
    p.spec.common_name = ca + " Root";
    p.spec.organization = ca;
    p.spec.not_before = Date::ymd(year, 4, 2);
    p.spec.not_after = p.spec.not_before.add_months(12 * 25);
    p.spec.scheme = scheme;
    p.meta = ExclusiveRootMeta{std::move(id), std::move(program), std::move(ca),
                               std::move(nss_status), std::move(details)};
    p.include = Date::ymd(year + 1, 2, 10);
    p.email_elsewhere = std::move(email_elsewhere);
    out.push_back(std::move(p));
  };

  // NSS (1): new Microsec ECC root.
  add("nss-excl-microsec-ecc", "NSS", "Microsec", "Accepted",
      "New elliptic curve root accompanying an existing trusted root", 2018,
      {}, SignatureScheme::kEcdsaSha256);

  // Apple (13): 6 email-only elsewhere, 5 Apple services, 2 distrusted
  // elsewhere.
  add("apple-excl-venezuela", "Apple", "Gov. of Venezuela", "Denied",
      "Super-CA concerns; Microsoft email trust disallowed 2020-02", 2015,
      {"Microsoft"});
  add("apple-excl-certipost", "Apple", "Certipost", "-",
      "CA requested cross-sign revocation: ceased TLS issuance", 2012);
  add("apple-excl-anf", "Apple", "ANF", "-",
      "Microsoft trusts same issuer for email, distrust after 2019-02", 2013,
      {"Microsoft"});
  add("apple-excl-echoworx", "Apple", "Echoworx", "-",
      "Microsoft trusted for email", 2011, {"Microsoft"});
  add("apple-excl-nets", "Apple", "Nets.eu", "-", "Microsoft trusted for email",
      2012, {"Microsoft"});
  add("apple-excl-digicert-c1", "Apple", "DigiCert", "Accepted",
      "Trusted by Microsoft and NSS for email", 2013,
      {"Microsoft", "NSS"});
  add("apple-excl-digicert-c2", "Apple", "DigiCert", "Accepted",
      "Trusted by Microsoft and NSS for email", 2013,
      {"Microsoft", "NSS"});
  add("apple-excl-dtrust", "Apple", "D-TRUST", "Accepted",
      "Microsoft/NSS trusted for email", 2014, {"Microsoft", "NSS"});
  for (int i = 1; i <= 5; ++i) {
    add("apple-excl-services-" + std::to_string(i), "Apple", "Apple", "-",
        "Custom Apple services (FairPlay, Developer ID)", 2009 + i);
  }

  // Microsoft (30).
  add("ms-excl-edicom", "Microsoft", "EDICOM", "Denied",
      "Inadequate audits, issuance concerns, CA unresponsiveness", 2014);
  add("ms-excl-emonitoring", "Microsoft", "e-monitoring.at", "Denied",
      "CA certificate violations of the BRs and RFC 5280", 2015);
  add("ms-excl-brazil", "Microsoft", "Gov. of Brazil", "Denied",
      "Super CA concerns, insufficient auditing / disclosure", 2010);
  add("ms-excl-tunisia1", "Microsoft", "Gov. of Tunisia", "Denied",
      "Repeated misissuance exposed during public discussion", 2013);
  add("ms-excl-korea", "Microsoft", "Gov. of Korea", "Denied",
      "Rejected due to confidential, unrestrained subCAs", 2012);
  add("ms-excl-camerfirma", "Microsoft", "AC Camerfirma", "Denied",
      "Numerous issues led to May 2021 removal of all Camerfirma roots", 2014);
  add("ms-excl-postsignum", "Microsoft", "PostSignum", "Abandoned",
      "New PostSignum root inclusion attempt running into issues", 2011);
  add("ms-excl-oati", "Microsoft", "OATI", "Abandoned",
      "No response in 3 years", 2013);
  add("ms-excl-multicert", "Microsoft", "MULTICERT", "Abandoned",
      "External subCA concerns and other misissuance", 2014);
  add("ms-excl-digidentity", "Microsoft", "Digidentity", "Retracted", "", 2019);
  add("ms-excl-tunisia2", "Microsoft", "Gov. of Tunisia", "Pending",
      "Community concerns about added-value of the root", 2019);
  add("ms-excl-secom1", "Microsoft", "SECOM", "Pending",
      "Pending since 2016 due to ongoing issue resolution", 2016);
  add("ms-excl-secom2", "Microsoft", "SECOM", "Pending",
      "Pending since 2016 due to ongoing issue resolution", 2016);
  add("ms-excl-chunghwa", "Microsoft", "Chunghwa Telecom", "Pending", "", 2019);
  add("ms-excl-fina", "Microsoft", "Fina", "Pending", "", 2018);
  add("ms-excl-telia", "Microsoft", "Telia", "Pending",
      "< 100 leaf certificates in CT", 2020);
  add("ms-excl-netlock", "Microsoft", "NETLOCK Kft.", "-",
      "Cross-signed by Microsoft Code Verification Root", 2015);
  add("ms-excl-spain-mtin", "Microsoft", "Gov. of Spain, MTIN", "-",
      "Expired Nov 2019, no intermediates/children in CT", 2009);
  add("ms-excl-finland", "Microsoft", "Gov. of Finland", "-",
      "Previously abandoned NSS inclusion for a different root", 2010);
  add("ms-excl-cisco", "Microsoft", "Cisco", "-",
      "< 100 leaf certificates in CT; older root rejected by NSS", 2012);
  add("ms-excl-halcom", "Microsoft", "Halcom D.D.", "-",
      "< 100 leaf certificates in CT", 2013);
  add("ms-excl-spain-reg", "Microsoft", "Spain Commercial Reg.", "-",
      "< 100 leaf certificates in CT", 2012);
  add("ms-excl-nisz", "Microsoft", "NISZ", "-",
      "< 200 leaf certificates in CT", 2016);
  add("ms-excl-trustfactory", "Microsoft", "TrustFactory", "-",
      "< 100 leaf certificates in CT", 2018);
  add("ms-excl-digicert-wifi", "Microsoft", "DigiCert", "-",
      "WiFi Alliance Passpoint roaming", 2016);
  add("ms-excl-digicert-balt", "Microsoft", "DigiCert", "-",
      "Trusted intermediate in NSS/Apple/Java via Baltimore CyberTrust", 2014);
  add("ms-excl-sectigo", "Microsoft", "Sectigo", "-",
      "Apple/NSS trusted issuer through different root certificate", 2017);
  add("ms-excl-asseco-1", "Microsoft", "Asseco/e-monitoring.at", "Approved",
      "Recently approved by NSS, awaiting addition", 2020);
  add("ms-excl-asseco-2", "Microsoft", "Asseco/e-monitoring.at", "Approved",
      "Recently approved by NSS, awaiting addition", 2020);
  add("ms-excl-asseco-3", "Microsoft", "Asseco/e-monitoring.at", "Approved",
      "Recently approved by NSS, awaiting addition", 2020);
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot date helpers.
// ---------------------------------------------------------------------------

std::vector<Date> monthly_dates(Date from, Date to, int step_months, int day) {
  std::vector<Date> out;
  Date d = Date::ymd(from.year(), from.month(), day);
  if (d < from) d = d.add_months(1);
  while (d <= to) {
    out.push_back(d);
    d = d.add_months(step_months);
  }
  return out;
}

std::vector<Date> evenly_spaced(Date from, Date to, int count) {
  std::vector<Date> out;
  if (count <= 1) {
    out.push_back(from);
    return out;
  }
  const double span = static_cast<double>(to - from);
  for (int i = 0; i < count; ++i) {
    out.push_back(from + static_cast<std::int64_t>(
                             span * static_cast<double>(i) / (count - 1)));
  }
  return out;
}

/// Dates at which this provider's Table 4 responses land (snapshot exactly
/// on the last-trusted day so measured lags match the catalog).
std::vector<Date> response_dates(const std::string& provider,
                                 const std::vector<Incident>& incidents) {
  std::vector<Date> out;
  for (const auto& inc : incidents) {
    for (const auto& r : inc.responses) {
      if (r.provider == provider && r.trusted_until) {
        out.push_back(*r.trusted_until);
        out.push_back(*r.trusted_until + 1);
      }
    }
  }
  return out;
}

rs::store::ProviderHistory materialize_program(
    const Timeline& t, CertFactory& factory, const std::string& name,
    std::vector<Date> dates, Date start, Date end) {
  std::sort(dates.begin(), dates.end());
  dates.erase(std::unique(dates.begin(), dates.end()), dates.end());

  rs::store::ProviderHistory history(name);
  int version = 0;
  rs::store::FingerprintSet previous;
  bool first = true;
  for (Date d : dates) {
    if (d < start || d > end) continue;
    rs::store::Snapshot snap;
    snap.provider = name;
    snap.date = d;
    snap.entries = t.materialize(d, factory);
    const auto current = snap.all_fingerprints();
    if (first || !(current == previous)) {
      ++version;
      previous = current;
      first = false;
    }
    snap.version = "3." + std::to_string(version);
    history.add(std::move(snap));
  }
  return history;
}

// Derivative overrides from the incident catalog responses.
void add_response_overrides(DerivativePolicy& policy,
                            const std::vector<Incident>& incidents) {
  for (const auto& inc : incidents) {
    const bool never =
        provider_in(inc.never_included, policy.name) ||
        // Debian/Ubuntu responses are recorded under both names.
        (provider_in(inc.never_included, "Debian/Ubuntu") &&
         (policy.name == "Debian" || policy.name == "Ubuntu"));
    if (never) {
      for (const auto& id : inc.root_ids) {
        policy.overrides.push_back({id, {}, {}, {}, {}, /*always_absent=*/true});
      }
      continue;
    }
    for (const auto& r : inc.responses) {
      if (r.provider != policy.name) continue;
      const std::size_t carried = std::min<std::size_t>(
          static_cast<std::size_t>(r.cert_count), inc.root_ids.size());
      for (std::size_t k = 0; k < inc.root_ids.size(); ++k) {
        const std::string& id = inc.root_ids[k];
        DerivativeOverride ov;
        ov.root_id = id;
        if (k >= carried) {
          ov.always_absent = true;  // provider never carried this root
        } else {
          ov.present_from = incident_include_date(id);
          if (r.trusted_until) {
            ov.present_until = *r.trusted_until;
            ov.absent_from = *r.trusted_until + 1;
          }
        }
        policy.overrides.push_back(std::move(ov));
      }
    }
  }
}

}  // namespace

PaperScenario build_paper_scenario(std::uint64_t seed) {
  auto factory = std::make_shared<CertFactory>(seed);
  const auto incidents = incident_catalog();
  const auto inc_specs = incident_root_specs();
  const auto pool = make_mainstream_pool(seed);
  const auto wide = widetrust_pool();
  const auto purpose_pool = ms_purpose_pool();
  const auto exclusives = exclusive_plans();

  std::map<std::string, Timeline> timelines;
  Timeline& nss = timelines["NSS"];
  Timeline& apple = timelines["Apple"];
  Timeline& microsoft = timelines["Microsoft"];
  Timeline& java = timelines["Java"];

  const ProgramDates nd = nss_dates();
  const ProgramDates ad = apple_dates();
  const ProgramDates md = microsoft_dates();
  const ProgramDates jd = java_dates();

  // --- Independent programs ----------------------------------------------
  include_pool(nss, nd, pool, seed, "NSS");
  include_pool(apple, ad, pool, seed, "Apple");
  include_pool(microsoft, md, pool, seed, "Microsoft");
  include_legacy(nss, nd);
  include_legacy(apple, ad);
  include_legacy(microsoft, md);

  // Java: a curated subset of the pool active at program start, plus the
  // 2018-08 churn outlier (remove 9, add 21) from §4.
  {
    include_legacy(java, jd);
    std::vector<const PoolRoot*> active;
    for (const auto& r : pool) {
      if (r.spec.not_before <= jd.start && jd.start < r.spec.not_after &&
          r.profile != PurposeProfile::kEmailOnly) {
        active.push_back(&r);
      }
    }
    std::size_t idx = 0;
    std::vector<const PoolRoot*> initial, batch2;
    for (const auto* r : active) {
      if (idx % 2 == 0) initial.push_back(r);
      else if (batch2.size() < 21) batch2.push_back(r);
      ++idx;
    }
    for (const auto* r : initial) {
      java.add_spec(r->spec);
      java.include(jd.start, r->spec.id, purposes_of(r->profile));
      java.remove(r->spec.not_after + jd.expiry_retention, r->spec.id);
      if (r->spec.rsa_bits < 2048) java.remove(jd.weak_rsa_purge, r->spec.id);
      if (r->spec.scheme == SignatureScheme::kMd5Rsa) {
        java.remove(jd.md5_purge, r->spec.id);
      }
    }
    const Date churn = Date::ymd(2018, 8, 15);
    for (std::size_t i = 0; i < initial.size() && i < 9; ++i) {
      java.remove(churn, initial[i * (initial.size() / 9)]->spec.id);
    }
    for (const auto* r : batch2) {
      java.add_spec(r->spec);
      java.include(churn, r->spec.id, purposes_of(r->profile));
      java.remove(r->spec.not_after + jd.expiry_retention, r->spec.id);
      if (r->spec.rsa_bits < 2048) java.remove(jd.weak_rsa_purge, r->spec.id);
      if (r->spec.scheme == SignatureScheme::kMd5Rsa) {
        java.remove(jd.md5_purge, r->spec.id);
      }
    }
  }

  // Wide-trust pool: Apple + Microsoft TLS.
  for (const auto& s : wide) {
    for (Timeline* t : {&apple, &microsoft}) {
      const Date start = t == &apple ? ad.start : md.start;
      Date include = s.not_before + 120;
      if (include < start) include = start;
      t->add_spec(s);
      t->include(include, s.id,
                 {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
      t->remove(s.not_after + (t == &apple ? ad : md).expiry_retention, s.id);
    }
  }

  // Apple legacy platform roots (historical differentiation; all age out).
  for (const auto& s : apple_legacy_pool()) {
    Date include = s.not_before + 60;
    if (include < ad.start) include = ad.start;
    if (include >= s.not_after - 90) continue;
    apple.add_spec(s);
    apple.include(include, s.id,
                  {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    apple.remove(s.not_after + ad.expiry_retention, s.id);
  }

  // Apple-retained roots: Apple keeps them; Microsoft carried them for a
  // while and dropped them in 2014-2016 cleanups.
  {
    int cleanup = 0;
    for (const auto& s : apple_retained_pool()) {
      Date apple_include = s.not_before + 150;
      if (apple_include < ad.start) apple_include = ad.start;
      apple.add_spec(s);
      apple.include(apple_include, s.id,
                    {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
      apple.remove(s.not_after + ad.expiry_retention, s.id);

      Date ms_include = s.not_before + 200;
      if (ms_include < md.start) ms_include = md.start;
      microsoft.add_spec(s);
      microsoft.include(ms_include, s.id,
                        {TrustPurpose::kServerAuth,
                         TrustPurpose::kEmailProtection});
      microsoft.remove(Date::ymd(2014 + cleanup % 3, 3 + cleanup % 7, 15),
                       s.id);
      ++cleanup;
    }
  }

  // Microsoft email/code-signing population.
  for (const auto& s : purpose_pool) {
    Date include = s.not_before + 90;
    if (include < md.start) include = md.start;
    if (include >= md.end) continue;
    microsoft.add_spec(s);
    microsoft.include(include, s.id,
                      {TrustPurpose::kEmailProtection,
                       TrustPurpose::kCodeSigning});
    microsoft.remove(s.not_after + md.expiry_retention, s.id);
  }

  // Exclusives (Table 6).
  std::vector<ExclusiveRootMeta> exclusive_meta;
  for (const auto& p : exclusives) {
    Timeline& owner = timelines.at(p.meta.program);
    owner.add_spec(p.spec);
    owner.include(p.include, p.spec.id,
                  {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    for (const auto& other : p.email_elsewhere) {
      Timeline& t = timelines.at(other);
      t.add_spec(p.spec);
      t.include(p.include + 200, p.spec.id, {TrustPurpose::kEmailProtection});
    }
    exclusive_meta.push_back(p.meta);
  }

  // Incident roots.
  include_incidents(nss, "NSS", nd, incidents, inc_specs);
  include_incidents(apple, "Apple", ad, incidents, inc_specs);
  include_incidents(microsoft, "Microsoft", md, incidents, inc_specs);
  include_incidents(java, "Java", jd, incidents, inc_specs);
  include_nss_side_roots(nss, nd);
  include_nss_side_roots(apple, ad);
  include_nss_side_roots(microsoft, md);
  nss_special_actions(nss, inc_specs);

  // --- Materialize the four programs --------------------------------------
  rs::store::StoreDatabase db;
  {
    // Monthly snapshots (the paper's ~225 NSS versions) plus the exact
    // dates security actions landed, so removal timing is day-accurate.
    std::vector<Date> dates = monthly_dates(nd.start, nd.end, 1, 15);
    for (const auto& inc : incidents) dates.push_back(inc.nss_removal);
    dates.push_back(kNssV53);
    dates.push_back(nd.md5_purge);
    dates.push_back(nd.weak_rsa_purge);
    dates.push_back(Date::ymd(2020, 6, 15));  // AddTrust drop
    db.add(materialize_program(nss, *factory, "NSS", std::move(dates),
                               nd.start, nd.end));
  }
  {
    std::vector<Date> dates = monthly_dates(ad.start, ad.end, 2, 12);
    // The 2012-10..2014-01 stagnation gap behind the Figure 1 outlier.
    std::erase_if(dates, [](Date d) {
      return d > Date::ymd(2012, 10, 20) && d < Date::ymd(2014, 2, 1);
    });
    dates.push_back(Date::ymd(2014, 2, 12));
    dates.push_back(ad.md5_purge);
    dates.push_back(ad.weak_rsa_purge);
    for (Date d : response_dates("Apple", incidents)) dates.push_back(d);
    db.add(materialize_program(apple, *factory, "Apple", std::move(dates),
                               ad.start, ad.end));
  }
  {
    std::vector<Date> dates = monthly_dates(md.start, md.end, 2, 20);
    dates.push_back(md.md5_purge);
    dates.push_back(md.weak_rsa_purge);
    for (Date d : response_dates("Microsoft", incidents)) dates.push_back(d);
    db.add(materialize_program(microsoft, *factory, "Microsoft",
                               std::move(dates), md.start, md.end));
  }
  {
    std::vector<Date> dates = {
        Date::ymd(2018, 3, 15), Date::ymd(2018, 8, 15), Date::ymd(2019, 2, 15),
        Date::ymd(2019, 8, 15), Date::ymd(2020, 3, 15), Date::ymd(2020, 9, 15),
        Date::ymd(2021, 2, 15)};
    db.add(materialize_program(java, *factory, "Java", std::move(dates),
                               jd.start, jd.end));
  }

  // --- Derivative-only root blueprints ------------------------------------
  std::map<std::string, RootSpec> extra_specs;
  {
    auto add_extra = [&](std::string id, std::string cn, std::string org,
                         int year) {
      RootSpec s;
      s.id = id;
      s.common_name = std::move(cn);
      s.organization = std::move(org);
      s.not_before = Date::ymd(year, 2, 14);
      s.not_after = s.not_before.add_months(12 * 25);
      s.scheme = year < 2012 ? SignatureScheme::kSha1Rsa
                             : SignatureScheme::kSha256Rsa;
      extra_specs.emplace(std::move(id), std::move(s));
    };
    add_extra("debianextra-brazil", "Autoridade Certificadora Raiz Brasileira",
              "Brazilian National Institute of IT", 2002);
    add_extra("debianextra-debian-1", "Debian SMTP CA", "Debian", 2003);
    add_extra("debianextra-debian-2", "Debian Root CA", "Debian", 2003);
    add_extra("debianextra-dcssi", "IGC/A", "Gov. of France DCSSI", 2002);
    for (int i = 1; i <= 9; ++i) {
      add_extra("debianextra-tp-" + std::to_string(i),
                "Certum CA Level " + std::to_string(i), "TP Internet Sp.",
                2002);
    }
    for (int i = 1; i <= 3; ++i) {
      add_extra("debianextra-spi-" + std::to_string(i),
                "SPI CA " + std::to_string(i), "Software in the Public Interest",
                2003);
    }
    for (int i = 1; i <= 3; ++i) {
      add_extra("debianextra-cacert-" + std::to_string(i),
                "CAcert Class " + std::to_string(i), "CAcert", 2003);
    }
    add_extra("amazon-thawte", "Thawte Premium Server CA", "Thawte", 1996);
    add_extra("nodejs-valicert", "ValiCert Class 2 Policy Validation Authority",
              "ValiCert", 1999);
  }

  // --- Derivatives ---------------------------------------------------------
  auto debian_like = [&](const std::string& name, Date start, Date end,
                         int snapshots) {
    DerivativePolicy p;
    p.name = name;
    p.snapshot_dates = evenly_spaced(start, end, snapshots);
    for (Date d : response_dates(name, incidents)) p.snapshot_dates.push_back(d);
    p.lag_days = 140;
    p.lag_jitter_days = 35;
    p.email_conflation_until = Date::ymd(2017, 3, 1);
    // 19 historical non-NSS roots, dropped mid-2015.
    for (const auto& [id, spec] : extra_specs) {
      (void)spec;
      if (id.rfind("debianextra-", 0) == 0) {
        DerivativeOverride ov;
        ov.root_id = id;
        ov.present_from = start;
        ov.present_until = Date::ymd(2015, 6, 30);
        ov.absent_from = Date::ymd(2015, 7, 1);
        p.overrides.push_back(std::move(ov));
      }
    }
    // Symantec: premature removal (11 of 12, GeoTrust Universal CA 2 kept),
    // then re-added after the NuGet breakage complaints.
    for (int i = 1; i <= 11; ++i) {
      DerivativeOverride ov;
      ov.root_id = "symantec-root-" + std::to_string(i);
      ov.absent_from = Date::ymd(2020, 4, 20);
      ov.absent_until = Date::ymd(2020, 6, 19);
      p.overrides.push_back(std::move(ov));
    }
    p.snapshot_dates.push_back(Date::ymd(2020, 4, 25));  // removal visible
    p.snapshot_dates.push_back(Date::ymd(2020, 6, 25));  // re-add visible
    add_response_overrides(p, incidents);
    return p;
  };

  const auto debian_policy =
      debian_like("Debian", Date::ymd(2005, 5, 10), Date::ymd(2021, 1, 10), 33);
  const auto ubuntu_policy =
      debian_like("Ubuntu", Date::ymd(2003, 10, 10), Date::ymd(2021, 1, 10), 32);

  DerivativePolicy amazon_policy;
  {
    DerivativePolicy& p = amazon_policy;
    p.name = "AmazonLinux";
    p.snapshot_dates =
        evenly_spaced(Date::ymd(2016, 10, 5), Date::ymd(2021, 3, 20), 37);
    for (Date d : response_dates(p.name, incidents)) p.snapshot_dates.push_back(d);
    p.lag_days = 400;
    p.lag_jitter_days = 50;
    p.email_conflation_until = Date::ymd(2019, 6, 1);
    // One non-NSS Thawte root, 2016-10 .. 2020-12.
    p.overrides.push_back({"amazon-thawte", Date::ymd(2016, 10, 5),
                           Date::ymd(2020, 12, 10), Date::ymd(2020, 12, 11),
                           {}, false});
    // Sixteen 1024-bit roots re-added after NSS purged them (2016..2018).
    int readded = 0;
    for (const auto& r : pool) {
      if (r.spec.rsa_bits < 2048 && r.spec.not_after > Date::ymd(2019, 1, 1) &&
          readded < 16) {
        p.overrides.push_back({r.spec.id, Date::ymd(2016, 10, 5),
                               Date::ymd(2018, 12, 10), Date::ymd(2018, 12, 11),
                               {}, false});
        ++readded;
      }
    }
    // Thirteen expired / CA-requested removals briefly re-added in 2018.
    int expired_readds = 0;
    for (const auto& r : pool) {
      if (r.spec.not_after < Date::ymd(2018, 1, 1) && expired_readds < 13) {
        p.overrides.push_back({r.spec.id, Date::ymd(2018, 3, 1),
                               Date::ymd(2018, 9, 10), Date::ymd(2018, 9, 11),
                               {}, false});
        ++expired_readds;
      }
    }
    add_response_overrides(p, incidents);
  }

  DerivativePolicy alpine_policy;
  {
    DerivativePolicy& p = alpine_policy;
    p.name = "Alpine";
    p.snapshot_dates =
        evenly_spaced(Date::ymd(2019, 3, 5), Date::ymd(2021, 4, 10), 40);
    for (Date d : response_dates(p.name, incidents)) p.snapshot_dates.push_back(d);
    p.lag_days = 35;
    p.lag_jitter_days = 12;
    p.email_conflation_until = Date::ymd(2020, 6, 1);
    // Manual removal of the expired AddTrust root without an NSS update.
    p.overrides.push_back(
        {"addtrust-root", {}, {}, Date::ymd(2020, 6, 5), {}, false});
    add_response_overrides(p, incidents);
  }

  DerivativePolicy android_policy;
  {
    DerivativePolicy& p = android_policy;
    p.name = "Android";
    p.snapshot_dates =
        evenly_spaced(Date::ymd(2016, 8, 20), Date::ymd(2020, 12, 5), 12);
    for (Date d : response_dates(p.name, incidents)) p.snapshot_dates.push_back(d);
    p.lag_days = 340;
    p.lag_jitter_days = 50;
    p.freeze_effective_after = Date::ymd(2019, 12, 15);
    // Proactive security removals without NSS version updates (§6.2).
    p.overrides.push_back(
        {"procert-root", {}, {}, {}, {}, /*always_absent=*/true});
    for (const char* id : {"wosign-root-1", "wosign-root-2", "wosign-root-3",
                           "wosign-root-4", "startcom-root-1", "startcom-root-2",
                           "startcom-root-3"}) {
      p.overrides.push_back(
          {id, {}, {}, Date::ymd(2017, 12, 6), {}, false});
    }
    add_response_overrides(p, incidents);
  }

  DerivativePolicy node_policy;
  {
    DerivativePolicy& p = node_policy;
    p.name = "NodeJS";
    p.snapshot_dates =
        evenly_spaced(Date::ymd(2015, 1, 20), Date::ymd(2021, 4, 5), 14);
    for (Date d : response_dates(p.name, incidents)) p.snapshot_dates.push_back(d);
    p.lag_days = 165;
    p.lag_jitter_days = 35;
    // TLS-only extraction from the start (node_root_certs.h).
    p.email_conflation_until = std::nullopt;
    // Deprecated ValiCert root re-added for OpenSSL chain building.
    p.overrides.push_back({"nodejs-valicert", Date::ymd(2015, 3, 1), {}, {},
                           {}, false});
    // Skipped NSS v53: TWCA and SK ID removals never applied.
    p.overrides.push_back({"twca-root", incident_include_date("twca-root"),
                           {}, {}, {}, false});
    p.overrides.push_back({"skid-root", incident_include_date("skid-root"),
                           {}, {}, {}, false});
    add_response_overrides(p, incidents);
  }

  for (const DerivativePolicy* policy :
       std::initializer_list<const DerivativePolicy*>{
           &debian_policy, &ubuntu_policy, &amazon_policy, &alpine_policy,
           &android_policy, &node_policy}) {
    db.add(generate_derivative(*policy, nss, *factory, extra_specs));
  }

  // --- Out-of-band trust overlays (§3.1 / §5.2 / §5.3) ---------------------
  // Apple revokes via valid.apple.com without removing from the shipped
  // store: two of the three StartCom roots, the Certinomis root (at an
  // unknown date; we pin it to the paper's "trusted until" + 1), and the
  // Government-of-Venezuela exclusive root.
  std::map<std::string, rs::store::TrustOverlay> overlays;
  {
    rs::store::TrustOverlay apple_overlay("Apple");
    struct OverlayPlan {
      const char* root_id;
      Date effective;
    };
    const OverlayPlan plans[] = {
        {"startcom-root-2", Date::ymd(2018, 9, 16)},
        {"startcom-root-3", Date::ymd(2018, 9, 16)},
        {"certinomis-root", Date::ymd(2021, 1, 2)},
        {"apple-excl-venezuela", Date::ymd(2020, 3, 1)},
    };
    for (const auto& plan : plans) {
      if (auto cert = factory->find(plan.root_id)) {
        apple_overlay.add(rs::store::OverlayRevocation{
            cert->sha256(), plan.effective, "valid.apple.com", 0});
      }
    }
    overlays.emplace("Apple", std::move(apple_overlay));
  }

  return PaperScenario(std::move(factory), std::move(db), std::move(timelines),
                       std::move(extra_specs), std::move(exclusive_meta),
                       std::move(overlays));
}

}  // namespace rs::synth
