#include "src/synth/incidents.h"

namespace rs::synth {

using rs::util::Date;

const char* to_string(RemovalSeverity s) noexcept {
  switch (s) {
    case RemovalSeverity::kLow:
      return "low";
    case RemovalSeverity::kMedium:
      return "medium";
    case RemovalSeverity::kHigh:
      return "high";
  }
  return "?";
}

std::vector<Incident> incident_catalog() {
  std::vector<Incident> out;

  // ---- High severity (Table 4 / Table 7) --------------------------------
  {
    Incident i;
    i.name = "DigiNotar";
    i.bugzilla_id = "682927";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2011, 10, 6);
    i.root_ids = {"diginotar-root"};
    i.never_included = {"Java", "NodeJS", "AmazonLinux", "Alpine", "Android"};
    i.responses = {
        {"Microsoft", 1, Date::ymd(2011, 8, 30), -37, ""},
        {"Apple", 1, Date::ymd(2011, 10, 12), 6, ""},
        {"Debian", 1, Date::ymd(2011, 10, 22), 16, ""},
        {"Ubuntu", 1, Date::ymd(2011, 10, 22), 16, ""},
    };
    i.details = "Key compromise; forged *.google.com certificates";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "CNNIC";
    i.bugzilla_id = "1380868";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2017, 7, 27);
    i.root_ids = {"cnnic-root-1", "cnnic-root-2"};
    i.never_included = {"Java", "Alpine"};
    i.responses = {
        {"Apple", 2, Date::ymd(2015, 6, 30), -758,
         "removed preemptively, 1429 leaves whitelisted"},
        {"Android", 1, Date::ymd(2017, 12, 5), 131, ""},
        {"Debian", 2, Date::ymd(2018, 4, 9), 256, ""},
        {"Ubuntu", 2, Date::ymd(2018, 4, 9), 256, ""},
        {"NodeJS", 2, Date::ymd(2018, 4, 24), 271, ""},
        {"AmazonLinux", 2, Date::ymd(2019, 2, 18), 571, ""},
        {"Microsoft", 2, Date::ymd(2020, 2, 26), 944, ""},
    };
    i.details = "MCS intermediate issued forged TLS certificates";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "StartCom";
    i.bugzilla_id = "1392849";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2017, 11, 14);
    i.root_ids = {"startcom-root-1", "startcom-root-2", "startcom-root-3"};
    i.never_included = {"Java"};
    i.responses = {
        {"Debian", 3, Date::ymd(2017, 7, 17), -120, ""},
        {"Ubuntu", 3, Date::ymd(2017, 7, 17), -120, ""},
        {"Microsoft", 2, Date::ymd(2017, 9, 22), -53, ""},
        {"Android", 3, Date::ymd(2017, 12, 5), 21, ""},
        {"NodeJS", 3, Date::ymd(2018, 4, 24), 161, ""},
        {"AmazonLinux", 3, Date::ymd(2019, 2, 18), 461, ""},
        {"Apple", 3, std::nullopt, std::nullopt,
         "1 root still trusted (2 revoked via valid.apple.com)"},
    };
    i.details = "Secretly acquired by WoSign; shared issuance infrastructure";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "WoSign";
    i.bugzilla_id = "1387260";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2017, 11, 14);
    i.root_ids = {"wosign-root-1", "wosign-root-2", "wosign-root-3",
                  "wosign-root-4"};
    i.never_included = {"Apple", "Java"};
    i.responses = {
        {"Debian", 4, Date::ymd(2017, 7, 17), -120, ""},
        {"Ubuntu", 4, Date::ymd(2017, 7, 17), -120, ""},
        {"Microsoft", 4, Date::ymd(2017, 9, 22), -53, ""},
        {"Android", 4, Date::ymd(2017, 12, 5), 21, ""},
        {"NodeJS", 4, Date::ymd(2018, 4, 24), 161, ""},
        {"AmazonLinux", 4, Date::ymd(2019, 2, 18), 461, ""},
    };
    i.details = "Backdated SSL certificates to evade the SHA-1 deadline";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "PSPProcert";
    i.bugzilla_id = "1408080";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2017, 11, 14);
    i.root_ids = {"procert-root"};
    i.never_included = {"Apple", "Microsoft", "Java", "Android"};
    i.responses = {
        {"Debian", 1, Date::ymd(2018, 4, 9), 146, ""},
        {"Ubuntu", 1, Date::ymd(2018, 4, 9), 146, ""},
        {"NodeJS", 1, Date::ymd(2018, 4, 24), 161, ""},
        {"AmazonLinux", 1, Date::ymd(2019, 2, 18), 461, ""},
    };
    i.details = "Repeated transgressions after 2010 inclusion";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "Certinomis";
    i.bugzilla_id = "1552374";
    i.severity = RemovalSeverity::kHigh;
    i.nss_removal = Date::ymd(2019, 7, 5);
    i.root_ids = {"certinomis-root"};
    i.never_included = {"Java"};
    i.responses = {
        {"NodeJS", 1, Date::ymd(2019, 10, 22), 109, ""},
        {"Alpine", 1, Date::ymd(2020, 3, 23), 262, ""},
        {"Debian", 1, Date::ymd(2020, 6, 1), 332, ""},
        {"Ubuntu", 1, Date::ymd(2020, 6, 1), 332, ""},
        {"Android", 1, Date::ymd(2020, 9, 7), 430, ""},
        {"AmazonLinux", 1, Date::ymd(2021, 3, 26), 630, ""},
        {"Apple", 1, Date::ymd(2021, 1, 1), 577,
         "revoked via valid.apple.com at unknown date"},
        {"Microsoft", 1, std::nullopt, std::nullopt, "still trusted"},
    };
    i.details = "Cross-signed distrusted StartCom; 111-day disclosure delay";
    out.push_back(std::move(i));
  }

  // ---- Medium severity (Table 7 only) ------------------------------------
  {
    Incident i;
    i.name = "Symantec distrust (batch 2)";
    i.bugzilla_id = "1670769";
    i.severity = RemovalSeverity::kMedium;
    i.nss_removal = Date::ymd(2020, 12, 11);
    i.root_ids = {"symantec-root-4",  "symantec-root-5",  "symantec-root-6",
                  "symantec-root-7",  "symantec-root-8",  "symantec-root-9",
                  "symantec-root-10", "symantec-root-11", "symantec-root-12",
                  "symantec-root-13"};
    i.details = "Symantec distrust - root certificates ready to be removed";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "Taiwan GRCA misissuance";
    i.bugzilla_id = "1656077";
    i.severity = RemovalSeverity::kMedium;
    i.nss_removal = Date::ymd(2020, 9, 18);
    i.root_ids = {"taiwan-grca-root"};
    i.details = "Misissuance tracked in Bugzilla 1463975";
    out.push_back(std::move(i));
  }
  {
    Incident i;
    i.name = "Symantec distrust (batch 1)";
    i.bugzilla_id = "1618402";
    i.severity = RemovalSeverity::kMedium;
    i.nss_removal = Date::ymd(2020, 6, 26);
    i.root_ids = {"symantec-root-1", "symantec-root-2", "symantec-root-3"};
    i.details = "Symantec distrust - root certificates ready to be removed";
    out.push_back(std::move(i));
  }

  return out;
}

std::vector<Incident> high_severity_incidents() {
  std::vector<Incident> out;
  for (auto& i : incident_catalog()) {
    if (i.severity == RemovalSeverity::kHigh) out.push_back(std::move(i));
  }
  return out;
}

}  // namespace rs::synth
