#include "src/synth/paper_reference.h"

namespace rs::synth::paper {

using rs::util::Date;

std::vector<DatasetRow> table2_dataset() {
  return {
      {"Alpine", Date::ymd(2019, 3, 1), Date::ymd(2021, 4, 1), 42, 7,
       "docker", "/etc/ssl/cert.pem or /etc/ssl/ca-certificates.crt"},
      {"AmazonLinux", Date::ymd(2016, 10, 1), Date::ymd(2021, 3, 1), 43, 15,
       "docker", "ca-trust/extracted/pem/tls-ca-bundle.pem aggregate file"},
      {"Android", Date::ymd(2016, 8, 1), Date::ymd(2020, 12, 1), 14, 7,
       "source code", "List of root certificate files"},
      {"Apple", Date::ymd(2002, 8, 1), Date::ymd(2021, 2, 1), 109, 43,
       "source code", "certificates/roots directory of files (macOS + iOS)"},
      {"Debian", Date::ymd(2005, 5, 1), Date::ymd(2021, 1, 1), 39, 29,
       "source code", "/etc/ssl/certs and /usr/share/ca-certificates"},
      {"Java", Date::ymd(2018, 3, 1), Date::ymd(2021, 2, 1), 7, 7,
       "source code", "make/data/cacerts JKS file"},
      {"Microsoft", Date::ymd(2006, 12, 1), Date::ymd(2021, 3, 1), 86, 70,
       "update file", "authroot.stl roots, trust purpose, addl. constraints"},
      {"NodeJS", Date::ymd(2015, 1, 1), Date::ymd(2021, 4, 1), 16, 11,
       "source code", "src/node_root_certs.h list of certificates"},
      {"NSS", Date::ymd(2000, 10, 1), Date::ymd(2021, 5, 1), 225, 63,
       "source code", "certdata.txt roots, trust purpose, addl. constraints"},
      {"Ubuntu", Date::ymd(2003, 10, 1), Date::ymd(2021, 1, 1), 38, 29,
       "source code", "/etc/ssl/certs and /usr/share/ca-certificates"},
  };
}

std::vector<HygieneRow> table3_hygiene() {
  return {
      {"Apple", 152.9, 2.9, "2016-09", "2015-09"},
      {"Java", 89.4, 1.3, "2019-02", "2021-02"},
      {"Microsoft", 246.6, 9.9, "2018-03", "2017-09"},
      {"NSS", 121.8, 1.2, "2016-02", "2015-10"},
  };
}

std::vector<ProgramShare> figure2_shares() {
  return {
      {"Mozilla/NSS", 0.34},
      {"Apple", 0.23},
      {"Microsoft", 0.20},
      {"Java", 0.00},
  };
}

std::vector<StalenessRow> figure3_staleness() {
  return {
      {"Alpine", 0.73},
      {"Debian", 1.96},
      {"Ubuntu", 1.96},
      {"NodeJS", 2.10},
      {"Android", 3.22},
      {"AmazonLinux", 4.83},
  };
}

std::vector<ExclusiveRow> table6_counts() {
  return {
      {"NSS", 1},
      {"Java", 0},
      {"Apple", 13},
      {"Microsoft", 30},
  };
}

double table1_coverage() { return 0.77; }

}  // namespace rs::synth::paper
