// NSS-derivative root-store generation (§6 of the paper).
//
// Every derivative provider (Linux distributions, Android, NodeJS) builds
// its store by copying an NSS version — late, through a lossy format, and
// with bespoke edits.  DerivativePolicy captures exactly those degrees of
// freedom:
//   * copy lag (how stale the copied NSS version is), with an optional
//     freeze date modelling providers stuck on an old NSS branch;
//   * email conflation (multi-purpose bundles that grant TLS trust to
//     email-only NSS roots until a single-purpose cutover);
//   * trust flattening (partial distrust cannot be represented, so
//     CKA_NSS_SERVER_DISTRUST_AFTER cutoffs are silently dropped);
//   * explicit overrides (non-NSS roots, re-adds, manual removals, and the
//     Table 4 incident-response dates).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/store/snapshot.h"
#include "src/synth/program_model.h"
#include "src/util/date.h"

namespace rs::synth {

/// A bespoke presence edit for one root in one derivative.
struct DerivativeOverride {
  std::string root_id;
  /// Force-present window (inclusive); nullopt from/until = unbounded.
  std::optional<rs::util::Date> present_from;
  std::optional<rs::util::Date> present_until;
  /// Force-absent window [absent_from, absent_until] (absent_until empty =
  /// forever).  Absence takes precedence over presence.
  std::optional<rs::util::Date> absent_from;
  std::optional<rs::util::Date> absent_until;
  /// Never present regardless of the NSS copy.
  bool always_absent = false;
};

/// Full description of one derivative provider's copying behaviour.
struct DerivativePolicy {
  std::string name;
  std::vector<rs::util::Date> snapshot_dates;
  /// Base staleness of the copied NSS state, plus deterministic jitter.
  int lag_days = 120;
  int lag_jitter_days = 30;
  /// Effective NSS date never advances past this (provider stuck on an old
  /// NSS branch, e.g. Alpine/Android pre-3.48 during Symantec distrust).
  std::optional<rs::util::Date> freeze_effective_after;
  /// Before this date the provider bundles NSS email-only roots too and
  /// (mis)trusts them for TLS; from it on, TLS-only (single-purpose shift).
  std::optional<rs::util::Date> email_conflation_until;
  std::vector<DerivativeOverride> overrides;
};

/// Materializes a derivative history by copying `nss` under `policy`.
/// `extra_specs` supplies blueprints for override roots that never existed
/// in NSS (Debian-local CAs, CAcert, ...).
rs::store::ProviderHistory generate_derivative(
    const DerivativePolicy& policy, const Timeline& nss, CertFactory& factory,
    const std::map<std::string, RootSpec>& extra_specs);

/// The deterministic per-snapshot lag (exposed for tests).
int derivative_lag_days(const DerivativePolicy& policy, rs::util::Date snapshot);

}  // namespace rs::synth
