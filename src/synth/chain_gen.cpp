#include "src/synth/chain_gen.h"

#include <cassert>
#include <cctype>
#include <optional>
#include <span>

#include "src/asn1/oid.h"
#include "src/crypto/prng.h"
#include "src/crypto/sha256.h"
#include "src/x509/builder.h"
#include "src/x509/extensions.h"
#include "src/x509/name.h"

namespace rs::synth {
namespace {

using rs::x509::Certificate;
using rs::x509::Name;

/// Deterministic 20-byte key identifier from a label.
std::vector<std::uint8_t> key_id_for(const std::string& label) {
  const auto digest = rs::crypto::Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  return {digest.begin(), digest.begin() + 20};
}

/// The SKI of `cert`, when it carries one (factory roots do not).
std::vector<std::uint8_t> ski_of(const Certificate& cert) {
  const auto* ext = rs::x509::find_extension(
      cert.extensions(), rs::asn1::oids::subject_key_id());
  if (ext == nullptr) return {};
  auto parsed = rs::x509::SubjectKeyIdentifier::parse(ext->value);
  return parsed.ok() ? parsed.value().key_id : std::vector<std::uint8_t>{};
}

/// A caseIgnoreMatch-equivalent but byte-different rendering: letters
/// upper-cased, inner spaces doubled, outer whitespace added.  Chaining
/// through such a name exercises Name::equivalent on the verify path.
Name mangled(const Name& name) {
  Name out;
  for (const auto& attr : name.attributes()) {
    std::string value = " ";
    for (const char c : attr.value) {
      value.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
      if (c == ' ') value.push_back(' ');
    }
    value.push_back(' ');
    out.add(attr.type, std::move(value), attr.kind);
  }
  return out;
}

struct CertOpts {
  bool leaf = false;  // explicit BC{false} + KU digitalSignature
  std::optional<std::int64_t> path_len;  // explicit BC{true, path_len}
  bool non_ca = false;                   // explicit BC{false}, CA key usage
  std::vector<rs::asn1::Oid> eku;
  std::vector<std::uint8_t> ski;
  std::vector<std::uint8_t> aki;
};

/// The one cert-minting path: deterministic serial/key material from the
/// generator seed + label, explicit extensions per `opts` (the builder
/// auto-adds CA BasicConstraints/KeyUsage when none are given).
std::shared_ptr<const Certificate> make_cert(std::uint64_t seed,
                                             const std::string& label,
                                             Name subject, Name issuer,
                                             rs::util::Date not_before,
                                             rs::util::Date not_after,
                                             const CertOpts& opts = {}) {
  rs::crypto::Prng rng = rs::crypto::Prng::from_label(seed, "chain:" + label);
  rs::x509::CertificateBuilder builder;
  builder.subject(std::move(subject))
      .issuer(std::move(issuer))
      .serial_number((rng.next() >> 16) | 1)
      .not_before(not_before)
      .not_after(not_after)
      .key_seed(rng.next());
  if (opts.leaf || opts.non_ca) {
    builder.add_extension({rs::asn1::oids::basic_constraints(), true,
                           rs::x509::BasicConstraints{false, {}}.encode()});
  } else if (opts.path_len) {
    builder.add_extension(
        {rs::asn1::oids::basic_constraints(), true,
         rs::x509::BasicConstraints{true, opts.path_len}.encode()});
  }
  if (opts.leaf) {
    rs::x509::KeyUsage ku;
    ku.digital_signature = true;
    builder.add_extension(
        {rs::asn1::oids::key_usage(), true, ku.encode()});
  }
  if (!opts.eku.empty()) builder.add_eku(opts.eku);
  if (!opts.ski.empty()) {
    builder.add_extension({rs::asn1::oids::subject_key_id(), false,
                           rs::x509::SubjectKeyIdentifier{opts.ski}.encode()});
  }
  if (!opts.aki.empty()) {
    builder.add_extension(
        {rs::asn1::oids::authority_key_id(), false,
         rs::x509::AuthorityKeyIdentifier{opts.aki}.encode()});
  }
  return std::make_shared<const Certificate>(builder.build());
}

Name ca_name(const std::string& cn, const std::string& org) {
  Name n;
  n.add_common_name(cn);
  n.add_organization(org);
  n.add_country("US");
  return n;
}

Name leaf_name(const std::string& cn) {
  Name n;
  n.add_common_name(cn);
  return n;
}

/// Builds the generic cases under one anchor.  All dates derive from the
/// anchor's validity so every case stays inside its window by default.
class CaseBuilder {
 public:
  CaseBuilder(std::uint64_t seed,
              std::shared_ptr<const Certificate> anchor)
      : seed_(seed), anchor_(std::move(anchor)) {
    const auto& v = anchor_->validity();
    nb_ = v.not_before.date + 30;
    na_ = v.not_after.date - 30;
    if (na_ <= nb_) na_ = nb_ + 1;
    mid_ = nb_ + (na_ - nb_) / 2;
  }

  rs::util::Date nb() const { return nb_; }
  rs::util::Date na() const { return na_; }
  rs::util::Date mid() const { return mid_; }

  /// One intermediate under `parent` with an SKI and (when the parent has
  /// one) an AKI; validity spans [nb, na] unless overridden.
  std::shared_ptr<const Certificate> intermediate(
      const std::string& label, const Certificate& parent,
      std::optional<rs::util::Date> not_after = std::nullopt,
      CertOpts opts = {}) {
    opts.ski = key_id_for(label);
    opts.aki = ski_of(parent);
    return make_cert(seed_, label, ca_name("Chain " + label, "rs_verify"),
                     parent.subject(), nb_, not_after.value_or(na_), opts);
  }

  std::shared_ptr<const Certificate> leaf(
      const std::string& label, const Certificate& parent,
      std::vector<rs::asn1::Oid> eku = {rs::asn1::oids::eku_server_auth()}) {
    CertOpts opts;
    opts.leaf = true;
    opts.eku = std::move(eku);
    opts.aki = ski_of(parent);
    return make_cert(seed_, label, leaf_name(label + ".example.com"),
                     parent.subject(), nb_, na_, opts);
  }

  /// The anchor rides in every pool: the verifier terminates at a path
  /// certificate present in the provider's store, so an anchored path must
  /// be able to reach the root itself (clients likewise send the verifier
  /// pool ∪ trust-store candidates).
  ChainCase chain(const std::string& name, const std::string& note,
                  std::shared_ptr<const Certificate> leaf,
                  std::vector<std::shared_ptr<const Certificate>> pool) {
    pool.push_back(anchor_);
    return ChainCase{name, std::move(leaf), std::move(pool),
                     anchor_->sha256(), note};
  }

 private:
  std::uint64_t seed_;
  std::shared_ptr<const Certificate> anchor_;
  rs::util::Date nb_{}, na_{}, mid_{};
};

}  // namespace

std::vector<ChainCase> build_chain_cases(const ChainGenConfig& config) {
  assert(config.anchor != nullptr && "chain generation needs a store anchor");
  std::vector<ChainCase> cases;
  const auto& anchor = *config.anchor;
  CaseBuilder b(config.seed, config.anchor);

  // straight: anchor -> intermediate -> leaf, everything well-formed.
  {
    auto ica = b.intermediate("straight-ica", anchor);
    auto leaf = b.leaf("straight", *ica);
    cases.push_back(b.chain("straight", "well-formed depth-3 chain",
                            std::move(leaf), {ica}));
  }

  // deep: three stacked intermediates, still within the depth cap.
  {
    auto i1 = b.intermediate("deep-i1", anchor);
    auto i2 = b.intermediate("deep-i2", *i1);
    auto i3 = b.intermediate("deep-i3", *i2);
    auto leaf = b.leaf("deep", *i3);
    cases.push_back(b.chain("deep", "three intermediates deep",
                            std::move(leaf), {i1, i2, i3}));
  }

  // cross_sign: one intermediate identity issued both by the anchor and by
  // a root the store never trusted; the verifier must pick the anchored
  // parent and report the decoy path alongside.
  {
    auto decoy_root = make_cert(
        config.seed, "cross-decoy-root",
        ca_name("Unvetted Holdings Root", "Unvetted Holdings"),
        ca_name("Unvetted Holdings Root", "Unvetted Holdings"), b.nb() - 20,
        b.na(), [] {
          CertOpts o;
          o.ski = key_id_for("cross-decoy-root");
          return o;
        }());
    auto via_anchor = b.intermediate("cross-ica", anchor);
    // The same subject/SKI, signed by the decoy instead.
    CertOpts alt;
    alt.ski = ski_of(*via_anchor);
    alt.aki = ski_of(*decoy_root);
    auto via_decoy = make_cert(config.seed, "cross-ica-alt",
                               via_anchor->subject(), decoy_root->subject(),
                               b.nb(), b.na(), alt);
    auto leaf = b.leaf("cross", *via_anchor);
    cases.push_back(b.chain("cross_sign",
                            "cross-signed intermediate; one parent anchored",
                            std::move(leaf),
                            {via_anchor, via_decoy, decoy_root}));
  }

  // expired_intermediate: the middle link dies at mid-window, so the
  // verdict flips from accepted to cert_expired the day after.
  {
    auto ica = b.intermediate("expired-ica", anchor, b.mid());
    auto leaf = b.leaf("expired", *ica);
    cases.push_back(b.chain("expired_intermediate",
                            "intermediate expires mid-window",
                            std::move(leaf), {ica}));
  }

  // non_ca_intermediate: explicit BasicConstraints CA=false on the issuer.
  {
    CertOpts opts;
    opts.non_ca = true;
    auto ica = b.intermediate("nonca-ica", anchor, std::nullopt, opts);
    auto leaf = b.leaf("nonca", *ica);
    cases.push_back(b.chain("non_ca_intermediate",
                            "issuing certificate is not a CA",
                            std::move(leaf), {ica}));
  }

  // pathlen_violation: a pathLenConstraint=0 CA with another non-self-
  // issued CA below it.
  {
    CertOpts zero;
    zero.path_len = 0;
    auto top = b.intermediate("plen-top", anchor, std::nullopt, zero);
    auto below = b.intermediate("plen-below", *top);
    auto leaf = b.leaf("plen", *below);
    cases.push_back(b.chain("pathlen_violation",
                            "pathLenConstraint=0 exceeded one level down",
                            std::move(leaf), {top, below}));
  }

  // email_leaf: the leaf's EKU only permits email protection, so a TLS
  // query fails eku_scope_mismatch while an email query can succeed.
  {
    auto ica = b.intermediate("emailleaf-ica", anchor);
    auto leaf = b.leaf("emailleaf", *ica,
                       {rs::asn1::oids::eku_email_protection()});
    cases.push_back(b.chain("email_leaf",
                            "leaf EKU permits email only, never TLS",
                            std::move(leaf), {ica}));
  }

  // mixed_case: issuer names are case/whitespace-mangled renderings of the
  // parents' subjects — byte-different, caseIgnoreMatch-equivalent.
  {
    CertOpts iopts;
    iopts.ski = key_id_for("mixed-ica");
    auto ica = make_cert(config.seed, "mixed-ica",
                         ca_name("Chain mixed-ica", "rs_verify"),
                         mangled(anchor.subject()), b.nb(), b.na(), iopts);
    CertOpts lopts;
    lopts.leaf = true;
    lopts.eku = {rs::asn1::oids::eku_server_auth()};
    lopts.aki = ski_of(*ica);
    auto leaf = make_cert(config.seed, "mixed",
                          leaf_name("mixed.example.com"),
                          mangled(ica->subject()), b.nb(), b.na(), lopts);
    cases.push_back(b.chain("mixed_case",
                            "issuer DNs differ from subjects only by "
                            "case and whitespace",
                            std::move(leaf), {ica}));
  }

  // missing_intermediate: the pool lacks the leaf's issuer entirely.
  {
    auto ica = b.intermediate("missing-ica", anchor);
    auto leaf = b.leaf("missing", *ica);
    cases.push_back(b.chain("missing_intermediate",
                            "issuer absent from the pool",
                            std::move(leaf), {}));
  }

  // untrusted_root: a complete, well-formed chain to a self-signed root
  // the store has never carried.
  {
    CertOpts ropts;
    ropts.ski = key_id_for("rogue-root");
    auto rogue = make_cert(config.seed, "rogue-root",
                           ca_name("Rogue Shadow Root", "Rogue Shadow"),
                           ca_name("Rogue Shadow Root", "Rogue Shadow"),
                           b.nb() - 20, b.na(), ropts);
    auto ica = b.intermediate("rogue-ica", *rogue);
    auto leaf = b.leaf("rogue", *ica);
    cases.push_back(ChainCase{"untrusted_root",
                              std::move(leaf),
                              {ica, rogue},
                              rogue->sha256(),
                              "chains only to a never-trusted root"});
  }

  // email_only_anchor: a chain to a store root that carries email/code
  // trust bits but was never TLS-trusted (the Microsoft purpose pool).
  if (config.email_only_anchor != nullptr) {
    CaseBuilder eb(config.seed, config.email_only_anchor);
    auto ica = eb.intermediate("emailroot-ica", *config.email_only_anchor);
    // The leaf's EKU permits both scopes so the verdict difference comes
    // from the anchor's trust bits alone, not from EKU gating.
    auto leaf = eb.leaf("emailroot", *ica,
                        {rs::asn1::oids::eku_server_auth(),
                         rs::asn1::oids::eku_email_protection()});
    cases.push_back(eb.chain("email_only_anchor",
                             "anchor holds email bits only, never TLS",
                             std::move(leaf), {ica}));
  }

  // incident chains: straight chains under roots with removal history
  // (DigiNotar-style); first_rejected_at must land on the purge date.
  for (const auto& [name, root] : config.incident_anchors) {
    if (root == nullptr) continue;
    CaseBuilder ib(config.seed, root);
    auto ica = ib.intermediate("incident-" + name + "-ica", *root);
    auto leaf = ib.leaf("incident-" + name, *ica);
    cases.push_back(ib.chain("incident:" + name,
                             "chain under a root with a removal incident",
                             std::move(leaf), {ica}));
  }

  return cases;
}

ChainGenConfig default_chain_config(const rs::store::StoreDatabase& db,
                                    std::uint64_t seed) {
  ChainGenConfig config;
  config.seed = seed;

  // Snapshot-count per TLS anchor across every provider; the winner is the
  // most stable root in the dataset (ties: smallest fingerprint, which the
  // ordered map gives for free).
  std::map<rs::crypto::Sha256Digest,
           std::pair<std::size_t, std::shared_ptr<const Certificate>>>
      tls_counts;
  for (const auto& [provider, history] : db.histories()) {
    for (const auto& snapshot : history.snapshots()) {
      for (const auto& entry : snapshot.entries) {
        if (!entry.is_anchor_for(rs::store::TrustPurpose::kServerAuth)) {
          continue;
        }
        auto& slot = tls_counts[entry.certificate->sha256()];
        ++slot.first;
        slot.second = entry.certificate;
      }
    }
  }
  std::size_t best = 0;
  for (const auto& [fp, slot] : tls_counts) {
    if (slot.first > best) {
      best = slot.first;
      config.anchor = slot.second;
    }
  }

  // An email anchor nobody ever TLS-trusted (Microsoft's purpose pool).
  const auto ever_tls = db.all_tls_roots_ever();
  std::map<rs::crypto::Sha256Digest, std::shared_ptr<const Certificate>>
      email_only;
  for (const auto& [provider, history] : db.histories()) {
    for (const auto& snapshot : history.snapshots()) {
      for (const auto& entry : snapshot.entries) {
        const auto& fp = entry.certificate->sha256();
        if (entry.is_anchor_for(rs::store::TrustPurpose::kEmailProtection) &&
            !ever_tls.contains(fp)) {
          email_only.emplace(fp, entry.certificate);
        }
      }
    }
  }
  if (!email_only.empty()) {
    config.email_only_anchor = email_only.begin()->second;
  }
  return config;
}

}  // namespace rs::synth
