// The CA-incident catalog: NSS removals since 2010 (paper Appendix C /
// Table 7) and the per-provider responses to the six high-severity ones
// (Table 4).
//
// These are published ground truth from the paper, encoded as data.  The
// scenario builder turns them into timeline actions; the Table 4 bench then
// *re-measures* response lags from the materialized histories and prints
// them next to these reference values.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/util/date.h"

namespace rs::synth {

/// Severity buckets from the paper's §5.3 classification.
enum class RemovalSeverity { kLow, kMedium, kHigh };

const char* to_string(RemovalSeverity s) noexcept;

/// One provider's paper-reported response to an incident.
struct PaperResponse {
  std::string provider;
  int cert_count = 0;
  /// Last date the roots were trusted; nullopt == still trusted at study end.
  std::optional<rs::util::Date> trusted_until;
  /// Paper's reported lag in days (reference for the bench output).
  std::optional<int> lag_days;
  /// Annotation, e.g. "revoked via valid.apple.com".
  std::string note;
};

/// One NSS removal event (a Table 7 row, expanded with Table 4 responses
/// for the high-severity ones).
struct Incident {
  std::string name;           // "DigiNotar"
  std::string bugzilla_id;    // "682927"
  RemovalSeverity severity = RemovalSeverity::kHigh;
  rs::util::Date nss_removal; // reference date all lags are measured against
  /// Scenario root ids affected (synthetic stand-ins for the real certs).
  std::vector<std::string> root_ids;
  /// Providers that never included these roots.
  std::vector<std::string> never_included;
  std::vector<PaperResponse> responses;
  std::string details;
};

/// The full catalog, ordered as in the paper's tables.
std::vector<Incident> incident_catalog();

/// Only the high-severity incidents (the Table 4 set, in table order).
std::vector<Incident> high_severity_incidents();

}  // namespace rs::synth
