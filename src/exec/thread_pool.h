// Deterministic fork-join execution for the analysis hot paths.
//
// The paper's expensive computations (the 619x619 Jaccard matrix, SMACOF
// stress majorization, per-derivative diff series) are embarrassingly
// parallel.  This module provides the one concurrency primitive the
// pipeline needs: a fixed-size thread pool plus chunked parallel-for /
// parallel-reduce helpers whose results are bitwise-identical for ANY
// worker count, including zero workers (inline serial execution).
//
// Determinism contract (see docs/PARALLELISM.md):
//   * Chunk boundaries depend only on the range length `n`, never on the
//     worker count (plan_chunks).
//   * parallel_for bodies write disjoint outputs, so scheduling order is
//     irrelevant.
//   * parallel_reduce combines per-chunk partials serially in chunk-index
//     order, so floating-point association is fixed.
//   * The serial fallback (`pool == nullptr` or zero workers) walks the
//     same chunks in the same order through the same code path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rs::exec {

/// A fixed-size pool of worker threads consuming a shared FIFO queue.
///
/// Construction with zero threads is valid and makes `submit` run tasks
/// inline on the calling thread.  Destruction drains every task already
/// queued before joining (shutdown never drops work).  `submit` from inside
/// a worker of the same pool throws std::logic_error: nested submission
/// deadlocks a bounded pool, so the parallel helpers below detect it and
/// degrade to inline serial execution instead.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// True when called from one of this pool's worker threads.
  bool in_worker() const noexcept;

  /// Enqueues a task.  Tasks must not throw (parallel_for wraps bodies with
  /// its own exception capture); a throwing raw task terminates.  Throws
  /// std::logic_error when called from a worker of this pool.
  void submit(std::function<void()> task) RS_EXCLUDES(mutex_);

 private:
  void worker_loop() RS_EXCLUDES(mutex_);

  rs::util::Mutex mutex_;
  rs::util::CondVar cv_;
  std::deque<std::function<void()>> queue_ RS_GUARDED_BY(mutex_);
  bool stopping_ RS_GUARDED_BY(mutex_) = false;
  // Written only by the constructor and joined by the destructor; after
  // construction the vector is effectively const, so workers_ needs no lock.
  std::vector<std::thread> workers_;
};

/// Fixed chunking for an n-element range.  Depends only on `n` — never on
/// the worker count — which is what makes parallel results reproducible
/// across thread configurations.
struct ChunkPlan {
  std::size_t chunk_size = 0;
  std::size_t chunk_count = 0;
};

inline ChunkPlan plan_chunks(std::size_t n) noexcept {
  // Enough chunks that a handful of workers load-balance across uneven
  // per-element cost (e.g. shrinking Jaccard row blocks), few enough that
  // queue overhead stays negligible.
  constexpr std::size_t kTargetChunks = 64;
  ChunkPlan plan;
  if (n == 0) return plan;
  plan.chunk_size = (n + kTargetChunks - 1) / kTargetChunks;
  plan.chunk_count = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

/// Runs `body(chunk_index, begin, end)` over the fixed chunks of [0, n).
/// Parallel when `pool` has workers and we are not already inside one of
/// them; inline serial (same chunks, ascending order) otherwise.  The first
/// exception thrown by a body is rethrown on the calling thread after all
/// chunks finish.
template <typename Body>
void for_each_chunk(ThreadPool* pool, std::size_t n, const Body& body) {
  const ChunkPlan plan = plan_chunks(n);
  if (plan.chunk_count == 0) return;

  const bool serial = pool == nullptr || pool->worker_count() == 0 ||
                      pool->in_worker() || plan.chunk_count == 1;
  if (serial) {
    for (std::size_t c = 0; c < plan.chunk_count; ++c) {
      const std::size_t begin = c * plan.chunk_size;
      const std::size_t end = std::min(n, begin + plan.chunk_size);
      body(c, begin, end);
    }
    return;
  }

  // Completion latch shared with the submitted tasks.  Guarded members are
  // initialized in the constructor (constructors are exempt from the
  // thread-safety analysis: no other thread can hold the lock yet).
  struct Completion {
    explicit Completion(std::size_t chunks) : remaining(chunks) {}
    rs::util::Mutex mutex;
    rs::util::CondVar done;
    std::size_t remaining RS_GUARDED_BY(mutex);
    std::exception_ptr error RS_GUARDED_BY(mutex);
  };
  Completion state(plan.chunk_count);
  for (std::size_t c = 0; c < plan.chunk_count; ++c) {
    const std::size_t begin = c * plan.chunk_size;
    const std::size_t end = std::min(n, begin + plan.chunk_size);
    pool->submit([&, c, begin, end] {
      std::exception_ptr thrown;
      try {
        body(c, begin, end);
      } catch (...) {
        thrown = std::current_exception();
      }
      const rs::util::MutexLock lock(state.mutex);
      if (thrown && !state.error) state.error = std::move(thrown);
      if (--state.remaining == 0) state.done.notify_one();
    });
  }
  std::exception_ptr error;
  {
    rs::util::MutexLock lock(state.mutex);
    while (state.remaining != 0) state.done.wait(state.mutex);
    error = std::move(state.error);
  }
  if (error) std::rethrow_exception(error);
}

/// Runs `body(i)` for every i in [0, n); see for_each_chunk for the
/// scheduling and exception contract.  Bodies must write disjoint state.
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, const Body& body) {
  for_each_chunk(pool, n,
                 [&](std::size_t /*chunk*/, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) body(i);
                 });
}

/// Chunked reduction: `map_chunk(begin, end) -> T` runs per chunk (possibly
/// in parallel), then partials are combined serially in chunk-index order
/// with `combine(acc, partial) -> T`.  The fixed chunking plus ordered
/// combine make the result bitwise-identical for any worker count even for
/// non-associative-in-floating-point operations like double sums.
template <typename T, typename MapChunk, typename Combine>
T parallel_reduce(ThreadPool* pool, std::size_t n, T identity,
                  const MapChunk& map_chunk, const Combine& combine) {
  const ChunkPlan plan = plan_chunks(n);
  if (plan.chunk_count == 0) return identity;
  std::vector<T> partials(plan.chunk_count, identity);
  for_each_chunk(pool, n,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   partials[chunk] = map_chunk(begin, end);
                 });
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace rs::exec
