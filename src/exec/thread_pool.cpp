#include "src/exec/thread_pool.h"

#include <stdexcept>

namespace rs::exec {

namespace {

// Identifies the pool (if any) the current thread belongs to, for nested-use
// detection.  Plain pointer comparison: pools are never reused after
// destruction while their workers still run, because ~ThreadPool joins.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::in_worker() const noexcept {
  return tls_current_pool == this;
}

void ThreadPool::submit(std::function<void()> task) {
  if (in_worker()) {
    throw std::logic_error(
        "ThreadPool::submit: nested submission from a worker thread of the "
        "same pool (would deadlock a bounded pool)");
  }
  if (workers_.empty()) {  // zero-thread pool: run inline
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Shutdown drains the queue: exit only once no work is left.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rs::exec
