#include "src/exec/thread_pool.h"

#include <stdexcept>

#include "src/obs/registry.h"

namespace rs::exec {

namespace {

// Per-task execution metrics (docs/OBSERVABILITY.md): how long tasks sat in
// the queue and how long they ran, summed across all pools.  Instrumented
// at submit time so the disabled path (the default) adds exactly one
// relaxed atomic load per submit — never per element.
void instrument_task(std::function<void()>& task) {
  auto& reg = rs::obs::Registry::global();
  if (!reg.enabled()) return;
  static rs::obs::Counter& tasks = reg.counter("exec.pool_tasks");
  static rs::obs::Counter& queue_wait = reg.counter("exec.pool_queue_wait_ns");
  static rs::obs::Counter& run_time = reg.counter("exec.pool_run_ns");
  const rs::obs::TimeNs enqueued = reg.clock().now_ns();
  task = [&reg, enqueued, inner = std::move(task)] {
    const rs::obs::TimeNs started = reg.clock().now_ns();
    inner();
    const rs::obs::TimeNs finished = reg.clock().now_ns();
    tasks.increment();
    queue_wait.add(started - enqueued);
    run_time.add(finished - started);
  };
}

// Identifies the pool (if any) the current thread belongs to, for nested-use
// detection.  Plain pointer comparison: pools are never reused after
// destruction while their workers still run, because ~ThreadPool joins.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const rs::util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::in_worker() const noexcept {
  return tls_current_pool == this;
}

void ThreadPool::submit(std::function<void()> task) {
  if (in_worker()) {
    throw std::logic_error(
        "ThreadPool::submit: nested submission from a worker thread of the "
        "same pool (would deadlock a bounded pool)");
  }
  instrument_task(task);
  if (workers_.empty()) {  // zero-thread pool: run inline
    task();
    return;
  }
  {
    const rs::util::MutexLock lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      const rs::util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      // Shutdown drains the queue: exit only once no work is left.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rs::exec
